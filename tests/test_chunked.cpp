// Chunked binary instance container: round-trip fidelity, backend
// equivalence, shard-table layout, and the malformed-file fault suite
// (every corruption class a named InvalidArgument; CI runs this file under
// ASan+UBSan so a torn or corrupted file can never walk the reader out of
// bounds).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/generators.hpp"
#include "io/chunked.hpp"
#include "io/instance_io.hpp"
#include "test_helpers.hpp"

namespace psdp::io {
namespace {

using core::FactorizedPackingInstance;

FactorizedPackingInstance sample_instance(Index n = 11, Index m = 16,
                                          unsigned seed = 42) {
  apps::FactorizedOptions gen;
  gen.n = n;
  gen.m = m;
  gen.rank = 3;
  gen.nnz_per_column = 4;
  gen.seed = seed;
  return apps::random_factorized(gen);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/psdp_chunked_test." + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Expect `fn` to raise InvalidArgument whose message names the fault.
template <typename Fn>
void expect_fault(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected InvalidArgument mentioning '" << needle << "'";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "fault message was: " << e.what();
  }
}

void expect_same_instance(const FactorizedPackingInstance& a,
                          const FactorizedPackingInstance& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  ASSERT_EQ(a.total_nnz(), b.total_nnz());
  for (Index i = 0; i < a.size(); ++i) {
    const sparse::Csr& qa = a[i].q();
    const sparse::Csr& qb = b[i].q();
    ASSERT_EQ(qa.nnz(), qb.nnz()) << "constraint " << i;
    for (std::size_t p = 0; p < qa.values().size(); ++p) {
      EXPECT_EQ(qa.values()[p], qb.values()[p]) << "constraint " << i;
      EXPECT_EQ(qa.col_indices()[p], qb.col_indices()[p]) << "constraint "
                                                          << i;
    }
    for (std::size_t r = 0; r < qa.row_offsets().size(); ++r) {
      EXPECT_EQ(qa.row_offsets()[r], qb.row_offsets()[r]) << "constraint "
                                                          << i;
    }
  }
}

TEST(Chunked, RoundTripsBitwise) {
  const std::string path = temp_path("roundtrip.chk");
  const FactorizedPackingInstance original = sample_instance();
  save_factorized_chunked(path, original, 3);
  const FactorizedPackingInstance loaded = load_factorized_chunked(path);
  EXPECT_EQ(loaded.shard_count(), 3);
  expect_same_instance(loaded, original);
  std::remove(path.c_str());
}

TEST(Chunked, SingleShardFileYieldsLegacyInstance) {
  const std::string path = temp_path("single.chk");
  const FactorizedPackingInstance original = sample_instance();
  save_factorized_chunked(path, original, 1);
  const FactorizedPackingInstance loaded = load_factorized_chunked(path);
  EXPECT_EQ(loaded.shard_count(), 1);
  EXPECT_FALSE(loaded.sharded().deterministic());
  expect_same_instance(loaded, original);
  std::remove(path.c_str());
}

TEST(Chunked, ShardTableIsContiguousAndBackPatched) {
  // The streaming writer zero-fills the table, writes the payload blocks,
  // then seeks back and patches the real records: the stored offsets must
  // tile the payload region exactly.
  const std::string path = temp_path("table.chk");
  const FactorizedPackingInstance original = sample_instance();
  save_factorized_chunked(path, original, 4);
  ChunkedInstanceReader reader(path);
  ASSERT_EQ(reader.shard_count(), 4);
  const std::uint64_t file_size =
      static_cast<std::uint64_t>(slurp(path).size());
  std::uint64_t cursor = reader.shard_info(0).byte_offset;
  Index constraints = 0;
  for (Index k = 0; k < reader.shard_count(); ++k) {
    const ChunkedShardInfo& info = reader.shard_info(k);
    EXPECT_EQ(info.byte_offset, cursor) << "gap before shard " << k;
    EXPECT_GT(info.byte_size, 0u);
    EXPECT_NE(info.checksum, 0u);  // zero would mean the patch never landed
    cursor += info.byte_size;
    constraints += info.constraint_end - info.constraint_begin;
  }
  EXPECT_EQ(cursor, file_size);
  EXPECT_EQ(constraints, original.size());
  std::remove(path.c_str());
}

TEST(Chunked, MmapAndReadBackendsProduceIdenticalInstances) {
  const std::string path = temp_path("backend.chk");
  save_factorized_chunked(path, sample_instance(), 3);
  ChunkedLoadOptions mapped;
  mapped.use_mmap = true;
  ChunkedLoadOptions buffered;
  buffered.use_mmap = false;
  const FactorizedPackingInstance a = load_factorized_chunked(path, mapped);
  const FactorizedPackingInstance b = load_factorized_chunked(path, buffered);
  {
    ChunkedInstanceReader reader(path, buffered);
    EXPECT_FALSE(reader.mapped());
  }
  expect_same_instance(a, b);
  std::remove(path.c_str());
}

TEST(Chunked, PageReleaseDoesNotAffectContents) {
  const std::string path = temp_path("madvise.chk");
  save_factorized_chunked(path, sample_instance(), 2);
  ChunkedLoadOptions keep;
  keep.release_loaded_pages = false;
  ChunkedLoadOptions release;
  release.release_loaded_pages = true;
  // Shards stay reloadable after their pages were released.
  ChunkedInstanceReader reader(path, release);
  const auto first = reader.load_shard(0);
  const auto again = reader.load_shard(0);
  ASSERT_EQ(first.size(), again.size());
  expect_same_instance(load_factorized_chunked(path, keep),
                       load_factorized_chunked(path, release));
  std::remove(path.c_str());
}

TEST(Chunked, LoadAllRecutsOnRequest) {
  const std::string path = temp_path("recut.chk");
  const FactorizedPackingInstance original = sample_instance();
  save_factorized_chunked(path, original, 4);
  ChunkedInstanceReader reader(path);
  const FactorizedPackingInstance stored = reader.load_all();
  EXPECT_EQ(stored.shard_count(), 4);
  const FactorizedPackingInstance recut = reader.load_all(2);
  EXPECT_EQ(recut.shard_count(), 2);
  const FactorizedPackingInstance legacy = reader.load_all(1);
  EXPECT_EQ(legacy.shard_count(), 1);
  expect_same_instance(stored, recut);
  expect_same_instance(stored, legacy);
  std::remove(path.c_str());
}

TEST(Chunked, SniffsContainerFiles) {
  const std::string chunked = temp_path("sniff.chk");
  const std::string text = temp_path("sniff.psdp");
  const FactorizedPackingInstance original = sample_instance();
  save_factorized_chunked(chunked, original, 2);
  save_factorized(text, original);
  EXPECT_TRUE(is_chunked_instance_file(chunked));
  EXPECT_FALSE(is_chunked_instance_file(text));
  EXPECT_FALSE(is_chunked_instance_file("/nonexistent/path/file.chk"));
  std::remove(chunked.c_str());
  std::remove(text.c_str());
}

// ---------------------------------------------------------------- faults --

TEST(Chunked, RejectsTruncatedHeader) {
  const std::string path = temp_path("truncated.chk");
  spit(path, std::string("PSDPCHK1\x01", 10));
  expect_fault([&] { ChunkedInstanceReader reader(path); },
               "truncated header");
  std::remove(path.c_str());
}

TEST(Chunked, RejectsBadMagic) {
  const std::string path = temp_path("magic.chk");
  save_factorized_chunked(path, sample_instance(), 2);
  std::string bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  expect_fault([&] { ChunkedInstanceReader reader(path); }, "bad magic");
  std::remove(path.c_str());
}

TEST(Chunked, RejectsVersionMismatch) {
  const std::string path = temp_path("version.chk");
  save_factorized_chunked(path, sample_instance(), 2);
  std::string bytes = slurp(path);
  bytes[8] = 99;  // u64 version field starts at offset 8 (little-endian)
  spit(path, bytes);
  expect_fault([&] { ChunkedInstanceReader reader(path); },
               "version mismatch");
  std::remove(path.c_str());
}

TEST(Chunked, RejectsTruncatedShardTable) {
  const std::string path = temp_path("shorttable.chk");
  save_factorized_chunked(path, sample_instance(), 2);
  // Keep the 48-byte header plus half a shard record.
  spit(path, slurp(path).substr(0, 48 + 20));
  expect_fault([&] { ChunkedInstanceReader reader(path); },
               "shard table runs past end of file");
  std::remove(path.c_str());
}

TEST(Chunked, RejectsTornShard) {
  const std::string path = temp_path("torn.chk");
  save_factorized_chunked(path, sample_instance(), 2);
  const std::string bytes = slurp(path);
  // Drop the last 16 payload bytes: the stored table now points past EOF.
  spit(path, bytes.substr(0, bytes.size() - 16));
  expect_fault([&] { ChunkedInstanceReader reader(path); }, "torn shard");
  std::remove(path.c_str());
}

TEST(Chunked, RejectsChecksumMismatch) {
  const std::string path = temp_path("checksum.chk");
  save_factorized_chunked(path, sample_instance(), 2);
  std::string bytes = slurp(path);
  // Flip a mantissa bit of the last value (stays finite, breaks the FNV).
  bytes[bytes.size() - 3] ^= 0x01;
  spit(path, bytes);
  ChunkedInstanceReader reader(path);  // header and table are intact
  expect_fault([&] { reader.load_shard(reader.shard_count() - 1); },
               "checksum mismatch");
  // With verification off the corruption flows through to the values
  // (documented escape hatch for benchmarking the parse alone).
  ChunkedLoadOptions unverified;
  unverified.verify_checksums = false;
  ChunkedInstanceReader lax(path, unverified);
  EXPECT_NO_THROW(lax.load_shard(lax.shard_count() - 1));
  std::remove(path.c_str());
}

TEST(Chunked, RejectsMissingFile) {
  expect_fault(
      [&] { ChunkedInstanceReader reader("/nonexistent/path/file.chk"); },
      "cannot open");
}

}  // namespace
}  // namespace psdp::io
