#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "linalg/eig.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_psd_rank;
using psdp::testing::random_symmetric;

TEST(Cholesky, Known2x2) {
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 5;
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR((*l)(0, 0), 2, 1e-14);
  EXPECT_NEAR((*l)(1, 0), 1, 1e-14);
  EXPECT_NEAR((*l)(1, 1), 2, 1e-14);
}

TEST(Cholesky, ReconstructionProperty) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Matrix a = random_psd(8, seed);
    const auto l = cholesky(a);
    ASSERT_TRUE(l.has_value()) << "seed " << seed;
    const Matrix llt = gemm(*l, l->transposed());
    EXPECT_MATRIX_NEAR(llt, a, 1e-10);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a).has_value());
  EXPECT_FALSE(is_psd(a));
}

TEST(Cholesky, RejectsNegativeDiagonal) {
  Matrix a = Matrix::identity(3);
  a(1, 1) = -0.5;
  EXPECT_FALSE(is_psd(a));
}

TEST(Cholesky, AcceptsRankDeficientPsd) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Matrix a = random_psd_rank(6, 3, seed);
    const auto l = cholesky(a);
    ASSERT_TRUE(l.has_value()) << "seed " << seed;
    EXPECT_MATRIX_NEAR(gemm(*l, l->transposed()), a, 1e-8);
  }
}

TEST(Cholesky, ZeroMatrixIsPsd) {
  EXPECT_TRUE(is_psd(Matrix(4, 4)));
}

TEST(Cholesky, RequiresSymmetric) {
  Matrix a = Matrix::identity(2);
  a(0, 1) = 0.5;  // asymmetric
  EXPECT_THROW(cholesky(a), InvalidArgument);
}

TEST(Cholesky, SolveRoundTrip) {
  const Matrix a = random_psd(6, 42);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  Vector b(6);
  for (Index i = 0; i < 6; ++i) b[i] = static_cast<Real>(i) - 2.5;
  const Vector x = cholesky_solve(*l, b);
  const Vector ax = matvec(a, x);
  for (Index i = 0; i < 6; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(Cholesky, SolveLowerForwardSubstitution) {
  Matrix l(2, 2);
  l(0, 0) = 2;
  l(1, 0) = 1;
  l(1, 1) = 3;
  const Vector y = solve_lower(l, Vector{4, 7});
  EXPECT_NEAR(y[0], 2, 1e-14);
  EXPECT_NEAR(y[1], 5.0 / 3.0, 1e-14);
  const Vector x = solve_lower_transpose(l, y);
  // L^T x = y -> verify by applying L^T.
  EXPECT_NEAR(l(0, 0) * x[0] + l(1, 0) * x[1], y[0], 1e-13);
  EXPECT_NEAR(l(1, 1) * x[1], y[1], 1e-13);
}

TEST(Cholesky, SolveSingularFactorThrows) {
  Matrix l(2, 2);  // zero diagonal
  EXPECT_THROW(solve_lower(l, Vector{1, 1}), NumericalError);
}

TEST(Cholesky, IsPsdAgreesWithEigenvaluesOnRandomSymmetric) {
  // Cross-validate the PSD test against the eigensolver on matrices that
  // are sometimes PSD and sometimes not.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Matrix a = random_symmetric(5, 900 + seed);
    a.add_scaled_identity(1.0);  // shift: some become PSD, some stay not
    const auto eig = jacobi_eig(a);
    const bool psd_by_eig = eig.eigenvalues[4] >= -1e-10;
    EXPECT_EQ(is_psd(a, 1e-9), psd_by_eig) << "seed " << seed;
  }
}

}  // namespace
}  // namespace psdp::linalg
