// Shared helpers for the test suite: random PSD matrix construction and
// matrix comparison assertions.
#pragma once

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "rand/rng.hpp"

namespace psdp::testing {

/// Random symmetric matrix with entries ~ N(0, 1).
inline linalg::Matrix random_symmetric(Index m, std::uint64_t seed) {
  rand::Rng rng(seed);
  linalg::Matrix a(m, m);
  for (Index i = 0; i < m; ++i) {
    for (Index j = i; j < m; ++j) {
      const Real v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

/// Random PSD matrix G G^T / m with G an m x m Gaussian matrix (full rank
/// almost surely, eigenvalues O(1)).
inline linalg::Matrix random_psd(Index m, std::uint64_t seed) {
  rand::Rng rng(seed);
  linalg::Matrix g(m, m);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < m; ++j) g(i, j) = rng.normal();
  }
  linalg::Matrix a = linalg::gemm(g, g.transposed());
  a.scale(Real{1} / static_cast<Real>(m));
  a.symmetrize();
  return a;
}

/// Random rank-deficient PSD matrix (rank r < m).
inline linalg::Matrix random_psd_rank(Index m, Index r, std::uint64_t seed) {
  rand::Rng rng(seed);
  linalg::Matrix g(m, r);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < r; ++j) g(i, j) = rng.normal();
  }
  linalg::Matrix a = linalg::gemm(g, g.transposed());
  a.scale(Real{1} / static_cast<Real>(m));
  a.symmetrize();
  return a;
}

#define EXPECT_MATRIX_NEAR(a, b, tol)                                  \
  EXPECT_LE(::psdp::linalg::max_abs_diff((a), (b)), (tol))             \
      << "matrices differ by more than " << (tol)

}  // namespace psdp::testing
