// Tests for problem types, the Appendix-A normalization, and the Lemma 2.2
// trace-bounding preprocessing.
#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eig.hpp"
#include "linalg/matfunc.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_psd_rank;

PackingInstance two_identities(Index m) {
  return PackingInstance({Matrix::identity(m), Matrix::identity(m)});
}

TEST(PackingInstance, BasicAccessorsAndTraces) {
  const PackingInstance inst = two_identities(3);
  EXPECT_EQ(inst.size(), 2);
  EXPECT_EQ(inst.dim(), 3);
  EXPECT_EQ(inst.constraint_trace(0), 3);
  EXPECT_THROW(inst[2], InvalidArgument);
  EXPECT_THROW(inst.constraint_trace(-1), InvalidArgument);
}

TEST(PackingInstance, ScaledMultipliesConstraints) {
  const PackingInstance inst = two_identities(2).scaled(2.5);
  EXPECT_EQ(inst[0](0, 0), 2.5);
  EXPECT_EQ(inst.constraint_trace(1), 5.0);
  EXPECT_THROW(inst.scaled(0.0), InvalidArgument);
}

TEST(PackingInstance, ValidateRejectsBadInput) {
  EXPECT_THROW(PackingInstance(std::vector<Matrix>{}), InvalidArgument);
  // Inconsistent dimensions.
  EXPECT_THROW(
      PackingInstance({Matrix::identity(2), Matrix::identity(3)}),
      InvalidArgument);
  // Zero constraint.
  {
    const PackingInstance z({Matrix::identity(2), Matrix(2, 2)});
    EXPECT_THROW(z.validate(false), InvalidArgument);
  }
  // Asymmetric constraint.
  {
    Matrix bad = Matrix::identity(2);
    bad(0, 1) = 0.3;
    const PackingInstance a({bad});
    EXPECT_THROW(a.validate(false), InvalidArgument);
  }
  // Indefinite constraint caught with check_psd (trace kept positive so
  // only the PSD check can object).
  {
    Matrix indef = Matrix::identity(2);
    indef(1, 1) = -0.5;
    const PackingInstance p({indef});
    EXPECT_THROW(p.validate(true), InvalidArgument);
    EXPECT_NO_THROW(p.validate(false));
  }
}

TEST(FactorizedPackingInstance, TracesAndScaling) {
  std::vector<sparse::FactorizedPsd> items;
  items.push_back(sparse::FactorizedPsd::rank_one(linalg::Vector{3, 4}));
  FactorizedPackingInstance inst{sparse::FactorizedSet(std::move(items))};
  EXPECT_NEAR(inst.constraint_trace(0), 25.0, 1e-12);
  const FactorizedPackingInstance scaled = inst.scaled(4.0);
  EXPECT_NEAR(scaled.constraint_trace(0), 100.0, 1e-12);
  // Dense conversion agrees.
  EXPECT_MATRIX_NEAR(scaled.to_dense()[0],
                     linalg::Matrix::outer(linalg::Vector{6, 8}), 1e-12);
}

TEST(CoveringProblem, ValidateCatchesStructuralErrors) {
  CoveringProblem p;
  p.objective = Matrix::identity(2);
  p.constraints.push_back(Matrix::identity(2));
  p.rhs = Vector{1};
  EXPECT_NO_THROW(p.validate());
  p.rhs = Vector{-1};
  EXPECT_THROW(p.validate(), InvalidArgument);
  p.rhs = Vector{1, 2};  // wrong length
  EXPECT_THROW(p.validate(), InvalidArgument);
}

// ------------------------------------------------------------------
// Appendix A normalization.
// ------------------------------------------------------------------

TEST(Normalize, MatchesManualFormulaOnFullRankObjective) {
  CoveringProblem p;
  p.objective = random_psd(4, 8);
  p.constraints.push_back(random_psd(4, 9));
  p.constraints.push_back(random_psd(4, 10));
  p.rhs = Vector{2.0, 0.5};
  const NormalizedProblem norm = normalize(p);
  ASSERT_EQ(norm.packing.size(), 2);
  const Matrix c_is = linalg::inv_sqrt_psd(p.objective);
  for (Index i = 0; i < 2; ++i) {
    Matrix want = linalg::gemm(
        c_is, linalg::gemm(p.constraints[static_cast<std::size_t>(i)], c_is));
    want.symmetrize();
    want.scale(1 / p.rhs[i]);
    EXPECT_MATRIX_NEAR(norm.packing[i], want, 1e-8);
  }
}

TEST(Normalize, DropsZeroRhsConstraints) {
  CoveringProblem p;
  p.objective = Matrix::identity(3);
  p.constraints.push_back(Matrix::identity(3));
  p.constraints.push_back(random_psd(3, 2));
  p.rhs = Vector{0.0, 1.0};
  const NormalizedProblem norm = normalize(p);
  EXPECT_EQ(norm.packing.size(), 1);
  EXPECT_EQ(norm.kept, std::vector<Index>{1});
}

TEST(Normalize, AllZeroRhsRejected) {
  CoveringProblem p;
  p.objective = Matrix::identity(2);
  p.constraints.push_back(Matrix::identity(2));
  p.rhs = Vector{0.0};
  EXPECT_THROW(normalize(p), InvalidArgument);
}

TEST(Normalize, RejectsConstraintOutsideObjectiveSupport) {
  CoveringProblem p;
  // C supported on coordinate 0 only; A demands coordinate 1.
  p.objective = Matrix(2, 2);
  p.objective(0, 0) = 1;
  Matrix a(2, 2);
  a(1, 1) = 1;
  p.constraints.push_back(a);
  p.rhs = Vector{1.0};
  EXPECT_THROW(normalize(p), InvalidArgument);
}

TEST(Normalize, DenormalizeInvertsTheTransformation) {
  CoveringProblem p;
  p.objective = random_psd(3, 50);
  p.constraints.push_back(random_psd(3, 51));
  p.rhs = Vector{1.0};
  const NormalizedProblem norm = normalize(p);
  const Matrix z = random_psd(3, 52);
  const Matrix y = denormalize_primal(norm, z);
  // C . Y = Tr[Z] and A . Y = b * (B . Z): the definitional identities.
  EXPECT_NEAR(linalg::frobenius_dot(p.objective, y), linalg::trace(z), 1e-8);
  EXPECT_NEAR(linalg::frobenius_dot(p.constraints[0], y),
              p.rhs[0] * linalg::frobenius_dot(norm.packing[0], z), 1e-8);
}

TEST(Normalize, IdentityObjectiveIsPassThrough) {
  CoveringProblem p;
  p.objective = Matrix::identity(3);
  p.constraints.push_back(random_psd(3, 60));
  p.rhs = Vector{2.0};
  const NormalizedProblem norm = normalize(p);
  Matrix want = p.constraints[0];
  want.scale(0.5);
  EXPECT_MATRIX_NEAR(norm.packing[0], want, 1e-9);
}

// ------------------------------------------------------------------
// Lemma 2.2 trace bounding.
// ------------------------------------------------------------------

TEST(BoundTraces, KeepsEverythingWhenTracesAreComparable) {
  const PackingInstance inst = two_identities(3);
  const TraceBoundResult r = bound_traces(inst);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.instance.size(), 2);
}

TEST(BoundTraces, DropsHugeTraceCoordinates) {
  std::vector<Matrix> constraints;
  constraints.push_back(Matrix::identity(2));  // trace 2
  Matrix huge = Matrix::identity(2);
  huge.scale(1e9);  // trace 2e9 >= n^3 * 2 = 16
  constraints.push_back(huge);
  const PackingInstance inst{std::move(constraints)};
  const TraceBoundResult r = bound_traces(inst);
  EXPECT_EQ(r.dropped, 1);
  ASSERT_EQ(r.instance.size(), 1);
  EXPECT_EQ(r.kept, std::vector<Index>{0});
}

TEST(BoundTraces, CustomCapFactor) {
  std::vector<Matrix> constraints;
  constraints.push_back(Matrix::identity(2));
  Matrix big = Matrix::identity(2);
  big.scale(10);
  constraints.push_back(big);
  const PackingInstance inst{std::move(constraints)};
  EXPECT_EQ(bound_traces(inst, 100.0).dropped, 0);
  EXPECT_EQ(bound_traces(inst, 5.0).dropped, 1);
}

TEST(BoundTraces, MinTraceConstraintAlwaysSurvives) {
  std::vector<Matrix> constraints;
  for (int i = 0; i < 4; ++i) {
    Matrix a = Matrix::identity(2);
    a.scale(std::pow(10.0, i * 4));
    constraints.push_back(std::move(a));
  }
  const PackingInstance inst{std::move(constraints)};
  const TraceBoundResult r = bound_traces(inst);
  EXPECT_GE(r.instance.size(), 1);
  EXPECT_EQ(r.kept[0], 0);
}

}  // namespace
}  // namespace psdp::core
