// The solverd daemon over the loopback transport: frame codec round trips
// and fault injection (torn frames, bad magic, oversized payloads), the
// hex-bits wire codec's bitwise identity, request -> streamed-result flow,
// per-job failure isolation, malformed-line errors with source:line names,
// backpressure frames from admission control, graceful drain with a
// mid-solve (preempted) job, and client disconnects mid-stream. Every
// daemon behavior here runs with no OS sockets, so the suite is
// deterministic and ASan/UBSan-clean by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "apps/generators.hpp"
#include "core/optimize.hpp"
#include "io/instance_io.hpp"
#include "linalg/vector.hpp"
#include "par/parallel.hpp"
#include "serve/manifest.hpp"
#include "serve/solverd.hpp"
#include "serve/transport.hpp"
#include "util/tunables.hpp"
#include "util/wire.hpp"

namespace psdp::serve {
namespace {

/// RAII guard: restore the global thread count on scope exit.
struct ThreadGuard {
  int before = par::num_threads();
  ~ThreadGuard() { par::set_num_threads(before); }
};

bool wait_until(const std::function<bool()>& done, double seconds = 20) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::yield();
  }
  return done();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "psdp_solverd_" + name;
}

std::shared_ptr<const core::FactorizedPackingInstance> small_factorized(
    std::uint64_t seed) {
  return std::make_shared<const core::FactorizedPackingInstance>(
      apps::random_factorized(
          {.n = 6, .m = 64, .rank = 2, .nnz_per_column = 4, .seed = seed}));
}

core::OptimizeOptions loose_options() {
  core::OptimizeOptions options;
  options.eps = 0.5;
  options.decision_eps = 0.3;
  options.probe_solver = core::ProbeSolver::kPhased;
  options.decision.dot_options.sketch_rows_override = 8;
  return options;
}

/// The manifest options matching loose_options(), as a wire line suffix.
constexpr const char* kLooseKeys =
    " eps=0.5 decision-eps=0.3 probe=phased sketch-rows=8";

/// Save a small factorized instance and return its path; the manifest line
/// "packing-factorized <path><kLooseKeys>" then solves bitwise like
/// core::approx_packing(*small_factorized(seed), loose_options()).
std::string save_factorized(const std::string& name, std::uint64_t seed) {
  const std::string path = temp_path(name);
  io::save_factorized(path, *small_factorized(seed));
  return path;
}

std::string save_lp(const std::string& name) {
  const std::string path = temp_path(name);
  io::save_lp(path, apps::complete_graph_matching_lp(6).lp);
  return path;
}

JobResult packing_reference(std::uint64_t seed) {
  JobResult ref;
  ref.ok = true;
  ref.kind = JobKind::kPackingFactorized;
  ref.packing = core::approx_packing(*small_factorized(seed), loose_options());
  return ref;
}

// ---------------------------------------------------------------------------
// Frame codec over a raw loopback pair.
// ---------------------------------------------------------------------------

TEST(Transport, FrameRoundTripAndCleanEofAtBoundary) {
  auto [client, server] = loopback_pair();
  EXPECT_TRUE(write_frame(*client, FrameType::kSubmit, "packing-lp a.psdp"));
  EXPECT_TRUE(write_frame(*client, FrameType::kGoodbye, ""));
  EXPECT_TRUE(write_frame(*client, FrameType::kResult, std::string(1000, 'x')));
  client->close();

  std::optional<Frame> frame = read_frame(*server);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kSubmit);
  EXPECT_EQ(frame->payload, "packing-lp a.psdp");
  frame = read_frame(*server);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kGoodbye);
  EXPECT_TRUE(frame->payload.empty());
  frame = read_frame(*server);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), 1000u);
  // EOF exactly at a frame boundary is a clean end of stream.
  EXPECT_FALSE(read_frame(*server).has_value());
}

TEST(Transport, ByteAtATimeDeliveryStillFrames) {
  auto [client, server] = loopback_pair();
  std::string bytes;
  {
    // Render one frame into a buffer by writing it through a scratch pair.
    auto [w, r] = loopback_pair();
    write_frame(*w, FrameType::kSubmit, "torn-but-complete");
    char chunk[64];
    std::size_t n = 0;
    w->close();
    while ((n = r->read_some(chunk, sizeof chunk)) > 0) bytes.append(chunk, n);
  }
  std::thread dripper([&] {
    for (const char byte : bytes) {
      ASSERT_TRUE(client->write_all(&byte, 1));
      std::this_thread::yield();
    }
  });
  const std::optional<Frame> frame = read_frame(*server);
  dripper.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "torn-but-complete");
}

TEST(Transport, TornHeaderThrowsProtocolError) {
  auto [client, server] = loopback_pair();
  const char half[4] = {'P', 's', 'S', 0};  // 4 of 8 header bytes
  EXPECT_TRUE(client->write_all(half, sizeof half));
  client->close();
  EXPECT_THROW(read_frame(*server), ProtocolError);
}

TEST(Transport, TornPayloadThrowsProtocolError) {
  auto [client, server] = loopback_pair();
  // A valid header promising 10 payload bytes, then only 3 and EOF.
  const unsigned char header[8] = {'P', 's', 'S', 0, 10, 0, 0, 0};
  EXPECT_TRUE(
      client->write_all(reinterpret_cast<const char*>(header), sizeof header));
  EXPECT_TRUE(client->write_all("abc", 3));
  client->close();
  EXPECT_THROW(read_frame(*server), ProtocolError);
}

TEST(Transport, BadMagicAndUnknownTypeThrow) {
  {
    auto [client, server] = loopback_pair();
    const unsigned char header[8] = {'X', 'Y', 'S', 0, 0, 0, 0, 0};
    client->write_all(reinterpret_cast<const char*>(header), sizeof header);
    EXPECT_THROW(read_frame(*server), ProtocolError);
  }
  {
    auto [client, server] = loopback_pair();
    const unsigned char header[8] = {'P', 's', 'z', 0, 0, 0, 0, 0};
    client->write_all(reinterpret_cast<const char*>(header), sizeof header);
    EXPECT_THROW(read_frame(*server), ProtocolError);
  }
}

TEST(Transport, OversizedPayloadRefusedBeforeAnyPayloadRead) {
  auto [client, server] = loopback_pair();
  // Length 2^24 against a 64-byte limit: must throw on the header alone.
  const unsigned char header[8] = {'P', 's', 'S', 0, 0, 0, 0, 1};
  client->write_all(reinterpret_cast<const char*>(header), sizeof header);
  FrameLimits limits;
  limits.max_payload = 64;
  EXPECT_THROW(read_frame(*server, limits), ProtocolError);
}

TEST(Transport, WriteToClosedPeerFailsWithoutThrowing) {
  auto [client, server] = loopback_pair();
  server->close();
  EXPECT_FALSE(write_frame(*client, FrameType::kSubmit, "anyone there?"));
}

TEST(Transport, ListenerShutdownUnblocksAcceptAndRefusesConnect) {
  LoopbackListener listener;
  std::thread acceptor([&] { EXPECT_EQ(listener.accept(), nullptr); });
  listener.shutdown();
  acceptor.join();
  EXPECT_THROW(listener.connect(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Wire scalar codec: bit-exact doubles, token-safe text.
// ---------------------------------------------------------------------------

TEST(WireCodec, HexBitsRoundTripsEveryBitPattern) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0 / 3.0,
                          0.1,
                          -1e308,
                          5e-324,  // smallest denormal
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN()};
  for (const double v : cases) {
    const double back = util::from_hex_bits(util::hex_bits(v), "t");
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
        << v << " -> " << util::hex_bits(v);
  }
  EXPECT_EQ(util::hex_bits(0.0), "0000000000000000");
  EXPECT_THROW(util::from_hex_bits("123", "t"), InvalidArgument);
  EXPECT_THROW(util::from_hex_bits("123456789abcdefg", "t"), InvalidArgument);
}

TEST(WireCodec, EscapeMakesTokensAndRoundTrips) {
  const std::string nasty = "a b\\c\nline2\rend s\\n";
  const std::string escaped = util::escape_line(nasty);
  EXPECT_EQ(escaped.find(' '), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(util::unescape_line(escaped), nasty);
}

TEST(Solverd, ResultLineCodecRoundTripsEveryKind) {
  JobResult packing;
  packing.ok = true;
  packing.kind = JobKind::kPackingFactorized;
  packing.instance = "my instance";
  packing.label = "tiny #3";
  packing.cache_hit = true;
  packing.lane = 2;
  packing.preemptions = 1;
  packing.promoted = true;
  packing.queue_seconds = 0.25;
  packing.run_seconds = 1.0 / 3.0;
  packing.deadline_ms = 12.5;
  packing.deadline_met = false;
  packing.packing.lower = 0.1;
  packing.packing.upper = 0.30000000000000004;
  packing.packing.best_x = linalg::Vector{1.0 / 7.0, -0.0, 5e-324};

  const WireResult decoded = decode_result_line(encode_result_line(7, packing));
  EXPECT_EQ(decoded.id, 7u);
  const JobResult& r = decoded.result;
  EXPECT_TRUE(payload_bitwise_equal(r, packing));
  EXPECT_EQ(r.instance, "my instance");
  EXPECT_EQ(r.label, "tiny #3");
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.lane, 2);
  EXPECT_EQ(r.preemptions, 1);
  EXPECT_TRUE(r.promoted);
  EXPECT_EQ(r.queue_seconds, 0.25);
  EXPECT_EQ(r.run_seconds, 1.0 / 3.0);
  EXPECT_EQ(r.seconds, r.run_seconds);
  EXPECT_EQ(r.deadline_ms, 12.5);
  EXPECT_FALSE(r.deadline_met);

  JobResult covering;
  covering.ok = true;
  covering.kind = JobKind::kCovering;
  covering.covering.objective = 2.5;
  covering.covering.lower_bound = 2.25;
  covering.covering.packing.lower = 0.9;
  covering.covering.packing.upper = 1.1;
  EXPECT_TRUE(payload_bitwise_equal(
      decode_result_line(encode_result_line(1, covering)).result, covering));

  JobResult failed;  // failures carry the error text, escaped
  failed.kind = JobKind::kPackingLp;
  failed.ok = false;
  failed.error = "io: cannot open 'no such.psdp'\nsecond line";
  const JobResult back = decode_result_line(encode_result_line(2, failed)).result;
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, failed.error);

  JobResult empty_x;  // an empty witness vector survives the round trip
  empty_x.ok = true;
  empty_x.kind = JobKind::kPackingLp;
  empty_x.lp.lower = 1;
  empty_x.lp.upper = 2;
  EXPECT_TRUE(payload_bitwise_equal(
      decode_result_line(encode_result_line(3, empty_x)).result, empty_x));

  EXPECT_THROW(decode_result_line("kind=packing-lp ok=1"), InvalidArgument);
  EXPECT_THROW(decode_result_line("id=1 kind=packing-lp ok=maybe"),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// The daemon over loopback.
// ---------------------------------------------------------------------------

/// One in-process daemon on its own thread, stopped and joined on scope
/// exit whatever the test body did.
struct DaemonHarness {
  LoopbackListener listener;
  Solverd daemon;
  std::thread thread;

  explicit DaemonHarness(SolverdOptions options = {})
      : daemon(listener, std::move(options)),
        thread([this] { daemon.serve(); }) {}

  SolverdClient connect() { return SolverdClient(listener.connect()); }

  ~DaemonHarness() {
    daemon.stop();
    thread.join();
  }
};

TEST(Solverd, SubmitStreamsBitwiseIdenticalResultsAndDrainsClean) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string path = save_factorized("stream.psdp", 3);
  const JobResult ref = packing_reference(3);

  DaemonHarness harness;
  SolverdClient client = harness.connect();
  // Two jobs sharing one cache key plus a distinct label: the daemon runs
  // the exact manifest format, so every key works over the wire.
  ASSERT_TRUE(client.submit(str("packing-factorized ", path, kLooseKeys,
                                " id=shared label=first\n",
                                "packing-factorized ", path, kLooseKeys,
                                " id=shared label=second priority=1\n")));
  const SolverdClient::Drain drain = client.drain();
  EXPECT_TRUE(drain.done);
  EXPECT_TRUE(drain.errors.empty());
  ASSERT_EQ(drain.results.size(), 2u);
  EXPECT_TRUE(drain.backpressure.empty());

  std::vector<bool> seen(2, false);
  for (const WireResult& wire : drain.results) {
    ASSERT_GE(wire.id, 1u);
    ASSERT_LE(wire.id, 2u);
    seen[wire.id - 1] = true;
    ASSERT_TRUE(wire.result.ok) << wire.result.error;
    EXPECT_EQ(wire.result.instance, "shared");
    EXPECT_EQ(wire.result.label, wire.id == 1 ? "first" : "second");
    // The daemon solved a file-loaded instance inside a lane; the client
    // decoded hex bit patterns. Identical bits to an in-process solo run.
    EXPECT_TRUE(payload_bitwise_equal(wire.result, ref))
        << "wire payload diverged for id " << wire.id;
  }
  EXPECT_TRUE(seen[0] && seen[1]);

  const SolverdStats stats = harness.daemon.stats();
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.results, 2u);
  EXPECT_EQ(stats.parse_errors, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(Solverd, EachSubmitStreamsItsResultBeforeTheNext) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string path = save_lp("order.psdp");
  DaemonHarness harness;
  SolverdClient client = harness.connect();
  // Strict request -> response alternation: each frame's single job must
  // come back before the next frame is even sent.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.submit(str("packing-lp ", path, " eps=0.3")));
    const std::optional<Frame> frame = client.read();
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, FrameType::kResult);
    const WireResult wire = decode_result_line(frame->payload);
    EXPECT_EQ(wire.id, static_cast<std::uint64_t>(i));
    EXPECT_TRUE(wire.result.ok) << wire.result.error;
    EXPECT_EQ(wire.result.kind, JobKind::kPackingLp);
  }
  const SolverdClient::Drain drain = client.drain();
  EXPECT_TRUE(drain.done);
  EXPECT_TRUE(drain.results.empty());  // everything was read inline
}

TEST(Solverd, PerJobFailureIsIsolatedFromTheRestOfTheFrame) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string good = save_lp("isolate.psdp");
  DaemonHarness harness;
  SolverdClient client = harness.connect();
  // Job 2's instance file does not exist: its *solve* fails (manifest
  // paths resolve lazily), the other two jobs are untouched, and the
  // failure comes back as a result frame, not a dropped connection.
  ASSERT_TRUE(client.submit(str("packing-lp ", good, " eps=0.3\n",
                                "packing-lp /no/such/file.psdp eps=0.3\n",
                                "packing-lp ", good, " eps=0.3\n")));
  const SolverdClient::Drain drain = client.drain();
  EXPECT_TRUE(drain.done);
  ASSERT_EQ(drain.results.size(), 3u);
  int ok_count = 0, failed_count = 0;
  for (const WireResult& wire : drain.results) {
    if (wire.result.ok) {
      ++ok_count;
    } else {
      ++failed_count;
      EXPECT_EQ(wire.id, 2u);
      EXPECT_NE(wire.result.error.find("/no/such/file.psdp"),
                std::string::npos)
          << wire.result.error;
    }
  }
  EXPECT_EQ(ok_count, 2);
  EXPECT_EQ(failed_count, 1);
}

TEST(Solverd, MalformedLinesAnswerNamedErrorsWithoutPoisoningTheSession) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string good = save_lp("malformed.psdp");
  DaemonHarness harness;
  SolverdClient client = harness.connect();
  // Lines 1 and 3 are malformed; 2 and 4 are fine. Errors must name the
  // per-connection source and line, exactly like a file manifest names
  // path:line -- and later lines still submit.
  ASSERT_TRUE(client.submit(str("warp-drive ", good, "\n",
                                "packing-lp ", good, " eps=0.3\n",
                                "packing-lp ", good, " eps=bogus\n",
                                "packing-lp ", good, " eps=0.3\n")));
  SolverdClient::Drain drain = client.drain();
  EXPECT_TRUE(drain.done);
  EXPECT_EQ(drain.results.size(), 2u);
  ASSERT_EQ(drain.errors.size(), 2u);
  EXPECT_NE(drain.errors[0].find("scope=frame"), std::string::npos);
  EXPECT_NE(drain.errors[0].find("conn1:1:"), std::string::npos)
      << drain.errors[0];
  EXPECT_NE(drain.errors[0].find("warp-drive"), std::string::npos);
  EXPECT_NE(drain.errors[1].find("conn1:3:"), std::string::npos)
      << drain.errors[1];
  EXPECT_NE(drain.errors[1].find("bogus"), std::string::npos);
  EXPECT_EQ(harness.daemon.stats().parse_errors, 2u);
  EXPECT_EQ(harness.daemon.stats().protocol_errors, 0u);

  // Line numbers keep counting across frames of one connection.
  SolverdClient again = harness.connect();
  ASSERT_TRUE(again.submit(str("packing-lp ", good, " eps=0.3\n")));
  ASSERT_TRUE(again.submit("set\n"));
  const SolverdClient::Drain drain2 = again.drain();
  ASSERT_EQ(drain2.errors.size(), 1u);
  EXPECT_NE(drain2.errors[0].find("conn2:2:"), std::string::npos)
      << drain2.errors[0];
}

TEST(Solverd, SetLinesApplyToTheRegistryAndCanBeDisabled) {
  ThreadGuard guard;
  par::set_num_threads(2);
  struct Restore {
    ~Restore() { util::tunables().reset(); }
  } restore;
  const std::string good = save_lp("setlines.psdp");
  {
    DaemonHarness harness;  // default: set lines honored
    SolverdClient client = harness.connect();
    ASSERT_TRUE(client.submit(str("set wide_work=1048576\n",
                                  "packing-lp ", good, " eps=0.3\n")));
    const SolverdClient::Drain drain = client.drain();
    EXPECT_TRUE(drain.done);
    EXPECT_TRUE(drain.errors.empty());
    EXPECT_EQ(drain.results.size(), 1u);
    // Loopback shares the process: the override is observable right here.
    EXPECT_EQ(util::tunables().get(util::TunableId::k_wide_work), 1048576);
  }
  util::tunables().reset();
  {
    SolverdOptions options;
    options.apply_set_lines = false;
    DaemonHarness harness(options);
    SolverdClient client = harness.connect();
    ASSERT_TRUE(client.submit(str("set wide_work=1048576\n",
                                  "packing-lp ", good, " eps=0.3\n")));
    const SolverdClient::Drain drain = client.drain();
    EXPECT_TRUE(drain.done);
    ASSERT_EQ(drain.errors.size(), 1u);
    EXPECT_NE(drain.errors[0].find("disabled"), std::string::npos)
        << drain.errors[0];
    EXPECT_EQ(drain.results.size(), 1u);  // the job line still ran
    EXPECT_NE(util::tunables().get(util::TunableId::k_wide_work), 1048576);
  }
}

TEST(Solverd, AdmissionControlSurfacesAsBackpressureFrames) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string path = save_lp("pressure.psdp");
  SolverdOptions options;
  options.lanes = 1;
  options.scheduler.max_queue = 1;
  options.scheduler.admission = AdmissionPolicy::kReject;
  DaemonHarness harness(options);
  SolverdClient client = harness.connect();
  // Six jobs in one frame against one lane and one queue seat: whatever
  // the claim race does, at least one arrival finds the seat taken and is
  // bounced -- and the bounce arrives as a kBackpressure frame naming the
  // full queue, not as silence.
  std::string lines;
  for (int i = 0; i < 6; ++i) {
    lines += str("packing-lp ", path, " eps=0.3 label=j", i, "\n");
  }
  ASSERT_TRUE(client.submit(lines));
  const SolverdClient::Drain drain = client.drain();
  EXPECT_TRUE(drain.done);
  EXPECT_EQ(drain.results.size() + drain.backpressure.size(), 6u);
  ASSERT_GE(drain.backpressure.size(), 1u);
  for (const WireResult& wire : drain.backpressure) {
    EXPECT_TRUE(wire.result.shed);
    EXPECT_FALSE(wire.result.ok);
    EXPECT_NE(wire.result.error.find("queue full"), std::string::npos)
        << wire.result.error;
  }
  const SolverdStats stats = harness.daemon.stats();
  EXPECT_EQ(stats.backpressure, drain.backpressure.size());
  EXPECT_EQ(stats.results, drain.results.size());
}

TEST(Solverd, GracefulStopDrainsAMidSolvePreemptedJob) {
  ThreadGuard guard;
  par::set_num_threads(4);
  const std::string path = save_factorized("drain.psdp", 22);
  const JobResult ref = packing_reference(22);

  SolverdOptions options;
  options.lanes = 1;  // the wire job can only run by borrowing the lane
  DaemonHarness harness(options);
  SolverdClient client = harness.connect();

  // A warm-up round trip: once its result is back, serve() has provably
  // opened the scheduler, so direct submission below cannot race it.
  const std::string warm = save_lp("drain_warm.psdp");
  ASSERT_TRUE(client.submit(str("packing-lp ", warm, " eps=0.3\n")));
  {
    const std::optional<Frame> frame = client.read();
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, FrameType::kResult);
  }

  // A gated no-deadline job parked mid-claim on the daemon's own
  // scheduler: deterministic staging for "stop() while a solve is
  // mid-flight". (Direct submission is the same scheduler the sessions
  // use; only the transport differs.)
  std::atomic<bool> started{false};
  std::atomic<bool> gate{false};
  const auto slow_instance = small_factorized(21);
  std::atomic<bool> slow_done{false};
  std::atomic<int> slow_preemptions{0};
  JobSpec slow;
  slow.instance = "slow";
  slow.kind = JobKind::kPackingFactorized;
  slow.options = loose_options();
  slow.builder = [slow_instance, &started,
                  &gate](const sparse::TransposePlanOptions&) {
    started.store(true);
    while (!gate.load()) std::this_thread::yield();
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingFactorized;
    prepared.factorized = slow_instance;
    return prepared;
  };
  slow.on_complete = [&](const JobResult& r) {
    slow_preemptions.store(r.preemptions);
    slow_done.store(true);
  };
  harness.daemon.scheduler().submit(slow);
  ASSERT_TRUE(wait_until([&] { return started.load(); }));

  // An urgent wire job behind it (a deadline outranks none under EDF).
  ASSERT_TRUE(client.submit(str("packing-factorized ", path, kLooseKeys,
                                " deadline-ms=60000\n")));
  ASSERT_TRUE(
      wait_until([&] { return harness.daemon.stats().jobs == 2; }));

  // Open the gate and stop the daemon while the slow solve is mid-run:
  // the urgent job preempts it at a round boundary, its result must still
  // stream out, and the session must still end with a clean kDone.
  gate.store(true);
  harness.daemon.stop();

  const SolverdClient::Drain drain = client.drain();
  EXPECT_TRUE(drain.done);
  ASSERT_EQ(drain.results.size(), 1u);
  EXPECT_TRUE(drain.results[0].result.ok) << drain.results[0].result.error;
  EXPECT_TRUE(payload_bitwise_equal(drain.results[0].result, ref));

  ASSERT_TRUE(wait_until([&] { return slow_done.load(); }));
  EXPECT_GE(slow_preemptions.load(), 1)
      << "the wire job should have borrowed the busy lane";
  EXPECT_GE(harness.daemon.scheduler().stats().preemptions, 1u);
}

TEST(Solverd, ClientDisconnectMidStreamNeverWedgesALane) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string path = save_lp("vanish.psdp");
  SolverdOptions options;
  options.lanes = 1;
  DaemonHarness harness(options);

  {
    SolverdClient rude = harness.connect();
    std::string lines;
    for (int i = 0; i < 3; ++i) {
      lines += str("packing-lp ", path, " eps=0.3\n");
    }
    ASSERT_TRUE(rude.submit(lines));
    ASSERT_TRUE(wait_until([&] { return harness.daemon.stats().jobs == 3; }));
    rude.connection().close();  // walk away without reading a single result
  }
  // Every job still completes; deliveries against the dead peer are
  // counted, never thrown, and the lane moves on.
  ASSERT_TRUE(wait_until([&] {
    const SolverdStats s = harness.daemon.stats();
    return s.results + s.write_failures == 3;
  }));
  EXPECT_GE(harness.daemon.stats().write_failures, 1u);

  // A fresh connection gets full service from the same (unwedged) lane.
  SolverdClient polite = harness.connect();
  ASSERT_TRUE(polite.submit(str("packing-lp ", path, " eps=0.3\n")));
  const SolverdClient::Drain drain = polite.drain();
  EXPECT_TRUE(drain.done);
  ASSERT_EQ(drain.results.size(), 1u);
  EXPECT_TRUE(drain.results[0].result.ok) << drain.results[0].result.error;
}

TEST(Solverd, OversizedFrameIsFatalToTheConnectionNotTheDaemon) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string path = save_lp("oversize.psdp");
  SolverdOptions options;
  options.max_frame_bytes = 64;
  DaemonHarness harness(options);

  SolverdClient big = harness.connect();
  ASSERT_TRUE(big.submit(std::string(200, '#')));  // over the 64-byte limit
  const SolverdClient::Drain drain = big.drain();
  EXPECT_TRUE(drain.done);  // the daemon still drains and says goodbye
  ASSERT_EQ(drain.errors.size(), 1u);
  EXPECT_NE(drain.errors[0].find("scope=connection"), std::string::npos)
      << drain.errors[0];
  EXPECT_EQ(harness.daemon.stats().protocol_errors, 1u);

  SolverdClient ok = harness.connect();
  ASSERT_TRUE(ok.submit(str("packing-lp ", path, " eps=0.3\n")));
  EXPECT_EQ(ok.drain().results.size(), 1u);
}

TEST(Solverd, GarbageAndBackwardsFramesAreRefusedPerConnection) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string path = save_lp("garbage.psdp");
  DaemonHarness harness;
  {
    SolverdClient garbage = harness.connect();
    // Raw bytes that are not a frame: bad magic, fatal to this connection.
    ASSERT_TRUE(garbage.connection().write_all("GARBAGEGARBAGE", 14));
    const SolverdClient::Drain drain = garbage.drain();
    EXPECT_TRUE(drain.done);
    ASSERT_EQ(drain.errors.size(), 1u);
    EXPECT_NE(drain.errors[0].find("scope=connection"), std::string::npos);
  }
  {
    // A well-formed frame of a server->client type: syntactically valid,
    // semantically refused.
    SolverdClient backwards = harness.connect();
    ASSERT_TRUE(write_frame(backwards.connection(), FrameType::kResult,
                            "id=1 kind=packing-lp"));
    const SolverdClient::Drain drain = backwards.drain();
    EXPECT_TRUE(drain.done);
    ASSERT_EQ(drain.errors.size(), 1u);
    EXPECT_NE(drain.errors[0].find("unexpected"), std::string::npos)
        << drain.errors[0];
  }
  EXPECT_EQ(harness.daemon.stats().protocol_errors, 2u);

  SolverdClient fine = harness.connect();
  ASSERT_TRUE(fine.submit(str("packing-lp ", path, " eps=0.3\n")));
  EXPECT_EQ(fine.drain().results.size(), 1u);
}

TEST(Solverd, ConnectionsShareOneWarmArtifactCache) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string path = save_factorized("warm.psdp", 5);
  DaemonHarness harness;
  {
    SolverdClient first = harness.connect();
    ASSERT_TRUE(first.submit(
        str("packing-factorized ", path, kLooseKeys, " id=warmkey\n")));
    const SolverdClient::Drain drain = first.drain();
    ASSERT_EQ(drain.results.size(), 1u);
    EXPECT_FALSE(drain.results[0].result.cache_hit);
  }
  {
    SolverdClient second = harness.connect();
    ASSERT_TRUE(second.submit(
        str("packing-factorized ", path, kLooseKeys, " id=warmkey\n")));
    const SolverdClient::Drain drain = second.drain();
    ASSERT_EQ(drain.results.size(), 1u);
    ASSERT_TRUE(drain.results[0].result.ok) << drain.results[0].result.error;
    // The second connection's job resolved its artifacts from the first
    // connection's build: one daemon, one cache, every session warm.
    EXPECT_TRUE(drain.results[0].result.cache_hit);
  }
}

}  // namespace
}  // namespace psdp::serve
