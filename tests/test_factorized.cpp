#include <gtest/gtest.h>

#include "linalg/eig.hpp"
#include "sparse/factorized.hpp"
#include "test_helpers.hpp"

namespace psdp::sparse {
namespace {

using linalg::Matrix;
using linalg::Vector;
using psdp::testing::random_psd;
using psdp::testing::random_psd_rank;
using psdp::testing::random_symmetric;

TEST(FactorizedPsd, RankOneMatchesOuterProduct) {
  const Vector v{1, -2, 0, 3};
  const FactorizedPsd a = FactorizedPsd::rank_one(v);
  EXPECT_EQ(a.dim(), 4);
  EXPECT_EQ(a.factor_cols(), 1);
  EXPECT_EQ(a.nnz(), 3);  // the zero entry is dropped
  EXPECT_MATRIX_NEAR(a.to_dense(), Matrix::outer(v), 1e-14);
}

TEST(FactorizedPsd, TraceIsFrobeniusNormOfFactor) {
  const Vector v{1, 2, 2};
  const FactorizedPsd a = FactorizedPsd::rank_one(v);
  EXPECT_NEAR(a.trace(), 9.0, 1e-14);  // ||v||^2
  EXPECT_NEAR(a.trace(), linalg::trace(a.to_dense()), 1e-14);
}

TEST(FactorizedPsd, FromDensePsdRoundTrips) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Matrix dense = random_psd(6, seed);
    const FactorizedPsd fact = FactorizedPsd::from_dense_psd(dense);
    EXPECT_MATRIX_NEAR(fact.to_dense(), dense, 1e-8);
  }
}

TEST(FactorizedPsd, FromDensePsdRespectsRank) {
  const Matrix dense = random_psd_rank(8, 3, 5);
  const FactorizedPsd fact = FactorizedPsd::from_dense_psd(dense);
  EXPECT_EQ(fact.factor_cols(), 3);
  EXPECT_MATRIX_NEAR(fact.to_dense(), dense, 1e-8);
}

TEST(FactorizedPsd, FromDensePsdRejectsIndefinite) {
  Matrix bad = Matrix::identity(3);
  bad(2, 2) = -1;
  EXPECT_THROW(FactorizedPsd::from_dense_psd(bad), InvalidArgument);
}

TEST(FactorizedPsd, ApplyMatchesDense) {
  const Matrix dense = random_psd(7, 20);
  const FactorizedPsd fact = FactorizedPsd::from_dense_psd(dense);
  Vector x(7);
  for (Index i = 0; i < 7; ++i) x[i] = static_cast<Real>(i) - 3;
  Vector y;
  fact.apply(x, y);
  const Vector want = linalg::matvec(dense, x);
  for (Index i = 0; i < 7; ++i) EXPECT_NEAR(y[i], want[i], 1e-9);
}

TEST(FactorizedPsd, DotDenseMatchesFrobenius) {
  const Matrix a_dense = random_psd(5, 30);
  const FactorizedPsd a = FactorizedPsd::from_dense_psd(a_dense);
  const Matrix s = random_psd(5, 31);
  EXPECT_NEAR(a.dot_dense(s), linalg::frobenius_dot(a_dense, s), 1e-9);
}

TEST(FactorizedSet, ValidatesDimensions) {
  std::vector<FactorizedPsd> items;
  items.push_back(FactorizedPsd::rank_one(Vector{1, 2}));
  items.push_back(FactorizedPsd::rank_one(Vector{1, 2, 3}));
  EXPECT_THROW(FactorizedSet(std::move(items)), InvalidArgument);
  EXPECT_THROW(FactorizedSet(std::vector<FactorizedPsd>{}), InvalidArgument);
}

TEST(FactorizedSet, TotalNnzSums) {
  std::vector<FactorizedPsd> items;
  items.push_back(FactorizedPsd::rank_one(Vector{1, 2, 0}));
  items.push_back(FactorizedPsd::rank_one(Vector{0, 1, 1}));
  const FactorizedSet set(std::move(items));
  EXPECT_EQ(set.total_nnz(), 4);
  EXPECT_EQ(set.size(), 2);
  EXPECT_EQ(set.dim(), 3);
}

TEST(FactorizedSet, WeightedSumMatchesDenseAccumulation) {
  std::vector<FactorizedPsd> items;
  std::vector<Matrix> dense;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Matrix d = random_psd_rank(5, 2, 40 + seed);
    dense.push_back(d);
    items.push_back(FactorizedPsd::from_dense_psd(d));
  }
  const FactorizedSet set(std::move(items));
  const Vector x{0.5, 0.0, 2.0, 1.5};
  const Csr psi = set.weighted_sum(x);
  Matrix want(5, 5);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    want.add_scaled(dense[i], x[static_cast<Index>(i)]);
  }
  EXPECT_MATRIX_NEAR(psi.to_dense(), want, 1e-8);
}

TEST(FactorizedSet, WeightedApplyMatchesWeightedSum) {
  std::vector<FactorizedPsd> items;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    items.push_back(
        FactorizedPsd::from_dense_psd(random_psd_rank(6, 2, 60 + seed)));
  }
  const FactorizedSet set(std::move(items));
  const Vector x{1.0, 0.25, 3.0};
  Vector v(6);
  for (Index i = 0; i < 6; ++i) v[i] = std::sin(static_cast<Real>(i));
  Vector y;
  set.weighted_apply(x, v, y);
  const Vector want = set.weighted_sum(x).apply(v);
  for (Index i = 0; i < 6; ++i) EXPECT_NEAR(y[i], want[i], 1e-9);
}

TEST(FactorizedSet, IndexOutOfRangeThrows) {
  std::vector<FactorizedPsd> items;
  items.push_back(FactorizedPsd::rank_one(Vector{1}));
  const FactorizedSet set(std::move(items));
  EXPECT_THROW(set[1], InvalidArgument);
  EXPECT_THROW(set[-1], InvalidArgument);
}

TEST(FactorizedPsd, PsdByConstruction) {
  // Whatever sparse Q is used, Q Q^T must be PSD.
  const Csr q = Csr::from_triplets(4, 2, {{0, 0, 1}, {1, 0, -2}, {2, 1, 3}});
  const FactorizedPsd a{q};
  const auto eig = linalg::jacobi_eig(a.to_dense());
  EXPECT_GE(eig.eigenvalues[3], -1e-12);
}

}  // namespace
}  // namespace psdp::sparse
