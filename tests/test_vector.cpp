#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector.hpp"
#include "rand/rng.hpp"

namespace psdp::linalg {
namespace {

TEST(Vector, ConstructionAndFill) {
  Vector v(5, 2.5);
  EXPECT_EQ(v.size(), 5);
  for (Index i = 0; i < 5; ++i) EXPECT_EQ(v[i], 2.5);
  v.fill(-1);
  for (Index i = 0; i < 5; ++i) EXPECT_EQ(v[i], -1);
}

TEST(Vector, InitializerList) {
  const Vector v{1, 2, 3};
  EXPECT_EQ(v.size(), 3);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
}

TEST(Vector, NegativeSizeRejected) {
  EXPECT_THROW(Vector(-1), InvalidArgument);
}

TEST(Vector, ScaleAndAddScaled) {
  Vector v{1, 2, 3};
  v.scale(2);
  EXPECT_EQ(v[1], 4);
  const Vector w{1, 1, 1};
  v.add_scaled(w, -1);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 5);
}

TEST(Vector, AddScaledSizeMismatchThrows) {
  Vector v{1, 2};
  const Vector w{1, 2, 3};
  EXPECT_THROW(v.add_scaled(w, 1.0), InvalidArgument);
}

TEST(Vector, DotAndNorms) {
  const Vector x{3, 4};
  EXPECT_EQ(dot(x, x), 25);
  EXPECT_EQ(norm2_squared(x), 25);
  EXPECT_EQ(norm2(x), 5);
  EXPECT_EQ(sum(x), 7);
  EXPECT_EQ(max_entry(x), 4);
}

TEST(Vector, DotSizeMismatchThrows) {
  EXPECT_THROW(dot(Vector{1}, Vector{1, 2}), InvalidArgument);
}

TEST(Vector, Norm1HandlesSigns) {
  EXPECT_EQ(norm1(Vector{-1, 2, -3}), 6);
}

TEST(Vector, FinitenessAndNonnegativity) {
  EXPECT_TRUE(all_finite(Vector{0, 1}));
  Vector bad{0, 1};
  bad[1] = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_FALSE(all_finite(bad));
  EXPECT_TRUE(is_nonnegative(Vector{0, 1}));
  EXPECT_FALSE(is_nonnegative(Vector{0, -1}));
  EXPECT_TRUE(is_nonnegative(Vector{-1e-12, 1}, 1e-10));
}

TEST(Vector, LargeParallelReductionMatchesSerial) {
  // Exercises the parallel_sum path (size above the grain).
  const Index n = 1 << 16;
  rand::Rng rng(3);
  Vector v(n);
  Real expect = 0;
  for (Index i = 0; i < n; ++i) {
    v[i] = rng.uniform();
    expect += v[i];
  }
  EXPECT_NEAR(sum(v), expect, 1e-7 * n);
}

TEST(Vector, Equality) {
  EXPECT_EQ((Vector{1, 2}), (Vector{1, 2}));
  EXPECT_NE((Vector{1, 2}), (Vector{2, 1}));
}

}  // namespace
}  // namespace psdp::linalg
