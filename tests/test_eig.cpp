#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eig.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_symmetric;

TEST(JacobiEig, DiagonalMatrix) {
  const auto eig = jacobi_eig(Matrix::diagonal(Vector{3, 1, 2}));
  EXPECT_NEAR(eig.eigenvalues[0], 3, 1e-14);
  EXPECT_NEAR(eig.eigenvalues[1], 2, 1e-14);
  EXPECT_NEAR(eig.eigenvalues[2], 1, 1e-14);
}

TEST(JacobiEig, Known2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 2;
  const auto eig = jacobi_eig(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3, 1e-13);
  EXPECT_NEAR(eig.eigenvalues[1], 1, 1e-13);
}

TEST(JacobiEig, EigenvaluesSortedDescending) {
  const auto eig = jacobi_eig(random_symmetric(9, 5));
  for (Index i = 1; i < 9; ++i) {
    EXPECT_GE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
  }
}

TEST(JacobiEig, EigenvectorsOrthonormal) {
  const auto eig = jacobi_eig(random_symmetric(7, 9));
  const Matrix vtv = gemm(eig.eigenvectors.transposed(), eig.eigenvectors);
  EXPECT_MATRIX_NEAR(vtv, Matrix::identity(7), 1e-11);
}

TEST(JacobiEig, ReconstructionProperty) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_symmetric(6, 50 + seed);
    const auto eig = jacobi_eig(a);
    const Matrix back = reconstruct(eig, [](Real x) { return x; });
    EXPECT_MATRIX_NEAR(back, a, 1e-11);
  }
}

TEST(JacobiEig, EigenvectorEquation) {
  const Matrix a = random_symmetric(5, 13);
  const auto eig = jacobi_eig(a);
  for (Index c = 0; c < 5; ++c) {
    Vector v(5);
    for (Index r = 0; r < 5; ++r) v[r] = eig.eigenvectors(r, c);
    const Vector av = matvec(a, v);
    for (Index r = 0; r < 5; ++r) {
      EXPECT_NEAR(av[r], eig.eigenvalues[c] * v[r], 1e-10);
    }
  }
}

TEST(JacobiEig, TraceAndDeterminantInvariants) {
  const Matrix a = random_symmetric(6, 17);
  const auto eig = jacobi_eig(a);
  Real eig_sum = 0;
  for (Index i = 0; i < 6; ++i) eig_sum += eig.eigenvalues[i];
  EXPECT_NEAR(eig_sum, trace(a), 1e-10);
}

TEST(JacobiEig, PsdInputGivesNonnegativeEigenvalues) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto eig = jacobi_eig(random_psd(6, 70 + seed));
    EXPECT_GE(eig.eigenvalues[5], -1e-10);
  }
}

TEST(JacobiEig, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = -4.5;
  const auto eig = jacobi_eig(a);
  EXPECT_EQ(eig.eigenvalues[0], -4.5);
  EXPECT_NEAR(std::abs(eig.eigenvectors(0, 0)), 1, 1e-15);
}

TEST(JacobiEig, RejectsAsymmetric) {
  Matrix a = Matrix::identity(3);
  a(0, 1) = 0.3;
  EXPECT_THROW(jacobi_eig(a), InvalidArgument);
}

TEST(JacobiEig, RejectsNonFinite) {
  Matrix a = Matrix::identity(2);
  a(0, 0) = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_THROW(jacobi_eig(a), InvalidArgument);
}

TEST(LambdaMaxExact, MatchesKnownValues) {
  EXPECT_NEAR(lambda_max_exact(Matrix::diagonal(Vector{1, 5, 2})), 5, 1e-13);
}

TEST(Reconstruct, AppliesFunctionToSpectrum) {
  const Matrix a = Matrix::diagonal(Vector{4, 9});
  const auto eig = jacobi_eig(a);
  const Matrix sq = reconstruct(eig, [](Real x) { return std::sqrt(x); });
  EXPECT_MATRIX_NEAR(sq, Matrix::diagonal(Vector{2, 3}), 1e-12);
}

class EigSizeSweep : public ::testing::TestWithParam<Index> {};

TEST_P(EigSizeSweep, ReconstructsAtEverySize) {
  const Index m = GetParam();
  const Matrix a = random_symmetric(m, 1000 + static_cast<std::uint64_t>(m));
  const auto eig = jacobi_eig(a);
  const Matrix back = reconstruct(eig, [](Real x) { return x; });
  EXPECT_LE(max_abs_diff(back, a), 1e-10 * std::max<Real>(1, frobenius_norm(a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 40, 100));

}  // namespace
}  // namespace psdp::linalg
