// The serve layer: ArtifactCache hit/miss/evict accounting and workspace
// pooling, the BatchScheduler's lanes-vs-solo bitwise determinism contract,
// per-job failure isolation, concurrent artifact preparation from scheduler
// lanes, and the job-manifest reader.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "apps/generators.hpp"
#include "io/instance_io.hpp"
#include "par/parallel.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/manifest.hpp"
#include "serve/scheduler.hpp"
#include "sparse/csr.hpp"
#include "test_helpers.hpp"
#include "util/tunables.hpp"

namespace psdp::serve {
namespace {

using linalg::Vector;

/// RAII guard: restore the global thread count on scope exit.
struct ThreadGuard {
  int before = par::num_threads();
  ~ThreadGuard() { par::set_num_threads(before); }
};

/// A cheap prepared instance (the LP kind needs no index builds), tagged so
/// tests can tell which builder call produced it.
PreparedInstance tiny_lp_instance(Real scale = 1) {
  linalg::Matrix p(2, 3);
  p(0, 0) = scale;
  p(0, 2) = 2 * scale;
  p(1, 1) = scale;
  p(1, 2) = scale;
  return prepare_lp(core::PackingLp(std::move(p)));
}

ArtifactCache::Builder counting_builder(std::atomic<int>& builds,
                                        Real scale = 1) {
  return [&builds, scale](const sparse::TransposePlanOptions&) {
    builds.fetch_add(1);
    return tiny_lp_instance(scale);
  };
}

TEST(ArtifactCache, HitMissEvictCountersAndLru) {
  ArtifactCache::Options options;
  options.capacity = 2;
  ArtifactCache cache(options);
  std::atomic<int> builds{0};

  const auto a1 = cache.get("a", counting_builder(builds));
  EXPECT_FALSE(a1.hit);
  const auto a2 = cache.get("a", counting_builder(builds));
  EXPECT_TRUE(a2.hit);
  EXPECT_EQ(a1.entry.get(), a2.entry.get());
  EXPECT_EQ(builds.load(), 1);

  cache.get("b", counting_builder(builds));
  EXPECT_EQ(cache.size(), 2u);
  // Touch "a" so "b" is the LRU victim of the third key.
  cache.get("a", counting_builder(builds));
  cache.get("c", counting_builder(builds));
  EXPECT_EQ(cache.size(), 2u);

  ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // "b" was evicted: resolving it again rebuilds; "a" is still cached.
  EXPECT_FALSE(cache.get("b", counting_builder(builds)).hit);
  EXPECT_EQ(builds.load(), 4);

  // An evicted entry held by a job stays alive through its shared_ptr.
  EXPECT_EQ(a1.entry->instance().kind, JobKind::kPackingLp);
  EXPECT_EQ(a1.entry->key(), "a");
}

TEST(ArtifactCache, BuilderFailureLeavesNoEntryBehind) {
  ArtifactCache cache;
  std::atomic<int> builds{0};
  const ArtifactCache::Builder boom =
      [](const sparse::TransposePlanOptions&) -> PreparedInstance {
    throw NumericalError("builder exploded");
  };
  EXPECT_THROW(cache.get("k", boom), NumericalError);
  EXPECT_EQ(cache.size(), 0u);
  // The next resolve retries with a working builder.
  EXPECT_FALSE(cache.get("k", counting_builder(builds)).hit);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ArtifactCache, WaiterRebuildAfterFailedBuilderEndsUpCached) {
  // Lane A's builder throws while lane B waits on the same key: whichever
  // way the race resolves (B waited on the build mutex and rebuilt the
  // erased-but-held entry, or B re-inserted a fresh shell), the key must
  // end up cached -- a later lookup is a pure hit, not a rebuild.
  ArtifactCache cache;
  std::atomic<bool> builder_entered{false};
  std::atomic<bool> release_builder{false};
  std::atomic<int> good_builds{0};

  std::thread failing([&] {
    const ArtifactCache::Builder boom =
        [&](const sparse::TransposePlanOptions&) -> PreparedInstance {
      builder_entered.store(true);
      while (!release_builder.load()) std::this_thread::yield();
      throw NumericalError("transient failure");
    };
    EXPECT_THROW(cache.get("k", boom), NumericalError);
  });
  while (!builder_entered.load()) std::this_thread::yield();

  std::thread waiting([&] {
    // Likely blocks on the entry's build mutex until the failure lands.
    const auto resolved = cache.get("k", counting_builder(good_builds));
    EXPECT_EQ(resolved.entry->instance().kind, JobKind::kPackingLp);
  });
  // Give the waiter a moment to reach the build mutex, then let the
  // failing builder throw (correct either way; see above).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_builder.store(true);
  failing.join();
  waiting.join();

  EXPECT_EQ(good_builds.load(), 1);
  ASSERT_NE(cache.find("k"), nullptr)
      << "the successful rebuild must be cached";
  std::atomic<int> more_builds{0};
  EXPECT_TRUE(cache.get("k", counting_builder(more_builds)).hit);
  EXPECT_EQ(more_builds.load(), 0);
}

TEST(ArtifactCache, WorkspacePoolReusesUpToCap) {
  ArtifactCache::Options options;
  options.workspaces_per_entry = 2;
  ArtifactCache cache(options);
  std::atomic<int> builds{0};
  const auto resolved = cache.get("k", counting_builder(builds));

  core::SolverWorkspace* first = nullptr;
  {
    WorkspaceLease lease(resolved.entry);
    ASSERT_NE(lease.get(), nullptr);
    first = lease.get();
  }  // returned to the pool
  {
    WorkspaceLease lease(resolved.entry);
    EXPECT_EQ(lease.get(), first);  // same workspace, recycled
  }
  EXPECT_EQ(cache.stats().workspace_reuses, 1u);

  // Three concurrent leases against a one-deep pool: one reuse, two fresh;
  // on release only two fit the cap (the third is dropped).
  {
    WorkspaceLease a(resolved.entry), b(resolved.entry), c(resolved.entry);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(b.get(), c.get());
  }
  // Now the pool is full (two workspaces): two of three leases reuse.
  {
    WorkspaceLease a(resolved.entry), b(resolved.entry), c(resolved.entry);
  }
  // 1 (earlier) + 1 + 2: dropped leases never count as reuses.
  EXPECT_EQ(cache.stats().workspace_reuses, 4u);

  // Moved-from leases release nothing twice.
  WorkspaceLease outer;
  {
    WorkspaceLease inner(resolved.entry);
    outer = std::move(inner);
    EXPECT_EQ(inner.get(), nullptr);
  }
  EXPECT_NE(outer.get(), nullptr);
}

TEST(ArtifactCache, PlanOptionsRouteIntoOwnedPlanCache) {
  ArtifactCache cache;
  const sparse::TransposePlanOptions plan = cache.plan_options();
  EXPECT_EQ(plan.autotune.plan_cache, &cache.plan_cache());
}

TEST(ArtifactCache, CoveringPreparationCachesNormalization) {
  // A small covering problem: C = I and two diagonal constraints (PSD).
  core::CoveringProblem problem;
  problem.objective = linalg::Matrix::identity(3);
  linalg::Matrix a(3, 3);
  a(0, 0) = 2;
  a(1, 1) = 1;
  linalg::Matrix b(3, 3);
  b(2, 2) = 4;
  problem.constraints = {a, b};
  problem.rhs = Vector{1.0, 2.0};
  const PreparedInstance prepared = prepare_covering(std::move(problem));
  EXPECT_NO_THROW(prepared.validate());
  ASSERT_NE(prepared.normalized, nullptr);
  EXPECT_EQ(prepared.normalized->packing.size(), 2);
}

// ---------------------------------------------------------------------------
// Scheduler: determinism, sharding, callbacks, failure isolation.
// ---------------------------------------------------------------------------

/// A small factorized instance whose factors are tall enough to carry
/// transpose indexes (m = 64 >> rank), solved with loose eps so the whole
/// batch runs in well under a second.
std::shared_ptr<const core::FactorizedPackingInstance> small_factorized(
    std::uint64_t seed) {
  return std::make_shared<const core::FactorizedPackingInstance>(
      apps::random_factorized(
          {.n = 6, .m = 64, .rank = 2, .nnz_per_column = 4, .seed = seed}));
}

core::OptimizeOptions loose_options() {
  core::OptimizeOptions options;
  options.eps = 0.5;
  options.decision_eps = 0.3;
  options.probe_solver = core::ProbeSolver::kPhased;
  options.decision.dot_options.sketch_rows_override = 8;
  return options;
}

TEST(BatchScheduler, LaneResultsBitwiseEqualSoloRuns) {
  ThreadGuard guard;
  par::set_num_threads(4);

  const auto inst_a = small_factorized(3);
  const auto inst_b = small_factorized(4);
  const core::OptimizeOptions options = loose_options();

  // Solo references at the same pool width.
  const core::PackingOptimum solo_a = core::approx_packing(*inst_a, options);
  const core::PackingOptimum solo_b = core::approx_packing(*inst_b, options);

  SolveBatch batch;
  batch.add_factorized("a", inst_a, options);
  batch.add_factorized("b", inst_b, options);
  batch.add_factorized("a", inst_a, options, "a-again");

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    ASSERT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_GE(r.lane, 0) << "small jobs must run in lanes";
  }
  const auto expect_bitwise = [](const core::PackingOptimum& got,
                                 const core::PackingOptimum& want) {
    EXPECT_EQ(got.lower, want.lower);
    EXPECT_EQ(got.upper, want.upper);
    ASSERT_EQ(got.best_x.size(), want.best_x.size());
    for (Index i = 0; i < got.best_x.size(); ++i) {
      EXPECT_EQ(got.best_x[i], want.best_x[i]);
    }
  };
  expect_bitwise(results[0].packing, solo_a);
  expect_bitwise(results[1].packing, solo_b);
  expect_bitwise(results[2].packing, solo_a);  // repeated config, cached

  // The two "a" jobs may resolve concurrently from different lanes:
  // exactly one runs the builder, the other shares it.
  EXPECT_NE(results[0].cache_hit, results[2].cache_hit);
  EXPECT_FALSE(results[1].cache_hit);

  // The same batch on the warm scheduler: all hits, same bits.
  const std::vector<JobResult> warm = scheduler.run(batch);
  for (const JobResult& r : warm) EXPECT_TRUE(r.cache_hit);
  expect_bitwise(warm[0].packing, solo_a);
}

TEST(BatchScheduler, WideJobsRunAtFullWidthAndMatchLanes) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const auto inst = small_factorized(9);
  const core::OptimizeOptions options = loose_options();

  SolveBatch narrow_batch;
  narrow_batch.add_factorized("k", inst, options);

  SolveBatch wide_batch;
  const std::size_t at = wide_batch.add_factorized("k", inst, options);
  wide_batch.jobs()[at].work = std::numeric_limits<Index>::max() / 2;

  BatchScheduler narrow_scheduler;
  BatchScheduler wide_scheduler;
  const JobResult narrow = narrow_scheduler.run(narrow_batch)[0];
  const JobResult wide = wide_scheduler.run(wide_batch)[0];
  ASSERT_TRUE(narrow.ok && wide.ok);
  EXPECT_GE(narrow.lane, 0);
  EXPECT_EQ(wide.lane, -1);
  // Lane-inline and full-width executions agree bit for bit.
  EXPECT_EQ(narrow.packing.lower, wide.packing.lower);
  EXPECT_EQ(narrow.packing.upper, wide.packing.upper);
}

TEST(BatchScheduler, FailuresAreIsolatedAndCallbacksFire) {
  ThreadGuard guard;
  par::set_num_threads(2);

  SolveBatch batch;
  batch.add_lp("good", std::make_shared<const core::PackingLp>(
                           apps::complete_graph_matching_lp(6).lp));
  JobSpec bad;
  bad.instance = "bad";
  bad.kind = JobKind::kPackingLp;
  bad.builder = [](const sparse::TransposePlanOptions&) -> PreparedInstance {
    throw NumericalError("instance generation failed");
  };
  batch.add(std::move(bad));

  std::atomic<int> callbacks{0};
  for (auto& job : batch.jobs()) {
    job.on_complete = [&callbacks](const JobResult&) { callbacks.fetch_add(1); };
  }

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("instance generation failed"),
            std::string::npos);
  EXPECT_EQ(callbacks.load(), 2);

  // A kind mismatch against a cached instance is a per-job error too.
  SolveBatch mismatched;
  JobSpec wrong;
  wrong.instance = "good";  // cached as packing-lp
  wrong.kind = JobKind::kCovering;
  wrong.builder = [](const sparse::TransposePlanOptions&) {
    return tiny_lp_instance();
  };
  mismatched.add(std::move(wrong));
  const JobResult r = scheduler.run(mismatched)[0];
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("prepared as"), std::string::npos);
}

TEST(BatchScheduler, RunAsyncDeliversSameResults) {
  ThreadGuard guard;
  par::set_num_threads(2);
  SolveBatch batch;
  batch.add_lp("lp", std::make_shared<const core::PackingLp>(
                         apps::complete_graph_matching_lp(6).lp));
  BatchScheduler scheduler;
  const JobResult sync = scheduler.run(batch)[0];
  std::future<std::vector<JobResult>> pending =
      scheduler.run_async(std::move(batch));
  const JobResult async = pending.get()[0];
  ASSERT_TRUE(sync.ok && async.ok);
  EXPECT_EQ(sync.lp.lower, async.lp.lower);
  EXPECT_EQ(sync.lp.upper, async.lp.upper);
}

TEST(BatchScheduler, ConcurrentLanesPrepareDistinctInstancesOnce) {
  ThreadGuard guard;
  par::set_num_threads(4);

  // Eight jobs over four distinct factorized instances, resolved lazily
  // inside concurrent lanes: each instance must be built exactly once, and
  // its factor transpose indexes must be built exactly at prepare time
  // (zero on the repeat jobs).
  std::atomic<int> builds{0};
  SolveBatch batch;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t seed = 11 + static_cast<std::uint64_t>(i % 4);
    JobSpec job;
    job.instance = str("inst", i % 4);
    job.kind = JobKind::kPackingFactorized;
    job.options = loose_options();
    job.builder = [seed, &builds](const sparse::TransposePlanOptions& plan) {
      builds.fetch_add(1);
      apps::FactorizedOptions options{
          .n = 4, .m = 64, .rank = 2, .nnz_per_column = 4, .seed = seed};
      options.plan_options = &plan;
      return prepare_factorized(apps::random_factorized(options));
    };
    batch.add(std::move(job));
  }

  BatchScheduler scheduler;
  const std::uint64_t index_builds_before = sparse::transpose_index_build_count();
  const std::vector<JobResult> results = scheduler.run(batch);
  const std::uint64_t index_builds_cold =
      sparse::transpose_index_build_count() - index_builds_before;
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
  }
  EXPECT_EQ(builds.load(), 4) << "one build per distinct instance";
  // 4 instances x 4 tall factors each.
  EXPECT_EQ(index_builds_cold, 16u);

  // Warm repeat: zero builder calls, zero index rebuilds.
  const std::uint64_t before_warm = sparse::transpose_index_build_count();
  scheduler.run(batch);
  EXPECT_EQ(builds.load(), 4);
  EXPECT_EQ(sparse::transpose_index_build_count() - before_warm, 0u);
  const ArtifactCache::Stats stats = scheduler.cache().stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 12u);  // 4 cold repeats + 8 warm
}

TEST(BatchScheduler, ThrowingCallbackIsRecordedWithoutFailingTheJob) {
  ThreadGuard guard;
  par::set_num_threads(2);
  SolveBatch batch;
  batch.add_lp("cb", std::make_shared<const core::PackingLp>(
                         apps::complete_graph_matching_lp(6).lp));
  batch.add_lp("cb", std::make_shared<const core::PackingLp>(
                         apps::complete_graph_matching_lp(6).lp),
               {}, "quiet");
  batch.jobs()[0].on_complete = [](const JobResult&) {
    throw std::runtime_error("callback boom");
  };

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 2u);
  // The job itself succeeded; only the callback failed, and that failure
  // is reported instead of vanishing.
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_NE(results[0].callback_error.find("callback boom"),
            std::string::npos);
  EXPECT_TRUE(results[1].ok);
  EXPECT_TRUE(results[1].callback_error.empty());
}

TEST(BatchScheduler, ThrowingCallbackCannotKillAStreamingLane) {
  // The daemon's whole delivery path is an on_complete callback running on
  // a lane thread. A throw there -- std::exception or not -- must be
  // contained to callback_error with the lane alive for the next job.
  ThreadGuard guard;
  par::set_num_threads(2);
  BatchScheduler scheduler;
  scheduler.open(1);
  std::atomic<int> fired{0};
  const auto lp_spec = [&](const std::string& key,
                           std::function<void()> boom) {
    JobSpec spec;
    spec.instance = key;
    spec.kind = JobKind::kPackingLp;
    spec.builder = [](const sparse::TransposePlanOptions&) {
      return tiny_lp_instance();
    };
    spec.on_complete = [&fired, boom = std::move(boom)](const JobResult&) {
      fired.fetch_add(1);
      boom();
    };
    return spec;
  };
  scheduler.submit(lp_spec("throws-exception", [] {
    throw std::runtime_error("streaming boom");
  }));
  scheduler.submit(lp_spec("throws-int", [] { throw 42; }));  // not a
                                                              // std::exception
  scheduler.submit(lp_spec("quiet", [] {}));

  const std::vector<JobResult> results = scheduler.close();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(fired.load(), 3);
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.error;
  }
  EXPECT_NE(results[0].callback_error.find("streaming boom"),
            std::string::npos);
  EXPECT_FALSE(results[1].callback_error.empty());
  EXPECT_TRUE(results[2].callback_error.empty());
  EXPECT_EQ(scheduler.stats().completed, 3u);
}

TEST(BatchScheduler, SlotRecyclingBoundsArenaOverTenThousandJobs) {
  // The out-of-core serving story: a streaming session feeds jobs for hours,
  // so the slot arena must track the number of *in-flight* jobs, not the
  // session's total submissions. 10k tiny jobs with bounded backpressure
  // must leave only a handful of slots live, with everything else recycled
  // -- and close() must still return all 10k results in submission order.
  ThreadGuard guard;
  par::set_num_threads(2);
  constexpr std::size_t kJobs = 10000;
  constexpr std::size_t kInFlightCap = 64;

  BatchScheduler scheduler;
  scheduler.open(2);
  std::atomic<std::size_t> completed{0};
  for (std::size_t i = 0; i < kJobs; ++i) {
    // Backpressure: a real streaming client paces on completions; without
    // it the whole 10k would sit in waiting_ at once and the arena would
    // legitimately hold 10k live slots.
    while (i - completed.load(std::memory_order_acquire) >= kInFlightCap) {
      std::this_thread::yield();
    }
    JobSpec spec;
    spec.instance = "recycle";  // one shared artifact: builds once
    spec.kind = JobKind::kPackingLp;
    spec.options.eps = 0.9;  // the job payload is irrelevant: cheapest solve
    spec.builder = [](const sparse::TransposePlanOptions&) {
      return tiny_lp_instance();
    };
    spec.on_complete = [&completed](const JobResult&) {
      completed.fetch_add(1, std::memory_order_release);
    };
    scheduler.submit(spec);
  }

  const SchedulerStats mid = scheduler.stats();
  EXPECT_LE(mid.slots_live, kInFlightCap + 2)
      << "the arena must stay bounded by in-flight jobs, not submissions";
  EXPECT_GE(mid.slots_recycled, kJobs - kInFlightCap - 2);

  const std::vector<JobResult> results = scheduler.close();
  ASSERT_EQ(results.size(), kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].label << ": " << results[i].error;
    ASSERT_EQ(results[i].index, i) << "results must stay in submission order";
  }
  EXPECT_EQ(completed.load(), kJobs);
  EXPECT_EQ(scheduler.stats().completed, kJobs);
}

TEST(BatchScheduler, QueueAndRunSecondsAreSplitAndDeadlinesEchoed) {
  ThreadGuard guard;
  par::set_num_threads(2);
  SolveBatch batch;
  for (int i = 0; i < 3; ++i) {
    batch.add_lp(str("lp", i), std::make_shared<const core::PackingLp>(
                                   apps::complete_graph_matching_lp(6).lp));
  }
  batch.jobs()[1].deadline_ms = 1e7;  // trivially met
  batch.jobs()[2].priority = 2;

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  for (const JobResult& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.run_seconds, 0);
    EXPECT_GE(r.queue_seconds, 0);
    EXPECT_EQ(r.seconds, r.run_seconds) << "seconds aliases run time";
  }
  EXPECT_FALSE(results[0].deadline_ms.has_value());
  EXPECT_EQ(results[1].deadline_ms, 1e7);
  EXPECT_TRUE(results[1].deadline_met);
}

// ---------------------------------------------------------------------------
// Preemption / widening determinism and admission control.
// ---------------------------------------------------------------------------

/// A builder that parks its lane inside the artifact resolve until the test
/// opens `gate` -- the deterministic way to have a job mid-claim while the
/// test stages the queue behind it.
ArtifactCache::Builder gated_factorized_builder(
    std::shared_ptr<const core::FactorizedPackingInstance> instance,
    std::atomic<bool>& started, std::atomic<bool>& gate) {
  return [instance, &started, &gate](const sparse::TransposePlanOptions&) {
    started.store(true);
    while (!gate.load()) std::this_thread::yield();
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingFactorized;
    prepared.factorized = instance;
    return prepared;
  };
}

TEST(BatchScheduler, PreemptedAndPreemptingJobsBitwiseEqualSoloRuns) {
  ThreadGuard guard;
  par::set_num_threads(4);
  const auto inst_slow = small_factorized(21);
  const auto inst_urgent = small_factorized(22);
  const core::OptimizeOptions options = loose_options();
  const core::PackingOptimum solo_slow =
      core::approx_packing(*inst_slow, options);
  const core::PackingOptimum solo_urgent =
      core::approx_packing(*inst_urgent, options);

  std::atomic<bool> started{false};
  std::atomic<bool> gate{false};
  BatchScheduler scheduler;
  scheduler.open(1);  // one lane: the urgent job can only run by borrowing it

  JobSpec slow;  // no deadline: batch work
  slow.instance = "slow";
  slow.kind = JobKind::kPackingFactorized;
  slow.options = options;
  slow.builder = gated_factorized_builder(inst_slow, started, gate);
  scheduler.submit(slow);
  while (!started.load()) std::this_thread::yield();  // lane claimed it

  JobSpec urgent;  // a deadline outranks no-deadline under EDF
  urgent.instance = "urgent";
  urgent.kind = JobKind::kPackingFactorized;
  urgent.options = options;
  urgent.deadline_ms = 60 * 1000;
  urgent.builder = [inst_urgent](const sparse::TransposePlanOptions&) {
    PreparedInstance prepared;
    prepared.kind = JobKind::kPackingFactorized;
    prepared.factorized = inst_urgent;
    return prepared;
  };
  scheduler.submit(urgent);
  gate.store(true);  // the slow solve now starts with the urgent job queued

  const std::vector<JobResult> results = scheduler.close();
  ASSERT_EQ(results.size(), 2u);
  const JobResult& r_slow = results[0];
  const JobResult& r_urgent = results[1];
  ASSERT_TRUE(r_slow.ok) << r_slow.error;
  ASSERT_TRUE(r_urgent.ok) << r_urgent.error;
  // The slow job must have yielded its lane at a round boundary.
  EXPECT_GE(r_slow.preemptions, 1);
  EXPECT_EQ(r_urgent.lane, 0);
  EXPECT_GE(scheduler.stats().preemptions, 1u);

  // Parked-and-resumed and borrowed-lane runs are bitwise solo runs.
  const auto expect_bitwise = [](const core::PackingOptimum& got,
                                 const core::PackingOptimum& want) {
    EXPECT_EQ(got.lower, want.lower);
    EXPECT_EQ(got.upper, want.upper);
    ASSERT_EQ(got.best_x.size(), want.best_x.size());
    for (Index i = 0; i < got.best_x.size(); ++i) {
      EXPECT_EQ(got.best_x[i], want.best_x[i]);
    }
  };
  expect_bitwise(r_slow.packing, solo_slow);
  expect_bitwise(r_urgent.packing, solo_urgent);
  EXPECT_TRUE(payload_bitwise_equal(r_slow, r_slow));
}

TEST(BatchScheduler, PromotedJobsWidenAndStayBitwiseEqualSoloRuns) {
  ThreadGuard guard;
  par::set_num_threads(4);
  const auto inst = small_factorized(23);
  const core::OptimizeOptions options = loose_options();
  const core::PackingOptimum solo = core::approx_packing(*inst, options);

  // A single narrow job with an empty queue behind it: the sole runner
  // promotes to full pool width at its first round boundary.
  SolveBatch batch;
  batch.add_factorized("only", inst, options);
  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[0].promoted);
  EXPECT_GE(scheduler.stats().promotions, 1u);
  EXPECT_EQ(results[0].packing.lower, solo.lower);
  EXPECT_EQ(results[0].packing.upper, solo.upper);
  ASSERT_EQ(results[0].packing.best_x.size(), solo.best_x.size());
  for (Index i = 0; i < solo.best_x.size(); ++i) {
    EXPECT_EQ(results[0].packing.best_x[i], solo.best_x[i]);
  }

  // FIFO with preemption/widening off is the PR-5 static baseline: the
  // same job must neither promote nor preempt.
  SchedulerOptions baseline;
  baseline.queue = QueuePolicy::kFifo;
  baseline.preemption = false;
  baseline.widening = false;
  BatchScheduler static_scheduler(baseline);
  const JobResult static_run = static_scheduler.run(batch)[0];
  ASSERT_TRUE(static_run.ok);
  EXPECT_FALSE(static_run.promoted);
  EXPECT_EQ(static_run.preemptions, 0);
  EXPECT_EQ(static_run.packing.lower, solo.lower);
  EXPECT_EQ(static_run.packing.upper, solo.upper);
}

TEST(BatchScheduler, AdmissionControlRejectsWhenQueueIsFull) {
  ThreadGuard guard;
  par::set_num_threads(2);
  std::atomic<bool> started{false};
  std::atomic<bool> gate{false};
  SchedulerOptions options;
  options.max_queue = 1;
  options.admission = AdmissionPolicy::kReject;
  BatchScheduler scheduler(options);
  scheduler.open(1);

  JobSpec blocker;
  blocker.instance = "blocker";
  blocker.kind = JobKind::kPackingFactorized;
  blocker.options = loose_options();
  blocker.builder =
      gated_factorized_builder(small_factorized(31), started, gate);
  scheduler.submit(blocker);
  while (!started.load()) std::this_thread::yield();

  const auto lp_spec = [](const std::string& key) {
    JobSpec spec;
    spec.instance = key;
    spec.kind = JobKind::kPackingLp;
    spec.builder = [](const sparse::TransposePlanOptions&) {
      return tiny_lp_instance();
    };
    return spec;
  };
  scheduler.submit(lp_spec("queued"));    // fills the one queue seat
  std::atomic<int> shed_callbacks{0};
  JobSpec overflow = lp_spec("overflow");
  overflow.on_complete = [&shed_callbacks](const JobResult& r) {
    EXPECT_TRUE(r.shed);
    shed_callbacks.fetch_add(1);
  };
  scheduler.submit(overflow);             // bounced at the door
  gate.store(true);

  const std::vector<JobResult> results = scheduler.close();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_FALSE(results[2].ok);
  EXPECT_TRUE(results[2].shed);
  EXPECT_NE(results[2].error.find("queue full"), std::string::npos);
  EXPECT_EQ(shed_callbacks.load(), 1);
  EXPECT_EQ(scheduler.stats().shed, 1u);
}

TEST(BatchScheduler, AdmissionControlShedsLeastUrgentForUrgentArrival) {
  ThreadGuard guard;
  par::set_num_threads(2);
  std::atomic<bool> started{false};
  std::atomic<bool> gate{false};
  SchedulerOptions options;
  options.max_queue = 1;
  options.admission = AdmissionPolicy::kShedLowest;
  BatchScheduler scheduler(options);
  scheduler.open(1);

  JobSpec blocker;
  blocker.instance = "blocker";
  blocker.kind = JobKind::kPackingFactorized;
  blocker.options = loose_options();
  blocker.builder =
      gated_factorized_builder(small_factorized(32), started, gate);
  scheduler.submit(blocker);
  while (!started.load()) std::this_thread::yield();

  const auto lp_spec = [](const std::string& key, int priority) {
    JobSpec spec;
    spec.instance = key;
    spec.kind = JobKind::kPackingLp;
    spec.priority = priority;
    spec.builder = [](const sparse::TransposePlanOptions&) {
      return tiny_lp_instance();
    };
    return spec;
  };
  scheduler.submit(lp_spec("meek", 0));
  scheduler.submit(lp_spec("vip", 5));     // displaces "meek"
  scheduler.submit(lp_spec("lowly", -1));  // outranked: shed itself
  gate.store(true);

  const std::vector<JobResult> results = scheduler.close();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok) << results[0].error;   // blocker
  EXPECT_TRUE(results[1].shed);                     // meek, displaced
  EXPECT_NE(results[1].error.find("displaced"), std::string::npos);
  EXPECT_TRUE(results[2].ok) << results[2].error;   // vip
  EXPECT_TRUE(results[3].shed);                     // lowly, bounced
  EXPECT_EQ(scheduler.stats().shed, 2u);
}

// ---------------------------------------------------------------------------
// Manifest reader.
// ---------------------------------------------------------------------------

TEST(Manifest, ParsesKindsOptionsAndSharedIds) {
  std::stringstream manifest(
      "# heterogeneous batch\n"
      "packing-lp jobs/lp.psdp eps=0.2 label=lp-loose\n"
      "packing-lp jobs/lp.psdp eps=0.1\n"
      "packing-factorized jobs/fact.psdp probe=phased decision-eps=0.25\n"
      "covering jobs/cov.psdp wide=1 id=shared-cov\n"
      "\n");
  const SolveBatch batch = read_manifest(manifest, "test");
  ASSERT_EQ(batch.size(), 4u);
  const std::vector<JobSpec>& jobs = batch.jobs();
  EXPECT_EQ(jobs[0].kind, JobKind::kPackingLp);
  EXPECT_EQ(jobs[0].label, "lp-loose");
  EXPECT_EQ(jobs[0].options.eps, 0.2);
  // Jobs naming the same file share one artifact key.
  EXPECT_EQ(jobs[0].instance, jobs[1].instance);
  EXPECT_EQ(jobs[2].options.probe_solver, core::ProbeSolver::kPhased);
  EXPECT_EQ(jobs[2].options.decision_eps, 0.25);
  EXPECT_EQ(jobs[3].instance, "shared-cov");
  EXPECT_GT(jobs[3].work, 0) << "wide=1 must mark the job wide";
  EXPECT_EQ(jobs[1].work, 0);
}

TEST(Manifest, ParsesPriorityAndDeadlineRoundTrip) {
  std::stringstream manifest(
      "packing-lp a.psdp priority=3 deadline-ms=12.5\n"
      "packing-lp b.psdp deadline-ms=0\n"
      "packing-lp c.psdp\n");
  const SolveBatch batch = read_manifest(manifest, "test");
  ASSERT_EQ(batch.size(), 3u);
  const std::vector<JobSpec>& jobs = batch.jobs();
  EXPECT_EQ(jobs[0].priority, 3);
  EXPECT_EQ(jobs[0].deadline_ms, 12.5);
  // An explicit zero is a real (immediately-due) deadline, distinct from
  // the unset state of a line that never mentions deadline-ms.
  ASSERT_TRUE(jobs[1].deadline_ms.has_value());
  EXPECT_EQ(*jobs[1].deadline_ms, 0);
  EXPECT_EQ(jobs[2].priority, 0);
  EXPECT_FALSE(jobs[2].deadline_ms.has_value());
}

TEST(Manifest, SketchRowsOverrideParsesPerJob) {
  std::stringstream manifest(
      "packing-factorized a.psdp sketch-rows=8\n"
      "packing-factorized b.psdp sketch-rows=0\n"
      "packing-factorized c.psdp\n");
  const SolveBatch batch = read_manifest(manifest, "test");
  ASSERT_EQ(batch.size(), 3u);
  const std::vector<JobSpec>& jobs = batch.jobs();
  EXPECT_EQ(jobs[0].options.decision.dot_options.sketch_rows_override, 8);
  // sketch-rows=0 and an absent key both mean the eps-derived default,
  // and the override never leaks between lines.
  EXPECT_EQ(jobs[1].options.decision.dot_options.sketch_rows_override, 0);
  EXPECT_EQ(jobs[2].options.decision.dot_options.sketch_rows_override, 0);
}

TEST(Manifest, SketchRowsErrorsNameLineAndToken) {
  const auto message_of = [](const std::string& text) -> std::string {
    std::stringstream in(text);
    try {
      read_manifest(in, "m");
    } catch (const InvalidArgument& e) {
      return e.what();
    }
    return "";
  };
  {
    const std::string what =
        message_of("packing-lp a.psdp\npacking-lp b.psdp sketch-rows=lots\n");
    EXPECT_NE(what.find("m:2"), std::string::npos) << what;
    EXPECT_NE(what.find("lots"), std::string::npos) << what;
  }
  {
    const std::string what =
        message_of("packing-lp a.psdp sketch-rows=-4\n");
    EXPECT_NE(what.find("m:1"), std::string::npos) << what;
    EXPECT_NE(what.find(">= 0"), std::string::npos) << what;
  }
}

TEST(Manifest, HashInsideValueIsDataNotComment) {
  // '#' only opens a comment at line start or after whitespace; embedded
  // in a token it is data (the old find-any-'#' rule truncated the value
  // *and* the line quoted by later error messages).
  std::stringstream manifest(
      "# full-line comment\n"
      "packing-lp a.psdp label=p99#high id=run#7 # trailing comment\n"
      "\t# indented comment\n"
      "packing-lp b.psdp eps=0.2\t# tab before comment\n");
  const SolveBatch batch = read_manifest(manifest, "test");
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.jobs()[0].label, "p99#high");
  EXPECT_EQ(batch.jobs()[0].instance, "run#7");
  EXPECT_EQ(batch.jobs()[1].options.eps, 0.2);
}

TEST(Manifest, SetLinesApplyTunableOverrides) {
  struct Restore {
    ~Restore() { util::tunables().reset(); }
  } restore;
  std::stringstream manifest(
      "set lanes=2 wide-work=1048576\n"
      "set cache_capacity=7\n"
      "packing-lp a.psdp\n");
  const SolveBatch batch = read_manifest(manifest, "test");
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(util::tunables().get(util::TunableId::k_lanes), 2);
  EXPECT_EQ(util::tunables().get(util::TunableId::k_wide_work), 1048576);
  // Options structs constructed after the manifest load (the solver_cli
  // startup order) read the overrides.
  EXPECT_EQ(SchedulerOptions{}.lanes, 2);
  EXPECT_EQ(SchedulerOptions{}.wide_work, 1048576);
  EXPECT_EQ(ArtifactCache::Options{}.capacity, 7u);
}

TEST(Manifest, SetLineErrorsNameLocationAndTunable) {
  struct Restore {
    ~Restore() { util::tunables().reset(); }
  } restore;
  const auto message_of = [](const std::string& text) -> std::string {
    std::stringstream in(text);
    try {
      read_manifest(in, "m");
    } catch (const InvalidArgument& e) {
      return e.what();
    }
    return "";
  };
  {
    const std::string what = message_of("set lanes=banana\n");
    EXPECT_NE(what.find("m:1"), std::string::npos) << what;
    EXPECT_NE(what.find("lanes"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("set segment_rows=1\n");  // below min
    EXPECT_NE(what.find("segment_rows"), std::string::npos) << what;
    EXPECT_NE(what.find("range"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("set no_such_knob=1\n");
    EXPECT_NE(what.find("no_such_knob"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("packing-lp a.psdp\nset\n");
    EXPECT_NE(what.find("m:2"), std::string::npos) << what;
    EXPECT_NE(what.find("without assignments"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("set lanes\n");
    EXPECT_NE(what.find("key=value"), std::string::npos) << what;
  }
}

TEST(BatchScheduler, ZeroDeadlineIsImmediatelyDueNotUnset) {
  ThreadGuard guard;
  par::set_num_threads(2);
  SolveBatch batch;
  for (int i = 0; i < 2; ++i) {
    batch.add_lp(str("lp", i), std::make_shared<const core::PackingLp>(
                                   apps::complete_graph_matching_lp(6).lp));
  }
  // Pre-fix, deadline_ms == 0 silently meant "no deadline"; now 0 is a
  // real, immediately-due deadline and only an unset optional means none.
  batch.jobs()[0].deadline_ms = 0;

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  ASSERT_TRUE(results[0].deadline_ms.has_value());
  EXPECT_EQ(*results[0].deadline_ms, 0);
  EXPECT_FALSE(results[0].deadline_met)
      << "a zero deadline cannot be met by any positive service time";
  EXPECT_FALSE(results[1].deadline_ms.has_value());
  EXPECT_TRUE(results[1].deadline_met) << "no deadline set, none missed";
}

TEST(Manifest, PriorityAndDeadlineErrorsNameLineAndToken) {
  const auto message_of = [](const std::string& text) -> std::string {
    std::stringstream in(text);
    try {
      read_manifest(in, "m");
    } catch (const InvalidArgument& e) {
      return e.what();
    }
    return "";
  };
  {
    const std::string what =
        message_of("packing-lp a.psdp\npacking-lp b.psdp priority=soon\n");
    EXPECT_NE(what.find("m:2"), std::string::npos) << what;
    EXPECT_NE(what.find("soon"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("packing-lp a.psdp deadline-ms=-5\n");
    EXPECT_NE(what.find("m:1"), std::string::npos) << what;
    EXPECT_NE(what.find(">= 0"), std::string::npos) << what;
  }
  {
    const std::string what =
        message_of("packing-lp a.psdp deadline-ms=later\n");
    EXPECT_NE(what.find("later"), std::string::npos) << what;
  }
}

TEST(Manifest, ErrorsNameLineAndToken) {
  const auto message_of = [](const std::string& text) -> std::string {
    std::stringstream in(text);
    try {
      read_manifest(in, "m");
    } catch (const InvalidArgument& e) {
      return e.what();
    }
    return "";
  };
  {
    const std::string what = message_of("packing-lp a.psdp\nwarp b.psdp\n");
    EXPECT_NE(what.find("m:2"), std::string::npos) << what;
    EXPECT_NE(what.find("warp"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("packing-lp a.psdp eps=bogus\n");
    EXPECT_NE(what.find("m:1"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("packing-lp a.psdp eps\n");
    EXPECT_NE(what.find("key=value"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("packing-lp\n");
    EXPECT_NE(what.find("missing instance path"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("# only comments\n\n");
    EXPECT_NE(what.find("no jobs"), std::string::npos) << what;
  }
}

TEST(Manifest, EndToEndSolvesFromFiles) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string dir = ::testing::TempDir();
  const std::string lp_path = dir + "/psdp_serve_test.lp.psdp";
  io::save_lp(lp_path, apps::complete_graph_matching_lp(6).lp);
  const std::string fact_path = dir + "/psdp_serve_test.fact.psdp";
  io::save_factorized(fact_path,
                      apps::random_factorized({.n = 4, .m = 64, .rank = 2,
                                               .nnz_per_column = 4,
                                               .seed = 2}));

  std::stringstream manifest;
  manifest << "packing-lp " << lp_path << " eps=0.2\n"
           << "packing-lp " << lp_path << " eps=0.1\n"
           << "packing-factorized " << fact_path
           << " eps=0.5 decision-eps=0.3 probe=phased\n";
  SolveBatch batch = read_manifest(manifest, "files");

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
  }
  // K6 fractional matching optimum is exactly 3.
  EXPECT_NEAR(results[0].lp.upper, 3.0, 3.0 * 0.25);
  // The two LP jobs share one manifest path, hence one artifact key:
  // exactly one of them built it (they may have raced from two lanes).
  EXPECT_NE(results[0].cache_hit, results[1].cache_hit);

  std::remove(lp_path.c_str());
  std::remove(fact_path.c_str());
}

}  // namespace
}  // namespace psdp::serve
