// The serve layer: ArtifactCache hit/miss/evict accounting and workspace
// pooling, the BatchScheduler's lanes-vs-solo bitwise determinism contract,
// per-job failure isolation, concurrent artifact preparation from scheduler
// lanes, and the job-manifest reader.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "apps/generators.hpp"
#include "io/instance_io.hpp"
#include "par/parallel.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/manifest.hpp"
#include "serve/scheduler.hpp"
#include "sparse/csr.hpp"
#include "test_helpers.hpp"

namespace psdp::serve {
namespace {

using linalg::Vector;

/// RAII guard: restore the global thread count on scope exit.
struct ThreadGuard {
  int before = par::num_threads();
  ~ThreadGuard() { par::set_num_threads(before); }
};

/// A cheap prepared instance (the LP kind needs no index builds), tagged so
/// tests can tell which builder call produced it.
PreparedInstance tiny_lp_instance(Real scale = 1) {
  linalg::Matrix p(2, 3);
  p(0, 0) = scale;
  p(0, 2) = 2 * scale;
  p(1, 1) = scale;
  p(1, 2) = scale;
  return prepare_lp(core::PackingLp(std::move(p)));
}

ArtifactCache::Builder counting_builder(std::atomic<int>& builds,
                                        Real scale = 1) {
  return [&builds, scale](const sparse::TransposePlanOptions&) {
    builds.fetch_add(1);
    return tiny_lp_instance(scale);
  };
}

TEST(ArtifactCache, HitMissEvictCountersAndLru) {
  ArtifactCache::Options options;
  options.capacity = 2;
  ArtifactCache cache(options);
  std::atomic<int> builds{0};

  const auto a1 = cache.get("a", counting_builder(builds));
  EXPECT_FALSE(a1.hit);
  const auto a2 = cache.get("a", counting_builder(builds));
  EXPECT_TRUE(a2.hit);
  EXPECT_EQ(a1.entry.get(), a2.entry.get());
  EXPECT_EQ(builds.load(), 1);

  cache.get("b", counting_builder(builds));
  EXPECT_EQ(cache.size(), 2u);
  // Touch "a" so "b" is the LRU victim of the third key.
  cache.get("a", counting_builder(builds));
  cache.get("c", counting_builder(builds));
  EXPECT_EQ(cache.size(), 2u);

  ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // "b" was evicted: resolving it again rebuilds; "a" is still cached.
  EXPECT_FALSE(cache.get("b", counting_builder(builds)).hit);
  EXPECT_EQ(builds.load(), 4);

  // An evicted entry held by a job stays alive through its shared_ptr.
  EXPECT_EQ(a1.entry->instance().kind, JobKind::kPackingLp);
  EXPECT_EQ(a1.entry->key(), "a");
}

TEST(ArtifactCache, BuilderFailureLeavesNoEntryBehind) {
  ArtifactCache cache;
  std::atomic<int> builds{0};
  const ArtifactCache::Builder boom =
      [](const sparse::TransposePlanOptions&) -> PreparedInstance {
    throw NumericalError("builder exploded");
  };
  EXPECT_THROW(cache.get("k", boom), NumericalError);
  EXPECT_EQ(cache.size(), 0u);
  // The next resolve retries with a working builder.
  EXPECT_FALSE(cache.get("k", counting_builder(builds)).hit);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ArtifactCache, WaiterRebuildAfterFailedBuilderEndsUpCached) {
  // Lane A's builder throws while lane B waits on the same key: whichever
  // way the race resolves (B waited on the build mutex and rebuilt the
  // erased-but-held entry, or B re-inserted a fresh shell), the key must
  // end up cached -- a later lookup is a pure hit, not a rebuild.
  ArtifactCache cache;
  std::atomic<bool> builder_entered{false};
  std::atomic<bool> release_builder{false};
  std::atomic<int> good_builds{0};

  std::thread failing([&] {
    const ArtifactCache::Builder boom =
        [&](const sparse::TransposePlanOptions&) -> PreparedInstance {
      builder_entered.store(true);
      while (!release_builder.load()) std::this_thread::yield();
      throw NumericalError("transient failure");
    };
    EXPECT_THROW(cache.get("k", boom), NumericalError);
  });
  while (!builder_entered.load()) std::this_thread::yield();

  std::thread waiting([&] {
    // Likely blocks on the entry's build mutex until the failure lands.
    const auto resolved = cache.get("k", counting_builder(good_builds));
    EXPECT_EQ(resolved.entry->instance().kind, JobKind::kPackingLp);
  });
  // Give the waiter a moment to reach the build mutex, then let the
  // failing builder throw (correct either way; see above).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_builder.store(true);
  failing.join();
  waiting.join();

  EXPECT_EQ(good_builds.load(), 1);
  ASSERT_NE(cache.find("k"), nullptr)
      << "the successful rebuild must be cached";
  std::atomic<int> more_builds{0};
  EXPECT_TRUE(cache.get("k", counting_builder(more_builds)).hit);
  EXPECT_EQ(more_builds.load(), 0);
}

TEST(ArtifactCache, WorkspacePoolReusesUpToCap) {
  ArtifactCache::Options options;
  options.workspaces_per_entry = 2;
  ArtifactCache cache(options);
  std::atomic<int> builds{0};
  const auto resolved = cache.get("k", counting_builder(builds));

  core::SolverWorkspace* first = nullptr;
  {
    WorkspaceLease lease(resolved.entry);
    ASSERT_NE(lease.get(), nullptr);
    first = lease.get();
  }  // returned to the pool
  {
    WorkspaceLease lease(resolved.entry);
    EXPECT_EQ(lease.get(), first);  // same workspace, recycled
  }
  EXPECT_EQ(cache.stats().workspace_reuses, 1u);

  // Three concurrent leases against a one-deep pool: one reuse, two fresh;
  // on release only two fit the cap (the third is dropped).
  {
    WorkspaceLease a(resolved.entry), b(resolved.entry), c(resolved.entry);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(b.get(), c.get());
  }
  // Now the pool is full (two workspaces): two of three leases reuse.
  {
    WorkspaceLease a(resolved.entry), b(resolved.entry), c(resolved.entry);
  }
  // 1 (earlier) + 1 + 2: dropped leases never count as reuses.
  EXPECT_EQ(cache.stats().workspace_reuses, 4u);

  // Moved-from leases release nothing twice.
  WorkspaceLease outer;
  {
    WorkspaceLease inner(resolved.entry);
    outer = std::move(inner);
    EXPECT_EQ(inner.get(), nullptr);
  }
  EXPECT_NE(outer.get(), nullptr);
}

TEST(ArtifactCache, PlanOptionsRouteIntoOwnedPlanCache) {
  ArtifactCache cache;
  const sparse::TransposePlanOptions plan = cache.plan_options();
  EXPECT_EQ(plan.autotune.plan_cache, &cache.plan_cache());
}

TEST(ArtifactCache, CoveringPreparationCachesNormalization) {
  // A small covering problem: C = I and two diagonal constraints (PSD).
  core::CoveringProblem problem;
  problem.objective = linalg::Matrix::identity(3);
  linalg::Matrix a(3, 3);
  a(0, 0) = 2;
  a(1, 1) = 1;
  linalg::Matrix b(3, 3);
  b(2, 2) = 4;
  problem.constraints = {a, b};
  problem.rhs = Vector{1.0, 2.0};
  const PreparedInstance prepared = prepare_covering(std::move(problem));
  EXPECT_NO_THROW(prepared.validate());
  ASSERT_NE(prepared.normalized, nullptr);
  EXPECT_EQ(prepared.normalized->packing.size(), 2);
}

// ---------------------------------------------------------------------------
// Scheduler: determinism, sharding, callbacks, failure isolation.
// ---------------------------------------------------------------------------

/// A small factorized instance whose factors are tall enough to carry
/// transpose indexes (m = 64 >> rank), solved with loose eps so the whole
/// batch runs in well under a second.
std::shared_ptr<const core::FactorizedPackingInstance> small_factorized(
    std::uint64_t seed) {
  return std::make_shared<const core::FactorizedPackingInstance>(
      apps::random_factorized(
          {.n = 6, .m = 64, .rank = 2, .nnz_per_column = 4, .seed = seed}));
}

core::OptimizeOptions loose_options() {
  core::OptimizeOptions options;
  options.eps = 0.5;
  options.decision_eps = 0.3;
  options.probe_solver = core::ProbeSolver::kPhased;
  options.decision.dot_options.sketch_rows_override = 8;
  return options;
}

TEST(BatchScheduler, LaneResultsBitwiseEqualSoloRuns) {
  ThreadGuard guard;
  par::set_num_threads(4);

  const auto inst_a = small_factorized(3);
  const auto inst_b = small_factorized(4);
  const core::OptimizeOptions options = loose_options();

  // Solo references at the same pool width.
  const core::PackingOptimum solo_a = core::approx_packing(*inst_a, options);
  const core::PackingOptimum solo_b = core::approx_packing(*inst_b, options);

  SolveBatch batch;
  batch.add_factorized("a", inst_a, options);
  batch.add_factorized("b", inst_b, options);
  batch.add_factorized("a", inst_a, options, "a-again");

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    ASSERT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_GE(r.lane, 0) << "small jobs must run in lanes";
  }
  const auto expect_bitwise = [](const core::PackingOptimum& got,
                                 const core::PackingOptimum& want) {
    EXPECT_EQ(got.lower, want.lower);
    EXPECT_EQ(got.upper, want.upper);
    ASSERT_EQ(got.best_x.size(), want.best_x.size());
    for (Index i = 0; i < got.best_x.size(); ++i) {
      EXPECT_EQ(got.best_x[i], want.best_x[i]);
    }
  };
  expect_bitwise(results[0].packing, solo_a);
  expect_bitwise(results[1].packing, solo_b);
  expect_bitwise(results[2].packing, solo_a);  // repeated config, cached

  // The two "a" jobs may resolve concurrently from different lanes:
  // exactly one runs the builder, the other shares it.
  EXPECT_NE(results[0].cache_hit, results[2].cache_hit);
  EXPECT_FALSE(results[1].cache_hit);

  // The same batch on the warm scheduler: all hits, same bits.
  const std::vector<JobResult> warm = scheduler.run(batch);
  for (const JobResult& r : warm) EXPECT_TRUE(r.cache_hit);
  expect_bitwise(warm[0].packing, solo_a);
}

TEST(BatchScheduler, WideJobsRunAtFullWidthAndMatchLanes) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const auto inst = small_factorized(9);
  const core::OptimizeOptions options = loose_options();

  SolveBatch narrow_batch;
  narrow_batch.add_factorized("k", inst, options);

  SolveBatch wide_batch;
  const std::size_t at = wide_batch.add_factorized("k", inst, options);
  wide_batch.jobs()[at].work = std::numeric_limits<Index>::max() / 2;

  BatchScheduler narrow_scheduler;
  BatchScheduler wide_scheduler;
  const JobResult narrow = narrow_scheduler.run(narrow_batch)[0];
  const JobResult wide = wide_scheduler.run(wide_batch)[0];
  ASSERT_TRUE(narrow.ok && wide.ok);
  EXPECT_GE(narrow.lane, 0);
  EXPECT_EQ(wide.lane, -1);
  // Lane-inline and full-width executions agree bit for bit.
  EXPECT_EQ(narrow.packing.lower, wide.packing.lower);
  EXPECT_EQ(narrow.packing.upper, wide.packing.upper);
}

TEST(BatchScheduler, FailuresAreIsolatedAndCallbacksFire) {
  ThreadGuard guard;
  par::set_num_threads(2);

  SolveBatch batch;
  batch.add_lp("good", std::make_shared<const core::PackingLp>(
                           apps::complete_graph_matching_lp(6).lp));
  JobSpec bad;
  bad.instance = "bad";
  bad.kind = JobKind::kPackingLp;
  bad.builder = [](const sparse::TransposePlanOptions&) -> PreparedInstance {
    throw NumericalError("instance generation failed");
  };
  batch.add(std::move(bad));

  std::atomic<int> callbacks{0};
  for (auto& job : batch.jobs()) {
    job.on_complete = [&callbacks](const JobResult&) { callbacks.fetch_add(1); };
  }

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("instance generation failed"),
            std::string::npos);
  EXPECT_EQ(callbacks.load(), 2);

  // A kind mismatch against a cached instance is a per-job error too.
  SolveBatch mismatched;
  JobSpec wrong;
  wrong.instance = "good";  // cached as packing-lp
  wrong.kind = JobKind::kCovering;
  wrong.builder = [](const sparse::TransposePlanOptions&) {
    return tiny_lp_instance();
  };
  mismatched.add(std::move(wrong));
  const JobResult r = scheduler.run(mismatched)[0];
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("prepared as"), std::string::npos);
}

TEST(BatchScheduler, RunAsyncDeliversSameResults) {
  ThreadGuard guard;
  par::set_num_threads(2);
  SolveBatch batch;
  batch.add_lp("lp", std::make_shared<const core::PackingLp>(
                         apps::complete_graph_matching_lp(6).lp));
  BatchScheduler scheduler;
  const JobResult sync = scheduler.run(batch)[0];
  std::future<std::vector<JobResult>> pending =
      scheduler.run_async(std::move(batch));
  const JobResult async = pending.get()[0];
  ASSERT_TRUE(sync.ok && async.ok);
  EXPECT_EQ(sync.lp.lower, async.lp.lower);
  EXPECT_EQ(sync.lp.upper, async.lp.upper);
}

TEST(BatchScheduler, ConcurrentLanesPrepareDistinctInstancesOnce) {
  ThreadGuard guard;
  par::set_num_threads(4);

  // Eight jobs over four distinct factorized instances, resolved lazily
  // inside concurrent lanes: each instance must be built exactly once, and
  // its factor transpose indexes must be built exactly at prepare time
  // (zero on the repeat jobs).
  std::atomic<int> builds{0};
  SolveBatch batch;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t seed = 11 + static_cast<std::uint64_t>(i % 4);
    JobSpec job;
    job.instance = str("inst", i % 4);
    job.kind = JobKind::kPackingFactorized;
    job.options = loose_options();
    job.builder = [seed, &builds](const sparse::TransposePlanOptions& plan) {
      builds.fetch_add(1);
      apps::FactorizedOptions options{
          .n = 4, .m = 64, .rank = 2, .nnz_per_column = 4, .seed = seed};
      options.plan_options = &plan;
      return prepare_factorized(apps::random_factorized(options));
    };
    batch.add(std::move(job));
  }

  BatchScheduler scheduler;
  const std::uint64_t index_builds_before = sparse::transpose_index_build_count();
  const std::vector<JobResult> results = scheduler.run(batch);
  const std::uint64_t index_builds_cold =
      sparse::transpose_index_build_count() - index_builds_before;
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
  }
  EXPECT_EQ(builds.load(), 4) << "one build per distinct instance";
  // 4 instances x 4 tall factors each.
  EXPECT_EQ(index_builds_cold, 16u);

  // Warm repeat: zero builder calls, zero index rebuilds.
  const std::uint64_t before_warm = sparse::transpose_index_build_count();
  scheduler.run(batch);
  EXPECT_EQ(builds.load(), 4);
  EXPECT_EQ(sparse::transpose_index_build_count() - before_warm, 0u);
  const ArtifactCache::Stats stats = scheduler.cache().stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 12u);  // 4 cold repeats + 8 warm
}

// ---------------------------------------------------------------------------
// Manifest reader.
// ---------------------------------------------------------------------------

TEST(Manifest, ParsesKindsOptionsAndSharedIds) {
  std::stringstream manifest(
      "# heterogeneous batch\n"
      "packing-lp jobs/lp.psdp eps=0.2 label=lp-loose\n"
      "packing-lp jobs/lp.psdp eps=0.1\n"
      "packing-factorized jobs/fact.psdp probe=phased decision-eps=0.25\n"
      "covering jobs/cov.psdp wide=1 id=shared-cov\n"
      "\n");
  const SolveBatch batch = read_manifest(manifest, "test");
  ASSERT_EQ(batch.size(), 4u);
  const std::vector<JobSpec>& jobs = batch.jobs();
  EXPECT_EQ(jobs[0].kind, JobKind::kPackingLp);
  EXPECT_EQ(jobs[0].label, "lp-loose");
  EXPECT_EQ(jobs[0].options.eps, 0.2);
  // Jobs naming the same file share one artifact key.
  EXPECT_EQ(jobs[0].instance, jobs[1].instance);
  EXPECT_EQ(jobs[2].options.probe_solver, core::ProbeSolver::kPhased);
  EXPECT_EQ(jobs[2].options.decision_eps, 0.25);
  EXPECT_EQ(jobs[3].instance, "shared-cov");
  EXPECT_GT(jobs[3].work, 0) << "wide=1 must mark the job wide";
  EXPECT_EQ(jobs[1].work, 0);
}

TEST(Manifest, ErrorsNameLineAndToken) {
  const auto message_of = [](const std::string& text) -> std::string {
    std::stringstream in(text);
    try {
      read_manifest(in, "m");
    } catch (const InvalidArgument& e) {
      return e.what();
    }
    return "";
  };
  {
    const std::string what = message_of("packing-lp a.psdp\nwarp b.psdp\n");
    EXPECT_NE(what.find("m:2"), std::string::npos) << what;
    EXPECT_NE(what.find("warp"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("packing-lp a.psdp eps=bogus\n");
    EXPECT_NE(what.find("m:1"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("packing-lp a.psdp eps\n");
    EXPECT_NE(what.find("key=value"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("packing-lp\n");
    EXPECT_NE(what.find("missing instance path"), std::string::npos) << what;
  }
  {
    const std::string what = message_of("# only comments\n\n");
    EXPECT_NE(what.find("no jobs"), std::string::npos) << what;
  }
}

TEST(Manifest, EndToEndSolvesFromFiles) {
  ThreadGuard guard;
  par::set_num_threads(2);
  const std::string dir = ::testing::TempDir();
  const std::string lp_path = dir + "/psdp_serve_test.lp.psdp";
  io::save_lp(lp_path, apps::complete_graph_matching_lp(6).lp);
  const std::string fact_path = dir + "/psdp_serve_test.fact.psdp";
  io::save_factorized(fact_path,
                      apps::random_factorized({.n = 4, .m = 64, .rank = 2,
                                               .nnz_per_column = 4,
                                               .seed = 2}));

  std::stringstream manifest;
  manifest << "packing-lp " << lp_path << " eps=0.2\n"
           << "packing-lp " << lp_path << " eps=0.1\n"
           << "packing-factorized " << fact_path
           << " eps=0.5 decision-eps=0.3 probe=phased\n";
  SolveBatch batch = read_manifest(manifest, "files");

  BatchScheduler scheduler;
  const std::vector<JobResult> results = scheduler.run(batch);
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
  }
  // K6 fractional matching optimum is exactly 3.
  EXPECT_NEAR(results[0].lp.upper, 3.0, 3.0 * 0.25);
  // The two LP jobs share one manifest path, hence one artifact key:
  // exactly one of them built it (they may have raced from two lanes).
  EXPECT_NE(results[0].cache_hit, results[1].cache_hit);

  std::remove(lp_path.c_str());
  std::remove(fact_path.c_str());
}

}  // namespace
}  // namespace psdp::serve
