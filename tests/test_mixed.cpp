// Tests for the mixed packing/covering extension (Section 5 future work).
// The solver is heuristic (no worst-case analysis), so the tests are built
// on planted-feasible instances and on the measured certificates the
// result carries.
#include <gtest/gtest.h>

#include "core/certificates.hpp"
#include "core/mixed.hpp"
#include "linalg/eig.hpp"
#include "rand/rng.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// A planted-feasible instance: uniform x* = 1/n packs exactly to
/// `pack_slack` and covers every coordinate to `cover_surplus`.
MixedInstance planted_instance(Index n, Index m, Index l, Real pack_slack,
                               Real cover_surplus, std::uint64_t seed) {
  std::vector<Matrix> packing;
  std::vector<Vector> covering;
  rand::Rng rng(seed);
  // Packing: random PSD matrices, then scale the whole family so
  // lambda_max(avg) = pack_slack.
  Matrix sum(m, m);
  for (Index i = 0; i < n; ++i) {
    packing.push_back(psdp::testing::random_psd(m, seed * 131 + static_cast<std::uint64_t>(i)));
    sum.add_scaled(packing.back(), 1.0 / static_cast<Real>(n));
  }
  const Real lambda = linalg::lambda_max_exact(sum);
  for (Matrix& a : packing) a.scale(pack_slack / lambda);
  // Covering: random non-negative vectors scaled so the uniform average
  // covers every coordinate to exactly cover_surplus.
  Vector cov_sum(l);
  for (Index i = 0; i < n; ++i) {
    Vector d(l);
    for (Index j = 0; j < l; ++j) d[j] = rng.uniform(0.1, 1.0);
    covering.push_back(d);
    cov_sum.add_scaled(d, 1.0 / static_cast<Real>(n));
  }
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < l; ++j) {
      covering[static_cast<std::size_t>(i)][j] *= cover_surplus / cov_sum[j];
    }
  }
  MixedInstance instance;
  instance.packing = PackingInstance(std::move(packing));
  instance.covering = std::move(covering);
  return instance;
}

TEST(MixedInstance, ValidationCatchesStructuralErrors) {
  MixedInstance instance = planted_instance(4, 3, 2, 0.5, 2.0, 1);
  EXPECT_NO_THROW(instance.validate());
  // Misaligned covering.
  MixedInstance bad = instance;
  bad.covering.pop_back();
  EXPECT_THROW(bad.validate(), InvalidArgument);
  // Negative covering entry.
  bad = instance;
  bad.covering[0][0] = -1;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  // Unreachable covering coordinate.
  bad = instance;
  for (auto& d : bad.covering) d[1] = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  // Inconsistent lengths.
  bad = instance;
  bad.covering[1] = Vector(5, 1.0);
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(MixedSolve, RecoverComfortablyFeasibleInstance) {
  // Plenty of room on both sides: pack to 1/2 while covering 4x over.
  const MixedInstance instance = planted_instance(8, 4, 3, 0.5, 4.0, 2);
  MixedOptions options;
  options.eps = 0.2;
  const MixedResult r = solve_mixed(instance, options);
  ASSERT_EQ(r.outcome, MixedOutcome::kFeasible);
  // Packing side: verify against the exact checker.
  const DualCheck pack = check_dual(instance.packing, r.x, 1e-9);
  EXPECT_TRUE(pack.feasible) << "lambda_max=" << pack.lambda_max;
  // Covering side: recompute coverage from scratch.
  Vector coverage(instance.covering_dim());
  for (Index i = 0; i < instance.size(); ++i) {
    coverage.add_scaled(instance.covering[static_cast<std::size_t>(i)], r.x[i]);
  }
  for (Index j = 0; j < coverage.size(); ++j) {
    EXPECT_GE(coverage[j], 1 - 10 * options.eps) << "coordinate " << j;
    EXPECT_NEAR(coverage[j], coverage[j], 0);  // finite
  }
  EXPECT_NEAR(r.min_coverage, [&] {
    Real mc = coverage[0];
    for (Index j = 1; j < coverage.size(); ++j) mc = std::min(mc, coverage[j]);
    return mc;
  }(), 1e-9);
}

class MixedPlantedSweep
    : public ::testing::TestWithParam<std::tuple<Real, std::uint64_t>> {};

TEST_P(MixedPlantedSweep, CertificatesAlwaysVerify) {
  const auto [surplus, seed] = GetParam();
  const MixedInstance instance = planted_instance(10, 4, 4, 0.6, surplus, seed);
  MixedOptions options;
  options.eps = 0.25;
  const MixedResult r = solve_mixed(instance, options);
  // Whatever the outcome, the packing certificate must hold exactly.
  EXPECT_TRUE(check_dual(instance.packing, r.x, 1e-9).feasible);
  if (surplus >= 3.0) {
    EXPECT_EQ(r.outcome, MixedOutcome::kFeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SurplusAndSeed, MixedPlantedSweep,
    ::testing::Combine(::testing::Values(3.0, 6.0),
                       ::testing::Values(5u, 6u, 7u)));

TEST(MixedSolve, ProvablyInfeasibleInstanceReportsExhausted) {
  // d_ij = Tr(A_i)/(2m) makes every coverage coordinate equal to
  // Tr(sum x_i A_i)/(2m) <= lambda_max/2, so no packing-feasible x can
  // cover beyond 1/2: the instance is infeasible by construction.
  const Index n = 6, m = 3, l = 2;
  std::vector<Matrix> packing;
  std::vector<Vector> covering;
  for (Index i = 0; i < n; ++i) {
    packing.push_back(
        psdp::testing::random_psd(m, 900 + static_cast<std::uint64_t>(i)));
    const Real d = linalg::trace(packing.back()) / (2 * static_cast<Real>(m));
    covering.push_back(Vector(l, d));
  }
  MixedInstance instance;
  instance.packing = PackingInstance(std::move(packing));
  instance.covering = std::move(covering);

  MixedOptions options;
  options.eps = 0.2;
  options.max_iterations_override = 2000;
  const MixedResult r = solve_mixed(instance, options);
  EXPECT_EQ(r.outcome, MixedOutcome::kExhausted);
  // Even then, the packing side of the reported x is exactly feasible.
  EXPECT_TRUE(check_dual(instance.packing, r.x, 1e-9).feasible);
  EXPECT_LT(r.min_coverage, 1.0);
}

TEST(MixedSolve, PureCoveringCoordinateIsUsed) {
  // One coordinate has a tiny packing footprint and dominant coverage: the
  // solver should lean on it.
  std::vector<Matrix> packing;
  std::vector<Vector> covering;
  Matrix big = Matrix::identity(2);
  packing.push_back(big);
  covering.push_back(Vector{0.01});
  Matrix small = Matrix::identity(2);
  small.scale(0.01);
  packing.push_back(small);
  covering.push_back(Vector{1.0});
  MixedInstance instance;
  instance.packing = PackingInstance(std::move(packing));
  instance.covering = std::move(covering);

  MixedOptions options;
  options.eps = 0.2;
  const MixedResult r = solve_mixed(instance, options);
  ASSERT_EQ(r.outcome, MixedOutcome::kFeasible);
  EXPECT_GT(r.x[1], r.x[0]);  // the efficient coordinate carries the mass
}

TEST(MixedSolve, RejectsBadEps) {
  const MixedInstance instance = planted_instance(3, 2, 2, 0.5, 2.0, 11);
  MixedOptions options;
  options.eps = 0;
  EXPECT_THROW(solve_mixed(instance, options), InvalidArgument);
}

TEST(MixedSolve, IterationOverrideHonored) {
  const MixedInstance instance = planted_instance(4, 3, 2, 0.5, 2.0, 12);
  MixedOptions options;
  options.eps = 0.2;
  options.max_iterations_override = 3;
  const MixedResult r = solve_mixed(instance, options);
  EXPECT_LE(r.iterations, 3);
}

}  // namespace
}  // namespace psdp::core
