// Tests for Algorithm 3.1 (decisionPSDP): both implementations, the
// certificates they return, the Lemma 3.2 spectrum invariant, and the
// Theorem 3.1 iteration bound.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/generators.hpp"
#include "core/certificates.hpp"
#include "core/decision.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using apps::EllipseOptions;
using apps::random_ellipses;
using linalg::Matrix;
using linalg::Vector;

TEST(AlgorithmConstants, MatchPaperFormulas) {
  const Index n = 100;
  const Real eps = 0.1;
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Real ln_n = std::log(100.0);
  EXPECT_NEAR(c.k_cap, (1 + ln_n) / eps, 1e-12);
  EXPECT_NEAR(c.alpha, eps / (c.k_cap * (1 + 10 * eps)), 1e-15);
  EXPECT_EQ(c.r_limit,
            static_cast<Index>(std::ceil(32 * ln_n / (eps * c.alpha))));
  EXPECT_NEAR(c.spectrum_bound, (1 + 10 * eps) * c.k_cap, 1e-12);
}

TEST(AlgorithmConstants, SingleConstraintUsesFloorOfTwo) {
  // ln(1) = 0 would make R = 0; the implementation floors n at 2.
  const AlgorithmConstants c = algorithm_constants(1, 0.2);
  EXPECT_GT(c.r_limit, 0);
  EXPECT_GT(c.k_cap, 0);
}

TEST(AlgorithmConstants, RejectsBadEps) {
  EXPECT_THROW(algorithm_constants(10, 0.0), InvalidArgument);
  EXPECT_THROW(algorithm_constants(10, 1.0), InvalidArgument);
  EXPECT_THROW(algorithm_constants(0, 0.1), InvalidArgument);
}

TEST(AlgorithmConstants, IterationCountGrowsAsEpsShrinks) {
  const Index n = 64;
  Index prev = 0;
  for (Real eps : {0.5, 0.25, 0.125, 0.0625}) {
    const AlgorithmConstants c = algorithm_constants(n, eps);
    EXPECT_GT(c.r_limit, prev);
    prev = c.r_limit;
  }
}

// ---------------------------------------------------------------------------
// Decision outcomes on instances whose answer is known by construction.
// ---------------------------------------------------------------------------

// Identity constraints: sum x_i I <= I iff ||x||_1 <= 1, so OPT = 1.
PackingInstance identity_instance(Index n, Index m, Real scale) {
  std::vector<Matrix> constraints;
  for (Index i = 0; i < n; ++i) {
    Matrix a = Matrix::identity(m);
    a.scale(scale);
    constraints.push_back(std::move(a));
  }
  return PackingInstance(std::move(constraints));
}

TEST(DecisionDense, SmallScaleYieldsDual) {
  // A_i = 0.1 I: OPT = 10 >> 1, so the dual side must be found.
  const PackingInstance instance = identity_instance(4, 3, 0.1);
  DecisionOptions options;
  options.eps = 0.2;
  const DecisionResult r = decision_dense(instance, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  const DualCheck check = check_dual(instance, r.dual_x);
  EXPECT_TRUE(check.feasible);
  EXPECT_GE(check.value, 1 - 10 * options.eps);
}

TEST(DecisionDense, LargeScaleYieldsPrimal) {
  // A_i = 10 I: OPT = 0.1 << 1, so a primal certificate must come back.
  const PackingInstance instance = identity_instance(4, 3, 10.0);
  DecisionOptions options;
  options.eps = 0.2;
  const DecisionResult r = decision_dense(instance, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kPrimal);
  const PrimalCheck check = check_primal(instance, r.primal_y, 1e-6);
  EXPECT_TRUE(check.feasible)
      << "trace=" << check.trace << " min_dot=" << check.min_dot;
}

TEST(DecisionDense, DualCertificateIsExactlyFeasible) {
  const PackingInstance instance = identity_instance(8, 2, 0.05);
  DecisionOptions options;
  options.eps = 0.3;
  const DecisionResult r = decision_dense(instance, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  // Lemma 3.2 makes x / ((1+10eps)K) feasible with NO tolerance.
  const DualCheck check = check_dual(instance, r.dual_x, 1e-10);
  EXPECT_TRUE(check.feasible);
  EXPECT_LE(check.lambda_max, 1.0 + 1e-10);
}

TEST(DecisionDense, PrimalDotsMatchPrimalY) {
  const PackingInstance instance = identity_instance(3, 4, 5.0);
  DecisionOptions options;
  options.eps = 0.25;
  const DecisionResult r = decision_dense(instance, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kPrimal);
  for (Index i = 0; i < instance.size(); ++i) {
    EXPECT_NEAR(r.primal_dots[i],
                linalg::frobenius_dot(instance[i], r.primal_y), 1e-8);
  }
  EXPECT_NEAR(r.primal_trace, linalg::trace(r.primal_y), 1e-8);
  EXPECT_NEAR(r.primal_trace, 1.0, 1e-8);
}

TEST(DecisionDense, IterationsWithinTheoremBound) {
  const PackingInstance instance = random_ellipses({});
  DecisionOptions options;
  options.eps = 0.3;
  const DecisionResult r = decision_dense(instance, options);
  EXPECT_LE(r.iterations, r.constants.r_limit);
  EXPECT_GT(r.iterations, 0);
}

TEST(DecisionDense, Figure1Instance) {
  const PackingInstance fig1 = apps::figure1_instance();
  DecisionOptions options;
  options.eps = 0.2;
  // At scale 1 the optimum is around 2 (> 1): expect a dual.
  const DecisionResult r = decision_dense(fig1, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  EXPECT_TRUE(check_dual(fig1, r.dual_x).feasible);
  // At 10x the constraints, the optimum is ~0.2 (< 1): expect a primal.
  const DecisionResult r10 = decision_dense(fig1.scaled(10), options);
  ASSERT_EQ(r10.outcome, DecisionOutcome::kPrimal);
}

// ---------------------------------------------------------------------------
// Lemma 3.2: the spectrum bound is an invariant of the whole trajectory.
// ---------------------------------------------------------------------------

class SpectrumBoundTest : public ::testing::TestWithParam<std::tuple<Real, std::uint64_t>> {};

TEST_P(SpectrumBoundTest, LambdaMaxPsiStaysBelowBound) {
  const auto [eps, seed] = GetParam();
  EllipseOptions gen;
  gen.n = 24;
  gen.m = 6;
  gen.seed = seed;
  const PackingInstance instance = random_ellipses(gen);
  DecisionOptions options;
  options.eps = eps;
  options.track_trajectory = true;
  const DecisionResult r = decision_dense(instance, options);
  ASSERT_FALSE(r.trajectory.empty());
  for (const IterationStat& stat : r.trajectory) {
    EXPECT_LE(stat.lambda_max_psi, r.constants.spectrum_bound * (1 + 1e-9))
        << "iteration " << stat.t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsAndSeedSweep, SpectrumBoundTest,
    ::testing::Combine(::testing::Values(0.1, 0.2, 0.3, 0.5),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------------
// Parameterized outcome-correctness sweep over random instances and scales.
// ---------------------------------------------------------------------------

class OutcomeSweepTest
    : public ::testing::TestWithParam<std::tuple<Real, std::uint64_t>> {};

TEST_P(OutcomeSweepTest, ReturnedCertificateVerifies) {
  const auto [scale, seed] = GetParam();
  EllipseOptions gen;
  gen.n = 16;
  gen.m = 5;
  gen.seed = seed;
  const PackingInstance instance = random_ellipses(gen).scaled(scale);
  DecisionOptions options;
  options.eps = 0.25;
  const DecisionResult r = decision_dense(instance, options);
  if (r.outcome == DecisionOutcome::kDual) {
    const DualCheck check = check_dual(instance, r.dual_x, 1e-9);
    EXPECT_TRUE(check.feasible) << "lambda_max=" << check.lambda_max;
    EXPECT_GE(check.value, 1 - 10 * options.eps - 1e-9);
  } else {
    // Lemma 3.6: every averaged dot is at least ~1 (up to roundoff).
    for (Index i = 0; i < instance.size(); ++i) {
      EXPECT_GE(r.primal_dots[i], 1 - 1e-6) << "constraint " << i;
    }
    EXPECT_NEAR(r.primal_trace, 1.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScaleAndSeedSweep, OutcomeSweepTest,
    ::testing::Combine(::testing::Values(0.05, 0.3, 1.0, 3.0, 20.0),
                       ::testing::Values(11u, 12u, 13u)));

// ---------------------------------------------------------------------------
// Factorized solver agrees with the dense one.
// ---------------------------------------------------------------------------

TEST(DecisionFactorized, AgreesWithDenseOnOutcome) {
  apps::FactorizedOptions gen;
  gen.n = 12;
  gen.m = 10;
  gen.seed = 5;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  const PackingInstance dense = fact.to_dense();
  DecisionOptions options;
  options.eps = 0.25;
  // Exact sketch (m small => JL rows >= m) removes all randomness.
  for (Real scale : {0.2, 1.0, 5.0}) {
    const DecisionResult rf =
        decision_factorized(fact.scaled(scale), options);
    const DecisionResult rd = decision_dense(dense.scaled(scale), options);
    EXPECT_EQ(rf.outcome, rd.outcome) << "scale " << scale;
    EXPECT_EQ(rf.iterations, rd.iterations) << "scale " << scale;
  }
}

TEST(DecisionFactorized, DualCertificateVerifiesExactly) {
  apps::FactorizedOptions gen;
  gen.n = 10;
  gen.m = 8;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  DecisionOptions options;
  options.eps = 0.3;
  const DecisionResult r = decision_factorized(fact.scaled(0.02), options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  const DualCheck check = check_dual(fact, r.dual_x, 1e-6);
  EXPECT_TRUE(check.feasible) << "lambda_max=" << check.lambda_max;
}

TEST(DecisionFactorized, SketchedModeStillProducesValidDual) {
  apps::FactorizedOptions gen;
  gen.n = 16;
  gen.m = 48;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  DecisionOptions options;
  options.eps = 0.3;
  options.dot_options.sketch_rows_override = 24;  // force real sketching
  const DecisionResult r = decision_factorized(fact.scaled(0.01), options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  // The sketch perturbs the SELECTION of coordinates, never the feasibility
  // of x_hat (Lemma 3.2 holds for whatever B the algorithm picks): the dual
  // must still verify exactly.
  const DualCheck check = check_dual(fact, r.dual_x, 1e-6);
  EXPECT_TRUE(check.feasible) << "lambda_max=" << check.lambda_max;
}

TEST(DecisionFactorized, TrajectoryTracksL1Norm) {
  apps::FactorizedOptions gen;
  gen.n = 8;
  gen.m = 6;
  gen.nnz_per_column = 4;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  DecisionOptions options;
  options.eps = 0.3;
  options.track_trajectory = true;
  const DecisionResult r = decision_factorized(fact.scaled(0.05), options);
  ASSERT_EQ(static_cast<Index>(r.trajectory.size()), r.iterations);
  // ||x||_1 is nondecreasing.
  for (std::size_t k = 1; k < r.trajectory.size(); ++k) {
    EXPECT_GE(r.trajectory[k].x_norm1, r.trajectory[k - 1].x_norm1);
  }
}

// ---------------------------------------------------------------------------
// solve_decision: the verbatim eps-decision contract.
// ---------------------------------------------------------------------------

TEST(SolveDecision, DualMeetsContract) {
  const PackingInstance instance = identity_instance(4, 3, 0.1);
  const Real eps = 0.5;
  const DecisionResult r = solve_decision(instance, eps);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  const DualCheck check = check_dual(instance, r.dual_x, 1e-10);
  EXPECT_TRUE(check.feasible);
  EXPECT_GE(check.value, 1 - eps);  // the full 1 - eps, not 1 - 10 eps
}

TEST(SolveDecision, RejectsBadEps) {
  const PackingInstance instance = identity_instance(2, 2, 1.0);
  EXPECT_THROW(solve_decision(instance, 0.0), InvalidArgument);
  EXPECT_THROW(solve_decision(instance, 1.5), InvalidArgument);
}

// Degenerate and adversarial inputs.

TEST(DecisionDense, MaxIterationOverrideIsHonored) {
  const PackingInstance instance = identity_instance(4, 3, 1.0);
  DecisionOptions options;
  options.eps = 0.1;
  options.max_iterations_override = 3;
  const DecisionResult r = decision_dense(instance, options);
  EXPECT_LE(r.iterations, 3);
}

TEST(DecisionDense, NearCriticalScaleStillCertifies) {
  // OPT exactly 1: either certificate is acceptable, but it must verify.
  const PackingInstance instance = identity_instance(4, 3, 1.0);
  DecisionOptions options;
  options.eps = 0.2;
  const DecisionResult r = decision_dense(instance, options);
  if (r.outcome == DecisionOutcome::kDual) {
    EXPECT_TRUE(check_dual(instance, r.dual_x, 1e-9).feasible);
  } else {
    EXPECT_GE(r.primal_dots[0], 1 - 1e-6);
  }
}

TEST(DecisionDense, RankDeficientConstraints) {
  // Rank-one constraints on orthogonal axes: OPT = sum_i 1/d_i.
  std::vector<Matrix> constraints;
  for (Index i = 0; i < 3; ++i) {
    Matrix a(3, 3);
    a(i, i) = 0.2;  // OPT = 15 >> 1
    constraints.push_back(std::move(a));
  }
  const PackingInstance instance((std::vector<Matrix>(constraints)));
  DecisionOptions options;
  options.eps = 0.25;
  const DecisionResult r = decision_dense(instance, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  EXPECT_TRUE(check_dual(instance, r.dual_x, 1e-9).feasible);
}

}  // namespace
}  // namespace psdp::core

namespace psdp::core {
namespace {

TEST(DecisionDense, TightDualIsExactlyFeasibleAndStronger) {
  const PackingInstance instance = identity_instance(6, 3, 0.05);
  DecisionOptions options;
  options.eps = 0.25;
  const DecisionResult r = decision_dense(instance, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  const DualCheck paper = check_dual(instance, r.dual_x, 1e-10);
  const DualCheck tight = check_dual(instance, r.dual_x_tight, 1e-10);
  EXPECT_TRUE(paper.feasible);
  EXPECT_TRUE(tight.feasible);
  EXPECT_GE(tight.value, paper.value);
  // For the identity instance the tight rescaling is exact: lambda_max = 1.
  EXPECT_NEAR(tight.lambda_max, 1.0, 1e-9);
}

TEST(DecisionFactorized, TightDualFeasibleWithinInflation) {
  apps::FactorizedOptions gen;
  gen.n = 10;
  gen.m = 8;
  gen.nnz_per_column = 4;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  const FactorizedPackingInstance scaled = fact.scaled(0.02);
  DecisionOptions options;
  options.eps = 0.3;
  const DecisionResult r = decision_factorized(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  // Power-iteration estimate is inflated by 1%: feasibility must hold
  // against the instance the solver actually ran on.
  const DualCheck tight = check_dual(scaled, r.dual_x_tight, 1e-6);
  EXPECT_TRUE(tight.feasible) << "lambda_max=" << tight.lambda_max;
}

class ExpStrideTest : public ::testing::TestWithParam<Index> {};

TEST_P(ExpStrideTest, CertificatesRemainValidAtEveryStride) {
  const Index stride = GetParam();
  apps::EllipseOptions gen;
  gen.n = 16;
  gen.m = 5;
  const PackingInstance instance = apps::random_ellipses(gen).scaled(0.1);
  DecisionOptions options;
  options.eps = 0.25;
  options.exp_stride = stride;
  const DecisionResult r = decision_dense(instance, options);
  if (r.outcome == DecisionOutcome::kDual) {
    EXPECT_TRUE(check_dual(instance, r.dual_x_tight, 1e-9).feasible);
  } else {
    EXPECT_GE(r.primal_dots[0], 0);
    EXPECT_TRUE(check_primal(instance, r.primal_y, 1e-5).feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, ExpStrideTest,
                         ::testing::Values(1, 2, 4, 16));

TEST(DecisionDense, RejectsZeroStride) {
  const PackingInstance instance = identity_instance(2, 2, 1.0);
  DecisionOptions options;
  options.exp_stride = 0;
  EXPECT_THROW(decision_dense(instance, options), InvalidArgument);
}

TEST(DecisionDense, DiagonalLpTightDualNeverExceedsOptimum) {
  // The positive-LP special case (axis-aligned, block-disjoint): scaling
  // the instance by s = opt/4 puts the scaled optimum at exactly 4. A
  // single decision call's tight dual is feasible, hence never above it.
  const apps::DiagonalLpInstance lp = apps::diagonal_lp({});
  const PackingInstance scaled = lp.instance.scaled(lp.opt / 4);
  DecisionOptions options;
  options.eps = 0.1;
  const DecisionResult r = decision_dense(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  const DualCheck tight = check_dual(scaled, r.dual_x_tight, 1e-9);
  EXPECT_TRUE(tight.feasible);
  EXPECT_LE(tight.value, 4.0 + 1e-9);
  EXPECT_GE(tight.value, 1.0);  // a nontrivial fraction of the optimum
}

}  // namespace
}  // namespace psdp::core

namespace psdp::core {
namespace {

TEST(DecisionDense, RejectsZeroConstraintWithClearMessage) {
  std::vector<Matrix> constraints;
  constraints.push_back(Matrix::identity(2));
  constraints.push_back(Matrix(2, 2));  // all-zero
  const PackingInstance instance{std::move(constraints)};
  DecisionOptions options;
  options.eps = 0.2;
  try {
    decision_dense(instance, options);
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("trace"), std::string::npos);
  }
}

TEST(DecisionDense, RejectsNonFiniteConstraint) {
  Matrix bad = Matrix::identity(2);
  bad(0, 0) = std::numeric_limits<Real>::quiet_NaN();
  const PackingInstance instance{{bad}};
  DecisionOptions options;
  options.eps = 0.2;
  EXPECT_THROW(decision_dense(instance, options), Error);
}

TEST(DecisionDense, SingleConstraintInstance) {
  // n = 1 exercises the ln(max(n,2)) floor end to end.
  const PackingInstance instance{{Matrix::identity(3).scale(0.2),
                                  }};
  DecisionOptions options;
  options.eps = 0.3;
  const DecisionResult r = decision_dense(instance, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  EXPECT_TRUE(check_dual(instance, r.dual_x_tight, 1e-9).feasible);
}

}  // namespace
}  // namespace psdp::core
