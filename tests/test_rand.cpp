#include <gtest/gtest.h>

#include <cmath>

#include "rand/jl.hpp"
#include "rand/rng.hpp"

namespace psdp::rand {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const Real u = rng.uniform(-2, 3);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_EQ(rng.uniform(1, 1), 1);  // degenerate interval is deterministic
  EXPECT_THROW(rng.uniform(2, 1), InvalidArgument);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[static_cast<std::size_t>(rng.uniform_index(10))]++;
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalMomentsMatchStandardGaussian) {
  Rng rng(10);
  const int n = 200000;
  Real sum = 0, sum2 = 0, sum4 = 0;
  for (int i = 0; i < n; ++i) {
    const Real x = rng.normal();
    sum += x;
    sum2 += x * x;
    sum4 += x * x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
  EXPECT_NEAR(sum4 / n, 3.0, 0.15);  // Gaussian kurtosis
}

TEST(Rng, NormalWithParameters) {
  Rng rng(11);
  Real sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.split();
  // Child and parent must diverge.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamSeedsDistinct) {
  const std::uint64_t a = stream_seed(42, 0);
  const std::uint64_t b = stream_seed(42, 1);
  const std::uint64_t c = stream_seed(43, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, stream_seed(42, 0));  // deterministic
}

TEST(JlRows, FormulaAndValidation) {
  const Index r = jl_rows(1000, 0.5);
  EXPECT_GT(r, 0);
  EXPECT_LT(jl_rows(1000, 0.5), jl_rows(1000, 0.1));  // tighter eps needs more
  EXPECT_LT(jl_rows(10, 0.3), jl_rows(100000, 0.3));  // more vectors need more
  EXPECT_THROW(jl_rows(0, 0.5), InvalidArgument);
  EXPECT_THROW(jl_rows(10, 0.0), InvalidArgument);
  EXPECT_THROW(jl_rows(10, 0.5, 2.0), InvalidArgument);
}

TEST(GaussianSketch, DeterministicForSeed) {
  const GaussianSketch a(8, 32, 5);
  const GaussianSketch b(8, 32, 5);
  for (Index j = 0; j < 8; ++j) {
    const auto ra = a.row(j);
    const auto rb = b.row(j);
    for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
  }
}

TEST(GaussianSketch, ApplyMatchesManualDotProducts) {
  const GaussianSketch pi(4, 16, 77);
  std::vector<Real> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = std::cos(static_cast<Real>(i));
  std::vector<Real> y(4);
  pi.apply(x, y);
  for (Index j = 0; j < 4; ++j) {
    const auto row = pi.row(j);
    Real expect = 0;
    for (std::size_t i = 0; i < 16; ++i) expect += row[i] * x[i];
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], expect, 1e-12);
  }
}

TEST(GaussianSketch, NormPreservationOnAverage) {
  // E ||Pi x||^2 = ||x||^2; with r rows the relative error concentrates at
  // ~sqrt(2/r). Use a generous 5-sigma band.
  const Index r = 512;
  const Index m = 64;
  std::vector<Real> x(static_cast<std::size_t>(m));
  for (Index i = 0; i < m; ++i) x[static_cast<std::size_t>(i)] = 1.0;
  const Real true_norm2 = static_cast<Real>(m);
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const GaussianSketch pi(r, m, seed);
    const Real est = pi.sketch_norm2(x);
    if (std::abs(est - true_norm2) > 5 * std::sqrt(2.0 / r) * true_norm2) {
      ++failures;
    }
  }
  EXPECT_LE(failures, 1);
}

TEST(GaussianSketch, RejectsBadShapes) {
  EXPECT_THROW(GaussianSketch(0, 4, 1), InvalidArgument);
  const GaussianSketch pi(2, 4, 1);
  std::vector<Real> wrong(3), y(2);
  EXPECT_THROW(pi.apply(wrong, y), InvalidArgument);
}

TEST(GaussianSketch, RowVarianceIsOneOverRows) {
  const Index r = 16;
  const Index m = 20000;
  const GaussianSketch pi(r, m, 3);
  Real sum2 = 0;
  for (Index j = 0; j < r; ++j) {
    for (Real v : pi.row(j)) sum2 += v * v;
  }
  // Each entry has variance 1/r: total expected sum of squares = m.
  EXPECT_NEAR(sum2 / static_cast<Real>(m), 1.0, 0.05);
}

}  // namespace
}  // namespace psdp::rand
