#include <gtest/gtest.h>

#include <cmath>

#include "apps/generators.hpp"
#include "core/poslp.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

/// P x <= 1 + tol, elementwise.
void expect_lp_feasible(const PackingLp& lp, const Vector& x, Real tol) {
  const Vector px = linalg::matvec(lp.matrix(), x);
  for (Index j = 0; j < px.size(); ++j) {
    EXPECT_LE(px[j], 1 + tol) << "row " << j;
  }
}

TEST(PackingLp, ValidatesInput) {
  Matrix neg(2, 2);
  neg(0, 0) = 1;
  neg(1, 1) = -0.5;
  EXPECT_THROW(PackingLp{neg}, InvalidArgument);

  Matrix zero_col(2, 2);
  zero_col(0, 0) = 1;  // column 1 all zero
  EXPECT_THROW(PackingLp{zero_col}, InvalidArgument);

  Matrix nan(1, 1);
  nan(0, 0) = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_THROW(PackingLp{nan}, InvalidArgument);
}

TEST(PackingLp, ColumnSumsAndScaling) {
  Matrix p(2, 2);
  p(0, 0) = 1; p(0, 1) = 2;
  p(1, 0) = 3; p(1, 1) = 0;
  const PackingLp lp(p);
  EXPECT_NEAR(lp.column_sum(0), 4, 1e-15);
  EXPECT_NEAR(lp.column_sum(1), 2, 1e-15);
  const PackingLp half = lp.scaled(0.5);
  EXPECT_NEAR(half.column_sum(0), 2, 1e-15);
}

TEST(PackingLp, DiagonalSdpEmbeddingMatches) {
  const PackingLp lp = apps::random_packing_lp({.rows = 5, .cols = 7, .seed = 3});
  const PackingInstance sdp = lp.to_diagonal_sdp();
  ASSERT_EQ(sdp.size(), lp.size());
  ASSERT_EQ(sdp.dim(), lp.rows());
  for (Index i = 0; i < sdp.size(); ++i) {
    EXPECT_NEAR(sdp.constraint_trace(i), lp.column_sum(i), 1e-12);
    for (Index j = 0; j < lp.rows(); ++j) {
      EXPECT_NEAR(sdp[i](j, j), lp.matrix()(j, i), 0);
    }
  }
}

TEST(LpDecision, DualCertificateIsFeasible) {
  const PackingLp lp =
      apps::random_packing_lp({.rows = 8, .cols = 24, .seed = 11});
  DecisionOptions options;
  options.eps = 0.1;
  const LpDecisionResult r = lp_decision(lp, options);
  // Whatever the outcome, both dual scalings must be feasible.
  expect_lp_feasible(lp, r.dual_x, 1e-9);
  expect_lp_feasible(lp, r.dual_x_tight, 1e-9);
  // The tight dual saturates: max_j (P x)_j = 1 exactly by construction.
  const Vector px = linalg::matvec(lp.matrix(), r.dual_x_tight);
  EXPECT_NEAR(linalg::max_entry(px), 1, 1e-9);
}

TEST(LpDecision, DualValueMeetsTheorem) {
  // Scale the LP down so the optimum is large: the dual exit must trigger
  // with ||x_hat||_1 >= 1 - 10 eps (Theorem 3.1 via (3.4)).
  const apps::MatchingLpInstance matching = apps::complete_graph_matching_lp(8);
  const PackingLp scaled = matching.lp.scaled(1 / (4 * matching.opt));
  DecisionOptions options;
  options.eps = 0.1;
  const LpDecisionResult r = lp_decision(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  EXPECT_GE(linalg::norm1(r.dual_x), 1 - 10 * options.eps);
}

TEST(LpDecision, PrimalCertificateWhenInfeasible) {
  // Scale up so no dual of value ~1 exists: primal outcome, with the
  // certificate y a probability vector and every variable's penalty >= 1.
  const apps::MatchingLpInstance matching = apps::complete_graph_matching_lp(6);
  // Scaling P by s divides the optimum by s; s = 4 opt pushes it to 1/4.
  const PackingLp scaled = matching.lp.scaled(4 * matching.opt);
  DecisionOptions options;
  options.eps = 0.1;
  const LpDecisionResult r = lp_decision(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kPrimal);
  EXPECT_NEAR(linalg::sum(r.primal_y), 1, 1e-9);
  EXPECT_TRUE(linalg::is_nonnegative(r.primal_y));
  for (Index i = 0; i < r.primal_dots.size(); ++i) {
    EXPECT_GE(r.primal_dots[i], 1 - 1e-9) << "variable " << i;
  }
}

TEST(LpDecision, MatchesDenseSolverOnDiagonalEmbedding) {
  // The scalar solver IS Algorithm 3.1 on diagonal matrices: same
  // constants, same selections, same exit -- iterate-for-iterate.
  const PackingLp lp =
      apps::random_packing_lp({.rows = 6, .cols = 12, .seed = 29});
  const PackingInstance sdp = lp.to_diagonal_sdp();
  DecisionOptions options;
  options.eps = 0.15;
  options.track_trajectory = true;
  const LpDecisionResult scalar = lp_decision(lp, options);
  const DecisionResult dense = decision_dense(sdp, options);

  EXPECT_EQ(scalar.outcome, dense.outcome);
  EXPECT_EQ(scalar.iterations, dense.iterations);
  ASSERT_EQ(scalar.dual_x.size(), dense.dual_x.size());
  for (Index i = 0; i < scalar.dual_x.size(); ++i) {
    EXPECT_NEAR(scalar.dual_x[i], dense.dual_x[i],
                1e-8 * std::max<Real>(1, std::abs(dense.dual_x[i])));
  }
  ASSERT_EQ(scalar.trajectory.size(), dense.trajectory.size());
  for (std::size_t t = 0; t < scalar.trajectory.size(); ++t) {
    EXPECT_EQ(scalar.trajectory[t].updated, dense.trajectory[t].updated)
        << "iteration " << t;
  }
  // psi_max equals lambda_max of the diagonal Psi.
  EXPECT_NEAR(scalar.psi_max, dense.psi_lambda_max,
              1e-8 * std::max<Real>(1, dense.psi_lambda_max));
}

TEST(LpDecision, SmallEpsDoesNotOverflow) {
  // eps = 0.02 pushes K to ~150; the shifted exponential must stay finite
  // even though exp(K (1+10 eps)) would overflow a float and stress a
  // double.
  const PackingLp lp =
      apps::random_packing_lp({.rows = 6, .cols = 10, .seed = 31});
  DecisionOptions options;
  options.eps = 0.02;
  options.max_iterations_override = 2000;  // keep the test quick
  const LpDecisionResult r = lp_decision(lp, options);
  EXPECT_TRUE(linalg::all_finite(r.dual_x));
  EXPECT_TRUE(linalg::all_finite(r.primal_y));
  EXPECT_TRUE(std::isfinite(r.psi_max));
}

TEST(LpDecision, RespectsIterationOverride) {
  const PackingLp lp =
      apps::random_packing_lp({.rows = 4, .cols = 6, .seed = 37});
  DecisionOptions options;
  options.eps = 0.1;
  options.max_iterations_override = 3;
  options.early_primal_exit = false;
  const LpDecisionResult r = lp_decision(lp, options);
  EXPECT_LE(r.iterations, 3);
}

TEST(ApproxPackingLp, CompleteGraphMatchingHitsAnalyticOptimum) {
  for (Index k : {4, 6, 9}) {
    const apps::MatchingLpInstance matching = apps::complete_graph_matching_lp(k);
    OptimizeOptions options;
    options.eps = 0.1;
    const LpOptimum opt = approx_packing_lp(matching.lp, options);
    EXPECT_LE(opt.lower, matching.opt * (1 + 1e-9)) << "k=" << k;
    EXPECT_GE(opt.upper, matching.opt * (1 - 1e-9)) << "k=" << k;
    EXPECT_LE(opt.upper, opt.lower * (1 + options.eps) + 1e-9) << "k=" << k;
    expect_lp_feasible(matching.lp, opt.best_x, 1e-9);
    EXPECT_NEAR(linalg::sum(opt.best_x), opt.lower, 1e-9);
  }
}

TEST(ApproxPackingLp, RandomInstanceBracketAndFeasibility) {
  const PackingLp lp =
      apps::random_packing_lp({.rows = 10, .cols = 30, .seed = 41});
  OptimizeOptions options;
  options.eps = 0.15;
  const LpOptimum opt = approx_packing_lp(lp, options);
  EXPECT_GT(opt.lower, 0);
  EXPECT_LE(opt.lower, opt.upper * (1 + 1e-12));
  EXPECT_LE(opt.upper, opt.lower * (1 + options.eps) + 1e-9);
  expect_lp_feasible(lp, opt.best_x, 1e-9);
}

TEST(ApproxCoveringLp, VertexCoverOnCompleteGraphHitsAnalyticOptimum) {
  // min sum_v y_v s.t. y_u + y_v >= 1 per edge: the fractional vertex cover
  // LP. On K_k the optimum is k/2 (all y_v = 1/2), equal to the fractional
  // matching number by LP duality -- the same P matrix serves both sides.
  for (Index k : {4, 7}) {
    const apps::MatchingLpInstance matching =
        apps::complete_graph_matching_lp(k);
    OptimizeOptions options;
    options.eps = 0.1;
    const LpCoveringOptimum cover = approx_covering_lp(matching.lp, options);
    // Feasible: every edge covered.
    const Vector coverage =
        linalg::matvec_transpose(matching.lp.matrix(), cover.y);
    for (Index e = 0; e < coverage.size(); ++e) {
      EXPECT_GE(coverage[e], 1 - 1e-9) << "edge " << e;
    }
    // Value within (1+eps) of k/2, bracketed by the dual bound.
    EXPECT_GE(cover.objective, matching.opt * (1 - 1e-9)) << "k=" << k;
    EXPECT_LE(cover.objective,
              matching.opt * (1 + options.eps) + 1e-9) << "k=" << k;
    EXPECT_LE(cover.lower_bound, cover.objective * (1 + 1e-9));
  }
}

TEST(ApproxCoveringLp, RandomInstanceDualityGap) {
  const PackingLp lp =
      apps::random_packing_lp({.rows = 8, .cols = 20, .seed = 51});
  OptimizeOptions options;
  options.eps = 0.15;
  const LpCoveringOptimum cover = approx_covering_lp(lp, options);
  // Weak duality sandwich: lower_bound <= OPT <= objective.
  EXPECT_GT(cover.lower_bound, 0);
  EXPECT_LE(cover.lower_bound, cover.objective * (1 + 1e-9));
  // The gap closes to (1 + eps) once the packing bracket converged.
  EXPECT_LE(cover.objective, cover.lower_bound * (1 + options.eps) + 1e-9);
  EXPECT_TRUE(linalg::is_nonnegative(cover.y));
}

// Sweep eps x graph size: the bracket must always contain k/2 and close to
// within 1 + eps.
class MatchingSweep
    : public ::testing::TestWithParam<std::tuple<Real, Index>> {};

TEST_P(MatchingSweep, BracketContainsOptimum) {
  const auto [eps, k] = GetParam();
  const apps::MatchingLpInstance matching = apps::complete_graph_matching_lp(k);
  OptimizeOptions options;
  options.eps = eps;
  const LpOptimum opt = approx_packing_lp(matching.lp, options);
  EXPECT_LE(opt.lower, matching.opt * (1 + 1e-9));
  EXPECT_GE(opt.upper, matching.opt * (1 - 1e-9));
  EXPECT_LE(opt.upper, opt.lower * (1 + eps) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(EpsAndSize, MatchingSweep,
                         ::testing::Combine(::testing::Values(0.3, 0.15, 0.08),
                                            ::testing::Values<Index>(4, 7,
                                                                     10)));

// Analytic families beyond the complete graph: stars (OPT = 1 regardless
// of size) and paths (integral bipartite polytope, OPT = floor(k/2)).
class GraphFamilySweep : public ::testing::TestWithParam<Index> {};

TEST_P(GraphFamilySweep, StarOptimumIsOne) {
  const Index k = GetParam();
  const apps::MatchingLpInstance star = apps::star_graph_matching_lp(k);
  ASSERT_EQ(star.lp.size(), k);
  OptimizeOptions options;
  options.eps = 0.1;
  const LpOptimum opt = approx_packing_lp(star.lp, options);
  EXPECT_LE(opt.lower, 1 + 1e-9);
  EXPECT_GE(opt.upper, 1 - 1e-9);
  EXPECT_LE(opt.upper, opt.lower * 1.1 + 1e-9);
  expect_lp_feasible(star.lp, opt.best_x, 1e-9);
}

TEST_P(GraphFamilySweep, PathOptimumIsFloorHalf) {
  const Index k = GetParam();
  const apps::MatchingLpInstance path = apps::path_graph_matching_lp(k);
  ASSERT_EQ(path.lp.size(), k - 1);
  OptimizeOptions options;
  options.eps = 0.1;
  const LpOptimum opt = approx_packing_lp(path.lp, options);
  EXPECT_LE(opt.lower, path.opt * (1 + 1e-9)) << "k=" << k;
  EXPECT_GE(opt.upper, path.opt * (1 - 1e-9)) << "k=" << k;
  expect_lp_feasible(path.lp, opt.best_x, 1e-9);
}

TEST_P(GraphFamilySweep, CycleOptimumIsHalfK) {
  // Odd cycles witness the LP/IP integrality gap: the fractional optimum
  // k/2 strictly exceeds the integral matching floor(k/2).
  const Index k = GetParam();
  const apps::MatchingLpInstance cycle = apps::cycle_graph_matching_lp(k);
  ASSERT_EQ(cycle.lp.size(), k);
  OptimizeOptions options;
  options.eps = 0.1;
  const LpOptimum opt = approx_packing_lp(cycle.lp, options);
  EXPECT_LE(opt.lower, cycle.opt * (1 + 1e-9)) << "k=" << k;
  EXPECT_GE(opt.upper, cycle.opt * (1 - 1e-9)) << "k=" << k;
  expect_lp_feasible(cycle.lp, opt.best_x, 1e-9);
  // The solver must beat the integral optimum on small odd cycles (for
  // large k the (1+eps) bracket slack can exceed the gap of 1/2).
  if (k % 2 == 1 && static_cast<Real>(k / 2) <
                        (static_cast<Real>(k) / 2) / (1 + options.eps)) {
    EXPECT_GT(opt.lower, static_cast<Real>(k / 2) * (1 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GraphFamilySweep,
                         ::testing::Values<Index>(3, 5, 8, 13));

}  // namespace
}  // namespace psdp::core
