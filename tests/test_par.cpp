#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "par/thread_pool.hpp"

namespace psdp::par {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run_batch(100, [&](Index k) { hits[static_cast<std::size_t>(k)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  Index sum = 0;  // no synchronization needed: everything is inline
  pool.run_batch(10, [&](Index k) { sum += k; });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_batch(0, [&](Index) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run_batch(8,
                     [&](Index k) {
                       if (k == 5) throw std::runtime_error("task failed");
                     }),
      std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> count{0};
  pool.run_batch(4, [&](Index) { count++; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, SequentialBatchesReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<Index> sum{0};
    pool.run_batch(16, [&](Index k) { sum += k; });
    ASSERT_EQ(sum.load(), 120) << "round " << round;
  }
}

TEST(ThreadPool, RejectsNegativeWorkerCount) {
  EXPECT_THROW(ThreadPool(-1), InvalidArgument);
}

TEST(ParallelFor, CoversRangeOnce) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(0, 5000, [&](Index i) { hits[static_cast<std::size_t>(i)]++; },
               /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndReversedRanges) {
  bool ran = false;
  parallel_for(3, 3, [&](Index) { ran = true; });
  parallel_for(5, 2, [&](Index) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForChunked, ChunksPartitionTheRange) {
  std::mutex mu;
  std::vector<std::pair<Index, Index>> chunks;
  parallel_for_chunked(0, 10000, [&](Index b, Index e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back({b, e});
  }, /*grain=*/64);
  std::sort(chunks.begin(), chunks.end());
  Index expected_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_LT(b, e);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 10000);
}

TEST(ParallelReduce, MatchesSerialSum) {
  const Index n = 100000;
  const Real got = parallel_sum(0, n, [](Index i) {
    return static_cast<Real>(i);
  }, /*grain=*/128);
  EXPECT_NEAR(got, static_cast<Real>(n) * (n - 1) / 2, 1e-3);
}

TEST(ParallelReduce, DeterministicAcrossRuns) {
  auto run = [] {
    return parallel_sum(0, 50000,
                        [](Index i) { return 1.0 / (static_cast<Real>(i) + 1); },
                        /*grain=*/64);
  };
  const Real a = run();
  const Real b = run();
  EXPECT_EQ(a, b);  // bitwise: chunk partials combined in fixed order
}

TEST(ParallelReduce, CustomCombine) {
  const Real max = parallel_reduce(
      0, 10000, -1e300,
      [](Index i) { return static_cast<Real>((i * 37) % 1001); },
      [](Real a, Real b) { return a > b ? a : b; }, /*grain=*/32);
  EXPECT_EQ(max, 1000);
}

TEST(ParallelMax, FindsMaximum) {
  EXPECT_EQ(parallel_max(0, 1000,
                         [](Index i) { return static_cast<Real>(i % 100); }),
            99);
  EXPECT_THROW(parallel_max(0, 0, [](Index) { return 0.0; }), InvalidArgument);
}

TEST(ParallelFor, NestedParallelismRunsInline) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](Index) {
    parallel_for(0, 8, [&](Index) { total++; }, /*grain=*/1);
  }, /*grain=*/1);
  EXPECT_EQ(total.load(), 64);
}

TEST(NumThreads, SetAndRestore) {
  const int before = num_threads();
  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2);
  std::atomic<int> count{0};
  parallel_for(0, 100, [&](Index) { count++; }, /*grain=*/1);
  EXPECT_EQ(count.load(), 100);
  set_num_threads(before);
  EXPECT_THROW(set_num_threads(0), InvalidArgument);
}

TEST(CostMeter, AccumulatesAndResets) {
  CostMeter::reset();
  CostMeter::add_work(100);
  CostMeter::add_work(50);
  CostMeter::add_depth(7);
  const auto cost = CostMeter::snapshot();
  EXPECT_GE(cost.work, 150u);  // other tests' kernels may add more
  EXPECT_GE(cost.depth, 7u);
  CostMeter::reset();
  const auto zero = CostMeter::snapshot();
  EXPECT_EQ(zero.work, 0u);
  EXPECT_EQ(zero.depth, 0u);
}

TEST(CostMeter, ReductionDepthFormula) {
  EXPECT_EQ(reduction_depth(1), 1u);
  EXPECT_EQ(reduction_depth(2), 2u);
  EXPECT_EQ(reduction_depth(1024), 11u);
}

TEST(CostMeter, ThreadSafeAccumulation) {
  CostMeter::reset();
  parallel_for(0, 10000, [](Index) { CostMeter::add_work(1); }, /*grain=*/8);
  EXPECT_EQ(CostMeter::snapshot().work, 10000u);
}

}  // namespace
}  // namespace psdp::par
