// Tests for the width-dependent MMW baseline (the comparator of the
// paper's headline width-independence claim).
#include <gtest/gtest.h>

#include "apps/generators.hpp"
#include "core/baseline.hpp"
#include "core/certificates.hpp"

namespace psdp::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

PackingInstance identity_instance(Index n, Index m, Real scale) {
  std::vector<Matrix> constraints;
  for (Index i = 0; i < n; ++i) {
    Matrix a = Matrix::identity(m);
    a.scale(scale);
    constraints.push_back(std::move(a));
  }
  return PackingInstance(std::move(constraints));
}

TEST(InstanceWidth, MatchesMaxLambdaMax) {
  std::vector<Matrix> constraints;
  constraints.push_back(Matrix::diagonal(Vector{1, 2}));
  constraints.push_back(Matrix::diagonal(Vector{5, 0.5}));
  const PackingInstance inst{std::move(constraints)};
  EXPECT_NEAR(instance_width(inst), 5.0, 1e-12);
}

TEST(WidthDependentIterations, ScalesLinearlyInWidth) {
  const Index t1 = width_dependent_iterations(1.0, 16, 0.2);
  const Index t8 = width_dependent_iterations(8.0, 16, 0.2);
  EXPECT_GE(t8, 7 * t1);
  EXPECT_LE(t8, 9 * t1);
  EXPECT_THROW(width_dependent_iterations(0, 16, 0.2), InvalidArgument);
  EXPECT_THROW(width_dependent_iterations(1, 16, 0.0), InvalidArgument);
}

TEST(Baseline, SmallScaleYieldsFeasibleDual) {
  const PackingInstance inst = identity_instance(4, 3, 0.05);
  BaselineOptions options;
  options.eps = 0.2;
  const BaselineResult r = decision_width_dependent(inst, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  const DualCheck check = check_dual(inst, r.dual_x, 1e-9);
  EXPECT_TRUE(check.feasible) << "lambda_max=" << check.lambda_max;
  EXPECT_GT(check.value, 0);
}

TEST(Baseline, LargeScaleYieldsPrimalCertificate) {
  const PackingInstance inst = identity_instance(4, 3, 20.0);
  BaselineOptions options;
  options.eps = 0.2;
  const BaselineResult r = decision_width_dependent(inst, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kPrimal);
  // The certificate: trace-1 PSD with every dot above 1.
  EXPECT_NEAR(linalg::trace(r.primal_y), 1.0, 1e-9);
  for (Index i = 0; i < inst.size(); ++i) {
    EXPECT_GE(linalg::frobenius_dot(inst[i], r.primal_y), 1.0);
  }
}

TEST(Baseline, PlannedIterationsGrowWithNeedleWidth) {
  apps::NeedleOptions narrow;
  narrow.width = 2;
  apps::NeedleOptions wide = narrow;
  wide.width = 64;
  BaselineOptions options;
  options.eps = 0.3;
  options.max_iterations_override = 5;  // only compare plans, not full runs
  const BaselineResult r1 =
      decision_width_dependent(apps::needle_width_family(narrow), options);
  const BaselineResult r2 =
      decision_width_dependent(apps::needle_width_family(wide), options);
  EXPECT_GT(r2.planned_iterations, 10 * r1.planned_iterations);
  EXPECT_NEAR(r2.width, 64.0, 1e-6);
}

TEST(Baseline, WidthOverrideSkipsEigComputation) {
  const PackingInstance inst = identity_instance(3, 2, 1.0);
  BaselineOptions options;
  options.eps = 0.25;
  options.width_override = 7.5;
  options.max_iterations_override = 3;
  const BaselineResult r = decision_width_dependent(inst, options);
  EXPECT_EQ(r.width, 7.5);
}

TEST(Baseline, RejectsBadEps) {
  const PackingInstance inst = identity_instance(2, 2, 1.0);
  BaselineOptions options;
  options.eps = 0;
  EXPECT_THROW(decision_width_dependent(inst, options), InvalidArgument);
}

TEST(Baseline, DualValueApproachesOptimum) {
  // OPT = 1/0.5 = 2 for A_i = 0.5 I; the baseline's scaled average should
  // land within the eps guarantee band.
  const PackingInstance inst = identity_instance(3, 2, 0.5);
  BaselineOptions options;
  options.eps = 0.2;
  const BaselineResult r = decision_width_dependent(inst, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  const DualCheck check = check_dual(inst, r.dual_x, 1e-9);
  EXPECT_TRUE(check.feasible);
  // Decision threshold semantics: value >= 1 - O(eps).
  EXPECT_GE(check.value, 1 - 4 * options.eps - 0.05);
}

}  // namespace
}  // namespace psdp::core
