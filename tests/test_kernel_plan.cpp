// The KernelPlan layer: serialization round trips, the bucket walk of
// choose(), the autotuner's determinism contract (it may only pick between
// the two bit-identical gathers unless scatter choice is explicitly
// allowed), the shape-bucket memo, and -- the acceptance property of the
// PR -- that the plan threaded through BigDotExpOptions / SolverWorkspace
// into the sketched oracle cannot change a single bit of the penalties,
// whatever kernel it forces among the deterministic pair and whatever the
// thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "apps/generators.hpp"
#include "core/penalty_oracle.hpp"
#include "par/parallel.hpp"
#include "rand/rng.hpp"
#include "simd/simd.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernel_plan.hpp"
#include "test_helpers.hpp"

namespace psdp::sparse {
namespace {

using linalg::Vector;

/// RAII guard: restore the global thread count on scope exit.
struct ThreadGuard {
  int before = par::num_threads();
  ~ThreadGuard() { par::set_num_threads(before); }
};

Csr tall_random(Index rows, Index cols, std::uint64_t seed) {
  rand::Rng rng(seed);
  std::vector<Triplet> triplets;
  for (Index i = 0; i < rows; ++i) {
    triplets.push_back({i, static_cast<Index>(rng.uniform_index(cols)),
                        rng.normal()});
    if (i % 2 == 0) {
      triplets.push_back({i, static_cast<Index>(rng.uniform_index(cols)),
                          rng.normal()});
    }
  }
  return Csr::from_triplets(rows, cols, std::move(triplets));
}

TEST(KernelPlan, ChooseWalksBucketsAndFallsBack) {
  KernelPlan plan;
  EXPECT_EQ(plan.choose(1), TransposeKernel::kGather);  // empty plan
  plan.set_entry({4, TransposeKernel::kGather, 0, 0, 0});
  plan.set_entry({16, TransposeKernel::kSegmented, 0, 0, 0});
  EXPECT_EQ(plan.choose(1), TransposeKernel::kGather);
  EXPECT_EQ(plan.choose(4), TransposeKernel::kGather);
  EXPECT_EQ(plan.choose(5), TransposeKernel::kSegmented);
  EXPECT_EQ(plan.choose(16), TransposeKernel::kSegmented);
  // Wider than every bucket: the last entry covers the tail.
  EXPECT_EQ(plan.choose(512), TransposeKernel::kSegmented);
  // Replacing a bucket keeps the table sorted and deduplicated.
  plan.set_entry({4, TransposeKernel::kScatter, 0, 0, 0});
  EXPECT_EQ(plan.entries().size(), 2u);
  EXPECT_EQ(plan.choose(3), TransposeKernel::kScatter);
}

TEST(KernelPlan, HeuristicMatchesRetiredCrossover) {
  const KernelPlan with_grid = KernelPlan::heuristic(true);
  EXPECT_EQ(with_grid.choose(1), TransposeKernel::kGather);
  EXPECT_EQ(with_grid.choose(8), TransposeKernel::kGather);
  EXPECT_EQ(with_grid.choose(9), TransposeKernel::kSegmented);
  EXPECT_EQ(with_grid.choose(32), TransposeKernel::kSegmented);
  EXPECT_FALSE(with_grid.measured());
  const KernelPlan no_grid = KernelPlan::heuristic(false);
  EXPECT_EQ(no_grid.choose(32), TransposeKernel::kGather);
}

TEST(KernelPlan, JsonRoundTripIsExact) {
  KernelPlan plan;
  plan.set_entry({1, TransposeKernel::kGather, 1.25e-6, 0, 3.5e-6});
  plan.set_entry(
      {8, TransposeKernel::kSegmented, 2.0e-6, 1.0000000000000002e-6, 0});
  plan.set_entry({32, TransposeKernel::kScatter, 0.125, 0.25, 0.0625});
  const KernelPlan reloaded = KernelPlan::from_json(plan.to_json());
  EXPECT_EQ(reloaded, plan);  // widths, choices and timings, bit for bit
}

TEST(KernelPlan, FromJsonToleratesEmbeddingAndRejectsJunk) {
  KernelPlan plan = KernelPlan::heuristic(true);
  // The plan as bench_kernels embeds it inside BENCH_kernels.json.
  const std::string wrapped =
      str("{\"bench\": \"kernels\", \"smoke\": false, \"kernel_plan\": ",
          plan.to_json(), ", \"other\": 1}");
  EXPECT_EQ(KernelPlan::from_json(wrapped), plan);
  EXPECT_THROW(KernelPlan::from_json("{}"), InvalidArgument);
  EXPECT_THROW(KernelPlan::from_json("{\"entries\": []}"), InvalidArgument);
  EXPECT_THROW(
      KernelPlan::from_json(
          "{\"entries\": [{\"width\": 4, \"kernel\": \"warp\"}]}"),
      InvalidArgument);
}

TEST(KernelPlan, AutotunePicksOnlyDeterministicKernels) {
  Csr tall = tall_random(1 << 14, 16, 77);
  TransposePlanOptions build;
  build.autotune.enable = false;  // tune explicitly below
  tall.build_transpose_index(build);
  ASSERT_TRUE(tall.has_segment_index());

  AutotuneOptions tune;
  tune.widths = {1, 8, 32};
  tune.reps = 1;
  const KernelPlan plan = autotune_transpose_plan(tall, tune);
  EXPECT_TRUE(plan.measured());
  ASSERT_EQ(plan.entries().size(), 3u);
  for (const KernelPlanEntry& entry : plan.entries()) {
    EXPECT_GT(entry.gather_seconds, 0.0);
    EXPECT_GT(entry.segmented_seconds, 0.0);
    EXPECT_GT(entry.scatter_seconds, 0.0);
    // Without allow_scatter_choice the tuner must stay inside the
    // bit-identical pair, however the timings came out.
    EXPECT_NE(entry.choice, TransposeKernel::kScatter);
  }
}

TEST(KernelPlan, TinyMatricesSkipMeasurement) {
  Csr small = tall_random(64, 4, 5);
  small.build_transpose_index();  // default: autotune on, under the flop gate
  EXPECT_FALSE(small.kernel_plan().measured());
  EXPECT_EQ(small.kernel_plan().choose(4), TransposeKernel::kGather);
}

TEST(TransposePlanCache, CapsEntriesAndEvictsLru) {
  // Three distinct shape buckets through a two-slot cache: the LRU entry
  // is displaced, a later lookup for it re-measures (a miss), and the
  // counters record every step.
  TransposePlanCache cache(2);
  AutotuneOptions tune;
  tune.widths = {1};
  tune.reps = 1;
  tune.min_bench_flops = 1;  // force measurement on tiny matrices
  Csr a = tall_random(1 << 8, 4, 1);
  Csr b = tall_random(1 << 10, 8, 2);
  Csr c = tall_random(1 << 12, 16, 3);
  TransposePlanOptions build;
  build.autotune.enable = false;
  a.build_transpose_index(build);
  b.build_transpose_index(build);
  c.build_transpose_index(build);

  const KernelPlan plan_a = cache.get(a, tune);
  cache.get(b, tune);
  EXPECT_EQ(cache.get(a, tune), plan_a);  // hit, and refreshes a's recency
  cache.get(c, tune);                     // evicts b (LRU)
  EXPECT_EQ(cache.size(), 2u);
  TransposePlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 1u);

  cache.get(b, tune);  // b was evicted: measured again
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TransposePlanCache, ConcurrentBuildersShareOneDecision) {
  // The scheduler's lanes build transpose indexes (and through them the
  // plan memo) from multiple threads at once: same-shaped matrices must
  // land on one shared decision, with every lookup accounted as a hit or
  // a miss and no torn state. Eight OS threads (not pool workers -- the
  // pool serializes external submitters itself) each build their own
  // same-shaped matrix against one owned cache.
  TransposePlanCache cache(8);
  TransposePlanOptions build;
  build.autotune.widths = {1, 8};
  build.autotune.reps = 1;
  build.autotune.min_bench_flops = 1;  // force real measurement
  build.autotune.plan_cache = &cache;

  constexpr int kThreads = 8;
  std::vector<Csr> matrices;
  matrices.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // Same (nnz, rows, cols) shape bucket, different values.
    matrices.push_back(tall_random(1 << 12, 16, 100 + t));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&matrices, &build, t] {
      matrices[static_cast<std::size_t>(t)].build_transpose_index(build);
    });
  }
  for (std::thread& t : threads) t.join();

  // Every matrix carries a measured plan, and all plans agree: any one
  // measurement (racing duplicates are allowed) decided for the bucket,
  // and only deterministic kernels may be chosen.
  const KernelPlan& reference = matrices[0].kernel_plan();
  EXPECT_TRUE(reference.measured());
  for (const Csr& m : matrices) {
    for (const KernelPlanEntry& entry : m.kernel_plan().entries()) {
      EXPECT_NE(entry.choice, TransposeKernel::kScatter);
    }
  }
  const TransposePlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(stats.misses, 1u);
  EXPECT_EQ(cache.size(), 1u) << "one shape bucket, one slot";
  EXPECT_EQ(stats.evictions, 0u);

  // A later same-shaped build is a pure hit with the identical decision.
  Csr again = tall_random(1 << 12, 16, 999);
  again.build_transpose_index(build);
  EXPECT_EQ(again.kernel_plan(), cache.get(again, build.autotune));
  EXPECT_GT(cache.stats().hits, stats.hits);
}

TEST(TransposePlanCache, OwnedCacheIsIndependentOfGlobal) {
  clear_transpose_plan_cache();
  TransposePlanCache owned(4);
  Csr tall = tall_random(1 << 12, 16, 55);
  TransposePlanOptions build;
  build.autotune.enable = false;
  tall.build_transpose_index(build);

  AutotuneOptions tune;
  tune.widths = {1};
  tune.reps = 1;
  tune.min_bench_flops = 1;
  tune.plan_cache = &owned;
  const std::uint64_t global_misses_before =
      global_transpose_plan_cache().stats().misses;
  cached_transpose_plan(tall, tune);  // routed into `owned`
  EXPECT_EQ(owned.size(), 1u);
  EXPECT_EQ(global_transpose_plan_cache().stats().misses,
            global_misses_before)
      << "an owned cache must not spill into the process-wide one";

  tune.plan_cache = nullptr;
  cached_transpose_plan(tall, tune);  // the default: the global cache
  EXPECT_EQ(global_transpose_plan_cache().stats().misses,
            global_misses_before + 1);
  EXPECT_EQ(owned.stats().misses, 1u);
  clear_transpose_plan_cache();
}

TEST(KernelPlan, CachedPlansAgreeAcrossCalls) {
  clear_transpose_plan_cache();
  Csr tall = tall_random(1 << 13, 16, 11);
  TransposePlanOptions build;
  build.autotune.enable = false;
  tall.build_transpose_index(build);
  AutotuneOptions tune;
  tune.widths = {1, 16};
  tune.reps = 1;
  const KernelPlan first = cached_transpose_plan(tall, tune);
  // The second call must hit the (log2 nnz, log2 rows, log2 cols, grid)
  // bucket and return the identical decision -- no re-measurement jitter.
  const KernelPlan second = cached_transpose_plan(tall, tune);
  EXPECT_EQ(first, second);
  clear_transpose_plan_cache();
}

// ---------------------------------------------------------------------------
// Plan threading through the sketched oracle: forcing either deterministic
// kernel, at any thread count, through either injection point
// (BigDotExpOptions::kernel_plan or a workspace-pinned plan) must reproduce
// the default run bit for bit -- the acceptance property that lets the
// autotuner replace the old compile-time dispatch without any numerical
// risk.
// ---------------------------------------------------------------------------

TEST(KernelPlanThreading, OraclePenaltiesInvariantToKernelChoice) {
  // Tall factors (2048 x 2) get the transpose index, a default segment
  // grid (2 segments of 1024 rows) and a heuristic plan at construction.
  const core::FactorizedPackingInstance inst = apps::random_factorized(
      {.n = 6, .m = 2048, .rank = 2, .nnz_per_column = 8, .seed = 3});
  for (Index i = 0; i < inst.size(); ++i) {
    ASSERT_TRUE(inst[i].q().has_transpose_index());
    ASSERT_TRUE(inst[i].q().has_segment_index());
  }
  const Vector x0(inst.size(), 0.5 / static_cast<Real>(inst.size()));

  core::SketchedOracleOptions base;
  base.eps = 0.3;
  base.dot_options.sketch_rows_override = 8;
  base.dot_options.taylor_degree_override = 4;
  base.dot_options.block_size = 4;

  const auto penalties = [&](const core::SketchedOracleOptions& options) {
    core::SketchedTaylorOracle oracle(inst, options);
    core::PenaltyBatch batch;
    oracle.compute(x0, /*round=*/1, batch);
    return std::make_pair(batch.dots, batch.trace);
  };

  ThreadGuard guard;
  par::set_num_threads(1);
  const auto [ref_dots, ref_trace_unused] = penalties(base);
  (void)ref_trace_unused;

  const KernelPlan force_gather = KernelPlan::forced(TransposeKernel::kGather);
  const KernelPlan force_segmented =
      KernelPlan::forced(TransposeKernel::kSegmented);
  for (const int threads : {1, 4}) {
    par::set_num_threads(threads);
    // The trace goes through parallel_sum, whose chunk-order combine is
    // deterministic per thread count (not across counts) -- so the trace
    // reference is re-taken per count, while the dots (serial per-
    // constraint folds over the bit-identical gathers) anchor to the
    // one-thread run globally.
    const auto [count_dots, count_trace] = penalties(base);
    EXPECT_EQ(count_dots, ref_dots)
        << "default-plan penalties changed with thread count " << threads;
    for (const KernelPlan* plan : {&force_gather, &force_segmented}) {
      core::SketchedOracleOptions options = base;
      options.dot_options.kernel_plan = plan;
      const auto [dots, trace] = penalties(options);
      EXPECT_EQ(dots, ref_dots)
          << "penalties changed under forced "
          << kernel_name(plan->choose(4)) << " at " << threads << " threads";
      EXPECT_EQ(trace, count_trace);
    }
    // A workspace-pinned plan takes the same bits too -- and a per-call
    // options override must not stick to the shared workspace afterwards
    // (big_dot_exp restores the pinned pointer on exit).
    core::SolverWorkspace workspace;
    workspace.factor.plan = &force_segmented;
    core::SketchedOracleOptions pinned = base;
    pinned.workspace = &workspace;
    pinned.dot_options.kernel_plan = &force_gather;  // per-call override
    const auto [pinned_dots, pinned_trace] = penalties(pinned);
    EXPECT_EQ(pinned_dots, ref_dots);
    EXPECT_EQ(pinned_trace, count_trace);
    EXPECT_EQ(workspace.factor.plan, &force_segmented)
        << "per-call kernel_plan override leaked into the shared workspace";
  }
}

// ----------------------------------------------------------------------
// Plan provenance (ISA + kernel-set revision): serialization, staleness,
// and how stale plans are treated by the dispatch and the cache.
// ----------------------------------------------------------------------

TEST(KernelPlan, ProvenanceRoundTripsThroughJson) {
  KernelPlan plan = KernelPlan::heuristic(true);
  EXPECT_EQ(plan.isa(), simd::active_isa());
  EXPECT_EQ(plan.kernel_set_version(), KernelPlan::kKernelSetVersion);
  EXPECT_FALSE(plan.stale());
  const KernelPlan reloaded = KernelPlan::from_json(plan.to_json());
  EXPECT_EQ(reloaded, plan);  // includes isa and kernel_set_version
  EXPECT_FALSE(reloaded.stale());
  // The scalar-baseline timing of an entry round-trips too.
  KernelPlan measured;
  measured.set_entry({8, TransposeKernel::kGather, 1e-6, 0, 2e-6, 4e-6});
  measured.set_provenance(simd::active_isa(), KernelPlan::kKernelSetVersion);
  EXPECT_EQ(KernelPlan::from_json(measured.to_json()), measured);
}

TEST(KernelPlan, MissingOrMismatchedProvenanceReadsAsStale) {
  // Manually assembled plans carry no provenance: stale by construction.
  KernelPlan manual;
  manual.set_entry({4, TransposeKernel::kGather, 0, 0, 0});
  EXPECT_TRUE(manual.stale());
  // Pre-provenance serializations (no isa / kernel_set_version keys) read
  // back as kernel set 0 -- stale, so reloading an old BENCH artifact
  // re-tunes instead of dispatching through retired measurements.
  const KernelPlan reloaded = KernelPlan::from_json(
      "{\"entries\": [{\"width\": 4, \"kernel\": \"gather\"}]}");
  EXPECT_EQ(reloaded.kernel_set_version(), 0);
  EXPECT_EQ(reloaded.isa(), simd::Isa::kScalar);
  EXPECT_TRUE(reloaded.stale());
  // A provenance from an older kernel set is stale under the right ISA...
  KernelPlan old_set = KernelPlan::heuristic(true);
  old_set.set_provenance(simd::active_isa(),
                         KernelPlan::kKernelSetVersion - 1);
  EXPECT_TRUE(old_set.stale());
  // ...and a current-set plan goes stale when the dispatch target moves.
  if (simd::compiled_isas().size() > 1) {
    const KernelPlan current = KernelPlan::heuristic(true);
    const simd::Isa other = simd::active_isa() == simd::Isa::kScalar
                                ? simd::compiled_isas().back()
                                : simd::Isa::kScalar;
    simd::ScopedIsa forced(other);
    EXPECT_TRUE(current.stale());
  }
}

TEST(KernelPlan, StaleCallerPlanIsIgnoredByDispatch) {
  ThreadGuard guard;
  par::set_num_threads(4);
  Csr tall = tall_random(1 << 12, 16, 91);
  tall.build_transpose_index();
  linalg::Matrix x(tall.rows(), 8);
  rand::Rng rng(5);
  for (Index i = 0; i < x.rows(); ++i) {
    for (Index t = 0; t < x.cols(); ++t) x(i, t) = rng.normal();
  }
  std::vector<Real> partial;
  linalg::Matrix y_ref;
  tall.apply_transpose_block(x, y_ref, partial);
  // A stale plan forcing the scatter (whose 4-thread accumulation order
  // differs from the gather's) must be ignored: the dispatch falls back
  // to the matrix's own plan and the output matches the gather bitwise.
  KernelPlan stale;
  stale.set_entry({1 << 20, TransposeKernel::kScatter, 0, 0, 0});
  ASSERT_TRUE(stale.stale());
  linalg::Matrix y;
  tall.apply_transpose_block(x, y, partial, &stale);
  for (Index j = 0; j < y.rows(); ++j) {
    for (Index t = 0; t < y.cols(); ++t) EXPECT_EQ(y(j, t), y_ref(j, t));
  }
}

TEST(TransposePlanCache, IsaMismatchIsAMiss) {
  if (simd::compiled_isas().size() < 2) {
    GTEST_SKIP() << "scalar-only build: no second ISA to miss against";
  }
  Csr tall = tall_random(1 << 14, 16, 7);
  TransposePlanOptions build;
  build.autotune.enable = false;
  tall.build_transpose_index(build);
  AutotuneOptions tune;
  tune.widths = {8};
  tune.reps = 1;
  TransposePlanCache cache(8);
  const KernelPlan first = cache.get(tall, tune);
  EXPECT_FALSE(first.stale());
  cache.get(tall, tune);
  TransposePlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  {
    // Same shape bucket, same options, different dispatch target: the
    // cached plan's measurements do not transfer -- re-tuned, not reused.
    simd::ScopedIsa forced(simd::Isa::kScalar);
    const KernelPlan scalar_plan = cache.get(tall, tune);
    EXPECT_EQ(scalar_plan.isa(), simd::Isa::kScalar);
    EXPECT_FALSE(scalar_plan.stale());
  }
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(KernelPlan, MeasureScalarRecordsBaselineTiming) {
  Csr tall = tall_random(1 << 14, 16, 13);
  TransposePlanOptions build;
  build.autotune.enable = false;
  tall.build_transpose_index(build);
  AutotuneOptions tune;
  tune.widths = {8};
  tune.reps = 1;
  tune.measure_scalar = true;
  const KernelPlan plan = autotune_transpose_plan(tall, tune);
  ASSERT_EQ(plan.entries().size(), 1u);
  if (simd::active_isa() != simd::Isa::kScalar) {
    EXPECT_GT(plan.entries()[0].scalar_gather_seconds, 0.0);
  } else {
    // Already scalar: there is no second backend to baseline against.
    EXPECT_EQ(plan.entries()[0].scalar_gather_seconds, 0.0);
  }
  // The knob is part of the tuner-option fingerprint, so cached plans
  // with and without the baseline cannot shadow each other.
  AutotuneOptions plain = tune;
  plain.measure_scalar = false;
  TransposePlanCache cache(8);
  cache.get(tall, tune);
  cache.get(tall, plain);
  EXPECT_EQ(cache.stats().misses, 2u);
}

}  // namespace
}  // namespace psdp::sparse
