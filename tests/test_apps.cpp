#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "apps/beamforming.hpp"
#include "apps/generators.hpp"
#include "apps/graph.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eig.hpp"
#include "linalg/matfunc.hpp"
#include "test_helpers.hpp"

namespace psdp::apps {
namespace {

using core::PackingInstance;
using linalg::Matrix;
using linalg::Vector;

TEST(Figure1, MatricesMatchTheCaption) {
  const PackingInstance fig1 = figure1_instance();
  ASSERT_EQ(fig1.size(), 3);
  ASSERT_EQ(fig1.dim(), 2);
  // A1, A2 axis-aligned.
  EXPECT_EQ(fig1[0](0, 1), 0);
  EXPECT_EQ(fig1[1](0, 1), 0);
  // A3 rotated: off-diagonal nonzero, eigenvalues 3/4 and 1/8.
  EXPECT_NE(fig1[2](0, 1), 0);
  const auto eig = linalg::jacobi_eig(fig1[2]);
  EXPECT_NEAR(eig.eigenvalues[0], 0.375, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 0.1, 1e-12);
  fig1.validate(true);
}

TEST(Figure1, CaptionArithmetic) {
  const PackingInstance fig1 = figure1_instance();
  // A1 + A2 = 1.25 I: slightly over the unit ball, as drawn.
  const Matrix sum12 = linalg::add(fig1[0], fig1[1]);
  EXPECT_NEAR(linalg::lambda_max_exact(sum12), 1.25, 1e-12);
  // A1/2 + A2/2 + A3 stays essentially inside the ball.
  Matrix combo = fig1[0];
  combo.scale(0.5);
  combo.add_scaled(fig1[1], 0.5);
  combo.add_scaled(fig1[2], 1.0);
  EXPECT_NEAR(linalg::lambda_max_exact(combo), 1.0, 1e-9);  // exactly tight
}

TEST(RandomEllipses, ProducesValidPsdInstance) {
  EllipseOptions options;
  options.n = 10;
  options.m = 6;
  options.rank = 2;
  const PackingInstance inst = random_ellipses(options);
  EXPECT_EQ(inst.size(), 10);
  EXPECT_EQ(inst.dim(), 6);
  inst.validate(true);
}

TEST(RandomEllipses, WidthBoundedByScaleTimesRank) {
  EllipseOptions options;
  options.n = 8;
  options.m = 5;
  options.rank = 3;
  options.scale_max = 2.0;
  const PackingInstance inst = random_ellipses(options);
  for (Index i = 0; i < inst.size(); ++i) {
    EXPECT_LE(linalg::lambda_max_exact(inst[i]), 3 * 2.0 + 1e-9);
  }
}

TEST(RandomEllipses, DeterministicForSeed) {
  EllipseOptions options;
  options.seed = 123;
  const PackingInstance a = random_ellipses(options);
  const PackingInstance b = random_ellipses(options);
  EXPECT_MATRIX_NEAR(a[0], b[0], 0);
}

TEST(RandomEllipses, ValidatesParameters) {
  EllipseOptions bad;
  bad.rank = 100;
  bad.m = 4;
  EXPECT_THROW(random_ellipses(bad), InvalidArgument);
  bad = EllipseOptions{};
  bad.scale_min = -1;
  EXPECT_THROW(random_ellipses(bad), InvalidArgument);
}

TEST(NeedleWidth, InstanceWidthTracksParameter) {
  for (Real width : {4.0, 64.0, 1024.0}) {
    NeedleOptions options;
    options.width = width;
    const PackingInstance inst = needle_width_family(options);
    // The needle dominates: instance width ~ `width`.
    Real max_lambda = 0;
    for (Index i = 0; i < inst.size(); ++i) {
      max_lambda = std::max(max_lambda, linalg::lambda_max_exact(inst[i]));
    }
    EXPECT_NEAR(max_lambda, width, 1e-9 * width);
  }
}

TEST(NeedleWidth, KeepsRequestedConstraintCount) {
  NeedleOptions options;
  options.n = 12;
  const PackingInstance inst = needle_width_family(options);
  EXPECT_EQ(inst.size(), 12);  // n-1 benign + needle
  inst.validate(true);
}

TEST(RandomFactorized, ShapesAndBudget) {
  FactorizedOptions options;
  options.n = 7;
  options.m = 32;
  options.rank = 2;
  options.nnz_per_column = 4;
  const core::FactorizedPackingInstance inst = random_factorized(options);
  EXPECT_EQ(inst.size(), 7);
  EXPECT_EQ(inst.dim(), 32);
  // Duplicate draws can merge: at most rank * nnz_per_column per factor.
  EXPECT_LE(inst.total_nnz(), 7 * 2 * 4);
  EXPECT_GT(inst.total_nnz(), 0);
  for (Index i = 0; i < inst.size(); ++i) {
    EXPECT_GT(inst.constraint_trace(i), 0);
  }
}

TEST(RandomFactorized, DenseMirrorsArePsd) {
  FactorizedOptions options;
  options.n = 5;
  options.m = 6;
  options.nnz_per_column = 3;
  const core::PackingInstance dense = random_factorized(options).to_dense();
  dense.validate(true);
}

TEST(Beamforming, CoveringProblemIsWellFormed) {
  BeamformingOptions options;
  options.users = 5;
  options.antennas = 4;
  const core::CoveringProblem p = beamforming_problem(options);
  p.validate(true);
  EXPECT_EQ(p.size(), 5);
  EXPECT_EQ(p.dim(), 4);
  for (Index i = 0; i < p.size(); ++i) {
    // Rank-one constraints.
    EXPECT_EQ(linalg::rank_psd(p.constraints[static_cast<std::size_t>(i)]), 1);
    EXPECT_EQ(p.rhs[i], options.demand);
  }
}

TEST(Beamforming, FactorizedMatchesNormalizedCovering) {
  BeamformingOptions options;
  options.users = 4;
  options.antennas = 3;
  options.demand = 2.0;
  const core::CoveringProblem p = beamforming_problem(options);
  const core::FactorizedPackingInstance f = beamforming_factorized(options);
  // C = I so B_i = A_i / b_i; the factorized form must match.
  for (Index i = 0; i < f.size(); ++i) {
    Matrix want = p.constraints[static_cast<std::size_t>(i)];
    want.scale(1 / p.rhs[i]);
    EXPECT_MATRIX_NEAR(f[i].to_dense(), want, 1e-10);
  }
}

TEST(Beamforming, SpreadWidensTraceRange) {
  BeamformingOptions uniform;
  uniform.users = 16;
  uniform.spread = 1;
  BeamformingOptions spread = uniform;
  spread.spread = 100;
  auto trace_ratio = [](const core::FactorizedPackingInstance& inst) {
    Real lo = inst.constraint_trace(0), hi = lo;
    for (Index i = 1; i < inst.size(); ++i) {
      lo = std::min(lo, inst.constraint_trace(i));
      hi = std::max(hi, inst.constraint_trace(i));
    }
    return hi / lo;
  };
  EXPECT_GT(trace_ratio(beamforming_factorized(spread)),
            trace_ratio(beamforming_factorized(uniform)));
}

TEST(Graph, CycleGraphLaplacianEigenvalues) {
  const Graph g = cycle_graph(4);
  const Matrix l = laplacian(g);
  // C_4 Laplacian eigenvalues: 0, 2, 2, 4.
  const auto eig = linalg::jacobi_eig(l);
  EXPECT_NEAR(eig.eigenvalues[0], 4, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 2, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[2], 2, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[3], 0, 1e-10);
}

TEST(Graph, LaplacianIsSumOfEdgeMatrices) {
  const Graph g = random_connected_graph(6, 4, 0.5, 2.0, 3);
  const core::CoveringProblem p = edge_covering_problem(g);
  Matrix sum(6, 6);
  for (const Matrix& l_e : p.constraints) sum.add_scaled(l_e, 1.0);
  EXPECT_MATRIX_NEAR(sum, laplacian(g), 1e-10);
}

TEST(Graph, RandomConnectedGraphIsConnected) {
  // Connectivity <=> lambda_{n-1}(L) > 0 (second smallest eigenvalue).
  const Graph g = random_connected_graph(8, 2, 1.0, 1.0, 9);
  const auto eig = linalg::jacobi_eig(laplacian(g));
  EXPECT_GT(eig.eigenvalues[6], 1e-9);   // Fiedler value positive
  EXPECT_NEAR(eig.eigenvalues[7], 0, 1e-9);  // one zero eigenvalue
}

TEST(Graph, FactorizedEdgesHaveTwoNonzeros) {
  const Graph g = cycle_graph(5);
  const core::FactorizedPackingInstance f = edge_packing_factorized(g);
  EXPECT_EQ(f.size(), 5);
  for (Index e = 0; e < f.size(); ++e) {
    EXPECT_EQ(f[e].nnz(), 2);
  }
  EXPECT_EQ(f.total_nnz(), 10);  // q = 2|E|
}

TEST(Graph, Validation) {
  EXPECT_THROW(cycle_graph(2), InvalidArgument);
  EXPECT_THROW(random_connected_graph(1, 0), InvalidArgument);
  Graph empty;
  empty.vertices = 3;
  EXPECT_THROW(edge_covering_problem(empty), InvalidArgument);
}

}  // namespace
}  // namespace psdp::apps

namespace psdp::apps {
namespace {

TEST(DiagonalLp, AnalyticOptimumMatchesBruteForce) {
  DiagonalLpOptions options;
  options.groups = 3;
  options.per_group = 2;
  const DiagonalLpInstance lp = diagonal_lp(options);
  EXPECT_EQ(lp.instance.size(), 6);
  EXPECT_EQ(lp.instance.dim(), 3);
  lp.instance.validate(true);
  // Recompute the optimum directly from the matrices: per axis, the best
  // coordinate is the one with the smallest diagonal entry.
  Real opt = 0;
  for (Index g = 0; g < 3; ++g) {
    Real min_d = std::numeric_limits<Real>::infinity();
    for (Index i = 0; i < lp.instance.size(); ++i) {
      const Real d = lp.instance[i](g, g);
      if (d > 0) min_d = std::min(min_d, d);
    }
    opt += 1 / min_d;
  }
  EXPECT_NEAR(lp.opt, opt, 1e-12);
}

TEST(DiagonalLp, EveryConstraintIsAxisAligned) {
  const DiagonalLpInstance lp = diagonal_lp({});
  for (Index i = 0; i < lp.instance.size(); ++i) {
    Index nonzero_axes = 0;
    for (Index g = 0; g < lp.instance.dim(); ++g) {
      if (lp.instance[i](g, g) != 0) ++nonzero_axes;
    }
    EXPECT_EQ(nonzero_axes, 1) << "constraint " << i;
  }
}

TEST(DiagonalLp, Validation) {
  DiagonalLpOptions bad;
  bad.groups = 0;
  EXPECT_THROW(diagonal_lp(bad), InvalidArgument);
  bad = DiagonalLpOptions{};
  bad.d_min = 0;
  EXPECT_THROW(diagonal_lp(bad), InvalidArgument);
}

}  // namespace
}  // namespace psdp::apps
