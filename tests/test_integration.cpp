// End-to-end integration tests across modules: generator -> serialization
// -> solver -> independent certificate verification, plus cross-solver and
// cross-thread-count consistency.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/beamforming.hpp"
#include "apps/generators.hpp"
#include "apps/graph.hpp"
#include "core/baseline.hpp"
#include "core/certificates.hpp"
#include "core/decision.hpp"
#include "core/factorize.hpp"
#include "core/optimize.hpp"
#include "core/phased.hpp"
#include "core/poslp.hpp"
#include "io/instance_io.hpp"
#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "test_helpers.hpp"

namespace psdp {
namespace {

using core::DecisionOptions;
using core::DecisionOutcome;
using core::DecisionResult;
using core::PackingInstance;

TEST(Integration, GenerateSerializeSolveVerify) {
  apps::EllipseOptions gen;
  gen.n = 12;
  gen.m = 5;
  gen.seed = 99;
  const PackingInstance original = apps::random_ellipses(gen);

  // Round-trip through the text format.
  std::stringstream buffer;
  io::write_packing(buffer, original);
  const PackingInstance instance = io::read_packing(buffer);

  // Solve the optimization problem and verify both sides independently.
  core::OptimizeOptions options;
  options.eps = 0.2;
  const core::PackingOptimum r = core::approx_packing(instance, options);
  const core::DualCheck dual = core::check_dual(instance, r.best_x, 1e-9);
  EXPECT_TRUE(dual.feasible);
  EXPECT_NEAR(dual.value, r.lower, 1e-9 * (1 + r.lower));
  EXPECT_LE(r.lower, r.upper * (1 + 1e-12));
}

TEST(Integration, DenseToFactorizedPipelineEndToEnd) {
  // The full preprocessing pipeline: dense generator -> pivoted-Cholesky
  // factorization -> factorized serialization round trip -> phased
  // factorized solve -> certificate verified against the ORIGINAL dense
  // instance.
  apps::EllipseOptions gen;
  gen.n = 14;
  gen.m = 10;
  gen.rank = 2;
  gen.seed = 123;
  const PackingInstance dense = apps::random_ellipses(gen).scaled(0.05);

  const core::FactorizedPackingInstance fact = core::factorize(dense);
  std::stringstream buffer;
  io::write_factorized(buffer, fact);
  const core::FactorizedPackingInstance loaded = io::read_factorized(buffer);
  ASSERT_EQ(loaded.total_nnz(), fact.total_nnz());

  core::FactorizedPhasedOptions options;
  options.eps = 0.15;
  const core::PhasedResult r = core::decision_phased(loaded, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  const core::DualCheck check = core::check_dual(dense, r.dual_x, 1e-6);
  EXPECT_TRUE(check.feasible);
  EXPECT_GT(check.value, 0);
}

TEST(Integration, LpPipelineDualitySandwich) {
  // LP generator -> serialization round trip -> packing + covering solves
  // -> strong-duality sandwich: packing OPT == covering OPT, so
  //    packing.lower <= covering.objective and the two brackets interleave.
  const core::PackingLp original =
      apps::random_packing_lp({.rows = 9, .cols = 21, .seed = 77});
  std::stringstream buffer;
  io::write_lp(buffer, original);
  const core::PackingLp lp = io::read_lp(buffer);

  core::OptimizeOptions options;
  options.eps = 0.12;
  const core::LpOptimum pack = core::approx_packing_lp(lp, options);
  const core::LpCoveringOptimum cover = core::approx_covering_lp(lp, options);
  // pack.lower <= OPT <= cover.objective, and both brackets are (1+eps).
  EXPECT_LE(pack.lower, cover.objective * (1 + 1e-9));
  EXPECT_GE(cover.objective, pack.lower * (1 - 1e-9));
  EXPECT_LE(cover.objective, pack.lower * (1 + options.eps) * (1 + options.eps)
            + 1e-9);
  // Cross-feasibility: the packing witness under the covering prices.
  const linalg::Vector coverage =
      linalg::matvec_transpose(lp.matrix(), cover.y);
  for (Index e = 0; e < coverage.size(); ++e) EXPECT_GE(coverage[e], 1 - 1e-9);
}

TEST(Integration, WeakDualityAcrossCertificates) {
  // Whenever the solver returns a primal certificate at some scale and a
  // dual at another, the duality product must respect weak duality.
  const PackingInstance fig1 = apps::figure1_instance();
  DecisionOptions options;
  options.eps = 0.2;
  const DecisionResult dual_run = core::decision_dense(fig1, options);
  const DecisionResult primal_run =
      core::decision_dense(fig1.scaled(10.0), options);
  if (dual_run.outcome == DecisionOutcome::kDual &&
      primal_run.outcome == DecisionOutcome::kPrimal) {
    // Same instance family at different scales: check each against itself.
    EXPECT_LE(core::duality_product(fig1, dual_run.dual_x,
                                    primal_run.primal_y),
              10.0 * (1 + 0.2) + 1e-6);
  }
}

TEST(Integration, DenseAndFactorizedSolversAgreeEndToEnd) {
  const apps::Graph g = apps::cycle_graph(6);
  const core::FactorizedPackingInstance fact =
      apps::edge_packing_factorized(g);
  const PackingInstance dense = fact.to_dense();
  DecisionOptions options;
  options.eps = 0.25;
  for (Real scale : {0.05, 0.5, 4.0}) {
    const DecisionResult rf =
        core::decision_factorized(fact.scaled(scale), options);
    const DecisionResult rd = core::decision_dense(dense.scaled(scale), options);
    EXPECT_EQ(rf.outcome, rd.outcome) << "scale " << scale;
    if (rf.outcome == DecisionOutcome::kDual) {
      EXPECT_TRUE(core::check_dual(fact, rf.dual_x.span().size() == 0
                                             ? rd.dual_x
                                             : rf.dual_x,
                                   1e-6)
                      .feasible);
    }
  }
}

TEST(Integration, ResultsIdenticalAcrossThreadCounts) {
  // The dense solver is deterministic; thread count must not change the
  // outcome, iteration count, or certificate.
  apps::EllipseOptions gen;
  gen.n = 10;
  gen.m = 4;
  const PackingInstance instance = apps::random_ellipses(gen);
  DecisionOptions options;
  options.eps = 0.3;

  const int before = par::num_threads();
  par::set_num_threads(1);
  const DecisionResult r1 = core::decision_dense(instance, options);
  par::set_num_threads(8);
  const DecisionResult r8 = core::decision_dense(instance, options);
  par::set_num_threads(before);

  EXPECT_EQ(r1.outcome, r8.outcome);
  EXPECT_EQ(r1.iterations, r8.iterations);
  for (Index i = 0; i < r1.dual_x.size(); ++i) {
    EXPECT_EQ(r1.dual_x[i], r8.dual_x[i]);
  }
}

TEST(Integration, BaselineAndPaperSolverAgreeOnDecisions) {
  // Both algorithms answer the same decision problem; on clearly-sided
  // instances they must agree.
  std::vector<linalg::Matrix> small, large;
  for (int i = 0; i < 3; ++i) {
    linalg::Matrix a = linalg::Matrix::identity(3);
    a.scale(0.05);
    small.push_back(a);
    a = linalg::Matrix::identity(3);
    a.scale(20.0);
    large.push_back(a);
  }
  DecisionOptions paper_options;
  paper_options.eps = 0.2;
  core::BaselineOptions baseline_options;
  baseline_options.eps = 0.2;

  const PackingInstance easy_dual{std::move(small)};
  EXPECT_EQ(core::decision_dense(easy_dual, paper_options).outcome,
            DecisionOutcome::kDual);
  EXPECT_EQ(core::decision_width_dependent(easy_dual, baseline_options).outcome,
            DecisionOutcome::kDual);

  const PackingInstance easy_primal{std::move(large)};
  EXPECT_EQ(core::decision_dense(easy_primal, paper_options).outcome,
            DecisionOutcome::kPrimal);
  EXPECT_EQ(
      core::decision_width_dependent(easy_primal, baseline_options).outcome,
      DecisionOutcome::kPrimal);
}

TEST(Integration, CoveringPipelineOnSerializedProblem) {
  apps::BeamformingOptions gen;
  gen.users = 5;
  gen.antennas = 3;
  const core::CoveringProblem original = apps::beamforming_problem(gen);
  std::stringstream buffer;
  io::write_covering(buffer, original);
  const core::CoveringProblem problem = io::read_covering(buffer);

  core::OptimizeOptions options;
  options.eps = 0.25;
  const core::CoveringOptimum r = core::approx_covering(problem, options);
  for (Index i = 0; i < problem.size(); ++i) {
    EXPECT_GE(linalg::frobenius_dot(
                  problem.constraints[static_cast<std::size_t>(i)], r.y),
              problem.rhs[i] * (1 - 1e-6));
  }
}

TEST(Integration, PaperFaithfulModeAlsoCertifies) {
  // With early_primal_exit disabled the algorithm runs the full Lemma 3.6
  // schedule; on a small instance this must still produce a valid primal.
  std::vector<linalg::Matrix> constraints;
  for (int i = 0; i < 3; ++i) {
    linalg::Matrix a = linalg::Matrix::identity(2);
    a.scale(8.0);
    constraints.push_back(a);
  }
  const PackingInstance instance{std::move(constraints)};
  DecisionOptions options;
  options.eps = 0.5;  // keep R manageable
  options.early_primal_exit = false;
  const DecisionResult r = core::decision_dense(instance, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kPrimal);
  EXPECT_EQ(r.iterations, r.constants.r_limit);  // ran the whole schedule
  const core::PrimalCheck check = core::check_primal(instance, r.primal_y, 1e-5);
  EXPECT_TRUE(check.feasible) << "min_dot=" << check.min_dot;
}

TEST(Integration, CostMeterSeesSolverWork) {
  par::CostMeter::reset();
  const PackingInstance fig1 = apps::figure1_instance();
  DecisionOptions options;
  options.eps = 0.3;
  (void)core::decision_dense(fig1, options);
  const auto cost = par::CostMeter::snapshot();
  EXPECT_GT(cost.work, 0u);
  EXPECT_GT(cost.depth, 0u);
}

}  // namespace
}  // namespace psdp
