#include <gtest/gtest.h>

#include <cmath>

#include "linalg/expm.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_symmetric;

TEST(ExpmEig, ExpOfZeroIsIdentity) {
  EXPECT_MATRIX_NEAR(expm_eig(Matrix(4, 4)), Matrix::identity(4), 1e-13);
}

TEST(ExpmEig, DiagonalCase) {
  const Matrix e = expm_eig(Matrix::diagonal(Vector{0, 1, -1}));
  EXPECT_NEAR(e(0, 0), 1, 1e-13);
  EXPECT_NEAR(e(1, 1), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(2, 2), std::exp(-1.0), 1e-13);
  EXPECT_NEAR(e(0, 1), 0, 1e-13);
}

TEST(ExpmEig, OneByOneMatchesScalarExp) {
  Matrix a(1, 1);
  a(0, 0) = 2.3;
  EXPECT_NEAR(expm_eig(a)(0, 0), std::exp(2.3), 1e-11);
}

TEST(ExpmPade, AgreesWithEigOnRandomSymmetric) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_symmetric(6, 500 + seed);
    const Matrix e1 = expm_eig(a);
    const Matrix e2 = expm_pade(a);
    const Real scale = frobenius_norm(e1);
    EXPECT_LE(max_abs_diff(e1, e2), 1e-9 * std::max<Real>(1, scale))
        << "seed " << seed;
  }
}

TEST(ExpmPade, AgreesWithEigOnLargeNormPsd) {
  // Larger norm exercises more squaring steps.
  Matrix a = random_psd(5, 31);
  a.scale(20);
  const Matrix e1 = expm_eig(a);
  const Matrix e2 = expm_pade(a);
  EXPECT_LE(max_abs_diff(e1, e2), 1e-7 * frobenius_norm(e1));
}

TEST(Expm, GroupProperty) {
  // exp(A) exp(A) = exp(2A) for commuting (identical) arguments.
  const Matrix a = random_symmetric(5, 8);
  Matrix a2 = a;
  a2.scale(2);
  const Matrix lhs = gemm(expm_eig(a), expm_eig(a));
  const Matrix rhs = expm_eig(a2);
  EXPECT_LE(max_abs_diff(lhs, rhs), 1e-9 * frobenius_norm(rhs));
}

TEST(Expm, InverseProperty) {
  // exp(A) exp(-A) = I.
  const Matrix a = random_symmetric(5, 9);
  Matrix neg = a;
  neg.scale(-1);
  const Matrix prod = gemm(expm_eig(a), expm_eig(neg));
  EXPECT_MATRIX_NEAR(prod, Matrix::identity(5), 1e-9);
}

TEST(Expm, ExponentialOfPsdDominatesIdentity) {
  // For PSD A, exp(A) >= I in the Loewner order: check via eigenvalues.
  const Matrix e = expm_eig(random_psd(6, 3));
  Matrix shifted = e;
  shifted.add_scaled_identity(-1.0 + 1e-12);
  const auto eig = jacobi_eig(shifted);
  EXPECT_GE(eig.eigenvalues[5], -1e-10);
}

TEST(ExpmFromEig, HalfScaleSquaresToFull) {
  // exp(A/2)^2 = exp(A); this identity is the heart of bigDotExp.
  const Matrix a = random_psd(6, 44);
  const auto eig = jacobi_eig(a);
  const Matrix half = expm_from_eig(eig, 0.5);
  const Matrix full = expm_from_eig(eig, 1.0);
  EXPECT_LE(max_abs_diff(gemm(half, half), full),
            1e-10 * frobenius_norm(full));
}

TEST(ExpmPade, RejectsNonFinite) {
  Matrix a = Matrix::identity(2);
  a(0, 0) = std::numeric_limits<Real>::infinity();
  EXPECT_THROW(expm_pade(a), InvalidArgument);
}

TEST(Expm, TraceExpEqualsSumExpEigenvalues) {
  const Matrix a = random_symmetric(7, 91);
  const auto eig = jacobi_eig(a);
  Real expect = 0;
  for (Index i = 0; i < 7; ++i) expect += std::exp(eig.eigenvalues[i]);
  EXPECT_NEAR(trace(expm_eig(a)), expect, 1e-9 * expect);
}

}  // namespace
}  // namespace psdp::linalg
