#include <gtest/gtest.h>

#include "linalg/matfunc.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_psd_rank;

TEST(SqrtPsd, SquaresBack) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Matrix a = random_psd(6, seed);
    const Matrix s = sqrt_psd(a);
    EXPECT_MATRIX_NEAR(gemm(s, s), a, 1e-9);
  }
}

TEST(SqrtPsd, DiagonalCase) {
  const Matrix s = sqrt_psd(Matrix::diagonal(Vector{4, 9, 16}));
  EXPECT_MATRIX_NEAR(s, Matrix::diagonal(Vector{2, 3, 4}), 1e-12);
}

TEST(SqrtPsd, RejectsIndefinite) {
  Matrix a = Matrix::identity(2);
  a(1, 1) = -1;
  EXPECT_THROW(sqrt_psd(a), InvalidArgument);
}

TEST(InvSqrtPsd, InvertsOnFullRank) {
  const Matrix a = random_psd(5, 10);
  const Matrix is = inv_sqrt_psd(a);
  const Matrix should_be_identity = gemm(is, gemm(a, is));
  EXPECT_MATRIX_NEAR(should_be_identity, Matrix::identity(5), 1e-8);
}

TEST(InvSqrtPsd, ProjectsOnRankDeficient) {
  const Matrix a = random_psd_rank(6, 3, 4);
  const Matrix is = inv_sqrt_psd(a);
  // C^{-1/2} A C^{-1/2} should be the projector onto range(A).
  const Matrix p = gemm(is, gemm(a, is));
  // Projector: P^2 = P, trace = rank.
  EXPECT_MATRIX_NEAR(gemm(p, p), p, 1e-8);
  EXPECT_NEAR(trace(p), 3.0, 1e-8);
}

TEST(PinvPsd, SatisfiesPenroseOnFullRank) {
  const Matrix a = random_psd(5, 20);
  const Matrix pinv = pinv_psd(a);
  EXPECT_MATRIX_NEAR(gemm(a, gemm(pinv, a)), a, 1e-8);
  EXPECT_MATRIX_NEAR(gemm(pinv, gemm(a, pinv)), pinv, 1e-8);
}

TEST(PinvPsd, ZeroMatrixHasZeroPinv) {
  const Matrix z(3, 3);
  EXPECT_MATRIX_NEAR(pinv_psd(z), z, 1e-14);
}

TEST(RankPsd, DetectsNumericalRank) {
  EXPECT_EQ(rank_psd(Matrix::identity(4)), 4);
  EXPECT_EQ(rank_psd(Matrix(4, 4)), 0);
  for (Index r : {1, 2, 5}) {
    EXPECT_EQ(rank_psd(random_psd_rank(6, r, 33 + static_cast<std::uint64_t>(r))), r);
  }
}

TEST(MatFunc, InvSqrtCommutesWithSqrt) {
  // A^{1/2} A^{-1/2} = projector onto range(A) = I for full rank.
  const Matrix a = random_psd(4, 55);
  const Matrix prod = gemm(sqrt_psd(a), inv_sqrt_psd(a));
  EXPECT_MATRIX_NEAR(prod, Matrix::identity(4), 1e-8);
}

}  // namespace
}  // namespace psdp::linalg
