#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "apps/beamforming.hpp"
#include "apps/generators.hpp"
#include "io/instance_io.hpp"
#include "test_helpers.hpp"

namespace psdp::io {
namespace {

using core::CoveringProblem;
using core::FactorizedPackingInstance;
using core::PackingInstance;
using linalg::Matrix;

TEST(InstanceIo, PackingRoundTripsExactly) {
  apps::EllipseOptions gen;
  gen.n = 5;
  gen.m = 4;
  const PackingInstance original = apps::random_ellipses(gen);
  std::stringstream buffer;
  write_packing(buffer, original);
  const PackingInstance loaded = read_packing(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (Index i = 0; i < original.size(); ++i) {
    EXPECT_MATRIX_NEAR(loaded[i], original[i], 0);  // bit-exact
  }
}

TEST(InstanceIo, FactorizedRoundTripsExactly) {
  apps::FactorizedOptions gen;
  gen.n = 4;
  gen.m = 12;
  gen.nnz_per_column = 3;
  const FactorizedPackingInstance original = apps::random_factorized(gen);
  std::stringstream buffer;
  write_factorized(buffer, original);
  const FactorizedPackingInstance loaded = read_factorized(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (Index i = 0; i < original.size(); ++i) {
    EXPECT_MATRIX_NEAR(loaded[i].to_dense(), original[i].to_dense(), 0);
  }
}

TEST(InstanceIo, CoveringRoundTripsExactly) {
  apps::BeamformingOptions gen;
  gen.users = 4;
  gen.antennas = 3;
  const CoveringProblem original = apps::beamforming_problem(gen);
  std::stringstream buffer;
  write_covering(buffer, original);
  const CoveringProblem loaded = read_covering(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_MATRIX_NEAR(loaded.objective, original.objective, 0);
  for (Index i = 0; i < original.size(); ++i) {
    EXPECT_MATRIX_NEAR(loaded.constraints[static_cast<std::size_t>(i)],
                       original.constraints[static_cast<std::size_t>(i)], 0);
    EXPECT_EQ(loaded.rhs[i], original.rhs[i]);
  }
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  const PackingInstance original({Matrix::identity(2)});
  std::stringstream buffer;
  write_packing(buffer, original);
  std::string text = buffer.str();
  text = "# leading comment\n\n" + text + "\n# trailing comment\n";
  std::istringstream in(text);
  const PackingInstance loaded = read_packing(in);
  EXPECT_MATRIX_NEAR(loaded[0], original[0], 0);
}

TEST(InstanceIo, RejectsWrongMagic) {
  std::istringstream in("nope packing-dense 1\nsize 1 1\n");
  EXPECT_THROW(read_packing(in), InvalidArgument);
}

TEST(InstanceIo, RejectsWrongKind) {
  const PackingInstance original({Matrix::identity(2)});
  std::stringstream buffer;
  write_packing(buffer, original);
  EXPECT_THROW(read_factorized(buffer), InvalidArgument);
}

TEST(InstanceIo, RejectsUnsupportedVersion) {
  std::istringstream in("psdp packing-dense 9\nsize 1 1\n");
  EXPECT_THROW(read_packing(in), InvalidArgument);
}

TEST(InstanceIo, RejectsTruncatedInput) {
  std::istringstream in("psdp packing-dense 1\nsize 2 2\nconstraint 0 3\n0 0 1\n");
  EXPECT_THROW(read_packing(in), InvalidArgument);
}

TEST(InstanceIo, RejectsOutOfRangeEntries) {
  std::istringstream in(
      "psdp packing-dense 1\nsize 1 2\nconstraint 0 1\n0 5 1.0\n");
  EXPECT_THROW(read_packing(in), InvalidArgument);
}

TEST(InstanceIo, RejectsNonFiniteValues) {
  std::istringstream in(
      "psdp packing-dense 1\nsize 1 2\nconstraint 0 1\n0 0 nan\n");
  EXPECT_THROW(read_packing(in), InvalidArgument);
}

TEST(InstanceIo, LpRoundTripsExactly) {
  const core::PackingLp original =
      apps::random_packing_lp({.rows = 6, .cols = 9, .seed = 61});
  std::stringstream buffer;
  write_lp(buffer, original);
  const core::PackingLp loaded = read_lp(buffer);
  ASSERT_EQ(loaded.rows(), original.rows());
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_MATRIX_NEAR(loaded.matrix(), original.matrix(), 0);  // bit-exact
}

TEST(InstanceIo, LpRejectsNegativeEntry) {
  std::istringstream in("psdp packing-lp 1\nsize 2 2\nmatrix 2\n"
                        "0 0 1.0\n1 1 -2.0\n");
  EXPECT_THROW(read_lp(in), InvalidArgument);
}

TEST(InstanceIo, LpRejectsOutOfRange) {
  std::istringstream in("psdp packing-lp 1\nsize 2 2\nmatrix 1\n2 0 1.0\n");
  EXPECT_THROW(read_lp(in), InvalidArgument);
}

TEST(InstanceIo, LpFileSaveAndLoad) {
  const std::string path = ::testing::TempDir() + "/psdp_io_test.lp.psdp";
  const core::PackingLp original = apps::complete_graph_matching_lp(5).lp;
  save_lp(path, original);
  const core::PackingLp loaded = load_lp(path);
  EXPECT_MATRIX_NEAR(loaded.matrix(), original.matrix(), 0);
  std::remove(path.c_str());
}

TEST(InstanceIo, FileSaveAndLoad) {
  const std::string path = ::testing::TempDir() + "/psdp_io_test.psdp";
  const PackingInstance original = apps::figure1_instance();
  save_packing(path, original);
  const PackingInstance loaded = load_packing(path);
  for (Index i = 0; i < 3; ++i) {
    EXPECT_MATRIX_NEAR(loaded[i], original[i], 0);
  }
  std::remove(path.c_str());
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW(load_packing("/nonexistent/path/file.psdp"), InvalidArgument);
}

}  // namespace
}  // namespace psdp::io
