// Tests for the block-operator (SpMM) kernel layer: Csr::apply_block,
// apply_exp_taylor_block, GaussianSketch::fill_block, and the blocked
// bigDotExp path, each validated against its single-vector reference.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bigdotexp.hpp"
#include "linalg/blockop.hpp"
#include "linalg/taylor.hpp"
#include "rand/jl.hpp"
#include "rand/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/factorized.hpp"
#include "test_helpers.hpp"

namespace psdp {
namespace {

using linalg::Matrix;
using linalg::Vector;

sparse::Csr random_sparse(Index rows, Index cols, Index nnz_per_row,
                          std::uint64_t seed) {
  rand::Rng rng(seed);
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < rows; ++i) {
    for (Index e = 0; e < nnz_per_row; ++e) {
      triplets.push_back({i, rng.uniform_index(cols), rng.normal()});
    }
  }
  return sparse::Csr::from_triplets(rows, cols, std::move(triplets));
}

Matrix random_panel(Index rows, Index cols, std::uint64_t seed) {
  rand::Rng rng(seed);
  Matrix panel(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index t = 0; t < cols; ++t) panel(i, t) = rng.normal();
  }
  return panel;
}

sparse::FactorizedSet random_set(Index m, Index n, std::uint64_t seed) {
  std::vector<sparse::FactorizedPsd> items;
  for (Index i = 0; i < n; ++i) {
    items.push_back(sparse::FactorizedPsd(random_sparse(
        m, 3, 2, seed * 1000 + static_cast<std::uint64_t>(i))));
  }
  return sparse::FactorizedSet(std::move(items));
}

TEST(CsrApplyBlock, MatchesStackedApplyBitwise) {
  const sparse::Csr a = random_sparse(40, 25, 5, 1);
  for (const Index b : {1, 3, 8}) {
    const Matrix x = random_panel(25, b, 2);
    Matrix y;
    a.apply_block(x, y);
    ASSERT_EQ(y.rows(), 40);
    ASSERT_EQ(y.cols(), b);
    Vector col(25), want(40);
    for (Index t = 0; t < b; ++t) {
      linalg::panel_column(x, t, col);
      a.apply(col, want);
      for (Index i = 0; i < 40; ++i) EXPECT_EQ(y(i, t), want[i]) << i << "," << t;
    }
  }
}

TEST(CsrApplyBlock, TransposeMatchesStackedApplyTranspose) {
  const sparse::Csr a = random_sparse(30, 45, 4, 3);
  for (const Index b : {1, 4, 16}) {
    const Matrix x = random_panel(30, b, 4);
    Matrix y;
    a.apply_transpose_block(x, y);
    ASSERT_EQ(y.rows(), 45);
    ASSERT_EQ(y.cols(), b);
    Vector col(30), want(45);
    for (Index t = 0; t < b; ++t) {
      linalg::panel_column(x, t, col);
      a.apply_transpose(col, want);
      for (Index i = 0; i < 45; ++i) {
        EXPECT_NEAR(y(i, t), want[i], 1e-14 * (1 + std::abs(want[i])));
      }
    }
  }
}

TEST(CsrApplyBlock, EmptyMatrixGivesZeroPanel) {
  const sparse::Csr zero = sparse::Csr::from_triplets(5, 5, {});
  const Matrix x = random_panel(5, 4, 5);
  Matrix y;
  zero.apply_block(x, y);
  for (Index i = 0; i < 5; ++i) {
    for (Index t = 0; t < 4; ++t) EXPECT_EQ(y(i, t), 0.0);
  }
}

TEST(CsrApplyBlock, ValidatesDimensions) {
  const sparse::Csr a = random_sparse(6, 4, 2, 6);
  Matrix y;
  const Matrix bad = random_panel(5, 2, 7);
  EXPECT_THROW(a.apply_block(bad, y), InvalidArgument);
  EXPECT_THROW(a.apply_transpose_block(bad, y), InvalidArgument);
}

TEST(TaylorBlock, MatchesSingleVectorColumnByColumn) {
  // Symmetric sparse operator with moderate norm, like a mid-run Phi/2.
  const Index m = 32;
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < m; ++i) {
    triplets.push_back({i, i, 0.5});
    if (i + 1 < m) {
      triplets.push_back({i, i + 1, 0.2});
      triplets.push_back({i + 1, i, 0.2});
    }
  }
  const sparse::Csr bmat = sparse::Csr::from_triplets(m, m, std::move(triplets));
  const linalg::SymmetricOp op = [&bmat](const Vector& x, Vector& y) {
    bmat.apply(x, y);
  };
  const linalg::BlockOp block_op = [&bmat](const Matrix& x, Matrix& y) {
    bmat.apply_block(x, y);
  };
  for (const Index b : {1, 4, 8}) {
    const Matrix x = random_panel(m, b, 8);
    Matrix y;
    linalg::TaylorBlockWorkspace workspace;
    linalg::apply_exp_taylor_block(block_op, /*degree=*/13, x, y, workspace);
    Vector col(m), want(m);
    for (Index t = 0; t < b; ++t) {
      linalg::panel_column(x, t, col);
      linalg::apply_exp_taylor(op, 13, col, want);
      for (Index i = 0; i < m; ++i) {
        EXPECT_NEAR(y(i, t), want[i], 1e-12 * (1 + std::abs(want[i])))
            << "column " << t << " row " << i;
      }
    }
  }
}

TEST(TaylorBlock, WorkspaceReuseAcrossShapes) {
  const sparse::Csr a = random_sparse(10, 10, 3, 9);
  const linalg::BlockOp block_op = [&a](const Matrix& x, Matrix& y) {
    a.apply_block(x, y);
  };
  linalg::TaylorBlockWorkspace workspace;
  Matrix y1, y2;
  linalg::apply_exp_taylor_block(block_op, 6, random_panel(10, 4, 10), y1,
                                 workspace);
  // Second call with a different width must resize cleanly.
  linalg::apply_exp_taylor_block(block_op, 6, random_panel(10, 7, 11), y2,
                                 workspace);
  EXPECT_EQ(y2.cols(), 7);
  // Convenience overload agrees with the workspace overload.
  Matrix y3;
  const Matrix x = random_panel(10, 4, 10);
  linalg::apply_exp_taylor_block(block_op, 6, x, y3);
  Matrix y4;
  linalg::apply_exp_taylor_block(block_op, 6, x, y4, workspace);
  EXPECT_EQ(y3, y4);
}

TEST(TaylorBlock, DegreeOneIsIdentity) {
  const sparse::Csr a = random_sparse(8, 8, 2, 12);
  const linalg::BlockOp block_op = [&a](const Matrix& x, Matrix& y) {
    a.apply_block(x, y);
  };
  const Matrix x = random_panel(8, 3, 13);
  Matrix y;
  linalg::apply_exp_taylor_block(block_op, 1, x, y);
  EXPECT_EQ(x, y);
}

TEST(BlockOpAdapter, MatchesNativeBlockKernel) {
  const sparse::Csr a = random_sparse(12, 12, 3, 14);
  const linalg::SymmetricOp op = [&a](const Vector& x, Vector& y) {
    a.apply(x, y);
  };
  const linalg::BlockOp adapted = linalg::block_op_from_symmetric(op, 12);
  const Matrix x = random_panel(12, 5, 15);
  Matrix y_adapted, y_native;
  adapted(x, y_adapted);
  a.apply_block(x, y_native);
  EXPECT_EQ(y_adapted, y_native);
}

TEST(SketchFillBlock, MatchesMaterializedRows) {
  const Index r = 13;
  const Index m = 21;
  const rand::GaussianSketch materialized(r, m, 42);
  const rand::GaussianSketch lazy = rand::GaussianSketch::deferred(r, m, 42);
  for (const Index block : {1, 4, 5, 13}) {
    for (Index first = 0; first < r; first += block) {
      const Index count = std::min<Index>(block, r - first);
      Matrix panel;
      lazy.fill_block(first, count, panel);
      ASSERT_EQ(panel.rows(), m);
      ASSERT_EQ(panel.cols(), count);
      for (Index t = 0; t < count; ++t) {
        const auto row = materialized.row(first + t);
        for (Index i = 0; i < m; ++i) {
          EXPECT_EQ(panel(i, t), row[static_cast<std::size_t>(i)])
              << "block " << block << " row " << first + t;
        }
      }
    }
  }
}

TEST(SketchFillBlock, DeferredRejectsMaterializedOnlyCalls) {
  const rand::GaussianSketch lazy = rand::GaussianSketch::deferred(4, 6, 1);
  EXPECT_THROW(lazy.row(0), InvalidArgument);
  std::vector<Real> x(6, 1.0), y(4);
  EXPECT_THROW(lazy.apply(x, y), InvalidArgument);
  Matrix panel;
  EXPECT_THROW(lazy.fill_block(2, 3, panel), InvalidArgument);  // 2+3 > 4
}

TEST(FactorizedBlock, WeightedApplyBlockMatchesColumns) {
  const sparse::FactorizedSet set = random_set(14, 5, 20);
  rand::Rng rng(21);
  Vector weights(set.size());
  for (Index i = 0; i < set.size(); ++i) weights[i] = rng.uniform();
  weights[2] = 0;  // exercise the zero-weight skip
  const Matrix v = random_panel(14, 6, 22);
  Matrix y;
  sparse::FactorizedSet::BlockWorkspace workspace;
  set.weighted_apply_block(weights, v, y, workspace);
  Vector col(14), want(14);
  for (Index t = 0; t < 6; ++t) {
    linalg::panel_column(v, t, col);
    set.weighted_apply(weights, col, want);
    for (Index i = 0; i < 14; ++i) {
      EXPECT_NEAR(y(i, t), want[i], 1e-13 * (1 + std::abs(want[i])));
    }
  }
}

/// bigDotExp fixture: a factorized set plus a sparse Phi.
struct BigDotFixture {
  sparse::FactorizedSet set;
  sparse::Csr phi;

  explicit BigDotFixture(Index m, std::uint64_t seed)
      : set(random_set(m, 6, seed)) {
    linalg::Matrix dense = psdp::testing::random_psd(m, seed + 5);
    dense.scale(1.5);
    phi = sparse::Csr::from_dense(dense);
  }
};

TEST(BigDotExpBlocked, BlockSizeOneIsBitIdenticalToReference) {
  const BigDotFixture f(18, 30);
  core::BigDotExpOptions options;
  options.eps = 0.2;
  options.sketch_rows_override = 24;
  options.block_size = 1;
  const core::BigDotExpResult reference =
      core::big_dot_exp(f.phi, 2.0, f.set, options);
  EXPECT_EQ(reference.block_size, 1);
  // The operator overload resolves auto block size to the same reference
  // path; with the same seed every float must match bit for bit.
  const linalg::SymmetricOp op = [&f](const Vector& x, Vector& y) {
    f.phi.apply(x, y);
  };
  core::BigDotExpOptions auto_options = options;
  auto_options.block_size = 0;
  const core::BigDotExpResult via_op =
      core::big_dot_exp(op, 18, 2.0, f.set, auto_options);
  EXPECT_EQ(via_op.block_size, 1);
  EXPECT_EQ(reference.dots, via_op.dots);
  EXPECT_EQ(reference.trace_exp, via_op.trace_exp);
}

TEST(BigDotExpBlocked, BlockSizesAgreeWithinTolerance) {
  const BigDotFixture f(20, 31);
  core::BigDotExpOptions options;
  options.eps = 0.2;
  options.sketch_rows_override = 32;
  options.block_size = 1;
  const core::BigDotExpResult reference =
      core::big_dot_exp(f.phi, 2.0, f.set, options);
  for (const Index b : {2, 8, 32}) {
    core::BigDotExpOptions blocked = options;
    blocked.block_size = b;
    const core::BigDotExpResult r = core::big_dot_exp(f.phi, 2.0, f.set, blocked);
    EXPECT_EQ(r.block_size, b);
    EXPECT_EQ(r.sketch_rows, reference.sketch_rows);
    // Same seed => same sketch; only summation order differs.
    EXPECT_NEAR(r.trace_exp / reference.trace_exp, 1.0, 1e-10) << b;
    for (Index i = 0; i < f.set.size(); ++i) {
      EXPECT_NEAR(r.dots[i] / reference.dots[i], 1.0, 1e-10)
          << "block " << b << " dot " << i;
    }
  }
}

TEST(BigDotExpBlocked, ExactSketchBlockedMatchesReference) {
  const BigDotFixture f(12, 32);
  core::BigDotExpOptions options;
  options.eps = 0.05;  // small instance: JL formula asks for r >= m => exact
  core::BigDotExpOptions ref_options = options;
  ref_options.block_size = 1;
  const core::BigDotExpResult reference =
      core::big_dot_exp(f.phi, 1.5, f.set, ref_options);
  ASSERT_TRUE(reference.exact_sketch);
  const core::BigDotExpResult blocked =
      core::big_dot_exp(f.phi, 1.5, f.set, options);
  EXPECT_TRUE(blocked.exact_sketch);
  EXPECT_GT(blocked.block_size, 1);
  for (Index i = 0; i < f.set.size(); ++i) {
    EXPECT_NEAR(blocked.dots[i] / reference.dots[i], 1.0, 1e-11) << i;
  }
  EXPECT_NEAR(blocked.trace_exp / reference.trace_exp, 1.0, 1e-11);
}

TEST(BigDotExpBlocked, AutoBlockCappedAtSketchRows) {
  const BigDotFixture f(10, 33);
  core::BigDotExpOptions options;
  options.eps = 0.2;
  options.sketch_rows_override = 3;  // r < kDefaultBlockSize
  const core::BigDotExpResult r = core::big_dot_exp(f.phi, 1.0, f.set, options);
  EXPECT_EQ(r.block_size, 3);
}

TEST(BigDotExpBlocked, RejectsNegativeBlockSize) {
  const BigDotFixture f(8, 34);
  core::BigDotExpOptions options;
  options.block_size = -2;
  EXPECT_THROW(core::big_dot_exp(f.phi, 1.0, f.set, options), InvalidArgument);
}

TEST(TimeBlockKernel, WarmupRunsUntimedBeforeTheRepetitions) {
  int calls = 0;
  linalg::TimingOptions options;
  options.reps = 3;
  options.warmup = 2;
  const double seconds =
      linalg::time_block_kernel(options, [&] { ++calls; });
  EXPECT_EQ(calls, 5);  // 2 untimed warmup runs + 3 timed repetitions
  EXPECT_GE(seconds, 0.0);
}

TEST(TimeBlockKernel, ElapsedFloorExtendsAndCapsRepetitions) {
  // A near-instant body cannot reach a 2 ms floor in 1 rep: the sampler
  // keeps repeating -- but the 64-rep cap bounds it, so a mis-sized floor
  // cannot hang a tuner.
  int calls = 0;
  linalg::TimingOptions options;
  options.reps = 1;
  options.min_elapsed_seconds = 2e-3;
  linalg::time_block_kernel(options, [&] { ++calls; });
  EXPECT_GT(calls, 1);
  EXPECT_LE(calls, 64);
  // The int overload is the same sampler with no warmup and no floor.
  calls = 0;
  linalg::time_block_kernel(2, [&] { ++calls; });
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace psdp
