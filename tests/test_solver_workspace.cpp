// Workspace-reuse suite: sharing one SolverWorkspace across solver runs --
// and across *different* solver variants -- must produce iterates identical
// to fresh-workspace runs. This is the guard against stale-buffer bugs: a
// kernel that reads anything it did not overwrite this round (panel tails,
// old accumulators, a previous solve's dots) shows up here as a bitwise
// trajectory divergence.
#include <gtest/gtest.h>

#include "apps/generators.hpp"
#include "core/bucketed.hpp"
#include "core/decision.hpp"
#include "core/mixed.hpp"
#include "core/phased.hpp"
#include "rand/rng.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using linalg::Vector;

FactorizedPackingInstance test_instance(std::uint64_t seed) {
  apps::FactorizedOptions gen;
  gen.n = 12;
  gen.m = 24;
  gen.nnz_per_column = 4;
  gen.seed = seed;
  return apps::random_factorized(gen);
}

void expect_same_vector(const Vector& a, const Vector& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(a, b) << what << ": iterates differ";
}

TEST(SolverWorkspace, DecisionRunsAreIdenticalWithSharedWorkspace) {
  const FactorizedPackingInstance instance = test_instance(7).scaled(0.05);
  DecisionOptions fresh_options;
  fresh_options.eps = 0.2;
  const DecisionResult fresh1 = decision_factorized(instance, fresh_options);
  const DecisionResult fresh2 = decision_factorized(instance, fresh_options);
  // Determinism baseline: two fresh runs agree bitwise.
  expect_same_vector(fresh1.dual_x, fresh2.dual_x, "fresh vs fresh dual_x");

  SolverWorkspace shared;
  DecisionOptions shared_options = fresh_options;
  shared_options.workspace = &shared;
  const DecisionResult reused1 = decision_factorized(instance, shared_options);
  const DecisionResult reused2 = decision_factorized(instance, shared_options);

  EXPECT_EQ(fresh1.outcome, reused1.outcome);
  EXPECT_EQ(fresh1.iterations, reused1.iterations);
  expect_same_vector(fresh1.dual_x, reused1.dual_x, "fresh vs shared dual_x");
  expect_same_vector(fresh1.primal_dots, reused1.primal_dots,
                     "fresh vs shared primal_dots");
  // Second run on the now-dirty workspace: still identical.
  EXPECT_EQ(fresh1.iterations, reused2.iterations);
  expect_same_vector(fresh1.dual_x, reused2.dual_x,
                     "fresh vs shared (2nd run) dual_x");
}

TEST(SolverWorkspace, PhasedRunsAreIdenticalWithSharedWorkspace) {
  const FactorizedPackingInstance instance = test_instance(19).scaled(0.05);
  FactorizedPhasedOptions fresh_options;
  fresh_options.eps = 0.2;
  const PhasedResult fresh = decision_phased(instance, fresh_options);

  SolverWorkspace shared;
  FactorizedPhasedOptions shared_options = fresh_options;
  shared_options.workspace = &shared;
  const PhasedResult reused1 = decision_phased(instance, shared_options);
  const PhasedResult reused2 = decision_phased(instance, shared_options);

  EXPECT_EQ(fresh.outcome, reused1.outcome);
  EXPECT_EQ(fresh.iterations, reused1.iterations);
  EXPECT_EQ(fresh.phases, reused1.phases);
  expect_same_vector(fresh.dual_x, reused1.dual_x, "phased dual_x");
  EXPECT_EQ(fresh.iterations, reused2.iterations);
  expect_same_vector(fresh.dual_x, reused2.dual_x, "phased dual_x (2nd)");
}

TEST(SolverWorkspace, BucketedRunsAreIdenticalWithSharedWorkspace) {
  const FactorizedPackingInstance instance = test_instance(43).scaled(0.02);
  FactorizedBucketedOptions fresh_options;
  fresh_options.eps = 0.15;
  const BucketedResult fresh = decision_bucketed(instance, fresh_options);

  SolverWorkspace shared;
  FactorizedBucketedOptions shared_options = fresh_options;
  shared_options.workspace = &shared;
  const BucketedResult reused1 = decision_bucketed(instance, shared_options);
  const BucketedResult reused2 = decision_bucketed(instance, shared_options);

  EXPECT_EQ(fresh.outcome, reused1.outcome);
  EXPECT_EQ(fresh.iterations, reused1.iterations);
  expect_same_vector(fresh.dual_x, reused1.dual_x, "bucketed dual_x");
  EXPECT_EQ(fresh.iterations, reused2.iterations);
  expect_same_vector(fresh.dual_x, reused2.dual_x, "bucketed dual_x (2nd)");
}

TEST(SolverWorkspace, OneWorkspaceSharedAcrossAllVariants) {
  // The hardest staleness stress: decision, phased and bucketed runs (with
  // different panel shapes, constraint counts of accumulators touched, and
  // iteration counts) all recycle ONE workspace back to back; every
  // trajectory must match its fresh-workspace twin.
  const FactorizedPackingInstance a = test_instance(7).scaled(0.05);
  const FactorizedPackingInstance b = test_instance(19).scaled(0.03);

  DecisionOptions d_fresh;
  d_fresh.eps = 0.2;
  FactorizedPhasedOptions p_fresh;
  p_fresh.eps = 0.25;
  FactorizedBucketedOptions k_fresh;
  k_fresh.eps = 0.15;

  const DecisionResult rd = decision_factorized(a, d_fresh);
  const PhasedResult rp = decision_phased(b, p_fresh);
  const BucketedResult rk = decision_bucketed(a, k_fresh);

  SolverWorkspace shared;
  DecisionOptions d_shared = d_fresh;
  d_shared.workspace = &shared;
  FactorizedPhasedOptions p_shared = p_fresh;
  p_shared.workspace = &shared;
  FactorizedBucketedOptions k_shared = k_fresh;
  k_shared.workspace = &shared;

  const DecisionResult rd2 = decision_factorized(a, d_shared);
  const PhasedResult rp2 = decision_phased(b, p_shared);
  const BucketedResult rk2 = decision_bucketed(a, k_shared);
  // And once more in reverse order, workspace dirtier still.
  const BucketedResult rk3 = decision_bucketed(a, k_shared);
  const DecisionResult rd3 = decision_factorized(a, d_shared);

  expect_same_vector(rd.dual_x, rd2.dual_x, "decision after fresh ws");
  expect_same_vector(rp.dual_x, rp2.dual_x, "phased after decision");
  expect_same_vector(rk.dual_x, rk2.dual_x, "bucketed after phased");
  expect_same_vector(rk.dual_x, rk3.dual_x, "bucketed repeat");
  expect_same_vector(rd.dual_x, rd3.dual_x, "decision after bucketed");
  EXPECT_EQ(rd.iterations, rd3.iterations);
}

TEST(SolverWorkspace, MixedSolveAcceptsSharedWorkspace) {
  MixedFactorizedInstance instance;
  instance.packing = test_instance(3).scaled(0.05);
  rand::Rng rng(23);
  for (Index i = 0; i < instance.packing.size(); ++i) {
    Vector d(4);
    for (Index j = 0; j < d.size(); ++j) d[j] = rng.uniform(0.5, 1.5);
    instance.covering.push_back(std::move(d));
  }
  MixedFactorizedOptions fresh_options;
  fresh_options.eps = 0.2;
  const MixedResult fresh = solve_mixed(instance, fresh_options);

  SolverWorkspace shared;
  MixedFactorizedOptions shared_options = fresh_options;
  shared_options.workspace = &shared;
  const MixedResult reused = solve_mixed(instance, shared_options);
  EXPECT_EQ(fresh.outcome, reused.outcome);
  EXPECT_EQ(fresh.iterations, reused.iterations);
  expect_same_vector(fresh.x, reused.x, "mixed x");
}

TEST(SolverWorkspace, DirectBigDotExpReuseMatchesFreshWorkspace) {
  // Kernel-level variant of the same property, across changing panel
  // widths and changing instances on one workspace.
  const FactorizedPackingInstance inst_a = test_instance(5);
  const FactorizedPackingInstance inst_b = test_instance(29);
  const Vector xa = Vector(inst_a.size(), 0.01);
  const sparse::Csr phi_a = inst_a.set().weighted_sum(xa);
  const sparse::Csr phi_b = inst_b.set().weighted_sum(
      Vector(inst_b.size(), 0.02));

  SolverWorkspace shared;
  for (const Index block : {8, 4, 16, 3}) {
    BigDotExpOptions options;
    options.eps = 0.25;
    options.block_size = block;
    options.sketch_rows_override = 24;
    options.taylor_degree_override = 9;

    const linalg::SymmetricOp op_a = [&phi_a](const Vector& v, Vector& y) {
      phi_a.apply(v, y);
    };
    const linalg::BlockOp bop_a = [&phi_a](const linalg::Matrix& v,
                                           linalg::Matrix& y) {
      phi_a.apply_block(v, y);
    };
    BigDotExpResult reused;
    big_dot_exp(op_a, bop_a, inst_a.dim(), 2.0, inst_a.set(), options,
                shared, reused);
    const BigDotExpResult fresh = big_dot_exp(phi_a, 2.0, inst_a.set(),
                                              options);
    EXPECT_EQ(fresh.dots, reused.dots) << "block " << block;
    EXPECT_EQ(fresh.trace_exp, reused.trace_exp) << "block " << block;

    // Interleave the other instance so shapes keep changing.
    const BigDotExpResult other = big_dot_exp(phi_b, 2.0, inst_b.set(),
                                              options);
    BigDotExpResult other_reused;
    const linalg::SymmetricOp op_b = [&phi_b](const Vector& v, Vector& y) {
      phi_b.apply(v, y);
    };
    const linalg::BlockOp bop_b = [&phi_b](const linalg::Matrix& v,
                                           linalg::Matrix& y) {
      phi_b.apply_block(v, y);
    };
    big_dot_exp(op_b, bop_b, inst_b.dim(), 2.0, inst_b.set(), options,
                shared, other_reused);
    EXPECT_EQ(other.dots, other_reused.dots) << "block " << block;
  }
}

}  // namespace
}  // namespace psdp::core
