#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "test_helpers.hpp"

namespace psdp::sparse {
namespace {

using psdp::testing::random_symmetric;

Csr small_example() {
  // [1 0 2]
  // [0 0 0]
  // [3 4 0]
  return Csr::from_triplets(3, 3, {{0, 0, 1}, {0, 2, 2}, {2, 0, 3}, {2, 1, 4}});
}

TEST(Csr, FromTripletsBasicLayout) {
  const Csr m = small_example();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_TRUE(m.row_cols(1).empty());
  EXPECT_EQ(m.row_cols(2).size(), 2u);
}

TEST(Csr, DuplicateTripletsAreSummed) {
  const Csr m = Csr::from_triplets(2, 2, {{0, 0, 1}, {0, 0, 2}, {1, 1, -1}, {1, 1, 1}});
  EXPECT_EQ(m.nnz(), 1);  // the (1,1) entries cancel and are dropped
  EXPECT_EQ(m.to_dense()(0, 0), 3);
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(Csr::from_triplets(2, 2, {{2, 0, 1}}), InvalidArgument);
  EXPECT_THROW(Csr::from_triplets(2, 2, {{0, -1, 1}}), InvalidArgument);
}

TEST(Csr, DenseRoundTrip) {
  const linalg::Matrix dense = random_symmetric(7, 3);
  const Csr sparse = Csr::from_dense(dense);
  EXPECT_MATRIX_NEAR(sparse.to_dense(), dense, 0);
}

TEST(Csr, FromDenseDropsSmallEntries) {
  linalg::Matrix dense(2, 2);
  dense(0, 0) = 1;
  dense(1, 1) = 1e-15;
  EXPECT_EQ(Csr::from_dense(dense, 1e-12).nnz(), 1);
}

TEST(Csr, IdentityActsAsIdentity) {
  const Csr eye = Csr::identity(5);
  EXPECT_EQ(eye.nnz(), 5);
  EXPECT_EQ(eye.trace(), 5);
  linalg::Vector x{1, 2, 3, 4, 5};
  const linalg::Vector y = eye.apply(x);
  EXPECT_EQ(y, x);
}

TEST(Csr, ApplyMatchesDense) {
  const linalg::Matrix dense = random_symmetric(9, 4);
  const Csr sparse = Csr::from_dense(dense);
  linalg::Vector x(9);
  for (Index i = 0; i < 9; ++i) x[i] = static_cast<Real>(i * i % 7) - 3;
  const linalg::Vector y1 = sparse.apply(x);
  const linalg::Vector y2 = linalg::matvec(dense, x);
  for (Index i = 0; i < 9; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Csr, ApplyTransposeMatchesDense) {
  linalg::Matrix dense(3, 5);
  dense(0, 1) = 2;
  dense(1, 4) = -1;
  dense(2, 0) = 3;
  const Csr sparse = Csr::from_dense(dense);
  linalg::Vector x{1, 2, 3};
  const linalg::Vector y1 = sparse.apply_transpose(x);
  const linalg::Vector y2 = linalg::matvec(dense.transposed(), x);
  for (Index i = 0; i < 5; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Csr, ApplyDimensionMismatchThrows) {
  const Csr m = small_example();
  linalg::Vector wrong(2);
  linalg::Vector y;
  EXPECT_THROW(m.apply(wrong, y), InvalidArgument);
  EXPECT_THROW(m.apply_transpose(wrong, y), InvalidArgument);
}

TEST(Csr, ScaleMultipliesValues) {
  Csr m = small_example();
  m.scale(2);
  EXPECT_EQ(m.to_dense()(2, 1), 8);
}

TEST(Csr, TraceAndFrobenius) {
  const Csr m = small_example();
  EXPECT_EQ(m.trace(), 1);  // only (0,0) on the diagonal
  EXPECT_EQ(m.frobenius_norm2(), 1 + 4 + 9 + 16);
  EXPECT_THROW(Csr::from_triplets(2, 3, {}).trace(), InvalidArgument);
}

TEST(Csr, AddScaledUnionsSupports) {
  const Csr a = Csr::from_triplets(2, 2, {{0, 0, 1}});
  const Csr b = Csr::from_triplets(2, 2, {{0, 0, 2}, {1, 1, 3}});
  const Csr c = add_scaled(a, b, 0.5);
  EXPECT_EQ(c.to_dense()(0, 0), 2);
  EXPECT_EQ(c.to_dense()(1, 1), 1.5);
  EXPECT_THROW(add_scaled(a, Csr::from_triplets(3, 3, {}), 1.0),
               InvalidArgument);
}

TEST(Csr, EmptyMatrix) {
  const Csr m = Csr::from_triplets(4, 4, {});
  EXPECT_EQ(m.nnz(), 0);
  const linalg::Vector y = m.apply(linalg::Vector(4, 1.0));
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(y[i], 0);
}

TEST(Csr, LargeParallelApplyMatchesSerial) {
  // Exercise the parallel SpMV path with enough rows to split chunks.
  const Index n = 4000;
  std::vector<Triplet> triplets;
  for (Index i = 0; i < n; ++i) {
    triplets.push_back({i, i, 2.0});
    if (i + 1 < n) triplets.push_back({i, i + 1, -1.0});
    if (i > 0) triplets.push_back({i, i - 1, -1.0});
  }
  const Csr lap = Csr::from_triplets(n, n, std::move(triplets));
  linalg::Vector x(n, 1.0);
  const linalg::Vector y = lap.apply(x);
  EXPECT_NEAR(y[0], 1.0, 1e-14);        // boundary row
  EXPECT_NEAR(y[n / 2], 0.0, 1e-14);    // interior rows cancel
  EXPECT_NEAR(y[n - 1], 1.0, 1e-14);
}

}  // namespace
}  // namespace psdp::sparse
