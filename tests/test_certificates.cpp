#include <gtest/gtest.h>

#include "core/certificates.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using psdp::testing::random_psd;

PackingInstance diag_instance() {
  // A_1 = diag(2, 0), A_2 = diag(0, 4): sum x_i A_i <= I iff x_1 <= 1/2 and
  // x_2 <= 1/4, so OPT = 3/4.
  Matrix a1(2, 2), a2(2, 2);
  a1(0, 0) = 2;
  a2(1, 1) = 4;
  return PackingInstance({a1, a2});
}

TEST(CheckDual, AcceptsFeasiblePoint) {
  const DualCheck c = check_dual(diag_instance(), Vector{0.5, 0.25});
  EXPECT_TRUE(c.feasible);
  EXPECT_NEAR(c.value, 0.75, 1e-14);
  EXPECT_NEAR(c.lambda_max, 1.0, 1e-10);
}

TEST(CheckDual, RejectsInfeasiblePoint) {
  const DualCheck c = check_dual(diag_instance(), Vector{1.0, 0.0});
  EXPECT_FALSE(c.feasible);
  EXPECT_NEAR(c.lambda_max, 2.0, 1e-10);
}

TEST(CheckDual, RejectsNegativeCoordinates) {
  const DualCheck c = check_dual(diag_instance(), Vector{-0.1, 0.1});
  EXPECT_FALSE(c.feasible);
}

TEST(CheckDual, SizeMismatchThrows) {
  EXPECT_THROW(check_dual(diag_instance(), Vector{1.0}), InvalidArgument);
}

TEST(CheckDual, FactorizedOverloadAgreesWithDense) {
  std::vector<sparse::FactorizedPsd> items;
  items.push_back(sparse::FactorizedPsd::rank_one(Vector{std::sqrt(2.0), 0}));
  items.push_back(sparse::FactorizedPsd::rank_one(Vector{0, 2.0}));
  const FactorizedPackingInstance fact{sparse::FactorizedSet(std::move(items))};
  const Vector x{0.5, 0.25};
  const DualCheck cf = check_dual(fact, x);
  const DualCheck cd = check_dual(fact.to_dense(), x);
  EXPECT_EQ(cf.feasible, cd.feasible);
  EXPECT_NEAR(cf.lambda_max, cd.lambda_max, 1e-10);
}

TEST(CheckPrimal, AcceptsValidCertificate) {
  // Y = diag(1/2, 1/2): trace 1, A_1 . Y = 1, A_2 . Y = 2.
  Matrix y(2, 2);
  y(0, 0) = 0.5;
  y(1, 1) = 0.5;
  const PrimalCheck c = check_primal(diag_instance(), y);
  EXPECT_TRUE(c.feasible);
  EXPECT_NEAR(c.trace, 1.0, 1e-14);
  EXPECT_NEAR(c.min_dot, 1.0, 1e-12);
  EXPECT_EQ(c.argmin, 0);
}

TEST(CheckPrimal, RejectsWrongTrace) {
  Matrix y = Matrix::identity(2);  // trace 2
  EXPECT_FALSE(check_primal(diag_instance(), y).feasible);
}

TEST(CheckPrimal, RejectsLowDot) {
  Matrix y(2, 2);
  y(0, 0) = 1.0;  // A_2 . Y = 0
  const PrimalCheck c = check_primal(diag_instance(), y);
  EXPECT_FALSE(c.feasible);
  EXPECT_EQ(c.argmin, 1);
}

TEST(CheckPrimal, RejectsIndefiniteY) {
  Matrix y(2, 2);
  y(0, 0) = 2.0;
  y(1, 1) = -1.0;
  EXPECT_FALSE(check_primal(diag_instance(), y).feasible);
}

TEST(DualityProduct, BoundedByOneForFeasiblePairs) {
  // For feasible dual x and trace-1 PSD Y: (1^T x) min_dot <= 1.
  const PackingInstance inst = diag_instance();
  const Vector x{0.5, 0.25};  // feasible
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Matrix y = random_psd(2, seed);
    y.scale(1 / linalg::trace(y));  // trace 1
    EXPECT_LE(duality_product(inst, x, y), 1 + 1e-10) << "seed " << seed;
  }
}

}  // namespace
}  // namespace psdp::core
