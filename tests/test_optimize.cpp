// Tests for approxPSDP (Theorem 1.1): the binary-search reduction, bracket
// validity, and end-to-end covering optimization.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/beamforming.hpp"
#include "apps/generators.hpp"
#include "apps/graph.hpp"
#include "core/certificates.hpp"
#include "core/optimize.hpp"
#include "linalg/eig.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

// Diagonal instance with known OPT = sum_i 1/d_i (independent axes).
PackingInstance axes_instance(const std::vector<Real>& d) {
  const Index m = static_cast<Index>(d.size());
  std::vector<Matrix> constraints;
  for (Index i = 0; i < m; ++i) {
    Matrix a(m, m);
    a(i, i) = d[static_cast<std::size_t>(i)];
    constraints.push_back(std::move(a));
  }
  return PackingInstance(std::move(constraints));
}

TEST(ApproxPacking, BracketsKnownOptimumOnAxesInstance) {
  const std::vector<Real> d = {2.0, 4.0, 0.5};
  const Real opt = 1 / 2.0 + 1 / 4.0 + 1 / 0.5;  // 2.75
  OptimizeOptions options;
  options.eps = 0.15;
  const PackingOptimum r = approx_packing(axes_instance(d), options);
  EXPECT_LE(r.lower, opt * (1 + 1e-9));
  EXPECT_GE(r.upper, opt * (1 - 1e-9));
  EXPECT_LE(r.upper / r.lower, 1 + options.eps + 0.01);
}

TEST(ApproxPacking, ExtremeTraceInstanceKeepsBracketFinite) {
  // Regression for the bracket-search midpoint: with min_i Tr A_i ~ 1e-300
  // the initial bracket endpoints sit near 1e300, so the old
  // sqrt(lower * upper) midpoint overflowed the product to inf (and the
  // mirrored-magnitude instance underflowed it to 0) even though the
  // midpoint itself -- and every probe instance scaled by it -- is
  // perfectly representable. sqrt(lower) * sqrt(upper) is overflow-free.
  const std::vector<Real> d = {2.0, 4.0, 0.5};
  const Real base_opt = 1 / 2.0 + 1 / 4.0 + 1 / 0.5;  // 2.75
  OptimizeOptions options;
  options.eps = 0.15;
  {
    // Traces ~1e-300: bracket endpoints ~1e300, product overflows.
    const PackingInstance tiny = axes_instance(d).scaled(1e-300);
    const Real opt = base_opt * 1e300;  // OPT(s A) = OPT(A) / s
    const PackingOptimum r = approx_packing(tiny, options);
    ASSERT_TRUE(std::isfinite(r.lower));
    ASSERT_TRUE(std::isfinite(r.upper));
    EXPECT_LE(r.lower, opt * (1 + 1e-9));
    EXPECT_GE(r.upper, opt * (1 - 1e-9));
    EXPECT_LE(r.upper / r.lower, 1 + options.eps + 0.01);
  }
  {
    // Traces ~1e300: bracket endpoints ~1e-300, product underflows to 0.
    const PackingInstance huge = axes_instance(d).scaled(1e300);
    const Real opt = base_opt * 1e-300;
    const PackingOptimum r = approx_packing(huge, options);
    ASSERT_GT(r.lower, 0);
    ASSERT_TRUE(std::isfinite(r.upper));
    EXPECT_LE(r.lower, opt * (1 + 1e-9));
    EXPECT_GE(r.upper, opt * (1 - 1e-9));
    EXPECT_LE(r.upper / r.lower, 1 + options.eps + 0.01);
  }
}

TEST(ApproxPacking, BestXIsExactlyFeasible) {
  const PackingInstance inst = axes_instance({1.0, 3.0});
  OptimizeOptions options;
  options.eps = 0.2;
  const PackingOptimum r = approx_packing(inst, options);
  const DualCheck check = check_dual(inst, r.best_x, 1e-9);
  EXPECT_TRUE(check.feasible) << "lambda_max=" << check.lambda_max;
  EXPECT_NEAR(check.value, r.lower, 1e-9 * (1 + r.lower));
}

TEST(ApproxPacking, IdenticalConstraintsHaveOptOneOverLambdaMax) {
  // A_i = A for all i: OPT = 1/lambda_max(A).
  const Matrix a = Matrix::diagonal(Vector{0.25, 0.125});
  const PackingInstance inst({a, a, a});
  OptimizeOptions options;
  options.eps = 0.15;
  const PackingOptimum r = approx_packing(inst, options);
  EXPECT_LE(r.lower, 4.0 * (1 + 1e-9));
  EXPECT_GE(r.upper, 4.0 * (1 - 1e-9));
}

TEST(ApproxPacking, Figure1InstanceBracketsItsOptimum) {
  OptimizeOptions options;
  options.eps = 0.2;
  const PackingInstance fig1 = apps::figure1_instance();
  const PackingOptimum r = approx_packing(fig1, options);
  EXPECT_GT(r.lower, 0);
  EXPECT_GE(r.upper, r.lower);
  // Dual feasibility of the witness.
  EXPECT_TRUE(check_dual(fig1, r.best_x, 1e-9).feasible);
  // The caption's arithmetic puts OPT near 2.
  EXPECT_GT(r.upper, 1.5);
  EXPECT_LT(r.lower, 3.0);
}

TEST(ApproxPacking, FactorizedPathBracketsLikeDense) {
  apps::FactorizedOptions gen;
  gen.n = 10;
  gen.m = 8;
  gen.nnz_per_column = 4;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  OptimizeOptions options;
  options.eps = 0.25;
  const PackingOptimum rf = approx_packing(fact, options);
  const PackingOptimum rd = approx_packing(fact.to_dense(), options);
  // Brackets must overlap (both contain OPT).
  EXPECT_LE(rf.lower, rd.upper * (1 + 1e-6));
  EXPECT_LE(rd.lower, rf.upper * (1 + 1e-6));
  // And the factorized dual must verify against the exact checker.
  EXPECT_TRUE(check_dual(fact, rf.best_x, 1e-6).feasible);
}

TEST(ApproxPacking, TightEpsShrinksBracket) {
  const PackingInstance inst = axes_instance({1.0, 2.0, 4.0});
  OptimizeOptions loose;
  loose.eps = 0.5;
  OptimizeOptions tight;
  tight.eps = 0.05;
  const Real loose_ratio =
      approx_packing(inst, loose).upper / approx_packing(inst, loose).lower;
  const PackingOptimum t = approx_packing(inst, tight);
  EXPECT_LE(t.upper / t.lower, loose_ratio + 1e-9);
  // The default probe-eps floor (0.03, see probe_decision_options) bounds
  // how far below ~1.03 the certificate gap can go; allow for it.
  EXPECT_LE(t.upper / t.lower, 1 + tight.eps + 0.025);
}

TEST(ApproxPacking, ReportsSearchEffort) {
  const PackingInstance inst = axes_instance({1.0, 2.0});
  OptimizeOptions options;
  options.eps = 0.2;
  const PackingOptimum r = approx_packing(inst, options);
  EXPECT_GT(r.decision_calls, 0);
  EXPECT_GT(r.total_iterations, 0);
  EXPECT_LE(r.decision_calls, options.max_probes + 6);
}

TEST(ApproxPacking, RejectsBadEps) {
  OptimizeOptions options;
  options.eps = 0;
  EXPECT_THROW(approx_packing(axes_instance({1.0}), options), InvalidArgument);
}

// ------------------------------------------------------------------
// Covering optimization (the paper's primal form).
// ------------------------------------------------------------------

TEST(ApproxCovering, BeamformingSolutionIsFeasibleAndBracketed) {
  apps::BeamformingOptions gen;
  gen.users = 6;
  gen.antennas = 4;
  const CoveringProblem problem = apps::beamforming_problem(gen);
  OptimizeOptions options;
  options.eps = 0.2;
  const CoveringOptimum r = approx_covering(problem, options);

  // Feasibility: every user's demand is met (tiny tolerance for roundoff).
  for (Index i = 0; i < problem.size(); ++i) {
    EXPECT_GE(linalg::frobenius_dot(
                  problem.constraints[static_cast<std::size_t>(i)], r.y),
              problem.rhs[i] * (1 - 1e-6))
        << "user " << i;
  }
  // Y is PSD.
  const auto eig = linalg::jacobi_eig(r.y);
  EXPECT_GE(eig.eigenvalues[gen.antennas - 1], -1e-8);
  // Objective consistency and the duality sandwich.
  EXPECT_NEAR(r.objective, linalg::frobenius_dot(problem.objective, r.y),
              1e-6 * (1 + r.objective));
  EXPECT_LE(r.lower_bound, r.objective * (1 + 1e-9));
  EXPECT_GT(r.lower_bound, 0);
}

TEST(ApproxCovering, ApproximationRatioWithinTarget) {
  apps::BeamformingOptions gen;
  gen.users = 5;
  gen.antennas = 3;
  gen.seed = 77;
  const CoveringProblem problem = apps::beamforming_problem(gen);
  OptimizeOptions options;
  options.eps = 0.15;
  const CoveringOptimum r = approx_covering(problem, options);
  // objective <= (1 + O(eps)) OPT and OPT >= lower_bound.
  EXPECT_LE(r.objective / r.lower_bound, 1 + options.eps + 0.1);
}

TEST(ApproxCovering, GraphEdgeCoveringFeasible) {
  const apps::Graph g = apps::cycle_graph(5);
  const CoveringProblem problem = apps::edge_covering_problem(g);
  OptimizeOptions options;
  options.eps = 0.25;
  const CoveringOptimum r = approx_covering(problem, options);
  for (Index e = 0; e < problem.size(); ++e) {
    EXPECT_GE(linalg::frobenius_dot(
                  problem.constraints[static_cast<std::size_t>(e)], r.y),
              1 - 1e-6)
        << "edge " << e;
  }
}

TEST(ApproxCovering, ScalesWithRhs) {
  // Doubling all demands should roughly double the optimal power.
  apps::BeamformingOptions gen;
  gen.users = 4;
  gen.antennas = 3;
  const CoveringProblem p1 = apps::beamforming_problem(gen);
  gen.demand = 2;
  const CoveringProblem p2 = apps::beamforming_problem(gen);
  OptimizeOptions options;
  options.eps = 0.15;
  const Real v1 = approx_covering(p1, options).objective;
  const Real v2 = approx_covering(p2, options).objective;
  EXPECT_NEAR(v2 / v1, 2.0, 0.4);
}

}  // namespace
}  // namespace psdp::core

namespace psdp::core {
namespace {

TEST(ApproxPacking, DiagonalLpConvergesToAnalyticOptimum) {
  // The positive-LP special case with an exactly-known optimum: the full
  // optimization pipeline must bracket it within (1 + eps)-ish.
  apps::DiagonalLpOptions gen;
  gen.groups = 5;
  gen.per_group = 4;
  const apps::DiagonalLpInstance lp = apps::diagonal_lp(gen);
  OptimizeOptions options;
  options.eps = 0.1;
  const PackingOptimum r = approx_packing(lp.instance, options);
  EXPECT_LE(r.lower, lp.opt * (1 + 1e-9));
  EXPECT_GE(r.upper, lp.opt * (1 - 1e-9));
  EXPECT_LE(r.upper / r.lower, 1 + options.eps + 0.03);
  EXPECT_TRUE(check_dual(lp.instance, r.best_x, 1e-9).feasible);
}

TEST(ApproxPacking, ExpStrideProducesConsistentBrackets) {
  // The lazy-exponential ablation must not break optimization: brackets
  // from stride 1 and stride 8 probes must overlap (both contain OPT).
  const apps::DiagonalLpInstance lp = apps::diagonal_lp({});
  OptimizeOptions plain;
  plain.eps = 0.2;
  OptimizeOptions lazy = plain;
  lazy.decision.exp_stride = 8;
  const PackingOptimum r1 = approx_packing(lp.instance, plain);
  const PackingOptimum r8 = approx_packing(lp.instance, lazy);
  EXPECT_LE(r1.lower, r8.upper * (1 + 1e-9));
  EXPECT_LE(r8.lower, r1.upper * (1 + 1e-9));
  EXPECT_LE(r1.lower, lp.opt * (1 + 1e-9));
  EXPECT_LE(r8.lower, lp.opt * (1 + 1e-9));
}

}  // namespace
}  // namespace psdp::core
