// The SIMD dispatch seam and its contracts (see src/simd/simd.hpp):
//   * enumeration/forcing: every compiled backend is listed, ScopedIsa
//     forces and restores, names round-trip;
//   * the forced-scalar backend IS the pre-SIMD kernel set -- bitwise
//     identical to inlined copies of the original loops, whatever the
//     width or thread count (the anchor that lets the vector backends
//     evolve without ever moving the reference results);
//   * every vector backend matches the scalar backend to FMA rounding on
//     all kernels, across widths (including non-power-of-two) and thread
//     counts;
//   * the float32 sketch-panel mode of big_dot_exp stays within
//     certificate tolerance of the double reference, engages only when
//     every gate holds, and keeps the (1 +- eps) certificates of every
//     solver variant sound on the bench instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/generators.hpp"
#include "core/bigdotexp.hpp"
#include "core/certificates.hpp"
#include "core/optimize.hpp"
#include "linalg/taylor.hpp"
#include "par/parallel.hpp"
#include "rand/rng.hpp"
#include "simd/simd.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernel_plan.hpp"
#include "test_helpers.hpp"

namespace psdp {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// RAII guard: restore the global thread count on scope exit.
struct ThreadGuard {
  int before = par::num_threads();
  ~ThreadGuard() { par::set_num_threads(before); }
};

/// Random rows x cols pattern, ~1.5 entries per row at random columns.
sparse::Csr random_sparse(Index rows, Index cols, std::uint64_t seed) {
  rand::Rng rng(seed);
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < rows; ++i) {
    triplets.push_back(
        {i, static_cast<Index>(rng.uniform_index(cols)), rng.normal()});
    if (i % 2 == 0) {
      triplets.push_back(
          {i, static_cast<Index>(rng.uniform_index(cols)), rng.normal()});
    }
  }
  return sparse::Csr::from_triplets(rows, cols, std::move(triplets));
}

Matrix random_panel(Index rows, Index b, std::uint64_t seed) {
  rand::Rng rng(seed);
  Matrix x(rows, b);
  for (Index i = 0; i < rows; ++i) {
    for (Index t = 0; t < b; ++t) x(i, t) = rng.normal();
  }
  return x;
}

/// Inlined copy of the pre-SIMD apply_block inner loop (row-major SpMM):
/// zero the output row, then one separate multiply+add per entry in entry
/// order. The forced-scalar backend must reproduce this bitwise.
Matrix reference_spmm(const sparse::Csr& a, const Matrix& x) {
  const Index b = x.cols();
  Matrix y(a.rows(), b);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (Index t = 0; t < b; ++t) y(i, t) = 0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Real v = vals[k];
      for (Index t = 0; t < b; ++t) y(i, t) += v * x(cols[k], t);
    }
  }
  return y;
}

/// Inlined copy of the pre-SIMD transpose-index gather: one serial
/// ascending-row reduction per output row (the CSC index stores each
/// column's entries in ascending row order, so walking the CSR rows in
/// order per output column reproduces the same accumulation chain).
Matrix reference_gather(const sparse::Csr& a, const Matrix& x) {
  const Index b = x.cols();
  Matrix y(a.cols(), b);
  std::vector<Real> acc(static_cast<std::size_t>(b));
  for (Index j = 0; j < a.cols(); ++j) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (Index i = 0; i < a.rows(); ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] != j) continue;
        const Real v = vals[k];
        for (Index t = 0; t < b; ++t) acc[static_cast<std::size_t>(t)] += v * x(i, t);
      }
    }
    for (Index t = 0; t < b; ++t) y(j, t) = acc[static_cast<std::size_t>(t)];
  }
  return y;
}

const Index kWidths[] = {1, 2, 3, 4, 5, 8, 16, 31, 32};

TEST(SimdDispatch, EnumeratesBackendsAndRoundTripsNames) {
  const std::vector<simd::Isa> compiled = simd::compiled_isas();
  ASSERT_FALSE(compiled.empty());
  // The scalar reference backend is always compiled in; the list is in
  // dispatch preference order (best first), so scalar closes it.
  EXPECT_EQ(compiled.back(), simd::Isa::kScalar);
  EXPECT_TRUE(simd::isa_available(simd::Isa::kScalar));
  bool active_listed = false;
  for (const simd::Isa isa : compiled) {
    simd::Isa parsed = simd::Isa::kScalar;
    ASSERT_TRUE(simd::isa_from_name(simd::isa_name(isa), parsed));
    EXPECT_EQ(parsed, isa);
    active_listed = active_listed || isa == simd::active_isa();
  }
  EXPECT_TRUE(active_listed);
  simd::Isa junk = simd::Isa::kScalar;
  EXPECT_FALSE(simd::isa_from_name("mmx", junk));
}

TEST(SimdDispatch, ScopedIsaForcesAndRestores) {
  const simd::Isa before = simd::active_isa();
  for (const simd::Isa isa : simd::compiled_isas()) {
    simd::ScopedIsa forced(isa);
    EXPECT_EQ(simd::active_isa(), isa);
    const simd::KernelTable& table = simd::active_kernels();
    EXPECT_NE(table.spmm_rows, nullptr);
    EXPECT_NE(table.gather_panel, nullptr);
    EXPECT_NE(table.sum_sq_f, nullptr);
  }
  EXPECT_EQ(simd::active_isa(), before);
}

TEST(SimdKernels, ForcedScalarMatchesReferenceLoopsBitwise) {
  ThreadGuard guard;
  simd::ScopedIsa forced(simd::Isa::kScalar);
  sparse::Csr a = random_sparse(512, 24, 17);
  a.build_transpose_index();
  for (const Index b : kWidths) {
    const Matrix x_cols = random_panel(a.cols(), b, 100 + b);
    const Matrix x_rows = random_panel(a.rows(), b, 200 + b);
    for (const int threads : {1, 3}) {
      par::set_num_threads(threads);
      Matrix y;
      a.apply_block(x_cols, y);
      const Matrix spmm_ref = reference_spmm(a, x_cols);
      for (Index i = 0; i < y.rows(); ++i) {
        for (Index t = 0; t < b; ++t) EXPECT_EQ(y(i, t), spmm_ref(i, t));
      }
      Matrix yt;
      a.apply_transpose_block_indexed(x_rows, yt);
      const Matrix gather_ref = reference_gather(a, x_rows);
      for (Index j = 0; j < yt.rows(); ++j) {
        for (Index t = 0; t < b; ++t) EXPECT_EQ(yt(j, t), gather_ref(j, t));
      }
    }
  }
}

TEST(SimdKernels, VectorBackendsMatchScalarWithinRounding) {
  ThreadGuard guard;
  sparse::Csr a = random_sparse(512, 24, 29);
  a.build_transpose_index();
  // FMA-contraction rounding only: each output element is a short
  // reduction over O(1) terms, so the absolute gap stays near machine eps.
  const Real tol = 1e-9;
  for (const simd::Isa isa : simd::compiled_isas()) {
    simd::ScopedIsa forced(isa);
    for (const Index b : kWidths) {
      const Matrix x_cols = random_panel(a.cols(), b, 300 + b);
      const Matrix x_rows = random_panel(a.rows(), b, 400 + b);
      Matrix y, yt, yseg, yplan;
      std::vector<Real> partial;
      a.apply_block(x_cols, y);
      a.apply_transpose_block_indexed(x_rows, yt);
      if (a.has_segment_index()) a.apply_transpose_block_segmented(x_rows, yseg);
      a.apply_transpose_block(x_rows, yplan, partial);
      Matrix y_ref, yt_ref;
      {
        simd::ScopedIsa scalar(simd::Isa::kScalar);
        a.apply_block(x_cols, y_ref);
        a.apply_transpose_block_indexed(x_rows, yt_ref);
      }
      EXPECT_MATRIX_NEAR(y, y_ref, tol);
      EXPECT_MATRIX_NEAR(yt, yt_ref, tol);
      if (a.has_segment_index()) {
        // Within one ISA, the segmented gather stays bitwise identical to
        // the plain gather -- same per-element reduction chain.
        for (Index j = 0; j < yt.rows(); ++j) {
          for (Index t = 0; t < b; ++t) EXPECT_EQ(yseg(j, t), yt(j, t));
        }
      }
      EXPECT_MATRIX_NEAR(yplan, yt, 0.0);  // plan picks among the gathers
    }
    // The fused Taylor sweep through the same dispatch seam.
    for (const int threads : {1, 3}) {
      par::set_num_threads(threads);
      const sparse::Csr sq = random_sparse(96, 96, 31);
      const linalg::BlockOp sq_op = [&sq](const Matrix& x, Matrix& y) {
        sq.apply_block(x, y);
      };
      const Matrix x = random_panel(96, 8, 41);
      Matrix y, y_ref;
      linalg::TaylorBlockWorkspace ws, ws_ref;
      linalg::apply_exp_taylor_block(sq_op, 12, x, y, ws);
      {
        simd::ScopedIsa scalar(simd::Isa::kScalar);
        linalg::apply_exp_taylor_block(sq_op, 12, x, y_ref, ws_ref);
      }
      EXPECT_MATRIX_NEAR(y, y_ref, 1e-9);
    }
  }
}

TEST(SimdKernels, FloatSumSqIsBitwiseIdenticalAcrossIsas) {
  rand::Rng rng(53);
  std::vector<float> x(1031);
  for (float& v : x) v = static_cast<float>(rng.normal());
  double ref = 0;
  bool have_ref = false;
  for (const simd::Isa isa : simd::compiled_isas()) {
    simd::ScopedIsa forced(isa);
    const double s = simd::active_kernels().sum_sq_f(
        x.data(), static_cast<Index>(x.size()));
    if (!have_ref) {
      ref = s;
      have_ref = true;
    }
    // All backends share the one compensated double reduction
    // (simd/detail.hpp), so this is exact equality, not a tolerance.
    EXPECT_EQ(s, ref);
  }
}

// ----------------------------------------------------------------------
// Float32 sketch-panel mode of big_dot_exp.
// ----------------------------------------------------------------------

struct BigDotFixture {
  core::FactorizedPackingInstance inst;
  sparse::Csr phi;
  linalg::SymmetricOp op;
  linalg::BlockOp block_op;
  std::vector<float> values_f, t_values_f;
  linalg::BlockOpF block_op_f;

  explicit BigDotFixture(Index m = 256, Index n = 24) {
    apps::FactorizedOptions gen;
    gen.n = n;
    gen.m = m;
    gen.nnz_per_column = 6;
    inst = apps::random_factorized(gen);
    phi = inst.set().weighted_sum(
        Vector(inst.size(), 0.05 / static_cast<Real>(inst.size())));
    op = [this](const Vector& x, Vector& y) { phi.apply(x, y); };
    block_op = [this](const Matrix& x, Matrix& y) { phi.apply_block(x, y); };
    phi.fill_float_values(values_f, t_values_f);
    block_op_f = [this](const linalg::MatrixF& x, linalg::MatrixF& y) {
      phi.apply_block_f(x, y, values_f);
    };
  }

  core::BigDotExpResult run(const core::BigDotExpOptions& options,
                            bool with_float_op = true) {
    core::SolverWorkspace workspace;
    core::BigDotExpResult result;
    core::big_dot_exp(op, block_op, phi.rows(), 2.0, inst.set(), options,
                      workspace, result,
                      with_float_op ? &block_op_f : nullptr);
    return result;
  }
};

core::BigDotExpOptions blocked_options(Real eps = 0.25) {
  core::BigDotExpOptions options;
  options.eps = eps;
  options.sketch_rows_override = 48;
  options.taylor_degree_override = 12;
  options.block_size = 8;
  options.fuse_dots = true;
  return options;
}

TEST(SimdBigDot, Float32PanelsStayWithinCertificateTolerance) {
  BigDotFixture fx;
  core::BigDotExpOptions options = blocked_options();
  const core::BigDotExpResult ref = fx.run(options);
  ASSERT_EQ(ref.panel_precision, core::PanelPrecision::kDouble);
  options.panel_precision = core::PanelPrecision::kFloat32;
  const core::BigDotExpResult f32 = fx.run(options);
  EXPECT_EQ(f32.panel_precision, core::PanelPrecision::kFloat32);
  EXPECT_TRUE(f32.fused);
  ASSERT_EQ(f32.dots.size(), ref.dots.size());
  // Same sketch, same Taylor recurrence -- the only gap is float32 panel
  // rounding, compensated back in double at every reduction. 5e-3 is the
  // certificate-level bar (the bench gates the same number); the typical
  // gap is ~1e-6.
  for (Index i = 0; i < ref.dots.size(); ++i) {
    EXPECT_NEAR(f32.dots[i] / ref.dots[i], 1.0, 5e-3) << "dot " << i;
  }
  EXPECT_NEAR(f32.trace_exp / ref.trace_exp, 1.0, 5e-3);
}

TEST(SimdBigDot, Float32FallsBackWhenAGateFails) {
  BigDotFixture fx;
  // Gate 1: eps tighter than float_panel_min_eps -> double, bitwise equal
  // to the plain double fused run.
  core::BigDotExpOptions tight = blocked_options(/*eps=*/1e-4);
  tight.panel_precision = core::PanelPrecision::kFloat32;
  const core::BigDotExpResult tight_run = fx.run(tight);
  EXPECT_EQ(tight_run.panel_precision, core::PanelPrecision::kDouble);
  core::BigDotExpOptions tight_ref = blocked_options(/*eps=*/1e-4);
  const core::BigDotExpResult tight_ref_run = fx.run(tight_ref);
  ASSERT_EQ(tight_run.dots.size(), tight_ref_run.dots.size());
  for (Index i = 0; i < tight_run.dots.size(); ++i) {
    EXPECT_EQ(tight_run.dots[i], tight_ref_run.dots[i]);
  }
  // Gate 2: no float block operator.
  core::BigDotExpOptions no_op = blocked_options();
  no_op.panel_precision = core::PanelPrecision::kFloat32;
  EXPECT_EQ(fx.run(no_op, /*with_float_op=*/false).panel_precision,
            core::PanelPrecision::kDouble);
  // Gate 3: the single-vector reference path.
  core::BigDotExpOptions single = blocked_options();
  single.block_size = 1;
  single.panel_precision = core::PanelPrecision::kFloat32;
  EXPECT_EQ(fx.run(single).panel_precision, core::PanelPrecision::kDouble);
  // Gate 4: the unfused two-pass layout.
  core::BigDotExpOptions unfused = blocked_options();
  unfused.fuse_dots = false;
  unfused.panel_precision = core::PanelPrecision::kFloat32;
  EXPECT_EQ(fx.run(unfused).panel_precision, core::PanelPrecision::kDouble);
}

TEST(SimdSolvers, Float32ModeKeepsEverySolverVariantCertified) {
  apps::FactorizedOptions gen;
  gen.n = 12;
  gen.m = 24;
  gen.nnz_per_column = 4;
  gen.seed = 23;
  const core::FactorizedPackingInstance inst = apps::random_factorized(gen);
  for (const core::ProbeSolver solver :
       {core::ProbeSolver::kDecision, core::ProbeSolver::kPhased,
        core::ProbeSolver::kBucketed}) {
    core::OptimizeOptions options;
    options.eps = 0.2;
    options.decision_eps = 0.15;  // keep probes cheap; bracket stays correct
    options.dot_block_size = 8;   // float32 panels need a blocked width
    options.probe_solver = solver;
    const core::PackingOptimum ref = core::approx_packing(inst, options);
    options.decision.dot_options.panel_precision =
        core::PanelPrecision::kFloat32;
    const core::PackingOptimum f32 = core::approx_packing(inst, options);
    // The float32 trajectory may differ, but its certificates must hold:
    // a dual-feasible witness and a bracket consistent with the double
    // run's (both contain OPT, so they intersect).
    EXPECT_TRUE(core::check_dual(inst, f32.best_x).feasible)
        << "solver variant " << static_cast<int>(solver);
    EXPECT_LE(f32.lower, f32.upper * (1 + 1e-9));
    EXPECT_LE(f32.lower, ref.upper * (1 + 1e-9));
    EXPECT_LE(ref.lower, f32.upper * (1 + 1e-9));
  }
}

}  // namespace
}  // namespace psdp
