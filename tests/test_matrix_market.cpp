#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "io/matrix_market.hpp"
#include "test_helpers.hpp"

namespace psdp::io {
namespace {

using linalg::Matrix;
using psdp::testing::random_psd;
using sparse::Csr;
using sparse::Triplet;

Csr sample_sparse() {
  std::vector<Triplet> triplets{
      {0, 0, 1.5}, {0, 2, -2.25}, {1, 1, 3.0}, {2, 0, 0.125}};
  return Csr::from_triplets(3, 4, std::move(triplets));
}

TEST(MatrixMarket, SparseRoundTripGeneral) {
  const Csr original = sample_sparse();
  std::stringstream buffer;
  write_matrix_market(buffer, original);
  const Csr back = read_matrix_market_sparse(buffer);
  ASSERT_EQ(back.rows(), original.rows());
  ASSERT_EQ(back.cols(), original.cols());
  EXPECT_MATRIX_NEAR(back.to_dense(), original.to_dense(), 0.0);
}

TEST(MatrixMarket, SparseRoundTripSymmetric) {
  // Symmetric 3x3 with an off-diagonal pair and a diagonal entry.
  std::vector<Triplet> triplets{{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0},
                                {2, 2, 4.0}};
  const Csr original = Csr::from_triplets(3, 3, std::move(triplets));
  std::stringstream buffer;
  write_matrix_market(buffer, original, /*symmetric=*/true);
  // The body must contain only the lower triangle: 3 entries.
  EXPECT_NE(buffer.str().find("\n3 3 3\n"), std::string::npos)
      << "header: " << buffer.str();
  const Csr back = read_matrix_market_sparse(buffer);
  EXPECT_MATRIX_NEAR(back.to_dense(), original.to_dense(), 0.0);
}

TEST(MatrixMarket, DenseRoundTripGeneral) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = -2; a(0, 2) = 3.5;
  a(1, 0) = 0; a(1, 1) = 1e-7; a(1, 2) = 12345.678;
  std::stringstream buffer;
  write_matrix_market(buffer, a);
  const Matrix back = read_matrix_market_dense(buffer);
  EXPECT_MATRIX_NEAR(back, a, 0.0);
}

TEST(MatrixMarket, DenseRoundTripSymmetric) {
  const Matrix a = random_psd(6, 7);
  std::stringstream buffer;
  write_matrix_market(buffer, a, /*symmetric=*/true);
  const Matrix back = read_matrix_market_dense(buffer);
  EXPECT_MATRIX_NEAR(back, a, 1e-15);
}

TEST(MatrixMarket, ValuesRoundTripExactly) {
  Matrix a(1, 2);
  a(0, 0) = 1.0 / 3.0;
  a(0, 1) = 6.02214076e23;
  std::stringstream buffer;
  write_matrix_market(buffer, a);
  const Matrix back = read_matrix_market_dense(buffer);
  EXPECT_EQ(back(0, 0), a(0, 0));
  EXPECT_EQ(back(0, 1), a(0, 1));
}

TEST(MatrixMarket, ReadsCoordinateAsDense) {
  std::stringstream buffer;
  write_matrix_market(buffer, sample_sparse());
  const Matrix dense = read_matrix_market_dense(buffer);
  EXPECT_MATRIX_NEAR(dense, sample_sparse().to_dense(), 0.0);
}

TEST(MatrixMarket, ReadsArrayAsSparse) {
  const Matrix a = random_psd(4, 9);
  std::stringstream buffer;
  write_matrix_market(buffer, a);
  const Csr back = read_matrix_market_sparse(buffer);
  EXPECT_MATRIX_NEAR(back.to_dense(), a, 0.0);
}

TEST(MatrixMarket, SkipsCommentsAndBlankLines) {
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "\n"
      "2 2 2\n"
      "% another comment\n"
      "1 1 5.0\n"
      "2 2 -1.0\n");
  const Csr back = read_matrix_market_sparse(buffer);
  EXPECT_EQ(back.nnz(), 2);
  EXPECT_NEAR(back.to_dense()(0, 0), 5.0, 0.0);
  EXPECT_NEAR(back.to_dense()(1, 1), -1.0, 0.0);
}

TEST(MatrixMarket, SymmetricEitherTriangleMirrorsOnce) {
  // Each stored off-diagonal entry is mirrored exactly once, whichever
  // triangle the file used (entries are canonicalized to the lower one).
  for (const char* entry_line : {"2 1 7.0\n", "1 2 7.0\n"}) {
    std::stringstream buffer(
        str("%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 1\n",
            entry_line));
    const Csr back = read_matrix_market_sparse(buffer);
    EXPECT_NEAR(back.to_dense()(0, 1), 7.0, 0.0) << entry_line;
    EXPECT_NEAR(back.to_dense()(1, 0), 7.0, 0.0) << entry_line;
  }
}

TEST(MatrixMarket, SymmetricRedundantPairSumsAsOneDuplicate) {
  // (2,1) and (1,2) name the same logical entry of a symmetric matrix:
  // canonicalization makes them duplicates, so they sum (the documented
  // policy) and the merged value is mirrored once -- the old reader
  // instead mirrored each listing independently, making the doubling an
  // accident of storage rather than a defined rule.
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "2 1 7.0\n"
      "1 2 -3.0\n");
  const Csr back = read_matrix_market_sparse(buffer);
  EXPECT_NEAR(back.to_dense()(1, 0), 4.0, 0.0);
  EXPECT_NEAR(back.to_dense()(0, 1), 4.0, 0.0);
}

TEST(MatrixMarket, DuplicateEntriesSumInSparseReader) {
  // Conventional MM duplicate semantics: repeated (r,c) listings sum. One
  // diagonal and one off-diagonal duplicate, general format.
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 4\n"
      "1 1 1.5\n"
      "1 1 2.5\n"
      "2 1 -1.0\n"
      "2 1 3.0\n");
  const Csr back = read_matrix_market_sparse(buffer);
  EXPECT_EQ(back.nnz(), 2);
  EXPECT_NEAR(back.to_dense()(0, 0), 4.0, 0.0);
  EXPECT_NEAR(back.to_dense()(1, 0), 2.0, 0.0);
}

TEST(MatrixMarket, DuplicateEntriesSumInDenseReader) {
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 2 0.25\n"
      "1 2 0.75\n"
      "2 2 2.0\n");
  const linalg::Matrix back = read_matrix_market_dense(buffer);
  EXPECT_NEAR(back(0, 1), 1.0, 0.0);
  EXPECT_NEAR(back(1, 1), 2.0, 0.0);
  EXPECT_NEAR(back(0, 0), 0.0, 0.0);
}

TEST(MatrixMarket, SymmetricDuplicatesSumAndMirrorOnce) {
  // Duplicate *lower-triangle* listings of the same unordered pair sum,
  // and the summed value is mirrored symmetrically.
  std::stringstream buffer(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "2 1 1.0\n"
      "2 1 2.0\n");
  const Csr back = read_matrix_market_sparse(buffer);
  EXPECT_NEAR(back.to_dense()(1, 0), 3.0, 0.0);
  EXPECT_NEAR(back.to_dense()(0, 1), 3.0, 0.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  {
    std::stringstream buffer("not a banner\n1 1 0\n");
    EXPECT_THROW(read_matrix_market_sparse(buffer), InvalidArgument);
  }
  {
    std::stringstream buffer(
        "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
    EXPECT_THROW(read_matrix_market_sparse(buffer), InvalidArgument);
  }
  {
    std::stringstream buffer(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
    EXPECT_THROW(read_matrix_market_sparse(buffer), InvalidArgument);
  }
  {
    // Truncated body.
    std::stringstream buffer(
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market_sparse(buffer), InvalidArgument);
  }
  {
    // Symmetric but rectangular.
    std::stringstream buffer(
        "%%MatrixMarket matrix coordinate real symmetric\n2 3 0\n");
    EXPECT_THROW(read_matrix_market_sparse(buffer), InvalidArgument);
  }
}

TEST(MatrixMarket, RejectsAsymmetricMatrixForSymmetricWrite) {
  std::vector<Triplet> triplets{{0, 1, 1.0}};  // no mirror
  const Csr bad = Csr::from_triplets(2, 2, std::move(triplets));
  std::stringstream buffer;
  EXPECT_THROW(write_matrix_market(buffer, bad, /*symmetric=*/true),
               InvalidArgument);
}

TEST(MatrixMarket, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/psdp_mm_test.mtx";
  const Matrix a = random_psd(5, 3);
  save_matrix_market(path, a, /*symmetric=*/true);
  const Matrix back = load_matrix_market_dense(path);
  EXPECT_MATRIX_NEAR(back, a, 1e-15);
  std::remove(path.c_str());
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(load_matrix_market_sparse("/nonexistent/path.mtx"),
               InvalidArgument);
}

void expect_same_csr(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t r = 0; r < a.row_offsets().size(); ++r) {
    EXPECT_EQ(a.row_offsets()[r], b.row_offsets()[r]);
  }
  for (std::size_t p = 0; p < a.values().size(); ++p) {
    EXPECT_EQ(a.col_indices()[p], b.col_indices()[p]);
    EXPECT_EQ(a.values()[p], b.values()[p]);  // bit-exact
  }
}

TEST(MatrixMarket, StreamingReaderMatchesInRamReaderBitwise) {
  // Cross-reader contract: the bounded-memory streaming reader applies the
  // same canonicalization as the in-RAM reader -- duplicates sum, symmetric
  // entries canonicalize to the lower triangle before duplicate detection,
  // the merged value mirrors once -- so both produce bit-identical CSR on a
  // duplicate-heavy file that exercises every rule at once.
  const std::string text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "4 4 8\n"
      "1 1 1.5\n"
      "1 1 2.5\n"    // diagonal duplicate: sums
      "2 1 7.0\n"
      "1 2 -3.0\n"   // redundant mirrored pair: canonicalizes, then sums
      "3 2 0.125\n"
      "3 2 0.25\n"   // lower-triangle duplicate: sums, mirrors once
      "4 4 -2.0\n"
      "4 1 1.0\n";
  std::stringstream in_ram(text);
  const Csr reference = read_matrix_market_sparse(in_ram);
  std::stringstream streamed(text);
  const Csr streaming = read_matrix_market_sparse_streaming(streamed);
  expect_same_csr(streaming, reference);
}

TEST(MatrixMarket, StreamingReaderMatchesAcrossStagingFlushes) {
  // A staging buffer smaller than the listing count forces mid-stream
  // merge flushes; the result must not depend on where the flushes land.
  std::ostringstream text;
  text << "%%MatrixMarket matrix coordinate real general\n"
       << "16 16 64\n";
  for (int k = 0; k < 64; ++k) {
    // Collision-rich pattern: every entry repeats four times across the
    // stream, far apart, so flush boundaries split duplicate groups.
    text << (k % 16 + 1) << " " << (k % 4 + 1) << " " << (0.5 + 0.25 * (k % 3))
         << "\n";
  }
  std::stringstream in_ram(text.str());
  const Csr reference = read_matrix_market_sparse(in_ram);
  for (Index staging : {Index{4}, Index{7}, Index{64}, Index{1} << 20}) {
    StreamingMmOptions options;
    options.staging_capacity = staging;
    std::stringstream streamed(text.str());
    const Csr streaming = read_matrix_market_sparse_streaming(streamed, options);
    expect_same_csr(streaming, reference);
  }
}

}  // namespace
}  // namespace psdp::io
