#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/generators.hpp"
#include "core/bigdotexp.hpp"
#include "core/optimize.hpp"
#include "core/penalty_oracle.hpp"
#include "par/parallel.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/scheduler.hpp"
#include "sparse/kernel_plan.hpp"
#include "util/spsa.hpp"
#include "util/tunables.hpp"

namespace psdp {
namespace {

using util::ShapeBucket;
using util::TunableId;
using util::TunableProfileStore;
using util::Tunables;

/// Restores the process-wide registry on scope exit, so mutating tests
/// cannot leak tuned values into later tests of this binary.
struct RegistryGuard {
  ~RegistryGuard() { util::tunables().reset(); }
};

TEST(Tunables, MetadataCoversEveryRegisteredKnob) {
  EXPECT_EQ(static_cast<int>(Tunables::all().size()), util::kTunableCount);
  for (const util::TunableInfo& info : Tunables::all()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_EQ(info.env, "PSDP_TUNE_" + [&] {
      std::string upper = info.name;
      for (char& c : upper) c = static_cast<char>(std::toupper(c));
      return upper;
    }());
    EXPECT_LE(info.min, info.default_value) << info.name;
    EXPECT_LE(info.default_value, info.max) << info.name;
    EXPECT_GT(info.step, 0) << info.name;
  }
}

TEST(Tunables, FindAcceptsBothSpellings) {
  EXPECT_EQ(Tunables::find("dot_block_size"), TunableId::k_dot_block_size);
  EXPECT_EQ(Tunables::find("dot-block-size"), TunableId::k_dot_block_size);
  EXPECT_THROW(Tunables::find("no_such_knob"), InvalidArgument);
  TunableId id;
  EXPECT_FALSE(Tunables::try_find("no_such_knob", id));
  EXPECT_TRUE(Tunables::try_find("grain", id));
  EXPECT_EQ(id, TunableId::k_grain);
}

TEST(Tunables, SetClampsIntoRangeAndRoundsIntegral) {
  Tunables registry;
  // grain: [1, 1048576], integral.
  EXPECT_EQ(registry.set(TunableId::k_grain, -5), 1);
  EXPECT_EQ(registry.set(TunableId::k_grain, 2e9), 1048576);
  EXPECT_EQ(registry.set(TunableId::k_grain, 100.7), 101);
  EXPECT_EQ(registry.get(TunableId::k_grain), 101);
  // kappa_cap: Real, no rounding.
  EXPECT_EQ(registry.set(TunableId::k_kappa_cap, 2.25), 2.25);
}

TEST(Tunables, SetCheckedThrowsNamedRangeErrors) {
  Tunables registry;
  try {
    registry.set_checked(TunableId::k_grain, 0);  // below min 1
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("grain"), std::string::npos);
  }
  // Fractional value for an integral knob is an error on the checked path.
  EXPECT_THROW(registry.set_checked(TunableId::k_grain, 100.5),
               InvalidArgument);
  EXPECT_NO_THROW(registry.set_checked(TunableId::k_kappa_cap, 0.75));
  EXPECT_EQ(registry.get(TunableId::k_kappa_cap), 0.75);
}

TEST(Tunables, SetNamedParsesAndNamesErrors) {
  Tunables registry;
  registry.set_named("segment_rows", "4096");
  EXPECT_EQ(registry.get(TunableId::k_segment_rows), 4096);
  registry.set_named("bound-flux-ratio", "12.5");  // CLI spelling
  EXPECT_EQ(registry.get(TunableId::k_bound_flux_ratio), 12.5);
  try {
    registry.set_named("segment_rows", "banana");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("segment_rows"), std::string::npos);
  }
  EXPECT_THROW(registry.set_named("segment_rows", "8"),  // below min 16
               InvalidArgument);
  EXPECT_THROW(registry.set_named("unknown_knob", "1"), InvalidArgument);
}

TEST(Tunables, ResetAndIsDefault) {
  Tunables registry;
  EXPECT_TRUE(registry.is_default(TunableId::k_wide_work));
  registry.set(TunableId::k_wide_work, 1 << 20);
  EXPECT_FALSE(registry.is_default(TunableId::k_wide_work));
  registry.reset(TunableId::k_wide_work);
  EXPECT_TRUE(registry.is_default(TunableId::k_wide_work));
  registry.set(TunableId::k_grain, 7);
  registry.set(TunableId::k_kappa_cap, 1.5);
  registry.reset();
  for (int i = 0; i < util::kTunableCount; ++i) {
    EXPECT_TRUE(registry.is_default(static_cast<TunableId>(i)));
  }
}

TEST(Tunables, JsonSnapshotRoundTripsExactly) {
  Tunables registry;
  registry.set(TunableId::k_grain, 777);
  registry.set(TunableId::k_kappa_cap, 0.1);  // not exactly representable
  registry.set(TunableId::k_bound_flux_ratio, 12.25);
  const std::string snapshot = registry.to_json();

  Tunables restored;
  restored.from_json(snapshot);
  for (int i = 0; i < util::kTunableCount; ++i) {
    const TunableId id = static_cast<TunableId>(i);
    EXPECT_EQ(registry.get(id), restored.get(id))
        << Tunables::info(id).name;
  }
  EXPECT_EQ(restored.to_json(), snapshot);
}

TEST(Tunables, FromJsonValidatesBeforeApplying) {
  Tunables registry;
  // Partial snapshots apply only the keys present.
  registry.from_json("{\"tunables\": {\"grain\": 2048}}");
  EXPECT_EQ(registry.get(TunableId::k_grain), 2048);
  EXPECT_TRUE(registry.is_default(TunableId::k_wide_work));
  // A bad later key must leave every earlier key untouched.
  EXPECT_THROW(registry.from_json(
                   "{\"tunables\": {\"grain\": 4096, \"segment_rows\": 1}}"),
               InvalidArgument);
  EXPECT_EQ(registry.get(TunableId::k_grain), 2048);
  EXPECT_THROW(registry.from_json("{\"tunables\": {\"bogus\": 1}}"),
               InvalidArgument);
  EXPECT_THROW(registry.from_json("not json"), InvalidArgument);
}

TEST(Tunables, EnvironmentOverridesApplyOnConstruction) {
  ASSERT_EQ(setenv("PSDP_TUNE_GRAIN", "4096", 1), 0);
  Tunables registry(/*apply_env=*/true);
  EXPECT_EQ(registry.get(TunableId::k_grain), 4096);
  // Without apply_env the variable is ignored.
  Tunables plain;
  EXPECT_EQ(plain.get(TunableId::k_grain),
            Tunables::info(TunableId::k_grain).default_value);
  // A bad value throws naming the variable.
  ASSERT_EQ(setenv("PSDP_TUNE_GRAIN", "banana", 1), 0);
  try {
    Tunables bad(/*apply_env=*/true);
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("PSDP_TUNE_GRAIN"),
              std::string::npos);
  }
  unsetenv("PSDP_TUNE_GRAIN");
}

// The bit-identity contract: a default-constructed options struct holds
// exactly the legacy hard-coded literal each registry default replaced.
TEST(Tunables, DefaultsMatchLegacyLiterals) {
  EXPECT_EQ(core::BigDotExpOptions{}.block_size, 0);
  EXPECT_EQ(core::OptimizeOptions{}.dot_block_size, 0);
  EXPECT_EQ(core::SketchedOracleOptions{}.kappa_cap, 0);
  EXPECT_EQ(sparse::TransposePlanOptions{}.segment_rows, 1024);
  EXPECT_EQ(sparse::TransposePlanOptions{}.window_bytes, 1048576);
  EXPECT_EQ(serve::SchedulerOptions{}.lanes, 0);
  EXPECT_EQ(serve::SchedulerOptions{}.wide_work, 67108864);
  EXPECT_EQ(serve::ArtifactCache::Options{}.capacity, 32u);
  EXPECT_EQ(serve::ArtifactCache::Options{}.workspaces_per_entry, 8u);
  EXPECT_EQ(par::default_grain(), 1024);
}

// Overriding a knob and resetting it restores bitwise-identical solver
// output -- the guarantee serve startup relies on when no profile loads.
TEST(Tunables, ResetRestoresBitIdenticalSolves) {
  RegistryGuard guard;
  apps::FactorizedOptions generator;
  generator.m = 64;
  generator.n = 4;
  generator.seed = 11;
  const auto solve = [&] {
    core::OptimizeOptions options;
    options.eps = 0.5;
    options.decision_eps = 0.25;
    return core::approx_packing(apps::random_factorized(generator), options);
  };
  const core::PackingOptimum reference = solve();
  util::tunables().set(TunableId::k_dot_block_size, 64);
  util::tunables().reset();
  const core::PackingOptimum again = solve();
  ASSERT_EQ(reference.best_x.size(), again.best_x.size());
  for (Index i = 0; i < reference.best_x.size(); ++i) {
    EXPECT_EQ(reference.best_x[i], again.best_x[i]) << "component " << i;
  }
  EXPECT_EQ(reference.lower, again.lower);
  EXPECT_EQ(reference.upper, again.upper);
}

TEST(ShapeBucketTest, BucketsByCeilLog2) {
  const ShapeBucket b = ShapeBucket::of(1000, 256, 12);
  EXPECT_EQ(b.log2_nnz, 10);
  EXPECT_EQ(b.log2_rows, 8);
  EXPECT_EQ(b.log2_cols, 4);
  EXPECT_EQ(ShapeBucket::of(0, 1, 1), (ShapeBucket{0, 0, 0}));
  EXPECT_TRUE(ShapeBucket::of(900, 200, 10) == ShapeBucket::of(1024, 256, 16));
  EXPECT_FALSE(ShapeBucket::of(1025, 200, 10) ==
               ShapeBucket::of(1024, 200, 10));
}

TEST(TunableProfileStoreTest, PutFindApplyRoundTrip) {
  TunableProfileStore store;
  EXPECT_TRUE(store.empty());
  const ShapeBucket bucket = ShapeBucket::of(5000, 512, 16);
  store.put(bucket, {{"dot_block_size", 32}, {"lanes", 2}});
  ASSERT_EQ(store.size(), 1u);
  ASSERT_NE(store.find(bucket), nullptr);
  EXPECT_EQ(store.find(ShapeBucket::of(1, 1, 1)), nullptr);
  // Replacement, not accumulation.
  store.put(bucket, {{"dot_block_size", 16}});
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(bucket)->front().second, 16);

  Tunables registry;
  EXPECT_FALSE(store.apply(ShapeBucket::of(1, 1, 1), registry));
  EXPECT_TRUE(registry.is_default(TunableId::k_dot_block_size));
  EXPECT_TRUE(store.apply(bucket, registry));
  EXPECT_EQ(registry.get(TunableId::k_dot_block_size), 16);

  const std::string json = store.to_json();
  const TunableProfileStore reloaded = TunableProfileStore::from_json(json);
  EXPECT_EQ(reloaded.to_json(), json);

  // Corrupted profiles fail with named errors when applied.
  TunableProfileStore bad;
  bad.put(bucket, {{"no_such_knob", 1}});
  EXPECT_THROW(bad.apply(bucket, registry), InvalidArgument);
}

TEST(TunableProfileStoreTest, SaveAndLoadFile) {
  TunableProfileStore store;
  store.put(ShapeBucket::of(100, 10, 3), {{"wide_work", 1048576}});
  store.put(ShapeBucket::of(1 << 20, 1 << 10, 12), {{"lanes", 4}});
  const std::string path = "test_tunables_profile.json";
  store.save(path);
  const TunableProfileStore loaded = TunableProfileStore::load(path);
  EXPECT_EQ(loaded.to_json(), store.to_json());
  std::remove(path.c_str());
  EXPECT_THROW(TunableProfileStore::load("no/such/file.json"),
               InvalidArgument);
}

// A deterministic convex toy objective over the two Real knobs: SPSA must
// replay bit-identically under a fixed seed and find a better point.
double toy_objective(const Tunables& registry) {
  const double kappa = registry.get(TunableId::k_kappa_cap);
  const double ratio = registry.get(TunableId::k_bound_flux_ratio);
  return (kappa - 3.0) * (kappa - 3.0) + (ratio - 12.0) * (ratio - 12.0);
}

TEST(Spsa, ImprovesSeededToyObjective) {
  Tunables registry;
  util::SpsaOptions options;
  options.knobs = {TunableId::k_kappa_cap, TunableId::k_bound_flux_ratio};
  options.iterations = 30;
  options.seed = 5;
  const util::SpsaResult result = util::spsa_minimize(
      registry, options, [&] { return toy_objective(registry); });
  EXPECT_EQ(result.evaluations, 2 * options.iterations + 1);
  // Starting point (0, 8): objective 25. Any real progress beats 25.
  EXPECT_EQ(result.initial_objective, 25.0);
  EXPECT_LT(result.best_objective, result.initial_objective);
  EXPECT_TRUE(result.improved());
  // The registry is left at the winning point.
  EXPECT_EQ(toy_objective(registry), result.best_objective);
  ASSERT_EQ(result.tuned.size(), 2u);
  EXPECT_EQ(result.tuned[0].first, "kappa_cap");
  EXPECT_EQ(result.tuned[1].first, "bound_flux_ratio");
}

TEST(Spsa, FixedSeedReplaysExactly) {
  const auto run = [] {
    Tunables registry;
    util::SpsaOptions options;
    options.knobs = {TunableId::k_kappa_cap, TunableId::k_bound_flux_ratio};
    options.iterations = 12;
    options.seed = 17;
    return util::spsa_minimize(registry, options,
                               [&] { return toy_objective(registry); });
  };
  const util::SpsaResult a = run();
  const util::SpsaResult b = run();
  EXPECT_EQ(a.best_objective, b.best_objective);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.tuned.size(), b.tuned.size());
  for (std::size_t i = 0; i < a.tuned.size(); ++i) {
    EXPECT_EQ(a.tuned[i].second, b.tuned[i].second) << a.tuned[i].first;
  }
  // A different seed explores a different direction sequence.
  Tunables registry;
  util::SpsaOptions options;
  options.knobs = {TunableId::k_kappa_cap, TunableId::k_bound_flux_ratio};
  options.iterations = 12;
  options.seed = 18;
  const util::SpsaResult c = util::spsa_minimize(
      registry, options, [&] { return toy_objective(registry); });
  EXPECT_NE(c.tuned[0].second, a.tuned[0].second);
}

TEST(Spsa, IntegralKnobsStayOnTheStepGrid) {
  Tunables registry;
  util::SpsaOptions options;
  options.knobs = {TunableId::k_dot_block_size};  // step 4, range [0, 256]
  options.iterations = 10;
  options.seed = 3;
  const util::SpsaResult result = util::spsa_minimize(
      registry, options, [&] {
        const double v = registry.get(TunableId::k_dot_block_size);
        return (v - 37.0) * (v - 37.0);
      });
  const double tuned = result.tuned[0].second;
  EXPECT_EQ(tuned, std::floor(tuned));
  EXPECT_EQ(static_cast<long long>(tuned) % 4, 0);
  EXPECT_GE(tuned, 0);
  EXPECT_LE(tuned, 256);
}

TEST(Spsa, RejectsDegenerateConfigurations) {
  Tunables registry;
  util::SpsaOptions options;
  options.iterations = 4;
  EXPECT_THROW(
      util::spsa_minimize(registry, options, [] { return 0.0; }),
      InvalidArgument);  // empty knob list
  options.knobs = {TunableId::k_grain};
  options.iterations = 0;
  EXPECT_THROW(
      util::spsa_minimize(registry, options, [] { return 0.0; }),
      InvalidArgument);
}

}  // namespace
}  // namespace psdp
