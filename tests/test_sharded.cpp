// Determinism contract of the constraint-sharded instance layer
// (sparse::ShardedFactorizedSet + the oracle's per-shard sweeps):
//
//  * K = 1 is the legacy unsharded path, bit-identical to a plain
//    FactorizedPackingInstance -- same oracle dots, traces and tracked
//    bounds, to the last bit;
//  * K > 1 is bitwise-deterministic across thread counts (fixed-chunk
//    deterministic sums, shard partials merged serially in shard order);
//  * partition_offsets produces a contiguous nnz-balanced cover;
//  * scaled() carries shard boundaries along.
#include <gtest/gtest.h>

#include <vector>

#include "apps/generators.hpp"
#include "core/instance.hpp"
#include "core/penalty_oracle.hpp"
#include "par/parallel.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

FactorizedPackingInstance sample_instance(Index n = 24, Index m = 48,
                                          unsigned seed = 71) {
  apps::FactorizedOptions gen;
  gen.n = n;
  gen.m = m;
  gen.rank = 3;
  gen.nnz_per_column = 5;
  gen.seed = seed;
  return apps::random_factorized(gen);
}

/// A few oracle rounds on a mildly uneven weight vector; returns the
/// concatenated (dots..., trace, tracked_trace, tracked_lambda_bound) per
/// round so callers can compare runs bit-for-bit.
std::vector<Real> oracle_signature(const FactorizedPackingInstance& instance,
                                   int rounds = 3) {
  SketchedOracleOptions options;
  options.eps = 0.3;
  SolverWorkspace workspace;
  options.workspace = &workspace;
  SketchedTaylorOracle oracle(instance, options);
  Vector x(instance.size());
  std::vector<Real> signature;
  for (int r = 0; r < rounds; ++r) {
    for (Index i = 0; i < x.size(); ++i) {
      x[i] = (1.0 + 0.25 * static_cast<Real>((i + r) % 7)) /
             static_cast<Real>(instance.size());
    }
    PenaltyBatch batch;
    oracle.compute(x, static_cast<std::uint64_t>(r) + 1, batch);
    for (Index i = 0; i < batch.dots.size(); ++i)
      signature.push_back(batch.dots[i]);
    signature.push_back(batch.trace);
    signature.push_back(oracle.tracked_trace());
    signature.push_back(oracle.tracked_lambda_bound());
  }
  return signature;
}

TEST(Sharded, PartitionOffsetsCoverContiguously) {
  const FactorizedPackingInstance instance = sample_instance();
  for (Index k : {Index{1}, Index{2}, Index{5}, Index{24}, Index{100}}) {
    const std::vector<Index> offsets =
        ShardedFactorizedSet::partition_offsets(instance.set(), k);
    const Index clamped = std::min<Index>(std::max<Index>(k, 1), instance.size());
    ASSERT_EQ(static_cast<Index>(offsets.size()), clamped + 1) << "k = " << k;
    EXPECT_EQ(offsets.front(), 0);
    EXPECT_EQ(offsets.back(), instance.size());
    for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
      EXPECT_LT(offsets[s], offsets[s + 1]) << "empty shard at k = " << k;
    }
  }
}

TEST(Sharded, PartitionBalancesNnz) {
  const FactorizedPackingInstance instance = sample_instance(64, 80, 5);
  const Index k = 4;
  const FactorizedPackingInstance sharded(instance.set(), k);
  ASSERT_EQ(sharded.shard_count(), k);
  Index max_nnz = 0;
  for (Index s = 0; s < k; ++s) {
    max_nnz = std::max(max_nnz, sharded.sharded().shard_nnz(s));
  }
  // A contiguous nnz-balanced cut keeps every shard within one constraint's
  // worth of the ideal k-th share.
  Index max_constraint_nnz = 0;
  for (Index i = 0; i < instance.size(); ++i) {
    max_constraint_nnz = std::max(max_constraint_nnz, instance[i].nnz());
  }
  EXPECT_LE(max_nnz, instance.total_nnz() / k + max_constraint_nnz);
}

TEST(Sharded, SingleShardMatchesLegacyBitwise) {
  const FactorizedPackingInstance legacy = sample_instance();
  const FactorizedPackingInstance single(legacy.set(), 1);
  ASSERT_EQ(single.shard_count(), 1);
  EXPECT_FALSE(single.sharded().deterministic());
  const std::vector<Real> a = oracle_signature(legacy);
  const std::vector<Real> b = oracle_signature(single);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "entry " << i << " diverges";  // bit-identical
  }
}

TEST(Sharded, MultiShardDeterministicAcrossThreadCounts) {
  const FactorizedPackingInstance instance = sample_instance(32, 64, 9);
  const int restore = par::num_threads();
  std::vector<std::vector<Real>> runs;
  for (int threads : {1, 2, 7}) {
    par::set_num_threads(threads);
    const FactorizedPackingInstance sharded(instance.set(), 4);
    EXPECT_TRUE(sharded.sharded().deterministic());
    runs.push_back(oracle_signature(sharded));
  }
  par::set_num_threads(restore);
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[run].size(); ++i) {
      EXPECT_EQ(runs[run][i], runs[0][i])
          << "entry " << i << " differs between thread counts";
    }
  }
}

TEST(Sharded, MultiShardMatchesSingleShardBitwise) {
  // The K > 1 path reorders the constraint sweep into per-shard passes but
  // keeps every per-constraint dot and the fixed-order reductions, so the
  // values themselves -- not just their determinism -- match the legacy
  // path to the bit (the CI ooc-smoke job leans on this: shards=1 and
  // shards=4 solves must print identical objective-bits lines).
  const FactorizedPackingInstance instance = sample_instance(30, 50, 13);
  const std::vector<Real> k1 = oracle_signature(instance);
  const std::vector<Real> k4 =
      oracle_signature(FactorizedPackingInstance(instance.set(), 4));
  ASSERT_EQ(k1.size(), k4.size());
  for (std::size_t i = 0; i < k1.size(); ++i) {
    EXPECT_EQ(k1[i], k4[i]) << "entry " << i << " diverges";
  }
}

TEST(Sharded, ScaledPreservesShardBoundaries) {
  const FactorizedPackingInstance instance = sample_instance(20, 40, 3);
  const FactorizedPackingInstance sharded(instance.set(), 3);
  const FactorizedPackingInstance scaled = sharded.scaled(2.5);
  ASSERT_EQ(scaled.shard_count(), sharded.shard_count());
  const auto before = sharded.sharded().shard_offsets();
  const auto after = scaled.sharded().shard_offsets();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t s = 0; s < before.size(); ++s) {
    EXPECT_EQ(before[s], after[s]);
  }
  for (Index i = 0; i < sharded.size(); ++i) {
    Matrix expected = sharded[i].to_dense();
    expected.scale(2.5);
    EXPECT_MATRIX_NEAR(scaled[i].to_dense(), expected, 1e-12);
  }
}

TEST(Sharded, AdoptedOffsetsValidate) {
  const FactorizedPackingInstance instance = sample_instance(10, 24, 17);
  // Good adoption: explicit boundaries round-trip.
  sparse::ShardedFactorizedSet adopted(instance.set(),
                                       std::vector<Index>{0, 4, 10});
  EXPECT_EQ(adopted.shard_count(), 2);
  EXPECT_EQ(adopted.shard_begin(1), 4);
  EXPECT_EQ(adopted.shard_end(1), 10);
  // Malformed boundary lists are rejected.
  EXPECT_THROW(sparse::ShardedFactorizedSet(instance.set(),
                                            std::vector<Index>{0, 4, 9}),
               InvalidArgument);
  EXPECT_THROW(sparse::ShardedFactorizedSet(instance.set(),
                                            std::vector<Index>{0, 7, 4, 10}),
               InvalidArgument);
  EXPECT_THROW(sparse::ShardedFactorizedSet(instance.set(),
                                            std::vector<Index>{0, 4, 4, 10}),
               InvalidArgument);
}

}  // namespace
}  // namespace psdp::core
