#include <gtest/gtest.h>

#include <cmath>

#include "apps/generators.hpp"
#include "core/certificates.hpp"
#include "core/phased.hpp"
#include "linalg/eig.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

/// sum_i x_i A_i <= (1 + tol) I, verified by exact eigensolve.
void expect_dual_feasible(const PackingInstance& instance, const Vector& x,
                          Real tol) {
  Matrix psi(instance.dim(), instance.dim());
  for (Index i = 0; i < instance.size(); ++i) {
    psi.add_scaled(instance[i], x[i]);
  }
  EXPECT_LE(linalg::lambda_max_exact(psi), 1 + tol);
}

TEST(Phased, DualOutcomeOnFeasibleInstance) {
  // Generously packable: the dual side must trigger, and the measured-tight
  // dual must be exactly feasible.
  const PackingInstance instance =
      apps::random_ellipses({.n = 20, .m = 8, .rank = 2, .seed = 3});
  const PackingInstance scaled = instance.scaled(0.01);
  PhasedOptions options;
  options.eps = 0.1;
  const PhasedResult r = decision_phased(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  expect_dual_feasible(scaled, r.dual_x, 1e-9);
  EXPECT_GT(linalg::norm1(r.dual_x), 0);
}

TEST(Phased, PrimalOutcomeIsSelfVerifying) {
  const PackingInstance instance =
      apps::random_ellipses({.n = 12, .m = 6, .rank = 2, .seed = 5});
  const PackingInstance scaled = instance.scaled(50.0);
  PhasedOptions options;
  options.eps = 0.1;
  const PhasedResult r = decision_phased(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kPrimal);
  EXPECT_NEAR(linalg::trace(r.primal_y), 1, 1e-9);
  // The reported dots must match the returned Y and certify the primal.
  for (Index i = 0; i < scaled.size(); ++i) {
    const Real dot = linalg::frobenius_dot(scaled[i], r.primal_y);
    EXPECT_NEAR(dot, r.primal_dots[i], 1e-7 * std::max<Real>(1, dot));
    EXPECT_GE(dot, 1 - 1e-7);
  }
}

TEST(Phased, FewerExponentialsThanIterations) {
  // The whole point of phases: #exponentials = #phases << iterations.
  const PackingInstance instance =
      apps::random_ellipses({.n = 24, .m = 8, .rank = 2, .seed = 7});
  PhasedOptions options;
  options.eps = 0.1;
  const PhasedResult r = decision_phased(instance, options);
  EXPECT_EQ(r.phases, static_cast<Index>(r.phase_stats.size()));
  EXPECT_LT(r.phases, r.iterations);
  // Phase lengths sum to the virtual iteration count.
  Index total = 0;
  for (const PhaseStat& s : r.phase_stats) total += s.length;
  EXPECT_EQ(total, r.iterations);
}

TEST(Phased, AgreesWithPhaseFreeOutcome) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const PackingInstance instance = apps::random_ellipses(
        {.n = 16, .m = 6, .rank = 2, .seed = 100 + seed});
    DecisionOptions plain_options;
    plain_options.eps = 0.15;
    const DecisionResult plain = decision_dense(instance, plain_options);
    PhasedOptions options;
    options.eps = 0.15;
    const PhasedResult phased = decision_phased(instance, options);
    EXPECT_EQ(plain.outcome, phased.outcome) << "seed " << seed;
    if (plain.outcome == DecisionOutcome::kDual) {
      const Real plain_value = linalg::norm1(plain.dual_x_tight);
      const Real phased_value = linalg::norm1(phased.dual_x);
      EXPECT_NEAR(phased_value, plain_value, 0.35 * plain_value)
          << "seed " << seed;
    }
  }
}

TEST(Phased, SpectrumStaysNearLemmaBound) {
  // Empirically the phase schedule does not break Lemma 3.2; the flag is
  // reported for transparency and should not trigger on benign instances.
  const PackingInstance instance =
      apps::random_ellipses({.n = 16, .m = 8, .rank = 3, .seed = 11});
  PhasedOptions options;
  options.eps = 0.1;
  const PhasedResult r = decision_phased(instance, options);
  EXPECT_FALSE(r.spectrum_bound_exceeded);
  EXPECT_LE(r.psi_lambda_max, r.constants.spectrum_bound * (1 + 1e-9));
}

TEST(Phased, SmallerPhaseGrowthMeansMorePhases) {
  const PackingInstance instance =
      apps::random_ellipses({.n = 16, .m = 6, .rank = 2, .seed = 13});
  PhasedOptions coarse;
  coarse.eps = 0.1;
  coarse.phase_growth = 0.2;
  PhasedOptions fine;
  fine.eps = 0.1;
  fine.phase_growth = 0.01;
  const PhasedResult r_coarse = decision_phased(instance, coarse);
  const PhasedResult r_fine = decision_phased(instance, fine);
  EXPECT_GE(r_fine.phases, r_coarse.phases);
}

TEST(Phased, RespectsIterationOverride) {
  const PackingInstance instance =
      apps::random_ellipses({.n = 8, .m = 5, .rank = 2, .seed = 17});
  PhasedOptions options;
  options.eps = 0.1;
  options.max_iterations_override = 7;
  options.early_primal_exit = false;
  const PhasedResult r = decision_phased(instance, options);
  EXPECT_LE(r.iterations, 7);
}

TEST(Phased, NeedleInstanceStillWidthIndependent) {
  // Iteration counts must not scale with the needle width (the paper's
  // headline property survives the phase schedule).
  Index iters_narrow = 0;
  Index iters_wide = 0;
  {
    const PackingInstance inst = apps::needle_width_family(
        {.n = 12, .m = 6, .width = 2, .seed = 19});
    PhasedOptions options;
    options.eps = 0.15;
    iters_narrow = decision_phased(inst, options).iterations;
  }
  {
    const PackingInstance inst = apps::needle_width_family(
        {.n = 12, .m = 6, .width = 2048, .seed = 19});
    PhasedOptions options;
    options.eps = 0.15;
    iters_wide = decision_phased(inst, options).iterations;
  }
  EXPECT_LE(static_cast<Real>(iters_wide),
            3.0 * static_cast<Real>(std::max<Index>(iters_narrow, 1)) + 64);
}

TEST(FactorizedPhased, AgreesWithDensePhasedOnDualSide) {
  const apps::FactorizedOptions gen{.n = 14, .m = 12, .rank = 2,
                                    .nnz_per_column = 4, .seed = 31};
  const core::FactorizedPackingInstance fact =
      apps::random_factorized(gen).scaled(0.05);
  FactorizedPhasedOptions options;
  options.eps = 0.15;
  const PhasedResult sparse = decision_phased(fact, options);
  PhasedOptions dense_options;
  dense_options.eps = 0.15;
  const PhasedResult dense = decision_phased(fact.to_dense(), dense_options);
  EXPECT_EQ(sparse.outcome, dense.outcome);
  if (sparse.outcome == DecisionOutcome::kDual) {
    const Real dv = linalg::norm1(dense.dual_x);
    EXPECT_NEAR(linalg::norm1(sparse.dual_x), dv, 0.35 * dv);
    // Certified feasibility: lambda_max rescaling is an upper bound.
    expect_dual_feasible(fact.to_dense(), sparse.dual_x, 1e-6);
  }
}

TEST(FactorizedPhased, OneBatchPerPhase) {
  const apps::FactorizedOptions gen{.n = 12, .m = 16, .rank = 2,
                                    .nnz_per_column = 4, .seed = 37};
  const core::FactorizedPackingInstance fact = apps::random_factorized(gen);
  FactorizedPhasedOptions options;
  options.eps = 0.15;
  const PhasedResult r = decision_phased(fact, options);
  EXPECT_EQ(r.phases, static_cast<Index>(r.phase_stats.size()));
  EXPECT_LT(r.phases, std::max<Index>(r.iterations, 2));
  Index total = 0;
  for (const PhaseStat& s : r.phase_stats) total += s.length;
  EXPECT_EQ(total, r.iterations);
  // This path never forms a dense primal certificate.
  EXPECT_EQ(r.primal_y.rows(), 0);
}

TEST(FactorizedPhased, PrimalSideTerminatesWithCertifiedDots) {
  const apps::FactorizedOptions gen{.n = 10, .m = 8, .rank = 2,
                                    .nnz_per_column = 3, .seed = 41};
  const core::FactorizedPackingInstance fact =
      apps::random_factorized(gen).scaled(80.0);
  FactorizedPhasedOptions options;
  options.eps = 0.2;
  const PhasedResult r = decision_phased(fact, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kPrimal);
  // Estimated certificate values are >= 1 up to the sketch tolerance.
  for (Index i = 0; i < r.primal_dots.size(); ++i) {
    EXPECT_GE(r.primal_dots[i], 1 - options.eps) << "constraint " << i;
  }
}

TEST(FactorizedPhased, MatchesFactorizedPlainOutcome) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const apps::FactorizedOptions gen{.n = 10, .m = 10, .rank = 2,
                                      .nnz_per_column = 3, .seed = 300 + seed};
    const core::FactorizedPackingInstance fact = apps::random_factorized(gen);
    DecisionOptions plain_options;
    plain_options.eps = 0.2;
    const DecisionResult plain = decision_factorized(fact, plain_options);
    FactorizedPhasedOptions options;
    options.eps = 0.2;
    const PhasedResult phased = decision_phased(fact, options);
    EXPECT_EQ(plain.outcome, phased.outcome) << "seed " << seed;
  }
}

// Sweep: outcomes agree with the phase-free solver across eps and scales.
class PhasedSweep : public ::testing::TestWithParam<std::tuple<Real, Real>> {};

TEST_P(PhasedSweep, OutcomeMatchesPhaseFree) {
  const auto [eps, scale] = GetParam();
  const PackingInstance instance =
      apps::random_ellipses({.n = 12, .m = 6, .rank = 2, .seed = 23});
  const PackingInstance scaled = instance.scaled(scale);
  DecisionOptions plain_options;
  plain_options.eps = eps;
  PhasedOptions options;
  options.eps = eps;
  const DecisionResult plain = decision_dense(scaled, plain_options);
  const PhasedResult phased = decision_phased(scaled, options);
  EXPECT_EQ(plain.outcome, phased.outcome);
}

INSTANTIATE_TEST_SUITE_P(EpsAndScale, PhasedSweep,
                         ::testing::Combine(::testing::Values(0.3, 0.15),
                                            ::testing::Values(0.02, 30.0)));

}  // namespace
}  // namespace psdp::core
