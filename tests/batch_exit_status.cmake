# Locks solver_cli --batch exit statuses as part of the CLI contract:
#   0  every job solved
#   1  the batch ran but at least one job failed (partial failure)
#   2  the manifest itself could not be parsed (nothing ran)
# Scripted callers (CI gates, cron reruns) branch on these; a change is a
# breaking interface change and must update docs/SOLVERD.md too.
#
# Run via:  cmake -DCLI=<solver_cli> -DWORK_DIR=<scratch> -P batch_exit_status.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<solver_cli> -DWORK_DIR=<dir> -P batch_exit_status.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${CLI}" "--write-example=${WORK_DIR}/lp.psdp" --kind=packing-lp
  RESULT_VARIABLE write_rc OUTPUT_QUIET)
if(NOT write_rc EQUAL 0)
  message(FATAL_ERROR "--write-example failed with ${write_rc}")
endif()

function(expect_batch_exit manifest_text expected what)
  string(SHA1 tag "${manifest_text}")
  set(manifest "${WORK_DIR}/jobs_${tag}.txt")
  file(WRITE "${manifest}" "${manifest_text}")
  execute_process(
    COMMAND "${CLI}" "--batch=${manifest}" --threads=2
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL expected)
    message(FATAL_ERROR
            "${what}: expected exit ${expected}, got ${rc}\n${out}\n${err}")
  endif()
  message(STATUS "${what}: exit ${rc} (expected ${expected})")
endfunction()

expect_batch_exit(
  "packing-lp ${WORK_DIR}/lp.psdp eps=0.2\npacking-lp ${WORK_DIR}/lp.psdp eps=0.1\n"
  0 "all jobs succeed")

# A missing instance file fails that one job at solve time; the rest of the
# batch still runs, and the partial failure is the exit status.
expect_batch_exit(
  "packing-lp ${WORK_DIR}/lp.psdp eps=0.2\npacking-lp ${WORK_DIR}/absent.psdp eps=0.2\n"
  1 "one job fails")

# A malformed manifest never starts the batch.
expect_batch_exit(
  "warp-drive ${WORK_DIR}/lp.psdp\n"
  2 "manifest parse error")
