// Tests for bigDotExp (Theorem 4.1), validated against exact dense
// exponentials.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bigdotexp.hpp"
#include "linalg/expm.hpp"
#include "linalg/taylor.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using linalg::Matrix;
using psdp::testing::random_psd;
using psdp::testing::random_psd_rank;

/// A small factorized set plus its dense mirror, for ground truth.
struct Fixture {
  sparse::FactorizedSet set;
  std::vector<Matrix> dense;
  Matrix phi_dense;
  sparse::Csr phi;

  explicit Fixture(Index m, Index n, std::uint64_t seed)
      : set(make_set(m, n, seed)),
        phi_dense(make_phi(m, seed)),
        phi(sparse::Csr::from_dense(phi_dense)) {
    for (Index i = 0; i < set.size(); ++i) dense.push_back(set[i].to_dense());
  }

  static sparse::FactorizedSet make_set(Index m, Index n, std::uint64_t seed) {
    std::vector<sparse::FactorizedPsd> items;
    for (Index i = 0; i < n; ++i) {
      items.push_back(sparse::FactorizedPsd::from_dense_psd(
          random_psd_rank(m, 2, seed * 100 + static_cast<std::uint64_t>(i))));
    }
    return sparse::FactorizedSet(std::move(items));
  }

  static Matrix make_phi(Index m, std::uint64_t seed) {
    Matrix phi = random_psd(m, seed + 7);
    phi.scale(2.0);  // a bit of spectral mass, like a mid-run Psi
    return phi;
  }

  linalg::Vector exact_dots() const {
    const Matrix w = linalg::expm_eig(phi_dense);
    linalg::Vector dots(set.size());
    for (Index i = 0; i < set.size(); ++i) {
      dots[i] = linalg::frobenius_dot(dense[static_cast<std::size_t>(i)], w);
    }
    return dots;
  }

  Real exact_trace() const { return linalg::trace(linalg::expm_eig(phi_dense)); }
};

TEST(BigDotExp, ExactSketchMatchesDenseExponential) {
  const Fixture f(6, 5, 1);
  BigDotExpOptions options;
  options.eps = 0.05;
  const Real kappa = linalg::lambda_max_exact(f.phi_dense);
  const BigDotExpResult r = big_dot_exp(f.phi, kappa, f.set, options);
  EXPECT_TRUE(r.exact_sketch);  // m = 6 << JL rows
  const linalg::Vector want = f.exact_dots();
  for (Index i = 0; i < f.set.size(); ++i) {
    // Taylor truncation only: one-sided (underestimate), within eps.
    EXPECT_LE(r.dots[i], want[i] * (1 + 1e-9)) << i;
    EXPECT_GE(r.dots[i], want[i] * (1 - options.eps)) << i;
  }
  EXPECT_LE(r.trace_exp, f.exact_trace() * (1 + 1e-9));
  EXPECT_GE(r.trace_exp, f.exact_trace() * (1 - options.eps));
}

TEST(BigDotExp, SketchedEstimatesWithinTolerance) {
  const Fixture f(24, 6, 2);
  BigDotExpOptions options;
  options.eps = 0.3;
  options.sketch_rows_override = 4096;  // large r => tight concentration
  const Real kappa = linalg::lambda_max_exact(f.phi_dense);
  const BigDotExpResult r = big_dot_exp(f.phi, kappa, f.set, options);
  EXPECT_FALSE(r.exact_sketch);
  const linalg::Vector want = f.exact_dots();
  for (Index i = 0; i < f.set.size(); ++i) {
    EXPECT_NEAR(r.dots[i] / want[i], 1.0, 0.2) << i;
  }
  EXPECT_NEAR(r.trace_exp / f.exact_trace(), 1.0, 0.2);
}

TEST(BigDotExp, AutoKappaEstimation) {
  const Fixture f(8, 4, 3);
  BigDotExpOptions options;
  options.eps = 0.1;
  // kappa <= 0 triggers power-iteration estimation.
  const BigDotExpResult r = big_dot_exp(f.phi, /*kappa=*/0, f.set, options);
  const linalg::Vector want = f.exact_dots();
  for (Index i = 0; i < f.set.size(); ++i) {
    EXPECT_NEAR(r.dots[i] / want[i], 1.0, options.eps * 1.5) << i;
  }
}

TEST(BigDotExp, DegreeMatchesLemmaWithHalfKappa) {
  const Fixture f(6, 3, 4);
  BigDotExpOptions options;
  options.eps = 0.2;
  const Real kappa = 10.0;
  const BigDotExpResult r = big_dot_exp(f.phi, kappa, f.set, options);
  // Lemma 4.2 applied to Phi/2 with eps/4 internal budget.
  EXPECT_EQ(r.taylor_degree,
            linalg::taylor_exp_degree(kappa / 2, options.eps / 4));
}

TEST(BigDotExp, DegreeOverrideHonored) {
  const Fixture f(6, 3, 5);
  BigDotExpOptions options;
  options.taylor_degree_override = 9;
  const BigDotExpResult r = big_dot_exp(f.phi, 1.0, f.set, options);
  EXPECT_EQ(r.taylor_degree, 9);
}

TEST(BigDotExp, ZeroPhiGivesTraces) {
  // exp(0) = I, so dots = Tr[A_i] and trace_exp = m.
  const Fixture f(7, 4, 6);
  const sparse::Csr zero = sparse::Csr::from_triplets(7, 7, {});
  BigDotExpOptions options;
  options.eps = 0.05;
  const BigDotExpResult r = big_dot_exp(zero, 1.0, f.set, options);
  for (Index i = 0; i < f.set.size(); ++i) {
    EXPECT_NEAR(r.dots[i], f.set[i].trace(), 1e-6 * f.set[i].trace());
  }
  EXPECT_NEAR(r.trace_exp, 7.0, 1e-6);
}

TEST(BigDotExp, MonotoneInPhi) {
  // exp(2 Phi) . A >= exp(Phi) . A for PSD Phi, A (spectral monotonicity of
  // the scalar function pushed through the trace).
  const Fixture f(6, 4, 7);
  BigDotExpOptions options;
  options.eps = 0.05;
  const Real kappa = 2 * linalg::lambda_max_exact(f.phi_dense);
  sparse::Csr phi2 = f.phi;
  phi2.scale(2.0);
  const BigDotExpResult r1 = big_dot_exp(f.phi, kappa, f.set, options);
  const BigDotExpResult r2 = big_dot_exp(phi2, kappa, f.set, options);
  for (Index i = 0; i < f.set.size(); ++i) {
    EXPECT_GE(r2.dots[i], r1.dots[i] * (1 - 0.1)) << i;
  }
}

TEST(BigDotExp, ValidatesArguments) {
  const Fixture f(4, 2, 8);
  EXPECT_THROW(
      big_dot_exp(sparse::Csr::from_triplets(3, 4, {}), 1.0, f.set, {}),
      InvalidArgument);
  BigDotExpOptions bad;
  bad.eps = 0;
  EXPECT_THROW(big_dot_exp(f.phi, 1.0, f.set, bad), InvalidArgument);
  // The operator overload demands kappa >= 0 (no operator to estimate
  // from); the CSR overload treats kappa <= 0 as "estimate it".
  const linalg::SymmetricOp op = [&f](const linalg::Vector& x,
                                      linalg::Vector& y) { f.phi.apply(x, y); };
  EXPECT_THROW(big_dot_exp(op, 4, -1.0, f.set, {}), InvalidArgument);
  EXPECT_NO_THROW(big_dot_exp(f.phi, -1.0, f.set, {}));
}

TEST(BigDotExp, OperatorAndCsrOverloadsAgree) {
  const Fixture f(6, 3, 9);
  const Real kappa = linalg::lambda_max_exact(f.phi_dense);
  BigDotExpOptions options;
  options.eps = 0.1;
  const linalg::SymmetricOp op = [&f](const linalg::Vector& x,
                                      linalg::Vector& y) { f.phi.apply(x, y); };
  const BigDotExpResult r1 = big_dot_exp(op, 6, kappa, f.set, options);
  const BigDotExpResult r2 = big_dot_exp(f.phi, kappa, f.set, options);
  for (Index i = 0; i < f.set.size(); ++i) {
    EXPECT_NEAR(r1.dots[i], r2.dots[i], 1e-9 * (1 + r1.dots[i]));
  }
}

}  // namespace
}  // namespace psdp::core
