#include <gtest/gtest.h>

#include <cmath>

#include "apps/generators.hpp"
#include "core/bucketed.hpp"
#include "linalg/eig.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

void expect_dual_feasible(const PackingInstance& instance, const Vector& x,
                          Real tol) {
  Matrix psi(instance.dim(), instance.dim());
  for (Index i = 0; i < instance.size(); ++i) {
    psi.add_scaled(instance[i], x[i]);
  }
  EXPECT_LE(linalg::lambda_max_exact(psi), 1 + tol);
}

TEST(Bucketed, CapOneRecoversPlainAlgorithm) {
  // boost_cap = 1 forces g_i = 1 everywhere: identical iterates to
  // decision_dense (modulo the no-op safety caps).
  const PackingInstance instance =
      apps::random_ellipses({.n = 14, .m = 6, .rank = 2, .seed = 3});
  DecisionOptions plain_options;
  plain_options.eps = 0.15;
  plain_options.track_trajectory = true;
  const DecisionResult plain = decision_dense(instance, plain_options);

  BucketedOptions options;
  options.eps = 0.15;
  options.boost_cap = 1;
  options.track_trajectory = true;
  const BucketedResult bucketed = decision_bucketed(instance, options);

  EXPECT_EQ(plain.outcome, bucketed.outcome);
  EXPECT_EQ(plain.iterations, bucketed.iterations);
  ASSERT_EQ(plain.trajectory.size(), bucketed.trajectory.size());
  for (std::size_t i = 0; i < plain.trajectory.size(); ++i) {
    EXPECT_EQ(plain.trajectory[i].updated, bucketed.trajectory[i].updated);
    EXPECT_NEAR(plain.trajectory[i].x_norm1, bucketed.trajectory[i].x_norm1,
                1e-9 * plain.trajectory[i].x_norm1);
  }
  EXPECT_NEAR(bucketed.mean_boost, 1, 0.0);
}

TEST(Bucketed, DualCertificateExactlyFeasible) {
  const PackingInstance instance =
      apps::random_ellipses({.n = 20, .m = 8, .rank = 2, .seed = 5});
  const PackingInstance scaled = instance.scaled(0.02);
  BucketedOptions options;
  options.eps = 0.1;
  const BucketedResult r = decision_bucketed(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  expect_dual_feasible(scaled, r.dual_x, 1e-9);
}

TEST(Bucketed, PrimalCertificateSelfVerifies) {
  const PackingInstance instance =
      apps::random_ellipses({.n = 12, .m = 6, .rank = 2, .seed = 7});
  const PackingInstance scaled = instance.scaled(60.0);
  BucketedOptions options;
  options.eps = 0.1;
  const BucketedResult r = decision_bucketed(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kPrimal);
  EXPECT_NEAR(linalg::trace(r.primal_y), 1, 1e-9);
  for (Index i = 0; i < scaled.size(); ++i) {
    EXPECT_GE(linalg::frobenius_dot(scaled[i], r.primal_y), 1 - 1e-7);
  }
}

TEST(Bucketed, AcceleratesHeterogeneousSlackInstances) {
  // A diagonal LP-style instance where most coordinates sit far below the
  // threshold: boosting should cut the iteration count vs plain.
  const apps::DiagonalLpInstance lp = apps::diagonal_lp(
      {.groups = 6, .per_group = 3, .d_min = 0.1, .d_max = 8.0, .seed = 9});
  DecisionOptions plain_options;
  plain_options.eps = 0.1;
  const DecisionResult plain = decision_dense(lp.instance, plain_options);
  BucketedOptions options;
  options.eps = 0.1;
  options.boost_cap = 16;
  const BucketedResult bucketed = decision_bucketed(lp.instance, options);
  EXPECT_EQ(plain.outcome, bucketed.outcome);
  EXPECT_LT(bucketed.iterations, plain.iterations);
  EXPECT_GT(bucketed.mean_boost, 1.2);
}

TEST(Bucketed, WidthCapKeepsStepWithinEps) {
  // Track the trajectory and re-verify the invariant the cap enforces:
  // lambda_max(Psi_t - Psi_{t-1}) <= eps at every iteration. We re-run the
  // solver with tracking and reconstruct steps from the x snapshots is
  // overkill; instead rely on the exit state: lambda_max(Psi_final) can
  // exceed the Lemma 3.2 constant only if steps exceeded their budget many
  // times. The flag must be clean.
  const PackingInstance instance =
      apps::random_ellipses({.n = 16, .m = 8, .rank = 3, .seed = 11});
  BucketedOptions options;
  options.eps = 0.1;
  options.boost_cap = 64;
  const BucketedResult r = decision_bucketed(instance, options);
  EXPECT_FALSE(r.spectrum_bound_exceeded);
  EXPECT_LE(r.psi_lambda_max, r.constants.spectrum_bound * (1 + 1e-9));
}

TEST(Bucketed, OutcomeAgreesWithPlainAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const PackingInstance instance = apps::random_ellipses(
        {.n = 12, .m = 6, .rank = 2, .seed = 200 + seed});
    DecisionOptions plain_options;
    plain_options.eps = 0.15;
    BucketedOptions options;
    options.eps = 0.15;
    const DecisionResult plain = decision_dense(instance, plain_options);
    const BucketedResult bucketed = decision_bucketed(instance, options);
    EXPECT_EQ(plain.outcome, bucketed.outcome) << "seed " << seed;
  }
}

TEST(Bucketed, RespectsIterationOverride) {
  const PackingInstance instance =
      apps::random_ellipses({.n = 8, .m = 5, .rank = 2, .seed = 13});
  BucketedOptions options;
  options.eps = 0.1;
  options.max_iterations_override = 4;
  options.early_primal_exit = false;
  const BucketedResult r = decision_bucketed(instance, options);
  EXPECT_LE(r.iterations, 4);
}

TEST(Bucketed, RejectsBadBoostCap) {
  const PackingInstance instance =
      apps::random_ellipses({.n = 4, .m = 4, .rank = 2, .seed = 15});
  BucketedOptions options;
  options.boost_cap = 0.5;
  EXPECT_THROW(decision_bucketed(instance, options), InvalidArgument);
}

// Sweep boost caps: certificates stay sound for every cap.
class BucketedCapSweep : public ::testing::TestWithParam<Real> {};

TEST_P(BucketedCapSweep, CertificatesSoundAtEveryCap) {
  const Real cap = GetParam();
  const PackingInstance instance =
      apps::random_ellipses({.n = 14, .m = 6, .rank = 2, .seed = 17});
  BucketedOptions options;
  options.eps = 0.12;
  options.boost_cap = cap;
  const BucketedResult r = decision_bucketed(instance, options);
  if (r.outcome == DecisionOutcome::kDual) {
    expect_dual_feasible(instance, r.dual_x, 1e-9);
  } else {
    for (Index i = 0; i < instance.size(); ++i) {
      EXPECT_GE(linalg::frobenius_dot(instance[i], r.primal_y), 1 - 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, BucketedCapSweep,
                         ::testing::Values(1.0, 2.0, 8.0, 32.0, 128.0));

}  // namespace
}  // namespace psdp::core
