// Tests for the matrix multiplicative weights framework, including an
// empirical verification of the Theorem 2.1 regret bound on random and
// adversarial gain sequences -- the inequality the paper's Lemma 3.2 uses.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eig.hpp"
#include "mmw/mmw.hpp"
#include "rand/rng.hpp"
#include "test_helpers.hpp"

namespace psdp::mmw {
namespace {

using linalg::Matrix;
using linalg::Vector;
using psdp::testing::random_psd;

/// Random PSD gain normalized so 0 <= M <= I, as Theorem 2.1 requires.
Matrix random_gain(Index m, std::uint64_t seed) {
  Matrix g = random_psd(m, seed);
  const Real lmax = linalg::lambda_max_exact(g);
  if (lmax > 0) g.scale(1 / lmax * 0.9);
  return g;
}

TEST(MatrixMwu, InitialProbabilityIsUniform) {
  MatrixMwu game(4, 0.25);
  Matrix expect = Matrix::identity(4);
  expect.scale(0.25);
  EXPECT_MATRIX_NEAR(game.probability(), expect, 1e-12);
}

TEST(MatrixMwu, ProbabilityHasUnitTrace) {
  MatrixMwu game(5, 0.3);
  for (std::uint64_t t = 0; t < 6; ++t) {
    game.play(random_gain(5, 100 + t));
    EXPECT_NEAR(linalg::trace(game.probability()), 1.0, 1e-10);
  }
}

TEST(MatrixMwu, ProbabilityIsPsd) {
  MatrixMwu game(4, 0.5);
  for (std::uint64_t t = 0; t < 5; ++t) game.play(random_gain(4, 300 + t));
  const auto eig = linalg::jacobi_eig(game.probability());
  EXPECT_GE(eig.eigenvalues[3], -1e-12);
}

TEST(MatrixMwu, RejectsInvalidConstruction) {
  EXPECT_THROW(MatrixMwu(0, 0.25), InvalidArgument);
  EXPECT_THROW(MatrixMwu(3, 0.0), InvalidArgument);
  EXPECT_THROW(MatrixMwu(3, 0.75), InvalidArgument);
}

TEST(MatrixMwu, RejectsBadGains) {
  MatrixMwu game(3, 0.25);
  EXPECT_THROW(game.play(Matrix(2, 2)), InvalidArgument);
  Matrix asym = Matrix::identity(3);
  asym(0, 1) = 0.5;
  EXPECT_THROW(game.play(asym), InvalidArgument);
}

TEST(MatrixMwu, CumulativeGainAccumulates) {
  MatrixMwu game(3, 0.25);
  const Matrix gain = Matrix::identity(3);
  game.play(gain);  // I . (I/3) = 1
  EXPECT_NEAR(game.cumulative_gain(), 1.0, 1e-12);
  EXPECT_EQ(game.rounds(), 1);
  game.play(gain);
  EXPECT_NEAR(game.cumulative_gain(), 2.0, 1e-10);
}

TEST(MatrixMwu, IdentityGainsKeepUniformDistribution) {
  MatrixMwu game(4, 0.25);
  for (int t = 0; t < 3; ++t) game.play(Matrix::identity(4));
  Matrix expect = Matrix::identity(4);
  expect.scale(0.25);
  EXPECT_MATRIX_NEAR(game.probability(), expect, 1e-10);
}

// ------------------------------------------------------------------
// Theorem 2.1, verified empirically.
// ------------------------------------------------------------------

class RegretBoundTest
    : public ::testing::TestWithParam<std::tuple<Real, Index, std::uint64_t>> {};

TEST_P(RegretBoundTest, HoldsOnRandomGainSequences) {
  const auto [eps0, m, seed] = GetParam();
  MatrixMwu game(m, eps0);
  for (std::uint64_t t = 0; t < 30; ++t) {
    game.play(random_gain(m, seed * 1000 + t));
    ASSERT_TRUE(game.regret_bound_holds(1e-8))
        << "round " << t << ": lhs=" << game.regret_lhs()
        << " rhs=" << game.regret_rhs();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegretBoundTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5),
                       ::testing::Values(Index{2}, Index{6}, Index{12}),
                       ::testing::Values(1u, 2u)));

TEST(MatrixMwu, RegretBoundOnAdversarialConcentratedGains) {
  // Adversary always rewards the first coordinate: the algorithm must
  // still track it within the regret bound.
  const Index m = 5;
  MatrixMwu game(m, 0.25);
  Matrix gain(m, m);
  gain(0, 0) = 1;
  for (int t = 0; t < 60; ++t) {
    game.play(gain);
    ASSERT_TRUE(game.regret_bound_holds(1e-8)) << "round " << t;
  }
  // After many rounds the distribution concentrates on coordinate 0.
  EXPECT_GT(game.probability()(0, 0), 0.9);
}

TEST(MatrixMwu, RegretBoundOnAlternatingGains) {
  // Alternating orthogonal gains: the worst case for following a single
  // expert; the bound must still hold.
  const Index m = 4;
  MatrixMwu game(m, 0.5);
  Matrix g1(m, m), g2(m, m);
  g1(0, 0) = 1;
  g2(1, 1) = 1;
  for (int t = 0; t < 40; ++t) {
    game.play(t % 2 == 0 ? g1 : g2);
    ASSERT_TRUE(game.regret_bound_holds(1e-8)) << "round " << t;
  }
}

TEST(MatrixMwu, LambdaMaxCumulativeTracksBestAction) {
  const Index m = 3;
  MatrixMwu game(m, 0.25);
  Matrix gain(m, m);
  gain(2, 2) = 0.5;
  for (int t = 0; t < 10; ++t) game.play(gain);
  EXPECT_NEAR(game.lambda_max_cumulative(), 5.0, 1e-10);
}

}  // namespace
}  // namespace psdp::mmw
