#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_symmetric;

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(trace(i3), 3);
  EXPECT_EQ(i3(0, 0), 1);
  EXPECT_EQ(i3(0, 1), 0);
  const Matrix d = Matrix::diagonal(Vector{1, 2, 3});
  EXPECT_EQ(d(2, 2), 3);
  EXPECT_EQ(d(0, 2), 0);
}

TEST(Matrix, OuterProduct) {
  const Matrix a = Matrix::outer(Vector{1, 2});
  EXPECT_EQ(a(0, 0), 1);
  EXPECT_EQ(a(0, 1), 2);
  EXPECT_EQ(a(1, 1), 4);
  EXPECT_TRUE(is_symmetric(a));
}

TEST(Matrix, Rotation2dIsOrthogonal) {
  const Matrix r = Matrix::rotation2d(0.7);
  const Matrix rtr = gemm(r.transposed(), r);
  EXPECT_MATRIX_NEAR(rtr, Matrix::identity(2), 1e-14);
}

TEST(Matrix, MatvecMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const Vector y = matvec(a, Vector{1, 1, 1});
  EXPECT_EQ(y[0], 6);
  EXPECT_EQ(y[1], 15);
}

TEST(Matrix, MatvecDimensionMismatchThrows) {
  const Matrix a(2, 3);
  EXPECT_THROW(matvec(a, Vector{1, 1}), InvalidArgument);
}

TEST(Matrix, MatvecTransposeMatchesExplicitTranspose) {
  const Matrix a = random_symmetric(7, 21);
  const Vector x{1, -2, 0.5, 3, -1, 2, 0.25};
  const Vector y1 = matvec_transpose(a, x);
  const Vector y2 = matvec(a.transposed(), x);
  for (Index i = 0; i < 7; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Matrix, GemmIdentity) {
  const Matrix a = random_symmetric(5, 1);
  EXPECT_MATRIX_NEAR(gemm(a, Matrix::identity(5)), a, 1e-14);
  EXPECT_MATRIX_NEAR(gemm(Matrix::identity(5), a), a, 1e-14);
}

TEST(Matrix, GemmAssociativity) {
  const Matrix a = random_symmetric(4, 2);
  const Matrix b = random_symmetric(4, 3);
  const Matrix c = random_symmetric(4, 4);
  EXPECT_MATRIX_NEAR(gemm(gemm(a, b), c), gemm(a, gemm(b, c)), 1e-10);
}

TEST(Matrix, GemmInnerDimensionMismatchThrows) {
  EXPECT_THROW(gemm(Matrix(2, 3), Matrix(2, 3)), InvalidArgument);
}

TEST(Matrix, GemmRectangular) {
  Matrix a(2, 3, 1.0);
  Matrix b(3, 4, 2.0);
  const Matrix c = gemm(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 4);
  EXPECT_EQ(c(1, 3), 6.0);  // 3 * 1 * 2
}

TEST(Matrix, FrobeniusDotEqualsTraceOfProduct) {
  const Matrix a = random_psd(6, 10);
  const Matrix b = random_psd(6, 11);
  EXPECT_NEAR(frobenius_dot(a, b), trace(gemm(a, b)), 1e-10);
}

TEST(Matrix, FrobeniusDotOfPsdPairIsNonnegative) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_psd(5, 100 + seed);
    const Matrix b = random_psd(5, 200 + seed);
    EXPECT_GE(frobenius_dot(a, b), -1e-12);
  }
}

TEST(Matrix, QuadraticForm) {
  const Matrix a = Matrix::identity(3);
  EXPECT_NEAR(quadratic_form(a, Vector{1, 2, 3}, Vector{1, 2, 3}), 14, 1e-14);
}

TEST(Matrix, AddSubScale) {
  const Matrix a = random_symmetric(4, 5);
  const Matrix b = random_symmetric(4, 6);
  Matrix c = add(a, b);
  c = sub(c, b);
  EXPECT_MATRIX_NEAR(c, a, 1e-13);
  Matrix d = a;
  d.scale(2);
  EXPECT_MATRIX_NEAR(d, add(a, a), 1e-14);
}

TEST(Matrix, AddScaledIdentity) {
  Matrix a(3, 3);
  a.add_scaled_identity(2.5);
  EXPECT_MATRIX_NEAR(a, Matrix::diagonal(Vector{2.5, 2.5, 2.5}), 0);
  Matrix rect(2, 3);
  EXPECT_THROW(rect.add_scaled_identity(1.0), InvalidArgument);
}

TEST(Matrix, SymmetrizeFixesAsymmetry) {
  Matrix a(2, 2);
  a(0, 1) = 1;
  a(1, 0) = 3;
  a.symmetrize();
  EXPECT_EQ(a(0, 1), 2);
  EXPECT_EQ(a(1, 0), 2);
  EXPECT_TRUE(is_symmetric(a));
}

TEST(Matrix, IsSymmetricDetectsAsymmetry) {
  Matrix a = Matrix::identity(3);
  EXPECT_TRUE(is_symmetric(a));
  a(0, 2) = 0.1;
  EXPECT_FALSE(is_symmetric(a));
  EXPECT_FALSE(is_symmetric(Matrix(2, 3)));  // non-square
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2);
  Matrix b(2, 2);
  b(1, 0) = -0.5;
  EXPECT_EQ(max_abs_diff(a, b), 0.5);
}

TEST(Matrix, AllFinite) {
  Matrix a(2, 2);
  EXPECT_TRUE(all_finite(a));
  a(1, 1) = std::numeric_limits<Real>::infinity();
  EXPECT_FALSE(all_finite(a));
}

TEST(Matrix, TraceRequiresSquare) {
  EXPECT_THROW(trace(Matrix(2, 3)), InvalidArgument);
}

class GemmSizeSweep : public ::testing::TestWithParam<Index> {};

TEST_P(GemmSizeSweep, MatchesNaiveTripleLoop) {
  const Index n = GetParam();
  const Matrix a = random_symmetric(n, 31 + static_cast<std::uint64_t>(n));
  const Matrix b = random_symmetric(n, 77 + static_cast<std::uint64_t>(n));
  const Matrix c = gemm(a, b);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      Real expect = 0;
      for (Index k = 0; k < n; ++k) expect += a(i, k) * b(k, j);
      ASSERT_NEAR(c(i, j), expect, 1e-10) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSizeSweep,
                         ::testing::Values(1, 2, 3, 8, 17, 64));

}  // namespace
}  // namespace psdp::linalg
