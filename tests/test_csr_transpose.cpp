// Property-style equivalence suite for the transpose kernels: the
// transpose-index gather, the segmented-column gather, the owned-column
// scatter, and a naive dense reference must agree on randomized sparsity
// patterns, across thread counts and panel widths. Determinism is part of
// the contract --
//   * every path is bitwise reproducible at a fixed thread count,
//   * the gather and the segmented gather are additionally bitwise
//     identical across thread counts AND to each other, for any segment
//     window (each output row is one serial ascending-row reduction in all
//     of them), and
//   * gather == scatter bitwise at one thread (same accumulation order),
// so future kernel refactors cannot silently change a single bit of the
// solver trajectories that sit on top of these kernels. The KernelPlan
// dispatch inherits the same guarantee: autotuned plans only choose
// between the two bit-identical gathers, so whatever the plan decides,
// apply_transpose_block matches the gather bitwise.
#include <gtest/gtest.h>

#include <vector>

#include "par/parallel.hpp"
#include "rand/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernel_plan.hpp"
#include "test_helpers.hpp"

namespace psdp::sparse {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// RAII guard: restore the global thread count on scope exit.
struct ThreadGuard {
  int before = par::num_threads();
  ~ThreadGuard() { par::set_num_threads(before); }
};

/// Random rows x cols pattern with ~nnz_per_row entries per row (some rows
/// and columns may stay empty -- the kernels must handle both).
Csr random_sparse(Index rows, Index cols, Index nnz_per_row,
                  std::uint64_t seed) {
  rand::Rng rng(seed);
  std::vector<Triplet> triplets;
  for (Index i = 0; i < rows; ++i) {
    const auto row_nnz = static_cast<Index>(rng.uniform_index(nnz_per_row + 1));
    for (Index e = 0; e < row_nnz; ++e) {
      triplets.push_back({i, static_cast<Index>(rng.uniform_index(cols)),
                          rng.normal()});
    }
  }
  return Csr::from_triplets(rows, cols, std::move(triplets));
}

/// Random dense panel with heterogeneous entries.
Matrix random_panel(Index rows, Index b, std::uint64_t seed) {
  rand::Rng rng(seed);
  Matrix x(rows, b);
  for (Index i = 0; i < rows; ++i) {
    for (Index t = 0; t < b; ++t) x(i, t) = rng.normal();
  }
  return x;
}

/// Naive dense reference of Y = A^T X (independent accumulation order, so
/// comparisons against it are tolerance-based).
Matrix naive_transpose_block(const Csr& a, const Matrix& x) {
  Matrix y(a.cols(), x.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      for (Index t = 0; t < x.cols(); ++t) {
        y(cols[k], t) += vals[k] * x(i, t);
      }
    }
  }
  return y;
}

/// Build options forcing a segment grid on the tiny test shapes (small base
/// granularity, tiny windows so the multi-window sweep actually runs, no
/// index-overhead gate, no timing runs).
TransposePlanOptions forced_grid_options(Index segment_rows) {
  TransposePlanOptions options;
  options.segment_rows = segment_rows;
  options.window_bytes = 64;  // ~1 segment per window at every test width
  options.max_segment_index_ratio = 1e9;
  options.autotune.enable = false;
  return options;
}

struct Shape {
  Index rows;
  Index cols;
  Index nnz_per_row;
};

class CsrTransposeEquivalence
    : public ::testing::TestWithParam<std::tuple<Index, std::uint64_t>> {};

TEST_P(CsrTransposeEquivalence, GatherSegmentedScatterAndNaiveAgree) {
  const auto [b, seed] = GetParam();
  const Shape shapes[] = {
      {256, 4, 2},    // tall, narrow (the factor shape)
      {128, 128, 3},  // square
      {64, 16, 1},    // very sparse, some empty rows/cols
      {33, 7, 5},     // odd sizes, duplicate columns within rows likely
  };
  for (const Shape& shape : shapes) {
    Csr owned = random_sparse(shape.rows, shape.cols, shape.nnz_per_row, seed);
    Csr indexed = owned;  // same matrix, index built on the copy
    indexed.build_transpose_index();
    Csr segmented = owned;  // same matrix, with a forced segment grid
    segmented.build_transpose_index(forced_grid_options(16));
    // A second grid granularity: the window size is a pure locality knob,
    // so it must not change a single bit.
    Csr segmented_coarse = owned;
    segmented_coarse.build_transpose_index(forced_grid_options(8));
    ASSERT_FALSE(owned.has_transpose_index());
    ASSERT_TRUE(indexed.has_transpose_index());
    ASSERT_TRUE(segmented.has_segment_index());
    ASSERT_TRUE(segmented_coarse.has_segment_index());

    const Matrix x = random_panel(shape.rows, b, seed * 31 + 7);
    const Matrix naive = naive_transpose_block(owned, x);
    const Real tol = 1e-12 * static_cast<Real>(shape.nnz_per_row + 1);

    ThreadGuard guard;
    Matrix gather_one_thread;  // the cross-thread-count determinism anchor
    for (const int threads : {1, 2, std::max(4, guard.before)}) {
      par::set_num_threads(threads);

      Matrix ys;
      std::vector<Real> partial;
      owned.apply_transpose_block_owned(x, ys, partial);
      Matrix yg;
      indexed.apply_transpose_block_indexed(x, yg);
      Matrix yseg;
      segmented.apply_transpose_block_segmented(x, yseg);

      // All paths match the naive reference within accumulation rounding.
      EXPECT_MATRIX_NEAR(ys, naive, tol);
      EXPECT_MATRIX_NEAR(yg, naive, tol);
      EXPECT_MATRIX_NEAR(yseg, naive, tol);

      // The segmented gather folds each output in the same ascending-row
      // order as the plain gather: bitwise identical, at every thread
      // count and for every grid granularity.
      EXPECT_EQ(yseg, yg) << "segmented != gather bitwise at " << threads
                          << " threads";
      Matrix yseg_coarse;
      segmented_coarse.apply_transpose_block_segmented(x, yseg_coarse);
      EXPECT_EQ(yseg_coarse, yg)
          << "segmented gather bits depend on the grid granularity";

      // Bitwise determinism at a fixed thread count: re-running any kernel
      // reproduces the exact bits.
      Matrix ys2;
      std::vector<Real> partial2;
      owned.apply_transpose_block_owned(x, ys2, partial2);
      EXPECT_EQ(ys, ys2) << "scatter not deterministic at " << threads
                         << " threads";
      Matrix yg2;
      indexed.apply_transpose_block_indexed(x, yg2);
      EXPECT_EQ(yg, yg2) << "gather not deterministic at " << threads
                         << " threads";

      if (threads == 1) {
        // One thread: the scatter accumulates each output column in row
        // order, exactly the gather's order -- bitwise equal.
        EXPECT_EQ(ys, yg) << "gather != scatter bitwise at one thread";
        gather_one_thread = yg;
      } else {
        // The gather's result is independent of the thread count entirely.
        EXPECT_EQ(yg, gather_one_thread)
            << "gather result changed with thread count " << threads;
      }

      // The public entry point dispatches through the KernelPlan. Plans
      // built here only ever choose the gather or the segmented gather --
      // bit-identical twins -- so whatever the plan decided, the dispatch
      // must equal the gather bitwise.
      Matrix yd;
      indexed.apply_transpose_block(x, yd);
      EXPECT_EQ(yd, yg);
      Matrix yd_seg;
      segmented.apply_transpose_block(x, yd_seg);
      EXPECT_EQ(yd_seg, yg);
      Matrix yd_owned;
      owned.apply_transpose_block(x, yd_owned);
      EXPECT_EQ(yd_owned, ys);  // no index: the scatter is the only kernel

      // Forcing each kernel through a caller-provided plan reproduces the
      // raw kernel's bits exactly (scatter: at this fixed thread count).
      const KernelPlan force_gather = KernelPlan::forced(TransposeKernel::kGather);
      const KernelPlan force_segmented =
          KernelPlan::forced(TransposeKernel::kSegmented);
      const KernelPlan force_scatter =
          KernelPlan::forced(TransposeKernel::kScatter);
      Matrix yf;
      segmented.apply_transpose_block(x, yf, partial, &force_gather);
      EXPECT_EQ(yf, yg);
      segmented.apply_transpose_block(x, yf, partial, &force_segmented);
      EXPECT_EQ(yf, yseg);
      segmented.apply_transpose_block(x, yf, partial, &force_scatter);
      EXPECT_EQ(yf, ys);
      // Forcing the segmented gather on a matrix without a grid falls back
      // to its bit-identical twin instead of failing.
      indexed.apply_transpose_block(x, yf, partial, &force_segmented);
      EXPECT_EQ(yf, yg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PanelWidthsAndSeeds, CsrTransposeEquivalence,
    ::testing::Combine(::testing::Values<Index>(1, 4, 8, 32),
                       ::testing::Values<std::uint64_t>(3, 71, 1234)));

TEST(CsrTransposeIndex, VectorPathDispatchesAndMatches) {
  const Csr owned = random_sparse(300, 9, 3, 99);
  Csr indexed = owned;
  indexed.build_transpose_index();
  Vector x(300);
  rand::Rng rng(5);
  for (Index i = 0; i < x.size(); ++i) x[i] = rng.normal();

  const Vector ys = owned.apply_transpose(x);
  const Vector yg = indexed.apply_transpose(x);
  ASSERT_EQ(ys.size(), yg.size());
  for (Index j = 0; j < ys.size(); ++j) {
    EXPECT_NEAR(ys[j], yg[j], 1e-12) << "column " << j;
  }
}

TEST(CsrTransposeIndex, BuildIsIdempotentAndSurvivesScale) {
  Csr m = random_sparse(64, 8, 2, 17);
  m.build_transpose_index(forced_grid_options(16));
  m.build_transpose_index();  // no-op (options of the first build stick)
  ASSERT_TRUE(m.has_segment_index());
  const Matrix x = random_panel(64, 4, 3);
  Matrix before, before_seg;
  m.apply_transpose_block_indexed(x, before);
  m.apply_transpose_block_segmented(x, before_seg);
  // scale() must keep the cached CSC values (both kernels read them) in
  // sync.
  m.scale(2.5);
  Matrix after, after_seg;
  m.apply_transpose_block_indexed(x, after);
  m.apply_transpose_block_segmented(x, after_seg);
  Matrix expected = before;
  expected.scale(2.5);
  EXPECT_MATRIX_NEAR(after, expected, 1e-12);
  EXPECT_MATRIX_NEAR(after_seg, expected, 1e-12);
}

TEST(CsrTransposeIndex, IndexedRequiresBuild) {
  const Csr m = random_sparse(16, 4, 2, 1);
  Matrix y;
  EXPECT_THROW(m.apply_transpose_block_indexed(random_panel(16, 2, 2), y),
               InvalidArgument);
}

TEST(CsrTransposeIndex, SegmentedRequiresGrid) {
  Csr m = random_sparse(64, 8, 2, 1);
  m.build_transpose_index();  // default granularity 1024 > rows: no grid
  ASSERT_TRUE(m.has_transpose_index());
  ASSERT_FALSE(m.has_segment_index());
  Matrix y;
  EXPECT_THROW(m.apply_transpose_block_segmented(random_panel(64, 2, 2), y),
               InvalidArgument);
}

TEST(CsrTransposeIndex, GridSkippedWhenOffsetTableOutweighsData) {
  // Wide and sparse: the (num_segments+1) x cols offset table would dwarf
  // the nonzeros, so the default overhead gate skips the grid.
  Csr wide = random_sparse(128, 400, 1, 21);
  TransposePlanOptions options;
  options.segment_rows = 4;  // 33 grid rows x 400 cols >> nnz
  options.autotune.enable = false;
  wide.build_transpose_index(options);
  EXPECT_TRUE(wide.has_transpose_index());
  EXPECT_FALSE(wide.has_segment_index());
}

TEST(CsrTransposeIndex, EmptyColumnsProduceZeroRows) {
  // A matrix whose columns 1 and 3 are structurally empty.
  const Csr m = Csr::from_triplets(
      4, 5, {{0, 0, 1.0}, {1, 2, -2.0}, {3, 4, 0.5}, {2, 0, 3.0}});
  Csr indexed = m;
  indexed.build_transpose_index();
  const Matrix x = random_panel(4, 8, 11);
  Matrix y;
  indexed.apply_transpose_block_indexed(x, y);
  for (Index t = 0; t < 8; ++t) {
    EXPECT_EQ(y(1, t), 0.0);
    EXPECT_EQ(y(3, t), 0.0);
  }
  EXPECT_MATRIX_NEAR(y, naive_transpose_block(m, x), 1e-14);
}

}  // namespace
}  // namespace psdp::sparse
