// Tests for the oracle layer: the three PenaltyOracle implementations must
// agree on dots/trace (within the sketched oracle's stated tolerance), the
// measured lambda_max primitive must be certified, and the solver variants
// that newly run on the sketched oracle (bucketed, mixed) must reproduce
// their dense-oracle results.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/generators.hpp"
#include "core/bucketed.hpp"
#include "core/certificates.hpp"
#include "core/mixed.hpp"
#include "core/optimize.hpp"
#include "core/penalty_oracle.hpp"
#include "linalg/eig.hpp"
#include "linalg/taylor.hpp"
#include "rand/rng.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// A deterministic positive weight vector with heterogeneous entries.
Vector test_weights(Index n, Real scale) {
  Vector x(n);
  for (Index i = 0; i < n; ++i) {
    x[i] = scale * (1 + static_cast<Real>(i % 3)) /
           static_cast<Real>(n);
  }
  return x;
}

// ---------------------------------------------------------------------------
// Dense vs sketched: at tight dot_eps on a small instance the sketch is the
// exact identity, so the only error left is the Taylor truncation, which
// Lemma 4.2 bounds by the oracle's advertised noise.
// ---------------------------------------------------------------------------

class OracleEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleEquivalence, DenseAndSketchedAgreeWithinNoiseBound) {
  const std::uint64_t seed = GetParam();
  apps::FactorizedOptions gen;
  gen.n = 8;
  gen.m = 10;
  gen.nnz_per_column = 4;
  gen.seed = seed;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  const PackingInstance dense = fact.to_dense();

  DenseEigOracle dense_oracle(dense);
  SketchedOracleOptions sketch_options;
  sketch_options.eps = 0.2;
  sketch_options.dot_eps = 0.02;  // tight: noise_bound = 0.02
  SketchedTaylorOracle sketched_oracle(fact, sketch_options);
  EXPECT_NEAR(sketched_oracle.noise_bound(), 0.02, 1e-15);

  const Vector x = test_weights(fact.size(), 0.05);
  PenaltyBatch dense_batch;
  PenaltyBatch sketched_batch;
  dense_oracle.compute(x, 1, dense_batch);
  sketched_oracle.compute(x, 1, sketched_batch);

  const Real tol = sketched_oracle.noise_bound();
  EXPECT_NEAR(sketched_batch.trace / dense_batch.trace, 1, tol);
  ASSERT_EQ(sketched_batch.dots.size(), dense_batch.dots.size());
  for (Index i = 0; i < dense_batch.dots.size(); ++i) {
    EXPECT_NEAR(sketched_batch.dots[i] / dense_batch.dots[i], 1, tol)
        << "constraint " << i;
  }
  // The dense oracle exposes its weight matrix; the sketched one never
  // forms it.
  ASSERT_NE(dense_batch.weight, nullptr);
  EXPECT_EQ(sketched_batch.weight, nullptr);
  EXPECT_NEAR(linalg::trace(*dense_batch.weight), dense_batch.trace, 1e-9);
}

TEST_P(OracleEquivalence, ScalarMatchesDenseOnDiagonalEmbedding) {
  const std::uint64_t seed = GetParam();
  const PackingLp lp = apps::random_packing_lp(
      {.rows = 6, .cols = 10, .seed = seed});
  const PackingInstance sdp = lp.to_diagonal_sdp();

  ScalarSoftmaxOracle scalar_oracle(lp.matrix());
  DenseEigOracle dense_oracle(sdp);
  ASSERT_EQ(scalar_oracle.size(), dense_oracle.size());
  for (Index i = 0; i < scalar_oracle.size(); ++i) {
    EXPECT_NEAR(scalar_oracle.constraint_trace(i),
                dense_oracle.constraint_trace(i), 1e-12);
  }

  const Vector x = test_weights(lp.size(), 0.4);
  PenaltyBatch scalar_batch;
  PenaltyBatch dense_batch;
  scalar_oracle.compute(x, 1, scalar_batch);
  dense_oracle.compute(x, 1, dense_batch);

  // The scalar weights are shifted by max_j Psi_j, so compare the
  // shift-invariant normalized penalties dots_i / trace.
  for (Index i = 0; i < lp.size(); ++i) {
    EXPECT_NEAR(scalar_batch.dots[i] / scalar_batch.trace,
                dense_batch.dots[i] / dense_batch.trace, 1e-8)
        << "variable " << i;
  }
  ASSERT_NE(scalar_batch.weight_vec, nullptr);
  EXPECT_EQ(scalar_batch.weight, nullptr);

  // The measured lambda_max primitive agrees too (exact on both sides).
  EXPECT_NEAR(scalar_oracle.lambda_max(x), dense_oracle.lambda_max(x),
              1e-8 * std::max<Real>(1, dense_oracle.lambda_max(x)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleEquivalence,
                         ::testing::Values(3u, 17u, 29u));

// ---------------------------------------------------------------------------
// Oracle internals: incremental Psi sync and certified lambda_max.
// ---------------------------------------------------------------------------

TEST(DenseEigOracle, IncrementalSyncMatchesFreshOracle) {
  const PackingInstance instance =
      apps::random_ellipses({.n = 10, .m = 6, .rank = 2, .seed = 7});
  DenseEigOracle incremental(instance);
  PenaltyBatch batch;

  // Walk the oracle through three weight vectors, mutating different
  // coordinate subsets, then compare against a fresh oracle at the final x.
  Vector x = test_weights(instance.size(), 0.1);
  incremental.compute(x, 1, batch);
  for (Index i = 0; i < x.size(); i += 2) x[i] *= 1.5;
  incremental.compute(x, 2, batch);
  for (Index i = 1; i < x.size(); i += 2) x[i] *= 0.25;
  incremental.compute(x, 3, batch);

  DenseEigOracle fresh(instance);
  PenaltyBatch fresh_batch;
  fresh.compute(x, 1, fresh_batch);

  EXPECT_NEAR(batch.trace, fresh_batch.trace,
              1e-10 * std::abs(fresh_batch.trace));
  for (Index i = 0; i < instance.size(); ++i) {
    EXPECT_NEAR(batch.dots[i], fresh_batch.dots[i],
                1e-10 * std::max<Real>(1, std::abs(fresh_batch.dots[i])));
  }
}

TEST(SketchedTaylorOracle, LambdaMaxIsACertifiedUpperBound) {
  apps::FactorizedOptions gen;
  gen.n = 12;
  gen.m = 16;
  gen.seed = 11;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  SketchedOracleOptions options;
  options.eps = 0.2;
  SketchedTaylorOracle oracle(fact, options);

  const Vector x = test_weights(fact.size(), 0.3);
  const Real bound = oracle.lambda_max(x);

  const PackingInstance dense = fact.to_dense();
  DenseEigOracle dense_oracle(dense);
  const Real exact = dense_oracle.lambda_max(x);
  EXPECT_GE(bound, exact * (1 - 1e-9));       // never below the truth
  EXPECT_LE(bound, exact * 1.01 + 1e-12);     // and tight (1.1% inflation)
}

// ---------------------------------------------------------------------------
// Bucketed and mixed on the sketched oracle: the new nearly-linear paths
// reproduce the dense-oracle results and return measured certificates.
// ---------------------------------------------------------------------------

TEST(BucketedFactorized, AgreesWithDenseOracleOnOutcome) {
  apps::FactorizedOptions gen;
  gen.n = 10;
  gen.m = 8;
  gen.nnz_per_column = 4;
  gen.seed = 5;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  const PackingInstance dense = fact.to_dense();
  for (Real scale : {0.02, 50.0}) {
    FactorizedBucketedOptions fact_options;
    fact_options.eps = 0.2;
    const BucketedResult rf =
        decision_bucketed(fact.scaled(scale), fact_options);
    BucketedOptions dense_options;
    dense_options.eps = 0.2;
    const BucketedResult rd =
        decision_bucketed(dense.scaled(scale), dense_options);
    EXPECT_EQ(rf.outcome, rd.outcome) << "scale " << scale;
  }
}

TEST(BucketedFactorized, DualCertificateVerifiesExactly) {
  apps::FactorizedOptions gen;
  gen.n = 12;
  gen.m = 10;
  gen.seed = 13;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  const FactorizedPackingInstance scaled = fact.scaled(0.02);
  FactorizedBucketedOptions options;
  options.eps = 0.15;
  const BucketedResult r = decision_bucketed(scaled, options);
  ASSERT_EQ(r.outcome, DecisionOutcome::kDual);
  // The dual is rescaled by the certified Lanczos upper bound: exactly
  // feasible against the instance the solver ran on.
  const DualCheck check = check_dual(scaled, r.dual_x, 1e-6);
  EXPECT_TRUE(check.feasible) << "lambda_max=" << check.lambda_max;
  // primal_y stays empty on the factorized path.
  EXPECT_EQ(r.primal_y.rows(), 0);
}

TEST(BucketedFactorized, BoostsLikeTheDensePath) {
  // Heterogeneous slack: the boosted factorized run must also beat the
  // plain factorized run (same acceleration story as the dense variant).
  apps::FactorizedOptions gen;
  gen.n = 16;
  gen.m = 12;
  gen.seed = 19;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  const FactorizedPackingInstance scaled = fact.scaled(0.01);
  DecisionOptions plain_options;
  plain_options.eps = 0.15;
  const DecisionResult plain = decision_factorized(scaled, plain_options);
  FactorizedBucketedOptions options;
  options.eps = 0.15;
  options.boost_cap = 16;
  const BucketedResult boosted = decision_bucketed(scaled, options);
  EXPECT_EQ(plain.outcome, boosted.outcome);
  EXPECT_LE(boosted.iterations, plain.iterations);
  EXPECT_GE(boosted.mean_boost, 1.0);
}

/// A planted-feasible factorized mixed instance: loosely packed (scale
/// 0.05) with uniformly reachable covering coordinates.
MixedFactorizedInstance planted_mixed_factorized(std::uint64_t seed) {
  MixedFactorizedInstance instance;
  apps::FactorizedOptions gen;
  gen.n = 12;
  gen.m = 10;
  gen.nnz_per_column = 4;
  gen.seed = seed;
  instance.packing = apps::random_factorized(gen).scaled(0.05);
  rand::Rng rng(seed * 7 + 1);
  for (Index i = 0; i < instance.packing.size(); ++i) {
    Vector d(4);
    for (Index j = 0; j < d.size(); ++j) d[j] = rng.uniform(0.5, 1.5);
    instance.covering.push_back(std::move(d));
  }
  return instance;
}

TEST(MixedFactorized, RecoversPlantedFeasibleInstance) {
  const MixedFactorizedInstance instance = planted_mixed_factorized(2);
  MixedFactorizedOptions options;
  options.eps = 0.2;
  const MixedResult r = solve_mixed(instance, options);
  ASSERT_EQ(r.outcome, MixedOutcome::kFeasible);
  // The loop must have reached the cover target, not exhausted its budget
  // (the loose packing scale would rescale even a failed run into nominal
  // feasibility, so the iteration count is the falsifiable part).
  EXPECT_LT(r.iterations,
            4 * algorithm_constants(instance.size(), options.eps).r_limit);
  // Packing side: the certified-upper-bound rescale keeps x feasible.
  const DualCheck pack = check_dual(instance.packing, r.x, 1e-6);
  EXPECT_TRUE(pack.feasible) << "lambda_max=" << pack.lambda_max;
  // Covering side: recompute coverage from scratch; min_coverage is the
  // measured value the outcome was decided on.
  Vector coverage(instance.covering_dim());
  for (Index i = 0; i < instance.size(); ++i) {
    coverage.add_scaled(instance.covering[static_cast<std::size_t>(i)],
                        r.x[i]);
  }
  Real mc = coverage[0];
  for (Index j = 1; j < coverage.size(); ++j) mc = std::min(mc, coverage[j]);
  EXPECT_NEAR(r.min_coverage, mc, 1e-9);
  EXPECT_GE(r.min_coverage, 1 - options.eps);
}

TEST(MixedFactorized, AgreesWithDenseOracleMixed) {
  // The same instance through both oracles: the dense solve densifies the
  // packing factors, the factorized one never forms an m x m matrix; both
  // must reach the same (measured) conclusion.
  const MixedFactorizedInstance instance = planted_mixed_factorized(9);
  MixedInstance dense;
  dense.packing = instance.packing.to_dense();
  dense.covering = instance.covering;

  MixedFactorizedOptions fact_options;
  fact_options.eps = 0.2;
  const MixedResult rf = solve_mixed(instance, fact_options);
  MixedOptions dense_options;
  dense_options.eps = 0.2;
  const MixedResult rd = solve_mixed(dense, dense_options);

  EXPECT_EQ(rf.outcome, rd.outcome);
  // Both coverage values are measured post-rescale; the factorized rescale
  // divides by a <= 1.1%-inflated bound, so they track closely.
  EXPECT_NEAR(rf.min_coverage, rd.min_coverage,
              0.05 * std::max<Real>(1, rd.min_coverage));
}

TEST(MixedFactorized, ValidatesStructure) {
  MixedFactorizedInstance instance = planted_mixed_factorized(4);
  EXPECT_NO_THROW(instance.validate());
  MixedFactorizedInstance bad = instance;
  bad.covering.pop_back();
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// The optimizer's oracle-config routing: phased/bucketed probes honor the
// same dot_block_size / dot_options as decision probes.
// ---------------------------------------------------------------------------

class ProbeSolverSweep : public ::testing::TestWithParam<ProbeSolver> {};

TEST_P(ProbeSolverSweep, FactorizedSearchBracketsWithEveryProbeSolver) {
  apps::FactorizedOptions gen;
  gen.n = 10;
  gen.m = 8;
  gen.nnz_per_column = 4;
  gen.seed = 23;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  OptimizeOptions options;
  options.eps = 0.2;
  options.decision_eps = 0.15;  // keep probes cheap; bracket stays correct
  options.probe_solver = GetParam();
  options.dot_block_size = 4;  // routed through the shared oracle config
  const PackingOptimum opt = approx_packing(fact, options);
  EXPECT_GT(opt.lower, 0);
  EXPECT_LE(opt.lower, opt.upper * (1 + 1e-12));
  // best_x certifies `lower` and is exactly feasible.
  const DualCheck check = check_dual(fact, opt.best_x, 1e-6);
  EXPECT_TRUE(check.feasible) << "lambda_max=" << check.lambda_max;
  EXPECT_NEAR(check.value, opt.lower, 1e-6 * std::max<Real>(1, opt.lower));
}

INSTANTIATE_TEST_SUITE_P(Solvers, ProbeSolverSweep,
                         ::testing::Values(ProbeSolver::kDecision,
                                           ProbeSolver::kPhased,
                                           ProbeSolver::kBucketed));

// ---------------------------------------------------------------------------
// Fused dots (the one-pass kernel) through the oracle: same penalties as
// the two-pass layout, to rounding.
// ---------------------------------------------------------------------------

TEST(SketchedTaylorOracle, FusedDotsMatchTwoPassLayout) {
  apps::FactorizedOptions gen;
  gen.n = 12;
  gen.m = 32;
  gen.seed = 31;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  const Vector x = test_weights(fact.size(), 0.1);

  SketchedOracleOptions fused_options;
  fused_options.eps = 0.25;
  fused_options.dot_options.block_size = 8;
  fused_options.dot_options.fuse_dots = true;
  SketchedTaylorOracle fused(fact, fused_options);

  SketchedOracleOptions two_pass_options = fused_options;
  two_pass_options.dot_options.fuse_dots = false;
  SketchedTaylorOracle two_pass(fact, two_pass_options);

  PenaltyBatch fused_batch;
  PenaltyBatch two_pass_batch;
  fused.compute(x, 5, fused_batch);
  two_pass.compute(x, 5, two_pass_batch);

  EXPECT_NEAR(fused_batch.trace, two_pass_batch.trace,
              1e-10 * std::abs(two_pass_batch.trace));
  for (Index i = 0; i < fact.size(); ++i) {
    EXPECT_NEAR(fused_batch.dots[i], two_pass_batch.dots[i],
                1e-10 * std::max<Real>(1, std::abs(two_pass_batch.dots[i])));
  }
}

// ---------------------------------------------------------------------------
// Incremental oracle state: the diffed Tr[Psi] and the tracked lambda_max
// bound must match from-scratch recomputation over long weight trajectories,
// including coordinates that shrink and hit exactly zero.
// ---------------------------------------------------------------------------

TEST(SketchedTaylorOracle, IncrementalBoundsMatchFromScratchOver50Rounds) {
  apps::FactorizedOptions gen;
  gen.n = 14;
  gen.m = 20;
  gen.nnz_per_column = 4;
  gen.seed = 37;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  SketchedOracleOptions options;
  options.eps = 0.25;
  SketchedTaylorOracle oracle(fact, options);

  rand::Rng rng(91);
  Vector x(fact.size(), 0.01);
  PenaltyBatch batch;
  for (int round = 1; round <= 60; ++round) {
    // Mutate a changing subset: grow some coordinates, shrink others, and
    // periodically force exact zeros (the hard case for diff updates).
    for (Index i = 0; i < x.size(); ++i) {
      const auto move = rng.uniform_index(4);
      if (move == 0) x[i] *= 1.25;
      else if (move == 1) x[i] *= 0.5;
      else if (move == 2 && round % 7 == 0) x[i] = 0;
      // move == 3: leave unchanged (delta == 0 path)
    }
    oracle.compute(x, static_cast<std::uint64_t>(round), batch);

    // From-scratch recomputation of both tracked sums.
    Real trace = 0;
    Real lambda_bound = 0;
    for (Index i = 0; i < fact.size(); ++i) {
      trace += x[i] * oracle.constraint_trace(i);
      lambda_bound += x[i] * oracle.constraint_lambda_max(i);
    }
    const Real trace_tol = 1e-12 * std::max<Real>(1, trace);
    EXPECT_NEAR(oracle.tracked_trace(), trace, trace_tol)
        << "round " << round;
    EXPECT_NEAR(oracle.tracked_lambda_bound(), lambda_bound,
                1e-12 * std::max<Real>(1, lambda_bound))
        << "round " << round;
    // The clamp pair: per-constraint lambda_max bounds never exceed the
    // constraint traces, so the tracked bound never exceeds Tr[Psi].
    EXPECT_LE(oracle.tracked_lambda_bound(),
              oracle.tracked_trace() + trace_tol)
        << "round " << round;
  }
}

TEST(SketchedTaylorOracle, TrackedLambdaBoundIsSound) {
  // sum_i x_i lambda_max(A_i) must upper-bound lambda_max(Psi) exactly (up
  // to the advertised hair of eigensolver inflation).
  apps::FactorizedOptions gen;
  gen.n = 10;
  gen.m = 12;
  gen.seed = 53;
  const FactorizedPackingInstance fact = apps::random_factorized(gen);
  SketchedOracleOptions options;
  options.eps = 0.2;
  SketchedTaylorOracle oracle(fact, options);

  const Vector x = test_weights(fact.size(), 0.3);
  PenaltyBatch batch;
  oracle.compute(x, 1, batch);

  const PackingInstance dense_instance = fact.to_dense();
  DenseEigOracle dense(dense_instance);
  const Real exact = dense.lambda_max(x);
  EXPECT_GE(oracle.tracked_lambda_bound(), exact * (1 - 1e-9));
  // And each per-constraint bound is a genuine lambda_max upper bound.
  for (Index i = 0; i < fact.size(); ++i) {
    const Real exact_i = linalg::lambda_max_exact(fact[i].to_dense());
    EXPECT_GE(oracle.constraint_lambda_max(i), exact_i * (1 - 1e-9))
        << "constraint " << i;
    EXPECT_LE(oracle.constraint_lambda_max(i),
              oracle.constraint_trace(i) * (1 + 1e-12)) << "constraint " << i;
  }
}

/// Adversarial spiked-spectrum factor: one huge eigenvalue next to many
/// small ones, so Tr[A] >> lambda_max(A) and the trace-only kappa wildly
/// overshoots the Taylor degree.
FactorizedPackingInstance spiked_instance(Index m, Index spikes) {
  std::vector<sparse::FactorizedPsd> items;
  for (Index s = 0; s < spikes; ++s) {
    std::vector<sparse::Triplet> triplets;
    // Column 0: a spike (eigenvalue 4) on coordinate s; columns 1..m-1:
    // unit tail entries on the remaining coordinates (eigenvalue 1 each),
    // so Tr[A] = 4 + (m - 1) while lambda_max(A) = 4 -- the trace-only
    // kappa overshoots the Taylor degree by ~m/4.
    triplets.push_back({s, 0, 2.0});
    for (Index c = 1; c < m; ++c) {
      triplets.push_back({(s + c) % m, c, 1.0});
    }
    items.emplace_back(sparse::Csr::from_triplets(m, m, std::move(triplets)));
  }
  return FactorizedPackingInstance(sparse::FactorizedSet(std::move(items)));
}

TEST(SketchedTaylorOracle, SpikedSpectrumTightensTaylorDegreeWithClamp) {
  const FactorizedPackingInstance fact = spiked_instance(24, 6);
  SketchedOracleOptions options;
  options.eps = 0.25;  // kappa_cap = 0: the bucketed/mixed configuration
  SketchedTaylorOracle oracle(fact, options);

  const Vector x(fact.size(), 0.35);
  PenaltyBatch batch;
  oracle.compute(x, 1, batch);

  // Spiked spectrum: the tracked lambda bound is far below the trace.
  const Real trace = oracle.tracked_trace();
  const Real lam = oracle.tracked_lambda_bound();
  EXPECT_LT(lam, 0.75 * trace);
  // The degree the oracle actually used comes from the clamped
  // kappa = min(trace, lam); replicate bigDotExp's internal split
  // (eps_taylor = dot_eps / 4, kappa halved for B = Phi/2).
  const Real dot_eps = options.eps / 2;
  const Index degree_tracked = linalg::taylor_exp_degree(
      std::max<Real>(1, std::min(trace, lam)) / 2, dot_eps / 4);
  const Index degree_trace_only = linalg::taylor_exp_degree(
      std::max<Real>(1, trace) / 2, dot_eps / 4);
  EXPECT_EQ(oracle.last_taylor_degree(), degree_tracked);
  // Tighter than the kappa = Tr[Psi]-only bound, and never looser.
  EXPECT_LT(degree_tracked, degree_trace_only);
  EXPECT_LE(oracle.last_taylor_degree(), degree_trace_only);

  // Accuracy survives the tightening: the estimates still match the dense
  // oracle within the advertised noise bound.
  const PackingInstance dense_instance = fact.to_dense();
  DenseEigOracle dense(dense_instance);
  PenaltyBatch dense_batch;
  dense.compute(x, 1, dense_batch);
  EXPECT_NEAR(batch.trace / dense_batch.trace, 1, oracle.noise_bound());
  for (Index i = 0; i < fact.size(); ++i) {
    EXPECT_NEAR(batch.dots[i] / dense_batch.dots[i], 1, oracle.noise_bound())
        << "constraint " << i;
  }
}

TEST(BucketedFactorized, SpikedSpectrumRunMatchesDenseOutcome) {
  // End-to-end: bucketed_factorized on the adversarial instance (where the
  // tracked bound does real work) still reproduces the dense outcome.
  const FactorizedPackingInstance fact = spiked_instance(16, 4);
  const PackingInstance dense = fact.to_dense();
  for (Real scale : {0.05, 20.0}) {
    FactorizedBucketedOptions fact_options;
    fact_options.eps = 0.2;
    const BucketedResult rf =
        decision_bucketed(fact.scaled(scale), fact_options);
    BucketedOptions dense_options;
    dense_options.eps = 0.2;
    const BucketedResult rd =
        decision_bucketed(dense.scaled(scale), dense_options);
    EXPECT_EQ(rf.outcome, rd.outcome) << "scale " << scale;
  }
}

}  // namespace
}  // namespace psdp::core
