#include <gtest/gtest.h>

#include <cmath>

#include "linalg/qr.hpp"
#include "rand/rng.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;

Matrix random_rect(Index m, Index n, std::uint64_t seed) {
  rand::Rng rng(seed);
  Matrix a(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) a(i, j) = rng.normal();
  }
  return a;
}

void expect_orthonormal_columns(const Matrix& q, Real tol) {
  const Matrix qtq = gemm(q.transposed(), q);
  EXPECT_MATRIX_NEAR(qtq, Matrix::identity(q.cols()), tol);
}

void expect_upper_triangular(const Matrix& r, Real tol) {
  for (Index i = 0; i < r.rows(); ++i) {
    for (Index j = 0; j < i; ++j) {
      EXPECT_NEAR(r(i, j), 0, tol) << "below-diagonal at " << i << "," << j;
    }
  }
}

TEST(Qr, Known2x2) {
  // A = [3 4; 4 3]: first column norm 5.
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 4;
  a(1, 0) = 4; a(1, 1) = 3;
  const QrResult f = qr(a);
  EXPECT_NEAR(std::abs(f.r(0, 0)), 5, 1e-12);
  const Matrix back = gemm(f.q, f.r);
  EXPECT_MATRIX_NEAR(back, a, 1e-12);
  expect_orthonormal_columns(f.q, 1e-12);
}

TEST(Qr, IdentityIsFixedPoint) {
  const Matrix eye = Matrix::identity(5);
  const QrResult f = qr(eye);
  EXPECT_MATRIX_NEAR(f.q, eye, 1e-14);
  EXPECT_MATRIX_NEAR(f.r, eye, 1e-14);
}

TEST(Qr, SingleColumn) {
  Matrix a(3, 1);
  a(0, 0) = 2; a(1, 0) = 1; a(2, 0) = 2;  // norm 3
  const QrResult f = qr(a);
  EXPECT_NEAR(std::abs(f.r(0, 0)), 3, 1e-13);
  EXPECT_MATRIX_NEAR(gemm(f.q, f.r), a, 1e-13);
}

TEST(Qr, SquareReconstruction) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_rect(9, 9, 100 + seed);
    const QrResult f = qr(a);
    EXPECT_MATRIX_NEAR(gemm(f.q, f.r), a, 1e-11);
    expect_orthonormal_columns(f.q, 1e-11);
    expect_upper_triangular(f.r, 1e-14);
  }
}

TEST(Qr, TallReconstruction) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_rect(24, 5, 200 + seed);
    const QrResult f = qr(a);
    ASSERT_EQ(f.q.rows(), 24);
    ASSERT_EQ(f.q.cols(), 5);
    ASSERT_EQ(f.r.rows(), 5);
    EXPECT_MATRIX_NEAR(gemm(f.q, f.r), a, 1e-11);
    expect_orthonormal_columns(f.q, 1e-11);
  }
}

TEST(Qr, RankDeficientStillReconstructs) {
  // Two identical columns.
  Matrix a(6, 3);
  rand::Rng rng(7);
  for (Index i = 0; i < 6; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = a(i, 0);
    a(i, 2) = rng.normal();
  }
  const QrResult f = qr(a);
  EXPECT_MATRIX_NEAR(gemm(f.q, f.r), a, 1e-11);
  // R(1,1) collapses to ~0 for the dependent column.
  EXPECT_NEAR(f.r(1, 1), 0, 1e-10);
}

TEST(Qr, RejectsWideMatrix) {
  EXPECT_THROW(qr(random_rect(3, 5, 1)), InvalidArgument);
}

TEST(Qr, RejectsNonFinite) {
  Matrix a = random_rect(4, 2, 3);
  a(1, 1) = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_THROW(qr(a), InvalidArgument);
}

TEST(LeastSquares, ExactSolveOnSquareSystem) {
  const Matrix a = random_rect(6, 6, 11);
  Vector x_true(6);
  for (Index i = 0; i < 6; ++i) x_true[i] = static_cast<Real>(i) - 2.5;
  const Vector b = matvec(a, x_true);
  const Vector x = least_squares(a, b);
  for (Index i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(LeastSquares, OverdeterminedResidualIsOrthogonal) {
  const Matrix a = random_rect(12, 4, 13);
  rand::Rng rng(17);
  Vector b(12);
  for (Index i = 0; i < 12; ++i) b[i] = rng.normal();
  const Vector x = least_squares(a, b);
  // Normal equations: A^T (A x - b) = 0.
  Vector res = matvec(a, x);
  res.add_scaled(b, -1);
  const Vector atr = matvec_transpose(a, res);
  for (Index i = 0; i < 4; ++i) EXPECT_NEAR(atr[i], 0, 1e-9);
}

TEST(LeastSquares, ThrowsOnSingular) {
  Matrix a(4, 2);
  for (Index i = 0; i < 4; ++i) {
    a(i, 0) = 1;
    a(i, 1) = 2;  // dependent columns
  }
  Vector b(4, 1);
  EXPECT_THROW(least_squares(a, b), NumericalError);
}

TEST(CompressFactor, WideFactorShrinksToDim) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Matrix g = random_rect(5, 17, 300 + seed);
    const Matrix l = compress_factor(g);
    EXPECT_LE(l.cols(), 5);
    const Matrix a = gemm(g, g.transposed());
    const Matrix b = gemm(l, l.transposed());
    EXPECT_MATRIX_NEAR(a, b, 1e-10);
  }
}

TEST(CompressFactor, NarrowFactorUnchangedProduct) {
  const Matrix g = random_rect(8, 3, 5);
  const Matrix l = compress_factor(g);
  EXPECT_EQ(l.cols(), 3);
  EXPECT_MATRIX_NEAR(gemm(g, g.transposed()), gemm(l, l.transposed()), 1e-12);
}

TEST(CompressFactor, DropsNullColumns) {
  Matrix g(4, 3);
  g(0, 0) = 1;
  g(1, 2) = 2;  // middle column zero
  const Matrix l = compress_factor(g, 1e-12);
  EXPECT_EQ(l.cols(), 2);
  EXPECT_MATRIX_NEAR(gemm(g, g.transposed()), gemm(l, l.transposed()), 1e-13);
}

TEST(CompressFactor, ZeroFactorYieldsSingleZeroColumn) {
  const Matrix g(4, 6);
  const Matrix l = compress_factor(g, 1e-12);
  EXPECT_EQ(l.rows(), 4);
  EXPECT_EQ(l.cols(), 1);
  EXPECT_NEAR(frobenius_norm(l), 0, 0.0);
}

TEST(CompressFactor, PreservesPsdProductOnRankDeficientWide) {
  // Rank-2 product expressed through a 20-column factor.
  const Matrix basis = random_rect(6, 2, 21);
  const Matrix mix = random_rect(2, 20, 22);
  const Matrix g = gemm(basis, mix);
  const Matrix l = compress_factor(g, 1e-10);
  EXPECT_LE(l.cols(), 6);
  EXPECT_MATRIX_NEAR(gemm(g, g.transposed()), gemm(l, l.transposed()), 1e-9);
}

}  // namespace
}  // namespace psdp::linalg
