#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eig.hpp"
#include "linalg/lanczos.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_symmetric;

TEST(TridiagonalEigenvalues, DiagonalCase) {
  const Vector ev = tridiagonal_eigenvalues(Vector{3, 1, 2}, Vector{0, 0});
  EXPECT_NEAR(ev[0], 3, 1e-10);
  EXPECT_NEAR(ev[1], 2, 1e-10);
  EXPECT_NEAR(ev[2], 1, 1e-10);
}

TEST(TridiagonalEigenvalues, Known2x2) {
  // [[2, 1], [1, 2]] -> eigenvalues 3 and 1.
  const Vector ev = tridiagonal_eigenvalues(Vector{2, 2}, Vector{1});
  EXPECT_NEAR(ev[0], 3, 1e-10);
  EXPECT_NEAR(ev[1], 1, 1e-10);
}

TEST(TridiagonalEigenvalues, MatchesJacobiOnRandomTridiagonal) {
  const Index k = 12;
  rand::Rng rng(5);
  Vector alpha(k), beta(k - 1);
  Matrix dense(k, k);
  for (Index i = 0; i < k; ++i) {
    alpha[i] = rng.normal();
    dense(i, i) = alpha[i];
  }
  for (Index i = 0; i < k - 1; ++i) {
    beta[i] = rng.normal();
    dense(i, i + 1) = beta[i];
    dense(i + 1, i) = beta[i];
  }
  const Vector got = tridiagonal_eigenvalues(alpha, beta);
  const EigResult want = jacobi_eig(dense);
  for (Index i = 0; i < k; ++i) {
    EXPECT_NEAR(got[i], want.eigenvalues[i], 1e-9) << "index " << i;
  }
}

TEST(TridiagonalEigenvalues, Validation) {
  EXPECT_THROW(tridiagonal_eigenvalues(Vector{}, Vector{}), InvalidArgument);
  EXPECT_THROW(tridiagonal_eigenvalues(Vector{1, 2}, Vector{1, 2}),
               InvalidArgument);
}

TEST(Lanczos, MatchesJacobiOnRandomPsd) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_psd(20, seed);
    const Real exact = lambda_max_exact(a);
    const LanczosResult r = lanczos_lambda_max(a);
    EXPECT_TRUE(r.converged) << "seed " << seed;
    EXPECT_NEAR(r.lambda_max, exact, 1e-7 * exact) << "seed " << seed;
  }
}

TEST(Lanczos, HandlesIndefiniteMatrices) {
  const Matrix a = random_symmetric(15, 77);
  const Real exact = jacobi_eig(a).eigenvalues[0];
  const LanczosResult r = lanczos_lambda_max(a);
  EXPECT_NEAR(r.lambda_max, exact, 1e-6 * std::max(std::abs(exact), 1.0));
}

TEST(Lanczos, FewerMatvecsThanPowerIterationOnFlatSpectrum) {
  // Flat spectrum: lambda = 1 + i/1000 -- power iteration crawls, Lanczos
  // should converge within a small Krylov space.
  const Index m = 60;
  Vector d(m);
  for (Index i = 0; i < m; ++i) {
    d[i] = 1 + static_cast<Real>(i) / 1000;
  }
  const Matrix a = Matrix::diagonal(d);
  LanczosOptions options;
  options.tol = 1e-8;
  const LanczosResult lz = lanczos_lambda_max(a, options);
  EXPECT_TRUE(lz.converged);
  EXPECT_NEAR(lz.lambda_max, d[m - 1], 1e-6);

  PowerOptions p_options;
  p_options.tol = 1e-8;
  p_options.max_iterations = lz.matvecs;  // same matvec budget
  const PowerResult pw = power_iteration(a, p_options);
  // With the same budget, power iteration is further from the answer.
  EXPECT_LE(std::abs(lz.lambda_max - d[m - 1]),
            std::abs(pw.lambda_max - d[m - 1]) + 1e-12);
}

TEST(Lanczos, OperatorFormMatchesMatrixForm) {
  const Matrix a = random_psd(10, 3);
  const SymmetricOp op = [&a](const Vector& x, Vector& y) { matvec(a, x, y); };
  const LanczosResult r1 = lanczos_lambda_max(op, 10);
  const LanczosResult r2 = lanczos_lambda_max(a);
  EXPECT_NEAR(r1.lambda_max, r2.lambda_max, 1e-9);
}

TEST(Lanczos, ResidualCertifiesUpperBound) {
  // For PSD operators, lambda_max_true <= ritz + residual.
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const Matrix a = random_psd(16, seed);
    LanczosOptions options;
    options.max_dim = 6;  // deliberately under-resolved
    options.tol = 0;      // never report convergence
    const LanczosResult r = lanczos_lambda_max(a, options);
    const Real exact = lambda_max_exact(a);
    EXPECT_LE(exact, r.lambda_max + r.residual + 1e-9) << "seed " << seed;
    EXPECT_GE(exact, r.lambda_max - 1e-9) << "seed " << seed;
  }
}

TEST(Lanczos, OneDimensional) {
  Matrix a(1, 1);
  a(0, 0) = 4.2;
  const LanczosResult r = lanczos_lambda_max(a);
  EXPECT_NEAR(r.lambda_max, 4.2, 1e-12);
}

TEST(Lanczos, ZeroOperator) {
  const Matrix a(5, 5);
  const LanczosResult r = lanczos_lambda_max(a);
  EXPECT_NEAR(r.lambda_max, 0.0, 1e-12);
}

TEST(Lanczos, Validation) {
  const SymmetricOp op = [](const Vector&, Vector&) {};
  EXPECT_THROW(lanczos_lambda_max(op, 0), InvalidArgument);
  LanczosOptions bad;
  bad.max_dim = 0;
  EXPECT_THROW(lanczos_lambda_max(op, 3, bad), InvalidArgument);
}

}  // namespace
}  // namespace psdp::linalg
