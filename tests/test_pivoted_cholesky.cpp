#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/pivoted_cholesky.hpp"
#include "rand/rng.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_psd_rank;
using psdp::testing::random_symmetric;

TEST(PivotedCholesky, FullRankReconstruction) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_psd(10, seed);
    const PivotedCholeskyResult f = pivoted_cholesky(a);
    EXPECT_EQ(f.rank, 10) << "seed " << seed;
    EXPECT_MATRIX_NEAR(gemm(f.l, f.l.transposed()), a, 1e-9);
    EXPECT_LE(f.residual_trace, 1e-9 * trace(a));
  }
}

TEST(PivotedCholesky, DetectsLowRank) {
  for (Index r = 1; r <= 4; ++r) {
    const Matrix a = random_psd_rank(12, r, 40 + static_cast<std::uint64_t>(r));
    const PivotedCholeskyResult f = pivoted_cholesky(a);
    EXPECT_EQ(f.rank, r) << "target rank " << r;
    EXPECT_MATRIX_NEAR(gemm(f.l, f.l.transposed()), a, 1e-9);
  }
}

TEST(PivotedCholesky, RankOneExactlyOneColumn) {
  Vector v({1, -2, 3, 0.5});
  const Matrix a = Matrix::outer(v);
  const PivotedCholeskyResult f = pivoted_cholesky(a);
  EXPECT_EQ(f.rank, 1);
  EXPECT_MATRIX_NEAR(gemm(f.l, f.l.transposed()), a, 1e-12);
  // The first pivot is the largest diagonal entry: index 2 (value 9).
  ASSERT_EQ(f.pivots.size(), 1u);
  EXPECT_EQ(f.pivots[0], 2);
}

TEST(PivotedCholesky, ZeroMatrix) {
  const Matrix a(5, 5);
  const PivotedCholeskyResult f = pivoted_cholesky(a);
  EXPECT_EQ(f.rank, 0);
  EXPECT_EQ(f.l.rows(), 5);
  EXPECT_EQ(f.l.cols(), 1);  // placeholder zero column
  EXPECT_NEAR(f.residual_trace, 0, 0.0);
}

TEST(PivotedCholesky, DiagonalMatrixPivotsInDecreasingOrder) {
  const Matrix a = Matrix::diagonal(Vector({1, 4, 2, 8}));
  const PivotedCholeskyResult f = pivoted_cholesky(a);
  EXPECT_EQ(f.rank, 4);
  ASSERT_EQ(f.pivots.size(), 4u);
  EXPECT_EQ(f.pivots[0], 3);  // 8
  EXPECT_EQ(f.pivots[1], 1);  // 4
  EXPECT_EQ(f.pivots[2], 2);  // 2
  EXPECT_EQ(f.pivots[3], 0);  // 1
  EXPECT_MATRIX_NEAR(gemm(f.l, f.l.transposed()), a, 1e-13);
}

TEST(PivotedCholesky, MaxRankTruncationBoundsResidual) {
  const Matrix a = random_psd(16, 77);
  PivotedCholeskyOptions options;
  options.max_rank = 5;
  const PivotedCholeskyResult f = pivoted_cholesky(a, options);
  EXPECT_EQ(f.rank, 5);
  // Residual A - L L^T must be PSD with the reported trace.
  Matrix residual = a;
  residual.add_scaled(gemm(f.l, f.l.transposed()), -1);
  EXPECT_NEAR(trace(residual), f.residual_trace, 1e-9);
  EXPECT_TRUE(is_psd(residual, 1e-8));
}

TEST(PivotedCholesky, RelTolStopsEarlyOnDecayingSpectrum) {
  // Diagonal with geometrically decaying entries: tolerance 1e-3 keeps only
  // the dominant part.
  const Index m = 20;
  Vector diag(m);
  for (Index i = 0; i < m; ++i) diag[i] = std::pow(0.25, static_cast<Real>(i));
  const Matrix a = Matrix::diagonal(diag);
  PivotedCholeskyOptions options;
  options.rel_tol = 1e-3;
  const PivotedCholeskyResult f = pivoted_cholesky(a, options);
  EXPECT_LT(f.rank, 10);
  EXPECT_GE(f.rank, 4);
  EXPECT_LE(f.residual_trace, 1e-3 * trace(a) + 1e-15);
}

TEST(PivotedCholesky, RejectsNonSymmetric) {
  Matrix a = Matrix::identity(3);
  a(0, 1) = 0.5;  // asymmetric
  EXPECT_THROW(pivoted_cholesky(a), InvalidArgument);
}

TEST(PivotedCholesky, RejectsNonFinite) {
  Matrix a = Matrix::identity(3);
  a(1, 1) = std::numeric_limits<Real>::infinity();
  EXPECT_THROW(pivoted_cholesky(a), InvalidArgument);
}

TEST(PivotedCholesky, ThrowsOnIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(pivoted_cholesky(a), NumericalError);
}

TEST(PivotedCholesky, NegativeDiagonalRejected) {
  Matrix a = Matrix::identity(3);
  a(2, 2) = -1;
  EXPECT_THROW(pivoted_cholesky(a), NumericalError);
}

// Property sweep: reconstruction holds across sizes and ranks.
class PivotedCholeskySweep
    : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(PivotedCholeskySweep, ReconstructsToToleranceAcrossSizes) {
  const auto [m, r] = GetParam();
  const Matrix a =
      random_psd_rank(m, r, static_cast<std::uint64_t>(1000 + m * 31 + r));
  const PivotedCholeskyResult f = pivoted_cholesky(a);
  EXPECT_LE(f.rank, r);
  EXPECT_MATRIX_NEAR(gemm(f.l, f.l.transposed()), a, 1e-8);
  EXPECT_LE(f.residual_trace, 1e-8 * std::max<Real>(1, trace(a)));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRanks, PivotedCholeskySweep,
    ::testing::Combine(::testing::Values<Index>(4, 8, 16, 32),
                       ::testing::Values<Index>(1, 2, 3)));

}  // namespace
}  // namespace psdp::linalg
