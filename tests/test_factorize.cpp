#include <gtest/gtest.h>

#include <cmath>

#include "apps/generators.hpp"
#include "core/decision.hpp"
#include "core/factorize.hpp"
#include "linalg/matfunc.hpp"
#include "test_helpers.hpp"

namespace psdp::core {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_psd_rank;

PackingInstance small_instance(std::uint64_t seed) {
  std::vector<Matrix> constraints;
  constraints.push_back(random_psd_rank(6, 2, seed));
  constraints.push_back(random_psd_rank(6, 1, seed + 1));
  constraints.push_back(random_psd(6, seed + 2));
  return PackingInstance(std::move(constraints));
}

TEST(Factorize, RoundTripsToDense) {
  const PackingInstance instance = small_instance(1);
  for (const auto method : {FactorizeOptions::Method::kPivotedCholesky,
                            FactorizeOptions::Method::kEigendecomposition}) {
    FactorizeOptions options;
    options.method = method;
    FactorizeReport report;
    const FactorizedPackingInstance fact =
        factorize(instance, options, &report);
    ASSERT_EQ(fact.size(), instance.size());
    const PackingInstance back = fact.to_dense();
    for (Index i = 0; i < instance.size(); ++i) {
      EXPECT_MATRIX_NEAR(back[i], instance[i], 1e-8);
    }
    EXPECT_LE(report.max_residual_rel, 1e-10);
    EXPECT_GT(report.total_nnz, 0);
  }
}

TEST(Factorize, RankRevealingWidths) {
  const PackingInstance instance = small_instance(9);
  FactorizeReport report;
  const FactorizedPackingInstance fact = factorize(instance, {}, &report);
  // Constraint 0 has rank 2, constraint 1 rank 1, constraint 2 full rank 6.
  EXPECT_EQ(fact[0].factor_cols(), 2);
  EXPECT_EQ(fact[1].factor_cols(), 1);
  EXPECT_EQ(fact[2].factor_cols(), 6);
  EXPECT_EQ(report.max_rank, 6);
}

TEST(Factorize, TracesAgree) {
  const PackingInstance instance = small_instance(21);
  const FactorizedPackingInstance fact = factorize(instance);
  for (Index i = 0; i < instance.size(); ++i) {
    EXPECT_NEAR(fact.constraint_trace(i), instance.constraint_trace(i), 1e-9);
  }
}

TEST(Factorize, DropTolSparsifiesButStaysClose) {
  const PackingInstance instance = small_instance(33);
  FactorizeOptions exact;
  FactorizeOptions dropped;
  dropped.drop_tol = 1e-3;
  FactorizeReport report_exact;
  FactorizeReport report_dropped;
  factorize(instance, exact, &report_exact);
  const FactorizedPackingInstance fact =
      factorize(instance, dropped, &report_dropped);
  EXPECT_LE(report_dropped.total_nnz, report_exact.total_nnz);
  const PackingInstance back = fact.to_dense();
  for (Index i = 0; i < instance.size(); ++i) {
    EXPECT_MATRIX_NEAR(back[i], instance[i], 1e-2);
  }
}

TEST(Factorize, RejectsIndefiniteConstraint) {
  Matrix bad(3, 3);
  bad(0, 0) = 1; bad(0, 1) = 2;
  bad(1, 0) = 2; bad(1, 1) = 1;
  bad(2, 2) = 1;
  // Bypass PackingInstance::validate by constructing with check off; the
  // factorization itself must still catch the violation.
  std::vector<Matrix> constraints{bad};
  PackingInstance instance(std::move(constraints));
  EXPECT_THROW(factorize(instance), NumericalError);
}

TEST(Factorize, SolverAgreesWithDensePath) {
  // The whole point of the preprocessing: a dense instance pushed through
  // factorize() must drive the factorized solver to the same outcome and a
  // comparable dual value as the dense solver.
  const PackingInstance instance =
      apps::random_ellipses({.n = 24, .m = 10, .rank = 2, .seed = 5});
  const FactorizedPackingInstance fact = factorize(instance);

  DecisionOptions options;
  options.eps = 0.2;
  const DecisionResult dense = decision_dense(instance, options);
  const DecisionResult sparse = decision_factorized(fact, options);
  EXPECT_EQ(dense.outcome, sparse.outcome);
  if (dense.outcome == DecisionOutcome::kDual) {
    EXPECT_NEAR(linalg::norm1(dense.dual_x), linalg::norm1(sparse.dual_x),
                0.25 * linalg::norm1(dense.dual_x));
  }
}

TEST(FactorizeCovering, MatchesDenseNormalization) {
  // Compare against core::normalize(): same kept set, B_i reproduced.
  const Index m = 5;
  CoveringProblem problem;
  problem.objective = random_psd(m, 70);
  problem.constraints.push_back(random_psd_rank(m, 2, 71));
  problem.constraints.push_back(random_psd_rank(m, 1, 72));
  problem.constraints.push_back(random_psd(m, 73));
  problem.rhs = Vector({1.0, 2.0, 0.5});

  const NormalizedProblem dense = normalize(problem);
  const FactorizedNormalization fact = factorize_covering(problem);
  ASSERT_EQ(fact.kept, dense.kept);
  ASSERT_EQ(fact.packing.size(), dense.packing.size());
  const PackingInstance back = fact.packing.to_dense();
  for (Index i = 0; i < back.size(); ++i) {
    EXPECT_MATRIX_NEAR(back[i], dense.packing[i], 1e-7);
  }
  EXPECT_MATRIX_NEAR(fact.c_inv_sqrt, dense.c_inv_sqrt, 1e-10);
}

TEST(FactorizeCovering, DropsZeroRhs) {
  const Index m = 4;
  CoveringProblem problem;
  problem.objective = Matrix::identity(m);
  problem.constraints.push_back(random_psd(m, 80));
  problem.constraints.push_back(random_psd(m, 81));
  problem.rhs = Vector({0.0, 1.0});
  const FactorizedNormalization fact = factorize_covering(problem);
  ASSERT_EQ(fact.packing.size(), 1);
  ASSERT_EQ(fact.kept.size(), 1u);
  EXPECT_EQ(fact.kept[0], 1);
}

TEST(FactorizeCovering, RejectsUnsupportedConstraint) {
  // C supported on e_1 only; constraint has mass on e_2.
  const Index m = 3;
  CoveringProblem problem;
  problem.objective = Matrix(m, m);
  problem.objective(0, 0) = 1;
  Matrix a(m, m);
  a(1, 1) = 1;
  problem.constraints.push_back(a);
  problem.rhs = Vector({1.0});
  EXPECT_THROW(factorize_covering(problem), InvalidArgument);
}

TEST(FactorizeCovering, IdentityObjectiveIsPassthrough) {
  const Index m = 6;
  CoveringProblem problem;
  problem.objective = Matrix::identity(m);
  problem.constraints.push_back(random_psd_rank(m, 2, 90));
  problem.rhs = Vector({2.0});
  const FactorizedNormalization fact = factorize_covering(problem);
  Matrix expected = problem.constraints[0];
  expected.scale(0.5);
  EXPECT_MATRIX_NEAR(fact.packing.to_dense()[0], expected, 1e-9);
}

// Parameterized sweep over engines and ranks: factorization must keep the
// represented matrix within tolerance for all combinations.
class FactorizeSweep
    : public ::testing::TestWithParam<
          std::tuple<FactorizeOptions::Method, Index>> {};

TEST_P(FactorizeSweep, ReconstructionWithinTolerance) {
  const auto [method, rank] = GetParam();
  std::vector<Matrix> constraints;
  for (Index i = 0; i < 4; ++i) {
    constraints.push_back(random_psd_rank(
        8, rank, 500 + static_cast<std::uint64_t>(rank * 10 + i)));
  }
  const PackingInstance instance(std::move(constraints));
  FactorizeOptions options;
  options.method = method;
  const FactorizedPackingInstance fact = factorize(instance, options);
  const PackingInstance back = fact.to_dense();
  for (Index i = 0; i < instance.size(); ++i) {
    EXPECT_MATRIX_NEAR(back[i], instance[i], 1e-8);
    EXPECT_LE(fact[i].factor_cols(), rank);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndRanks, FactorizeSweep,
    ::testing::Combine(
        ::testing::Values(FactorizeOptions::Method::kPivotedCholesky,
                          FactorizeOptions::Method::kEigendecomposition),
        ::testing::Values<Index>(1, 2, 4)));

}  // namespace
}  // namespace psdp::core
