// Tests for the tred2/tql2 eigensolver, cross-validated against Jacobi.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/tridiag_eig.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;
using psdp::testing::random_psd_rank;
using psdp::testing::random_symmetric;

TEST(TridiagEig, DiagonalMatrix) {
  const auto eig = tridiag_eig(Matrix::diagonal(Vector{3, 1, 2}));
  EXPECT_NEAR(eig.eigenvalues[0], 3, 1e-13);
  EXPECT_NEAR(eig.eigenvalues[1], 2, 1e-13);
  EXPECT_NEAR(eig.eigenvalues[2], 1, 1e-13);
}

TEST(TridiagEig, Known2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 2;
  const auto eig = tridiag_eig(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1, 1e-12);
}

TEST(TridiagEig, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = -7.5;
  const auto eig = tridiag_eig(a);
  EXPECT_EQ(eig.eigenvalues[0], -7.5);
}

TEST(TridiagEig, AgreesWithJacobiOnEigenvalues) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Matrix a = random_symmetric(12, 300 + seed);
    const auto ql = tridiag_eig(a);
    const auto jacobi = jacobi_eig(a);
    const Real scale = std::max<Real>(1, std::abs(jacobi.eigenvalues[0]));
    for (Index i = 0; i < 12; ++i) {
      EXPECT_NEAR(ql.eigenvalues[i], jacobi.eigenvalues[i], 1e-10 * scale)
          << "seed " << seed << " index " << i;
    }
  }
}

TEST(TridiagEig, EigenvectorsOrthonormal) {
  const auto eig = tridiag_eig(random_symmetric(15, 41));
  const Matrix vtv = gemm(eig.eigenvectors.transposed(), eig.eigenvectors);
  EXPECT_MATRIX_NEAR(vtv, Matrix::identity(15), 1e-11);
}

TEST(TridiagEig, ReconstructionProperty) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Matrix a = random_symmetric(10, 400 + seed);
    const auto eig = tridiag_eig(a);
    const Matrix back = reconstruct(eig, [](Real x) { return x; });
    EXPECT_LE(max_abs_diff(back, a), 1e-10 * std::max<Real>(1, frobenius_norm(a)))
        << "seed " << seed;
  }
}

TEST(TridiagEig, RankDeficientPsd) {
  const Matrix a = random_psd_rank(9, 4, 7);
  const auto eig = tridiag_eig(a);
  // Five (numerically) zero eigenvalues at the bottom.
  for (Index i = 4; i < 9; ++i) {
    EXPECT_NEAR(eig.eigenvalues[i], 0, 1e-9);
  }
  const Matrix back = reconstruct(eig, [](Real x) { return x; });
  EXPECT_MATRIX_NEAR(back, a, 1e-9);
}

TEST(TridiagEig, AlreadyTridiagonalInput) {
  const Index m = 8;
  Matrix a(m, m);
  for (Index i = 0; i < m; ++i) {
    a(i, i) = 2;
    if (i > 0) {
      a(i, i - 1) = -1;
      a(i - 1, i) = -1;
    }
  }
  const auto eig = tridiag_eig(a);
  // Known spectrum of the path Laplacian-ish matrix: 2 - 2cos(k pi/(m+1)).
  for (Index k = 0; k < m; ++k) {
    const Real expect =
        2 - 2 * std::cos(static_cast<Real>(m - k) * std::numbers::pi /
                         static_cast<Real>(m + 1));
    EXPECT_NEAR(eig.eigenvalues[k], expect, 1e-11) << "k " << k;
  }
}

TEST(TridiagEig, Validation) {
  EXPECT_THROW(tridiag_eig(Matrix(2, 3)), InvalidArgument);
  Matrix asym = Matrix::identity(3);
  asym(0, 1) = 0.5;
  EXPECT_THROW(tridiag_eig(asym), InvalidArgument);
  Matrix nan = Matrix::identity(2);
  nan(0, 0) = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_THROW(tridiag_eig(nan), InvalidArgument);
}

class TridiagSizeSweep : public ::testing::TestWithParam<Index> {};

TEST_P(TridiagSizeSweep, CrossValidatesJacobiAtEverySize) {
  const Index m = GetParam();
  const Matrix a = random_symmetric(m, 2000 + static_cast<std::uint64_t>(m));
  const auto ql = tridiag_eig(a);
  const auto jacobi = jacobi_eig(a);
  const Real scale = std::max<Real>(1, std::abs(jacobi.eigenvalues[0]));
  for (Index i = 0; i < m; ++i) {
    ASSERT_NEAR(ql.eigenvalues[i], jacobi.eigenvalues[i], 1e-9 * scale)
        << "m " << m << " index " << i;
  }
  // Eigenvectors may differ by sign/rotation in degenerate subspaces;
  // compare through reconstruction instead.
  const Matrix back = reconstruct(ql, [](Real x) { return x; });
  EXPECT_LE(max_abs_diff(back, a), 1e-9 * scale);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 33, 64, 128));

TEST(SymEig, DispatchesBySize) {
  // Behaviour (not implementation) check: results agree with Jacobi on
  // both sides of the switch point.
  for (Index m : {kSymEigSwitchDim - 2, kSymEigSwitchDim + 2}) {
    const Matrix a = random_psd(m, 3000 + static_cast<std::uint64_t>(m));
    const auto got = sym_eig(a);
    const auto want = jacobi_eig(a);
    for (Index i = 0; i < m; ++i) {
      EXPECT_NEAR(got.eigenvalues[i], want.eigenvalues[i],
                  1e-9 * std::max<Real>(1, want.eigenvalues[0]));
    }
  }
}

}  // namespace
}  // namespace psdp::linalg
