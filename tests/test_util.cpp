#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/common.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace psdp {
namespace {

TEST(Common, ChecksThrowTypedExceptions) {
  EXPECT_THROW(PSDP_CHECK(false, "boom"), InvalidArgument);
  EXPECT_THROW(PSDP_NUMERIC_CHECK(false, "boom"), NumericalError);
  EXPECT_THROW(PSDP_ASSERT(false), InternalError);
  EXPECT_NO_THROW(PSDP_CHECK(true, "fine"));
}

TEST(Common, CheckMessageContainsContext) {
  try {
    PSDP_CHECK(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Common, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_THROW(ceil_log2(0), InvalidArgument);
}

TEST(Common, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12, 1e-9));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-9));
  EXPECT_TRUE(approx_equal(1e9, 1e9 + 1, 1e-8));  // relative scaling
}

TEST(Common, StrConcatenates) {
  EXPECT_EQ(str("x=", 3, ", y=", 4.5), "x=3, y=4.5");
}

TEST(Stats, Summarize) {
  const std::vector<Real> xs = {1, 2, 3, 4};
  const util::Summary s = util::summarize(xs);
  EXPECT_EQ(s.count, 4);
  EXPECT_NEAR(s.mean, 2.5, 1e-14);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 4);
}

TEST(Stats, SummarizeEmpty) {
  const util::Summary s = util::summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean, 0);
}

TEST(Stats, FitLineExact) {
  const std::vector<Real> xs = {0, 1, 2, 3};
  const std::vector<Real> ys = {1, 3, 5, 7};  // y = 2x + 1
  const util::LinearFit fit = util::fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2, 1e-12);
  EXPECT_NEAR(fit.intercept, 1, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1, 1e-12);
}

TEST(Stats, FitLogLogRecoversPowerLaw) {
  std::vector<Real> xs, ys;
  for (Real x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.7));
  }
  const util::LinearFit fit = util::fit_loglog(xs, ys);
  EXPECT_NEAR(fit.slope, 1.7, 1e-10);
}

TEST(Stats, FitErrors) {
  EXPECT_THROW(util::fit_line(std::vector<Real>{1}, std::vector<Real>{1}),
               InvalidArgument);
  EXPECT_THROW(util::fit_line(std::vector<Real>{1, 1}, std::vector<Real>{1, 2}),
               InvalidArgument);
  EXPECT_THROW(
      util::fit_loglog(std::vector<Real>{1, -2}, std::vector<Real>{1, 2}),
      InvalidArgument);
}

TEST(Stats, Median) {
  EXPECT_EQ(util::median({3, 1, 2}), 2);
  EXPECT_EQ(util::median({4, 1, 2, 3}), 2.5);
  EXPECT_THROW(util::median({}), InvalidArgument);
}

TEST(Cli, ParsesTypedFlags) {
  util::Cli cli("prog", "test");
  auto& n = cli.flag<Index>("n", 10, "count");
  auto& eps = cli.flag<Real>("eps", 0.5, "accuracy");
  auto& name = cli.flag<std::string>("name", "abc", "label");
  auto& on = cli.flag<bool>("on", false, "toggle");
  const char* argv[] = {"prog", "--n=32", "--eps", "0.25", "--name=xyz",
                        "--on=true"};
  cli.parse(6, const_cast<char**>(argv));
  EXPECT_EQ(n.value, 32);
  EXPECT_EQ(eps.value, 0.25);
  EXPECT_EQ(name.value, "xyz");
  EXPECT_TRUE(on.value);
  EXPECT_TRUE(n.set);
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  util::Cli cli("prog", "test");
  auto& n = cli.flag<Index>("n", 7, "count");
  const char* argv[] = {"prog"};
  cli.parse(1, const_cast<char**>(argv));
  EXPECT_EQ(n.value, 7);
  EXPECT_FALSE(n.set);
}

TEST(Cli, RejectsUnknownFlagAndBadValues) {
  util::Cli cli("prog", "test");
  cli.flag<Index>("n", 1, "count");
  const char* bad_flag[] = {"prog", "--zap=1"};
  EXPECT_THROW(cli.parse(2, const_cast<char**>(bad_flag)), InvalidArgument);
  // Unparseable numerics must surface as the library's InvalidArgument (not
  // a raw std::invalid_argument leaking out of std::stoll).
  const char* bad_value[] = {"prog", "--n=abc"};
  EXPECT_THROW(cli.parse(2, const_cast<char**>(bad_value)), InvalidArgument);
  const char* missing[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, const_cast<char**>(missing)), InvalidArgument);
}

TEST(Cli, NumericParseErrorsNameFlagAndText) {
  const auto message_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const InvalidArgument& e) {
      return e.what();
    }
    return "";
  };
  {
    util::Cli cli("prog", "test");
    cli.flag<Real>("eps", 0.1, "accuracy");
    const char* argv[] = {"prog", "--eps=bogus"};
    const std::string what = message_of(
        [&] { cli.parse(2, const_cast<char**>(argv)); });
    EXPECT_NE(what.find("--eps"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
  }
  {
    // Out-of-range: std::stoll would throw std::out_of_range.
    util::Cli cli("prog", "test");
    cli.flag<Index>("n", 1, "count");
    const char* argv[] = {"prog", "--n=99999999999999999999999999"};
    const std::string what = message_of(
        [&] { cli.parse(2, const_cast<char**>(argv)); });
    EXPECT_NE(what.find("--n"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
  {
    // Out-of-range real: std::stod throws std::out_of_range on 1e999.
    util::Cli cli("prog", "test");
    cli.flag<Real>("eps", 0.1, "accuracy");
    const char* argv[] = {"prog", "--eps=1e999"};
    const std::string what = message_of(
        [&] { cli.parse(2, const_cast<char**>(argv)); });
    EXPECT_NE(what.find("--eps"), std::string::npos) << what;
  }
  {
    // Trailing junk keeps its existing (named) error path.
    util::Cli cli("prog", "test");
    cli.flag<Index>("n", 1, "count");
    const char* argv[] = {"prog", "--n=12x"};
    const std::string what = message_of(
        [&] { cli.parse(2, const_cast<char**>(argv)); });
    EXPECT_NE(what.find("--n"), std::string::npos) << what;
    EXPECT_NE(what.find("12x"), std::string::npos) << what;
  }
}

TEST(Cli, ParseIndexListAcceptsCommaSeparatedValues) {
  EXPECT_EQ(util::parse_index_list("1,2,3"), (std::vector<Index>{1, 2, 3}));
  EXPECT_EQ(util::parse_index_list("42"), (std::vector<Index>{42}));
  EXPECT_TRUE(util::parse_index_list("").empty());
}

TEST(Cli, ParseIndexListNamesBadItems) {
  // The bench_kernels --widths path used a raw std::stoll here: "4,x,16"
  // crashed with an unhandled std::invalid_argument instead of a usage
  // error. Every item now routes through the shared typed parser.
  try {
    util::parse_index_list("4,x,16");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("x"), std::string::npos);
  }
  EXPECT_THROW(util::parse_index_list("4,,16"), InvalidArgument);
  EXPECT_THROW(util::parse_index_list("99999999999999999999999999"),
               InvalidArgument);
  try {
    util::parse_index_list("4,8,");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("trailing comma"), std::string::npos);
  }
}

TEST(Cli, RejectsDuplicateFlagRegistration) {
  util::Cli cli("prog", "test");
  cli.flag<Index>("n", 1, "count");
  EXPECT_THROW(cli.flag<Index>("n", 2, "again"), InvalidArgument);
}

TEST(Cli, HelpPrintsUsage) {
  util::Cli cli("prog", "does things");
  cli.flag<Index>("n", 1, "count");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("does things"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  util::Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(util::Table::cell(Index{42}), "42");
  EXPECT_EQ(util::Table::cell(1.5, 3), "1.5");
}

TEST(Log, LevelsFilterMessages) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kOff);
  PSDP_LOG(kError) << "should be dropped";  // just must not crash
  util::set_log_level(before);
}

TEST(Timer, MeasuresElapsedTime) {
  util::WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0);
  EXPECT_GE(t.millis(), t.seconds() * 1000 - 1e-9);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace psdp
