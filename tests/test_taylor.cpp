// Tests for Lemma 4.2: the truncated Taylor approximation of the matrix
// exponential, both the degree formula and the PSD sandwich
// (1 - eps) exp(B) <= B_hat <= exp(B).
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/expm.hpp"
#include "linalg/taylor.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;

TEST(TaylorDegree, MatchesLemmaFormula) {
  const Real e2 = std::exp(2.0);
  EXPECT_EQ(taylor_exp_degree(10, 0.1),
            static_cast<Index>(std::ceil(e2 * 10)));
  // Tiny kappa: the ln(2/eps) branch dominates.
  EXPECT_EQ(taylor_exp_degree(0, 0.5),
            static_cast<Index>(std::ceil(std::log(4.0))));
}

TEST(TaylorDegree, RejectsBadArguments) {
  EXPECT_THROW(taylor_exp_degree(-1, 0.1), InvalidArgument);
  EXPECT_THROW(taylor_exp_degree(1, 0.0), InvalidArgument);
  EXPECT_THROW(taylor_exp_degree(1, 1.0), InvalidArgument);
}

TEST(TaylorDegree, GrowsWithKappaAndShrinkingEps) {
  EXPECT_GT(taylor_exp_degree(20, 0.1), taylor_exp_degree(10, 0.1));
  EXPECT_GE(taylor_exp_degree(0.01, 0.01), taylor_exp_degree(0.01, 0.1));
}

TEST(ApplyExpTaylor, DegreeOneIsIdentity) {
  const Matrix b = random_psd(4, 1);
  const SymmetricOp op = [&b](const Vector& x, Vector& y) { matvec(b, x, y); };
  const Vector x{1, 2, 3, 4};
  Vector y;
  apply_exp_taylor(op, 1, x, y);
  EXPECT_EQ(y, x);
}

TEST(ApplyExpTaylor, MatchesDenseMatrixForm) {
  const Matrix b = random_psd(6, 2);
  const SymmetricOp op = [&b](const Vector& x, Vector& y) { matvec(b, x, y); };
  Vector x(6);
  for (Index i = 0; i < 6; ++i) x[i] = std::sin(static_cast<Real>(i) + 1);
  for (Index degree : {2, 5, 11}) {
    Vector y_op;
    apply_exp_taylor(op, degree, x, y_op);
    const Vector y_mat = matvec(exp_taylor_matrix(b, degree), x);
    for (Index i = 0; i < 6; ++i) {
      EXPECT_NEAR(y_op[i], y_mat[i], 1e-11) << "degree " << degree;
    }
  }
}

TEST(ApplyExpTaylor, ConvergesToExactExponential) {
  const Matrix b = random_psd(5, 3);
  const Matrix exact = expm_eig(b);
  const SymmetricOp op = [&b](const Vector& x, Vector& y) { matvec(b, x, y); };
  Vector x(5, 1.0);
  const Vector want = matvec(exact, x);
  Vector y;
  apply_exp_taylor(op, 40, x, y);
  for (Index i = 0; i < 5; ++i) EXPECT_NEAR(y[i], want[i], 1e-10);
}

// The Lemma 4.2 sandwich, verified spectrally: both exp(B) - B_hat and
// B_hat - (1-eps) exp(B) must be PSD at the lemma's degree.
class TaylorSandwichTest
    : public ::testing::TestWithParam<std::tuple<Real, Real, std::uint64_t>> {};

TEST_P(TaylorSandwichTest, LemmaBoundsHold) {
  const auto [kappa_scale, eps, seed] = GetParam();
  Matrix b = random_psd(6, seed);
  // Normalize to a chosen spectral norm so kappa is known exactly.
  const Real norm = lambda_max_exact(b);
  ASSERT_GT(norm, 0);
  b.scale(kappa_scale / norm);
  const Real kappa = kappa_scale;

  const Index degree = taylor_exp_degree(kappa, eps);
  const Matrix approx = exp_taylor_matrix(b, degree);
  const Matrix exact = expm_eig(b);

  // exp(B) - B_hat >= 0.
  const Matrix upper_gap = sub(exact, approx);
  EXPECT_GE(jacobi_eig(upper_gap).eigenvalues[5],
            -1e-9 * frobenius_norm(exact));

  // B_hat - (1-eps) exp(B) >= 0.
  Matrix scaled = exact;
  scaled.scale(1 - eps);
  const Matrix lower_gap = sub(approx, scaled);
  EXPECT_GE(jacobi_eig(lower_gap).eigenvalues[5],
            -1e-9 * frobenius_norm(exact));
}

INSTANTIATE_TEST_SUITE_P(
    KappaEpsSweep, TaylorSandwichTest,
    ::testing::Combine(::testing::Values(0.5, 2.0, 6.0),
                       ::testing::Values(0.05, 0.2, 0.5),
                       ::testing::Values(21u, 22u)));

TEST(ExpTaylorMatrix, RejectsBadArguments) {
  EXPECT_THROW(exp_taylor_matrix(Matrix(2, 3), 3), InvalidArgument);
  EXPECT_THROW(exp_taylor_matrix(Matrix(2, 2), 0), InvalidArgument);
}

}  // namespace
}  // namespace psdp::linalg
