#include <gtest/gtest.h>

#include "linalg/eig.hpp"
#include "linalg/power.hpp"
#include "test_helpers.hpp"

namespace psdp::linalg {
namespace {

using psdp::testing::random_psd;

TEST(PowerIteration, MatchesExactOnDiagonal) {
  const Matrix a = Matrix::diagonal(Vector{0.5, 7.0, 3.0});
  const PowerResult r = power_iteration(a);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.lambda_max, 7.0, 1e-4);
}

TEST(PowerIteration, MatchesJacobiOnRandomPsd) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Matrix a = random_psd(10, seed);
    const Real exact = lambda_max_exact(a);
    PowerOptions options;
    options.tol = 1e-9;
    options.max_iterations = 3000;
    const PowerResult r = power_iteration(a, options);
    EXPECT_NEAR(r.lambda_max, exact, 1e-4 * exact) << "seed " << seed;
  }
}

TEST(PowerIteration, OperatorFormMatchesMatrixForm) {
  const Matrix a = random_psd(6, 77);
  const SymmetricOp op = [&a](const Vector& x, Vector& y) { matvec(a, x, y); };
  const PowerResult r1 = power_iteration(op, 6);
  const PowerResult r2 = power_iteration(a);
  EXPECT_NEAR(r1.lambda_max, r2.lambda_max, 1e-9);
}

TEST(PowerIteration, ZeroOperator) {
  const Matrix a(4, 4);
  const PowerResult r = power_iteration(a);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.lambda_max, 0);
}

TEST(PowerIteration, UpperBoundIsAboveEstimate) {
  const Matrix a = random_psd(8, 3);
  const SymmetricOp op = [&a](const Vector& x, Vector& y) { matvec(a, x, y); };
  const Real ub = lambda_max_upper_bound(op, 8);
  const Real exact = lambda_max_exact(a);
  // Power iteration underestimates; the inflated bound should cover the
  // true value for these well-conditioned instances.
  EXPECT_GE(ub, exact * (1 - 1e-4));
}

TEST(PowerIteration, RejectsBadDimension) {
  const SymmetricOp op = [](const Vector&, Vector&) {};
  EXPECT_THROW(power_iteration(op, 0), InvalidArgument);
}

TEST(PowerIteration, ReportsIterationCount) {
  const Matrix a = Matrix::diagonal(Vector{1.0, 0.999});  // slow gap
  PowerOptions options;
  options.max_iterations = 5;
  const PowerResult r = power_iteration(a, options);
  EXPECT_LE(r.iterations, 5);
}

}  // namespace
}  // namespace psdp::linalg
