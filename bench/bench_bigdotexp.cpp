// E4 -- Theorem 4.1 / Corollary 1.2: bigDotExp computes all exp(Phi).A_i
// in nearly-linear work in the factorization size q. Two measurements:
//   (a) accuracy: sketched estimates vs exact dense exponentials (small m);
//   (b) scaling: metered model work and wall-clock vs q at fixed sketch
//       size and Taylor degree -- the fitted exponent should be ~1.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/bigdotexp.hpp"
#include "linalg/expm.hpp"
#include "par/cost_meter.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_bigdotexp", "E4: bigDotExp accuracy and scaling");
  auto& m_max = cli.flag<Index>("m-max", 4096, "largest dimension in the sweep");
  auto& rows = cli.flag<Index>("rows", 96, "JL sketch rows for the sweep");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E4: bigDotExp (Theorem 4.1, Corollary 1.2)",
      "Claim: all exp(Phi).A_i computable to (1 +- eps) in "
      "O(eps^-2 (kappa p + q) log m) work -- nearly linear in the "
      "factorization size q.");

  // ---- (a) accuracy against exact dense exponentials -------------------
  std::cout << "(a) accuracy vs exact (m = 16, exact-eig ground truth)\n";
  util::Table acc({"sketch rows", "max rel err", "mean rel err",
                   "trace rel err"});
  {
    apps::FactorizedOptions gen;
    gen.n = 12;
    gen.m = 16;
    gen.nnz_per_column = 6;
    const core::FactorizedPackingInstance inst = apps::random_factorized(gen);
    // A mid-run-like exponent: Phi = 0.4 * sum_i A_i.
    linalg::Matrix phi_dense(gen.m, gen.m);
    const core::PackingInstance dense = inst.to_dense();
    for (Index i = 0; i < dense.size(); ++i) {
      phi_dense.add_scaled(dense[i], 0.4);
    }
    const sparse::Csr phi = sparse::Csr::from_dense(phi_dense);
    const Real kappa = linalg::lambda_max_exact(phi_dense);
    const linalg::Matrix w = linalg::expm_eig(phi_dense);
    linalg::Vector exact(dense.size());
    for (Index i = 0; i < dense.size(); ++i) {
      exact[i] = linalg::frobenius_dot(dense[i], w);
    }
    const Real exact_trace = linalg::trace(w);

    for (Index r : {16, 64, 256, 1024}) {
      core::BigDotExpOptions options;
      options.eps = 0.1;
      options.sketch_rows_override = r;
      const core::BigDotExpResult got =
          core::big_dot_exp(phi, kappa, inst.set(), options);
      Real max_err = 0, sum_err = 0;
      for (Index i = 0; i < exact.size(); ++i) {
        const Real err = std::abs(got.dots[i] - exact[i]) / exact[i];
        max_err = std::max(max_err, err);
        sum_err += err;
      }
      acc.add_row({util::Table::cell(r), util::Table::cell(max_err, 4),
                   util::Table::cell(sum_err / static_cast<Real>(exact.size()), 4),
                   util::Table::cell(
                       std::abs(got.trace_exp - exact_trace) / exact_trace, 4)});
    }
  }
  acc.print();

  // ---- (b) work scaling in q -------------------------------------------
  std::cout << "\n(b) work vs factorization size q (fixed sketch/degree)\n";
  util::Table scale({"m", "q (nnz)", "metered work", "seconds",
                     "work/q"});
  std::vector<Real> qs, works, times;
  for (Index m = 64; m <= m_max.value; m *= 4) {
    apps::FactorizedOptions gen;
    gen.n = m / 4;  // q grows linearly with m
    gen.m = m;
    gen.rank = 2;
    gen.nnz_per_column = 8;
    const core::FactorizedPackingInstance inst = apps::random_factorized(gen);
    const sparse::Csr phi = inst.set().weighted_sum(
        linalg::Vector(inst.size(), 0.05 / static_cast<Real>(inst.size())));

    core::BigDotExpOptions options;
    options.eps = 0.25;
    options.sketch_rows_override = rows.value;
    options.taylor_degree_override = 24;  // fixed so only q varies

    par::CostMeter::reset();
    util::WallTimer timer;
    const core::BigDotExpResult got = core::big_dot_exp(phi, 2.0, inst.set(), options);
    (void)got;
    const Real seconds = timer.seconds();
    const auto cost = par::CostMeter::snapshot();

    const Real q = static_cast<Real>(inst.total_nnz());
    scale.add_row({util::Table::cell(m), util::Table::cell(inst.total_nnz()),
                   util::Table::cell(static_cast<Real>(cost.work), 4),
                   util::Table::cell(seconds, 4),
                   util::Table::cell(static_cast<Real>(cost.work) / q, 4)});
    qs.push_back(q);
    works.push_back(static_cast<Real>(cost.work));
    times.push_back(seconds);
  }
  scale.print();

  const util::LinearFit work_fit =
      bench::report_exponent("metered work vs q", qs, works);
  const util::LinearFit time_fit =
      bench::report_exponent("wall-clock vs q", qs, times);
  bench::print_verdict(
      work_fit.slope < 1.35,
      str("work exponent ", work_fit.slope, " (~1): nearly linear in q, as "
          "Corollary 1.2 states; wall-clock exponent ", time_fit.slope, "."));
  return 0;
}
