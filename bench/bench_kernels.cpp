// K1 -- google-benchmark microbenchmarks of the substrate kernels the
// solver's cost model is built on: GEMM, Jacobi eigendecomposition, matrix
// exponential, sparse matvec, JL sketching, and truncated-Taylor
// application. These are the constants behind Corollary 1.2's asymptotics.
#include <benchmark/benchmark.h>

#include "apps/generators.hpp"
#include "core/bigdotexp.hpp"
#include "linalg/expm.hpp"
#include "linalg/pivoted_cholesky.hpp"
#include "linalg/qr.hpp"
#include "linalg/taylor.hpp"
#include "rand/jl.hpp"
#include "rand/rng.hpp"
#include "sparse/csr.hpp"

namespace {

using namespace psdp;

linalg::Matrix random_sym(Index m, std::uint64_t seed) {
  rand::Rng rng(seed);
  linalg::Matrix a(m, m);
  for (Index i = 0; i < m; ++i) {
    for (Index j = i; j < m; ++j) {
      const Real v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

linalg::Matrix random_psd(Index m, std::uint64_t seed) {
  linalg::Matrix g = random_sym(m, seed);
  linalg::Matrix a = linalg::gemm(g, g.transposed());
  a.scale(Real{1} / static_cast<Real>(m));
  a.symmetrize();
  return a;
}

void BM_Gemm(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_sym(m, 1);
  const linalg::Matrix b = random_sym(m, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gemm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_JacobiEig(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_sym(m, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_eig(a));
  }
}
BENCHMARK(BM_JacobiEig)->Arg(16)->Arg(32)->Arg(64);

void BM_ExpmEig(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_psd(m, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::expm_eig(a));
  }
}
BENCHMARK(BM_ExpmEig)->Arg(16)->Arg(32)->Arg(64);

void BM_ExpmPade(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_psd(m, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::expm_pade(a));
  }
}
BENCHMARK(BM_ExpmPade)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseMatvec(benchmark::State& state) {
  const Index m = state.range(0);
  // Tridiagonal Laplacian: 3 nnz per row.
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < m; ++i) {
    triplets.push_back({i, i, 2.0});
    if (i > 0) triplets.push_back({i, i - 1, -1.0});
    if (i + 1 < m) triplets.push_back({i, i + 1, -1.0});
  }
  const sparse::Csr a = sparse::Csr::from_triplets(m, m, std::move(triplets));
  linalg::Vector x(m, 1.0), y(m);
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SparseMatvec)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_JlSketchApply(benchmark::State& state) {
  const Index m = state.range(0);
  const Index rows = 128;
  const rand::GaussianSketch pi(rows, m, 7);
  std::vector<Real> x(static_cast<std::size_t>(m), 1.0);
  std::vector<Real> y(static_cast<std::size_t>(rows));
  for (auto _ : state) {
    pi.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * m);
}
BENCHMARK(BM_JlSketchApply)->Arg(1 << 10)->Arg(1 << 14);

void BM_TaylorApply(benchmark::State& state) {
  const Index m = 1 << 14;
  const Index degree = state.range(0);
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < m; ++i) {
    triplets.push_back({i, i, 0.5});
    if (i + 1 < m) triplets.push_back({i, i + 1, 0.1});
    if (i > 0) triplets.push_back({i, i - 1, 0.1});
  }
  const sparse::Csr b = sparse::Csr::from_triplets(m, m, std::move(triplets));
  const linalg::SymmetricOp op = [&b](const linalg::Vector& x,
                                      linalg::Vector& y) { b.apply(x, y); };
  linalg::Vector x(m, 1.0), y(m);
  for (auto _ : state) {
    linalg::apply_exp_taylor(op, degree, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TaylorApply)->Arg(8)->Arg(32)->Arg(128);

void BM_BigDotExp(benchmark::State& state) {
  const Index m = state.range(0);
  apps::FactorizedOptions gen;
  gen.n = m / 8;
  gen.m = m;
  gen.nnz_per_column = 8;
  const core::FactorizedPackingInstance inst = apps::random_factorized(gen);
  const sparse::Csr phi = inst.set().weighted_sum(
      linalg::Vector(inst.size(), 0.02 / static_cast<Real>(inst.size())));
  core::BigDotExpOptions options;
  options.eps = 0.25;
  options.sketch_rows_override = 64;
  options.taylor_degree_override = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::big_dot_exp(phi, 2.0, inst.set(), options));
  }
}
BENCHMARK(BM_BigDotExp)->Arg(256)->Arg(1024);

void BM_DecisionIteration(benchmark::State& state) {
  // One dense solver iteration == one eig + one expm + n Frobenius dots.
  const Index m = 32;
  const Index n = state.range(0);
  apps::EllipseOptions gen;
  gen.n = n;
  gen.m = m;
  const core::PackingInstance inst = apps::random_ellipses(gen);
  linalg::Matrix psi(m, m);
  for (Index i = 0; i < n; ++i) psi.add_scaled(inst[i], 0.01);
  for (auto _ : state) {
    const auto eig = linalg::jacobi_eig(psi);
    const linalg::Matrix w = linalg::expm_from_eig(eig);
    Real sink = 0;
    for (Index i = 0; i < n; ++i) {
      sink += linalg::frobenius_dot(inst[i], w);
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_DecisionIteration)->Arg(64)->Arg(256);

void BM_HouseholderQr(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_sym(m, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::qr(a));
  }
}
BENCHMARK(BM_HouseholderQr)->Arg(32)->Arg(64)->Arg(128);

void BM_PivotedCholeskyFullRank(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_psd(m, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::pivoted_cholesky(a));
  }
}
BENCHMARK(BM_PivotedCholeskyFullRank)->Arg(32)->Arg(64)->Arg(128);

void BM_PivotedCholeskyLowRank(benchmark::State& state) {
  // Rank-4 PSD matrix of growing dimension: the factorization should scale
  // as O(m r^2), i.e. near-linearly in m -- the reason the preprocessing
  // step is cheap for the low-rank constraints the applications produce.
  const Index m = state.range(0);
  const Index r = 4;
  rand::Rng rng(17);
  linalg::Matrix g(m, r);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < r; ++j) g(i, j) = rng.normal();
  }
  linalg::Matrix a = linalg::gemm(g, g.transposed());
  a.symmetrize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::pivoted_cholesky(a));
  }
}
BENCHMARK(BM_PivotedCholeskyLowRank)->Arg(64)->Arg(256)->Arg(1024);

void BM_CompressFactor(benchmark::State& state) {
  // Rank-inflated factor (k = 4m columns) compressed back to m.
  const Index m = state.range(0);
  rand::Rng rng(19);
  linalg::Matrix g(m, 4 * m);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < 4 * m; ++j) g(i, j) = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::compress_factor(g));
  }
}
BENCHMARK(BM_CompressFactor)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
