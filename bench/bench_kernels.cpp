// K1 -- google-benchmark microbenchmarks of the substrate kernels the
// solver's cost model is built on: GEMM, Jacobi eigendecomposition, matrix
// exponential, sparse matvec, JL sketching, and truncated-Taylor
// application. These are the constants behind Corollary 1.2's asymptotics.
//
// Before handing control to google-benchmark, main() runs three sweeps and
// writes the measurements to BENCH_kernels.json, so the perf trajectory of
// the kernel layer is machine-readable across PRs:
//   * the SpMV-vs-SpMM block-size sweep over b in {1, 4, 8, 16, 32} on the
//     default exp-Taylor instance (r = 64 sketch rows);
//   * the transpose-kernel sweep -- owned-column scatter vs transpose-index
//     gather on a tall sparse factor (rows >= 64x cols); the acceptance bar
//     is gather >= 1.5x at some panel width;
//   * the SIMD dispatch sweep -- the same gather and SpMM kernels timed
//     under forced-scalar dispatch vs the active ISA (simd::ScopedIsa); the
//     acceptance bar is gather >= 2x over scalar at some width b >= 8
//     whenever a vector backend is active;
//   * the steady-state-allocation guard -- solver iterations on a shared
//     SolverWorkspace must perform zero heap allocations after warmup
//     (counted by the replaced global operator new below).
// The block sweep also runs the fused big_dot_exp path with float32 sketch
// panels (PanelPrecision::kFloat32) and checks it against the double
// reference at the certificate-level 5e-3 bar (vs 1e-8 for double layouts).
// `--sweep-only` exits after the sweeps; `--smoke` shrinks the instances
// for CI hot-path regression checks. `--widths=1,4,8,32` overrides the
// transpose sweep's panel widths (so the docs' regeneration commands are
// reproducible on machines with different cache shapes); `--plan-out=FILE`
// writes the autotuned transpose KernelPlan as standalone JSON and
// `--plan-in=FILE` reloads one and dispatches the sweep through it
// (round-trip demonstrated and checked).
#include <benchmark/benchmark.h>

#include "alloc_counter.hpp"
#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "apps/generators.hpp"
#include "core/bigdotexp.hpp"
#include "linalg/blockop.hpp"
#include "linalg/expm.hpp"
#include "linalg/pivoted_cholesky.hpp"
#include "linalg/qr.hpp"
#include "linalg/taylor.hpp"
#include "par/parallel.hpp"
#include "rand/jl.hpp"
#include "rand/rng.hpp"
#include "simd/simd.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernel_plan.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace psdp;

linalg::Matrix random_sym(Index m, std::uint64_t seed) {
  rand::Rng rng(seed);
  linalg::Matrix a(m, m);
  for (Index i = 0; i < m; ++i) {
    for (Index j = i; j < m; ++j) {
      const Real v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

linalg::Matrix random_psd(Index m, std::uint64_t seed) {
  linalg::Matrix g = random_sym(m, seed);
  linalg::Matrix a = linalg::gemm(g, g.transposed());
  a.scale(Real{1} / static_cast<Real>(m));
  a.symmetrize();
  return a;
}

void BM_Gemm(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_sym(m, 1);
  const linalg::Matrix b = random_sym(m, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gemm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * m * m);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_JacobiEig(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_sym(m, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_eig(a));
  }
}
BENCHMARK(BM_JacobiEig)->Arg(16)->Arg(32)->Arg(64);

void BM_ExpmEig(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_psd(m, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::expm_eig(a));
  }
}
BENCHMARK(BM_ExpmEig)->Arg(16)->Arg(32)->Arg(64);

void BM_ExpmPade(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_psd(m, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::expm_pade(a));
  }
}
BENCHMARK(BM_ExpmPade)->Arg(16)->Arg(32)->Arg(64);

void BM_SparseMatvec(benchmark::State& state) {
  const Index m = state.range(0);
  // Tridiagonal Laplacian: 3 nnz per row.
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < m; ++i) {
    triplets.push_back({i, i, 2.0});
    if (i > 0) triplets.push_back({i, i - 1, -1.0});
    if (i + 1 < m) triplets.push_back({i, i + 1, -1.0});
  }
  const sparse::Csr a = sparse::Csr::from_triplets(m, m, std::move(triplets));
  linalg::Vector x(m, 1.0), y(m);
  for (auto _ : state) {
    a.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SparseMatvec)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_JlSketchApply(benchmark::State& state) {
  const Index m = state.range(0);
  const Index rows = 128;
  const rand::GaussianSketch pi(rows, m, 7);
  std::vector<Real> x(static_cast<std::size_t>(m), 1.0);
  std::vector<Real> y(static_cast<std::size_t>(rows));
  for (auto _ : state) {
    pi.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * m);
}
BENCHMARK(BM_JlSketchApply)->Arg(1 << 10)->Arg(1 << 14);

void BM_SparseMatmulPanel(benchmark::State& state) {
  const Index m = 1 << 16;
  const Index b = state.range(0);
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < m; ++i) {
    triplets.push_back({i, i, 2.0});
    if (i > 0) triplets.push_back({i, i - 1, -1.0});
    if (i + 1 < m) triplets.push_back({i, i + 1, -1.0});
  }
  const sparse::Csr a = sparse::Csr::from_triplets(m, m, std::move(triplets));
  const linalg::Matrix x(m, b, 1.0);
  linalg::Matrix y;
  for (auto _ : state) {
    a.apply_block(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * b);
}
BENCHMARK(BM_SparseMatmulPanel)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_TaylorApply(benchmark::State& state) {
  const Index m = 1 << 14;
  const Index degree = state.range(0);
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < m; ++i) {
    triplets.push_back({i, i, 0.5});
    if (i + 1 < m) triplets.push_back({i, i + 1, 0.1});
    if (i > 0) triplets.push_back({i, i - 1, 0.1});
  }
  const sparse::Csr b = sparse::Csr::from_triplets(m, m, std::move(triplets));
  const linalg::SymmetricOp op = [&b](const linalg::Vector& x,
                                      linalg::Vector& y) { b.apply(x, y); };
  linalg::Vector x(m, 1.0), y(m);
  for (auto _ : state) {
    linalg::apply_exp_taylor(op, degree, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TaylorApply)->Arg(8)->Arg(32)->Arg(128);

void BM_TaylorApplyBlock(benchmark::State& state) {
  const Index m = 1 << 14;
  const Index b = state.range(0);
  const Index degree = 32;
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < m; ++i) {
    triplets.push_back({i, i, 0.5});
    if (i + 1 < m) triplets.push_back({i, i + 1, 0.1});
    if (i > 0) triplets.push_back({i, i - 1, 0.1});
  }
  const sparse::Csr bmat = sparse::Csr::from_triplets(m, m, std::move(triplets));
  const linalg::BlockOp op = [&bmat](const linalg::Matrix& x,
                                     linalg::Matrix& y) {
    bmat.apply_block(x, y);
  };
  const linalg::Matrix x(m, b, 1.0);
  linalg::Matrix y;
  linalg::TaylorBlockWorkspace workspace;
  for (auto _ : state) {
    linalg::apply_exp_taylor_block(op, degree, x, y, workspace);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * b);
}
BENCHMARK(BM_TaylorApplyBlock)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BigDotExp(benchmark::State& state) {
  const Index m = state.range(0);
  apps::FactorizedOptions gen;
  gen.n = m / 8;
  gen.m = m;
  gen.nnz_per_column = 8;
  const core::FactorizedPackingInstance inst = apps::random_factorized(gen);
  const sparse::Csr phi = inst.set().weighted_sum(
      linalg::Vector(inst.size(), 0.02 / static_cast<Real>(inst.size())));
  core::BigDotExpOptions options;
  options.eps = 0.25;
  options.sketch_rows_override = 64;
  options.taylor_degree_override = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::big_dot_exp(phi, 2.0, inst.set(), options));
  }
}
BENCHMARK(BM_BigDotExp)->Arg(256)->Arg(1024);

void BM_DecisionIteration(benchmark::State& state) {
  // One dense solver iteration == one eig + one expm + n Frobenius dots.
  const Index m = 32;
  const Index n = state.range(0);
  apps::EllipseOptions gen;
  gen.n = n;
  gen.m = m;
  const core::PackingInstance inst = apps::random_ellipses(gen);
  linalg::Matrix psi(m, m);
  for (Index i = 0; i < n; ++i) psi.add_scaled(inst[i], 0.01);
  for (auto _ : state) {
    const auto eig = linalg::jacobi_eig(psi);
    const linalg::Matrix w = linalg::expm_from_eig(eig);
    Real sink = 0;
    for (Index i = 0; i < n; ++i) {
      sink += linalg::frobenius_dot(inst[i], w);
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_DecisionIteration)->Arg(64)->Arg(256);

void BM_HouseholderQr(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_sym(m, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::qr(a));
  }
}
BENCHMARK(BM_HouseholderQr)->Arg(32)->Arg(64)->Arg(128);

void BM_PivotedCholeskyFullRank(benchmark::State& state) {
  const Index m = state.range(0);
  const linalg::Matrix a = random_psd(m, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::pivoted_cholesky(a));
  }
}
BENCHMARK(BM_PivotedCholeskyFullRank)->Arg(32)->Arg(64)->Arg(128);

void BM_PivotedCholeskyLowRank(benchmark::State& state) {
  // Rank-4 PSD matrix of growing dimension: the factorization should scale
  // as O(m r^2), i.e. near-linearly in m -- the reason the preprocessing
  // step is cheap for the low-rank constraints the applications produce.
  const Index m = state.range(0);
  const Index r = 4;
  rand::Rng rng(17);
  linalg::Matrix g(m, r);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < r; ++j) g(i, j) = rng.normal();
  }
  linalg::Matrix a = linalg::gemm(g, g.transposed());
  a.symmetrize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::pivoted_cholesky(a));
  }
}
BENCHMARK(BM_PivotedCholeskyLowRank)->Arg(64)->Arg(256)->Arg(1024);

void BM_CompressFactor(benchmark::State& state) {
  // Rank-inflated factor (k = 4m columns) compressed back to m.
  const Index m = state.range(0);
  rand::Rng rng(19);
  linalg::Matrix g(m, 4 * m);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < 4 * m; ++j) g(i, j) = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::compress_factor(g));
  }
}
BENCHMARK(BM_CompressFactor)->Arg(16)->Arg(32)->Arg(64);

// ------------------------------------------------------------------------
// SpMV-vs-SpMM block-size sweep (BENCH_kernels.json)
// ------------------------------------------------------------------------

struct SweepRow {
  std::string kernel;
  Index block = 0;
  double seconds = 0;
  double speedup_vs_single = 0;
  double max_rel_dev = 0;  ///< big_dot_exp only: deviation from block = 1
};

// Timing goes through linalg::time_block_kernel -- the same best-of-reps
// primitive the KernelPlan autotuner uses, so the sweep and the tuner
// answer "which kernel is fastest?" identically by construction.

struct BlockSweepResult {
  std::vector<SweepRow> rows;
  /// What the float32-requested fused rows actually ran as (kDouble when a
  /// gate refused the request -- should not happen on the bench instance).
  core::PanelPrecision float_mode_ran = core::PanelPrecision::kDouble;
  /// Worst deviation of the float32 fused rows from the double reference;
  /// gated at 5e-3 (certificate tolerance) instead of the 1e-8 bar the
  /// double layouts must meet.
  double worst_float_dev = 0;
};

/// The default bench instance of the acceptance bar: an m-dimensional sparse
/// Phi pushed through the degree-k exp-Taylor recurrence against r >= 32
/// sketch vectors, single-vector vs. panels of width b.
BlockSweepResult run_block_sweep(bool smoke) {
  const Index m = smoke ? (1 << 10) : (1 << 14);
  const Index r = 64;
  const Index degree = 16;
  const int reps = smoke ? 2 : 3;

  std::vector<sparse::Triplet> triplets;
  rand::Rng rng(123);
  for (Index i = 0; i < m; ++i) {
    triplets.push_back({i, i, 0.5});
    if (i + 1 < m) {
      triplets.push_back({i, i + 1, 0.1});
      triplets.push_back({i + 1, i, 0.1});
    }
    // A few long-range couplings so the access pattern is not purely banded.
    const Index j = rng.uniform_index(m);
    if (j != i) {
      triplets.push_back({i, j, 0.01});
      triplets.push_back({j, i, 0.01});
    }
  }
  const sparse::Csr phi = sparse::Csr::from_triplets(m, m, std::move(triplets));
  const linalg::SymmetricOp op = [&phi](const linalg::Vector& x,
                                        linalg::Vector& y) { phi.apply(x, y); };
  const linalg::BlockOp block_op = [&phi](const linalg::Matrix& x,
                                          linalg::Matrix& y) {
    phi.apply_block(x, y);
  };
  const rand::GaussianSketch sketch =
      rand::GaussianSketch::deferred(r, m, 2024);

  BlockSweepResult out;
  std::vector<SweepRow>& rows = out.rows;
  const Index blocks[] = {1, 4, 8, 16, 32};

  // Raw SpMM: one pass of Phi against an m x b panel vs b single SpMVs.
  {
    const linalg::Matrix x(m, 32, 1.0);
    linalg::Matrix y;
    linalg::Vector xv(m, 1.0), yv(m);
    double single = 0;
    for (const Index b : blocks) {
      SweepRow row;
      row.kernel = "spmm";
      row.block = b;
      if (b == 1) {
        row.seconds = linalg::time_block_kernel(reps, [&] {
          for (Index t = 0; t < 32; ++t) phi.apply(xv, yv);
        });
        single = row.seconds;
      } else {
        const linalg::Matrix panel(m, b, 1.0);
        row.seconds = linalg::time_block_kernel(reps, [&] {
          for (Index t = 0; t < 32 / b; ++t) phi.apply_block(panel, y);
        });
      }
      row.speedup_vs_single = single / row.seconds;
      rows.push_back(row);
    }
  }

  // Blocked exp-Taylor apply: r sketch rows through the degree-k recurrence.
  double taylor_single = 0;
  for (const Index b : blocks) {
    SweepRow row;
    row.kernel = "exp_taylor";
    row.block = b;
    if (b == 1) {
      row.seconds = linalg::time_block_kernel(reps, [&] {
        par::parallel_for(0, r, [&](Index j) {
          linalg::Vector x(m);
          linalg::Matrix panel;
          sketch.fill_block(j, 1, panel);
          for (Index i = 0; i < m; ++i) x[i] = panel(i, 0);
          linalg::Vector y(m);
          linalg::apply_exp_taylor(op, degree, x, y);
          benchmark::DoNotOptimize(y.data());
        }, /*grain=*/1);
      });
      taylor_single = row.seconds;
    } else {
      row.seconds = linalg::time_block_kernel(reps, [&] {
        linalg::Matrix x_panel, y_panel;
        linalg::TaylorBlockWorkspace workspace;
        for (Index j0 = 0; j0 < r; j0 += b) {
          const Index width = std::min(b, r - j0);
          sketch.fill_block(j0, width, x_panel);
          linalg::apply_exp_taylor_block(block_op, degree, x_panel, y_panel,
                                         workspace);
          benchmark::DoNotOptimize(y_panel.data());
        }
      });
    }
    row.speedup_vs_single = taylor_single / row.seconds;
    rows.push_back(row);
  }

  // End-to-end big_dot_exp on the factorized default instance, checking the
  // blocked results against the block = 1 reference as it sweeps. Two
  // blocked layouts per width: the two-pass S^T materialization
  // ("big_dot_exp") and the fused per-panel accumulation
  // ("big_dot_exp_fused", the default in production -- saves the m x r
  // buffer and one full pass over S).
  apps::FactorizedOptions gen;
  gen.n = smoke ? 32 : 128;
  gen.m = m;
  gen.nnz_per_column = 8;
  const core::FactorizedPackingInstance inst = apps::random_factorized(gen);
  core::BigDotExpOptions options;
  options.eps = 0.25;
  options.sketch_rows_override = r;
  options.taylor_degree_override = degree;
  core::BigDotExpResult reference;
  double bde_single = 0;
  for (const bool fuse : {false, true}) {
    for (const Index b : blocks) {
      if (fuse && b == 1) continue;  // block 1 is the unfused reference path
      core::BigDotExpOptions blocked = options;
      blocked.block_size = b;
      blocked.fuse_dots = fuse;
      core::BigDotExpResult result;
      SweepRow row;
      row.kernel = fuse ? "big_dot_exp_fused" : "big_dot_exp";
      row.block = b;
      row.seconds = linalg::time_block_kernel(reps, [&] {
        result = core::big_dot_exp(phi, 2.0, inst.set(), blocked);
      });
      if (!fuse && b == 1) {
        bde_single = row.seconds;
        reference = result;
      }
      for (Index i = 0; i < result.dots.size(); ++i) {
        row.max_rel_dev = std::max(
            row.max_rel_dev, std::abs(result.dots[i] / reference.dots[i] - 1));
      }
      row.speedup_vs_single = bde_single / row.seconds;
      rows.push_back(row);
    }
  }

  // Mixed-precision fused path: float32 sketch/Taylor panels, compensated
  // double dots (PanelPrecision::kFloat32). Checked against the same
  // block = 1 double reference, but at the certificate-level 5e-3 bar --
  // float panel rounding is real, it just has to stay far inside eps.
  {
    std::vector<float> phi_values_f, phi_t_values_f;
    phi.fill_float_values(phi_values_f, phi_t_values_f);
    const linalg::BlockOpF block_op_f = [&phi, &phi_values_f](
                                            const linalg::MatrixF& x,
                                            linalg::MatrixF& y) {
      phi.apply_block_f(x, y, phi_values_f);
    };
    core::SolverWorkspace workspace;
    for (const Index b : blocks) {
      if (b == 1) continue;  // the fused path needs a panel
      core::BigDotExpOptions blocked = options;
      blocked.block_size = b;
      blocked.fuse_dots = true;
      blocked.panel_precision = core::PanelPrecision::kFloat32;
      core::BigDotExpResult result;
      SweepRow row;
      row.kernel = "big_dot_exp_fused_f32";
      row.block = b;
      row.seconds = linalg::time_block_kernel(reps, [&] {
        core::big_dot_exp(op, block_op, m, 2.0, inst.set(), blocked,
                          workspace, result, &block_op_f);
      });
      out.float_mode_ran = result.panel_precision;
      for (Index i = 0; i < result.dots.size(); ++i) {
        row.max_rel_dev = std::max(
            row.max_rel_dev, std::abs(result.dots[i] / reference.dots[i] - 1));
      }
      out.worst_float_dev = std::max(out.worst_float_dev, row.max_rel_dev);
      row.speedup_vs_single = bde_single / row.seconds;
      rows.push_back(row);
    }
  }
  return out;
}

// ------------------------------------------------------------------------
// Transpose-kernel sweep: owned-column scatter vs transpose-index gather vs
// segmented-column gather on a tall sparse factor (the acceptance instance:
// rows >= 64x cols). Also autotunes and serializes the KernelPlan (the
// `kernel_plan` section of BENCH_kernels.json), or reloads a caller-
// provided one (--plan-in) to prove the round trip.
// ------------------------------------------------------------------------

/// Widths swept by default; overridden by --widths=comma,separated,list.
std::vector<Index> default_transpose_widths() { return {1, 4, 8, 16, 32}; }

struct TransposeSweepResult {
  std::vector<SweepRow> rows;
  std::string plan_json;     ///< serialized plan (tuned or reloaded)
  bool plan_reloaded = false;  ///< --plan-in round trip taken
  /// --plan-in gave a plan whose ISA/kernel-set provenance no longer
  /// matches this binary (KernelPlan::stale()): it was discarded and the
  /// index re-tuned instead of dispatching through stale measurements.
  bool plan_stale_retuned = false;
  /// Acceptance bar of the plan dispatch (full runs enforce it): at every
  /// width, `apply_transpose_block` through the autotuned plan stays
  /// within 10% of the best *deterministic* kernel (gather / segmented)
  /// measured by this sweep. The owned-column scatter is reported but not
  /// gated against: which family wins at wide widths is ISA-dependent (the
  /// SIMD scatter's contiguous row updates vectorize better than the
  /// gathers' strided fetches on some machines), and the plan deliberately
  /// never picks it -- kernel choice must not change solver bits.
  bool planned_tracks_best = true;
};

/// The acceptance instance shared by the transpose and SIMD sweeps: a tall
/// sparse factor (~2 nnz per row at random columns) of aspect >= 256x.
sparse::Csr make_tall_factor(Index rows, Index cols) {
  rand::Rng rng(321);
  std::vector<sparse::Triplet> triplets;
  for (Index i = 0; i < rows; ++i) {
    triplets.push_back({i, rng.uniform_index(cols), rng.normal()});
    if (i % 2 == 0) triplets.push_back({i, rng.uniform_index(cols), rng.normal()});
  }
  return sparse::Csr::from_triplets(rows, cols, std::move(triplets));
}

TransposeSweepResult run_transpose_sweep(bool smoke,
                                         const std::vector<Index>& widths,
                                         const std::string& plan_in) {
  const Index rows = smoke ? (1 << 12) : (1 << 16);
  const Index cols = smoke ? 16 : 64;  // 256x / 1024x aspect: firmly tall
  const int reps = smoke ? 3 : 5;
  const sparse::Csr owned = make_tall_factor(rows, cols);
  sparse::Csr indexed = owned;

  // A reloaded plan is only trusted when its provenance matches this
  // binary: measurements taken under another ISA (or an older kernel set)
  // say nothing about the kernels running here, so a stale plan is
  // discarded and the index re-tuned -- the same policy TransposePlanCache
  // applies to its in-memory entries.
  TransposeSweepResult result;
  sparse::KernelPlan loaded;
  bool have_loaded = false;
  if (!plan_in.empty()) {
    std::ifstream in(plan_in);
    PSDP_CHECK(in.good(), str("--plan-in: cannot read ", plan_in));
    std::ostringstream text;
    text << in.rdbuf();
    loaded = sparse::KernelPlan::from_json(text.str());
    have_loaded = true;
    result.plan_stale_retuned = loaded.stale();
  }
  const bool reuse_loaded = have_loaded && !loaded.stale();

  // The sweep times the kernels itself; build the index with a thorough
  // autotune over the swept widths so the emitted plan reflects them --
  // unless a reloaded (and still-valid) plan is about to replace it
  // anyway. measure_scalar also records the forced-scalar gather baseline
  // per shape bucket, so the emitted plan documents the SIMD speedup it
  // was tuned under.
  sparse::TransposePlanOptions build_options;
  build_options.autotune.enable = !reuse_loaded;
  build_options.autotune.widths = widths;
  build_options.autotune.reps = reps;
  build_options.autotune.measure_scalar = true;
  indexed.build_transpose_index(build_options);

  if (reuse_loaded) {
    indexed.set_kernel_plan(loaded);
    result.plan_reloaded = true;
  } else if (have_loaded) {
    std::cout << "--plan-in: plan provenance is stale (tuned under isa '"
              << simd::isa_name(loaded.isa()) << "', kernel set "
              << loaded.kernel_set_version() << "); re-tuned\n";
  }
  result.plan_json = indexed.kernel_plan().to_json();

  for (const Index b : widths) {
    linalg::Matrix x(rows, b);
    rand::Rng fill(7);
    for (Index i = 0; i < rows; ++i) {
      for (Index t = 0; t < b; ++t) x(i, t) = fill.normal();
    }
    linalg::Matrix ys, yg, yseg, yplan;
    std::vector<Real> partial;
    // Narrow widths finish in fractions of a millisecond, where run-to-run
    // noise on a shared machine swamps a 5% acceptance bar -- scale the
    // inner repetitions up so every width's sample covers comparable work.
    const Index inner_scale = std::max<Index>(1, 32 / b);
    const int inner =
        static_cast<int>((smoke ? 4 : 8) * inner_scale);
    SweepRow owned_row;
    owned_row.kernel = "transpose_owned";
    owned_row.block = b;
    owned_row.seconds = linalg::time_block_kernel(reps, [&] {
      for (int it = 0; it < inner; ++it) {
        owned.apply_transpose_block_owned(x, ys, partial);
      }
    });
    owned_row.speedup_vs_single = 1;
    // For the transpose rows, "speedup_vs_single" is the kernel's speedup
    // over the owned-column scatter at the same width.
    SweepRow gather_row;
    gather_row.kernel = "transpose_indexed";
    gather_row.block = b;
    gather_row.seconds = linalg::time_block_kernel(reps, [&] {
      for (int it = 0; it < inner; ++it) {
        indexed.apply_transpose_block_indexed(x, yg);
      }
    });
    gather_row.speedup_vs_single = owned_row.seconds / gather_row.seconds;
    const auto deviation = [&](const linalg::Matrix& y) {
      Real worst = 0;
      for (Index j = 0; j < cols; ++j) {
        for (Index t = 0; t < b; ++t) {
          const Real ref = ys(j, t);
          const Real dev = std::abs(ref) > 0 ? std::abs(y(j, t) / ref - 1)
                                             : std::abs(y(j, t));
          worst = std::max(worst, dev);
        }
      }
      return worst;
    };
    gather_row.max_rel_dev = deviation(yg);
    SweepRow segmented_row;
    segmented_row.kernel = "transpose_segmented";
    segmented_row.block = b;
    if (indexed.has_segment_index()) {
      segmented_row.seconds = linalg::time_block_kernel(reps, [&] {
        for (int it = 0; it < inner; ++it) {
          indexed.apply_transpose_block_segmented(x, yseg);
        }
      });
      segmented_row.speedup_vs_single =
          owned_row.seconds / segmented_row.seconds;
      segmented_row.max_rel_dev = deviation(yseg);
    }
    // The plan-dispatched entry point, timed as the solvers see it.
    SweepRow plan_row;
    plan_row.kernel = "transpose_planned";
    plan_row.block = b;
    plan_row.seconds = linalg::time_block_kernel(reps, [&] {
      for (int it = 0; it < inner; ++it) {
        indexed.apply_transpose_block(x, yplan, partial);
      }
    });
    plan_row.speedup_vs_single = owned_row.seconds / plan_row.seconds;
    plan_row.max_rel_dev = deviation(yplan);
    double best_deterministic = gather_row.seconds;
    if (indexed.has_segment_index()) {
      best_deterministic = std::min(best_deterministic, segmented_row.seconds);
    }
    if (plan_row.seconds > 1.10 * best_deterministic) {
      result.planned_tracks_best = false;
    }
    result.rows.push_back(owned_row);
    result.rows.push_back(gather_row);
    if (indexed.has_segment_index()) result.rows.push_back(segmented_row);
    result.rows.push_back(plan_row);
  }
  return result;
}

// ------------------------------------------------------------------------
// SIMD dispatch sweep: the transpose-index gather and the row-parallel SpMM
// timed twice per width on the tall-factor acceptance instance -- once
// under forced-scalar dispatch (simd::ScopedIsa(kScalar)) and once under
// the active ISA. This is the `simd` section of BENCH_kernels.json and the
// PR's headline acceptance bar: gather >= 2x over scalar at some b >= 8.
// ------------------------------------------------------------------------

struct SimdSweepRow {
  std::string kernel;
  Index block = 0;
  double scalar_seconds = 0;  ///< forced-scalar dispatch
  double active_seconds = 0;  ///< active-ISA dispatch
  double speedup = 0;         ///< scalar / active
};

struct SimdSweepResult {
  std::vector<SimdSweepRow> rows;
  /// >= 2x gather speedup at some b >= 8 (trivially true when the active
  /// ISA is already scalar: there is no vector backend to hold to the bar).
  bool gather_bar_met = true;
};

SimdSweepResult run_simd_sweep(bool smoke, const std::vector<Index>& widths) {
  const Index rows = smoke ? (1 << 12) : (1 << 16);
  const Index cols = smoke ? 16 : 64;
  const int reps = smoke ? 3 : 5;
  sparse::Csr indexed = make_tall_factor(rows, cols);
  // Plain transpose index, no autotune: the sweep times the gather kernel
  // directly (apply_transpose_block_indexed), so the kernel choice is
  // pinned and only the dispatch seam varies between the two timings.
  indexed.build_transpose_index();

  SimdSweepResult result;
  const bool vector_active = simd::active_isa() != simd::Isa::kScalar;
  result.gather_bar_met = !vector_active;  // scalar-only: bar vacuous
  for (const Index b : widths) {
    linalg::Matrix x(rows, b);
    linalg::Matrix xw(cols, b);
    rand::Rng fill(7);
    for (Index i = 0; i < rows; ++i) {
      for (Index t = 0; t < b; ++t) x(i, t) = fill.normal();
    }
    for (Index j = 0; j < cols; ++j) {
      for (Index t = 0; t < b; ++t) xw(j, t) = fill.normal();
    }
    linalg::Matrix yg, ym;
    const Index inner_scale = std::max<Index>(1, 32 / b);
    const int inner = static_cast<int>((smoke ? 4 : 8) * inner_scale);
    const auto time_pair = [&](const std::function<void()>& body,
                               SimdSweepRow& row) {
      row.active_seconds = linalg::time_block_kernel(reps, body);
      if (vector_active) {
        simd::ScopedIsa forced_scalar(simd::Isa::kScalar);
        row.scalar_seconds = linalg::time_block_kernel(reps, body);
      } else {
        row.scalar_seconds = row.active_seconds;
      }
      row.speedup = row.scalar_seconds / row.active_seconds;
    };
    SimdSweepRow gather_row;
    gather_row.kernel = "transpose_gather";
    gather_row.block = b;
    time_pair(
        [&] {
          for (int it = 0; it < inner; ++it) {
            indexed.apply_transpose_block_indexed(x, yg);
          }
        },
        gather_row);
    if (vector_active && b >= 8 && gather_row.speedup >= 2.0) {
      result.gather_bar_met = true;
    }
    SimdSweepRow spmm_row;
    spmm_row.kernel = "spmm";
    spmm_row.block = b;
    time_pair(
        [&] {
          for (int it = 0; it < inner; ++it) indexed.apply_block(xw, ym);
        },
        spmm_row);
    result.rows.push_back(gather_row);
    result.rows.push_back(spmm_row);
  }
  return result;
}

void write_sweep_json(const BlockSweepResult& block,
                      const TransposeSweepResult& transpose,
                      const SimdSweepResult& simd_sweep,
                      const bench::SteadyStateAllocReport& alloc_report,
                      bool smoke, const std::string& path) {
  const auto write_rows = [](std::ofstream& out,
                             const std::vector<SweepRow>& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      const SweepRow& row = list[i];
      out << "    {\"kernel\": \"" << row.kernel
          << "\", \"block\": " << row.block
          << ", \"seconds\": " << row.seconds
          << ", \"speedup_vs_single\": " << row.speedup_vs_single
          << ", \"max_rel_dev\": " << row.max_rel_dev << "}"
          << (i + 1 < list.size() ? "," : "") << "\n";
    }
  };
  std::ofstream out(path);
  out << "{\n  \"bench\": \"kernels\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"isa\": \""
      << simd::isa_name(simd::active_isa()) << "\",\n  \"simd_compiled\": [";
  const std::vector<simd::Isa> compiled = simd::compiled_isas();
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    out << "\"" << simd::isa_name(compiled[i]) << "\""
        << (i + 1 < compiled.size() ? ", " : "");
  }
  out << "],\n  \"panel_precision\": \""
      << core::panel_precision_name(block.float_mode_ran)
      << "\",\n  \"block_sweep\": [\n";
  write_rows(out, block.rows);
  out << "  ],\n  \"transpose_sweep\": [\n";
  write_rows(out, transpose.rows);
  out << "  ],\n  \"simd\": [\n";
  for (std::size_t i = 0; i < simd_sweep.rows.size(); ++i) {
    const SimdSweepRow& row = simd_sweep.rows[i];
    out << "    {\"kernel\": \"" << row.kernel
        << "\", \"block\": " << row.block
        << ", \"scalar_seconds\": " << row.scalar_seconds
        << ", \"active_seconds\": " << row.active_seconds
        << ", \"speedup\": " << row.speedup << "}"
        << (i + 1 < simd_sweep.rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"kernel_plan\": " << transpose.plan_json
      << ",\n  \"kernel_plan_reloaded\": "
      << (transpose.plan_reloaded ? "true" : "false")
      << ",\n  \"kernel_plan_stale_retuned\": "
      << (transpose.plan_stale_retuned ? "true" : "false")
      << ",\n  \"steady_state_alloc\": {\"warmup_iterations\": "
      << alloc_report.warmup_iterations
      << ", \"measured_iterations\": " << alloc_report.measured_iterations
      << ", \"allocations\": " << alloc_report.allocations << "}\n}\n";
}

struct SweepConfig {
  bool smoke = false;
  std::vector<Index> widths = default_transpose_widths();
  std::string plan_in;   ///< reload the transpose plan from this JSON file
  std::string plan_out;  ///< write the (tuned or reloaded) plan here
};

int run_sweep(const SweepConfig& config) {
  const bool smoke = config.smoke;
  std::cout << "Kernels: isa " << simd::isa_name(simd::active_isa())
            << " (compiled:";
  for (const simd::Isa isa : simd::compiled_isas()) {
    std::cout << " " << simd::isa_name(isa);
  }
  std::cout << "), sketch panels double (reference) + float32 sweep\n";
  const BlockSweepResult block = run_block_sweep(smoke);
  const TransposeSweepResult transpose =
      run_transpose_sweep(smoke, config.widths, config.plan_in);
  const SimdSweepResult simd_sweep = run_simd_sweep(smoke, config.widths);
  if (!config.plan_out.empty()) {
    std::ofstream out(config.plan_out);
    out << transpose.plan_json << "\n";
    out.flush();
    PSDP_CHECK(out.good(), str("--plan-out: cannot write ", config.plan_out));
    std::cout << "wrote transpose kernel plan to " << config.plan_out << "\n";
  }

  // Steady-state-allocation guard: factorized plain-loop iterations on a
  // shared SolverWorkspace, counted by this binary's replaced operator new.
  apps::FactorizedOptions alloc_gen;
  alloc_gen.n = smoke ? 16 : 48;
  alloc_gen.m = smoke ? 256 : 1024;
  alloc_gen.nnz_per_column = 6;
  const core::FactorizedPackingInstance alloc_inst =
      apps::random_factorized(alloc_gen);
  const bench::SteadyStateAllocReport alloc_report =
      bench::run_steady_state_allocs(alloc_inst, /*eps=*/0.15, /*warmup=*/3,
                                     /*measured=*/8,
                                     [] { return psdp::bench::alloc_count(); });

  write_sweep_json(block, transpose, simd_sweep, alloc_report, smoke,
                   "BENCH_kernels.json");
  std::cout << "SpMV-vs-SpMM block sweep (r = 64 sketch rows):\n";
  bool taylor_bar_met = false;
  double worst_dev = 0;
  for (const SweepRow& row : block.rows) {
    std::cout << "  " << row.kernel << " b=" << row.block << ": "
              << row.seconds * 1e3 << " ms, " << row.speedup_vs_single
              << "x vs single\n";
    if (row.kernel == "exp_taylor" && row.block >= 8 &&
        row.speedup_vs_single >= 2.0) {
      taylor_bar_met = true;
    }
    // Float32 rows are gated separately at the 5e-3 certificate bar.
    if (row.kernel != "big_dot_exp_fused_f32") {
      worst_dev = std::max(worst_dev, row.max_rel_dev);
    }
  }
  std::cout << "transpose sweep (tall factor: owned-column scatter vs "
               "gather vs segmented gather vs the plan dispatch):\n";
  bool transpose_bar_met = false;
  double transpose_dev = 0;
  for (const SweepRow& row : transpose.rows) {
    std::cout << "  " << row.kernel << " b=" << row.block << ": "
              << row.seconds * 1e3 << " ms";
    if (row.kernel != "transpose_owned") {
      std::cout << ", " << row.speedup_vs_single << "x vs owned";
      transpose_dev = std::max(transpose_dev, row.max_rel_dev);
    }
    if (row.kernel == "transpose_indexed" && row.speedup_vs_single >= 1.5) {
      transpose_bar_met = true;
    }
    std::cout << "\n";
  }
  std::cout << "SIMD dispatch sweep (forced-scalar vs "
            << simd::isa_name(simd::active_isa()) << "):\n";
  for (const SimdSweepRow& row : simd_sweep.rows) {
    std::cout << "  " << row.kernel << " b=" << row.block << ": scalar "
              << row.scalar_seconds * 1e3 << " ms, active "
              << row.active_seconds * 1e3 << " ms, " << row.speedup
              << "x\n";
  }
  std::cout << "transpose kernel plan"
            << (transpose.plan_reloaded ? " (reloaded via --plan-in)" : "")
            << (transpose.plan_stale_retuned ? " (stale --plan-in re-tuned)"
                                             : "")
            << ": " << transpose.plan_json << "\n";
  std::cout << "steady-state allocations after warmup: "
            << alloc_report.allocations << " (over "
            << alloc_report.measured_iterations << " iterations)\n";
  const bool alloc_bar_met = alloc_report.allocations == 0;
  // CI runners must dispatch to a vector backend whenever one was compiled
  // in: a scalar fallback there means broken runtime detection, and the
  // SIMD equivalence coverage would silently test nothing. An explicit
  // PSDP_SIMD env override is intentional and exempt.
  const char* simd_env = std::getenv("PSDP_SIMD");
  const bool env_forced = simd_env != nullptr && *simd_env != '\0' &&
                          std::string(simd_env) != "auto";
  const bool isa_bar_met = !smoke || env_forced ||
                           simd::compiled_isas().size() <= 1 ||
                           simd::active_isa() != simd::Isa::kScalar;
  const bool float_engaged =
      block.float_mode_ran == core::PanelPrecision::kFloat32;
  const bool float_bar_met = float_engaged && block.worst_float_dev < 5e-3;
  std::cout << "[" << (taylor_bar_met ? "PERF OK" : "PERF MISS")
            << "] blocked exp-Taylor >= 2x at some b >= 8; max big_dot_exp "
               "deviation from reference "
            << worst_dev << "\n";
  std::cout << "[" << (transpose_bar_met ? "PERF OK" : "PERF MISS")
            << "] transpose-index gather >= 1.5x over owned-column at some "
               "width; max deviation "
            << transpose_dev << "\n";
  std::cout << "[" << (transpose.planned_tracks_best ? "PERF OK" : "PERF MISS")
            << "] plan dispatch within 10% of the best deterministic "
               "kernel at every width\n";
  std::cout << "[" << (simd_sweep.gather_bar_met ? "PERF OK" : "PERF MISS")
            << "] SIMD gather >= 2x over forced-scalar at some width >= 8 "
               "(vacuous under scalar dispatch)\n";
  std::cout << "[" << (float_bar_met ? "PREC OK" : "PREC MISS")
            << "] float32 sketch panels engaged and within 5e-3 of the "
               "double reference; worst deviation "
            << block.worst_float_dev << "\n";
  std::cout << "[" << (isa_bar_met ? "SIMD OK" : "SIMD MISS")
            << "] non-scalar dispatch on a SIMD-enabled build (smoke/CI "
               "check)\n";
  std::cout << "[" << (alloc_bar_met ? "ALLOC OK" : "ALLOC MISS")
            << "] zero steady-state allocations\n";
  std::cout << "wrote BENCH_kernels.json\n";
  // Smoke runs (CI on tiny instances) gate on correctness, the allocation
  // bar, the float32 certificate bar, and the dispatch check; the perf
  // bars are enforced on the full default instances.
  return worst_dev < 1e-8 && transpose_dev < 1e-8 && alloc_bar_met &&
                 float_bar_met && isa_bar_met &&
                 (smoke ||
                  (taylor_bar_met && transpose_bar_met &&
                   transpose.planned_tracks_best && simd_sweep.gather_bar_met))
             ? 0
             : 1;
}

/// Parse "1,4,8,32" into widths via the shared util::parse_index_list, so
/// malformed input throws the flag-naming InvalidArgument every other entry
/// point throws instead of escaping as a raw std::stoll exception.
std::vector<Index> parse_widths(const std::string& text) {
  std::vector<Index> widths;
  try {
    widths = util::parse_index_list(text);
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(str("flag --widths: ", e.what()));
  }
  PSDP_CHECK(!widths.empty(), "flag --widths: empty width list");
  for (const Index w : widths) {
    PSDP_CHECK(w >= 1, str("flag --widths: width ", w, " must be >= 1"));
  }
  return widths;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig config;
  bool sweep_only = false;
  int sweep_status = 1;
  // The sweep's flags and run throw InvalidArgument on bad input (a width
  // list that fails parse_index_list, an unreadable --plan-in); report it
  // like the Cli-based binaries do instead of letting it escape to
  // std::terminate.
  try {
    // Consume the sweep's own flags so google-benchmark never sees them;
    // the rest of argv is handed to benchmark::Initialize untouched.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--smoke") {
        config.smoke = true;
        sweep_only = true;
      } else if (arg == "--sweep-only") {
        sweep_only = true;
      } else if (arg.rfind("--widths=", 0) == 0) {
        config.widths = parse_widths(arg.substr(9));
      } else if (arg.rfind("--plan-in=", 0) == 0) {
        config.plan_in = arg.substr(10);
      } else if (arg.rfind("--plan-out=", 0) == 0) {
        config.plan_out = arg.substr(11);
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    sweep_status = run_sweep(config);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (sweep_only) return sweep_status;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sweep_status;
}
