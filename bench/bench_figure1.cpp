// E9 -- Figure 1: the paper's one concrete instance. Three ellipses in the
// plane; the caption's arithmetic (A1+A2 slightly over the ball,
// A1/2 + A2/2 + A3 essentially tight) pins the packing optimum near 2.
// We regenerate the figure's quantitative content: the two caption
// combinations' spectral norms, the computed optimum bracket, and the
// decision boundary around it.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/certificates.hpp"
#include "core/decision.hpp"
#include "core/optimize.hpp"
#include "linalg/eig.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_figure1", "E9: the Figure-1 instance");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E9: Figure 1 (packing ellipses into the unit ball)",
      "Claim (Sec 1.2 intuition): the caption's combinations A1+A2 (just "
      "over the ball) and A1/2+A2/2+A3 (exactly tight) describe the "
      "instance's geometry. For this instance the optimum is analytic: "
      "A1+A2 = 1.25 I, so OPT = 1/lambda_max(A3) = 8/3 via pure A3 mass.");

  const core::PackingInstance fig1 = apps::figure1_instance();

  // Caption combinations.
  util::Table combos({"combination", "lambda_max", "inside unit ball?"});
  {
    const linalg::Matrix sum12 = linalg::add(fig1[0], fig1[1]);
    combos.add_row({"A1 + A2", util::Table::cell(
                                   linalg::lambda_max_exact(sum12), 5),
                    linalg::lambda_max_exact(sum12) <= 1 ? "yes" : "no (just over)"});
    linalg::Matrix tight = fig1[0];
    tight.scale(0.5);
    tight.add_scaled(fig1[1], 0.5);
    tight.add_scaled(fig1[2], 1.0);
    const Real lam = linalg::lambda_max_exact(tight);
    combos.add_row({"A1/2 + A2/2 + A3", util::Table::cell(lam, 5),
                    lam <= 1.05 ? "essentially tight" : "no"});
  }
  combos.print();

  // Computed optimum.
  core::OptimizeOptions options;
  options.eps = 0.05;
  const core::PackingOptimum opt = core::approx_packing(fig1, options);
  std::cout << "\nPacking optimum bracket: [" << opt.lower << ", " << opt.upper
            << "]\n";
  const core::DualCheck check = core::check_dual(fig1, opt.best_x);
  std::cout << "Witness x = [" << opt.best_x[0] << ", " << opt.best_x[1]
            << ", " << opt.best_x[2] << "], feasible = " << std::boolalpha
            << check.feasible << "\n\n";

  // Decision boundary sweep.
  util::Table sweep({"scale v", "decision outcome"});
  core::DecisionOptions d_options;
  d_options.eps = 0.1;
  bool monotone = true;
  bool seen_primal = false;
  for (Real v : {0.5, 1.0, 1.5, 2.0, 8.0 / 3.0, 3.5, 5.0}) {
    const core::DecisionResult r = core::decision_dense(fig1.scaled(v), d_options);
    const bool primal = r.outcome == core::DecisionOutcome::kPrimal;
    if (seen_primal && !primal) monotone = false;  // flipped back: not monotone
    seen_primal |= primal;
    sweep.add_row({util::Table::cell(v, 3),
                   primal ? "primal (does not fit)" : "dual (fits)"});
  }
  sweep.print();

  const Real analytic_opt = 8.0 / 3.0;
  bench::print_verdict(
      opt.lower <= analytic_opt * (1 + 1e-9) &&
          opt.upper >= analytic_opt * (1 - 1e-9) && check.feasible && monotone,
      str("bracket [", opt.lower, ", ", opt.upper,
          "] contains the analytic optimum 8/3, and the decision flips once "
          "as the scale crosses it."));
  return 0;
}
