// E5 -- Lemma 3.2: the iterate Psi(t) = sum_i x_i(t) A_i satisfies
// lambda_max(Psi(t)) <= (1 + 10 eps) K throughout the run. This invariant
// is what lets the algorithm divide x by (1+10eps)K to obtain an exactly
// feasible dual, and it fixes the a-priori kappa of the factorized path.
// We trace lambda_max over full runs across eps and instance families.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/decision.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_spectrum_bound", "E5: Lemma 3.2 spectrum invariant");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E5: spectrum bound (Lemma 3.2)",
      "Claim: lambda_max(Psi(t)) <= (1+10 eps) K for every iteration t.");

  util::Table table({"instance", "eps", "iters", "max lambda_max(Psi)",
                     "bound (1+10eps)K", "max ratio"});
  bool all_hold = true;

  struct Case {
    const char* name;
    core::PackingInstance instance;
  };
  apps::EllipseOptions ellipse_gen;
  ellipse_gen.n = 32;
  ellipse_gen.m = 6;
  apps::NeedleOptions needle_gen;
  needle_gen.n = 16;
  needle_gen.m = 6;
  needle_gen.width = 256;
  std::vector<Case> cases;
  cases.push_back({"figure1 x2", apps::figure1_instance().scaled(2.0)});
  cases.push_back({"ellipses x0.1", apps::random_ellipses(ellipse_gen).scaled(0.1)});
  cases.push_back({"needle(256) x0.05",
                   apps::needle_width_family(needle_gen).scaled(0.05)});

  for (const Case& c : cases) {
    for (Real eps : {0.1, 0.3, 0.5}) {
      core::DecisionOptions options;
      options.eps = eps;
      options.track_trajectory = true;
      const core::DecisionResult r = core::decision_dense(c.instance, options);
      Real worst = 0;
      for (const auto& stat : r.trajectory) {
        worst = std::max(worst, stat.lambda_max_psi);
      }
      const Real ratio = worst / r.constants.spectrum_bound;
      all_hold &= ratio <= 1 + 1e-9;
      table.add_row({c.name, util::Table::cell(eps, 2),
                     util::Table::cell(r.iterations),
                     util::Table::cell(worst, 5),
                     util::Table::cell(r.constants.spectrum_bound, 5),
                     util::Table::cell(ratio, 4)});
    }
  }
  table.print();

  bench::print_verdict(all_hold,
                       "the Lemma 3.2 invariant held on every trajectory "
                       "(all ratios <= 1).");
  return 0;
}
