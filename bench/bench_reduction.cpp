// E10 -- Lemma 2.2: the optimization-to-decision reduction uses O(log n)
// decision calls, and the trace-bounding step caps Tr[A_i] <= O(n^3)
// without changing the optimum by more than eps. We measure decision-call
// counts across n and show the dropped-coordinate accounting on instances
// with extreme trace spread.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/instance.hpp"
#include "core/optimize.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_reduction", "E10: Lemma 2.2 reduction accounting");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E10: optimization-to-decision reduction (Lemma 2.2)",
      "Claim: a positive packing SDP is approximated with O(log n) calls "
      "to the eps-decision problem, after capping Tr[A_i] <= O(n^3).");

  // (a) decision calls vs n.
  std::cout << "(a) decision calls across instance sizes\n";
  util::Table calls({"n", "decision calls", "total iterations",
                     "bracket ratio"});
  std::vector<Real> ns, call_counts;
  for (Index n = 8; n <= 256; n *= 2) {
    apps::EllipseOptions gen;
    gen.n = n;
    gen.m = 5;
    gen.seed = 7 + static_cast<std::uint64_t>(n);
    const core::PackingInstance instance = apps::random_ellipses(gen);
    core::OptimizeOptions options;
    options.eps = 0.2;
    const core::PackingOptimum r = core::approx_packing(instance, options);
    calls.add_row({util::Table::cell(n), util::Table::cell(r.decision_calls),
                   util::Table::cell(r.total_iterations),
                   util::Table::cell(r.upper / r.lower, 4)});
    ns.push_back(static_cast<Real>(n));
    call_counts.push_back(static_cast<Real>(r.decision_calls));
  }
  calls.print();
  const util::LinearFit fit =
      bench::report_exponent("decision calls vs n", ns, call_counts);

  // (b) trace bounding on spread-out instances.
  std::cout << "\n(b) trace bounding (cap factor n^3) under trace spread\n";
  util::Table spread({"trace spread", "n", "dropped", "surviving"});
  for (Real spread_factor : {1e2, 1e6, 1e12}) {
    std::vector<linalg::Matrix> constraints;
    const Index n = 16;
    for (Index i = 0; i < n; ++i) {
      linalg::Matrix a = linalg::Matrix::identity(4);
      // Geometric trace ladder from 1 to spread_factor.
      a.scale(std::pow(spread_factor,
                       static_cast<Real>(i) / static_cast<Real>(n - 1)));
      constraints.push_back(std::move(a));
    }
    const core::PackingInstance instance{std::move(constraints)};
    const core::TraceBoundResult r = core::bound_traces(instance);
    spread.add_row({util::Table::cell(spread_factor, 3), util::Table::cell(n),
                    util::Table::cell(r.dropped),
                    util::Table::cell(r.instance.size())});
  }
  spread.print();

  bench::print_verdict(
      fit.slope < 0.4,
      str("decision-call exponent in n is ", fit.slope,
          " (~0: logarithmic growth), and trace bounding only engages when "
          "the spread exceeds the n^3 cap."));
  return 0;
}
