// E3 -- the headline claim: Algorithm 3.1's iteration count is
// WIDTH-INDEPENDENT, while classical MMW packing solvers ([AHK05, AK07]
// tradition, and the motivation for [JY11]) need O(width) iterations.
//
// Workload: the needle family -- a benign random instance plus one
// constraint with lambda_max = rho. Sweeping rho leaves n, m and the
// benign geometry untouched, so any growth in iterations is pure width
// dependence. We report, per rho:
//   * Algorithm 3.1 iterations (should stay flat),
//   * the width-dependent baseline's planned budget T(rho) (grows ~rho),
//   * the baseline's actual iterations, capped for runtime.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/baseline.hpp"
#include "core/decision.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_width_independence",
                "E3: width-independence vs the classical baseline");
  auto& eps = cli.flag<Real>("eps", 0.3, "accuracy parameter for both solvers");
  auto& n = cli.flag<Index>("n", 24, "constraint count");
  auto& m = cli.flag<Index>("m", 8, "matrix dimension");
  auto& cap = cli.flag<Index>("baseline-cap", 20000,
                              "iteration cap for the baseline runs");
  auto& width_max = cli.flag<Real>("width-max", 4096.0, "largest needle width");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E3: width independence",
      "Claim (headline, Sec 1): Algorithm 3.1's iteration count does not "
      "depend on the width rho = max_i lambda_max(A_i); classical MMW "
      "packing solvers scale as O(rho log m / eps^2).");

  util::Table table({"width rho", "Alg3.1 iters", "baseline T(rho)",
                     "baseline iters (capped)", "Alg3.1 s", "baseline s"});
  std::vector<Real> widths, paper_iters, baseline_budget;

  for (Real width = 1; width <= width_max.value; width *= 4) {
    apps::NeedleOptions gen;
    gen.n = n.value;
    gen.m = m.value;
    gen.width = width;
    const core::PackingInstance instance = apps::needle_width_family(gen);
    // Normalize the threshold so the decision is dual-side at every width:
    // scale by a constant fraction of the benign mass, not of the needle.
    const core::PackingInstance scaled = instance.scaled(0.05);

    core::DecisionOptions paper_options;
    paper_options.eps = eps.value;
    util::WallTimer paper_timer;
    const core::DecisionResult paper = core::decision_dense(scaled, paper_options);
    const Real paper_seconds = paper_timer.seconds();

    core::BaselineOptions base_options;
    base_options.eps = eps.value;
    base_options.max_iterations_override =
        std::min<Index>(cap.value, core::width_dependent_iterations(
                                       width * 0.05, m.value, eps.value));
    util::WallTimer base_timer;
    const core::BaselineResult base =
        core::decision_width_dependent(scaled, base_options);
    const Real base_seconds = base_timer.seconds();

    table.add_row({util::Table::cell(width, 5),
                   util::Table::cell(paper.iterations),
                   util::Table::cell(base.planned_iterations),
                   util::Table::cell(base.iterations),
                   util::Table::cell(paper_seconds, 3),
                   util::Table::cell(base_seconds, 3)});
    widths.push_back(width);
    paper_iters.push_back(static_cast<Real>(paper.iterations));
    baseline_budget.push_back(static_cast<Real>(base.planned_iterations));
  }
  table.print();

  const util::LinearFit paper_fit =
      bench::report_exponent("Alg 3.1 iterations vs width", widths, paper_iters);
  const util::LinearFit base_fit = bench::report_exponent(
      "baseline budget vs width", widths, baseline_budget);
  bench::print_verdict(
      std::abs(paper_fit.slope) < 0.15 && base_fit.slope > 0.8,
      str("Alg 3.1 exponent ~0 (", paper_fit.slope,
          "): width-independent; baseline exponent ~1 (", base_fit.slope,
          "): width-dependent. The paper's solver wins by the width factor."));
  return 0;
}
