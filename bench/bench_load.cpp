// Serve-layer latency bench: an open-loop Poisson arrival stream over a
// heavy-tailed instance mix, replayed twice through the batch scheduler --
//
//   baseline   the PR-5 static regime: FIFO queue, no preemption, no
//              widening (a lane that picks up an elephant keeps it, and
//              every tiny job behind it waits);
//   aware      the latency-aware regime: EDF queue ordered by deadline,
//              oracle-round preemption (an urgent arrival borrows a busy
//              lane between rounds), and dynamic widening (the last jobs
//              of a burst take the whole pool).
//
// The mix is 60% tiny / 15% medium / 5% elephant factorized-packing jobs
// plus 10% dense-packing and 10% covering jobs (so the SPSA profile pass
// below records tuned entries for every serve job kind, not only
// factorized); tiny and medium jobs carry relative deadlines calibrated
// from per-class solo runs, the rest are batch work with no deadline. The
// arrival rate is self-calibrated to a target
// utilization from the same solo runs, so the bench exercises comparable
// queueing pressure on any machine.
//
// Reported per run and per class: p50/p99 queue, run and total latency,
// jobs/s over the makespan, deadline-hit rate, and the scheduler's
// preemption/promotion/demotion counters. Every completed job is compared
// bitwise against its solo reference -- preempted, parked and promoted
// solves must not change a single bit (the serve/scheduler.hpp contract).
//
// Results are spliced into BENCH_serve.json as a "latency" section
// (replacing any previous one; the rest of the file is preserved).
//
// Gates (exit 1 on failure):
//   * always: zero identity mismatches across both runs;
//   * --smoke: aware tiny-class p99 total latency < solo tiny time x lanes
//     (i.e. an interactive job never waits out a whole static shard);
//   * --assert-improvement=X: baseline/aware tiny p99 >= X at >= 95% of
//     baseline throughput (the ISSUE acceptance bar is 2).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/beamforming.hpp"
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "io/instance_io.hpp"
#include "par/parallel.hpp"
#include "serve/scheduler.hpp"
#include "serve/solverd.hpp"
#include "util/cli.hpp"
#include "util/spsa.hpp"
#include "util/timer.hpp"

namespace {

using namespace psdp;

/// One reusable job configuration: a cache key, a deterministic builder,
/// and solver options. Arrivals instantiate these round-robin per class.
/// `kind` selects which generator member is live (the others stay at their
/// defaults, unused).
struct JobTemplate {
  std::string instance;
  std::string label;
  serve::JobKind kind = serve::JobKind::kPackingFactorized;
  apps::FactorizedOptions generator;        ///< kPackingFactorized
  apps::EllipseOptions dense_generator;     ///< kPackingDense
  apps::BeamformingOptions covering_generator;  ///< kCovering
  core::OptimizeOptions options;
};

struct JobClass {
  std::string name;
  double weight = 0;            ///< mix fraction
  bool deadline = false;        ///< latency-sensitive class
  std::vector<JobTemplate> templates;
  // Filled by the solo pass:
  double solo_seconds = 0;      ///< mean solo run time over templates
  double deadline_ms = 0;       ///< calibrated relative deadline
};

core::OptimizeOptions load_options(Real eps) {
  core::OptimizeOptions options;
  options.eps = eps;
  options.decision_eps = 0.25;
  options.probe_solver = core::ProbeSolver::kPhased;
  // Modest fixed sketch, as a serving deployment would run its probes
  // (certificates stay measured and valid; only probe progress varies).
  options.decision.dot_options.sketch_rows_override = 16;
  return options;
}

/// The heavy-tailed mix. Elephants are ~2 orders of magnitude more work
/// than tiny jobs, so a FIFO lane that picks one up blocks its queue for
/// many tiny-job service times -- exactly the p99 regime the aware
/// scheduler is built for.
std::vector<JobClass> make_classes(bool smoke) {
  const auto fill = [](JobClass& cls, Index m, Index n, Real eps, int count,
                       std::uint64_t seed0) {
    for (int i = 0; i < count; ++i) {
      JobTemplate t;
      t.instance = str(cls.name, i);
      t.label = t.instance;
      t.generator.m = m;
      t.generator.n = n;
      t.generator.rank = 2;
      t.generator.nnz_per_column = 6;
      t.generator.seed = seed0 + static_cast<std::uint64_t>(i);
      t.options = load_options(eps);
      cls.templates.push_back(std::move(t));
    }
  };
  std::vector<JobClass> classes(5);
  classes[0].name = "tiny";
  classes[0].weight = 0.60;
  classes[0].deadline = true;
  fill(classes[0], smoke ? 128 : 256, 8, 0.5, 3, 100);
  classes[1].name = "medium";
  classes[1].weight = 0.15;
  classes[1].deadline = true;
  fill(classes[1], smoke ? 256 : 1024, 10, 0.45, 2, 200);
  classes[2].name = "elephant";
  classes[2].weight = 0.05;
  classes[2].deadline = false;
  fill(classes[2], smoke ? 512 : 4096, 12, 0.4, 1, 300);
  // Dense-packing and covering classes: small interactive-sized jobs whose
  // sole structural purpose is exercising the non-factorized solve paths in
  // the same stream -- and feeding their shape buckets into --profile-out.
  classes[3].name = "dense";
  classes[3].weight = 0.10;
  classes[3].deadline = false;
  for (int i = 0; i < 2; ++i) {
    JobTemplate t;
    t.instance = str("dense", i);
    t.label = t.instance;
    t.kind = serve::JobKind::kPackingDense;
    // The dense oracle pays an O(m^3) eigensolve every round: keep the
    // dimension small so this class stays interactive-sized (comparable to
    // tiny/medium), not a second elephant.
    t.dense_generator.m = smoke ? 8 : 12;
    t.dense_generator.n = smoke ? 12 : 24;
    t.dense_generator.rank = 3;
    t.dense_generator.seed = 400 + static_cast<std::uint64_t>(i);
    t.options = load_options(0.6);
    classes[3].templates.push_back(std::move(t));
  }
  classes[4].name = "covering";
  classes[4].weight = 0.10;
  classes[4].deadline = false;
  for (int i = 0; i < 2; ++i) {
    JobTemplate t;
    t.instance = str("covering", i);
    t.label = t.instance;
    t.kind = serve::JobKind::kCovering;
    t.covering_generator.users = smoke ? 12 : 24;
    t.covering_generator.antennas = smoke ? 6 : 10;
    t.covering_generator.seed = 500 + static_cast<std::uint64_t>(i);
    t.options = load_options(0.5);
    classes[4].templates.push_back(std::move(t));
  }
  return classes;
}

/// Build one template's prepared instance, the single source of truth for
/// both the submit-time builder and the profile shape-bucket key.
/// `plan` routes the cache-owned transpose-plan options into factorized
/// builds (null = generator defaults; dense/covering builds ignore it).
serve::PreparedInstance build_template_instance(
    const JobTemplate& t, const sparse::TransposePlanOptions* plan) {
  switch (t.kind) {
    case serve::JobKind::kPackingDense:
      return serve::prepare_packing(apps::random_ellipses(t.dense_generator));
    case serve::JobKind::kCovering:
      return serve::prepare_covering(
          apps::beamforming_problem(t.covering_generator));
    default: {
      apps::FactorizedOptions options = t.generator;
      options.plan_options = plan;
      return serve::prepare_factorized(apps::random_factorized(options));
    }
  }
}

serve::JobSpec make_spec(const JobTemplate& t,
                         std::optional<double> deadline_ms) {
  serve::JobSpec spec;
  spec.instance = t.instance;
  spec.label = t.label;
  spec.kind = t.kind;
  spec.options = t.options;
  // Re-derive the registry-backed solver knobs at submit time: the
  // template's options were constructed before any profile load or SPSA
  // perturbation, and under untouched defaults this re-read is the same
  // bits, so the identity gates are unaffected.
  spec.options.dot_block_size = util::tunable_dot_block_size();
  spec.options.decision.dot_options.block_size = util::tunable_block_size();
  spec.deadline_ms = deadline_ms;
  spec.builder = [t](const sparse::TransposePlanOptions& plan) {
    return build_template_instance(t, &plan);
  };
  return spec;
}

/// One pre-sampled arrival of the open-loop stream.
struct Arrival {
  double at_seconds = 0;   ///< offset from stream start
  int cls = 0;             ///< index into classes
  int tmpl = 0;            ///< index into classes[cls].templates
};

struct Percentiles {
  double p50 = 0;
  double p99 = 0;
};

Percentiles percentiles(std::vector<double> v) {
  Percentiles p;
  if (v.empty()) return p;
  std::sort(v.begin(), v.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(
        std::min<double>(std::ceil(q * static_cast<double>(v.size())) - 1,
                         static_cast<double>(v.size() - 1)));
    return v[std::max<std::size_t>(i, 0)];
  };
  p.p50 = at(0.50);
  p.p99 = at(0.99);
  return p;
}

struct ClassLatency {
  std::size_t jobs = 0;
  Percentiles queue, run, total;
};

struct RunReport {
  std::vector<serve::JobResult> results;
  double makespan_seconds = 0;
  double jobs_per_second = 0;
  double deadline_hit_rate = 1;
  serve::SchedulerStats stats;
  std::vector<ClassLatency> classes;
};

/// Replay the arrival stream through one scheduler configuration with real
/// wall-clock sleeps (open-loop: late service never slows arrivals down).
RunReport replay(const std::vector<JobClass>& classes,
                 const std::vector<Arrival>& arrivals,
                 const serve::SchedulerOptions& options, int lanes) {
  serve::BatchScheduler scheduler(options);
  scheduler.open(lanes);
  util::WallTimer timer;
  const auto start = std::chrono::steady_clock::now();
  for (const Arrival& a : arrivals) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(a.at_seconds)));
    const JobClass& cls = classes[static_cast<std::size_t>(a.cls)];
    scheduler.submit(make_spec(
        cls.templates[static_cast<std::size_t>(a.tmpl)],
        cls.deadline ? std::optional<double>(cls.deadline_ms)
                     : std::nullopt));
  }
  RunReport report;
  report.results = scheduler.close();
  report.makespan_seconds = timer.seconds();
  report.jobs_per_second =
      report.makespan_seconds > 0
          ? static_cast<double>(report.results.size()) / report.makespan_seconds
          : 0;
  report.stats = scheduler.stats();

  std::size_t with_deadline = 0, met = 0;
  report.classes.resize(classes.size());
  std::vector<std::vector<double>> queue(classes.size()), run(classes.size()),
      total(classes.size());
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const serve::JobResult& r = report.results[i];
    const std::size_t c = static_cast<std::size_t>(arrivals[i].cls);
    if (r.shed) continue;  // shed jobs have no run latency
    queue[c].push_back(r.queue_seconds);
    run[c].push_back(r.run_seconds);
    total[c].push_back(r.queue_seconds + r.run_seconds);
    if (r.deadline_ms.has_value()) {
      ++with_deadline;
      met += r.deadline_met ? 1 : 0;
    }
  }
  for (std::size_t c = 0; c < classes.size(); ++c) {
    report.classes[c].jobs = total[c].size();
    report.classes[c].queue = percentiles(queue[c]);
    report.classes[c].run = percentiles(run[c]);
    report.classes[c].total = percentiles(total[c]);
  }
  report.deadline_hit_rate =
      with_deadline > 0
          ? static_cast<double>(met) / static_cast<double>(with_deadline)
          : 1;
  return report;
}

/// BENCH_serve.json splice: the "latency" and "daemon" sections coexist.
void splice_section(const std::string& path, const std::string& name,
                    const std::string& section) {
  bench::splice_json_section(path, "serve", name, section);
}

// ---------------------------------------------------------- endpoint mode --

/// Replay the arrival stream against a solverd daemon instead of the
/// in-process schedulers. "loopback" runs an in-process daemon over the
/// loopback transport (deterministic, no sockets); anything else is dialed
/// as a socket endpoint (unix:/path, tcp:host:port) -- the daemon there
/// must run at this bench's pool width, or the bitwise identity gate
/// rightly fails.
///
/// Each template's instance is persisted to a .psdp file first (io round
/// trips are bit-exact), submit lines reference the files with the exact
/// solver options of the in-process path, and every decoded result payload
/// is gated bitwise against the template's solo reference. Latency is
/// reported per class: queue/run as the daemon measured them, total as the
/// client observed it (result frame arrival minus scheduled arrival).
/// The report lands in BENCH_serve.json as a "daemon" section.
int replay_daemon(const std::string& endpoint,
                  const std::vector<JobClass>& classes,
                  const std::vector<Arrival>& arrivals,
                  const std::vector<std::vector<serve::JobResult>>& solo,
                  int lanes, int width, const std::string& out_path) {
  std::vector<std::vector<std::string>> paths(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (const JobTemplate& t : classes[c].templates) {
      std::string path = str("bench_load_", t.instance, ".psdp");
      switch (t.kind) {
        case serve::JobKind::kPackingDense:
          io::save_packing(path, apps::random_ellipses(t.dense_generator));
          break;
        case serve::JobKind::kCovering:
          io::save_covering(path,
                            apps::beamforming_problem(t.covering_generator));
          break;
        default:
          io::save_factorized(path, apps::random_factorized(t.generator));
          break;
      }
      paths[c].push_back(std::move(path));
    }
  }

  std::optional<serve::LoopbackListener> loopback;
  std::optional<serve::Solverd> daemon;
  std::thread server;
  std::unique_ptr<serve::Connection> connection;
  if (endpoint == "loopback") {
    loopback.emplace();
    serve::SolverdOptions options;
    options.lanes = lanes;
    options.max_connections = 1;  // serve() returns once our session drains
    daemon.emplace(*loopback, options);
    connection = loopback->connect();
    server = std::thread([&] { daemon->serve(); });
  } else {
    connection = serve::socket_connect(endpoint);
  }
  serve::SolverdClient client(std::move(connection));

  struct Observed {
    serve::WireResult wire;
    double at_seconds = 0;  ///< client clock when the result frame landed
    bool backpressure = false;
  };
  // Reader-thread state; the main thread touches it only after join().
  std::vector<Observed> observed;
  std::vector<std::string> wire_errors;
  bool done = false;

  util::WallTimer timer;
  const auto start = std::chrono::steady_clock::now();
  std::thread reader([&] {
    try {
      while (std::optional<serve::Frame> frame = client.read()) {
        const double at =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (frame->type == serve::FrameType::kDone) {
          done = true;
          break;
        }
        if (frame->type == serve::FrameType::kError) {
          wire_errors.push_back(frame->payload);
          continue;
        }
        if (frame->type != serve::FrameType::kResult &&
            frame->type != serve::FrameType::kBackpressure) {
          continue;
        }
        Observed o;
        o.wire = serve::decode_result_line(frame->payload);
        o.at_seconds = at;
        o.backpressure = frame->type == serve::FrameType::kBackpressure;
        observed.push_back(std::move(o));
      }
    } catch (const std::exception& e) {
      wire_errors.push_back(str("client read failed: ", e.what()));
    }
  });

  std::vector<std::string> submit_errors;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(a.at_seconds)));
    const JobClass& cls = classes[static_cast<std::size_t>(a.cls)];
    const JobTemplate& t = cls.templates[static_cast<std::size_t>(a.tmpl)];
    std::ostringstream line;
    line.precision(17);  // doubles must re-parse to the identical bits
    line << serve::job_kind_name(t.kind) << " "
         << paths[static_cast<std::size_t>(a.cls)]
                 [static_cast<std::size_t>(a.tmpl)]
         << " eps=" << t.options.eps
         << " decision-eps=" << t.options.decision_eps
         << " probe=phased sketch-rows="
         << t.options.decision.dot_options.sketch_rows_override
         << " label=" << i << " id=" << t.instance;
    if (cls.deadline) line << " deadline-ms=" << cls.deadline_ms;
    if (!client.submit(line.str())) {
      submit_errors.push_back(str("submit failed at arrival ", i,
                                  ": daemon gone"));
      break;
    }
  }
  client.goodbye();
  reader.join();
  const double makespan = timer.seconds();
  if (daemon.has_value()) server.join();
  for (std::string& e : submit_errors) wire_errors.push_back(std::move(e));
  for (const std::string& e : wire_errors) {
    std::cout << "WIRE ERROR: " << e << "\n";
  }

  // ---- identity + latency ------------------------------------------------
  Index mismatches = 0;
  std::size_t delivered = 0, shed = 0;
  std::vector<std::vector<double>> queue(classes.size()), run(classes.size()),
      total(classes.size());
  for (const Observed& o : observed) {
    PSDP_CHECK(o.wire.id >= 1 && o.wire.id <= arrivals.size(),
               str("daemon echoed unknown job id ", o.wire.id));
    const Arrival& a = arrivals[o.wire.id - 1];
    const serve::JobResult& r = o.wire.result;
    if (r.shed || o.backpressure) {
      ++shed;
      continue;
    }
    ++delivered;
    const std::size_t c = static_cast<std::size_t>(a.cls);
    const serve::JobResult& ref =
        solo[c][static_cast<std::size_t>(a.tmpl)];
    if (!r.ok || !serve::payload_bitwise_equal(r, ref)) {
      ++mismatches;
      std::cout << "IDENTITY MISMATCH: job " << o.wire.id - 1 << " ("
                << r.label << ")"
                << (!r.ok ? str(": ", r.error) : std::string()) << "\n";
    }
    queue[c].push_back(r.queue_seconds);
    run[c].push_back(r.run_seconds);
    total[c].push_back(o.at_seconds - a.at_seconds);
  }
  const std::size_t missing = arrivals.size() - observed.size();

  util::Table table(
      {"class", "p50 queue", "p99 queue", "p99 total(client)", "jobs"});
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const Percentiles q = percentiles(queue[c]);
    const Percentiles t = percentiles(total[c]);
    table.add_row({classes[c].name, util::Table::cell(q.p50),
                   util::Table::cell(q.p99), util::Table::cell(t.p99),
                   util::Table::cell(static_cast<double>(total[c].size()))});
  }
  table.print();
  std::cout << "daemon replay: " << delivered << " results, " << shed
            << " backpressure, " << missing << " missing, "
            << wire_errors.size() << " wire errors over " << makespan
            << " s\n";

  // ---- JSON --------------------------------------------------------------
  {
    std::ostringstream section;
    section.precision(17);
    section << "{\n    \"endpoint\": \"" << endpoint
            << "\", \"threads\": " << width << ", \"lanes\": " << lanes
            << ", \"jobs\": " << arrivals.size() << ",\n    \"results\": "
            << delivered << ", \"backpressure\": " << shed
            << ", \"missing\": " << missing
            << ", \"wire_errors\": " << wire_errors.size()
            << ", \"identity_mismatches\": " << mismatches
            << ", \"clean_done\": " << (done ? "true" : "false")
            << ",\n    \"makespan_seconds\": " << makespan
            << ", \"jobs_per_second\": "
            << (makespan > 0 ? static_cast<double>(delivered) / makespan : 0)
            << ",\n    \"classes\": {";
    for (std::size_t c = 0; c < classes.size(); ++c) {
      const Percentiles q = percentiles(queue[c]);
      const Percentiles r = percentiles(run[c]);
      const Percentiles t = percentiles(total[c]);
      section << (c > 0 ? ", " : "") << "\"" << classes[c].name
              << "\": {\"jobs\": " << total[c].size()
              << ", \"p50_queue\": " << q.p50 << ", \"p99_queue\": " << q.p99
              << ", \"p50_run\": " << r.p50 << ", \"p99_run\": " << r.p99
              << ", \"p50_total\": " << t.p50 << ", \"p99_total\": " << t.p99
              << "}";
    }
    section << "}\n  }";
    splice_section(out_path, "daemon", section.str());
  }
  std::cout << "spliced daemon section into " << out_path << "\n";

  // ---- verdicts ----------------------------------------------------------
  bool ok = true;
  bench::print_verdict(mismatches == 0,
                       mismatches == 0
                           ? std::string("daemon payloads bitwise identical "
                                         "to in-process solo runs")
                           : str(mismatches, " daemon job(s) diverged"));
  ok = ok && mismatches == 0;
  const bool drained = done && missing == 0;
  bench::print_verdict(
      drained, done ? str(missing, " of ", arrivals.size(),
                          " results missing at clean drain")
                    : std::string("stream ended without a done frame"));
  ok = ok && drained;
  return ok ? 0 : 1;
}

std::string class_json(const RunReport& report,
                       const std::vector<JobClass>& classes) {
  std::ostringstream out;
  out.precision(17);
  out << "{";
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const ClassLatency& l = report.classes[c];
    out << (c > 0 ? ", " : "") << "\"" << classes[c].name
        << "\": {\"jobs\": " << l.jobs << ", \"p50_queue\": " << l.queue.p50
        << ", \"p99_queue\": " << l.queue.p99
        << ", \"p50_run\": " << l.run.p50 << ", \"p99_run\": " << l.run.p99
        << ", \"p50_total\": " << l.total.p50
        << ", \"p99_total\": " << l.total.p99 << "}";
  }
  out << "}";
  return out.str();
}

std::string run_json(const RunReport& report,
                     const std::vector<JobClass>& classes) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"makespan_seconds\": " << report.makespan_seconds
      << ", \"jobs_per_second\": " << report.jobs_per_second
      << ", \"deadline_hit_rate\": " << report.deadline_hit_rate
      << ", \"preemptions\": " << report.stats.preemptions
      << ", \"promotions\": " << report.stats.promotions
      << ", \"demotions\": " << report.stats.demotions
      << ", \"shed\": " << report.stats.shed
      << ", \"peak_queue\": " << report.stats.peak_queue
      << ", \"classes\": " << class_json(report, classes) << "}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_load",
                "Poisson load latency: EDF + preemption vs static FIFO lanes");
  auto& smoke = cli.flag<bool>("smoke", false, "tiny instances for CI");
  auto& threads = cli.flag<int>("threads", 8, "pool width (0 = keep default)");
  auto& lanes_flag = cli.flag<int>("lanes", 0, "lanes (0 = pool width)");
  auto& jobs_flag = cli.flag<int>("jobs", 0, "arrivals (0 = auto by mode)");
  auto& utilization = cli.flag<Real>(
      "utilization", 0.75, "target offered load as a fraction of capacity");
  auto& seed = cli.flag<int>("seed", 42, "arrival-stream RNG seed");
  auto& out_path = cli.flag<std::string>(
      "out", "BENCH_serve.json", "JSON file to splice the latency section into");
  auto& endpoint = cli.flag<std::string>(
      "endpoint", "",
      "replay against a solverd daemon instead of the in-process schedulers: "
      "'loopback' (in-process daemon over the loopback transport) or a "
      "socket endpoint (unix:/path | tcp:host:port). A socket daemon must "
      "run at this bench's --threads width or the identity gate fails. "
      "Splices a 'daemon' section instead of 'latency'");
  auto& assert_improvement = cli.flag<Real>(
      "assert-improvement", 0,
      "fail unless baseline/aware tiny p99 >= this at >= 95% of baseline "
      "throughput (0 = report only)");
  auto& spsa_iters = cli.flag<int>(
      "spsa-iters", 0, "SPSA tuning iterations after the main runs (0 = off)");
  auto& spsa_jobs = cli.flag<int>(
      "spsa-jobs", 12, "arrivals replayed per SPSA objective evaluation");
  auto& spsa_seed =
      cli.flag<int>("spsa-seed", 7, "SPSA Rademacher-direction seed");
  auto& profile_in = cli.flag<std::string>(
      "profile-in", "",
      "tuned-profile JSON applied at startup (shape-bucket matched)");
  auto& profile_out = cli.flag<std::string>(
      "profile-out", "",
      "persist the SPSA-tuned per-shape-bucket profile to this JSON file");
  util::add_tunable_flags(cli);
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (cli.help_requested()) return 0;

  if (threads.value > 0) par::set_num_threads(threads.value);
  const int width = par::num_threads();
  const int lanes = lanes_flag.value > 0 ? lanes_flag.value : width;
  const int n_jobs = jobs_flag.value > 0 ? jobs_flag.value
                                         : (smoke.value ? 32 : 100);

  bench::print_header(
      "LOAD: open-loop Poisson arrivals over a heavy-tailed job mix",
      str("Static FIFO lanes (the PR-5 regime) vs EDF + oracle-round "
          "preemption + dynamic widening, ", lanes, " lanes over ", width,
          " threads, target utilization ", utilization.value, "."));

  std::vector<JobClass> classes = make_classes(smoke.value);

  // The profile key of one class: the shape bucket of its (deterministic)
  // generated instance, exactly as the ArtifactCache computes it at resolve
  // time -- so a later solver_cli/manifest run on the same shapes matches
  // the persisted entry, whatever the job kind.
  const auto class_bucket = [](const JobClass& cls) {
    return build_template_instance(cls.templates.front(), nullptr)
        .shape_bucket();
  };

  // ---- tuned profile, applied before anything solves ---------------------
  // Startup-order contract (mirrors solver_cli): the profile lands before
  // the solo calibration, so solo references, both replays and the identity
  // gates all run under one consistent knob set.
  if (!profile_in.value.empty()) {
    const util::TunableProfileStore profiles =
        util::TunableProfileStore::load(profile_in.value);
    bool applied = false;
    for (const JobClass& cls : classes) {
      const util::ShapeBucket bucket = class_bucket(cls);
      if (profiles.apply(bucket, util::tunables())) {
        std::cout << "applied tuned profile for " << cls.name
                  << " shape bucket (2^" << bucket.log2_nnz << " nnz, 2^"
                  << bucket.log2_rows << " rows, 2^" << bucket.log2_cols
                  << " cols)\n";
        applied = true;
      }
    }
    if (!applied) {
      std::cout << "no tuned profile matched this workload's shape buckets\n";
    }
  }

  // ---- solo references: per-template ground truth + calibration ----------
  // Each template runs alone as a narrow lane job (regions inline) on a
  // fresh scheduler; the payload is the identity reference for every
  // instantiation of that template (narrow, wide and promoted runs are all
  // bitwise identical), and the warm run time is the *inline* service time
  // a lane actually pays -- the honest unit for rate and deadline
  // calibration.
  std::vector<std::vector<serve::JobResult>> solo(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    double sum = 0;
    for (const JobTemplate& t : classes[c].templates) {
      serve::SchedulerOptions options;
      options.widening = false;  // measure the un-promoted inline regime
      serve::BatchScheduler scheduler(options);
      serve::SolveBatch cold;
      cold.add(make_spec(t, std::nullopt));
      scheduler.run(cold);  // pays the one-time instance build
      serve::SolveBatch warm;
      warm.add(make_spec(t, std::nullopt));
      std::vector<serve::JobResult> result = scheduler.run(warm);
      PSDP_CHECK(result.front().ok, str("solo run failed for ", t.label, ": ",
                                        result.front().error));
      sum += result.front().run_seconds;
      solo[c].push_back(std::move(result.front()));
    }
    classes[c].solo_seconds =
        sum / static_cast<double>(classes[c].templates.size());
    // Deadline: a small multiple of the class's own service time plus a
    // queueing allowance; hittable under EDF+preemption, routinely blown
    // when the job sits behind an elephant on a FIFO lane.
    classes[c].deadline_ms = 1e3 * (4 * classes[c].solo_seconds) + 25;
    std::cout << "solo " << classes[c].name << ": "
              << classes[c].solo_seconds << " s/job, deadline "
              << (classes[c].deadline ? str(classes[c].deadline_ms, " ms")
                                      : std::string("none"))
              << "\n";
  }

  // ---- arrival stream (shared verbatim by both runs) ---------------------
  // Capacity is bounded by physical cores, not by lane count: lanes beyond
  // the core count time-slice rather than add service rate.
  const int effective_lanes = std::min(
      lanes, std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
  double mean_work = 0;
  for (const JobClass& c : classes) mean_work += c.weight * c.solo_seconds;
  const double rate =
      utilization.value * static_cast<double>(effective_lanes) / mean_work;
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed.value));
  std::exponential_distribution<double> interarrival(rate);
  // Exact-proportion deck rather than iid draws: a short smoke stream must
  // still contain its elephants, or there is no tail to measure.
  std::vector<int> deck;
  for (std::size_t r = classes.size(); r-- > 0;) {  // rarest classes first
    const int count = std::max<int>(
        1, static_cast<int>(std::lround(classes[r].weight * n_jobs)));
    for (int i = 0; i < count && static_cast<int>(deck.size()) < n_jobs; ++i) {
      deck.push_back(static_cast<int>(r));
    }
  }
  while (static_cast<int>(deck.size()) < n_jobs) deck.push_back(0);
  std::shuffle(deck.begin(), deck.end(), rng);
  std::vector<Arrival> arrivals(static_cast<std::size_t>(n_jobs));
  std::vector<int> round_robin(classes.size(), 0);
  double clock = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    Arrival& a = arrivals[i];
    clock += interarrival(rng);
    a.at_seconds = clock;
    a.cls = deck[i];
    auto& next = round_robin[static_cast<std::size_t>(a.cls)];
    a.tmpl = next;
    next = (next + 1) %
           static_cast<int>(classes[static_cast<std::size_t>(a.cls)]
                                .templates.size());
  }
  std::cout << n_jobs << " arrivals at " << rate << " jobs/s over ~"
            << clock << " s\n\n";

  // ---- daemon endpoint mode ----------------------------------------------
  // Same solo references, same arrival stream -- but the jobs travel as
  // framed manifest lines through a solverd daemon, and the payloads come
  // back over the wire. Replaces the baseline/aware comparison entirely.
  if (!endpoint.value.empty()) {
    return replay_daemon(endpoint.value, classes, arrivals, solo, lanes,
                         width, out_path.value);
  }

  // ---- baseline: the PR-5 static regime ----------------------------------
  serve::SchedulerOptions baseline_options;
  baseline_options.queue = serve::QueuePolicy::kFifo;
  baseline_options.preemption = false;
  baseline_options.widening = false;
  std::cout << "baseline (FIFO, static lanes)...\n";
  const RunReport baseline = replay(classes, arrivals, baseline_options, lanes);

  // ---- aware: EDF + preemption + widening --------------------------------
  serve::SchedulerOptions aware_options;
  aware_options.queue = serve::QueuePolicy::kEdf;
  aware_options.preemption = true;
  aware_options.widening = true;
  std::cout << "aware (EDF, preemption, widening)...\n";
  const RunReport aware = replay(classes, arrivals, aware_options, lanes);

  // ---- identity: every completed job bitwise equal to its solo run -------
  Index mismatches = 0;
  for (const RunReport* report : {&baseline, &aware}) {
    for (std::size_t i = 0; i < report->results.size(); ++i) {
      const serve::JobResult& r = report->results[i];
      if (r.shed) continue;
      const serve::JobResult& ref =
          solo[static_cast<std::size_t>(arrivals[i].cls)]
              [static_cast<std::size_t>(arrivals[i].tmpl)];
      if (!r.ok || !serve::payload_bitwise_equal(r, ref)) {
        ++mismatches;
        std::cout << "IDENTITY MISMATCH: job " << i << " (" << r.label
                  << (r.preemptions > 0 ? ", preempted" : "")
                  << (r.promoted ? ", promoted" : "") << ")"
                  << (!r.ok ? str(": ", r.error) : std::string()) << "\n";
      }
    }
  }

  // ---- report -------------------------------------------------------------
  util::Table table({"run", "class", "p50 queue", "p99 queue", "p99 total",
                     "jobs"});
  const auto add_rows = [&](const char* name, const RunReport& report) {
    for (std::size_t c = 0; c < classes.size(); ++c) {
      const ClassLatency& l = report.classes[c];
      table.add_row({name, classes[c].name, util::Table::cell(l.queue.p50),
                     util::Table::cell(l.queue.p99),
                     util::Table::cell(l.total.p99),
                     util::Table::cell(static_cast<double>(l.jobs))});
    }
  };
  add_rows("baseline", baseline);
  add_rows("aware", aware);
  table.print();
  const auto summarize = [&](const char* name, const RunReport& report) {
    std::cout << name << ": " << report.jobs_per_second << " jobs/s, "
              << 100 * report.deadline_hit_rate << "% deadlines met, "
              << report.stats.preemptions << " preemptions, "
              << report.stats.promotions << " promotions, "
              << report.stats.demotions << " demotions\n";
  };
  summarize("baseline", baseline);
  summarize("aware", aware);

  const double tiny_p99_baseline = baseline.classes[0].total.p99;
  const double tiny_p99_aware = aware.classes[0].total.p99;
  const double improvement =
      tiny_p99_aware > 0 ? tiny_p99_baseline / tiny_p99_aware : 0;
  std::cout << "tiny p99 total: " << tiny_p99_baseline << " s -> "
            << tiny_p99_aware << " s (" << improvement << "x)\n";

  // ---- SPSA autotuning over replayed traffic ------------------------------
  // Runs after the identity gates (which lock the default-knob bits), so
  // perturbed evaluations are free to change solver bits. The objective is
  // the mean total latency of a short prefix of the same arrival stream
  // replayed through the aware configuration, with the scheduler options
  // re-derived from the registry inside every evaluation so the perturbed
  // knobs actually reach the scheduler and the solves.
  std::optional<util::SpsaResult> spsa;
  int spsa_eval_jobs = 0;
  bool profile_round_trip_ok = true;
  if (spsa_iters.value > 0) {
    spsa_eval_jobs = std::max(1, std::min(spsa_jobs.value, n_jobs));
    const std::vector<Arrival> eval_arrivals(
        arrivals.begin(), arrivals.begin() + spsa_eval_jobs);
    const auto objective = [&]() {
      serve::SchedulerOptions options;  // registry-backed wide_work / caches
      options.queue = serve::QueuePolicy::kEdf;
      options.preemption = true;
      options.widening = true;
      const int tuned_lanes = static_cast<int>(util::tunable_lanes());
      const RunReport r = replay(classes, eval_arrivals, options,
                                 tuned_lanes > 0 ? tuned_lanes : lanes);
      double sum = 0;
      std::size_t done = 0;
      for (const serve::JobResult& res : r.results) {
        if (res.shed) continue;
        if (!res.ok) return 1e9;  // a failing candidate is maximally bad
        sum += res.queue_seconds + res.run_seconds;
        ++done;
      }
      return done > 0 ? sum / static_cast<double>(done) : 1e9;
    };
    util::SpsaOptions options;
    // grain/threads stay out deliberately: tuning them re-chunks parallel
    // reductions and would break the bitwise-reproducibility contract for
    // anyone who loads the resulting profile.
    options.knobs = {
        util::TunableId::k_dot_block_size, util::TunableId::k_block_size,
        util::TunableId::k_lanes, util::TunableId::k_wide_work};
    options.iterations = spsa_iters.value;
    options.seed = static_cast<std::uint64_t>(spsa_seed.value);
    std::cout << "\nspsa: tuning {dot_block_size, block_size, lanes, "
                 "wide_work} over "
              << spsa_eval_jobs << " replayed arrivals, " << spsa_iters.value
              << " iterations...\n";
    spsa = util::spsa_minimize(util::tunables(), options, objective);
    std::cout << "spsa: mean total latency " << spsa->initial_objective
              << " s -> " << spsa->best_objective << " s over "
              << spsa->evaluations << " evaluations\n";
    for (const auto& [name, value] : spsa->tuned) {
      std::cout << "spsa: tuned " << name << " = " << value << "\n";
    }

    if (!profile_out.value.empty()) {
      util::TunableProfileStore store;
      for (const JobClass& cls : classes) {
        // One entry per workload shape: the tuned point was selected on the
        // full mix, so every class bucket records it.
        store.put(class_bucket(cls), spsa->tuned);
      }
      store.save(profile_out.value);
      const util::TunableProfileStore reloaded =
          util::TunableProfileStore::load(profile_out.value);
      profile_round_trip_ok = reloaded.to_json() == store.to_json();
      if (profile_round_trip_ok) {
        std::cout << "[PROFILE OK] " << store.size()
                  << " shape-bucket profile(s) round-trip through "
                  << profile_out.value << "\n";
      } else {
        std::cout << "[PROFILE FAIL] reloaded profile JSON differs from the "
                     "persisted one\n";
      }
    }
  }

  // ---- JSON ---------------------------------------------------------------
  {
    std::ostringstream section;
    section.precision(17);
    section << "{\n    \"smoke\": " << (smoke.value ? "true" : "false")
            << ", \"threads\": " << width << ", \"lanes\": " << lanes
            << ", \"jobs\": " << n_jobs << ", \"seed\": " << seed.value
            << ",\n    \"utilization\": " << utilization.value
            << ", \"arrival_rate_per_s\": " << rate << ",\n    \"solo\": {";
    for (std::size_t c = 0; c < classes.size(); ++c) {
      section << (c > 0 ? ", " : "") << "\"" << classes[c].name
              << "\": " << classes[c].solo_seconds;
    }
    section << "},\n    \"baseline\": " << run_json(baseline, classes)
            << ",\n    \"aware\": " << run_json(aware, classes)
            << ",\n    \"identity_mismatches\": " << mismatches
            << ",\n    \"tiny_p99_improvement\": " << improvement;
    if (spsa) {
      const double spsa_improvement =
          spsa->best_objective > 0
              ? spsa->initial_objective / spsa->best_objective
              : 0;
      section << ",\n    \"spsa\": {\"iterations\": " << spsa_iters.value
              << ", \"evaluations\": " << spsa->evaluations
              << ", \"seed\": " << spsa_seed.value
              << ", \"eval_jobs\": " << spsa_eval_jobs
              << ",\n      \"initial_mean_total_s\": "
              << spsa->initial_objective
              << ", \"tuned_mean_total_s\": " << spsa->best_objective
              << ", \"mean_total_improvement\": " << spsa_improvement
              << ",\n      \"tuned\": {";
      for (std::size_t i = 0; i < spsa->tuned.size(); ++i) {
        section << (i > 0 ? ", " : "") << "\"" << spsa->tuned[i].first
                << "\": " << spsa->tuned[i].second;
      }
      section << "}}";
    }
    section << "\n  }";
    splice_section(out_path.value, "latency", section.str());
  }
  std::cout << "spliced latency section into " << out_path.value << "\n";

  // ---- verdicts -----------------------------------------------------------
  bool ok = true;
  bench::print_verdict(mismatches == 0,
                       mismatches == 0
                           ? std::string("preempted/parked/promoted results "
                                         "bitwise identical to solo runs")
                           : str(mismatches, " job(s) diverged from solo"));
  ok = ok && mismatches == 0;
  if (smoke.value) {
    // The static worst case for an interactive job is waiting out a full
    // shard of elephants: solo x lanes. The aware scheduler must beat it.
    const double bound = classes[0].solo_seconds * lanes;
    const bool latency_ok = tiny_p99_aware < bound;
    bench::print_verdict(latency_ok,
                         str("aware tiny p99 ", tiny_p99_aware,
                             " s vs static-shard bound ", bound, " s"));
    ok = ok && latency_ok;
  }
  if (spsa) {
    // Best-seen tracking guarantees <=; a strict improvement is the normal
    // outcome (some perturbed evaluation beats the baseline evaluation).
    const bool not_worse = spsa->best_objective <= spsa->initial_objective;
    bench::print_verdict(
        not_worse, str("spsa tuned mean total ", spsa->best_objective,
                       " s vs initial ", spsa->initial_objective, " s"));
    ok = ok && not_worse;
    if (!profile_out.value.empty()) {
      bench::print_verdict(profile_round_trip_ok,
                           "tuned profile JSON round-trips");
      ok = ok && profile_round_trip_ok;
    }
  }
  if (assert_improvement.value > 0) {
    const bool faster = improvement >= assert_improvement.value;
    const bool throughput_held =
        aware.jobs_per_second >= 0.95 * baseline.jobs_per_second;
    bench::print_verdict(faster, str("tiny p99 improved ", improvement,
                                     "x (target >= ",
                                     assert_improvement.value, "x)"));
    bench::print_verdict(throughput_held,
                         str("aware throughput ", aware.jobs_per_second,
                             " jobs/s vs baseline ",
                             baseline.jobs_per_second, " jobs/s"));
    ok = ok && faster && throughput_held;
  }
  return ok ? 0 : 1;
}
