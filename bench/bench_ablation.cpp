// E11 -- ablations of the implementation's design choices (DESIGN.md):
//   (a) early primal exit: paper-faithful Lemma 3.6 runs the full
//       R = O(eps^-3 log^2 n) schedule; the self-verifying running average
//       certifies far earlier.
//   (b) measured-tight dual rescaling: the paper divides x by (1+10 eps)K;
//       dividing by the measured lambda_max(Psi) recovers most of the
//       (1 + O(eps)) value the worst-case rescaling gives away.
//   (c) lazy exponential refresh (exp_stride, the [WMMR15]-adjacent
//       selective-update direction): how much wall-clock one saves by
//       reusing W across iterations, and what it costs in iterations and
//       certificate quality (everything re-verified).
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/certificates.hpp"
#include "core/decision.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_ablation", "E11: design-choice ablations");
  auto& eps = cli.flag<Real>("eps", 0.4, "algorithm eps (primal ablation)");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E11: implementation ablations",
      "What each engineering choice on top of the paper's pseudocode buys, "
      "with certificates re-verified in every configuration.");

  // ---- (a) early primal exit ------------------------------------------
  std::cout << "(a) early primal exit (primal-side instance, eps = "
            << eps.value << ")\n";
  {
    // Clearly primal side: OPT = 1/8 << 1.
    std::vector<linalg::Matrix> constraints;
    for (int i = 0; i < 4; ++i) {
      linalg::Matrix a = linalg::Matrix::identity(3);
      a.scale(8.0);
      constraints.push_back(std::move(a));
    }
    const core::PackingInstance instance{std::move(constraints)};
    util::Table table({"early exit", "iterations", "R budget", "seconds",
                       "min A.Y", "primal valid"});
    for (bool early : {false, true}) {
      core::DecisionOptions options;
      options.eps = eps.value;
      options.early_primal_exit = early;
      util::WallTimer timer;
      const core::DecisionResult r = core::decision_dense(instance, options);
      const Real seconds = timer.seconds();
      const core::PrimalCheck check =
          core::check_primal(instance, r.primal_y, 1e-5);
      table.add_row({early ? "on" : "off", util::Table::cell(r.iterations),
                     util::Table::cell(r.constants.r_limit),
                     util::Table::cell(seconds, 3),
                     util::Table::cell(check.min_dot, 5),
                     check.feasible ? "yes" : "NO"});
    }
    table.print();
  }

  // ---- (b) measured-tight dual rescaling -------------------------------
  std::cout << "\n(b) dual rescaling: worst-case (1+10eps)K vs measured "
               "lambda_max\n";
  {
    util::Table table({"eps", "paper ||x_hat||_1", "tight ||x||_1/lambda_max",
                       "gain", "tight feasible"});
    apps::EllipseOptions gen;
    gen.n = 24;
    gen.m = 6;
    const core::PackingInstance instance =
        apps::random_ellipses(gen).scaled(0.05);
    for (Real e : {0.1, 0.2, 0.4}) {
      core::DecisionOptions options;
      options.eps = e;
      const core::DecisionResult r = core::decision_dense(instance, options);
      const Real paper_value = linalg::sum(r.dual_x);
      const Real tight_value = linalg::sum(r.dual_x_tight);
      const core::DualCheck check =
          core::check_dual(instance, r.dual_x_tight, 1e-9);
      table.add_row({util::Table::cell(e, 2),
                     util::Table::cell(paper_value, 4),
                     util::Table::cell(tight_value, 4),
                     util::Table::cell(tight_value / paper_value, 3),
                     check.feasible ? "yes" : "NO"});
    }
    table.print();
  }

  // ---- (c) lazy exponential refresh ------------------------------------
  std::cout << "\n(c) lazy exponential refresh (exp_stride), dual-side run\n";
  {
    apps::EllipseOptions gen;
    gen.n = 96;
    gen.m = 24;
    const core::PackingInstance instance =
        apps::random_ellipses(gen).scaled(0.05);
    util::Table table({"stride", "iterations", "exponentials", "seconds",
                       "tight dual value", "feasible"});
    for (Index stride : {Index{1}, Index{2}, Index{4}, Index{8}, Index{16}}) {
      core::DecisionOptions options;
      options.eps = 0.2;
      options.exp_stride = stride;
      util::WallTimer timer;
      const core::DecisionResult r = core::decision_dense(instance, options);
      const Real seconds = timer.seconds();
      const core::DualCheck check =
          core::check_dual(instance, r.dual_x_tight, 1e-9);
      const Index exponentials = (r.iterations + stride - 1) / stride;
      table.add_row({util::Table::cell(stride),
                     util::Table::cell(r.iterations),
                     util::Table::cell(exponentials),
                     util::Table::cell(seconds, 3),
                     util::Table::cell(check.value, 4),
                     check.feasible ? "yes" : "NO"});
    }
    table.print();
  }

  bench::print_verdict(true,
                       "early exit removes the R-budget tail; the measured "
                       "rescaling recovers the (1+10eps) value the paper's "
                       "worst case gives away; strided exponentials trade a "
                       "few extra iterations for far fewer factorizations.");
  return 0;
}
