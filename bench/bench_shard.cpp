// Out-of-core ingest sweep: cold-load memory high-water and oracle round
// time vs the constraint shard count K.
//
// The bench generates one factorized packing instance (>= 10^7 nnz in full
// mode, a scaled-down copy under --smoke), then for each K in the sweep:
//
//   1. writes the instance as a chunked container cut into K shard blocks
//      (io::save_factorized_chunked -- the writer itself streams one shard
//      at a time);
//   2. resets the process peak-RSS counter (/proc/self/clear_refs) and
//      cold-loads the file through ChunkedInstanceReader, recording the
//      load time, the peak-RSS delta, and the final-RSS delta of the built
//      instance -- peak minus final is the load *transient*, the memory the
//      loader needed beyond the instance it produced;
//   3. builds a SketchedTaylorOracle on the loaded instance and times the
//      paper's per-round primitive (oracle.compute + apply_update),
//      reporting the mean post-warmup round.
//
// The out-of-core claim under test: the transient must be bounded by one
// shard's payload (plus constant slack), never by the whole file -- i.e.
// the chunked reader adopts CSR blocks shard-by-shard and materializes no
// full-file triplet buffer. With the mmap backend the reader additionally
// drops each shard's pages after parsing (MADV_DONTNEED), so the mapping
// itself also stays one-shard resident.
//
// Results land in BENCH_kernels.json as a "sharding" section (spliced:
// the rest of the file is preserved). Gates (exit 1 on failure):
//   * the transient of every K >= 2 load stays within 2x its largest shard
//     payload + 48 MiB allocator/page slack (skipped with a note when the
//     kernel lacks a resettable peak-RSS counter);
//   * every loaded instance reports the requested shard count and the
//     generator's nnz.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "io/chunked.hpp"
#include "par/parallel.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace psdp;

// ------------------------------------------------------------- /proc memory --

/// One "VmHWM:   123 kB"-style field of /proc/self/status, in kB (-1 when
/// unavailable -- non-Linux or a masked /proc).
long long status_kb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      std::istringstream fields(line.substr(std::strlen(key) + 1));
      long long kb = -1;
      fields >> kb;
      return kb;
    }
  }
  return -1;
}

/// Reset the peak-RSS watermark to the current RSS (Linux >= 4.0: writing
/// "5" to /proc/self/clear_refs). Returns false where unsupported; the
/// bench then reports load transients as unmeasured instead of gating.
bool reset_peak_rss() {
  std::ofstream out("/proc/self/clear_refs");
  if (!out.is_open()) return false;
  out << "5";
  out.flush();
  return out.good();
}

// ------------------------------------------------------------------- sweep --

struct SweepPoint {
  Index shards = 0;
  std::uint64_t max_shard_bytes = 0;  ///< largest payload block in the file
  double save_seconds = 0;
  double load_seconds = 0;
  long long peak_delta_kb = -1;   ///< load peak RSS over the pre-load RSS
  long long final_delta_kb = -1;  ///< built instance's resident footprint
  long long transient_kb = -1;    ///< peak - final: what the loader needed
  bool mapped = false;            ///< mmap backend active for this load
  double round_seconds = 0;       ///< mean post-warmup oracle round
};

std::vector<Index> parse_counts(const std::string& text) {
  std::vector<Index> counts;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    counts.push_back(util::detail::parse_value<Index>(token));
    PSDP_CHECK(counts.back() >= 1,
               str("shard counts must be >= 1, got ", token));
  }
  PSDP_CHECK(!counts.empty(), "empty --shard-counts");
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_shard",
                "Out-of-core chunked ingest: memory high-water and round "
                "time vs shard count");
  auto& smoke = cli.flag<bool>("smoke", false, "small instance for CI");
  auto& counts_flag = cli.flag<std::string>(
      "shard-counts", "1,2,4,8", "comma-separated K values to sweep");
  auto& n_flag = cli.flag<int>("n", 0, "constraints (0 = auto by mode)");
  auto& m_flag = cli.flag<int>("m", 0, "dimension (0 = auto by mode)");
  auto& nnz_flag = cli.flag<double>(
      "nnz", 0, "target total nonzeros (0 = 1.2e7, or 3e5 under --smoke)");
  auto& rounds = cli.flag<int>("rounds", 3, "timed oracle rounds per K");
  auto& eps = cli.flag<Real>("eps", 0.5, "oracle accuracy for round timing");
  auto& threads = cli.flag<int>("threads", 0, "pool width (0 = default)");
  auto& file_flag = cli.flag<std::string>(
      "file", "bench_shard_instance.chk", "chunked file path (rewritten per K)");
  auto& no_mmap = cli.flag<bool>(
      "no-mmap", false, "force the buffered-read backend for every load");
  auto& out_path = cli.flag<std::string>(
      "out", "BENCH_kernels.json",
      "JSON file to splice the sharding section into");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (cli.help_requested()) return 0;
  if (threads.value > 0) par::set_num_threads(threads.value);

  const std::vector<Index> counts = parse_counts(counts_flag.value);
  const double nnz_target =
      nnz_flag.value > 0 ? nnz_flag.value : (smoke.value ? 3e5 : 1.2e7);

  // Shape: modest constraint count, tall sparse factors. nnz_per_column is
  // solved from the target so --nnz scales one knob.
  apps::FactorizedOptions generator;
  generator.n = n_flag.value > 0 ? n_flag.value : (smoke.value ? 48 : 256);
  generator.m = m_flag.value > 0 ? m_flag.value : (smoke.value ? 2048 : 16384);
  generator.rank = smoke.value ? 8 : 16;
  generator.nnz_per_column = std::max<Index>(
      1, std::min<Index>(generator.m,
                         static_cast<Index>(nnz_target /
                                            static_cast<double>(
                                                generator.n * generator.rank))));
  generator.seed = 20120625;  // SPAA'12

  bench::print_header(
      "SHARD: chunked out-of-core ingest vs constraint shard count",
      str("Cold-load peak RSS and oracle round time for K in {",
          counts_flag.value, "}; the transient above the built instance "
          "must stay one-shard-bounded, not file-bounded."));

  std::cout << "generating instance: n = " << generator.n
            << ", m = " << generator.m << ", rank = " << generator.rank
            << ", nnz/col = " << generator.nnz_per_column << "...\n";
  const core::FactorizedPackingInstance source =
      apps::random_factorized(generator);
  const Index total_nnz = source.total_nnz();
  std::cout << "generated " << total_nnz << " nnz ("
            << (smoke.value ? "smoke scale" : "full scale") << ")\n\n";

  const bool peak_resettable = reset_peak_rss() && status_kb("VmHWM") >= 0;
  if (!peak_resettable) {
    std::cout << "note: peak-RSS counter not resettable on this kernel; "
                 "memory columns reported as -1 and not gated\n";
  }

  std::vector<SweepPoint> points;
  std::uint64_t file_bytes = 0;
  for (const Index k : counts) {
    SweepPoint point;
    point.shards = k;

    util::WallTimer save_timer;
    io::save_factorized_chunked(file_flag.value, source, k);
    point.save_seconds = save_timer.seconds();

    io::ChunkedLoadOptions load_options;
    load_options.use_mmap = !no_mmap.value;

    const long long rss_before = status_kb("VmRSS");
    const bool reset_ok = peak_resettable && reset_peak_rss();
    util::WallTimer load_timer;
    // Scoped so the loaded instance's footprint can be separated from the
    // load transient before the oracle builds on top of it.
    {
      io::ChunkedInstanceReader reader(file_flag.value, load_options);
      file_bytes = reader.shard_info(0).byte_offset;  // header + table
      for (Index s = 0; s < reader.shard_count(); ++s) {
        point.max_shard_bytes =
            std::max(point.max_shard_bytes, reader.shard_info(s).byte_size);
        file_bytes += reader.shard_info(s).byte_size;
      }
      point.mapped = reader.mapped();
      const core::FactorizedPackingInstance instance = reader.load_all();
      point.load_seconds = load_timer.seconds();
      if (reset_ok) {
        point.peak_delta_kb = status_kb("VmHWM") - rss_before;
        point.final_delta_kb = status_kb("VmRSS") - rss_before;
        point.transient_kb =
            std::max(0ll, point.peak_delta_kb - point.final_delta_kb);
      }
      PSDP_CHECK(instance.shard_count() == k,
                 str("loaded instance reports ", instance.shard_count(),
                     " shards, expected ", k));
      PSDP_CHECK(instance.total_nnz() == total_nnz,
                 str("loaded instance reports ", instance.total_nnz(),
                     " nnz, expected ", total_nnz));

      // Round timing: the per-iteration primitive (oracle + update) on the
      // loaded, K-sharded instance.
      core::SketchedOracleOptions oracle_options;
      oracle_options.eps = eps.value;
      core::SolverWorkspace workspace;
      oracle_options.workspace = &workspace;
      core::SketchedTaylorOracle oracle(instance, oracle_options);
      const core::AlgorithmConstants c =
          core::algorithm_constants(oracle.size(), eps.value);
      core::SolverState state = core::initial_state(oracle, "bench_shard");
      core::PenaltyBatch batch;
      oracle.compute(state.x, 1, batch);  // warmup round
      core::apply_update(state, batch, eps.value, c.alpha);
      util::WallTimer round_timer;
      for (int t = 0; t < rounds.value; ++t) {
        oracle.compute(state.x, static_cast<std::uint64_t>(t) + 2, batch);
        core::apply_update(state, batch, eps.value, c.alpha);
      }
      point.round_seconds =
          round_timer.seconds() / std::max(1, rounds.value);
    }
    points.push_back(point);
    std::cout << "K = " << k << ": load " << point.load_seconds
              << " s, transient "
              << (point.transient_kb >= 0 ? str(point.transient_kb, " kB")
                                          : std::string("n/a"))
              << ", round " << point.round_seconds << " s\n";
  }
  std::remove(file_flag.value.c_str());

  // ---- report -------------------------------------------------------------
  util::Table table({"K", "max shard MB", "load s", "peak dRSS MB",
                     "final dRSS MB", "transient MB", "round s"});
  const auto mb = [](long long kb) {
    return util::Table::cell(kb >= 0 ? static_cast<double>(kb) / 1024 : -1);
  };
  for (const SweepPoint& p : points) {
    table.add_row({str(p.shards),
                   util::Table::cell(static_cast<double>(p.max_shard_bytes) /
                                     (1024 * 1024)),
                   util::Table::cell(p.load_seconds), mb(p.peak_delta_kb),
                   mb(p.final_delta_kb), mb(p.transient_kb),
                   util::Table::cell(p.round_seconds)});
  }
  table.print();
  std::cout << "file payload: "
            << static_cast<double>(file_bytes) / (1024 * 1024) << " MB, "
            << total_nnz << " nnz\n";

  // ---- JSON ---------------------------------------------------------------
  {
    std::ostringstream section;
    section.precision(17);
    section << "{\n    \"smoke\": " << (smoke.value ? "true" : "false")
            << ", \"threads\": " << par::num_threads()
            << ", \"n\": " << generator.n << ", \"m\": " << generator.m
            << ", \"total_nnz\": " << total_nnz
            << ", \"file_bytes\": " << file_bytes
            << ", \"eps\": " << eps.value
            << ", \"peak_rss_measured\": "
            << (peak_resettable ? "true" : "false")
            << ",\n    \"sweep\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      section << (i > 0 ? ", " : "") << "\n      {\"shards\": " << p.shards
              << ", \"max_shard_bytes\": " << p.max_shard_bytes
              << ", \"save_seconds\": " << p.save_seconds
              << ", \"load_seconds\": " << p.load_seconds
              << ", \"mapped\": " << (p.mapped ? "true" : "false")
              << ", \"peak_rss_delta_kb\": " << p.peak_delta_kb
              << ", \"final_rss_delta_kb\": " << p.final_delta_kb
              << ", \"transient_kb\": " << p.transient_kb
              << ", \"round_seconds\": " << p.round_seconds << "}";
    }
    section << "\n    ]\n  }";
    bench::splice_json_section(out_path.value, "kernels", "sharding",
                               section.str());
  }
  std::cout << "spliced sharding section into " << out_path.value << "\n";

  // ---- gates --------------------------------------------------------------
  bool ok = true;
  if (peak_resettable) {
    // One-shard-bounded ingest: the transient beyond the built instance is
    // at most ~2 shard payloads (mapped bytes of the shard in flight plus
    // the parse scratch of the buffered path) plus constant allocator and
    // page-accounting slack -- never proportional to the whole file.
    constexpr long long kSlackKb = 48 * 1024;
    for (const SweepPoint& p : points) {
      if (p.shards < 2) continue;  // K=1's shard IS the file
      const long long bound_kb =
          2 * static_cast<long long>(p.max_shard_bytes / 1024) + kSlackKb;
      const bool bounded = p.transient_kb <= bound_kb;
      bench::print_verdict(
          bounded, str("K = ", p.shards, " load transient ", p.transient_kb,
                       " kB vs one-shard bound ", bound_kb, " kB"));
      ok = ok && bounded;
    }
  } else {
    bench::print_verdict(true,
                         "peak-RSS not measurable here; memory gate skipped");
  }
  return ok ? 0 : 1;
}
