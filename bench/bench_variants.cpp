// E12 -- solver-variant comparison: the phase-free Algorithm 3.1 (the
// paper's arXiv revision) vs the conference-style phased schedule
// (core/phased) vs the [WMMR15]-direction bucketed acceleration
// (core/bucketed) vs fixed-stride lazy refresh (exp_stride).
//
// What the shapes should show:
//   * phased: the same virtual-iteration count up to small constants, but
//     #exponentials ~= #phases, far below the iteration count -- the
//     closed-form batching is where the conference version's practicality
//     came from;
//   * bucketed: fewer iterations on instances with heterogeneous slack
//     (diagonal-LP-style), no worse on isotropic random ellipses; its
//     safety rescalings keep certificates exact;
//   * exp_stride: the non-adaptive middle ground.
// All outcomes and certificate values are printed so regressions in any
// variant surface here.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/bucketed.hpp"
#include "core/certificates.hpp"
#include "core/decision.hpp"
#include "core/phased.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace psdp;

struct VariantRow {
  std::string name;
  core::DecisionOutcome outcome;
  Index iterations = 0;
  Index exponentials = 0;
  Real dual_value = 0;  ///< 0 on primal outcomes
  Real seconds = 0;
};

/// Dual value re-verified by the exact checker (0 when infeasible or
/// primal).
Real checked_dual_value(const core::PackingInstance& instance,
                        const linalg::Vector& x) {
  const core::DualCheck check = core::check_dual(instance, x);
  return check.feasible ? check.value : 0;
}

std::vector<VariantRow> run_all(const core::PackingInstance& instance,
                                Real eps) {
  std::vector<VariantRow> rows;
  {
    core::DecisionOptions options;
    options.eps = eps;
    util::WallTimer timer;
    const core::DecisionResult r = core::decision_dense(instance, options);
    rows.push_back({"plain (Alg 3.1)", r.outcome, r.iterations, r.iterations,
                    r.outcome == core::DecisionOutcome::kDual
                        ? checked_dual_value(instance, r.dual_x_tight)
                        : 0,
                    timer.seconds()});
  }
  {
    core::DecisionOptions options;
    options.eps = eps;
    options.exp_stride = 8;
    util::WallTimer timer;
    const core::DecisionResult r = core::decision_dense(instance, options);
    rows.push_back({"stride-8 refresh", r.outcome, r.iterations,
                    (r.iterations + 7) / 8,
                    r.outcome == core::DecisionOutcome::kDual
                        ? checked_dual_value(instance, r.dual_x_tight)
                        : 0,
                    timer.seconds()});
  }
  {
    core::PhasedOptions options;
    options.eps = eps;
    util::WallTimer timer;
    const core::PhasedResult r = core::decision_phased(instance, options);
    rows.push_back({"phased [PT12]", r.outcome, r.iterations, r.phases,
                    r.outcome == core::DecisionOutcome::kDual
                        ? checked_dual_value(instance, r.dual_x)
                        : 0,
                    timer.seconds()});
  }
  {
    core::BucketedOptions options;
    options.eps = eps;
    util::WallTimer timer;
    const core::BucketedResult r = core::decision_bucketed(instance, options);
    rows.push_back({"bucketed [WMMR15]", r.outcome, r.iterations,
                    r.iterations,
                    r.outcome == core::DecisionOutcome::kDual
                        ? checked_dual_value(instance, r.dual_x)
                        : 0,
                    timer.seconds()});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_variants", "E12: solver-variant comparison");
  auto& eps = cli.flag<Real>("eps", 0.1, "algorithm eps");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E12: phase-free vs phased vs bucketed vs fixed stride",
      "Same eps-decision problem solved by the paper's Algorithm 3.1 and "
      "the three schedule variants; exponential counts are the per-variant "
      "O(m^3) work driver.");

  struct Workload {
    std::string name;
    core::PackingInstance instance;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"random ellipses (n=32, m=8)",
       apps::random_ellipses({.n = 32, .m = 8, .rank = 2, .seed = 12})});
  workloads.push_back(
      {"needle width=512 (n=16, m=6)",
       apps::needle_width_family({.n = 16, .m = 6, .width = 512, .seed = 4})});
  workloads.push_back(
      {"diagonal LP (heterogeneous slack)",
       apps::diagonal_lp({.groups = 8, .per_group = 3, .d_min = 0.1,
                          .d_max = 8.0, .seed = 9})
           .instance});

  bool phased_cheaper = true;
  bool outcomes_agree = true;
  for (const Workload& workload : workloads) {
    std::cout << "-- " << workload.name << " (eps = " << eps.value << ")\n";
    util::Table table({"variant", "outcome", "iterations", "exponentials",
                       "dual value", "seconds"});
    const std::vector<VariantRow> rows = run_all(workload.instance, eps.value);
    for (const VariantRow& row : rows) {
      table.add_row(
          {row.name,
           row.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
           util::Table::cell(row.iterations), util::Table::cell(row.exponentials),
           util::Table::cell(row.dual_value, 4),
           util::Table::cell(row.seconds, 3)});
      if (row.outcome != rows.front().outcome) outcomes_agree = false;
    }
    table.print();
    std::cout << "\n";
    // Find the phased row and compare exponentials vs plain.
    if (rows[2].exponentials >= rows[0].exponentials) phased_cheaper = false;
  }

  // --- Factorized path: one bigDotExp batch per phase vs per iteration ---
  std::cout << "-- factorized path (n=24, m=64, Theorem 4.1 pipeline, eps = "
            << eps.value << ")\n";
  bool factorized_agree = true;
  bool factorized_faster = true;
  {
    const core::FactorizedPackingInstance fact = apps::random_factorized(
        {.n = 24, .m = 64, .rank = 2, .nnz_per_column = 6, .seed = 8});
    util::Table table({"variant", "outcome", "iterations", "exp batches",
                       "seconds"});
    core::DecisionOptions plain_options;
    plain_options.eps = eps.value;
    util::WallTimer plain_timer;
    const core::DecisionResult plain =
        core::decision_factorized(fact, plain_options);
    const Real plain_seconds = plain_timer.seconds();
    table.add_row(
        {"plain factorized",
         plain.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
         util::Table::cell(plain.iterations),
         util::Table::cell(plain.iterations),
         util::Table::cell(plain_seconds, 3)});

    core::FactorizedPhasedOptions phased_options;
    phased_options.eps = eps.value;
    util::WallTimer phased_timer;
    const core::PhasedResult phased =
        core::decision_phased(fact, phased_options);
    const Real phased_seconds = phased_timer.seconds();
    table.add_row(
        {"phased factorized",
         phased.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
         util::Table::cell(phased.iterations),
         util::Table::cell(phased.phases),
         util::Table::cell(phased_seconds, 3)});
    table.print();
    std::cout << "\n";
    factorized_agree = plain.outcome == phased.outcome;
    factorized_faster =
        phased.phases < plain.iterations && phased_seconds < plain_seconds;
  }

  const bool ok =
      phased_cheaper && outcomes_agree && factorized_agree && factorized_faster;
  bench::print_verdict(
      ok,
      "all variants agree on the decision outcome, the phased schedule "
      "computes strictly fewer exponentials than iterations on every dense "
      "workload, and phase-batching the Theorem 4.1 pipeline is strictly "
      "faster than per-iteration batches");
  return ok ? 0 : 1;
}
