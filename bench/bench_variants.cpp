// E12 -- solver-variant comparison: the phase-free Algorithm 3.1 (the
// paper's arXiv revision) vs the conference-style phased schedule
// (core/phased) vs the [WMMR15]-direction bucketed acceleration
// (core/bucketed) vs fixed-stride lazy refresh (exp_stride).
//
// What the shapes should show:
//   * phased: the same virtual-iteration count up to small constants, but
//     #exponentials ~= #phases, far below the iteration count -- the
//     closed-form batching is where the conference version's practicality
//     came from;
//   * bucketed: fewer iterations on instances with heterogeneous slack
//     (diagonal-LP-style), no worse on isotropic random ellipses; its
//     safety rescalings keep certificates exact;
//   * exp_stride: the non-adaptive middle ground.
// All outcomes and certificate values are printed so regressions in any
// variant surface here.
//
// The factorized section runs the same comparison on the sketched
// bigDotExp oracle -- plain vs phased vs bucketed (the oracle-layer entry
// point decision_bucketed(FactorizedPackingInstance)) -- plus the
// factorized mixed packing/covering solver on a planted-feasible
// instance, so the variant table covers the nearly-linear paths
// end-to-end.
#include <cstring>

#include "alloc_counter.hpp"
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/bucketed.hpp"
#include "core/certificates.hpp"
#include "core/decision.hpp"
#include "core/mixed.hpp"
#include "core/phased.hpp"
#include "par/parallel.hpp"
#include "rand/rng.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace psdp;

struct VariantRow {
  std::string name;
  core::DecisionOutcome outcome;
  Index iterations = 0;
  Index exponentials = 0;
  Real dual_value = 0;  ///< 0 on primal outcomes
  Real seconds = 0;
};

/// Dual value re-verified by the exact checker (0 when infeasible or
/// primal).
Real checked_dual_value(const core::PackingInstance& instance,
                        const linalg::Vector& x) {
  const core::DualCheck check = core::check_dual(instance, x);
  return check.feasible ? check.value : 0;
}

std::vector<VariantRow> run_all(const core::PackingInstance& instance,
                                Real eps) {
  std::vector<VariantRow> rows;
  {
    core::DecisionOptions options;
    options.eps = eps;
    util::WallTimer timer;
    const core::DecisionResult r = core::decision_dense(instance, options);
    rows.push_back({"plain (Alg 3.1)", r.outcome, r.iterations, r.iterations,
                    r.outcome == core::DecisionOutcome::kDual
                        ? checked_dual_value(instance, r.dual_x_tight)
                        : 0,
                    timer.seconds()});
  }
  {
    core::DecisionOptions options;
    options.eps = eps;
    options.exp_stride = 8;
    util::WallTimer timer;
    const core::DecisionResult r = core::decision_dense(instance, options);
    rows.push_back({"stride-8 refresh", r.outcome, r.iterations,
                    (r.iterations + 7) / 8,
                    r.outcome == core::DecisionOutcome::kDual
                        ? checked_dual_value(instance, r.dual_x_tight)
                        : 0,
                    timer.seconds()});
  }
  {
    core::PhasedOptions options;
    options.eps = eps;
    util::WallTimer timer;
    const core::PhasedResult r = core::decision_phased(instance, options);
    rows.push_back({"phased [PT12]", r.outcome, r.iterations, r.phases,
                    r.outcome == core::DecisionOutcome::kDual
                        ? checked_dual_value(instance, r.dual_x)
                        : 0,
                    timer.seconds()});
  }
  {
    core::BucketedOptions options;
    options.eps = eps;
    util::WallTimer timer;
    const core::BucketedResult r = core::decision_bucketed(instance, options);
    rows.push_back({"bucketed [WMMR15]", r.outcome, r.iterations,
                    r.iterations,
                    r.outcome == core::DecisionOutcome::kDual
                        ? checked_dual_value(instance, r.dual_x)
                        : 0,
                    timer.seconds()});
  }
  return rows;
}

/// The CI steady-state-allocation guard (`--alloc-guard`): iterations of
/// the factorized plain decision loop on a shared SolverWorkspace must
/// perform zero heap allocations after warmup. This binary's operator new
/// is replaced by the counting allocator, so any hidden per-round heap
/// traffic -- a workspace that stopped being recycled, a parallel loop
/// boxing its body, a batch descriptor allocated per region -- fails the
/// job deterministically.
int run_alloc_guard() {
  const core::FactorizedPackingInstance fact = apps::random_factorized(
      {.n = 24, .m = 64, .rank = 2, .nnz_per_column = 6, .seed = 8});
  // Both pool shapes: inline execution (1 thread) and the worker-pool path
  // with its recycled batch descriptors and per-thread reduce scratch.
  const int before = par::num_threads();
  bool ok = true;
  for (const int threads : {1, 4, before}) {
    par::set_num_threads(threads);
    const bench::SteadyStateAllocReport report =
        bench::run_steady_state_allocs(
            fact, /*eps=*/0.1, /*warmup=*/3, /*measured=*/12,
            [] { return psdp::bench::alloc_count(); });
    std::cout << "steady-state allocation guard (" << threads
              << " threads): " << report.allocations << " allocations over "
              << report.measured_iterations << " iterations after "
              << report.warmup_iterations << " warmup iterations\n";
    ok = ok && report.allocations == 0;
  }
  par::set_num_threads(before);
  std::cout << "[" << (ok ? "ALLOC OK" : "ALLOC MISS")
            << "] steady-state solver iterations must not touch the heap\n";
  return ok ? 0 : 1;
}

/// The measured counterfactual behind docs/noisy_oracle_margin.md
/// (`--margin-blowup`): the factorized phased solver run twice on the same
/// primal-side instance and sketch accuracy -- once certifying the primal
/// against the production one-sided margin 1 + dot_eps, once against the
/// fully adversarial two-sided ratio (1+dot_eps)/(1-dot_eps). The dots and
/// the trace are quadratic forms in the *same* sketch, so the adversarial
/// bound guards a failure mode the correlation rules out; what it actually
/// buys is an iteration blowup (the two-sided margin typically exhausts
/// the whole R budget where the one-sided run certifies early).
int run_margin_blowup() {
  const Real eps = 0.25;       // coarse solve: large noise, fast repro
  const Real dot_eps = 0.45;   // margin gap: 1.45 one-sided vs 2.64 two-sided
  // Scaled so the true penalty rates dots_i / Tr W land in ~[1.8, 4.3]:
  // every constraint clears the one-sided margin 1.45 (instant
  // certification) while the smallest sits below the two-sided 2.64 --
  // the near-threshold regime where the adversarial margin can never
  // certify and the run exhausts the whole R budget instead.
  const core::FactorizedPackingInstance fact =
      apps::random_factorized(
          {.n = 16, .m = 96, .rank = 2, .nnz_per_column = 6, .seed = 5})
          .scaled(55.0);
  util::Table table({"margin", "outcome", "virtual iterations", "phases",
                     "seconds"});
  Index iters[2] = {0, 0};
  for (const bool two_sided : {false, true}) {
    core::FactorizedPhasedOptions options;
    options.eps = eps;
    options.dot_eps = dot_eps;
    options.two_sided_margin = two_sided;
    util::WallTimer timer;
    const core::PhasedResult r = core::decision_phased(fact, options);
    iters[two_sided ? 1 : 0] = r.iterations;
    table.add_row(
        {two_sided ? "two-sided (1+e)/(1-e)" : "one-sided 1+e",
         r.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
         util::Table::cell(r.iterations), util::Table::cell(r.phases),
         util::Table::cell(timer.seconds(), 3)});
  }
  table.print();
  const Real blowup = static_cast<Real>(iters[1]) /
                      static_cast<Real>(std::max<Index>(1, iters[0]));
  std::cout << "\ntwo-sided / one-sided iteration ratio: " << blowup << "x\n";
  const bool ok = blowup >= 10;
  bench::print_verdict(
      ok,
      "the adversarial two-sided certificate margin costs >= 10x the "
      "iterations of the production one-sided margin on a primal-side "
      "instance (see docs/noisy_oracle_margin.md)");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--alloc-guard") == 0) return run_alloc_guard();
    if (std::strcmp(argv[i], "--margin-blowup") == 0) {
      return run_margin_blowup();
    }
  }
  util::Cli cli("bench_variants", "E12: solver-variant comparison");
  auto& eps = cli.flag<Real>("eps", 0.1, "algorithm eps");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E12: phase-free vs phased vs bucketed vs fixed stride",
      "Same eps-decision problem solved by the paper's Algorithm 3.1 and "
      "the three schedule variants; exponential counts are the per-variant "
      "O(m^3) work driver.");

  struct Workload {
    std::string name;
    core::PackingInstance instance;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"random ellipses (n=32, m=8)",
       apps::random_ellipses({.n = 32, .m = 8, .rank = 2, .seed = 12})});
  workloads.push_back(
      {"needle width=512 (n=16, m=6)",
       apps::needle_width_family({.n = 16, .m = 6, .width = 512, .seed = 4})});
  workloads.push_back(
      {"diagonal LP (heterogeneous slack)",
       apps::diagonal_lp({.groups = 8, .per_group = 3, .d_min = 0.1,
                          .d_max = 8.0, .seed = 9})
           .instance});

  bool phased_cheaper = true;
  bool outcomes_agree = true;
  for (const Workload& workload : workloads) {
    std::cout << "-- " << workload.name << " (eps = " << eps.value << ")\n";
    util::Table table({"variant", "outcome", "iterations", "exponentials",
                       "dual value", "seconds"});
    const std::vector<VariantRow> rows = run_all(workload.instance, eps.value);
    for (const VariantRow& row : rows) {
      table.add_row(
          {row.name,
           row.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
           util::Table::cell(row.iterations), util::Table::cell(row.exponentials),
           util::Table::cell(row.dual_value, 4),
           util::Table::cell(row.seconds, 3)});
      if (row.outcome != rows.front().outcome) outcomes_agree = false;
    }
    table.print();
    std::cout << "\n";
    // Find the phased row and compare exponentials vs plain.
    if (rows[2].exponentials >= rows[0].exponentials) phased_cheaper = false;
  }

  // --- Factorized path: every variant on the sketched bigDotExp oracle ---
  std::cout << "-- factorized path (n=24, m=64, Theorem 4.1 pipeline, eps = "
            << eps.value << ")\n";
  bool factorized_agree = true;
  bool factorized_faster = true;
  bool bucketed_factorized_agrees = true;
  {
    const core::FactorizedPackingInstance fact = apps::random_factorized(
        {.n = 24, .m = 64, .rank = 2, .nnz_per_column = 6, .seed = 8});
    util::Table table({"variant", "outcome", "iterations", "exp batches",
                       "seconds"});
    core::DecisionOptions plain_options;
    plain_options.eps = eps.value;
    util::WallTimer plain_timer;
    const core::DecisionResult plain =
        core::decision_factorized(fact, plain_options);
    const Real plain_seconds = plain_timer.seconds();
    table.add_row(
        {"plain factorized",
         plain.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
         util::Table::cell(plain.iterations),
         util::Table::cell(plain.iterations),
         util::Table::cell(plain_seconds, 3)});

    core::FactorizedPhasedOptions phased_options;
    phased_options.eps = eps.value;
    util::WallTimer phased_timer;
    const core::PhasedResult phased =
        core::decision_phased(fact, phased_options);
    const Real phased_seconds = phased_timer.seconds();
    table.add_row(
        {"phased factorized",
         phased.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
         util::Table::cell(phased.iterations),
         util::Table::cell(phased.phases),
         util::Table::cell(phased_seconds, 3)});

    // Bucketed on the sketched oracle: slack buckets from noisy penalties,
    // safety rescalings measured on the implicit operator.
    core::FactorizedBucketedOptions bucketed_options;
    bucketed_options.eps = eps.value;
    util::WallTimer bucketed_timer;
    const core::BucketedResult bucketed =
        core::decision_bucketed(fact, bucketed_options);
    const Real bucketed_seconds = bucketed_timer.seconds();
    table.add_row(
        {"bucketed factorized",
         bucketed.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
         util::Table::cell(bucketed.iterations),
         util::Table::cell(bucketed.iterations),
         util::Table::cell(bucketed_seconds, 3)});
    table.print();
    std::cout << "\n";
    factorized_agree = plain.outcome == phased.outcome;
    factorized_faster =
        phased.phases < plain.iterations && phased_seconds < plain_seconds;
    bucketed_factorized_agrees = bucketed.outcome == plain.outcome;
  }

  // --- Mixed packing/covering on the factorized oracle ---
  std::cout << "-- mixed packing/covering, factorized oracle (n=24, m=64, "
               "l=6)\n";
  bool mixed_factorized_ok = true;
  {
    core::MixedFactorizedInstance mixed;
    // Loosely-packed instance with uniformly reachable covering
    // coordinates: feasible with slack, so the solver must find it.
    mixed.packing = apps::random_factorized(
        {.n = 24, .m = 64, .rank = 2, .nnz_per_column = 6, .seed = 8})
        .scaled(0.05);
    rand::Rng rng(21);
    for (Index i = 0; i < mixed.packing.size(); ++i) {
      linalg::Vector d(6);
      for (Index j = 0; j < d.size(); ++j) d[j] = rng.uniform(0.5, 1.5);
      mixed.covering.push_back(std::move(d));
    }
    core::MixedFactorizedOptions mixed_options;
    mixed_options.eps = eps.value;
    // Pin the iteration budget explicitly (same formula as the solver's
    // default) so the budget-exhaustion check below cannot silently
    // diverge from the solver's internal value.
    mixed_options.max_iterations_override =
        4 * core::algorithm_constants(mixed.packing.size(), eps.value)
                .r_limit;
    util::WallTimer mixed_timer;
    const core::MixedResult r = core::solve_mixed(mixed, mixed_options);
    util::Table table({"variant", "outcome", "iterations", "min coverage",
                       "seconds"});
    table.add_row(
        {"mixed factorized",
         r.outcome == core::MixedOutcome::kFeasible ? "feasible" : "exhausted",
         util::Table::cell(r.iterations),
         util::Table::cell(r.min_coverage, 4),
         util::Table::cell(mixed_timer.seconds(), 3)});
    table.print();
    std::cout << "\n";
    // Falsifiable acceptance: the loosely-packed instance inflates
    // coverage heavily at the final rescale, so also require that the loop
    // reached the cover target instead of exhausting its iteration budget
    // (a selection regression would burn the whole budget and still
    // rescale into nominal feasibility).
    mixed_factorized_ok = r.outcome == core::MixedOutcome::kFeasible &&
                          r.min_coverage >= 1 - eps.value &&
                          r.iterations < mixed_options.max_iterations_override;
  }

  const bool ok = phased_cheaper && outcomes_agree && factorized_agree &&
                  factorized_faster && bucketed_factorized_agrees &&
                  mixed_factorized_ok;
  bench::print_verdict(
      ok,
      "all variants agree on the decision outcome, the phased schedule "
      "computes strictly fewer exponentials than iterations on every dense "
      "workload, phase-batching the Theorem 4.1 pipeline is strictly faster "
      "than per-iteration batches, the bucketed variant reproduces the "
      "plain outcome on the sketched oracle, and the factorized mixed "
      "solver recovers a feasible planted instance");
  return ok ? 0 : 1;
}
