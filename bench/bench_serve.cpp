// Serve-layer throughput bench: batch scheduling vs. sequential
// one-at-a-time solves, at the same pool width, on a heterogeneous job mix
// (graph covering + beamforming + dense/factorized packing + positive LP,
// with repeated configurations per instance).
//
// Three modes over the same jobs:
//
//   sequential  today's behavior emulated faithfully: every job is solved
//               alone at full pool width by a fresh scheduler (fresh
//               ArtifactCache, fresh plan memo), so each job re-generates
//               its instance, rebuilds transpose indexes, re-normalizes,
//               and re-tunes -- one process entry point per job.
//   batch       one BatchScheduler.run() over all jobs: narrow jobs pack
//               onto lanes, artifacts are shared through the cache.
//   warm        the same batch again on the same scheduler: every artifact
//               is cached, so this is the steady-state serve regime.
//
// The bench *asserts* (exit 1 on failure):
//   * per-job results are bitwise identical across all three modes -- the
//     lanes-vs-solo determinism contract of serve/scheduler.hpp;
//   * the warm batch performs zero transpose-index builds and zero
//     kernel-plan re-measurements (--assert-cache-reuse, default on);
//   * batch/sequential throughput >= --assert-speedup when set (the ISSUE
//     acceptance bar is 1.5).
//
// Results land in BENCH_serve.json (schema in docs/TUNING.md). --smoke
// shrinks every instance for CI.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/beamforming.hpp"
#include "apps/generators.hpp"
#include "apps/graph.hpp"
#include "bench_common.hpp"
#include "par/parallel.hpp"
#include "serve/scheduler.hpp"
#include "sparse/csr.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace psdp;

struct ModeStats {
  double seconds = 0;
  double jobs_per_second = 0;
};

struct JobTiming {
  std::string label;
  std::string kind;
  double sequential_seconds = 0;
  double batch_seconds = 0;
  double batch_queue_seconds = 0;
  double warm_seconds = 0;
  bool batch_cache_hit = false;
  int batch_lane = -1;
};

/// The heterogeneous workload: a few unique instances, several (eps, probe)
/// configurations each, so the batch modes can amortize artifacts.
serve::SolveBatch make_batch(bool smoke) {
  serve::SolveBatch batch;

  // Factorized packing over tall sparse factors (the Theorem 4.1 path);
  // phased probes keep per-job runtimes in check. The m here is what makes
  // the solver's parallel loops actually fork (m > the parallel grain), so
  // the sequential baseline pays real fork-join traffic per region.
  const auto add_fact = [&](const std::string& key,
                            const apps::FactorizedOptions& generator, Real eps,
                            const std::string& label) {
    core::OptimizeOptions options;
    options.eps = eps;
    options.decision_eps = 0.25;
    options.probe_solver = core::ProbeSolver::kPhased;
    // A bench-sized sketch: the JL row count for dot_eps ~ 0.125 runs to
    // hundreds of rows at these dimensions, putting single jobs at minutes
    // -- a serving workload runs its probes at modest fixed sketch sizes
    // (certificates stay measured and valid; only probe progress varies).
    options.decision.dot_options.sketch_rows_override = 16;
    serve::JobSpec job;
    job.instance = key;
    job.label = label;
    job.kind = serve::JobKind::kPackingFactorized;
    job.options = options;
    job.builder = [generator](const sparse::TransposePlanOptions& plan) {
      apps::FactorizedOptions options = generator;
      options.plan_options = &plan;
      return serve::prepare_factorized(apps::random_factorized(options));
    };
    batch.add(std::move(job));
  };
  // Tall factors above the parallel grain, so the solver's panel loops
  // really fork: these are the jobs whose solo runs spread tiny panel
  // chunks across the whole pool, and whose lane runs pack onto one thread.
  {
    apps::FactorizedOptions generator;
    generator.rank = 2;
    generator.nnz_per_column = 6;
    const Index sizes[] = {2048, 3072, 4096};
    const Index fact_instances = smoke ? 1 : 3;
    for (Index f = 0; f < fact_instances; ++f) {
      generator.m = smoke ? 512 : sizes[f];
      generator.n = 12;
      generator.seed = 5 + static_cast<std::uint64_t>(f);
      const std::string key = str("fact", f);
      add_fact(key, generator, 0.5, str(key, "/phased-loose"));
      add_fact(key, generator, 0.45, str(key, "/phased-mid"));
      if (!smoke) {
        add_fact(key, generator, 0.4, str(key, "/phased"));
        add_fact(key, generator, 0.35, str(key, "/phased-tight"));
      }
    }
  }

  // Graph covering: the edge-covering SDP of a random connected graph
  // (dense path; the cached artifact is the Appendix-A normalization).
  {
    const apps::Graph graph = apps::random_connected_graph(8, 6);
    core::CoveringProblem problem = apps::edge_covering_problem(graph);
    auto shared =
        std::make_shared<const core::CoveringProblem>(std::move(problem));
    for (const Real eps : {0.35, 0.3}) {
      core::OptimizeOptions options;
      options.eps = eps;
      batch.add_covering("graphcov", shared, options,
                         str("graphcov/eps", eps));
    }
  }

  // Beamforming covering (the paper's flagship application).
  {
    apps::BeamformingOptions beam;
    beam.users = smoke ? 4 : 6;
    beam.antennas = smoke ? 3 : 4;
    auto shared = std::make_shared<const core::CoveringProblem>(
        apps::beamforming_problem(beam));
    for (const Real eps : {0.35, 0.3}) {
      core::OptimizeOptions options;
      options.eps = eps;
      batch.add_covering("beam", shared, options, str("beam/eps", eps));
    }
  }

  // Dense packing (random ellipsoids).
  {
    auto shared = std::make_shared<const core::PackingInstance>(
        apps::random_ellipses({.n = 12, .m = 8, .rank = 2, .seed = 21}));
    for (const Real eps : {0.3, 0.25}) {
      core::OptimizeOptions options;
      options.eps = eps;
      batch.add_packing("ellipses", shared, options, str("ellipses/eps", eps));
    }
  }

  // Positive LPs: a random packing LP and the cycle-graph matching LP.
  {
    auto shared = std::make_shared<const core::PackingLp>(
        apps::random_packing_lp({.rows = 24, .cols = 48, .seed = 8}));
    for (const Real eps : {0.2, 0.15}) {
      core::OptimizeOptions options;
      options.eps = eps;
      batch.add_lp("randlp", shared, options, str("randlp/eps", eps));
    }
  }
  if (!smoke) {
    auto shared = std::make_shared<const core::PackingLp>(
        apps::cycle_graph_matching_lp(31).lp);
    for (const Real eps : {0.2, 0.1}) {
      core::OptimizeOptions options;
      options.eps = eps;
      batch.add_lp("cycle31", shared, options, str("cycle31/eps", eps));
    }
  }
  return batch;
}

/// The sequential baseline: each job on a fresh scheduler (fresh caches)
/// with wide_work = 0, so it runs alone at full pool width -- one emulated
/// process entry per job.
std::vector<serve::JobResult> run_sequential(const serve::SolveBatch& batch,
                                             double& seconds) {
  std::vector<serve::JobResult> results;
  results.reserve(batch.size());
  util::WallTimer timer;
  for (const serve::JobSpec& spec : batch.jobs()) {
    serve::SchedulerOptions options;
    options.wide_work = 0;  // everything solo at full width
    serve::BatchScheduler scheduler(options);
    serve::SolveBatch single;
    single.add(spec);
    std::vector<serve::JobResult> one = scheduler.run(single);
    results.push_back(std::move(one.front()));
  }
  seconds = timer.seconds();
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_serve",
                "Batch solve service throughput vs sequential solves");
  auto& smoke = cli.flag<bool>("smoke", false, "tiny instances for CI");
  auto& threads = cli.flag<int>("threads", 8, "pool width (0 = keep default)");
  auto& lanes = cli.flag<int>("lanes", 0, "batch lanes (0 = auto)");
  auto& out_path = cli.flag<std::string>("out", "BENCH_serve.json",
                                         "result JSON path");
  auto& assert_speedup = cli.flag<Real>(
      "assert-speedup", 0,
      "fail unless batch/sequential throughput >= this (0 = report only)");
  auto& assert_cache = cli.flag<bool>(
      "assert-cache-reuse", true,
      "fail unless the warm batch rebuilds zero indexes/plans");
  auto& lane_sweep = cli.flag<bool>(
      "lane-sweep", false, "also time warm batches at lanes = 1..threads");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  if (threads.value > 0) par::set_num_threads(threads.value);
  const int width = par::num_threads();

  bench::print_header(
      "SERVE: batch scheduling over the shared pool",
      str("N heterogeneous jobs (packing dense/factorized, covering, LP; "
          "repeated configs per instance), batch vs sequential at pool "
          "width ", width, "."));

  serve::SolveBatch batch = make_batch(smoke.value);
  {
    std::vector<std::string> keys;
    for (const serve::JobSpec& job : batch.jobs()) keys.push_back(job.instance);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::cout << batch.size() << " jobs over " << keys.size()
              << " unique instances\n\n";
  }

  // ---- sequential: one fresh full-width scheduler per job ----------------
  ModeStats sequential;
  const std::vector<serve::JobResult> seq_results =
      run_sequential(batch, sequential.seconds);

  // ---- batch: one scheduler, cold cache ----------------------------------
  serve::SchedulerOptions scheduler_options;
  scheduler_options.lanes = lanes.value;
  serve::BatchScheduler scheduler(scheduler_options);
  ModeStats cold;
  util::WallTimer timer;
  const std::vector<serve::JobResult> cold_results = scheduler.run(batch);
  cold.seconds = timer.seconds();

  // ---- warm: same scheduler, every artifact cached -----------------------
  const std::uint64_t index_builds_before_warm =
      sparse::transpose_index_build_count();
  const sparse::TransposePlanCache::Stats plan_before =
      scheduler.cache().plan_cache().stats();
  ModeStats warm;
  timer.reset();
  const std::vector<serve::JobResult> warm_results = scheduler.run(batch);
  warm.seconds = timer.seconds();
  const std::uint64_t warm_index_builds =
      sparse::transpose_index_build_count() - index_builds_before_warm;
  const sparse::TransposePlanCache::Stats plan_after =
      scheduler.cache().plan_cache().stats();
  const std::uint64_t warm_plan_misses = plan_after.misses - plan_before.misses;

  const auto jobs_per_second = [&](ModeStats& mode) {
    mode.jobs_per_second =
        mode.seconds > 0 ? static_cast<double>(batch.size()) / mode.seconds : 0;
  };
  jobs_per_second(sequential);
  jobs_per_second(cold);
  jobs_per_second(warm);

  // ---- identity: every job bitwise equal across the three modes ----------
  Index mismatches = 0;
  std::vector<JobTiming> timings;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!serve::payload_bitwise_equal(seq_results[i], cold_results[i]) ||
        !serve::payload_bitwise_equal(seq_results[i], warm_results[i])) {
      ++mismatches;
      std::cout << "IDENTITY MISMATCH: " << seq_results[i].label << "\n";
    }
    JobTiming t;
    t.label = cold_results[i].label;
    t.kind = serve::job_kind_name(cold_results[i].kind);
    t.sequential_seconds = seq_results[i].seconds;
    t.batch_seconds = cold_results[i].run_seconds;
    t.batch_queue_seconds = cold_results[i].queue_seconds;
    t.warm_seconds = warm_results[i].run_seconds;
    t.batch_cache_hit = cold_results[i].cache_hit;
    t.batch_lane = cold_results[i].lane;
    timings.push_back(std::move(t));
    if (!cold_results[i].ok) {
      std::cout << "JOB FAILED: " << cold_results[i].label << ": "
                << cold_results[i].error << "\n";
      ++mismatches;  // a failing job fails the bench
    }
  }

  const double cold_speedup =
      sequential.seconds > 0 ? sequential.seconds / cold.seconds : 0;
  const double warm_speedup =
      sequential.seconds > 0 ? sequential.seconds / warm.seconds : 0;

  util::Table table({"mode", "seconds", "jobs/s", "speedup"});
  table.add_row({"sequential", util::Table::cell(sequential.seconds),
                 util::Table::cell(sequential.jobs_per_second), "1"});
  table.add_row({"batch", util::Table::cell(cold.seconds),
                 util::Table::cell(cold.jobs_per_second),
                 util::Table::cell(cold_speedup)});
  table.add_row({"warm", util::Table::cell(warm.seconds),
                 util::Table::cell(warm.jobs_per_second),
                 util::Table::cell(warm_speedup)});
  table.print();

  const serve::ArtifactCache::Stats cache = scheduler.cache().stats();
  std::cout << "cache: " << cache.hits << " hits, " << cache.misses
            << " misses, " << cache.evictions << " evictions, "
            << cache.workspace_reuses << " workspace reuses\n";
  std::cout << "warm batch: " << warm_index_builds
            << " transpose-index builds, " << warm_plan_misses
            << " kernel-plan measurements\n";

  // ---- optional lane sweep (warm batches) --------------------------------
  std::vector<std::pair<int, double>> lane_rows;
  if (lane_sweep.value) {
    for (int l = 1; l <= width; l *= 2) {
      serve::SchedulerOptions swept = scheduler_options;
      swept.lanes = l;
      serve::BatchScheduler lane_scheduler(swept);
      lane_scheduler.run(batch);  // warm its cache
      timer.reset();
      lane_scheduler.run(batch);
      lane_rows.emplace_back(l, timer.seconds());
      std::cout << "lanes=" << l << ": " << lane_rows.back().second << " s\n";
    }
  }

  // ---- JSON ---------------------------------------------------------------
  {
    std::ofstream out(out_path.value);
    out.precision(17);
    out << "{\n  \"bench\": \"serve\",\n  \"smoke\": "
        << (smoke.value ? "true" : "false") << ",\n  \"threads\": " << width
        << ",\n  \"lanes\": "
        << (lanes.value > 0 ? lanes.value : width)
        << ",\n  \"jobs\": " << batch.size() << ",\n  \"modes\": {\n"
        << "    \"sequential\": {\"seconds\": " << sequential.seconds
        << ", \"jobs_per_second\": " << sequential.jobs_per_second << "},\n"
        << "    \"batch\": {\"seconds\": " << cold.seconds
        << ", \"jobs_per_second\": " << cold.jobs_per_second
        << ", \"speedup\": " << cold_speedup << "},\n"
        << "    \"warm\": {\"seconds\": " << warm.seconds
        << ", \"jobs_per_second\": " << warm.jobs_per_second
        << ", \"speedup\": " << warm_speedup << "}\n  },\n"
        << "  \"cache\": {\"hits\": " << cache.hits
        << ", \"misses\": " << cache.misses
        << ", \"evictions\": " << cache.evictions
        << ", \"workspace_reuses\": " << cache.workspace_reuses
        << ", \"warm_index_builds\": " << warm_index_builds
        << ", \"warm_plan_measurements\": " << warm_plan_misses << "},\n"
        << "  \"identity\": {\"jobs\": " << batch.size()
        << ", \"mismatches\": " << mismatches << "},\n  \"jobs_detail\": [\n";
    for (std::size_t i = 0; i < timings.size(); ++i) {
      const JobTiming& t = timings[i];
      out << "    {\"label\": \"" << t.label << "\", \"kind\": \"" << t.kind
          << "\", \"sequential_seconds\": " << t.sequential_seconds
          << ", \"batch_seconds\": " << t.batch_seconds
          << ", \"batch_queue_seconds\": " << t.batch_queue_seconds
          << ", \"warm_seconds\": " << t.warm_seconds
          << ", \"batch_cache_hit\": " << (t.batch_cache_hit ? "true" : "false")
          << ", \"batch_lane\": " << t.batch_lane << "}"
          << (i + 1 < timings.size() ? "," : "") << "\n";
    }
    out << "  ]";
    if (!lane_rows.empty()) {
      out << ",\n  \"lane_sweep\": [\n";
      for (std::size_t i = 0; i < lane_rows.size(); ++i) {
        out << "    {\"lanes\": " << lane_rows[i].first
            << ", \"warm_seconds\": " << lane_rows[i].second << "}"
            << (i + 1 < lane_rows.size() ? "," : "") << "\n";
      }
      out << "  ]";
    }
    out << "\n}\n";
    out.flush();
    PSDP_CHECK(out.good(), str("cannot write ", out_path.value));
  }
  std::cout << "wrote " << out_path.value << "\n";

  // ---- verdicts -----------------------------------------------------------
  bool ok = true;
  if (mismatches > 0) {
    bench::print_verdict(false, str(mismatches, " job(s) diverged or failed"));
    ok = false;
  } else {
    bench::print_verdict(true,
                         "per-job results bitwise identical across "
                         "sequential, batch and warm runs");
  }
  if (assert_cache.value) {
    const bool reuse_ok = warm_index_builds == 0 && warm_plan_misses == 0;
    bench::print_verdict(
        reuse_ok, str("warm batch rebuilt ", warm_index_builds,
                      " transpose indexes and re-measured ", warm_plan_misses,
                      " kernel plans (target: 0/0)"));
    ok = ok && reuse_ok;
  }
  if (assert_speedup.value > 0) {
    const double achieved = std::max(cold_speedup, warm_speedup);
    const bool speed_ok = achieved >= assert_speedup.value;
    bench::print_verdict(
        speed_ok, str("batch throughput ", achieved,
                      "x sequential (target >= ", assert_speedup.value, "x)"));
    ok = ok && speed_ok;
  }
  return ok ? 0 : 1;
}
