// Counting global allocator for the steady-state-allocation guard.
//
// Replaces the global operator new/delete with malloc/free wrappers that
// bump an atomic counter per allocation. A bench brackets a measured region
// with psdp::bench::alloc_count() snapshots; a nonzero delta proves heap
// traffic inside the region (from *any* thread -- pool workers included).
//
// Replacement allocation functions must not be inline and must appear once
// per program ([replacement.functions]): include this header from exactly
// one translation unit of a binary (bench_kernels.cpp and
// bench_variants.cpp each form their own binary).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace psdp::bench {

inline std::atomic<std::uint64_t> g_alloc_count{0};

/// Number of operator-new calls since process start.
inline std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

namespace detail {
inline void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}
inline void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) == 0) return p;
  throw std::bad_alloc{};
}
}  // namespace detail

}  // namespace psdp::bench

void* operator new(std::size_t size) {
  return psdp::bench::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return psdp::bench::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return psdp::bench::detail::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return psdp::bench::detail::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
