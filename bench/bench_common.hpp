// Shared helpers for the experiment harness binaries (E1..E10).
//
// Every experiment prints: a header identifying the paper claim it
// regenerates, a table of measurements, and a one-line verdict comparing
// the measured shape with the claim (EXPERIMENTS.md records these).
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/penalty_oracle.hpp"
#include "core/solver_engine.hpp"
#include "util/common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace psdp::bench {

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

inline void print_verdict(bool ok, const std::string& text) {
  std::cout << "\n[" << (ok ? "SHAPE OK" : "SHAPE MISMATCH") << "] " << text
            << "\n";
}

/// Result of the steady-state-allocation guard (see run_steady_state_allocs
/// below; the ISSUE acceptance bar is allocations == 0).
struct SteadyStateAllocReport {
  Index warmup_iterations = 0;
  Index measured_iterations = 0;
  std::uint64_t allocations = 0;
};

/// Drive the factorized plain decision loop (oracle evaluation + coordinate
/// update, the paper's per-iteration primitive) on a shared SolverWorkspace
/// and count heap allocations across the post-warmup iterations. `counter`
/// reads the binary's counting allocator (bench/alloc_counter.hpp must be
/// included by the binary's main translation unit).
template <typename CounterFn>
SteadyStateAllocReport run_steady_state_allocs(
    const core::FactorizedPackingInstance& instance, Real eps, Index warmup,
    Index measured, CounterFn&& counter) {
  core::SketchedOracleOptions oracle_options;
  oracle_options.eps = eps;
  core::SolverWorkspace workspace;
  oracle_options.workspace = &workspace;
  core::SketchedTaylorOracle oracle(instance, oracle_options);
  const core::AlgorithmConstants c =
      core::algorithm_constants(oracle.size(), eps);
  core::SolverState state = core::initial_state(oracle, "alloc-guard");
  core::PenaltyBatch batch;

  SteadyStateAllocReport report;
  report.warmup_iterations = warmup;
  report.measured_iterations = measured;
  for (Index t = 1; t <= warmup; ++t) {
    oracle.compute(state.x, static_cast<std::uint64_t>(t), batch);
    core::apply_update(state, batch, eps, c.alpha);
  }
  const std::uint64_t before = counter();
  for (Index t = warmup + 1; t <= warmup + measured; ++t) {
    oracle.compute(state.x, static_cast<std::uint64_t>(t), batch);
    core::apply_update(state, batch, eps, c.alpha);
  }
  report.allocations = counter() - before;
  return report;
}

/// Fitted power-law exponent of ys in xs, reported with R^2.
inline util::LinearFit report_exponent(const std::string& what,
                                       const std::vector<Real>& xs,
                                       const std::vector<Real>& ys) {
  const util::LinearFit fit = util::fit_loglog(xs, ys);
  std::cout << what << ": fitted exponent " << fit.slope
            << " (R^2 = " << fit.r_squared << ")\n";
  return fit;
}

/// Splice `section` into the JSON file at `path` as its `name` member,
/// replacing a previous one and preserving everything else (so e.g. the
/// "latency" and "daemon" sections coexist in BENCH_serve.json, and the
/// "sharding" section survives a bench_kernels rewrite-in-between only if
/// bench_shard runs after it). Falls back to a fresh standalone object
/// tagged `{"bench": root_label}` when the file is absent or unreadable.
inline void splice_json_section(const std::string& path,
                                const std::string& root_label,
                                const std::string& name,
                                const std::string& section) {
  std::string text;
  {
    std::ifstream in(path);
    if (in.is_open()) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  const std::size_t close = text.rfind('}');
  if (close == std::string::npos) {
    text = str("{\n  \"bench\": \"", root_label, "\",\n  \"", name,
               "\": ", section, "\n}\n");
  } else {
    const std::size_t key = text.find(str("\"", name, "\""));
    if (key != std::string::npos) {
      // Erase from the comma before the key through the member's matching
      // closing brace.
      std::size_t begin = text.rfind(',', key);
      if (begin == std::string::npos) begin = key;
      std::size_t i = text.find('{', key);
      int depth = 0;
      while (i < text.size()) {
        if (text[i] == '{') ++depth;
        if (text[i] == '}' && --depth == 0) break;
        ++i;
      }
      PSDP_CHECK(i < text.size(), str(path, ": unbalanced braces in existing ",
                                      name, " section"));
      text.erase(begin, i + 1 - begin);
    }
    const std::size_t tail = text.rfind('}');
    text.insert(tail, str(",\n  \"", name, "\": ", section, "\n"));
  }
  std::ofstream out(path);
  out << text;
  out.flush();
  PSDP_CHECK(out.good(), str("cannot write ", path));
}

}  // namespace psdp::bench
