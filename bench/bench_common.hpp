// Shared helpers for the experiment harness binaries (E1..E10).
//
// Every experiment prints: a header identifying the paper claim it
// regenerates, a table of measurements, and a one-line verdict comparing
// the measured shape with the claim (EXPERIMENTS.md records these).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace psdp::bench {

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

inline void print_verdict(bool ok, const std::string& text) {
  std::cout << "\n[" << (ok ? "SHAPE OK" : "SHAPE MISMATCH") << "] " << text
            << "\n";
}

/// Fitted power-law exponent of ys in xs, reported with R^2.
inline util::LinearFit report_exponent(const std::string& what,
                                       const std::vector<Real>& xs,
                                       const std::vector<Real>& ys) {
  const util::LinearFit fit = util::fit_loglog(xs, ys);
  std::cout << what << ": fitted exponent " << fit.slope
            << " (R^2 = " << fit.r_squared << ")\n";
  return fit;
}

}  // namespace psdp::bench
