// E7 -- the NC / parallelism claim (Theorem 1.1, Corollary 1.2): each
// iteration is a batch of independent matvecs, so the algorithm
// parallelizes to polylog depth. On shared memory we measure wall-clock
// speedup vs thread count for the two parallel workhorses:
//   (a) one bigDotExp call (the factorized per-iteration kernel), and
//   (b) the dense per-iteration kernel batch (n Frobenius dots + GEMM).
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/bigdotexp.hpp"
#include "linalg/expm.hpp"
#include "par/parallel.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_parallel_scaling", "E7: speedup vs thread count");
  auto& m = cli.flag<Index>("m", 2048, "factorized dimension");
  auto& rows = cli.flag<Index>("rows", 192, "sketch rows");
  auto& dense_m = cli.flag<Index>("dense-m", 384, "dense kernel dimension");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E7: parallel scaling (NC claim)",
      "Claim: every iteration is flat data-parallel work (matvecs over "
      "sketch rows / constraints), so it scales with processors.");

  // Factorized workload.
  apps::FactorizedOptions gen;
  gen.n = m.value / 8;
  gen.m = m.value;
  gen.rank = 2;
  gen.nnz_per_column = 8;
  const core::FactorizedPackingInstance inst = apps::random_factorized(gen);
  const sparse::Csr phi = inst.set().weighted_sum(
      linalg::Vector(inst.size(), 0.02 / static_cast<Real>(inst.size())));
  core::BigDotExpOptions options;
  options.eps = 0.25;
  options.sketch_rows_override = rows.value;
  options.taylor_degree_override = 24;

  // Dense workload: one solver-iteration-shaped batch.
  const Index dm = dense_m.value;
  apps::EllipseOptions dense_gen;
  dense_gen.n = 64;
  dense_gen.m = dm;
  dense_gen.rank = 4;
  const core::PackingInstance dense_inst = apps::random_ellipses(dense_gen);
  linalg::Matrix w(dm, dm);
  for (Index i = 0; i < dense_inst.size(); ++i) {
    w.add_scaled(dense_inst[i], 0.01);
  }

  const int hw = par::num_threads();
  util::Table table({"threads", "bigDotExp s", "speedup", "dense batch s",
                     "speedup"});
  Real base_fact = 0, base_dense = 0;
  std::vector<int> counts;
  for (int t = 1; t <= hw; t *= 2) counts.push_back(t);
  if (counts.back() != hw) counts.push_back(hw);

  for (int threads : counts) {
    par::set_num_threads(threads);
    // (a) factorized kernel
    util::WallTimer t1;
    (void)core::big_dot_exp(phi, 2.0, inst.set(), options);
    const Real fact_s = t1.seconds();
    // (b) dense kernel batch: n dots + one m^3 GEMM (the expm surrogate)
    util::WallTimer t2;
    Real sink = 0;
    for (Index i = 0; i < dense_inst.size(); ++i) {
      sink += linalg::frobenius_dot(dense_inst[i], w);
    }
    const linalg::Matrix w2 = linalg::gemm(w, w);
    sink += w2(0, 0);
    const Real dense_s = t2.seconds();
    (void)sink;

    if (threads == 1) {
      base_fact = fact_s;
      base_dense = dense_s;
    }
    table.add_row({util::Table::cell(Index{threads}),
                   util::Table::cell(fact_s, 4),
                   util::Table::cell(base_fact / fact_s, 3),
                   util::Table::cell(dense_s, 4),
                   util::Table::cell(base_dense / dense_s, 3)});
  }
  par::set_num_threads(hw);
  table.print();

  bench::print_verdict(true,
                       "speedup columns should grow with threads until "
                       "memory bandwidth saturates -- the per-iteration "
                       "work is parallel as the NC analysis assumes.");
  return 0;
}
