// E6 -- Lemma 4.2: the truncated Taylor series of degree
// k = max(e^2 kappa, ln(2/eps)) satisfies (1-eps) exp(B) <= B_hat <= exp(B).
// We sweep kappa and eps, measure the actual one-sided relative error at
// the lemma's degree, and also report the smallest degree that would have
// sufficed -- quantifying how conservative the constant e^2 is.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "linalg/eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/taylor.hpp"
#include "rand/rng.hpp"
#include "util/cli.hpp"

namespace {

using namespace psdp;

/// Largest relative shortfall max_i (1 - hat_lambda_i / exp(lambda_i)) over
/// the shared eigenbasis (B_hat commutes with B, so comparing eigenvalues
/// of both in B's basis is exact).
Real one_sided_error(const linalg::Matrix& b, Index degree) {
  const auto eig = linalg::jacobi_eig(b);
  Real worst = 0;
  for (Index i = 0; i < eig.eigenvalues.size(); ++i) {
    const Real lambda = eig.eigenvalues[i];
    // Truncated scalar series at this eigenvalue.
    Real term = 1, sum = 1;
    for (Index j = 1; j < degree; ++j) {
      term *= lambda / static_cast<Real>(j);
      sum += term;
    }
    worst = std::max(worst, 1 - sum / std::exp(lambda));
  }
  return worst;
}

linalg::Matrix psd_with_norm(Index m, Real kappa, std::uint64_t seed) {
  rand::Rng rng(seed);
  linalg::Matrix g(m, m);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < m; ++j) g(i, j) = rng.normal();
  }
  linalg::Matrix a = linalg::gemm(g, g.transposed());
  a.symmetrize();
  a.scale(kappa / linalg::lambda_max_exact(a));
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_taylor_degree", "E6: Lemma 4.2 truncation degrees");
  auto& m = cli.flag<Index>("m", 12, "matrix dimension");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E6: Taylor degree (Lemma 4.2)",
      "Claim: degree k = max(e^2 kappa, ln(2/eps)) gives "
      "(1-eps) exp(B) <= B_hat <= exp(B) for PSD B with ||B|| <= kappa.");

  util::Table table({"kappa", "eps", "lemma degree k", "actual rel err at k",
                     "min sufficient degree"});
  bool all_hold = true;
  for (Real kappa : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const linalg::Matrix b = psd_with_norm(m.value, kappa, 42);
    for (Real eps : {0.1, 0.01}) {
      const Index k = linalg::taylor_exp_degree(kappa, eps);
      const Real err = one_sided_error(b, k);
      all_hold &= err <= eps;
      // Smallest degree with error <= eps (linear scan; k is small).
      Index k_min = 1;
      while (one_sided_error(b, k_min) > eps) ++k_min;
      table.add_row({util::Table::cell(kappa, 3), util::Table::cell(eps, 3),
                     util::Table::cell(k), util::Table::cell(err, 3),
                     util::Table::cell(k_min)});
    }
  }
  table.print();

  bench::print_verdict(all_hold,
                       "the lemma's degree always met its error target (the "
                       "e^2 kappa constant is conservative, as the min-degree "
                       "column shows -- useful headroom for implementations).");
  return 0;
}
