// E2 -- Theorem 3.1 (scaling in eps): iterations grow as O(eps^-3 log^2 n).
// We sweep eps at fixed n and fit the empirical exponent of 1/eps. The
// theory exponent is 3 (the budget R); the dual-exit path typically
// terminates earlier, so the measured exponent lands in (1, 3].
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/decision.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_iters_vs_eps", "E2: iterations vs eps (Theorem 3.1)");
  auto& n = cli.flag<Index>("n", 64, "constraint count");
  auto& m = cli.flag<Index>("m", 6, "matrix dimension");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E2: iterations vs eps",
      str("Claim (Thm 3.1): iteration budget R = 32 ln(n)/(eps alpha) = "
          "O(eps^-3 log^2 n). Sweep eps at n = ", n.value, "."));

  apps::EllipseOptions gen;
  gen.n = n.value;
  gen.m = m.value;
  const core::PackingInstance instance =
      apps::random_ellipses(gen).scaled(0.05);

  // R is not a pure power law over a moderate eps range (the (1+10 eps)
  // factor varies several-fold), so alongside the fitted exponent we check
  // the *exact* identity: R * eps^3 / (1 + 10 eps) is a constant multiple
  // of ln(n)(1 + ln n).
  util::Table table({"eps", "iterations", "R (budget)",
                     "R eps^3/(1+10eps)", "seconds"});
  std::vector<Real> inv_eps, iters, budgets, normalized;
  for (Real eps : {0.5, 0.4, 0.3, 0.2, 0.15, 0.1}) {
    core::DecisionOptions options;
    options.eps = eps;
    util::WallTimer timer;
    const core::DecisionResult r = core::decision_dense(instance, options);
    const Real norm = static_cast<Real>(r.constants.r_limit) * eps * eps *
                      eps / (1 + 10 * eps);
    table.add_row(
        {util::Table::cell(eps, 3), util::Table::cell(r.iterations),
         util::Table::cell(r.constants.r_limit), util::Table::cell(norm, 5),
         util::Table::cell(timer.seconds(), 3)});
    inv_eps.push_back(1 / eps);
    iters.push_back(static_cast<Real>(r.iterations));
    budgets.push_back(static_cast<Real>(r.constants.r_limit));
    normalized.push_back(norm);
  }
  table.print();

  const util::LinearFit measured =
      bench::report_exponent("measured iterations vs 1/eps", inv_eps, iters);
  const util::LinearFit budget =
      bench::report_exponent("theory budget R vs 1/eps", inv_eps, budgets);
  Real norm_lo = normalized[0], norm_hi = normalized[0];
  for (Real v : normalized) {
    norm_lo = std::min(norm_lo, v);
    norm_hi = std::max(norm_hi, v);
  }
  bench::print_verdict(
      norm_hi / norm_lo < 1.01 && measured.slope > 0.5 && measured.slope < 3.5,
      str("R eps^3/(1+10eps) constant to ", norm_hi / norm_lo,
          " -- the exact eps^-3 law of Theorem 3.1; raw fitted exponents: "
          "budget ", budget.slope, ", measured ", measured.slope,
          " (dual exit fires before the worst case)."));
  return 0;
}
