// E13 -- what the generalization from positive LPs costs: the scalar
// width-independent solver ([You01], core/poslp) against Algorithm 3.1 run
// on the *same program* embedded as diagonal matrices.
//
// The two solvers execute identical iterate sequences (the test suite
// checks this iterate-for-iterate), so the measured quantities isolate the
// price of the matrix machinery:
//   * iterations: must be EQUAL -- the embedding changes no decision;
//   * wall-clock: the SDP path pays the matrix exponential; the growth of
//     the ratio with the dimension l is the per-iteration work gap
//     (O(l^3 + n l^2) vs O(nnz(P))).
// This regenerates, in executable form, the paper's Section 1 positioning:
// positive LPs are exactly the axis-aligned special case, and the new cost
// is confined to the exp(Psi) . A_i primitive.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/poslp.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_lp_embedding",
                "E13: scalar LP solver vs diagonal-SDP embedding");
  auto& eps = cli.flag<Real>("eps", 0.1, "algorithm eps");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E13: the cost of the matrix generalization",
      "The same positive packing LP solved by the scalar solver and by "
      "Algorithm 3.1 on its diagonal-matrix embedding. Iterations must "
      "match exactly; the time ratio is the price of matrix exponentials.");

  util::Table table({"l (dim)", "n (vars)", "outcome", "LP iters",
                     "SDP iters", "LP s", "SDP s", "SDP/LP time"});

  bool iterations_match = true;
  std::vector<Real> dims;
  std::vector<Real> ratios;
  for (Index l : {4, 8, 16, 32, 64}) {
    const Index n = 3 * l;
    const core::PackingLp lp = apps::random_packing_lp(
        {.rows = l, .cols = n, .density = 0.3,
         .seed = static_cast<std::uint64_t>(100 + l)});

    core::DecisionOptions options;
    options.eps = eps.value;

    util::WallTimer lp_timer;
    const core::LpDecisionResult scalar = core::lp_decision(lp, options);
    const Real lp_seconds = lp_timer.seconds();

    const core::PackingInstance sdp = lp.to_diagonal_sdp();
    util::WallTimer sdp_timer;
    const core::DecisionResult dense = core::decision_dense(sdp, options);
    const Real sdp_seconds = sdp_timer.seconds();

    if (scalar.iterations != dense.iterations ||
        scalar.outcome != dense.outcome) {
      iterations_match = false;
    }
    const Real ratio = lp_seconds > 0 ? sdp_seconds / lp_seconds : 0;
    dims.push_back(static_cast<Real>(l));
    ratios.push_back(std::max<Real>(ratio, 1e-9));
    table.add_row(
        {util::Table::cell(l), util::Table::cell(n),
         scalar.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
         util::Table::cell(scalar.iterations),
         util::Table::cell(dense.iterations), util::Table::cell(lp_seconds, 4),
         util::Table::cell(sdp_seconds, 4), util::Table::cell(ratio, 1)});
  }
  table.print();
  std::cout << "\n";
  bench::report_exponent("SDP/LP time ratio vs dimension l", dims, ratios);

  bench::print_verdict(
      iterations_match,
      "scalar and embedded solvers agree on outcome and iteration count for "
      "every size (the generalization changes only per-iteration work)");
  return iterations_match ? 0 : 1;
}
