// E14 -- the preprocessing step of Section 1 ("Work and Depth"): factoring
// dense constraints A_i = Q_i Q_i^T so the nearly-linear-work path of
// Theorem 4.1 applies. The paper budgets O(m^4) work for generic parallel
// QR and notes structured matrices factor faster; this bench measures the
// two engines the library ships and the factor-compression utility:
//
//   (a) engine scaling: rank-revealing pivoted Cholesky is O(m r^2) per
//       constraint on rank-r input -- near-linear in m for the low-rank
//       constraints applications produce -- vs the O(m^3) eigendecomposition
//       reference engine;
//   (b) factor compression (LQ trick): a rank-inflated factor with k >> m
//       columns is rebuilt as an equivalent factor with <= m columns,
//       shrinking the q of Corollary 1.2;
//   (c) end-to-end: dense instance -> factorize -> factorized decision
//       agrees with the dense decision.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/decision.hpp"
#include "core/factorize.hpp"
#include "linalg/qr.hpp"
#include "rand/rng.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace psdp;

linalg::Matrix rank_r_psd(Index m, Index r, std::uint64_t seed) {
  rand::Rng rng(seed);
  linalg::Matrix g(m, r);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < r; ++j) g(i, j) = rng.normal();
  }
  linalg::Matrix a = linalg::gemm(g, g.transposed());
  a.symmetrize();
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_factorize", "E14: factorization preprocessing");
  auto& rank = cli.flag<Index>("rank", 3, "constraint rank for the sweep");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E14: dense -> prefactored preprocessing",
      "Cost and quality of factoring A_i = Q_i Q_i^T: the rank-revealing "
      "pivoted Cholesky engine vs the eigendecomposition reference, the LQ "
      "factor compression, and end-to-end solver agreement.");

  // ---- (a) engine scaling in m at fixed rank -------------------------
  std::cout << "(a) engine scaling, rank " << rank.value << " constraints\n";
  std::vector<Real> ms;
  std::vector<Real> pc_times;
  std::vector<Real> eig_times;
  {
    util::Table table({"m", "pivchol s", "eig s", "speedup", "pc rank",
                       "pc residual"});
    for (Index m : {16, 32, 64, 128, 256}) {
      const linalg::Matrix a =
          rank_r_psd(m, rank.value, static_cast<std::uint64_t>(m));
      std::vector<linalg::Matrix> one{a};
      const core::PackingInstance instance{std::move(one)};

      core::FactorizeOptions pc;
      pc.method = core::FactorizeOptions::Method::kPivotedCholesky;
      core::FactorizeReport pc_report;
      util::WallTimer pc_timer;
      const auto pc_fact = core::factorize(instance, pc, &pc_report);
      const Real pc_seconds = pc_timer.seconds();

      core::FactorizeOptions eig;
      eig.method = core::FactorizeOptions::Method::kEigendecomposition;
      core::FactorizeReport eig_report;
      util::WallTimer eig_timer;
      const auto eig_fact = core::factorize(instance, eig, &eig_report);
      const Real eig_seconds = eig_timer.seconds();

      ms.push_back(static_cast<Real>(m));
      pc_times.push_back(std::max<Real>(pc_seconds, 1e-7));
      eig_times.push_back(std::max<Real>(eig_seconds, 1e-7));
      table.add_row({util::Table::cell(m), util::Table::cell(pc_seconds, 5),
                     util::Table::cell(eig_seconds, 5),
                     util::Table::cell(eig_seconds / pc_seconds, 1),
                     util::Table::cell(pc_report.max_rank),
                     util::Table::cell(pc_report.max_residual_rel, 2)});
    }
    table.print();
    std::cout << "\n";
  }
  const util::LinearFit pc_fit =
      bench::report_exponent("pivoted Cholesky time vs m", ms, pc_times);
  const util::LinearFit eig_fit =
      bench::report_exponent("eigendecomposition time vs m", ms, eig_times);

  // ---- (b) factor compression ----------------------------------------
  std::cout << "\n(b) LQ factor compression (k = 4m columns -> <= m)\n";
  bool compression_exact = true;
  {
    util::Table table({"m", "k before", "cols after", "nnz shrink",
                       "|GG^T - LL^T|_max"});
    rand::Rng rng(77);
    for (Index m : {8, 16, 32, 64}) {
      const Index k = 4 * m;
      linalg::Matrix g(m, k);
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j < k; ++j) g(i, j) = rng.normal();
      }
      const linalg::Matrix l = linalg::compress_factor(g);
      const Real err = linalg::max_abs_diff(
          linalg::gemm(g, g.transposed()), linalg::gemm(l, l.transposed()));
      const Real scale =
          linalg::frobenius_norm(linalg::gemm(g, g.transposed()));
      if (err > 1e-9 * scale) compression_exact = false;
      table.add_row({util::Table::cell(m), util::Table::cell(k),
                     util::Table::cell(l.cols()),
                     util::Table::cell(static_cast<Real>(k) /
                                           static_cast<Real>(l.cols()), 1),
                     util::Table::cell(err, 2)});
    }
    table.print();
    std::cout << "\n";
  }

  // ---- (c) end-to-end agreement ---------------------------------------
  std::cout << "(c) dense vs factorize->factorized decision agreement\n";
  bool outcomes_agree = true;
  {
    util::Table table({"scale", "dense outcome", "factorized outcome",
                       "dense dual", "fact dual"});
    const core::PackingInstance instance =
        apps::random_ellipses({.n = 16, .m = 10, .rank = 2, .seed = 21});
    for (Real scale : {0.05, 40.0}) {
      const core::PackingInstance scaled = instance.scaled(scale);
      const core::FactorizedPackingInstance fact = core::factorize(scaled);
      core::DecisionOptions options;
      options.eps = 0.2;
      const core::DecisionResult dense = core::decision_dense(scaled, options);
      const core::DecisionResult sparse =
          core::decision_factorized(fact, options);
      if (dense.outcome != sparse.outcome) outcomes_agree = false;
      table.add_row(
          {util::Table::cell(scale, 2),
           dense.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
           sparse.outcome == core::DecisionOutcome::kDual ? "dual" : "primal",
           util::Table::cell(linalg::norm1(dense.dual_x_tight), 4),
           util::Table::cell(linalg::norm1(sparse.dual_x_tight), 4)});
    }
    table.print();
  }

  const bool shape_ok = pc_fit.slope < eig_fit.slope - 0.5 &&
                        compression_exact && outcomes_agree;
  bench::print_verdict(
      shape_ok,
      "pivoted Cholesky scales at least half an exponent better than the "
      "eig engine on low-rank input, compression is exact, and both solver "
      "paths agree after preprocessing");
  return shape_ok ? 0 : 1;
}
