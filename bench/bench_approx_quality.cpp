// E8 -- Theorem 1.1 end to end: approxPSDP returns a (1+eps)-approximation.
// Two checks:
//   (a) packing instances with analytically-known OPT (independent axes:
//       OPT = sum_i 1/d_i): the returned bracket must contain OPT and have
//       ratio <= 1+eps;
//   (b) covering instances (beamforming, graph): the produced Y must be
//       feasible and its objective within (1+eps) of the certified dual
//       lower bound.
#include "apps/beamforming.hpp"
#include "apps/graph.hpp"
#include "bench_common.hpp"
#include "core/optimize.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_approx_quality", "E8: (1+eps) end-to-end quality");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E8: approximation quality (Theorem 1.1)",
      "Claim: approxPSDP produces a (1+eps)-approximation of the optimum "
      "using O(log n) decision calls.");

  // ---- (a) known-OPT packing ----------------------------------------
  std::cout << "(a) packing with known OPT (independent axes)\n";
  util::Table pack({"eps", "OPT", "lower", "upper", "upper/OPT", "ratio",
                    "calls"});
  bool pack_ok = true;
  const std::vector<Real> d = {2.0, 4.0, 0.5, 1.0, 8.0};
  Real opt = 0;
  for (Real di : d) opt += 1 / di;
  std::vector<linalg::Matrix> axes;
  for (std::size_t i = 0; i < d.size(); ++i) {
    linalg::Matrix a(static_cast<Index>(d.size()), static_cast<Index>(d.size()));
    a(static_cast<Index>(i), static_cast<Index>(i)) = d[i];
    axes.push_back(std::move(a));
  }
  const core::PackingInstance instance{std::move(axes)};
  for (Real eps : {0.5, 0.25, 0.1, 0.05}) {
    core::OptimizeOptions options;
    options.eps = eps;
    const core::PackingOptimum r = core::approx_packing(instance, options);
    const bool contains = r.lower <= opt * (1 + 1e-9) && r.upper >= opt * (1 - 1e-9);
    const Real ratio = r.upper / r.lower;
    pack_ok &= contains && ratio <= 1 + eps + 0.02;
    pack.add_row({util::Table::cell(eps, 3), util::Table::cell(opt, 5),
                  util::Table::cell(r.lower, 5), util::Table::cell(r.upper, 5),
                  util::Table::cell(r.upper / opt, 4),
                  util::Table::cell(ratio, 4),
                  util::Table::cell(r.decision_calls)});
  }
  pack.print();

  // ---- (b) covering applications -------------------------------------
  std::cout << "\n(b) covering applications (feasible Y, certified gap)\n";
  util::Table cover({"instance", "eps", "objective", "lower bound", "gap",
                     "min slack", "seconds"});
  bool cover_ok = true;
  struct Case {
    std::string name;
    core::CoveringProblem problem;
  };
  std::vector<Case> cases;
  {
    apps::BeamformingOptions bf;
    bf.users = 10;
    bf.antennas = 5;
    cases.push_back({"beamforming 10x5", apps::beamforming_problem(bf)});
    cases.push_back({"cycle graph C8",
                     apps::edge_covering_problem(apps::cycle_graph(8))});
    cases.push_back(
        {"random graph", apps::edge_covering_problem(
                             apps::random_connected_graph(10, 8))});
  }
  for (const Case& c : cases) {
    for (Real eps : {0.3, 0.15}) {
      core::OptimizeOptions options;
      options.eps = eps;
      util::WallTimer timer;
      const core::CoveringOptimum r = core::approx_covering(c.problem, options);
      Real min_slack = std::numeric_limits<Real>::infinity();
      for (Index i = 0; i < c.problem.size(); ++i) {
        min_slack = std::min(
            min_slack,
            linalg::frobenius_dot(
                c.problem.constraints[static_cast<std::size_t>(i)], r.y) -
                c.problem.rhs[i]);
      }
      const Real gap = r.objective / r.lower_bound;
      cover_ok &= min_slack >= -1e-6;
      cover.add_row({c.name, util::Table::cell(eps, 3),
                     util::Table::cell(r.objective, 5),
                     util::Table::cell(r.lower_bound, 5),
                     util::Table::cell(gap, 4),
                     util::Table::cell(min_slack, 3),
                     util::Table::cell(timer.seconds(), 3)});
    }
  }
  cover.print();

  bench::print_verdict(
      pack_ok && cover_ok,
      "brackets contain the true optimum at ratio <= 1+eps; covering "
      "solutions are feasible with certified duality gaps.");
  return 0;
}
