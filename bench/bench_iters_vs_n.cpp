// E1 -- Theorem 3.1 (scaling in n): decisionPSDP terminates in
// O(eps^-3 log^2 n) iterations. We sweep n at fixed eps on random ellipse
// instances and check that measured iterations grow polylogarithmically
// (far slower than any polynomial) and stay within the theorem's budget R.
#include "apps/generators.hpp"
#include "bench_common.hpp"
#include "core/decision.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("bench_iters_vs_n", "E1: iterations vs n (Theorem 3.1)");
  auto& eps = cli.flag<Real>("eps", 0.3, "algorithm eps");
  auto& m = cli.flag<Index>("m", 6, "matrix dimension");
  auto& n_max = cli.flag<Index>("n-max", 1024, "largest constraint count");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  bench::print_header(
      "E1: iterations vs n",
      str("Claim (Thm 3.1): decisionPSDP solves the eps-decision problem in "
          "O(eps^-3 log^2 n) iterations. Sweep n at eps = ", eps.value, "."));

  util::Table table({"n", "iterations", "R (theory budget)", "iters/log2(n)",
                     "seconds"});
  std::vector<Real> ns, iters;
  bool within_budget = true;

  for (Index n = 8; n <= n_max.value; n *= 2) {
    apps::EllipseOptions gen;
    gen.n = n;
    gen.m = m.value;
    gen.seed = 1000 + static_cast<std::uint64_t>(n);
    const core::PackingInstance instance = apps::random_ellipses(gen);
    // Scale so the dual side is the answer and the full multiplicative-
    // weights ramp is exercised (OPT comfortably above the threshold).
    const core::PackingInstance scaled = instance.scaled(0.05);

    core::DecisionOptions options;
    options.eps = eps.value;
    util::WallTimer timer;
    const core::DecisionResult r = core::decision_dense(scaled, options);
    const Real seconds = timer.seconds();

    const Real log_n = std::log2(static_cast<Real>(n));
    table.add_row({util::Table::cell(n), util::Table::cell(r.iterations),
                   util::Table::cell(r.constants.r_limit),
                   util::Table::cell(static_cast<Real>(r.iterations) /
                                     (log_n * log_n), 4),
                   util::Table::cell(seconds, 3)});
    ns.push_back(static_cast<Real>(n));
    iters.push_back(static_cast<Real>(r.iterations));
    within_budget &= r.iterations <= r.constants.r_limit;
  }
  table.print();

  const util::LinearFit fit = bench::report_exponent("iterations vs n", ns, iters);
  // Polylog growth: the fitted *polynomial* exponent must be far below 1/2.
  bench::print_verdict(
      within_budget && fit.slope < 0.5,
      str("iterations stay within R and grow sublinearly in n ",
          "(exponent ", fit.slope, " << 1); consistent with log^2 n."));
  return 0;
}
