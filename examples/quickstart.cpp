// Quickstart: solve a tiny positive SDP end to end.
//
// We build the paper's Figure-1 instance (three ellipses in the plane),
// solve the packing optimization problem
//     max 1^T x   s.t.  x1 A1 + x2 A2 + x3 A3 <= I,  x >= 0
// with approxPSDP, and verify the answer with the independent certificate
// checker. Run:  ./quickstart [--eps=0.1]
#include <iostream>

#include "apps/generators.hpp"
#include "core/certificates.hpp"
#include "core/optimize.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("quickstart", "Solve the Figure-1 packing SDP");
  auto& eps = cli.flag<Real>("eps", 0.1, "target relative accuracy");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  // The Figure 1 instance: A1 = diag(1, 1/4), A2 = diag(1/4, 1), and A3 a
  // rotated ellipse with semi-axes 3/4 and 1/8.
  const core::PackingInstance instance = apps::figure1_instance();
  std::cout << "Instance: n = " << instance.size()
            << " constraints of dimension m = " << instance.dim() << "\n";

  core::OptimizeOptions options;
  options.eps = eps.value;
  const core::PackingOptimum result = core::approx_packing(instance, options);

  std::cout << "approxPSDP bracket:  " << result.lower << " <= OPT <= "
            << result.upper << "\n"
            << "  (ratio " << result.upper / result.lower << ", "
            << result.decision_calls << " decision calls, "
            << result.total_iterations << " total iterations)\n";

  std::cout << "Best packing found: x = [";
  for (Index i = 0; i < result.best_x.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << result.best_x[i];
  }
  std::cout << "]\n";

  // Never trust a solver: re-verify with the exact checker.
  const core::DualCheck check = core::check_dual(instance, result.best_x);
  std::cout << "Certificate check:  feasible = " << std::boolalpha
            << check.feasible << ", value = " << check.value
            << ", lambda_max(sum x_i A_i) = " << check.lambda_max << "\n";
  return check.feasible ? 0 : 1;
}
