// Positive linear programming with the scalar specialization of
// Algorithm 3.1 -- fractional matching on the complete graph.
//
// The LP  max sum_e x_e  s.t.  sum_{e incident to v} x_e <= 1  (per vertex)
// is the classic packing LP with known optimum k/2 on K_k. We solve it
// three ways and compare:
//   1. approx_packing_lp      -- the scalar width-independent solver,
//   2. approx_packing (dense) -- the same instance embedded as a diagonal
//                                positive SDP (what the paper generalizes),
//   3. the analytic optimum   -- k/2.
// Run:  ./positive_lp [--vertices=10] [--eps=0.1]
#include <iostream>

#include "apps/generators.hpp"
#include "core/optimize.hpp"
#include "core/poslp.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("positive_lp",
                "Fractional matching LP via the width-independent solver");
  auto& vertices = cli.flag<Index>("vertices", 10, "complete-graph vertices");
  auto& eps = cli.flag<Real>("eps", 0.1, "target relative accuracy");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const apps::MatchingLpInstance matching =
      apps::complete_graph_matching_lp(vertices.value);
  std::cout << "Fractional matching on K_" << vertices.value << ": "
            << matching.lp.size() << " edge variables, "
            << matching.lp.rows() << " vertex constraints, analytic OPT = "
            << matching.opt << "\n\n";

  core::OptimizeOptions options;
  options.eps = eps.value;

  // 1. The scalar solver.
  util::WallTimer lp_timer;
  const core::LpOptimum lp_opt =
      core::approx_packing_lp(matching.lp, options);
  const double lp_seconds = lp_timer.seconds();
  std::cout << "scalar LP solver:    OPT in [" << lp_opt.lower << ", "
            << lp_opt.upper << "]  (" << lp_opt.decision_calls
            << " probes, " << lp_opt.total_iterations << " iterations, "
            << lp_seconds << " s)\n";

  // 2. The same LP as a diagonal positive SDP.
  const core::PackingInstance sdp = matching.lp.to_diagonal_sdp();
  util::WallTimer sdp_timer;
  const core::PackingOptimum sdp_opt = core::approx_packing(sdp, options);
  const double sdp_seconds = sdp_timer.seconds();
  std::cout << "diagonal SDP solver: OPT in [" << sdp_opt.lower << ", "
            << sdp_opt.upper << "]  (" << sdp_opt.decision_calls
            << " probes, " << sdp_opt.total_iterations << " iterations, "
            << sdp_seconds << " s)\n\n";

  // 3. Compare against the analytic value.
  const Real opt = matching.opt;
  const bool lp_ok = lp_opt.lower <= opt * (1 + 1e-9) &&
                     lp_opt.upper >= opt * (1 - 1e-9) &&
                     lp_opt.upper <= lp_opt.lower * (1 + eps.value) + 1e-9;
  const bool sdp_ok = sdp_opt.lower <= opt * (1 + 1e-9) &&
                      sdp_opt.upper >= opt * (1 - 1e-9);
  std::cout << "analytic OPT = " << opt << ": scalar bracket "
            << (lp_ok ? "OK" : "FAILED") << ", SDP bracket "
            << (sdp_ok ? "OK" : "FAILED") << "\n";
  std::cout << "matrix-machinery overhead: "
            << (lp_seconds > 0 ? sdp_seconds / lp_seconds : 0)
            << "x wall-clock for the same iterates\n";
  return lp_ok && sdp_ok ? 0 : 1;
}
