// General-purpose solver front end: load an instance file (see
// io/instance_io.hpp for the format), solve it, verify, and report.
//
//   ./solver_cli --input=problem.psdp --kind=packing-dense  [--eps=0.1]
//   ./solver_cli --input=problem.psdp --kind=packing-factorized
//   ./solver_cli --input=problem.psdp --kind=covering
//   ./solver_cli --input=problem.psdp --kind=packing-lp
//
// Batch mode runs a whole job manifest (serve/manifest.hpp format: one
// "<kind> <path> [eps=.. probe=.. ...]" line per job) through the batch
// scheduler, sharing prepared artifacts between jobs on the same instance:
//
//   ./solver_cli --batch=jobs.txt [--lanes=4] [--threads=8]
//
// With --write-example=PATH it instead writes a sample instance of the
// requested kind to PATH, so the round trip can be exercised without any
// other tooling.
#include <iomanip>
#include <iostream>
#include <optional>

#include "apps/beamforming.hpp"
#include "apps/generators.hpp"
#include "core/certificates.hpp"
#include "core/optimize.hpp"
#include "core/poslp.hpp"
#include "io/chunked.hpp"
#include "io/instance_io.hpp"
#include "par/parallel.hpp"
#include "serve/manifest.hpp"
#include "serve/scheduler.hpp"
#include "simd/simd.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"
#include "util/tunables.hpp"

namespace {

using namespace psdp;

/// Kernel-configuration banner: which SIMD backend this process dispatches
/// to (and which were compiled in), plus the sketch-panel precision the
/// factorized solvers will request.
void print_kernel_banner(core::PanelPrecision precision) {
  std::cout << "Kernels: isa " << simd::isa_name(simd::active_isa())
            << " (compiled:";
  for (const simd::Isa isa : simd::compiled_isas()) {
    std::cout << " " << simd::isa_name(isa);
  }
  std::cout << "), sketch panels "
            << core::panel_precision_name(precision) << "\n";
}

int solve_packing_dense(const std::string& path, const core::OptimizeOptions& options) {
  const core::PackingInstance instance = io::load_packing(path);
  std::cout << "Loaded dense packing instance: n = " << instance.size()
            << ", m = " << instance.dim() << "\n";
  util::WallTimer timer;
  const core::PackingOptimum r = core::approx_packing(instance, options);
  std::cout << "OPT in [" << r.lower << ", " << r.upper << "]  ("
            << timer.seconds() << " s, " << r.decision_calls
            << " decision calls)\n";
  const core::DualCheck check = core::check_dual(instance, r.best_x);
  std::cout << "Witness verified: " << std::boolalpha << check.feasible << "\n";
  return check.feasible ? 0 : 1;
}

/// Load a factorized instance from either serialization: chunked container
/// files are sniffed by magic and loaded shard-at-a-time, everything else
/// goes through the text reader. `shards` > 0 requests that constraint
/// partition on the result (overriding a chunked file's stored cuts).
core::FactorizedPackingInstance load_factorized_any(const std::string& path,
                                                    Index shards) {
  if (io::is_chunked_instance_file(path)) {
    return io::load_factorized_chunked(path, {}, shards);
  }
  return io::load_factorized(path, {}, shards);
}

int solve_packing_factorized(const std::string& path,
                             core::OptimizeOptions options,
                             const util::TunableProfileStore* profiles,
                             Index shards) {
  const core::FactorizedPackingInstance instance =
      load_factorized_any(path, shards);
  std::cout << "Loaded factorized packing instance: n = " << instance.size()
            << ", m = " << instance.dim() << ", q = " << instance.total_nnz()
            << ", shards = " << instance.shard_count() << "\n";
  // With --tunables-profile, apply the tuned values recorded for this
  // instance's shape bucket (if any) and re-derive the registry-backed
  // option defaults the caller captured before the profile landed.
  if (profiles != nullptr) {
    const util::ShapeBucket bucket = util::ShapeBucket::of(
        instance.total_nnz(), instance.dim(), instance.size());
    if (profiles->apply(bucket, util::tunables())) {
      std::cout << "Applied tuned profile for shape bucket (2^"
                << bucket.log2_nnz << " nnz, 2^" << bucket.log2_rows
                << " rows, 2^" << bucket.log2_cols << " cols)\n";
      const core::OptimizeOptions fresh;
      options.dot_block_size = fresh.dot_block_size;
      options.decision.dot_options.block_size =
          fresh.decision.dot_options.block_size;
    } else {
      std::cout << "No tuned profile for this shape bucket; defaults kept\n";
    }
  }
  util::WallTimer timer;
  const core::PackingOptimum r = core::approx_packing(instance, options);
  std::cout << "OPT in [" << r.lower << ", " << r.upper << "]  ("
            << timer.seconds() << " s)\n";
  // Full-precision bound echo: 17 significant digits round-trip a double
  // exactly, so diffing this line between runs is a bitwise-objective gate
  // (the CI ooc-smoke job compares shards=1 vs shards=4 with it).
  {
    std::ostringstream bits;
    bits.precision(17);
    bits << "objective-bits: " << r.lower << " " << r.upper;
    std::cout << bits.str() << "\n";
  }
  const core::DualCheck check = core::check_dual(instance, r.best_x);
  std::cout << "Witness verified: " << std::boolalpha << check.feasible << "\n";
  return check.feasible ? 0 : 1;
}

int solve_covering(const std::string& path, const core::OptimizeOptions& options) {
  const core::CoveringProblem problem = io::load_covering(path);
  std::cout << "Loaded covering problem: n = " << problem.size()
            << ", m = " << problem.dim() << "\n";
  util::WallTimer timer;
  const core::CoveringOptimum r = core::approx_covering(problem, options);
  std::cout << "C . Y = " << r.objective << " (certified OPT >= "
            << r.lower_bound << ", " << timer.seconds() << " s)\n";
  Real worst_slack = std::numeric_limits<Real>::infinity();
  for (Index i = 0; i < problem.size(); ++i) {
    worst_slack = std::min(
        worst_slack,
        linalg::frobenius_dot(problem.constraints[static_cast<std::size_t>(i)],
                              r.y) -
            problem.rhs[i]);
  }
  std::cout << "Worst constraint slack: " << worst_slack << "\n";
  return worst_slack >= -1e-6 ? 0 : 1;
}

int solve_packing_lp(const std::string& path,
                     const core::OptimizeOptions& options) {
  const core::PackingLp lp = io::load_lp(path);
  std::cout << "Loaded packing LP: " << lp.rows() << " constraints, "
            << lp.size() << " variables\n";
  util::WallTimer timer;
  const core::LpOptimum r = core::approx_packing_lp(lp, options);
  std::cout << "OPT in [" << r.lower << ", " << r.upper << "]  ("
            << timer.seconds() << " s, " << r.decision_calls
            << " decision calls)\n";
  // Exact feasibility re-check of the witness.
  const linalg::Vector px = linalg::matvec(lp.matrix(), r.best_x);
  bool feasible = true;
  for (Index j = 0; j < px.size(); ++j) feasible &= px[j] <= 1 + 1e-9;
  std::cout << "Witness verified: " << std::boolalpha << feasible << "\n";
  return feasible ? 0 : 1;
}

/// One line per finished job, streamed as the scheduler completes them.
void print_job_line(const serve::JobResult& r) {
  std::ostringstream line;
  line << "[" << (r.ok ? "ok" : "FAILED") << "] " << r.label << " ("
       << serve::job_kind_name(r.kind) << ", "
       << (r.lane >= 0 ? "lane " + std::to_string(r.lane) : std::string("wide"))
       << (r.cache_hit ? ", cached" : "") << ") "
       << std::setprecision(4) << r.run_seconds << " s run + "
       << r.queue_seconds << " s queued";
  if (r.deadline_ms.has_value()) {
    line << (r.deadline_met ? "  [deadline met]" : "  [deadline MISSED]");
  }
  if (r.preemptions > 0) line << "  [preempted x" << r.preemptions << "]";
  if (r.promoted) line << "  [widened]";
  if (r.ok) {
    switch (r.kind) {
      case serve::JobKind::kPackingDense:
      case serve::JobKind::kPackingFactorized:
        line << "  OPT in [" << r.packing.lower << ", " << r.packing.upper
             << "]";
        break;
      case serve::JobKind::kCovering:
        line << "  C.Y = " << r.covering.objective
             << " (OPT >= " << r.covering.lower_bound << ")";
        break;
      case serve::JobKind::kPackingLp:
        line << "  OPT in [" << r.lp.lower << ", " << r.lp.upper << "]";
        break;
    }
  } else {
    line << "  " << r.error;
  }
  line << "\n";
  // One insertion, newline included: job lines may arrive from
  // concurrent lanes and must not interleave.
  std::cout << line.str();
}

int run_batch(const std::string& manifest, std::optional<int> lanes) {
  // Order matters: load_manifest applies any `set key=value` tunable
  // overrides as it reads, and SchedulerOptions is constructed after, so
  // its registry-backed defaults (lanes, wide_work, cache sizing) see
  // them. An explicit --lanes flag still wins over everything.
  serve::SolveBatch batch = serve::load_manifest(manifest);
  serve::SchedulerOptions options;
  if (lanes.has_value()) options.lanes = *lanes;
  for (auto& job : batch.jobs()) job.on_complete = print_job_line;
  serve::BatchScheduler scheduler(options);

  std::cout << "Running " << batch.size() << " jobs over "
            << par::num_threads() << " threads...\n";
  util::WallTimer timer;
  const std::vector<serve::JobResult> results = scheduler.run(batch);
  const double seconds = timer.seconds();

  std::size_t failed = 0;
  for (const serve::JobResult& r : results) failed += r.ok ? 0 : 1;
  const serve::ArtifactCache::Stats stats = scheduler.cache().stats();
  std::cout << "Batch done: " << results.size() - failed << "/"
            << results.size() << " jobs in " << std::setprecision(4) << seconds
            << " s (" << static_cast<double>(results.size()) / seconds
            << " jobs/s); cache " << stats.hits << " hits / " << stats.misses
            << " misses / " << stats.evictions << " evictions, "
            << stats.workspace_reuses << " workspace reuses\n";
  const serve::SchedulerStats sched = scheduler.stats();
  std::cout << "Scheduler: " << sched.preemptions << " preemptions, "
            << sched.promotions << " promotions, " << sched.demotions
            << " demotions, " << sched.shed << " shed, peak queue "
            << sched.peak_queue << ", " << sched.deadline_misses
            << " deadline misses\n";
  return failed == 0 ? 0 : 1;
}

void write_example(const std::string& path, const std::string& kind) {
  if (kind == "packing-dense") {
    apps::EllipseOptions gen;
    gen.n = 12;
    gen.m = 6;
    io::save_packing(path, apps::random_ellipses(gen));
  } else if (kind == "packing-factorized") {
    apps::FactorizedOptions gen;
    gen.n = 12;
    gen.m = 24;
    gen.nnz_per_column = 4;
    io::save_factorized(path, apps::random_factorized(gen));
  } else if (kind == "packing-lp") {
    io::save_lp(path, apps::complete_graph_matching_lp(8).lp);
  } else if (kind == "covering") {
    apps::BeamformingOptions gen;
    gen.users = 8;
    gen.antennas = 5;
    io::save_covering(path, apps::beamforming_problem(gen));
  } else {
    throw InvalidArgument(str("unknown kind '", kind, "'"));
  }
  std::cout << "Wrote sample " << kind << " instance to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("solver_cli", "Solve a positive SDP instance from a file");
  auto& input = cli.flag<std::string>("input", "", "instance file to solve");
  auto& kind = cli.flag<std::string>(
      "kind", "packing-dense",
      "packing-dense | packing-factorized | covering | packing-lp");
  auto& eps = cli.flag<Real>("eps", 0.1, "target relative accuracy");
  auto& example = cli.flag<std::string>(
      "write-example", "", "write a sample instance here and exit");
  auto& batch = cli.flag<std::string>(
      "batch", "", "job manifest to run through the batch scheduler");
  auto& shards = cli.flag<int>(
      "shards", 0,
      "packing-factorized: constraint shard count for the out-of-core "
      "oracle sweep (0 = keep the file's partition, 1 = unsharded)");
  auto& write_chunked = cli.flag<std::string>(
      "write-chunked", "",
      "convert --input (factorized, text or chunked) to the chunked binary "
      "format at this path, cut into --shards blocks, and exit");
  auto& lanes = cli.flag<int>(
      "lanes", 0, "batch mode: concurrent job lanes (0 = auto)");
  auto& threads = cli.flag<int>(
      "threads", 0, "thread-pool width (0 = hardware default)");
  auto& panel_precision = cli.flag<std::string>(
      "panel-precision", "double",
      "sketch/Taylor panel precision: double | float32 (float32 engages "
      "only on the blocked fused path at eps above the certificate gate)");
  auto& profile_path = cli.flag<std::string>(
      "tunables-profile", "",
      "per-shape tuned profile JSON (from bench_load --profile-out); the "
      "bucket matching the loaded factorized instance is applied");
  util::add_tunable_flags(cli);  // --tune-<knob> for every registry entry
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (cli.help_requested()) return 0;

  try {
    if (threads.value > 0) par::set_num_threads(threads.value);
    core::PanelPrecision precision = core::PanelPrecision::kDouble;
    if (panel_precision.value == "float32") {
      precision = core::PanelPrecision::kFloat32;
    } else {
      PSDP_CHECK(panel_precision.value == "double",
                 str("unknown --panel-precision '", panel_precision.value,
                     "' (double | float32)"));
    }
    if (!example.value.empty()) {
      write_example(example.value, kind.value);
      return 0;
    }
    if (!write_chunked.value.empty()) {
      PSDP_CHECK(!input.value.empty(), "--write-chunked needs --input");
      const core::FactorizedPackingInstance instance =
          load_factorized_any(input.value, shards.value);
      io::save_factorized_chunked(write_chunked.value, instance);
      std::cout << "Wrote chunked instance (" << instance.shard_count()
                << " shards, " << instance.total_nnz() << " nnz) to "
                << write_chunked.value << "\n";
      return 0;
    }
    std::optional<util::TunableProfileStore> profiles;
    if (!profile_path.value.empty()) {
      profiles = util::TunableProfileStore::load(profile_path.value);
      std::cout << "Loaded tuned profiles: " << profiles->size()
                << " shape buckets\n";
    }
    print_kernel_banner(precision);
    if (!batch.value.empty()) {
      return run_batch(batch.value, lanes.set
                                        ? std::optional<int>(lanes.value)
                                        : std::nullopt);
    }
    PSDP_CHECK(!input.value.empty(),
               "--input is required (or --write-example / --batch)");
    core::OptimizeOptions options;
    options.eps = eps.value;
    options.decision.dot_options.panel_precision = precision;
    if (kind.value == "packing-dense") {
      return solve_packing_dense(input.value, options);
    }
    if (kind.value == "packing-factorized") {
      return solve_packing_factorized(input.value, options,
                                      profiles ? &*profiles : nullptr,
                                      shards.value);
    }
    if (kind.value == "covering") {
      return solve_covering(input.value, options);
    }
    if (kind.value == "packing-lp") {
      return solve_packing_lp(input.value, options);
    }
    throw psdp::InvalidArgument(psdp::str("unknown kind '", kind.value, "'"));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
