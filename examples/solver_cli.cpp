// General-purpose solver front end: load an instance file (see
// io/instance_io.hpp for the format), solve it, verify, and report.
//
//   ./solver_cli --input=problem.psdp --kind=packing-dense  [--eps=0.1]
//   ./solver_cli --input=problem.psdp --kind=packing-factorized
//   ./solver_cli --input=problem.psdp --kind=covering
//   ./solver_cli --input=problem.psdp --kind=packing-lp
//
// With --write-example=PATH it instead writes a sample instance of the
// requested kind to PATH, so the round trip can be exercised without any
// other tooling.
#include <iostream>

#include "apps/beamforming.hpp"
#include "apps/generators.hpp"
#include "core/certificates.hpp"
#include "core/optimize.hpp"
#include "core/poslp.hpp"
#include "io/instance_io.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace psdp;

int solve_packing_dense(const std::string& path, const core::OptimizeOptions& options) {
  const core::PackingInstance instance = io::load_packing(path);
  std::cout << "Loaded dense packing instance: n = " << instance.size()
            << ", m = " << instance.dim() << "\n";
  util::WallTimer timer;
  const core::PackingOptimum r = core::approx_packing(instance, options);
  std::cout << "OPT in [" << r.lower << ", " << r.upper << "]  ("
            << timer.seconds() << " s, " << r.decision_calls
            << " decision calls)\n";
  const core::DualCheck check = core::check_dual(instance, r.best_x);
  std::cout << "Witness verified: " << std::boolalpha << check.feasible << "\n";
  return check.feasible ? 0 : 1;
}

int solve_packing_factorized(const std::string& path,
                             const core::OptimizeOptions& options) {
  const core::FactorizedPackingInstance instance = io::load_factorized(path);
  std::cout << "Loaded factorized packing instance: n = " << instance.size()
            << ", m = " << instance.dim() << ", q = " << instance.total_nnz()
            << "\n";
  util::WallTimer timer;
  const core::PackingOptimum r = core::approx_packing(instance, options);
  std::cout << "OPT in [" << r.lower << ", " << r.upper << "]  ("
            << timer.seconds() << " s)\n";
  const core::DualCheck check = core::check_dual(instance, r.best_x);
  std::cout << "Witness verified: " << std::boolalpha << check.feasible << "\n";
  return check.feasible ? 0 : 1;
}

int solve_covering(const std::string& path, const core::OptimizeOptions& options) {
  const core::CoveringProblem problem = io::load_covering(path);
  std::cout << "Loaded covering problem: n = " << problem.size()
            << ", m = " << problem.dim() << "\n";
  util::WallTimer timer;
  const core::CoveringOptimum r = core::approx_covering(problem, options);
  std::cout << "C . Y = " << r.objective << " (certified OPT >= "
            << r.lower_bound << ", " << timer.seconds() << " s)\n";
  Real worst_slack = std::numeric_limits<Real>::infinity();
  for (Index i = 0; i < problem.size(); ++i) {
    worst_slack = std::min(
        worst_slack,
        linalg::frobenius_dot(problem.constraints[static_cast<std::size_t>(i)],
                              r.y) -
            problem.rhs[i]);
  }
  std::cout << "Worst constraint slack: " << worst_slack << "\n";
  return worst_slack >= -1e-6 ? 0 : 1;
}

int solve_packing_lp(const std::string& path,
                     const core::OptimizeOptions& options) {
  const core::PackingLp lp = io::load_lp(path);
  std::cout << "Loaded packing LP: " << lp.rows() << " constraints, "
            << lp.size() << " variables\n";
  util::WallTimer timer;
  const core::LpOptimum r = core::approx_packing_lp(lp, options);
  std::cout << "OPT in [" << r.lower << ", " << r.upper << "]  ("
            << timer.seconds() << " s, " << r.decision_calls
            << " decision calls)\n";
  // Exact feasibility re-check of the witness.
  const linalg::Vector px = linalg::matvec(lp.matrix(), r.best_x);
  bool feasible = true;
  for (Index j = 0; j < px.size(); ++j) feasible &= px[j] <= 1 + 1e-9;
  std::cout << "Witness verified: " << std::boolalpha << feasible << "\n";
  return feasible ? 0 : 1;
}

void write_example(const std::string& path, const std::string& kind) {
  if (kind == "packing-dense") {
    apps::EllipseOptions gen;
    gen.n = 12;
    gen.m = 6;
    io::save_packing(path, apps::random_ellipses(gen));
  } else if (kind == "packing-factorized") {
    apps::FactorizedOptions gen;
    gen.n = 12;
    gen.m = 24;
    gen.nnz_per_column = 4;
    io::save_factorized(path, apps::random_factorized(gen));
  } else if (kind == "packing-lp") {
    io::save_lp(path, apps::complete_graph_matching_lp(8).lp);
  } else if (kind == "covering") {
    apps::BeamformingOptions gen;
    gen.users = 8;
    gen.antennas = 5;
    io::save_covering(path, apps::beamforming_problem(gen));
  } else {
    throw InvalidArgument(str("unknown kind '", kind, "'"));
  }
  std::cout << "Wrote sample " << kind << " instance to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("solver_cli", "Solve a positive SDP instance from a file");
  auto& input = cli.flag<std::string>("input", "", "instance file to solve");
  auto& kind = cli.flag<std::string>(
      "kind", "packing-dense",
      "packing-dense | packing-factorized | covering | packing-lp");
  auto& eps = cli.flag<Real>("eps", 0.1, "target relative accuracy");
  auto& example = cli.flag<std::string>(
      "write-example", "", "write a sample instance here and exit");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  try {
    if (!example.value.empty()) {
      write_example(example.value, kind.value);
      return 0;
    }
    PSDP_CHECK(!input.value.empty(), "--input is required (or --write-example)");
    core::OptimizeOptions options;
    options.eps = eps.value;
    if (kind.value == "packing-dense") {
      return solve_packing_dense(input.value, options);
    }
    if (kind.value == "packing-factorized") {
      return solve_packing_factorized(input.value, options);
    }
    if (kind.value == "covering") {
      return solve_covering(input.value, options);
    }
    if (kind.value == "packing-lp") {
      return solve_packing_lp(input.value, options);
    }
    throw psdp::InvalidArgument(psdp::str("unknown kind '", kind.value, "'"));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
