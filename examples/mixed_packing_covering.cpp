// Mixed packing/covering positive SDPs -- the extension the paper's
// Section 5 poses as future work (and [JY12] studied concurrently):
// matrix packing constraints plus diagonal covering constraints.
//
// Story: a spectrum-allocation toy. n transmitters each have an
// interference footprint A_i (PSD, must sum to at most the interference
// budget I) and a service profile d_i over l districts (each district
// needs total service >= 1). Find transmit powers x that serve every
// district without exceeding the interference budget.
//
// With --factorized=1 the same story runs through the oracle layer's
// sketched bigDotExp pipeline: each rank-one footprint u u^T is kept in
// factorized form and the solver never builds an m x m matrix, which is
// the mode that scales to large m (try --factorized=1 --m=400).
//
// Run:  ./mixed_packing_covering [--n=12 --m=6 --districts=4 --eps=0.2]
//                                [--factorized=1]
#include <cmath>
#include <iostream>

#include "core/certificates.hpp"
#include "core/mixed.hpp"
#include "linalg/eig.hpp"
#include "rand/rng.hpp"
#include "sparse/factorized.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psdp;
  using linalg::Matrix;
  using linalg::Vector;

  util::Cli cli("mixed_packing_covering",
                "Section-5 extension: matrix packing + diagonal covering");
  auto& n = cli.flag<Index>("n", 12, "transmitters");
  auto& m = cli.flag<Index>("m", 6, "interference dimension");
  auto& districts = cli.flag<Index>("districts", 4, "covering coordinates");
  auto& eps = cli.flag<Real>("eps", 0.2, "accuracy parameter");
  auto& seed = cli.flag<Index>("seed", 4, "instance seed");
  auto& factorized = cli.flag<bool>(
      "factorized", false,
      "solve on the sketched bigDotExp oracle (never forms an m x m matrix)");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  // Interference footprints: random low-rank PSD; service profiles:
  // random non-negative, normalized so a uniform allocation would cover
  // each district ~2x while packing to ~1/2 (comfortably feasible).
  rand::Rng rng(static_cast<std::uint64_t>(seed.value));
  std::vector<Vector> footprints;  // the u_i of A_i = u_i u_i^T
  std::vector<Vector> covering;
  Matrix pack_sum(m.value, m.value);
  Vector cover_sum(districts.value);
  for (Index i = 0; i < n.value; ++i) {
    Vector u(m.value);
    for (Index j = 0; j < m.value; ++j) u[j] = rng.normal();
    Matrix a = Matrix::outer(u);
    a.symmetrize();
    pack_sum.add_scaled(a, 1.0 / static_cast<Real>(n.value));
    footprints.push_back(std::move(u));
    Vector d(districts.value);
    for (Index j = 0; j < districts.value; ++j) d[j] = rng.uniform(0.1, 1.0);
    covering.push_back(d);
    cover_sum.add_scaled(d, 1.0 / static_cast<Real>(n.value));
  }
  const Real lambda = linalg::lambda_max_exact(pack_sum);
  // A_i -> (0.5/lambda) A_i, i.e. u_i -> sqrt(0.5/lambda) u_i.
  for (Vector& u : footprints) u.scale(std::sqrt(0.5 / lambda));
  for (auto& d : covering) {
    for (Index j = 0; j < districts.value; ++j) d[j] *= 2.0 / cover_sum[j];
  }

  std::cout << "Mixed instance: " << n.value << " transmitters, "
            << m.value << "-dim interference, " << districts.value
            << " districts" << (factorized.value ? " (factorized oracle)" : "")
            << "\n";

  // Keep the dense instance for certificate checking (and the dense solve);
  // the factorized one shares the same footprints without ever forming
  // u u^T inside the solver.
  std::vector<Matrix> packing;
  for (const Vector& u : footprints) {
    Matrix a = Matrix::outer(u);
    a.symmetrize();
    packing.push_back(std::move(a));
  }
  core::MixedInstance instance;
  instance.packing = core::PackingInstance(std::move(packing));
  instance.covering = covering;

  core::MixedResult r;
  if (factorized.value) {
    core::MixedFactorizedInstance fact;
    std::vector<sparse::FactorizedPsd> items;
    for (const Vector& u : footprints) {
      items.push_back(sparse::FactorizedPsd::rank_one(u));
    }
    fact.packing = core::FactorizedPackingInstance(
        sparse::FactorizedSet(std::move(items)));
    fact.covering = covering;
    core::MixedFactorizedOptions options;
    options.eps = eps.value;
    r = core::solve_mixed(fact, options);
  } else {
    core::MixedOptions options;
    options.eps = eps.value;
    r = core::solve_mixed(instance, options);
  }

  std::cout << "Outcome: "
            << (r.outcome == core::MixedOutcome::kFeasible ? "FEASIBLE"
                                                           : "exhausted")
            << " after " << r.iterations << " iterations\n"
            << "Packing  lambda_max(sum x_i A_i) = " << r.packing_lambda_max
            << " (must be <= 1)\n"
            << "Covering min_j coverage          = " << r.min_coverage
            << " (target 1, accepted at >= " << 1 - eps.value << ")\n\n";

  // Independent verification, as always.
  const core::DualCheck pack = core::check_dual(instance.packing, r.x);
  Vector coverage(districts.value);
  for (Index i = 0; i < instance.size(); ++i) {
    coverage.add_scaled(instance.covering[static_cast<std::size_t>(i)], r.x[i]);
  }
  util::Table table({"district", "coverage"});
  for (Index j = 0; j < districts.value; ++j) {
    table.add_row({util::Table::cell(j), util::Table::cell(coverage[j], 4)});
  }
  table.print();
  std::cout << "Packing verified feasible: " << std::boolalpha << pack.feasible
            << " (lambda_max = " << pack.lambda_max << ")\n";
  return r.outcome == core::MixedOutcome::kFeasible && pack.feasible ? 0 : 1;
}
