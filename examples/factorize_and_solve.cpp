// The paper's preprocessing pipeline end to end: a *dense* positive SDP is
// factored into the prefactored form A_i = Q_i Q_i^T (pivoted Cholesky,
// rank-revealing) and handed to the nearly-linear-work solver of
// Theorem 4.1 / Corollary 1.2; the dense reference path runs alongside for
// comparison.
//
// The workload is a set of random low-rank ellipsoids, so the factors come
// out r columns wide (r << m) and the factorized path works on
// q = O(n r m) numbers instead of n dense m x m matrices.
// Run:  ./factorize_and_solve [--n=16] [--m=16] [--rank=2] [--eps=0.25]
#include <iostream>

#include "apps/generators.hpp"
#include "core/certificates.hpp"
#include "core/factorize.hpp"
#include "core/optimize.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("factorize_and_solve",
                "Dense positive SDP -> pivoted-Cholesky factors -> "
                "nearly-linear-work solver");
  auto& n = cli.flag<Index>("n", 16, "number of constraints");
  auto& m = cli.flag<Index>("m", 16, "matrix dimension");
  auto& rank = cli.flag<Index>("rank", 2, "rank of each constraint");
  auto& eps = cli.flag<Real>("eps", 0.25, "target relative accuracy");
  auto& decision_eps = cli.flag<Real>(
      "decision-eps", 0.15,
      "eps per decision probe (coarser = much faster factorized probes)");
  auto& seed = cli.flag<Index>("seed", 2012, "instance seed");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const core::PackingInstance dense_instance = apps::random_ellipses(
      {.n = n.value, .m = m.value, .rank = rank.value,
       .seed = static_cast<std::uint64_t>(seed.value)});
  std::cout << "Dense instance: n = " << n.value << ", m = " << m.value
            << ", rank " << rank.value << " per constraint ("
            << n.value * m.value * m.value << " dense entries)\n";

  // --- Preprocessing: factor every A_i (the paper's "parallel QR" step,
  // here rank-revealing pivoted Cholesky). ---
  util::WallTimer factor_timer;
  core::FactorizeReport report;
  const core::FactorizedPackingInstance factorized =
      core::factorize(dense_instance, {}, &report);
  std::cout << "Factorization: q = " << report.total_nnz
            << " factor nonzeros, max rank " << report.max_rank
            << ", max residual " << report.max_residual_rel << " ("
            << factor_timer.seconds() << " s)\n\n";

  core::OptimizeOptions options;
  options.eps = eps.value;
  options.decision_eps = decision_eps.value;

  util::WallTimer dense_timer;
  const core::PackingOptimum dense_opt =
      core::approx_packing(dense_instance, options);
  const double dense_seconds = dense_timer.seconds();
  std::cout << "dense path:      OPT in [" << dense_opt.lower << ", "
            << dense_opt.upper << "]  (" << dense_seconds << " s)\n";

  util::WallTimer fact_timer;
  const core::PackingOptimum fact_opt =
      core::approx_packing(factorized, options);
  const double fact_seconds = fact_timer.seconds();
  std::cout << "factorized path: OPT in [" << fact_opt.lower << ", "
            << fact_opt.upper << "]  (" << fact_seconds << " s)\n\n";

  // The two brackets must overlap (they bound the same optimum), and both
  // duals must verify against the exact certificate checker.
  const bool overlap = fact_opt.lower <= dense_opt.upper * (1 + 1e-9) &&
                       dense_opt.lower <= fact_opt.upper * (1 + 1e-9);
  const core::DualCheck dense_check =
      core::check_dual(dense_instance, dense_opt.best_x);
  const core::DualCheck fact_check =
      core::check_dual(dense_instance, fact_opt.best_x);
  std::cout << "bracket overlap: " << (overlap ? "OK" : "FAILED")
            << "; dense dual feasible = " << std::boolalpha
            << dense_check.feasible
            << ", factorized dual feasible = " << fact_check.feasible << "\n";
  return overlap && dense_check.feasible && fact_check.feasible ? 0 : 1;
}
