// The paper's Figure 1 intuition, animated: how many copies of a set of
// ellipses fit (fractionally) inside the unit ball?
//
// For the 3-ellipse Figure-1 instance we sweep the decision threshold and
// show where decisionPSDP flips from "dual" (they fit) to "primal" (they
// do not), printing the per-iteration trajectory of the algorithm at the
// critical scale. This is the ellipse-packing story of Section 1.2 made
// concrete.
//
// Run:  ./ellipse_packing [--eps=0.15]
#include <iomanip>
#include <iostream>

#include "apps/generators.hpp"
#include "core/decision.hpp"
#include "core/optimize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("ellipse_packing", "Figure-1 ellipse packing walkthrough");
  auto& eps = cli.flag<Real>("eps", 0.15, "algorithm accuracy parameter");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const core::PackingInstance fig1 = apps::figure1_instance();
  std::cout << "Figure-1 ellipses (2x2 PSD matrices):\n";
  const char* names[] = {"A1 (axis-aligned)", "A2 (axis-aligned)",
                         "A3 (rotated 45 deg)"};
  for (Index i = 0; i < 3; ++i) {
    const auto& a = fig1[i];
    std::cout << "  " << names[i] << ": [[" << a(0, 0) << ", " << a(0, 1)
              << "], [" << a(1, 0) << ", " << a(1, 1) << "]]\n";
  }

  // First, where is the packing optimum?
  core::OptimizeOptions opt_options;
  opt_options.eps = 0.05;
  const core::PackingOptimum opt = core::approx_packing(fig1, opt_options);
  std::cout << "\nPacking optimum bracket: [" << opt.lower << ", " << opt.upper
            << "]  (how much total ellipse mass fits in the unit ball)\n";

  // Sweep the decision threshold across the optimum: the scaled instance
  // {v A_i} asks "does a (1/v)-fraction fit?".
  std::cout << "\nDecision sweep (scale v asks: is OPT >= 1/v ... roughly):\n";
  util::Table table({"scale v", "outcome", "iterations", "||x||_1 at exit"});
  core::DecisionOptions options;
  options.eps = eps.value;
  for (Real v : {0.25, 0.4, opt.lower, opt.upper, 4.0, 8.0}) {
    const core::DecisionResult r = core::decision_dense(fig1.scaled(v), options);
    table.add_row(
        {util::Table::cell(v, 4),
         r.outcome == core::DecisionOutcome::kDual ? "dual (fits)"
                                                   : "primal (does not)",
         util::Table::cell(r.iterations),
         util::Table::cell(linalg::sum(r.dual_x) * r.constants.spectrum_bound,
                           4)});
  }
  table.print();

  // Show the multiplicative-weights trajectory at the critical scale.
  std::cout << "\nTrajectory at the critical scale v = " << opt.upper << ":\n";
  options.track_trajectory = true;
  const core::DecisionResult r =
      core::decision_dense(fig1.scaled(opt.upper), options);
  util::Table traj({"t", "||x||_1", "Tr W", "|B|", "lambda_max(Psi)"});
  const std::size_t stride = std::max<std::size_t>(1, r.trajectory.size() / 12);
  for (std::size_t k = 0; k < r.trajectory.size(); k += stride) {
    const auto& s = r.trajectory[k];
    traj.add_row({util::Table::cell(s.t), util::Table::cell(s.x_norm1, 4),
                  util::Table::cell(s.trace_w, 4), util::Table::cell(s.updated),
                  util::Table::cell(s.lambda_max_psi, 4)});
  }
  traj.print();
  std::cout << "Lemma 3.2 spectrum bound (never exceeded): "
            << r.constants.spectrum_bound << "\n";
  return 0;
}
