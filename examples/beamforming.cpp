// Downlink beamforming power minimization -- the application the paper's
// Section 5 singles out as fully inside the packing/covering framework
// (the [IPS10] beamforming relaxation).
//
// A base station with m antennas must deliver received power >= demand to
// each of n users over Rayleigh-fading channels h_i, minimizing total
// transmit power Tr[Y]:
//
//     min Tr[Y]   s.t.  (h_i h_i^T) . Y >= demand,  Y >= 0.
//
// Run:  ./beamforming [--users=16 --antennas=8 --spread=10 --eps=0.15]
#include <iostream>

#include "apps/beamforming.hpp"
#include "core/optimize.hpp"
#include "linalg/eig.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("beamforming", "Min-power beamforming covering SDP");
  auto& users = cli.flag<Index>("users", 16, "number of users (n)");
  auto& antennas = cli.flag<Index>("antennas", 8, "number of antennas (m)");
  auto& spread = cli.flag<Real>("spread", 10.0, "near/far path-loss spread");
  auto& eps = cli.flag<Real>("eps", 0.15, "target relative accuracy");
  auto& seed = cli.flag<Index>("seed", 2012, "channel seed");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  apps::BeamformingOptions gen;
  gen.users = users.value;
  gen.antennas = antennas.value;
  gen.spread = spread.value;
  gen.seed = static_cast<std::uint64_t>(seed.value);
  const core::CoveringProblem problem = apps::beamforming_problem(gen);

  std::cout << "Beamforming: " << gen.users << " users, " << gen.antennas
            << " antennas, path-loss spread " << gen.spread << "\n";

  core::OptimizeOptions options;
  options.eps = eps.value;
  const core::CoveringOptimum result = core::approx_covering(problem, options);

  std::cout << "Total transmit power Tr[Y] = " << result.objective
            << "   (certified OPT >= " << result.lower_bound << ", gap "
            << result.objective / result.lower_bound << "x)\n";

  // Per-user delivered power report.
  util::Table table({"user", "delivered", "demand", "slack"});
  for (Index i = 0; i < problem.size(); ++i) {
    const Real delivered = linalg::frobenius_dot(
        problem.constraints[static_cast<std::size_t>(i)], result.y);
    table.add_row({util::Table::cell(i), util::Table::cell(delivered),
                   util::Table::cell(problem.rhs[i]),
                   util::Table::cell(delivered - problem.rhs[i])});
  }
  table.print();

  // The transmit covariance's effective rank tells how many beams are used.
  const auto eig = linalg::jacobi_eig(result.y);
  Index beams = 0;
  for (Index i = 0; i < gen.antennas; ++i) {
    if (eig.eigenvalues[i] > 1e-6 * eig.eigenvalues[0]) ++beams;
  }
  std::cout << "Effective number of beams (rank of Y): " << beams << "\n";
  return 0;
}
