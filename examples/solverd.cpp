// The solverd daemon front end: serve the batch scheduler over a socket.
//
//   ./solverd --socket=unix:/tmp/solverd.sock [--threads=8] [--lanes=4]
//   ./solverd --socket=tcp:127.0.0.1:7411 --max-queue=64 --admission=shed-lowest
//
// Clients connect and speak the framed protocol of docs/SOLVERD.md: submit
// manifest job lines (serve/manifest.hpp format, priority=/deadline-ms=
// and `set` lines included), receive one result frame per job as the
// scheduler finishes it, and a final done frame after a goodbye. All
// connections share one warm ArtifactCache, so repeat jobs on an instance
// skip its preparation entirely.
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs finish, their results
// flush to the clients that asked, every session gets its done frame, and
// the process exits 0. --connections=N serves exactly N sessions and then
// drains -- the deterministic-exit mode CI's smoke test uses.
#include <cerrno>
#include <csignal>
#include <iostream>
#include <thread>

#include <unistd.h>

#include "par/parallel.hpp"
#include "serve/solverd.hpp"
#include "util/cli.hpp"
#include "util/tunables.hpp"

namespace {

using namespace psdp;

// Self-pipe: the signal handler may only do async-signal-safe work, so it
// writes one byte; a watcher thread turns that into Solverd::stop().
int g_signal_pipe[2] = {-1, -1};

extern "C" void handle_signal(int) {
  const char byte = 's';
  // The return value is irrelevant: either the watcher wakes, or we are
  // already shutting down and the pipe is gone.
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("solverd", "Serve the batch solve scheduler over a socket");
  auto& socket = cli.flag<std::string>(
      "socket", "unix:solverd.sock",
      "endpoint: unix:/path/to.sock | tcp:host:port | bare unix path");
  auto& threads = cli.flag<int>(
      "threads", 0,
      "thread-pool width (0 = hardware default). Results are bitwise "
      "functions of this width: match the client's reference width");
  auto& lanes = cli.flag<int>("lanes", 0, "scheduler lanes (0 = auto)");
  auto& max_queue = cli.flag<int>(
      "max-queue", 0, "admission bound on waiting jobs (0 = unbounded)");
  auto& admission = cli.flag<std::string>(
      "admission", "reject",
      "full-queue policy: reject (shed the arrival) | shed-lowest");
  auto& connections = cli.flag<int>(
      "connections", 0, "serve exactly N sessions then drain (0 = forever)");
  auto& max_frame = cli.flag<Index>(
      "max-frame-bytes", static_cast<Index>(serve::FrameLimits{}.max_payload),
      "largest accepted request frame payload");
  auto& allow_set = cli.flag<bool>(
      "allow-set", true,
      "honor `set key=value` tunable lines from clients");
  util::add_tunable_flags(cli);
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (cli.help_requested()) return 0;

  try {
    if (threads.value > 0) par::set_num_threads(threads.value);

    serve::SolverdOptions options;
    options.lanes = lanes.value;
    options.scheduler.max_queue = static_cast<std::size_t>(
        max_queue.value > 0 ? max_queue.value : 0);
    if (admission.value == "reject") {
      options.scheduler.admission = serve::AdmissionPolicy::kReject;
    } else if (admission.value == "shed-lowest") {
      options.scheduler.admission = serve::AdmissionPolicy::kShedLowest;
    } else {
      throw InvalidArgument(str("unknown --admission '", admission.value,
                                "' (reject | shed-lowest)"));
    }
    options.max_connections = connections.value;
    PSDP_CHECK(max_frame.value > 0, "--max-frame-bytes must be positive");
    options.max_frame_bytes = static_cast<std::size_t>(max_frame.value);
    options.apply_set_lines = allow_set.value;

    serve::SocketListener listener(socket.value);
    serve::Solverd daemon(listener, options);

    PSDP_CHECK(::pipe(g_signal_pipe) == 0, "solverd: cannot create pipe");
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::thread watcher([&daemon] {
      char byte = 0;
      while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      daemon.stop();
    });

    std::cout << "solverd: listening on " << listener.name() << " ("
              << par::num_threads() << " threads)" << std::endl;
    daemon.serve();

    // Unblock the watcher if no signal arrived (e.g. --connections ran
    // out), then report and exit cleanly.
    handle_signal(0);
    watcher.join();
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);

    const serve::SolverdStats stats = daemon.stats();
    std::cout << "solverd: drained. " << stats.connections
              << " connections, " << stats.jobs << " jobs, "
              << stats.results << " results, " << stats.backpressure
              << " backpressure, " << stats.parse_errors
              << " parse errors, " << stats.protocol_errors
              << " protocol errors, " << stats.write_failures
              << " write failures\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
