// Graph edge-covering SDP: find a PSD matrix Y of minimum trace in which
// every edge of a graph sees at least unit energy,
//
//     min Tr[Y]   s.t.  w_e (chi_u - chi_v)(chi_u - chi_v)^T . Y >= 1.
//
// Every constraint is a rank-one Laplacian term, so this exercises the
// factorized (nearly-linear-work) path with q = 2|E| factor nonzeros, and
// the dense path for cross-checking.
//
// Run:  ./graph_covering [--vertices=12 --extra-edges=10 --eps=0.2]
#include <iostream>

#include "apps/graph.hpp"
#include "core/certificates.hpp"
#include "core/decision.hpp"
#include "core/optimize.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdp;

  util::Cli cli("graph_covering", "Edge-covering SDP on a random graph");
  auto& vertices = cli.flag<Index>("vertices", 12, "number of vertices");
  auto& extra = cli.flag<Index>("extra-edges", 10, "chords beyond the path");
  auto& eps = cli.flag<Real>("eps", 0.2, "target relative accuracy");
  auto& seed = cli.flag<Index>("seed", 17, "graph seed");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const apps::Graph g = apps::random_connected_graph(
      vertices.value, extra.value, 0.5, 2.0,
      static_cast<std::uint64_t>(seed.value));
  std::cout << "Graph: " << g.vertices << " vertices, " << g.edges.size()
            << " edges\n";

  // Dense covering pipeline (normalization is trivial: C = I).
  const core::CoveringProblem problem = apps::edge_covering_problem(g);
  core::OptimizeOptions options;
  options.eps = eps.value;
  const core::CoveringOptimum cover = core::approx_covering(problem, options);
  std::cout << "Covering optimum: Tr[Y] = " << cover.objective
            << " (certified >= " << cover.lower_bound << ")\n";

  Real worst = std::numeric_limits<Real>::infinity();
  for (Index e = 0; e < problem.size(); ++e) {
    worst = std::min(worst, linalg::frobenius_dot(
                                problem.constraints[static_cast<std::size_t>(e)],
                                cover.y));
  }
  std::cout << "Least-covered edge sees " << worst << " (demand 1)\n";

  // The same constraints through the factorized packing solver: the dual
  // program max 1^T x s.t. sum_e x_e L_e <= I is an edge-weighting problem.
  const core::FactorizedPackingInstance fact = apps::edge_packing_factorized(g);
  std::cout << "\nFactorized dual (q = " << fact.total_nnz()
            << " factor nonzeros):\n";
  const core::PackingOptimum packing = core::approx_packing(fact, options);
  std::cout << "Packing bracket: " << packing.lower << " <= OPT <= "
            << packing.upper << "\n";
  const core::DualCheck check = core::check_dual(fact, packing.best_x);
  std::cout << "Edge weighting feasible = " << std::boolalpha << check.feasible
            << ", lambda_max = " << check.lambda_max << "\n";
  return check.feasible && worst >= 1 - 1e-6 ? 0 : 1;
}
