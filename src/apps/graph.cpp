#include "apps/graph.hpp"

#include <cmath>

#include "rand/rng.hpp"

namespace psdp::apps {

using linalg::Matrix;
using linalg::Vector;

Graph random_connected_graph(Index vertices, Index extra_edges, Real w_min,
                             Real w_max, std::uint64_t seed) {
  PSDP_CHECK(vertices >= 2, "graph needs at least two vertices");
  PSDP_CHECK(w_min > 0 && w_max >= w_min, "bad weight range");
  rand::Rng rng(seed);
  Graph g;
  g.vertices = vertices;
  // Random spanning path over a shuffled vertex order keeps connectivity.
  std::vector<Index> order(static_cast<std::size_t>(vertices));
  for (Index i = 0; i < vertices; ++i) order[static_cast<std::size_t>(i)] = i;
  for (Index i = vertices - 1; i > 0; --i) {
    const Index j = rng.uniform_index(i + 1);
    std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
  }
  for (Index i = 0; i + 1 < vertices; ++i) {
    g.edges.push_back({order[static_cast<std::size_t>(i)],
                       order[static_cast<std::size_t>(i + 1)],
                       rng.uniform(w_min, w_max)});
  }
  for (Index e = 0; e < extra_edges; ++e) {
    Index u = rng.uniform_index(vertices);
    Index v = rng.uniform_index(vertices);
    if (u == v) v = (v + 1) % vertices;
    g.edges.push_back({u, v, rng.uniform(w_min, w_max)});
  }
  return g;
}

Graph cycle_graph(Index vertices) {
  PSDP_CHECK(vertices >= 3, "cycle needs at least three vertices");
  Graph g;
  g.vertices = vertices;
  for (Index i = 0; i < vertices; ++i) {
    g.edges.push_back({i, (i + 1) % vertices, 1.0});
  }
  return g;
}

core::CoveringProblem edge_covering_problem(const Graph& graph) {
  PSDP_CHECK(!graph.edges.empty(), "graph has no edges");
  core::CoveringProblem problem;
  problem.objective = Matrix::identity(graph.vertices);
  problem.rhs = Vector(static_cast<Index>(graph.edges.size()));
  Index e = 0;
  for (const auto& edge : graph.edges) {
    Vector b(graph.vertices);
    const Real s = std::sqrt(edge.weight);
    b[edge.u] = s;
    b[edge.v] = -s;
    Matrix l = Matrix::outer(b);
    l.symmetrize();
    problem.constraints.push_back(std::move(l));
    problem.rhs[e] = 1;
    ++e;
  }
  return problem;
}

core::FactorizedPackingInstance edge_packing_factorized(const Graph& graph) {
  PSDP_CHECK(!graph.edges.empty(), "graph has no edges");
  std::vector<sparse::FactorizedPsd> items;
  for (const auto& edge : graph.edges) {
    Vector b(graph.vertices);
    const Real s = std::sqrt(edge.weight);
    b[edge.u] = s;
    b[edge.v] = -s;
    items.push_back(sparse::FactorizedPsd::rank_one(b));
  }
  return core::FactorizedPackingInstance(
      sparse::FactorizedSet(std::move(items)));
}

Matrix laplacian(const Graph& graph) {
  Matrix l(graph.vertices, graph.vertices);
  for (const auto& edge : graph.edges) {
    l(edge.u, edge.u) += edge.weight;
    l(edge.v, edge.v) += edge.weight;
    l(edge.u, edge.v) -= edge.weight;
    l(edge.v, edge.u) -= edge.weight;
  }
  return l;
}

}  // namespace psdp::apps
