// Graph-derived positive SDP instances.
//
// Each edge e = (u, v) of a weighted graph contributes the rank-one PSD
// matrix L_e = w_e (chi_u - chi_v)(chi_u - chi_v)^T (a Laplacian term).
// The covering SDP
//
//     min Tr[Y]   s.t.  L_e . Y >= 1 for every edge e,  Y >= 0
//
// asks for a PSD "resistance certificate" in which every edge sees at least
// unit effective energy -- the natural graph member of the packing/covering
// family (MaxCut itself needs matrix-covering constraints that fall outside
// the framework, as the paper's Section 5 discusses; this instance is the
// in-framework graph workload). Incidence vectors have two nonzeros, so the
// factorized form is extremely sparse: q = 2 |E|.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"

namespace psdp::apps {

/// Simple undirected weighted graph.
struct Graph {
  struct Edge {
    Index u = 0;
    Index v = 0;
    Real weight = 1;
  };
  Index vertices = 0;
  std::vector<Edge> edges;
};

/// Erdos-Renyi-style random connected graph: a random spanning path plus
/// `extra_edges` random chords, weights uniform in [w_min, w_max].
Graph random_connected_graph(Index vertices, Index extra_edges,
                             Real w_min = 0.5, Real w_max = 2.0,
                             std::uint64_t seed = 17);

/// Cycle graph C_n with unit weights (analytically tractable in tests).
Graph cycle_graph(Index vertices);

/// The edge-covering SDP in the paper's primal form (C = I, A_e = L_e,
/// b_e = 1).
core::CoveringProblem edge_covering_problem(const Graph& graph);

/// The same constraints as a factorized packing instance
/// (Q_e = sqrt(w_e) (chi_u - chi_v), so every factor has 2 nonzeros).
core::FactorizedPackingInstance edge_packing_factorized(const Graph& graph);

/// Graph Laplacian (dense), for tests.
linalg::Matrix laplacian(const Graph& graph);

}  // namespace psdp::apps
