// Downlink transmit beamforming as a covering positive SDP.
//
// This is the application the paper singles out (Section 5) as falling
// completely inside the packing/covering framework: the beamforming SDP
// relaxation of Iyengar, Phillips, and Stein [IPS10, Section 2.2].
//
// Setting: a base station with m antennas serves n users. User i has a
// channel vector h_i; the transmit covariance Y >= 0 must deliver received
// power h_i^T Y h_i >= b_i (an SINR-derived target) to every user, and the
// design minimizes the total radiated power Tr[Y] (C = I) or a weighted
// power C . Y. In the paper's primal form (1.1):
//
//     min  C . Y   s.t.  (h_i h_i^T) . Y >= b_i,  Y >= 0
//
// with rank-one PSD constraints A_i = h_i h_i^T -- which also makes the
// instance natively factorized (Q_i = h_i), exercising the Theorem 4.1
// pipeline end to end.
//
// The paper's authors evaluated on no real testbed (theory paper); we use
// the standard synthetic i.i.d. Rayleigh channel model (Gaussian h_i),
// which preserves the structure that matters: rank-one constraints with
// heterogeneous norms (near/far users => spread-out traces).
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace psdp::apps {

struct BeamformingOptions {
  Index users = 16;     ///< n
  Index antennas = 8;   ///< m
  /// Path-loss spread: channel i is scaled by a factor log-uniform in
  /// [1/spread, 1], modelling near and far users. 1 = homogeneous.
  Real spread = 10;
  /// Per-user demanded power (all equal; heterogeneity comes from spread).
  Real demand = 1;
  std::uint64_t seed = 2012;
};

/// The covering problem (min Tr Y s.t. h_i h_i^T . Y >= demand).
core::CoveringProblem beamforming_problem(const BeamformingOptions& options);

/// The same instance pre-normalized as a factorized packing program
/// (C = I means B_i = A_i / b_i, so Q_i = h_i / sqrt(b_i)).
core::FactorizedPackingInstance beamforming_factorized(
    const BeamformingOptions& options);

}  // namespace psdp::apps
