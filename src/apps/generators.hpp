// Instance generators for the experiment harness.
//
// The paper's evaluation surface is its complexity claims, so the workloads
// are parameterized families that stress exactly the quantities those
// claims are about:
//
//  * figure1_instance     -- the 3-ellipse, 2-dimensional packing instance
//                            of Figure 1 (A1, A2 axis-aligned, A3 rotated).
//  * random_ellipses      -- n random low-rank PSD "ellipsoids" in R^m with
//                            bounded width; the generic E1/E2 workload.
//  * needle_width_family  -- a benign ellipse instance plus one "needle"
//                            constraint with lambda_max = rho; sweeping rho
//                            scales the width without changing n, m, or the
//                            optimum's scale. The E3 (width-independence)
//                            workload.
//  * random_factorized    -- sparse factorized instances A_i = Q_i Q_i^T
//                            with a target nonzero budget; the E4
//                            (nearly-linear work) workload.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/poslp.hpp"

namespace psdp::apps {

using core::FactorizedPackingInstance;
using core::PackingInstance;

/// The Figure 1 instance: A1 = diag(1, 1/4), A2 = diag(1/4, 1) (axis
/// aligned), A3 = rotation(pi/4) diag(3/8, 1/10) rotation(pi/4)^T. The
/// caption's arithmetic (A1 + A2 just over the unit ball, A1/2 + A2/2 + A3
/// exactly tight) pins the packing optimum near 2.
PackingInstance figure1_instance();

struct EllipseOptions {
  Index n = 64;        ///< number of constraints
  Index m = 16;        ///< dimension
  Index rank = 3;      ///< rank of each ellipsoid
  Real scale_min = 0.5;  ///< eigenvalue scale range of each ellipsoid
  Real scale_max = 2.0;
  std::uint64_t seed = 42;
};

/// n random rank-`rank` PSD matrices A_i = sum_j s_j u_j u_j^T with random
/// unit directions and scales in [scale_min, scale_max].
PackingInstance random_ellipses(const EllipseOptions& options);

struct NeedleOptions {
  Index n = 32;   ///< benign constraints (the needle is added on top)
  Index m = 8;
  Real width = 64;  ///< lambda_max of the needle constraint
  std::uint64_t seed = 7;
};

/// random_ellipses(n-1 benign constraints) plus one needle constraint
/// width * e_1 e_1^T. The instance width is ~`width`; everything else is
/// O(1), so sweeping `width` isolates the width dependence of a solver.
PackingInstance needle_width_family(const NeedleOptions& options);

struct FactorizedOptions {
  Index n = 64;
  Index m = 256;
  Index rank = 2;              ///< columns per factor Q_i
  Index nnz_per_column = 8;    ///< sparsity of each factor column
  Real value_min = 0.1;
  Real value_max = 1.0;
  std::uint64_t seed = 99;
  /// Transpose-index build options for the generated factors (nullptr = the
  /// defaults). The serve layer's ArtifactCache passes options whose
  /// autotune.plan_cache points at its owned plan memo, so generated batch
  /// workloads tune into that cache instead of the process-wide one.
  const sparse::TransposePlanOptions* plan_options = nullptr;
};

/// Sparse factorized instance with ~n * rank * nnz_per_column total factor
/// nonzeros (the q of Corollary 1.2).
FactorizedPackingInstance random_factorized(const FactorizedOptions& options);

struct DiagonalLpOptions {
  Index groups = 4;      ///< number of independent axes (the dimension m)
  Index per_group = 3;   ///< constraints sharing each axis
  Real d_min = 0.25;     ///< diagonal value range
  Real d_max = 4.0;
  std::uint64_t seed = 33;
};

/// A positive *linear* program in SDP clothing (the Luby-Nisan/Young
/// setting the paper generalizes; all ellipsoids axis-aligned and
/// block-disjoint): constraint i in group g is d_i e_g e_g^T, so the
/// packing program decomposes per axis and
///     OPT = sum_g 1 / min_{i in g} d_i    (analytic).
struct DiagonalLpInstance {
  PackingInstance instance;
  Real opt = 0;  ///< the exact optimum
};

DiagonalLpInstance diagonal_lp(const DiagonalLpOptions& options);

/// Fractional-matching packing LP of the complete graph K_k: one variable
/// per edge, one constraint per vertex (each vertex covered at most once).
/// The optimum is exactly k/2 (set every edge to 1/(k-1)), which makes this
/// the analytic workload for the scalar solver.
struct MatchingLpInstance {
  core::PackingLp lp;
  Real opt = 0;  ///< k / 2
};

MatchingLpInstance complete_graph_matching_lp(Index k);

/// Star graph K_{1,k}: k edges all sharing the hub vertex, so at most one
/// unit of matching fits regardless of k. OPT = 1.
MatchingLpInstance star_graph_matching_lp(Index k);

/// Path P_k on k vertices (k-1 edges). The fractional matching polytope of
/// a bipartite graph is integral, so OPT = floor(k/2).
MatchingLpInstance path_graph_matching_lp(Index k);

/// Cycle C_k (k >= 3). Every x_e = 1/2 saturates every vertex, so the
/// fractional optimum is exactly k/2 -- strictly above the integral
/// matching number floor(k/2) when k is odd, the classic integrality gap
/// witness.
MatchingLpInstance cycle_graph_matching_lp(Index k);

struct RandomLpOptions {
  Index rows = 16;      ///< constraints
  Index cols = 32;      ///< variables
  Real density = 0.3;   ///< expected fraction of nonzero entries
  Real value_min = 0.5;
  Real value_max = 2.0;
  std::uint64_t seed = 17;
};

/// Random positive packing LP; every column is guaranteed at least one
/// nonzero (no unbounded variables).
core::PackingLp random_packing_lp(const RandomLpOptions& options);

}  // namespace psdp::apps
