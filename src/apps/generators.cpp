#include "apps/generators.hpp"

#include <cmath>
#include <numbers>

#include "rand/rng.hpp"

namespace psdp::apps {

using linalg::Matrix;
using linalg::Vector;

PackingInstance figure1_instance() {
  Matrix a1(2, 2);
  a1(0, 0) = 1;
  a1(1, 1) = 0.25;

  Matrix a2(2, 2);
  a2(0, 0) = 0.25;
  a2(1, 1) = 1;

  // A3: rotated ellipse, diag(3/8, 1/10) conjugated by a 45-degree rotation.
  // Sized so the caption's combination A1/2 + A2/2 + A3 is exactly tight:
  // A1/2 + A2/2 = 0.625 I, and A3 adds 0.375 along its major axis.
  const Matrix r = Matrix::rotation2d(std::numbers::pi / 4);
  Matrix d(2, 2);
  d(0, 0) = 0.375;
  d(1, 1) = 0.1;
  Matrix a3 = linalg::gemm(r, linalg::gemm(d, r.transposed()));
  a3.symmetrize();

  return PackingInstance({a1, a2, a3});
}

PackingInstance random_ellipses(const EllipseOptions& options) {
  PSDP_CHECK(options.n >= 1 && options.m >= 1, "random_ellipses: bad sizes");
  PSDP_CHECK(options.rank >= 1 && options.rank <= options.m,
             "random_ellipses: rank must lie in [1, m]");
  PSDP_CHECK(options.scale_min > 0 && options.scale_max >= options.scale_min,
             "random_ellipses: bad scale range");
  std::vector<Matrix> constraints;
  constraints.reserve(static_cast<std::size_t>(options.n));
  for (Index i = 0; i < options.n; ++i) {
    rand::Rng rng(rand::stream_seed(options.seed, static_cast<std::uint64_t>(i)));
    Matrix a(options.m, options.m);
    for (Index r = 0; r < options.rank; ++r) {
      Vector u(options.m);
      for (Index j = 0; j < options.m; ++j) u[j] = rng.normal();
      const Real nrm = linalg::norm2(u);
      PSDP_ASSERT(nrm > 0);
      u.scale(1 / nrm);
      const Real s = rng.uniform(options.scale_min, options.scale_max);
      a.add_scaled(Matrix::outer(u), s);
    }
    a.symmetrize();
    constraints.push_back(std::move(a));
  }
  return PackingInstance(std::move(constraints));
}

PackingInstance needle_width_family(const NeedleOptions& options) {
  PSDP_CHECK(options.width > 0, "needle width must be positive");
  EllipseOptions benign;
  benign.n = std::max<Index>(1, options.n - 1);
  benign.m = options.m;
  benign.rank = std::min<Index>(3, options.m);
  benign.seed = options.seed;
  PackingInstance base = random_ellipses(benign);

  std::vector<Matrix> constraints = base.constraints();
  Matrix needle(options.m, options.m);
  needle(0, 0) = options.width;
  constraints.push_back(std::move(needle));
  return PackingInstance(std::move(constraints));
}

FactorizedPackingInstance random_factorized(const FactorizedOptions& options) {
  PSDP_CHECK(options.n >= 1 && options.m >= 1, "random_factorized: bad sizes");
  PSDP_CHECK(options.rank >= 1, "random_factorized: rank must be positive");
  PSDP_CHECK(options.nnz_per_column >= 1 &&
                 options.nnz_per_column <= options.m,
             "random_factorized: nnz_per_column must lie in [1, m]");
  const sparse::TransposePlanOptions plan_options =
      options.plan_options ? *options.plan_options
                           : sparse::TransposePlanOptions{};
  std::vector<sparse::FactorizedPsd> items;
  items.reserve(static_cast<std::size_t>(options.n));
  for (Index i = 0; i < options.n; ++i) {
    rand::Rng rng(rand::stream_seed(options.seed, static_cast<std::uint64_t>(i)));
    std::vector<sparse::Triplet> triplets;
    for (Index c = 0; c < options.rank; ++c) {
      for (Index k = 0; k < options.nnz_per_column; ++k) {
        const Index row = rng.uniform_index(options.m);
        const Real sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
        const Real v = sign * rng.uniform(options.value_min, options.value_max);
        triplets.push_back({row, c, v});
      }
    }
    items.emplace_back(
        sparse::Csr::from_triplets(options.m, options.rank, std::move(triplets)),
        plan_options);
    // Duplicate (row, col) draws merge in from_triplets; with a sign flip
    // they may cancel to an all-zero factor -- regenerate deterministically.
    if (items.back().trace() <= 0) {
      std::vector<sparse::Triplet> fallback;
      fallback.push_back({rng.uniform_index(options.m), 0, 1.0});
      items.back() = sparse::FactorizedPsd(
          sparse::Csr::from_triplets(options.m, options.rank,
                                     std::move(fallback)),
          plan_options);
    }
  }
  return FactorizedPackingInstance(sparse::FactorizedSet(std::move(items)));
}

DiagonalLpInstance diagonal_lp(const DiagonalLpOptions& options) {
  PSDP_CHECK(options.groups >= 1 && options.per_group >= 1,
             "diagonal_lp: bad sizes");
  PSDP_CHECK(options.d_min > 0 && options.d_max >= options.d_min,
             "diagonal_lp: bad diagonal range");
  rand::Rng rng(options.seed);
  const Index m = options.groups;
  DiagonalLpInstance result;
  std::vector<Matrix> constraints;
  result.opt = 0;
  for (Index g = 0; g < m; ++g) {
    Real min_d = std::numeric_limits<Real>::infinity();
    for (Index j = 0; j < options.per_group; ++j) {
      const Real d = rng.uniform(options.d_min, options.d_max);
      Matrix a(m, m);
      a(g, g) = d;
      constraints.push_back(std::move(a));
      min_d = std::min(min_d, d);
    }
    result.opt += 1 / min_d;
  }
  result.instance = PackingInstance(std::move(constraints));
  return result;
}

MatchingLpInstance complete_graph_matching_lp(Index k) {
  PSDP_CHECK(k >= 2, "complete_graph_matching_lp: need at least 2 vertices");
  const Index edges = k * (k - 1) / 2;
  Matrix p(k, edges);
  Index e = 0;
  for (Index u = 0; u < k; ++u) {
    for (Index v = u + 1; v < k; ++v) {
      p(u, e) = 1;
      p(v, e) = 1;
      ++e;
    }
  }
  MatchingLpInstance result;
  result.lp = core::PackingLp(std::move(p));
  // Every edge at 1/(k-1) saturates every vertex: OPT = C(k,2)/(k-1) = k/2.
  result.opt = static_cast<Real>(k) / 2;
  return result;
}

MatchingLpInstance star_graph_matching_lp(Index k) {
  PSDP_CHECK(k >= 1, "star_graph_matching_lp: need at least 1 leaf");
  // Vertex 0 is the hub; edge e joins the hub to leaf e+1.
  Matrix p(k + 1, k);
  for (Index e = 0; e < k; ++e) {
    p(0, e) = 1;
    p(e + 1, e) = 1;
  }
  MatchingLpInstance result;
  result.lp = core::PackingLp(std::move(p));
  result.opt = 1;  // the hub constraint caps the total
  return result;
}

MatchingLpInstance path_graph_matching_lp(Index k) {
  PSDP_CHECK(k >= 2, "path_graph_matching_lp: need at least 2 vertices");
  Matrix p(k, k - 1);
  for (Index e = 0; e < k - 1; ++e) {
    p(e, e) = 1;
    p(e + 1, e) = 1;
  }
  MatchingLpInstance result;
  result.lp = core::PackingLp(std::move(p));
  result.opt = static_cast<Real>(k / 2);  // bipartite => integral LP
  return result;
}

MatchingLpInstance cycle_graph_matching_lp(Index k) {
  PSDP_CHECK(k >= 3, "cycle_graph_matching_lp: need at least 3 vertices");
  Matrix p(k, k);  // edge e joins vertices e and (e+1) mod k
  for (Index e = 0; e < k; ++e) {
    p(e, e) = 1;
    p((e + 1) % k, e) = 1;
  }
  MatchingLpInstance result;
  result.lp = core::PackingLp(std::move(p));
  result.opt = static_cast<Real>(k) / 2;  // x_e = 1/2 everywhere is optimal
  return result;
}

core::PackingLp random_packing_lp(const RandomLpOptions& options) {
  PSDP_CHECK(options.rows >= 1 && options.cols >= 1, "random_packing_lp: bad sizes");
  PSDP_CHECK(options.density > 0 && options.density <= 1,
             "random_packing_lp: density must lie in (0,1]");
  PSDP_CHECK(options.value_min > 0 && options.value_max >= options.value_min,
             "random_packing_lp: bad value range");
  rand::Rng rng(options.seed);
  Matrix p(options.rows, options.cols);
  for (Index j = 0; j < options.rows; ++j) {
    for (Index i = 0; i < options.cols; ++i) {
      if (rng.uniform(0, 1) < options.density) {
        p(j, i) = rng.uniform(options.value_min, options.value_max);
      }
    }
  }
  // No zero column: plant one entry on an empty column (deterministic row).
  for (Index i = 0; i < options.cols; ++i) {
    Real sum = 0;
    for (Index j = 0; j < options.rows; ++j) sum += p(j, i);
    if (sum == 0) {
      p(rng.uniform_index(options.rows), i) =
          rng.uniform(options.value_min, options.value_max);
    }
  }
  return core::PackingLp(std::move(p));
}

}  // namespace psdp::apps
