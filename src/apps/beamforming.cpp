#include "apps/beamforming.hpp"

#include <cmath>

#include "rand/rng.hpp"

namespace psdp::apps {

using linalg::Matrix;
using linalg::Vector;

namespace {

/// Channel vector of user i: i.i.d. Gaussian (Rayleigh fading) scaled by a
/// log-uniform path loss.
Vector channel(const BeamformingOptions& options, Index user) {
  rand::Rng rng(rand::stream_seed(options.seed, static_cast<std::uint64_t>(user)));
  Vector h(options.antennas);
  for (Index j = 0; j < options.antennas; ++j) h[j] = rng.normal();
  const Real loss =
      std::exp(rng.uniform(-std::log(options.spread), 0.0));
  h.scale(loss);
  return h;
}

}  // namespace

core::CoveringProblem beamforming_problem(const BeamformingOptions& options) {
  PSDP_CHECK(options.users >= 1 && options.antennas >= 1,
             "beamforming: bad sizes");
  PSDP_CHECK(options.spread >= 1, "beamforming: spread must be >= 1");
  PSDP_CHECK(options.demand > 0, "beamforming: demand must be positive");
  core::CoveringProblem problem;
  problem.objective = Matrix::identity(options.antennas);
  problem.rhs = Vector(options.users);
  for (Index i = 0; i < options.users; ++i) {
    Matrix a = Matrix::outer(channel(options, i));
    a.symmetrize();
    problem.constraints.push_back(std::move(a));
    problem.rhs[i] = options.demand;
  }
  return problem;
}

core::FactorizedPackingInstance beamforming_factorized(
    const BeamformingOptions& options) {
  PSDP_CHECK(options.demand > 0, "beamforming: demand must be positive");
  std::vector<sparse::FactorizedPsd> items;
  const Real inv_sqrt_demand = 1 / std::sqrt(options.demand);
  for (Index i = 0; i < options.users; ++i) {
    Vector h = channel(options, i);
    h.scale(inv_sqrt_demand);
    items.push_back(sparse::FactorizedPsd::rank_one(h));
  }
  return core::FactorizedPackingInstance(
      sparse::FactorizedSet(std::move(items)));
}

}  // namespace psdp::apps
