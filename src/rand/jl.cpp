#include "rand/jl.hpp"

#include <cmath>

#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "rand/rng.hpp"

namespace psdp::rand {

Index jl_rows(Index m, Real eps, Real delta) {
  PSDP_CHECK(m >= 1, "jl_rows: dimension must be positive");
  PSDP_CHECK(eps > 0 && eps < 1, "jl_rows: eps must lie in (0,1)");
  PSDP_CHECK(delta > 0 && delta < 1, "jl_rows: delta must lie in (0,1)");
  const Real r = 8.0 * (std::log(static_cast<Real>(m)) + std::log(1.0 / delta)) /
                 (eps * eps);
  return std::max<Index>(1, static_cast<Index>(std::ceil(r)));
}

GaussianSketch::GaussianSketch(Index rows, Index cols, std::uint64_t seed)
    : rows_(rows), cols_(cols), seed_(seed) {
  PSDP_CHECK(rows >= 1 && cols >= 1, "sketch dimensions must be positive");
  data_.resize(static_cast<std::size_t>(rows * cols));
  const Real scale = 1.0 / std::sqrt(static_cast<Real>(rows));
  // One deterministic stream per row so generation parallelizes.
  par::parallel_for(0, rows, [&](Index j) {
    Rng rng(stream_seed(seed, static_cast<std::uint64_t>(j)));
    Real* out = data_.data() + j * cols;
    for (Index i = 0; i < cols; ++i) out[i] = scale * rng.normal();
  }, /*grain=*/1);
  // Same generation charge as fill_block, so the reference and blocked
  // sketch paths report comparable model work.
  par::CostMeter::add_work(static_cast<std::uint64_t>(rows * cols));
}

GaussianSketch GaussianSketch::deferred(Index rows, Index cols,
                                        std::uint64_t seed) {
  PSDP_CHECK(rows >= 1 && cols >= 1, "sketch dimensions must be positive");
  GaussianSketch sketch;
  sketch.rows_ = rows;
  sketch.cols_ = cols;
  sketch.seed_ = seed;
  return sketch;
}

std::span<const Real> GaussianSketch::row(Index j) const {
  PSDP_CHECK(j >= 0 && j < rows_, "sketch row out of range");
  PSDP_CHECK(!data_.empty(), "sketch row: sketch is deferred (use fill_block)");
  return {data_.data() + j * cols_, static_cast<std::size_t>(cols_)};
}

void GaussianSketch::fill_block(Index first, Index count,
                                linalg::Matrix& panel) const {
  PSDP_CHECK(first >= 0 && count >= 1 && first + count <= rows_,
             "fill_block: row range out of bounds");
  panel.reshape(cols_, count);  // capacity-preserving: no steady-state alloc
  const Real scale = 1.0 / std::sqrt(static_cast<Real>(rows_));
  // Regenerate each row from its own stream (identical values to row());
  // the strided panel writes are cheap next to the Gaussian draws.
  par::parallel_for(0, count, [&](Index t) {
    Rng rng(stream_seed(seed_, static_cast<std::uint64_t>(first + t)));
    Real* out = panel.data() + t;
    for (Index i = 0; i < cols_; ++i) out[i * count] = scale * rng.normal();
  }, /*grain=*/1);
  par::CostMeter::add_work(static_cast<std::uint64_t>(count * cols_));
}

void GaussianSketch::apply(std::span<const Real> x, std::span<Real> y) const {
  PSDP_CHECK(static_cast<Index>(x.size()) == cols_, "apply: x has wrong length");
  PSDP_CHECK(static_cast<Index>(y.size()) == rows_, "apply: y has wrong length");
  PSDP_CHECK(!data_.empty(), "apply: sketch is deferred (use fill_block)");
  par::parallel_for(0, rows_, [&](Index j) {
    const Real* pi = data_.data() + j * cols_;
    Real acc = 0;
    for (Index i = 0; i < cols_; ++i) acc += pi[i] * x[static_cast<std::size_t>(i)];
    y[static_cast<std::size_t>(j)] = acc;
  }, /*grain=*/1);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * rows_ * cols_));
  par::CostMeter::add_depth(par::reduction_depth(cols_));
}

Real GaussianSketch::sketch_norm2(std::span<const Real> x) const {
  std::vector<Real> y(static_cast<std::size_t>(rows_));
  apply(x, y);
  Real acc = 0;
  for (Real v : y) acc += v * v;
  return acc;
}

}  // namespace psdp::rand
