// Deterministic random number generation.
//
// Every randomized component in the library (instance generators, the JL
// sketch) takes an explicit 64-bit seed, so experiments are reproducible and
// parallel streams can be split deterministically with split().
//
// Engine: xoshiro256** (Blackman & Vigna) seeded via SplitMix64, the
// recommended seeding procedure. Gaussians use the Marsaglia polar method.
#pragma once

#include <array>
#include <cstdint>

#include "util/common.hpp"

namespace psdp::rand {

/// SplitMix64 step: advances the state and returns the next value. Used for
/// seeding and for cheap stateless hashing of (seed, index) pairs.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with convenience samplers.
class Rng {
 public:
  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  Real uniform();

  /// Uniform in [lo, hi).
  Real uniform(Real lo, Real hi);

  /// Uniform integer in [0, n). Requires n > 0.
  Index uniform_index(Index n);

  /// Standard normal via the polar method (caches the spare deviate).
  Real normal();

  /// Normal with the given mean and standard deviation.
  Real normal(Real mean, Real stddev);

  /// A statistically independent generator derived from this one; both this
  /// generator and the child remain usable. Deterministic.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
  Real spare_ = 0;
  bool has_spare_ = false;
};

/// Deterministic per-stream seed derived from a base seed and a stream index
/// (e.g. one stream per constraint matrix in a generator).
std::uint64_t stream_seed(std::uint64_t base_seed, std::uint64_t stream);

}  // namespace psdp::rand
