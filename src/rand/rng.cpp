#include "rand/rng.hpp"

#include <cmath>

namespace psdp::rand {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Real Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<Real>(next_u64() >> 11) * 0x1.0p-53;
}

Real Rng::uniform(Real lo, Real hi) {
  PSDP_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  if (lo == hi) return lo;  // degenerate interval: deterministic value
  return lo + (hi - lo) * uniform();
}

Index Rng::uniform_index(Index n) {
  PSDP_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection-free modulo is fine here: n is tiny relative to 2^64, so the
  // modulo bias is far below statistical noise in any experiment we run.
  return static_cast<Index>(next_u64() % static_cast<std::uint64_t>(n));
}

Real Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  Real u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const Real factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

Real Rng::normal(Real mean, Real stddev) { return mean + stddev * normal(); }

Rng Rng::split() {
  // Derive the child from two fresh outputs; the parent advances, so
  // repeated splits yield distinct streams.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

std::uint64_t stream_seed(std::uint64_t base_seed, std::uint64_t stream) {
  std::uint64_t s = base_seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return splitmix64(s);
}

}  // namespace psdp::rand
