// Johnson-Lindenstrauss Gaussian sketch (Theorem 4.1 uses it to reduce the
// m-dimensional Frobenius norms ||exp(Phi/2) Q_i||_F^2 to r = O(eps^-2 log m)
// dimensions; see [DG03, IM98]).
//
// The sketch matrix Pi is r x m with i.i.d. N(0, 1/r) entries, so
// E[||Pi v||^2] = ||v||^2 and each estimate is within (1 +- eps) with
// probability 1 - 1/poly(m) for r = c eps^-2 log m.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/common.hpp"

namespace psdp::rand {

/// Number of sketch rows sufficient for (1 +- eps) norm preservation of
/// poly(m) vectors with the stated failure probability delta.
/// r = ceil(8 (ln(m) + ln(1/delta)) / eps^2), the constant from the
/// Dasgupta-Gupta analysis.
Index jl_rows(Index m, Real eps, Real delta = 1e-3);

/// Dense Gaussian sketch. Rows are generated deterministically from the
/// seed, so a sketch is reproducible and shareable across processes.
class GaussianSketch {
 public:
  /// Builds an r x m sketch with N(0, 1/r) entries, materialized row-major.
  GaussianSketch(Index rows, Index cols, std::uint64_t seed);

  /// A sketch whose entries are never materialized: rows are generated on
  /// demand by fill_block() straight into caller panels. row()/apply() are
  /// unavailable on a deferred sketch. This is the form the blocked
  /// bigDotExp path uses -- it touches each sketch row exactly once.
  static GaussianSketch deferred(Index rows, Index cols, std::uint64_t seed);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  /// Row j as a span of length cols(). Materialized sketches only.
  std::span<const Real> row(Index j) const;

  /// y = Pi x  (y has length rows()). Parallel over rows. Materialized only.
  void apply(std::span<const Real> x, std::span<Real> y) const;

  /// ||Pi x||^2, the JL estimate of ||x||^2. Materialized only.
  Real sketch_norm2(std::span<const Real> x) const;

  /// Writes sketch rows [first, first + count) as the *columns* of `panel`,
  /// a row-major cols() x count matrix: panel(i, t) = Pi(first + t, i).
  /// This is the layout the blocked Taylor kernels consume. Entries are
  /// generated from the per-row seed streams, so every block decomposition
  /// (and row()) sees identical values, and a deferred sketch needs no
  /// backing storage. Parallel over the block's rows.
  void fill_block(Index first, Index count, linalg::Matrix& panel) const;

 private:
  GaussianSketch() = default;

  Index rows_ = 0;
  Index cols_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<Real> data_;  ///< row-major rows_ x cols_; empty when deferred
};

}  // namespace psdp::rand
