// A fixed-size fork-join thread pool.
//
// The paper's algorithm is flat data-parallel: every iteration is a batch of
// independent matvecs and coordinate updates. A static pool with blocking
// task submission is sufficient and keeps the work/depth structure of the
// PRAM analysis visible (no work stealing, no oversubscription).
//
// Nested parallel regions execute serially on the calling worker: this keeps
// the pool deadlock-free without a full task-graph scheduler, and matches
// how the algorithms use parallelism (one level of parallel_for at a time).
//
// Submission is allocation-free in the steady state: tasks are passed as
// non-owning TaskRef (no std::function heap traffic) and batch descriptors
// are recycled from a small slot pool once no worker holds them. This is
// what lets a solver iteration run with zero heap allocations after warmup
// (see bench_variants --alloc-guard).
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/common.hpp"

namespace psdp::par {

/// Non-owning reference to a callable invoked as f(Index). The referenced
/// callable must outlive the call it is passed to -- always true for
/// run_batch, which blocks until the batch is drained. Copying a TaskRef
/// copies two pointers; nothing is allocated.
class TaskRef {
 public:
  TaskRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskRef> &&
                std::is_invocable_v<const std::decay_t<F>&, Index>>>
  TaskRef(const F& f)  // NOLINT(google-explicit-constructor)
      : obj_(&f), invoke_([](const void* o, Index k) {
          (*static_cast<const F*>(o))(k);
        }) {}

  void operator()(Index k) const { invoke_(obj_, k); }

 private:
  const void* obj_ = nullptr;
  void (*invoke_)(const void*, Index) = nullptr;
};

/// Thread-local inline-execution override: while set, every run_batch
/// submitted from this thread executes its tasks inline (sequentially, in
/// task order) instead of dispatching to the pool -- exactly what a nested
/// region or a zero-worker pool would do. The serve scheduler's narrow
/// lanes run under this flag so a whole solve occupies one thread; clearing
/// it mid-solve (at an oracle-round boundary) re-routes subsequent regions
/// to the shared pool at full width. Results are unaffected either way:
/// loop partitioning and reduce combine order depend only on the global
/// par::num_threads(), never on which thread executes a chunk.
bool regions_inlined();
void set_regions_inlined(bool inlined);

/// RAII save/set/restore of the inline-execution flag.
class ScopedRegionInline {
 public:
  explicit ScopedRegionInline(bool inlined) : prev_(regions_inlined()) {
    set_regions_inlined(inlined);
  }
  ~ScopedRegionInline() { set_regions_inlined(prev_); }
  ScopedRegionInline(const ScopedRegionInline&) = delete;
  ScopedRegionInline& operator=(const ScopedRegionInline&) = delete;

 private:
  bool prev_;
};

class ThreadPool {
 public:
  /// Creates `workers` worker threads (>=0). With zero workers every task
  /// runs inline on the submitting thread, which makes single-threaded
  /// debugging deterministic.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (not counting the submitting thread).
  int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs `count` tasks, task(k) for k in [0, count): workers and the
  /// calling thread cooperatively drain the batch; returns when all tasks
  /// have finished. Exceptions thrown by tasks are captured and the first
  /// one is rethrown on the calling thread. The callable behind `task` only
  /// needs to live for the duration of this call.
  void run_batch(Index count, TaskRef task);

  /// True when the current thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// True when the current thread is a worker of *any* pool (the CostMeter
  /// uses this to enforce its driving-thread-only depth convention).
  static bool current_thread_is_worker();

 private:
  struct Batch {
    TaskRef task;
    Index count = 0;
    std::atomic<Index> next{0};  ///< next unclaimed task index
    std::atomic<Index> done{0};  ///< completed task count
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  /// Drain tasks from `batch`; returns when no unclaimed task remains.
  /// Safe to call on an already-exhausted batch.
  static void drain(Batch& batch);

  std::vector<std::thread> threads_;
  std::mutex submit_mutex_;  ///< serializes concurrent external submitters
  std::mutex mutex_;
  std::condition_variable wake_;        ///< workers: new batch or shutdown
  std::condition_variable batch_done_;  ///< submitter: all tasks completed
  std::shared_ptr<Batch> active_;
  /// Recycled batch descriptors (guarded by submit_mutex_). A slot is free
  /// once its use_count drops back to 1 -- workers only acquire references
  /// through active_, so a free slot cannot regain holders behind our back.
  std::vector<std::shared_ptr<Batch>> spare_;
  std::uint64_t epoch_ = 0;  ///< bumped per batch so workers join each once
  bool stop_ = false;
};

}  // namespace psdp::par
