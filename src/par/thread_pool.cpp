#include "par/thread_pool.hpp"

namespace psdp::par {

namespace {
thread_local const ThreadPool* t_owner = nullptr;
// True while this thread is inside run_batch (as the submitter). A nested
// run_batch from a task body running on the submitting thread must execute
// inline: re-submitting would self-deadlock on submit_mutex_.
thread_local bool t_submitting = false;
// Caller-requested inline execution (see regions_inlined() in the header).
thread_local bool t_regions_inlined = false;
}

bool regions_inlined() { return t_regions_inlined; }

void set_regions_inlined(bool inlined) { t_regions_inlined = inlined; }

ThreadPool::ThreadPool(int workers) {
  PSDP_CHECK(workers >= 0, "worker count must be non-negative");
  // workers + 1 batch slots cover the worst case (each worker pinning one
  // exhausted batch plus the submitter's live one); +1 more for margin.
  // run_batch therefore provably never allocates after construction.
  spare_.reserve(static_cast<std::size_t>(workers) + 2);
  for (int i = 0; i < workers + 2; ++i) {
    spare_.push_back(std::make_shared<Batch>());
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::on_worker_thread() const { return t_owner == this; }

bool ThreadPool::current_thread_is_worker() { return t_owner != nullptr; }

void ThreadPool::drain(Batch& batch) {
  while (true) {
    const Index k = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (k >= batch.count) return;
    try {
      batch.task(k);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mutex);
      if (!batch.error) batch.error = std::current_exception();
    }
    batch.done.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop() {
  t_owner = this;
  std::uint64_t seen_epoch = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (active_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      batch = active_;  // shared ownership keeps the batch alive
      seen_epoch = epoch_;
    }
    drain(*batch);
    if (batch->done.load(std::memory_order_acquire) >= batch->count) {
      // Lock/unlock pairs the done-store with the submitter's predicate
      // check, preventing a lost wakeup.
      { std::lock_guard<std::mutex> lock(mutex_); }
      batch_done_.notify_all();
    }
    // batch's shared_ptr dies here, releasing the slot for reuse.
  }
}

void ThreadPool::run_batch(Index count, TaskRef task) {
  if (count <= 0) return;
  // Nested region (from a worker, or from the submitting thread's own task
  // share), caller-requested inline execution, or no workers: run inline.
  if (on_worker_thread() || t_submitting || t_regions_inlined ||
      threads_.empty()) {
    for (Index k = 0; k < count; ++k) task(k);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  t_submitting = true;
  struct SubmitReset {
    ~SubmitReset() { t_submitting = false; }
  } submit_reset;
  // Reuse a spare batch descriptor if no worker still holds it (use_count
  // can only decrease once a batch is off active_, so the check is stable);
  // allocate a fresh slot only while stragglers pin every spare. This keeps
  // the steady state allocation-free.
  std::shared_ptr<Batch> batch;
  for (auto& slot : spare_) {
    if (slot.use_count() == 1) {
      // Pair with the release semantics of the last worker's refcount
      // decrement: after this fence every write that worker made to the
      // slot happens-before our re-initialization below.
      std::atomic_thread_fence(std::memory_order_acquire);
      batch = slot;
      break;
    }
  }
  if (!batch) {
    batch = std::make_shared<Batch>();
    spare_.push_back(batch);
  }
  batch->task = task;
  batch->count = count;
  batch->next.store(0, std::memory_order_relaxed);
  batch->done.store(0, std::memory_order_relaxed);
  batch->error = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PSDP_ASSERT(active_ == nullptr);  // one batch at a time by construction
    active_ = batch;
    ++epoch_;
  }
  wake_.notify_all();
  drain(*batch);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) >= batch->count;
    });
    active_.reset();
  }
  // Workers still holding the shared_ptr only see an exhausted batch: every
  // further next.fetch_add returns >= count, so the TaskRef (a reference
  // into the caller's frame) is never invoked after we return, and the slot
  // is not reused until those holders release it.
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace psdp::par
