#include "par/parallel.hpp"

#include <memory>
#include <thread>

namespace psdp::par {

namespace {

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

int g_threads = default_threads();
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int num_threads() { return g_threads; }

void set_num_threads(int threads) {
  PSDP_CHECK(threads >= 1, "thread count must be at least 1");
  g_threads = threads;
  g_pool.reset();  // lazily recreated with the new size
}

ThreadPool& global_pool() {
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(g_threads - 1);
  }
  return *g_pool;
}

}  // namespace psdp::par
