#include "par/parallel.hpp"

#include <memory>
#include <thread>

namespace psdp::par {

namespace {

int default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

int g_threads = default_threads();
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int num_threads() { return g_threads; }

void set_num_threads(int threads) {
  PSDP_CHECK(threads >= 1, "thread count must be at least 1");
  g_threads = threads;
  g_pool.reset();  // lazily recreated with the new size
}

ThreadPool& global_pool() {
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(g_threads - 1);
  }
  return *g_pool;
}

void parallel_for_chunked(Index begin, Index end,
                          const std::function<void(Index, Index)>& body,
                          Index grain) {
  if (end <= begin) return;
  PSDP_CHECK(grain >= 1, "grain must be positive");
  const Index n = end - begin;
  const Index max_chunks = std::max<Index>(1, num_threads());
  const Index chunks = std::clamp<Index>((n + grain - 1) / grain, 1, max_chunks);
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  const Index chunk_size = (n + chunks - 1) / chunks;
  global_pool().run_batch(chunks, [&](Index c) {
    const Index b = begin + c * chunk_size;
    const Index e = std::min(end, b + chunk_size);
    if (b < e) body(b, e);
  });
}

}  // namespace psdp::par
