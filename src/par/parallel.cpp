#include "par/parallel.hpp"

#include <memory>
#include <thread>

namespace psdp::par {

namespace {

int default_threads() {
  // The `threads` tunable wins when set (> 0); otherwise the hardware
  // width. Resolved lazily on the first num_threads() call rather than at
  // static-init time, so PSDP_TUNE_THREADS and CLI/manifest overrides
  // applied before the first parallel loop take effect.
  const int tuned = static_cast<int>(util::tunable_threads());
  if (tuned > 0) return tuned;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

int g_threads = 0;  // 0 = unresolved; see num_threads()
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int num_threads() {
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

void set_num_threads(int threads) {
  PSDP_CHECK(threads >= 1, "thread count must be at least 1");
  g_threads = threads;
  g_pool.reset();  // lazily recreated with the new size
}

ThreadPool& global_pool() {
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(num_threads() - 1);
  }
  return *g_pool;
}

}  // namespace psdp::par
