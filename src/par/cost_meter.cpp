#include "par/cost_meter.hpp"

#include "par/thread_pool.hpp"

namespace psdp::par {

std::atomic<std::uint64_t> CostMeter::work_{0};
std::atomic<std::uint64_t> CostMeter::depth_{0};

void CostMeter::reset() {
  work_.store(0, std::memory_order_relaxed);
  depth_.store(0, std::memory_order_relaxed);
}

void CostMeter::add_work(std::uint64_t w) {
  work_.fetch_add(w, std::memory_order_relaxed);
}

void CostMeter::add_depth(std::uint64_t d) {
  // Enforce the driving-thread-only convention: kernels invoked from inside
  // a parallel region run concurrently, so their depth is not on the
  // critical path (the driving step charges it once instead). Without this
  // guard, r-way-parallel kernel fan-outs inflate depth r-fold.
  if (ThreadPool::current_thread_is_worker()) return;
  depth_.fetch_add(d, std::memory_order_relaxed);
}

CostMeter::Cost CostMeter::snapshot() {
  return {work_.load(std::memory_order_relaxed),
          depth_.load(std::memory_order_relaxed)};
}

std::uint64_t reduction_depth(Index n) {
  if (n <= 1) return 1;
  return static_cast<std::uint64_t>(ceil_log2(n)) + 1;
}

}  // namespace psdp::par
