// Work/depth accounting in the PRAM cost model of the paper.
//
// The paper states costs as (work, depth) pairs; wall-clock alone cannot
// separate "nearly-linear work" from "good constants on this machine".
// Kernels charge their *model* cost here and benches report both.
//
//   par::CostMeter::reset();
//   ... run solver ...
//   auto cost = par::CostMeter::snapshot();   // {work, depth}
//
// Charging convention:
//  * add_work(w): total scalar operations, charged from any thread
//    (relaxed atomic; benches only read after joining).
//  * add_depth(d): critical-path length, charged by the *driving* thread
//    only, once per sequential step (e.g. a matvec charges depth
//    log2(row length), a solver iteration charges the max of its kernels).
//    Enforced: add_depth calls made from pool worker threads are dropped,
//    so kernels reused inside a parallel region do not multiply the
//    critical path by the fan-out (the driving step charges it once).
//
// Metering is compiled in but costs one relaxed atomic add per kernel call,
// which is negligible next to the kernels themselves.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/common.hpp"

namespace psdp::par {

class CostMeter {
 public:
  struct Cost {
    std::uint64_t work = 0;
    std::uint64_t depth = 0;
  };

  /// Zero both counters.
  static void reset();

  /// Charge `w` units of work (thread-safe).
  static void add_work(std::uint64_t w);

  /// Charge `d` units of critical-path depth (call from the driving thread).
  static void add_depth(std::uint64_t d);

  /// Current counters.
  static Cost snapshot();

 private:
  static std::atomic<std::uint64_t> work_;
  static std::atomic<std::uint64_t> depth_;
};

/// Depth of a balanced-tree reduction over n elements (= ceil(log2 n) + 1).
std::uint64_t reduction_depth(Index n);

}  // namespace psdp::par
