// The parallel-loop facade used by every kernel in the library.
//
//   par::parallel_for(0, m, [&](Index i) { ... });          // by element
//   par::parallel_for_chunked(0, m, [&](Index b, Index e)); // by chunk
//   Real s = par::parallel_reduce(0, m, 0.0,
//       [&](Index i) { return f(i); }, std::plus<>{});
//
// Thread count is process-global and settable at runtime (benches sweep it).
// Setting it to 1 executes everything inline with no pool interaction, which
// is the deterministic baseline for the scaling experiments.
#pragma once

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "par/thread_pool.hpp"
#include "util/common.hpp"

namespace psdp::par {

/// Number of threads parallel loops may use (including the caller).
int num_threads();

/// Set the global thread budget; recreates the shared pool. Not safe to call
/// concurrently with running parallel loops.
void set_num_threads(int threads);

/// The process-wide pool backing parallel loops.
ThreadPool& global_pool();

/// Minimum number of loop iterations per chunk; below this a loop runs
/// serially. Tuned so tiny vectors do not pay fork-join overhead.
inline constexpr Index kDefaultGrain = 1024;

/// Invoke body(begin_k, end_k) over an even partition of [begin, end) into
/// roughly `num_threads()` chunks of at least `grain` elements.
void parallel_for_chunked(Index begin, Index end,
                          const std::function<void(Index, Index)>& body,
                          Index grain = kDefaultGrain);

/// Element-wise parallel loop.
template <typename Body>
void parallel_for(Index begin, Index end, Body&& body,
                  Index grain = kDefaultGrain) {
  parallel_for_chunked(
      begin, end,
      [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) body(i);
      },
      grain);
}

/// Parallel map-reduce: combines body(i) over [begin, end) with `combine`,
/// starting from `init` (which must be the identity of `combine`).
/// Deterministic for a fixed thread count: per-chunk partials are combined
/// in chunk order on the calling thread.
template <typename T, typename Body, typename Combine>
T parallel_reduce(Index begin, Index end, T init, Body&& body,
                  Combine&& combine, Index grain = kDefaultGrain) {
  if (end <= begin) return init;
  const Index n = end - begin;
  const Index max_chunks = std::max<Index>(1, num_threads());
  const Index chunks = std::clamp<Index>((n + grain - 1) / grain, 1, max_chunks);
  if (chunks == 1) {
    T acc = init;
    for (Index i = begin; i < end; ++i) acc = combine(acc, body(i));
    return acc;
  }
  std::vector<T> partial(static_cast<std::size_t>(chunks), init);
  const Index chunk_size = (n + chunks - 1) / chunks;
  global_pool().run_batch(chunks, [&](Index c) {
    const Index b = begin + c * chunk_size;
    const Index e = std::min(end, b + chunk_size);
    T acc = init;
    for (Index i = b; i < e; ++i) acc = combine(acc, body(i));
    partial[static_cast<std::size_t>(c)] = acc;
  });
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Common case: parallel sum of body(i).
template <typename Body>
Real parallel_sum(Index begin, Index end, Body&& body,
                  Index grain = kDefaultGrain) {
  return parallel_reduce(begin, end, Real{0},
                         std::forward<Body>(body), std::plus<Real>{}, grain);
}

/// Parallel max of body(i) over a non-empty range.
template <typename Body>
Real parallel_max(Index begin, Index end, Body&& body,
                  Index grain = kDefaultGrain) {
  PSDP_CHECK(end > begin, "parallel_max over empty range");
  return parallel_reduce(
      begin, end, -std::numeric_limits<Real>::infinity(),
      std::forward<Body>(body),
      [](Real a, Real b) { return a > b ? a : b; }, grain);
}

}  // namespace psdp::par
