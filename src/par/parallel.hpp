// The parallel-loop facade used by every kernel in the library.
//
//   par::parallel_for(0, m, [&](Index i) { ... });          // by element
//   par::parallel_for_chunked(0, m, [&](Index b, Index e)); // by chunk
//   Real s = par::parallel_reduce(0, m, 0.0,
//       [&](Index i) { return f(i); }, std::plus<>{});
//
// Thread count is process-global and settable at runtime (benches sweep it).
// Setting it to 1 executes everything inline with no pool interaction, which
// is the deterministic baseline for the scaling experiments.
//
// The loops are allocation-free in the steady state: bodies reach the pool
// as non-owning TaskRef (no std::function), and reductions recycle a
// per-thread partials buffer -- a solver iteration makes thousands of these
// calls, and the zero-allocation guarantee of the sketched hot path
// (bench_variants --alloc-guard) rests on them staying off the heap.
#pragma once

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "par/thread_pool.hpp"
#include "util/common.hpp"
#include "util/tunables.hpp"

namespace psdp::par {

/// Number of threads parallel loops may use (including the caller).
int num_threads();

/// Set the global thread budget; recreates the shared pool. Not safe to call
/// concurrently with running parallel loops.
void set_num_threads(int threads);

/// The process-wide pool backing parallel loops.
ThreadPool& global_pool();

/// Minimum number of loop iterations per chunk; below this a loop runs
/// serially. Tuned so tiny vectors do not pay fork-join overhead. This is
/// the registry default of the `grain` tunable; loops read the live value
/// through default_grain() below.
inline constexpr Index kDefaultGrain = 1024;

/// The grain parallel loops use when the caller does not pass one: the
/// `grain` tunable (default kDefaultGrain). One relaxed atomic load per
/// loop launch -- noise next to the fork-join itself. Note a tuned grain
/// changes chunk boundaries and hence reduction summation order, which is
/// why `grain` is excluded from the default SPSA knob set: bit-identity
/// under untouched defaults is the guarantee, not under arbitrary tuning.
inline Index default_grain() { return util::tunable_grain(); }

/// Invoke body(begin_k, end_k) over an even partition of [begin, end) into
/// roughly `num_threads()` chunks of at least `grain` elements.
template <typename Body>
void parallel_for_chunked(Index begin, Index end, Body&& body,
                          Index grain = default_grain()) {
  if (end <= begin) return;
  PSDP_CHECK(grain >= 1, "grain must be positive");
  const Index n = end - begin;
  const Index max_chunks = std::max<Index>(1, num_threads());
  const Index chunks = std::clamp<Index>((n + grain - 1) / grain, 1, max_chunks);
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  const Index chunk_size = (n + chunks - 1) / chunks;
  const auto task = [&](Index c) {
    const Index b = begin + c * chunk_size;
    const Index e = std::min(end, b + chunk_size);
    if (b < e) body(b, e);
  };
  global_pool().run_batch(chunks, task);
}

/// Element-wise parallel loop.
template <typename Body>
void parallel_for(Index begin, Index end, Body&& body,
                  Index grain = default_grain()) {
  parallel_for_chunked(
      begin, end,
      [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) body(i);
      },
      grain);
}

namespace detail {
/// Reusable per-thread partials for parallel_reduce: nested parallel regions
/// run inline on their worker, so at most one reduction per thread uses its
/// scratch at a time; the busy flag falls back to a local buffer in the
/// (unused today) re-entrant case. One buffer per value type T.
template <typename T>
std::vector<T>& reduce_scratch() {
  static thread_local std::vector<T> scratch;
  return scratch;
}
template <typename T>
bool& reduce_scratch_busy() {
  static thread_local bool busy = false;
  return busy;
}
}  // namespace detail

/// Parallel map-reduce: combines body(i) over [begin, end) with `combine`,
/// starting from `init` (which must be the identity of `combine`).
/// Deterministic for a fixed thread count: per-chunk partials are combined
/// in chunk order on the calling thread.
template <typename T, typename Body, typename Combine>
T parallel_reduce(Index begin, Index end, T init, Body&& body,
                  Combine&& combine, Index grain = default_grain()) {
  if (end <= begin) return init;
  const Index n = end - begin;
  const Index max_chunks = std::max<Index>(1, num_threads());
  const Index chunks = std::clamp<Index>((n + grain - 1) / grain, 1, max_chunks);
  if (chunks == 1) {
    T acc = init;
    for (Index i = begin; i < end; ++i) acc = combine(acc, body(i));
    return acc;
  }
  bool& busy = detail::reduce_scratch_busy<T>();
  std::vector<T> local;
  const bool use_scratch = !busy;
  std::vector<T>& partial = use_scratch ? detail::reduce_scratch<T>() : local;
  if (use_scratch) busy = true;
  struct BusyReset {
    bool* flag;
    bool owned;
    ~BusyReset() {
      if (owned) *flag = false;
    }
  } busy_reset{&busy, use_scratch};
  partial.assign(static_cast<std::size_t>(chunks), init);
  const Index chunk_size = (n + chunks - 1) / chunks;
  const auto task = [&](Index c) {
    const Index b = begin + c * chunk_size;
    const Index e = std::min(end, b + chunk_size);
    T acc = init;
    for (Index i = b; i < e; ++i) acc = combine(acc, body(i));
    partial[static_cast<std::size_t>(c)] = acc;
  };
  global_pool().run_batch(chunks, task);
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Common case: parallel sum of body(i).
template <typename Body>
Real parallel_sum(Index begin, Index end, Body&& body,
                  Index grain = default_grain()) {
  return parallel_reduce(begin, end, Real{0},
                         std::forward<Body>(body), std::plus<Real>{}, grain);
}

/// Default chunk length of deterministic_sum: long enough that the serial
/// per-chunk sweeps dominate the fork-join, short enough that a panel-sized
/// range (dim x block) still fans out over the pool.
inline constexpr Index kDeterministicSumChunk = 16384;

/// Thread-count-independent parallel sum: the range is cut into fixed
/// `chunk`-length pieces (the partition depends only on the range and the
/// chunk length, never on num_threads()), each piece is summed serially in
/// index order on whichever worker picks it up, and the per-piece partials
/// are combined serially in piece order on the calling thread. Bitwise
/// deterministic across thread counts -- the reduction the K>1 sharded
/// sweeps use where parallel_sum's num_threads()-shaped chunking would make
/// the bits a function of the pool width. Reuses parallel_reduce's
/// per-thread partials scratch, so steady-state calls allocate nothing.
template <typename Body>
Real deterministic_sum(Index begin, Index end, Body&& body,
                       Index chunk = kDeterministicSumChunk) {
  if (end <= begin) return 0;
  PSDP_CHECK(chunk >= 1, "deterministic_sum: chunk must be positive");
  const Index n = end - begin;
  const Index pieces = (n + chunk - 1) / chunk;
  if (pieces == 1) {
    Real acc = 0;
    for (Index i = begin; i < end; ++i) acc += body(i);
    return acc;
  }
  bool& busy = detail::reduce_scratch_busy<Real>();
  std::vector<Real> local;
  const bool use_scratch = !busy;
  std::vector<Real>& partial =
      use_scratch ? detail::reduce_scratch<Real>() : local;
  if (use_scratch) busy = true;
  struct BusyReset {
    bool* flag;
    bool owned;
    ~BusyReset() {
      if (owned) *flag = false;
    }
  } busy_reset{&busy, use_scratch};
  partial.assign(static_cast<std::size_t>(pieces), Real{0});
  parallel_for(0, pieces, [&](Index c) {
    const Index b = begin + c * chunk;
    const Index e = std::min(end, b + chunk);
    Real acc = 0;
    for (Index i = b; i < e; ++i) acc += body(i);
    partial[static_cast<std::size_t>(c)] = acc;
  }, /*grain=*/1);
  Real acc = 0;
  for (const Real p : partial) acc += p;
  return acc;
}

/// Parallel max of body(i) over a non-empty range.
template <typename Body>
Real parallel_max(Index begin, Index end, Body&& body,
                  Index grain = default_grain()) {
  PSDP_CHECK(end > begin, "parallel_max over empty range");
  return parallel_reduce(
      begin, end, -std::numeric_limits<Real>::infinity(),
      std::forward<Body>(body),
      [](Real a, Real b) { return a > b ? a : b; }, grain);
}

}  // namespace psdp::par
