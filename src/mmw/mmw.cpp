#include "mmw/mmw.hpp"

#include <cmath>

namespace psdp::mmw {

MatrixMwu::MatrixMwu(Index m, Real eps0)
    : m_(m), eps0_(eps0), gain_sum_(m, m) {
  PSDP_CHECK(m >= 1, "MMW: dimension must be positive");
  PSDP_CHECK(eps0 > 0 && eps0 <= 0.5, "MMW: eps0 must lie in (0, 1/2]");
}

const Matrix& MatrixMwu::probability() {
  if (!probability_valid_) {
    Matrix scaled = gain_sum_;
    scaled.scale(eps0_);
    probability_ = linalg::expm_eig(scaled);
    const Real tr = linalg::trace(probability_);
    PSDP_NUMERIC_CHECK(tr > 0 && std::isfinite(tr),
                       "MMW: exponential trace is not positive finite");
    probability_.scale(1 / tr);
    probability_valid_ = true;
  }
  return probability_;
}

void MatrixMwu::play(const Matrix& gain) {
  PSDP_CHECK(gain.rows() == m_ && gain.cols() == m_,
             "MMW: gain dimension mismatch");
  PSDP_CHECK(linalg::is_symmetric(gain, 1e-8), "MMW: gain must be symmetric");
  cumulative_gain_ += linalg::frobenius_dot(gain, probability());
  gain_sum_.add_scaled(gain, 1);
  probability_valid_ = false;
  ++rounds_;
}

Real MatrixMwu::lambda_max_cumulative() const {
  return linalg::lambda_max_exact(gain_sum_);
}

Real MatrixMwu::regret_rhs() const {
  return lambda_max_cumulative() -
         std::log(static_cast<Real>(m_)) / eps0_;
}

bool MatrixMwu::regret_bound_holds(Real slack) const {
  return regret_lhs() >= regret_rhs() - slack;
}

}  // namespace psdp::mmw
