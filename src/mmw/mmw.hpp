// The matrix multiplicative weights (MMW) framework of Arora-Kale [AK07],
// Theorem 2.1 in the paper: for eps0 <= 1/2 and PSD gains M(t) <= I,
//
//   (1 + eps0) sum_t M(t) . P(t)  >=  lambda_max( sum_t M(t) ) - ln(m)/eps0
//
// where P(t) = W(t)/Tr[W(t)] and W(t) = exp(eps0 * sum_{t'<t} M(t')).
//
// Algorithm 3.1 *is* an instance of this game (its gain matrices are the
// scaled update steps), but it maintains its own exponent; this module is
// the framework in its own right. It backs:
//   * the width-dependent baseline solver (core/baseline.hpp), and
//   * property tests that verify the regret inequality on adversarial gain
//     sequences -- the linchpin the paper's Lemma 3.2 rests on.
#pragma once

#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"

namespace psdp::mmw {

using linalg::Matrix;

class MatrixMwu {
 public:
  /// Game over m x m symmetric matrices with learning rate eps0 in (0, 1/2].
  MatrixMwu(Index m, Real eps0);

  Index dim() const { return m_; }
  Real eps0() const { return eps0_; }
  Index rounds() const { return rounds_; }

  /// Current probability matrix P(t) = exp(eps0 G)/Tr[exp(eps0 G)] where
  /// G is the sum of gains played so far. P(0) = I/m. Cached between gains.
  const Matrix& probability();

  /// Play one round: record the gain M(t) . P(t) against the *current*
  /// probability matrix, then fold M into the cumulative gain.
  /// `gain` must be symmetric; the Theorem 2.1 guarantee additionally
  /// requires 0 <= gain <= I (asserted only in tests; the framework itself
  /// accepts any symmetric gain, as [AK07] generalizes).
  void play(const Matrix& gain);

  /// sum_t M(t) . P(t), the algorithm's cumulative expected gain.
  Real cumulative_gain() const { return cumulative_gain_; }

  /// lambda_max of the cumulative gain matrix (the best fixed action).
  Real lambda_max_cumulative() const;

  /// Right-hand side of Theorem 2.1: lambda_max(sum M) - ln(m)/eps0.
  Real regret_rhs() const;

  /// Left-hand side of Theorem 2.1: (1 + eps0) * cumulative_gain().
  Real regret_lhs() const { return (1 + eps0_) * cumulative_gain_; }

  /// True when the Theorem 2.1 inequality holds so far (up to `slack`
  /// absolute tolerance for roundoff).
  bool regret_bound_holds(Real slack = 1e-9) const;

 private:
  Index m_;
  Real eps0_;
  Matrix gain_sum_;        ///< G = sum of gains
  Matrix probability_;     ///< cached P for the current G
  bool probability_valid_ = false;
  Real cumulative_gain_ = 0;
  Index rounds_ = 0;
};

}  // namespace psdp::mmw
