// Cholesky factorization of symmetric positive (semi)definite matrices.
// Used for PSD verification, factorizing constraint matrices A_i = Q Q^T
// when the input is not prefactored, and solving small systems.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace psdp::linalg {

/// Attempts A = L L^T with L lower-triangular. Returns std::nullopt when a
/// pivot is more negative than -tol * trace-scale, i.e. A is (numerically)
/// not PSD. Semidefinite inputs are handled by zeroing tiny pivot columns.
std::optional<Matrix> cholesky(const Matrix& a, Real tol = 1e-10);

/// PSD test via cholesky().
bool is_psd(const Matrix& a, Real tol = 1e-10);

/// Solve L y = b for lower-triangular L (forward substitution).
Vector solve_lower(const Matrix& l, const Vector& b);

/// Solve L^T x = y for lower-triangular L (back substitution).
Vector solve_lower_transpose(const Matrix& l, const Vector& y);

/// Solve A x = b given the Cholesky factor L of A.
Vector cholesky_solve(const Matrix& l, const Vector& b);

}  // namespace psdp::linalg
