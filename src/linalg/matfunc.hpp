// Matrix functions of symmetric PSD matrices via eigendecomposition:
// square roots and (pseudo-)inverse square roots. The Appendix-A
// normalization B_i = C^{-1/2} A_i C^{-1/2} / b_i is built on these.
#pragma once

#include "linalg/eig.hpp"

namespace psdp::linalg {

/// PSD square root A^{1/2}. Eigenvalues below -tol*lambda_max are rejected
/// (input not PSD); small negatives from roundoff are clamped to zero.
Matrix sqrt_psd(const Matrix& a, Real tol = 1e-10);

/// Pseudo-inverse square root A^{-1/2}: eigenvalues <= tol*lambda_max are
/// treated as the null space and mapped to 0, matching the paper's
/// convention of restricting to the support of C.
Matrix inv_sqrt_psd(const Matrix& a, Real tol = 1e-10);

/// Pseudo-inverse A^+ with the same null-space convention.
Matrix pinv_psd(const Matrix& a, Real tol = 1e-10);

/// Numerical rank with the same eigenvalue threshold.
Index rank_psd(const Matrix& a, Real tol = 1e-10);

}  // namespace psdp::linalg
