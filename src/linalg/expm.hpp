// Dense matrix exponential, two independent implementations:
//
//  * expm_eig:  exact for symmetric input, via Jacobi eigendecomposition.
//    This is the reference the solvers' dense path uses (the paper's
//    "compute exp(Phi)" primitive) and what tests compare against.
//  * expm_pade: scaling-and-squaring with a [6/6] diagonal Pade
//    approximant. Works for any square matrix; cross-validates expm_eig.
//
// The *nearly-linear-work* exponential of Theorem 4.1 never forms exp(Phi);
// see taylor.hpp and core/bigdotexp.hpp.
#pragma once

#include "linalg/eig.hpp"
#include "linalg/matrix.hpp"

namespace psdp::linalg {

/// exp(A) for symmetric A via eigendecomposition.
Matrix expm_eig(const Matrix& a);

/// exp(A) from a precomputed eigendecomposition (lets callers reuse the
/// decomposition for both exp(A) and exp(A/2)).
Matrix expm_from_eig(const EigResult& eig, Real scale = 1);

/// exp(A) via [6/6] Pade with scaling and squaring.
Matrix expm_pade(const Matrix& a);

}  // namespace psdp::linalg
