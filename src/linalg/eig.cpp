#include "linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "par/cost_meter.hpp"

namespace psdp::linalg {

namespace {

/// Sum of squares of off-diagonal entries.
Real off_diagonal_norm2(const Matrix& a) {
  Real acc = 0;
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      if (i != j) acc += sq(a(i, j));
    }
  }
  return acc;
}

}  // namespace

EigResult jacobi_eig(const Matrix& input, const JacobiOptions& options) {
  PSDP_CHECK(input.square(), "jacobi_eig: matrix must be square");
  PSDP_CHECK(is_symmetric(input, 1e-8), "jacobi_eig: matrix must be symmetric");
  PSDP_CHECK(all_finite(input), "jacobi_eig: matrix has non-finite entries");

  const Index n = input.rows();
  Matrix a = input;
  a.symmetrize();
  Matrix v = Matrix::identity(n);

  const Real fro = frobenius_norm(a);
  const Real threshold2 = sq(options.tol * std::max(fro, Real{1}));

  bool converged = off_diagonal_norm2(a) <= threshold2;
  for (Index sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    // Cyclic-by-row sweep of all (p, q) pairs.
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const Real apq = a(p, q);
        if (apq == 0) continue;
        const Real app = a(p, p);
        const Real aqq = a(q, q);
        // Rotation angle: standard stable formulas (Golub & Van Loan 8.4).
        const Real theta = (aqq - app) / (2 * apq);
        const Real t = (theta >= 0 ? 1.0 : -1.0) /
                       (std::abs(theta) + std::sqrt(theta * theta + 1));
        const Real c = 1 / std::sqrt(t * t + 1);
        const Real s = t * c;

        // Apply the rotation to rows/columns p and q of A.
        for (Index k = 0; k < n; ++k) {
          const Real akp = a(k, p);
          const Real akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (Index k = 0; k < n; ++k) {
          const Real apk = a(p, k);
          const Real aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (Index k = 0; k < n; ++k) {
          const Real vkp = v(k, p);
          const Real vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = off_diagonal_norm2(a) <= threshold2;
  }
  PSDP_NUMERIC_CHECK(converged, "jacobi_eig: sweep limit exhausted");
  par::CostMeter::add_work(static_cast<std::uint64_t>(
      6 * n * n * n));  // ~ sweeps * n^2 rotations * O(n) each
  par::CostMeter::add_depth(static_cast<std::uint64_t>(n));

  // Sort eigenpairs by decreasing eigenvalue.
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&](Index i, Index j) { return a(i, i) > a(j, j); });

  EigResult result;
  result.eigenvalues = Vector(n);
  result.eigenvectors = Matrix(n, n);
  for (Index c = 0; c < n; ++c) {
    const Index src = order[static_cast<std::size_t>(c)];
    result.eigenvalues[c] = a(src, src);
    for (Index r = 0; r < n; ++r) result.eigenvectors(r, c) = v(r, src);
  }
  return result;
}

Real lambda_max_exact(const Matrix& a) {
  const EigResult eig = jacobi_eig(a);
  return eig.eigenvalues[0];
}

Matrix reconstruct(const EigResult& eig, const std::function<Real(Real)>& f) {
  const Index n = eig.eigenvalues.size();
  PSDP_CHECK(eig.eigenvectors.rows() == n && eig.eigenvectors.cols() == n,
             "reconstruct: inconsistent eigendecomposition");
  // B = V diag(f(lambda)) V^T computed as (V * D) * V^T.
  Matrix vd = eig.eigenvectors;
  for (Index c = 0; c < n; ++c) {
    const Real fl = f(eig.eigenvalues[c]);
    for (Index r = 0; r < n; ++r) vd(r, c) *= fl;
  }
  Matrix result = gemm(vd, eig.eigenvectors.transposed());
  result.symmetrize();
  return result;
}

}  // namespace psdp::linalg
