#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "par/cost_meter.hpp"
#include "par/parallel.hpp"

namespace psdp::linalg {

Matrix::Matrix(Index rows, Index cols, Real fill) : rows_(rows), cols_(cols) {
  PSDP_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  data_.assign(static_cast<std::size_t>(rows * cols), fill);
}

Matrix Matrix::identity(Index n) {
  Matrix a(n, n);
  for (Index i = 0; i < n; ++i) a(i, i) = 1;
  return a;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix a(d.size(), d.size());
  for (Index i = 0; i < d.size(); ++i) a(i, i) = d[i];
  return a;
}

Matrix Matrix::outer(const Vector& v) {
  const Index n = v.size();
  Matrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) a(i, j) = v[i] * v[j];
  }
  return a;
}

Matrix Matrix::rotation2d(Real theta) {
  Matrix r(2, 2);
  r(0, 0) = std::cos(theta);
  r(0, 1) = -std::sin(theta);
  r(1, 0) = std::sin(theta);
  r(1, 1) = std::cos(theta);
  return r;
}

Matrix& Matrix::reshape(Index rows, Index cols) {
  PSDP_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  data_.resize(static_cast<std::size_t>(rows * cols));
  rows_ = rows;
  cols_ = cols;
  return *this;
}

Real& Matrix::operator()(Index i, Index j) {
  PSDP_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  return data_[static_cast<std::size_t>(i * cols_ + j)];
}

Real Matrix::operator()(Index i, Index j) const {
  PSDP_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  return data_[static_cast<std::size_t>(i * cols_ + j)];
}

std::span<Real> Matrix::row(Index i) {
  PSDP_ASSERT(i >= 0 && i < rows_);
  return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
}

std::span<const Real> Matrix::row(Index i) const {
  PSDP_ASSERT(i >= 0 && i < rows_);
  return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
}

Matrix& Matrix::fill(Real value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Matrix& Matrix::scale(Real s) {
  for (Real& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::add_scaled(const Matrix& other, Real s) {
  PSDP_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "add_scaled: dimension mismatch");
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) data_[i] += s * other.data_[i];
  return *this;
}

Matrix& Matrix::add_scaled_identity(Real s) {
  PSDP_CHECK(square(), "add_scaled_identity: matrix must be square");
  for (Index i = 0; i < rows_; ++i) (*this)(i, i) += s;
  return *this;
}

Matrix& Matrix::symmetrize() {
  PSDP_CHECK(square(), "symmetrize: matrix must be square");
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = i + 1; j < cols_; ++j) {
      const Real v = ((*this)(i, j) + (*this)(j, i)) / 2;
      (*this)(i, j) = v;
      (*this)(j, i) = v;
    }
  }
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

void matvec(const Matrix& a, const Vector& x, Vector& y) {
  PSDP_CHECK(a.cols() == x.size(), "matvec: dimension mismatch");
  if (y.size() != a.rows()) y = Vector(a.rows());
  par::parallel_for(0, a.rows(), [&](Index i) {
    const Real* row = a.data() + i * a.cols();
    Real acc = 0;
    for (Index j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }, /*grain=*/8);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * a.rows() * a.cols()));
  par::CostMeter::add_depth(par::reduction_depth(a.cols()));
}

Vector matvec(const Matrix& a, const Vector& x) {
  Vector y(a.rows());
  matvec(a, x, y);
  return y;
}

Vector matvec_transpose(const Matrix& a, const Vector& x) {
  PSDP_CHECK(a.rows() == x.size(), "matvec_transpose: dimension mismatch");
  Vector y(a.cols());
  // Column-sweep order keeps reads contiguous; parallelize over output
  // blocks to avoid write conflicts.
  par::parallel_for_chunked(0, a.cols(), [&](Index jb, Index je) {
    for (Index i = 0; i < a.rows(); ++i) {
      const Real* row = a.data() + i * a.cols();
      const Real xi = x[i];
      for (Index j = jb; j < je; ++j) y[j] += xi * row[j];
    }
  }, /*grain=*/8);
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * a.rows() * a.cols()));
  par::CostMeter::add_depth(par::reduction_depth(a.rows()));
  return y;
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  PSDP_CHECK(a.cols() == b.rows(), "gemm: inner dimensions differ");
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order: streaming access to both B and C rows.
  par::parallel_for(0, a.rows(), [&](Index i) {
    Real* crow = c.data() + i * c.cols();
    for (Index k = 0; k < a.cols(); ++k) {
      const Real aik = a(i, k);
      if (aik == 0) continue;
      const Real* brow = b.data() + k * b.cols();
      for (Index j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }, /*grain=*/1);
  par::CostMeter::add_work(
      static_cast<std::uint64_t>(2 * a.rows() * a.cols() * b.cols()));
  par::CostMeter::add_depth(par::reduction_depth(a.cols()));
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.add_scaled(b, 1);
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.add_scaled(b, -1);
  return c;
}

Real trace(const Matrix& a) {
  PSDP_CHECK(a.square(), "trace: matrix must be square");
  Real acc = 0;
  for (Index i = 0; i < a.rows(); ++i) acc += a(i, i);
  return acc;
}

Real frobenius_dot(const Matrix& a, const Matrix& b) {
  PSDP_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "frobenius_dot: dimension mismatch");
  const Index n = a.rows() * a.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  const Real result =
      par::parallel_sum(0, n, [&](Index i) { return pa[i] * pb[i]; });
  par::CostMeter::add_work(static_cast<std::uint64_t>(2 * n));
  par::CostMeter::add_depth(par::reduction_depth(n));
  return result;
}

Real frobenius_norm(const Matrix& a) {
  return std::sqrt(frobenius_dot(a, a));
}

Real quadratic_form(const Matrix& a, const Vector& x, const Vector& y) {
  return dot(x, matvec(a, y));
}

Real max_abs_diff(const Matrix& a, const Matrix& b) {
  PSDP_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "max_abs_diff: dimension mismatch");
  Real worst = 0;
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

bool is_symmetric(const Matrix& a, Real tol) {
  if (!a.square()) return false;
  const Real scale = std::max(Real{1}, frobenius_norm(a));
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = i + 1; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - a(j, i)) > tol * scale) return false;
    }
  }
  return true;
}

bool all_finite(const Matrix& a) {
  const Real* p = a.data();
  const Index n = a.rows() * a.cols();
  for (Index i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

}  // namespace psdp::linalg
