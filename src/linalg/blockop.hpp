// Block (multi-vector) operators: the SpMM-style counterpart of SymmetricOp.
//
// A BlockOp applies a symmetric operator to a row-major n x b *panel* of b
// vectors at once (panel column t is vector t). Streaming the operator's
// data once per panel instead of once per vector amortizes the sparse-matrix
// traversal across all b right-hand sides and turns the inner loops into
// contiguous length-b dense updates -- the single biggest constant-factor
// lever in bigDotExp, whose r sketch rows are exactly such a panel.
//
// Panels are plain linalg::Matrix (row-major, so row i holds the i-th
// coordinate of all b vectors contiguously). Operators must accept any
// panel width; callers pick the width (the block size) to trade cache
// footprint against traversal amortization.
//
// This header also hosts the panel-kernel timing primitive
// (time_block_kernel) shared by the KernelPlan autotuner
// (sparse/kernel_plan.hpp) and the bench_kernels sweeps: both answer the
// same question -- "which panel kernel is fastest on this data?" -- and
// must answer it the same way.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"
#include "linalg/power.hpp"

namespace psdp::linalg {

/// A symmetric linear operator applied to a row-major n x b panel:
/// y(:, t) = A x(:, t) for every column t. Implementations may assume
/// x and y do not alias and must resize y to x's shape if needed.
using BlockOp = std::function<void(const Matrix& x, Matrix& y)>;

/// Fallback adapter: applies a single-vector operator column by column.
/// Correct for any SymmetricOp but amortizes nothing; real data structures
/// (Csr::apply_block, FactorizedSet::weighted_apply_block) provide native
/// panel kernels instead.
BlockOp block_op_from_symmetric(SymmetricOp op, Index dim);

/// Copies column `col` of a panel into a vector (resizing it).
void panel_column(const Matrix& panel, Index col, Vector& out);

/// Writes a vector into column `col` of a panel.
void set_panel_column(Matrix& panel, Index col, const Vector& in);

/// Best-of-`reps` wall-clock seconds of a panel-kernel thunk. The minimum
/// over repetitions (not the mean) is what both the KernelPlan autotuner
/// and the bench_kernels sweeps record: kernel selection wants the
/// noise-free cost, and the floor of a few reps is the cheapest robust
/// estimate of it.
double time_block_kernel(int reps, const std::function<void()>& body);

}  // namespace psdp::linalg
