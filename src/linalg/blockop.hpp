// Block (multi-vector) operators: the SpMM-style counterpart of SymmetricOp.
//
// A BlockOp applies a symmetric operator to a row-major n x b *panel* of b
// vectors at once (panel column t is vector t). Streaming the operator's
// data once per panel instead of once per vector amortizes the sparse-matrix
// traversal across all b right-hand sides and turns the inner loops into
// contiguous length-b dense updates -- the single biggest constant-factor
// lever in bigDotExp, whose r sketch rows are exactly such a panel.
//
// Panels are plain linalg::Matrix (row-major, so row i holds the i-th
// coordinate of all b vectors contiguously). Operators must accept any
// panel width; callers pick the width (the block size) to trade cache
// footprint against traversal amortization.
//
// This header also hosts the panel-kernel timing primitive
// (time_block_kernel) shared by the KernelPlan autotuner
// (sparse/kernel_plan.hpp) and the bench_kernels sweeps: both answer the
// same question -- "which panel kernel is fastest on this data?" -- and
// must answer it the same way.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"
#include "linalg/matrixf.hpp"
#include "linalg/power.hpp"

namespace psdp::linalg {

/// A symmetric linear operator applied to a row-major n x b panel:
/// y(:, t) = A x(:, t) for every column t. Implementations may assume
/// x and y do not alias and must resize y to x's shape if needed.
using BlockOp = std::function<void(const Matrix& x, Matrix& y)>;

/// Float32 panel operator of the mixed-precision sketch mode: same
/// contract as BlockOp over MatrixF panels. Only the sketch/Taylor panels
/// run in float; every certificate-bearing quantity stays double (see
/// BigDotExpOptions::panel_precision).
using BlockOpF = std::function<void(const MatrixF& x, MatrixF& y)>;

/// Fallback adapter: applies a single-vector operator column by column.
/// Correct for any SymmetricOp but amortizes nothing; real data structures
/// (Csr::apply_block, FactorizedSet::weighted_apply_block) provide native
/// panel kernels instead.
BlockOp block_op_from_symmetric(SymmetricOp op, Index dim);

/// Copies column `col` of a panel into a vector (resizing it).
void panel_column(const Matrix& panel, Index col, Vector& out);

/// Writes a vector into column `col` of a panel.
void set_panel_column(Matrix& panel, Index col, const Vector& in);

/// Knobs of time_block_kernel: how many repetitions, how many untimed
/// warmup runs before them, and a wall-clock floor below which extra
/// repetitions keep running. The defaults reproduce the original
/// best-of-2, no-warmup behavior; the KernelPlan autotuner raises them
/// (AutotuneOptions::warmup / min_sample_seconds) so its decisions are
/// stable on noisy or shared machines.
struct TimingOptions {
  /// Minimum timed repetitions; the best (minimum) is returned.
  int reps = 2;
  /// Untimed warmup runs before the first timed one (cache/branch-predictor
  /// priming; also absorbs first-touch page faults of fresh buffers).
  int warmup = 0;
  /// Keep timing additional repetitions until the *total* timed wall clock
  /// reaches this floor (0 = no floor). Capped at 64 repetitions overall so
  /// a mis-sized floor cannot hang a tuner.
  double min_elapsed_seconds = 0;
};

/// Best-of-N wall-clock seconds of a panel-kernel thunk under `options`.
/// The minimum over repetitions (not the mean) is what both the KernelPlan
/// autotuner and the bench_kernels sweeps record: kernel selection wants
/// the noise-free cost, and the floor of a few reps is the cheapest robust
/// estimate of it.
double time_block_kernel(const TimingOptions& options,
                         const std::function<void()>& body);

/// time_block_kernel with {reps, no warmup, no elapsed floor}.
double time_block_kernel(int reps, const std::function<void()>& body);

}  // namespace psdp::linalg
