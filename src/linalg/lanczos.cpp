#include "linalg/lanczos.hpp"

#include <cmath>

#include "rand/rng.hpp"

namespace psdp::linalg {

namespace {

/// Number of eigenvalues of the tridiagonal (alpha, beta) strictly less
/// than x, via the Sturm sequence of leading-principal-minor pivots.
Index sturm_count(const Vector& alpha, const Vector& beta, Real x) {
  const Index k = alpha.size();
  Index count = 0;
  Real d = 1;
  for (Index i = 0; i < k; ++i) {
    const Real b2 = i > 0 ? sq(beta[i - 1]) : Real{0};
    d = alpha[i] - x - (d != 0 ? b2 / d : b2 / kEps);
    if (d < 0) ++count;
  }
  return count;
}

}  // namespace

Vector tridiagonal_eigenvalues(const Vector& alpha, const Vector& beta) {
  const Index k = alpha.size();
  PSDP_CHECK(k >= 1, "tridiagonal_eigenvalues: empty matrix");
  PSDP_CHECK(beta.size() == k - 1,
             "tridiagonal_eigenvalues: beta must have size k-1");
  // Gershgorin bounds.
  Real lo = alpha[0], hi = alpha[0];
  for (Index i = 0; i < k; ++i) {
    Real radius = 0;
    if (i > 0) radius += std::abs(beta[i - 1]);
    if (i < k - 1) radius += std::abs(beta[i]);
    lo = std::min(lo, alpha[i] - radius);
    hi = std::max(hi, alpha[i] + radius);
  }
  const Real span = std::max(hi - lo, Real{1});

  Vector eigenvalues(k);
  // Find the j-th smallest eigenvalue by bisection on the Sturm count.
  for (Index j = 0; j < k; ++j) {
    Real a = lo, b = hi;
    for (int it = 0; it < 128 && b - a > 1e-15 * span; ++it) {
      const Real mid = (a + b) / 2;
      if (sturm_count(alpha, beta, mid) <= j) {
        a = mid;
      } else {
        b = mid;
      }
    }
    eigenvalues[k - 1 - j] = (a + b) / 2;  // store decreasing
  }
  return eigenvalues;
}

LanczosResult lanczos_lambda_max(const SymmetricOp& op, Index n,
                                 const LanczosOptions& options) {
  PSDP_CHECK(n >= 1, "lanczos: dimension must be positive");
  PSDP_CHECK(options.max_dim >= 1, "lanczos: max_dim must be positive");
  const Index k_max = std::min(options.max_dim, n);

  rand::Rng rng(options.seed);
  std::vector<Vector> basis;  // orthonormal Lanczos vectors
  Vector v(n);
  for (Index i = 0; i < n; ++i) v[i] = rng.normal();
  {
    const Real nrm = norm2(v);
    PSDP_ASSERT(nrm > 0);
    v.scale(1 / nrm);
  }
  basis.push_back(v);

  Vector alpha(k_max);
  Vector beta(std::max<Index>(k_max - 1, 0));
  Vector w(n);
  LanczosResult result;

  for (Index j = 0; j < k_max; ++j) {
    op(basis[static_cast<std::size_t>(j)], w);
    ++result.matvecs;
    alpha[j] = dot(w, basis[static_cast<std::size_t>(j)]);
    // w -= alpha_j v_j + beta_{j-1} v_{j-1}; then full reorthogonalization.
    w.add_scaled(basis[static_cast<std::size_t>(j)], -alpha[j]);
    if (j > 0) w.add_scaled(basis[static_cast<std::size_t>(j - 1)], -beta[j - 1]);
    for (const Vector& u : basis) {
      w.add_scaled(u, -dot(w, u));
    }

    // Ritz values of the current tridiagonal section.
    Vector a_sec(j + 1);
    Vector b_sec(j);
    for (Index i = 0; i <= j; ++i) a_sec[i] = alpha[i];
    for (Index i = 0; i < j; ++i) b_sec[i] = beta[i];
    const Vector ritz = tridiagonal_eigenvalues(a_sec, b_sec);
    result.lambda_max = ritz[0];

    const Real b_next = norm2(w);
    // Residual bound for the top Ritz pair: ||A y - theta y|| <= beta_k.
    // (The |s_k| factor would sharpen it; beta_k alone is already a valid
    // and simple certificate.)
    result.residual = b_next;
    if (b_next <= options.tol * std::max(std::abs(result.lambda_max), Real{1})) {
      result.converged = true;
      return result;
    }
    if (j + 1 < k_max) {
      beta[j] = b_next;
      Vector next = w;
      next.scale(1 / b_next);
      basis.push_back(std::move(next));
    }
  }
  // Krylov budget exhausted: lambda_max is still a valid Ritz value (lower
  // bound); converged stays false and residual reports the certificate gap.
  return result;
}

LanczosResult lanczos_lambda_max(const Matrix& a,
                                 const LanczosOptions& options) {
  PSDP_CHECK(a.square(), "lanczos: matrix must be square");
  const SymmetricOp op = [&a](const Vector& x, Vector& y) { matvec(a, x, y); };
  return lanczos_lambda_max(op, a.rows(), options);
}

}  // namespace psdp::linalg
