// Lanczos iteration for extremal eigenvalues of symmetric operators.
//
// Power iteration (power.hpp) converges at rate (lambda_2/lambda_1)^t and
// stalls on flat spectra; Lanczos converges like a Chebyshev-accelerated
// method and needs far fewer matvecs for the same accuracy. The factorized
// solver uses it to compute the measured-tight dual rescaling, where each
// matvec costs O(q) and the spectrum of Psi is flat by design (Lemma 3.2
// caps it while the trace keeps growing).
//
// Implementation: classic Lanczos tridiagonalization with full
// reorthogonalization (the Krylov dimensions used here are tiny, so the
// O(k^2 m) reorthogonalization cost is irrelevant and the numerical
// behaviour is clean), followed by a QL eigensolve of the tridiagonal
// matrix via bisection on Sturm sequences.
#pragma once

#include <cstdint>

#include "linalg/power.hpp"

namespace psdp::linalg {

struct LanczosOptions {
  /// Maximum Krylov dimension (matvec budget).
  Index max_dim = 64;
  /// Convergence: stop when the residual bound |beta_k * s_k| of the top
  /// Ritz pair drops below tol * |theta_max|.
  Real tol = 1e-10;
  std::uint64_t seed = 0xB5297A4Du;
};

struct LanczosResult {
  Real lambda_max = 0;  ///< top Ritz value (a lower bound on lambda_max)
  Real residual = 0;    ///< |beta_k s_k|: ||A v - theta v|| for the Ritz pair
  Index matvecs = 0;
  bool converged = false;
};

/// Largest eigenvalue of a symmetric operator of dimension n.
/// For PSD operators the returned lambda_max + residual is a certified
/// upper bound on the true lambda_max (Ritz residual bound).
LanczosResult lanczos_lambda_max(const SymmetricOp& op, Index n,
                                 const LanczosOptions& options = {});

/// Convenience overload for dense symmetric matrices.
LanczosResult lanczos_lambda_max(const Matrix& a,
                                 const LanczosOptions& options = {});

/// All eigenvalues of a symmetric tridiagonal matrix given its diagonal
/// `alpha` (size k) and off-diagonal `beta` (size k-1), in decreasing
/// order. Bisection on Sturm sequence sign counts: O(k^2) and robust.
Vector tridiagonal_eigenvalues(const Vector& alpha, const Vector& beta);

}  // namespace psdp::linalg
