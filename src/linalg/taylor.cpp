#include "linalg/taylor.hpp"

#include <cmath>

namespace psdp::linalg {

Index taylor_exp_degree(Real kappa, Real eps) {
  PSDP_CHECK(kappa >= 0, "taylor_exp_degree: kappa must be non-negative");
  PSDP_CHECK(eps > 0 && eps < 1, "taylor_exp_degree: eps must lie in (0,1)");
  const Real e2 = std::exp(Real{2});
  const Real k = std::max(e2 * kappa, std::log(2 / eps));
  return std::max<Index>(1, static_cast<Index>(std::ceil(k)));
}

void apply_exp_taylor(const SymmetricOp& op, Index degree, const Vector& x,
                      Vector& y) {
  PSDP_CHECK(degree >= 1, "apply_exp_taylor: degree must be >= 1");
  const Index n = x.size();
  // term_j = B^j x / j!, accumulated into y.
  Vector term = x;
  y = x;
  Vector next(n);
  for (Index j = 1; j < degree; ++j) {
    op(term, next);
    next.scale(Real{1} / static_cast<Real>(j));
    std::swap(term, next);
    y.add_scaled(term, 1);
  }
}

Matrix exp_taylor_matrix(const Matrix& b, Index degree) {
  PSDP_CHECK(b.square(), "exp_taylor_matrix: matrix must be square");
  PSDP_CHECK(degree >= 1, "exp_taylor_matrix: degree must be >= 1");
  const Index n = b.rows();
  Matrix acc = Matrix::identity(n);
  Matrix term = Matrix::identity(n);
  for (Index j = 1; j < degree; ++j) {
    term = gemm(term, b);
    term.scale(Real{1} / static_cast<Real>(j));
    acc.add_scaled(term, 1);
  }
  return acc;
}

}  // namespace psdp::linalg
