#include "linalg/taylor.hpp"

#include <cmath>
#include <utility>

#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "simd/simd.hpp"

namespace psdp::linalg {

Index taylor_exp_degree(Real kappa, Real eps) {
  PSDP_CHECK(kappa >= 0, "taylor_exp_degree: kappa must be non-negative");
  PSDP_CHECK(eps > 0 && eps < 1, "taylor_exp_degree: eps must lie in (0,1)");
  const Real e2 = std::exp(Real{2});
  const Real k = std::max(e2 * kappa, std::log(2 / eps));
  return std::max<Index>(1, static_cast<Index>(std::ceil(k)));
}

void apply_exp_taylor(const SymmetricOp& op, Index degree, const Vector& x,
                      Vector& y) {
  PSDP_CHECK(degree >= 1, "apply_exp_taylor: degree must be >= 1");
  const Index n = x.size();
  // term_j = B^j x / j!, accumulated into y.
  Vector term = x;
  y = x;
  Vector next(n);
  for (Index j = 1; j < degree; ++j) {
    op(term, next);
    next.scale(Real{1} / static_cast<Real>(j));
    std::swap(term, next);
    y.add_scaled(term, 1);
  }
  // Vector arithmetic of the recurrence (the op charges its own matvecs).
  // Work only: this function runs inside worker threads on the reference
  // sketch path, and depth is charged by the driving thread (the cost_meter
  // convention) -- bigDotExp charges the chain's critical path once.
  par::CostMeter::add_work(static_cast<std::uint64_t>(3 * n * (degree - 1)));
}

void apply_exp_taylor_block(const BlockOp& op, Index degree, const Matrix& x,
                            Matrix& y, TaylorBlockWorkspace& workspace,
                            Real op_scale) {
  PSDP_CHECK(degree >= 1, "apply_exp_taylor_block: degree must be >= 1");
  PSDP_CHECK(x.cols() >= 1, "apply_exp_taylor_block: panel must be non-empty");
  const Index n = x.rows();
  const Index b = x.cols();
  // term_j = B^j X / j!, accumulated into Y; `workspace.term` and
  // `workspace.next` are the only storage touched and are recycled across
  // calls -- the loop itself allocates nothing once they have X's shape
  // (capacity-preserving reshape, so a narrower last panel does not force
  // the next call to reallocate).
  workspace.term = x;
  y = x;
  workspace.next.reshape(n, b);
  // The scale-and-accumulate tail of each step runs as one fused parallel
  // sweep through the dispatch seam (taylor_step: v = next*s; next = v;
  // y += v). The store of v rounds the product before the add in every
  // backend, so this is bitwise identical to the scale(); add_scaled()
  // pair it replaces -- under every ISA.
  const simd::KernelTable& kt = simd::active_kernels();
  for (Index j = 1; j < degree; ++j) {
    op(workspace.term, workspace.next);
    const Real s = op_scale / static_cast<Real>(j);
    par::parallel_for_chunked(0, n * b, [&](Index lo, Index hi) {
      kt.taylor_step(workspace.next.data(), y.data(), s, lo, hi);
    }, /*grain=*/8192);
    std::swap(workspace.term, workspace.next);
  }
  par::CostMeter::add_work(
      static_cast<std::uint64_t>(3 * n * b * (degree - 1)));
  par::CostMeter::add_depth(static_cast<std::uint64_t>(degree - 1));
}

void apply_exp_taylor_block_f(const BlockOpF& op, Index degree,
                              const MatrixF& x, MatrixF& y,
                              TaylorBlockWorkspaceF& workspace,
                              float op_scale) {
  PSDP_CHECK(degree >= 1, "apply_exp_taylor_block_f: degree must be >= 1");
  PSDP_CHECK(x.cols() >= 1,
             "apply_exp_taylor_block_f: panel must be non-empty");
  const Index n = x.rows();
  const Index b = x.cols();
  workspace.term = x;
  y = x;
  workspace.next.reshape(n, b);
  const simd::KernelTable& kt = simd::active_kernels();
  for (Index j = 1; j < degree; ++j) {
    op(workspace.term, workspace.next);
    const float s = op_scale / static_cast<float>(j);
    par::parallel_for_chunked(0, n * b, [&](Index lo, Index hi) {
      kt.taylor_step_f(workspace.next.data(), y.data(), s, lo, hi);
    }, /*grain=*/8192);
    std::swap(workspace.term, workspace.next);
  }
  par::CostMeter::add_work(
      static_cast<std::uint64_t>(3 * n * b * (degree - 1)));
  par::CostMeter::add_depth(static_cast<std::uint64_t>(degree - 1));
}

void apply_exp_taylor_block(const BlockOp& op, Index degree, const Matrix& x,
                            Matrix& y) {
  TaylorBlockWorkspace workspace;
  apply_exp_taylor_block(op, degree, x, y, workspace);
}

Matrix exp_taylor_matrix(const Matrix& b, Index degree) {
  PSDP_CHECK(b.square(), "exp_taylor_matrix: matrix must be square");
  PSDP_CHECK(degree >= 1, "exp_taylor_matrix: degree must be >= 1");
  const Index n = b.rows();
  Matrix acc = Matrix::identity(n);
  Matrix term = Matrix::identity(n);
  for (Index j = 1; j < degree; ++j) {
    term = gemm(term, b);
    term.scale(Real{1} / static_cast<Real>(j));
    acc.add_scaled(term, 1);
  }
  return acc;
}

}  // namespace psdp::linalg
