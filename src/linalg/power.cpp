#include "linalg/power.hpp"

#include <cmath>

#include "rand/rng.hpp"

namespace psdp::linalg {

PowerResult power_iteration(const SymmetricOp& op, Index n,
                            const PowerOptions& options) {
  PSDP_CHECK(n >= 1, "power_iteration: dimension must be positive");
  rand::Rng rng(options.seed);
  Vector x(n);
  for (Index i = 0; i < n; ++i) x[i] = rng.normal();
  const Real nrm = norm2(x);
  PSDP_ASSERT(nrm > 0);
  x.scale(1 / nrm);

  Vector y(n);
  PowerResult result;
  Real prev = 0;
  for (Index it = 0; it < options.max_iterations; ++it) {
    op(x, y);
    const Real rayleigh = dot(x, y);
    const Real ynorm = norm2(y);
    result.iterations = it + 1;
    if (ynorm == 0) {
      // Operator annihilated the iterate: restart from a fresh direction,
      // unless the operator is (numerically) zero.
      result.lambda_max = 0;
      result.converged = true;
      return result;
    }
    for (Index i = 0; i < n; ++i) x[i] = y[i] / ynorm;
    if (it > 0 && std::abs(rayleigh - prev) <=
                      options.tol * std::max(Real{1}, std::abs(rayleigh))) {
      result.lambda_max = rayleigh;
      result.converged = true;
      return result;
    }
    prev = rayleigh;
  }
  result.lambda_max = prev;
  result.converged = false;
  return result;
}

PowerResult power_iteration(const Matrix& a, const PowerOptions& options) {
  PSDP_CHECK(a.square(), "power_iteration: matrix must be square");
  SymmetricOp op = [&a](const Vector& x, Vector& y) { matvec(a, x, y); };
  return power_iteration(op, a.rows(), options);
}

Real lambda_max_upper_bound(const SymmetricOp& op, Index n,
                            const PowerOptions& options) {
  const PowerResult r = power_iteration(op, n, options);
  return r.lambda_max * (1 + 2 * options.tol);
}

}  // namespace psdp::linalg
