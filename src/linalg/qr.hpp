// Householder QR factorization and factor compression.
//
// The paper's preprocessing remark (Section 1.2, "Work and Depth") assumes
// the constraint matrices can be brought into factorized form A_i = Q_i Q_i^T
// "using standard parallel QR factorization". Two pieces of that pipeline
// live here:
//
//  * qr()               -- thin Householder QR, A (m x n, m >= n) = Q R with
//                          Q m x n orthonormal columns and R n x n upper
//                          triangular. Rotations are applied in parallel
//                          across the trailing columns.
//  * compress_factor()  -- given a (possibly rank-inflated) factor G with
//                          A = G G^T, returns a factor L with at most
//                          min(rows, cols) columns and L L^T = G G^T
//                          exactly (up to roundoff): the LQ trick
//                          G = L Q_orth, so G G^T = L L^T. This shrinks the
//                          q of Corollary 1.2 when factors are redundant.
//
// Column-pivoted rank-revealing behaviour for PSD matrices is provided by
// pivoted_cholesky.hpp, which is the cheaper tool when the matrix itself
// (not a factor) is the input.
#pragma once

#include "linalg/matrix.hpp"

namespace psdp::linalg {

/// Thin QR factorization of an m x n matrix with m >= n.
struct QrResult {
  Matrix q;  ///< m x n, orthonormal columns
  Matrix r;  ///< n x n, upper triangular, non-negative diagonal
};

/// Householder QR. Requires rows >= cols and finite entries; throws
/// InvalidArgument otherwise. Rank-deficient input is allowed (R gets zero
/// diagonal entries; Q's corresponding columns complete an orthonormal
/// basis).
QrResult qr(const Matrix& a);

/// Solve the least-squares problem min ||A x - b||_2 for full-column-rank A
/// (m >= n) via QR: x = R^{-1} Q^T b. Throws NumericalError when R is
/// numerically singular (|R_jj| <= tol * ||A||_F).
Vector least_squares(const Matrix& a, const Vector& b, Real tol = 1e-12);

/// Given G (m x k) with A = G G^T, return L (m x r), r = min(m, k), with
/// L L^T = G G^T. When k > m this strictly shrinks the factor; when k <= m
/// it returns a lower-trapezoidal equivalent of the same width. Columns
/// whose norm falls below drop_tol * ||G||_F are removed.
Matrix compress_factor(const Matrix& g, Real drop_tol = 0);

}  // namespace psdp::linalg
