#include "linalg/vector.hpp"

#include <algorithm>
#include <cmath>

#include "par/parallel.hpp"

namespace psdp::linalg {

Vector::Vector(Index n, Real fill) {
  PSDP_CHECK(n >= 0, "vector size must be non-negative");
  data_.assign(static_cast<std::size_t>(n), fill);
}

Vector::Vector(std::initializer_list<Real> values) : data_(values) {}

Vector::Vector(std::vector<Real> values) : data_(std::move(values)) {}

Real& Vector::operator[](Index i) {
  PSDP_ASSERT(i >= 0 && i < size());
  return data_[static_cast<std::size_t>(i)];
}

Real Vector::operator[](Index i) const {
  PSDP_ASSERT(i >= 0 && i < size());
  return data_[static_cast<std::size_t>(i)];
}

Vector& Vector::resize(Index n) {
  PSDP_CHECK(n >= 0, "vector size must be non-negative");
  data_.resize(static_cast<std::size_t>(n));
  return *this;
}

Vector& Vector::fill(Real value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Vector& Vector::scale(Real s) {
  for (Real& v : data_) v *= s;
  return *this;
}

Vector& Vector::add_scaled(const Vector& other, Real s) {
  PSDP_CHECK(size() == other.size(), "add_scaled: size mismatch");
  for (Index i = 0; i < size(); ++i) {
    data_[static_cast<std::size_t>(i)] += s * other[i];
  }
  return *this;
}

Real dot(const Vector& x, const Vector& y) {
  PSDP_CHECK(x.size() == y.size(), "dot: size mismatch");
  return par::parallel_sum(0, x.size(), [&](Index i) { return x[i] * y[i]; });
}

Real norm2_squared(const Vector& x) { return dot(x, x); }

Real norm2(const Vector& x) { return std::sqrt(norm2_squared(x)); }

Real sum(const Vector& x) {
  return par::parallel_sum(0, x.size(), [&](Index i) { return x[i]; });
}

Real norm1(const Vector& x) {
  return par::parallel_sum(0, x.size(),
                           [&](Index i) { return std::abs(x[i]); });
}

Real max_entry(const Vector& x) {
  return par::parallel_max(0, x.size(), [&](Index i) { return x[i]; });
}

bool all_finite(const Vector& x) {
  for (Index i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i])) return false;
  }
  return true;
}

bool is_nonnegative(const Vector& x, Real tol) {
  for (Index i = 0; i < x.size(); ++i) {
    if (x[i] < -tol) return false;
  }
  return true;
}

}  // namespace psdp::linalg
