// Symmetric eigendecomposition via Householder tridiagonalization followed
// by the implicit-shift QL algorithm (the EISPACK tred2/tql2 pair).
//
// Complexity is O(m^3) like cyclic Jacobi but with ~5-10x smaller
// constants at moderate m, which matters because the dense solver pays one
// eigendecomposition per iteration. Jacobi (eig.hpp) remains the reference
// implementation; sym_eig() picks between them by size, and tests
// cross-validate the two on random matrices.
#pragma once

#include "linalg/eig.hpp"

namespace psdp::linalg {

/// Full symmetric eigendecomposition via tred2 + tql2. Same contract as
/// jacobi_eig: eigenvalues sorted decreasing, eigenvectors as columns.
EigResult tridiag_eig(const Matrix& a);

/// Dimension at which sym_eig switches from Jacobi to tridiagonal QL.
inline constexpr Index kSymEigSwitchDim = 32;

/// Size-dispatched symmetric eigendecomposition: Jacobi below
/// kSymEigSwitchDim (lower latency, reference-grade accuracy), QL above.
EigResult sym_eig(const Matrix& a);

}  // namespace psdp::linalg
