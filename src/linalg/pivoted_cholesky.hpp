// Diagonal-pivoted Cholesky factorization for PSD matrices.
//
// Given a symmetric PSD matrix A, produces a tall-skinny factor L (m x r)
// with A ~= L L^T, where r is the numerical rank detected by the pivot
// sequence. This is the cheap rank-revealing factorization the library uses
// to bring *dense* constraint matrices into the prefactored form that
// Theorem 4.1 / Corollary 1.2 consume: the residual after k steps is
// bounded by the sum of the remaining diagonal, so stopping when that sum
// drops below the tolerance gives a certified trace-norm error bound
//     Tr[A - L L^T] <= tol_effective,   A - L L^T >= 0.
//
// For low-rank A (rank-1 beamforming channels, rank-O(1) ellipses) this is
// O(m r^2) instead of the O(m^3) eigendecomposition route and produces
// factors of exactly the right width.
#pragma once

#include "linalg/matrix.hpp"

namespace psdp::linalg {

struct PivotedCholeskyOptions {
  /// Stop when the remaining diagonal sum (the trace of the PSD residual)
  /// falls to rel_tol * Tr[A].
  Real rel_tol = 1e-12;
  /// Hard cap on the number of columns (0 = no cap, up to m).
  Index max_rank = 0;
};

struct PivotedCholeskyResult {
  /// m x r factor in the original row order: A ~= l l^T.
  Matrix l;
  /// Detected numerical rank (= l.cols()).
  Index rank = 0;
  /// Tr[A - L L^T] >= 0, the certified residual trace.
  Real residual_trace = 0;
  /// Pivot order: pivots[k] is the row chosen at step k.
  std::vector<Index> pivots;
};

/// Pivoted Cholesky of a symmetric PSD matrix. Throws InvalidArgument for
/// non-symmetric or non-finite input, NumericalError when a pivot is
/// negative beyond roundoff (input not PSD).
PivotedCholeskyResult pivoted_cholesky(
    const Matrix& a, const PivotedCholeskyOptions& options = {});

}  // namespace psdp::linalg
