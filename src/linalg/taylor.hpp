// Lemma 4.2 (from [AK07], Lemma 6): for PSD B with ||B||_2 <= kappa, the
// truncated Taylor series
//     B_hat = sum_{0 <= j < k} B^j / j!,   k = max(e^2 kappa, ln(2/eps))
// satisfies (1 - eps) exp(B) <= B_hat <= exp(B).
//
// This is the work-efficient exponential: B_hat is only ever *applied* to
// vectors (k matvecs per application), never formed. The operator form is
// what bigDotExp composes with the JL sketch.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/power.hpp"
#include "linalg/vector.hpp"

namespace psdp::linalg {

/// The truncation degree of Lemma 4.2: k = ceil(max(e^2 kappa, ln(2/eps))).
/// Requires kappa >= 0 (pass max(1, ||B||_2) as in Theorem 4.1) and
/// 0 < eps < 1.
Index taylor_exp_degree(Real kappa, Real eps);

/// y = (sum_{j<k} B^j / j!) x using k-1 applications of `op` (Horner-free
/// forward accumulation, numerically benign for PSD B).
void apply_exp_taylor(const SymmetricOp& op, Index degree, const Vector& x,
                      Vector& y);

/// Dense form of the truncated series, for tests and small instances.
Matrix exp_taylor_matrix(const Matrix& b, Index degree);

}  // namespace psdp::linalg
