// Lemma 4.2 (from [AK07], Lemma 6): for PSD B with ||B||_2 <= kappa, the
// truncated Taylor series
//     B_hat = sum_{0 <= j < k} B^j / j!,   k = max(e^2 kappa, ln(2/eps))
// satisfies (1 - eps) exp(B) <= B_hat <= exp(B).
//
// This is the work-efficient exponential: B_hat is only ever *applied* to
// vectors (k matvecs per application), never formed. The operator form is
// what bigDotExp composes with the JL sketch.
#pragma once

#include "linalg/blockop.hpp"
#include "linalg/matrix.hpp"
#include "linalg/power.hpp"
#include "linalg/vector.hpp"

namespace psdp::linalg {

/// The truncation degree of Lemma 4.2: k = ceil(max(e^2 kappa, ln(2/eps))).
/// Requires kappa >= 0 (pass max(1, ||B||_2) as in Theorem 4.1) and
/// 0 < eps < 1.
Index taylor_exp_degree(Real kappa, Real eps);

/// y = (sum_{j<k} B^j / j!) x using k-1 applications of `op` (Horner-free
/// forward accumulation, numerically benign for PSD B).
void apply_exp_taylor(const SymmetricOp& op, Index degree, const Vector& x,
                      Vector& y);

/// The two scratch panels of the blocked recurrence, reusable across calls
/// so a caller looping over panels allocates nothing inside the loop.
struct TaylorBlockWorkspace {
  Matrix term;  ///< term_j = B^j X / j!
  Matrix next;  ///< target of the next block application
};

/// Panel form of apply_exp_taylor: Y = (sum_{j<k} B^j / j!) X for a
/// row-major n x b panel X with B = op_scale * op, using k-1 block
/// applications of `op`. The scale is folded into the per-step 1/j factor;
/// for power-of-two scales (bigDotExp's 0.5, since Lemma 4.2 is applied to
/// Phi/2) this is bitwise identical to scaling op's output separately, so
/// the fold removes the per-call wrapper closure without perturbing a
/// single bit. When the BlockOp's columns match the SymmetricOp's matvec
/// (as Csr::apply_block does), column t of Y is bit-identical to
/// apply_exp_taylor on column t of the scaled operator: the recurrence
/// performs the same scalar operations in the same order.
void apply_exp_taylor_block(const BlockOp& op, Index degree, const Matrix& x,
                            Matrix& y, TaylorBlockWorkspace& workspace,
                            Real op_scale = 1);

/// Convenience overload with a private workspace.
void apply_exp_taylor_block(const BlockOp& op, Index degree, const Matrix& x,
                            Matrix& y);

/// Float32 scratch panels of the mixed-precision recurrence.
struct TaylorBlockWorkspaceF {
  MatrixF term;
  MatrixF next;
};

/// Float32 twin of apply_exp_taylor_block for the mixed-precision sketch
/// mode (BigDotExpOptions::panel_precision): the recurrence runs entirely
/// on float panels through a float BlockOp; downstream dot reductions
/// compensate in double (simd::KernelTable::sum_sq_f). Deterministic per
/// ISA. The JL-noise margin argument (docs/noisy_oracle_margin.md) is what
/// licenses the precision drop; callers gate on eps accordingly.
void apply_exp_taylor_block_f(const BlockOpF& op, Index degree,
                              const MatrixF& x, MatrixF& y,
                              TaylorBlockWorkspaceF& workspace,
                              float op_scale = 1);

/// Dense form of the truncated series, for tests and small instances.
Matrix exp_taylor_matrix(const Matrix& b, Index degree);

}  // namespace psdp::linalg
