#include "linalg/tridiag_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "par/cost_meter.hpp"

namespace psdp::linalg {

namespace {

/// sqrt(a^2 + b^2) without destructive overflow (hypot, but branchier
/// versions in libm can be slow; this is the classic guarded form).
Real pythag(Real a, Real b) {
  const Real absa = std::abs(a);
  const Real absb = std::abs(b);
  if (absa > absb) {
    const Real r = absb / absa;
    return absa * std::sqrt(1 + r * r);
  }
  if (absb == 0) return 0;
  const Real r = absa / absb;
  return absb * std::sqrt(1 + r * r);
}

/// Householder reduction of symmetric `z` (overwritten with the
/// accumulated transform) to tridiagonal form: diagonal in d,
/// sub-diagonal in e[1..m-1] (EISPACK tred2).
void tred2(Matrix& z, Vector& d, Vector& e) {
  const Index m = z.rows();
  for (Index i = m - 1; i >= 1; --i) {
    const Index l = i - 1;
    Real h = 0;
    Real scale = 0;
    if (l > 0) {
      for (Index k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0) {
        e[i] = z(i, l);
      } else {
        for (Index k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += sq(z(i, k));
        }
        Real f = z(i, l);
        Real g = f >= 0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0;
        for (Index j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0;
          for (Index k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (Index k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const Real hh = f / (h + h);
        for (Index j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (Index k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0;
  e[0] = 0;
  // Accumulate transformation matrices.
  for (Index i = 0; i < m; ++i) {
    const Index l = i - 1;
    if (d[i] != 0) {
      for (Index j = 0; j <= l; ++j) {
        Real g = 0;
        for (Index k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (Index k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1;
    for (Index j = 0; j <= l; ++j) {
      z(j, i) = 0;
      z(i, j) = 0;
    }
  }
}

/// Implicit-shift QL on the tridiagonal (d, e), accumulating the rotations
/// into z (EISPACK tql2). Throws NumericalError if an eigenvalue fails to
/// converge in 50 sweeps (does not happen for finite symmetric input).
void tql2(Matrix& z, Vector& d, Vector& e) {
  const Index m = z.rows();
  for (Index i = 1; i < m; ++i) e[i - 1] = e[i];
  e[m - 1] = 0;

  for (Index l = 0; l < m; ++l) {
    Index iter = 0;
    Index mm;
    do {
      for (mm = l; mm < m - 1; ++mm) {
        const Real dd = std::abs(d[mm]) + std::abs(d[mm + 1]);
        if (std::abs(e[mm]) <= kEps * dd) break;
      }
      if (mm != l) {
        PSDP_NUMERIC_CHECK(iter++ < 50, "tql2: too many iterations");
        Real g = (d[l + 1] - d[l]) / (2 * e[l]);  // Wilkinson shift
        Real r = pythag(g, 1);
        g = d[mm] - d[l] + e[l] / (g + (g >= 0 ? std::abs(r) : -std::abs(r)));
        Real s = 1;
        Real c = 1;
        Real p = 0;
        bool underflow = false;
        for (Index i = mm - 1; i >= l; --i) {
          Real f = s * e[i];
          const Real b = c * e[i];
          r = pythag(f, g);
          e[i + 1] = r;
          if (r == 0) {
            // Rotation annihilated early: recover and restart this sweep.
            d[i + 1] -= p;
            e[mm] = 0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (Index k = 0; k < m; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[mm] = 0;
      }
    } while (mm != l);
  }
}

}  // namespace

EigResult tridiag_eig(const Matrix& a) {
  PSDP_CHECK(a.square(), "tridiag_eig: matrix must be square");
  PSDP_CHECK(is_symmetric(a, 1e-8), "tridiag_eig: matrix must be symmetric");
  PSDP_CHECK(all_finite(a), "tridiag_eig: matrix has non-finite entries");
  const Index m = a.rows();

  Matrix z = a;
  z.symmetrize();
  Vector d(m);
  Vector e(m);
  if (m == 1) {
    EigResult result;
    result.eigenvalues = Vector{z(0, 0)};
    result.eigenvectors = Matrix::identity(1);
    return result;
  }
  tred2(z, d, e);
  tql2(z, d, e);
  par::CostMeter::add_work(static_cast<std::uint64_t>(3 * m * m * m));
  par::CostMeter::add_depth(static_cast<std::uint64_t>(m));

  // Sort eigenpairs by decreasing eigenvalue (tql2 leaves them unordered).
  std::vector<Index> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&](Index i, Index j) { return d[i] > d[j]; });
  EigResult result;
  result.eigenvalues = Vector(m);
  result.eigenvectors = Matrix(m, m);
  for (Index c = 0; c < m; ++c) {
    const Index src = order[static_cast<std::size_t>(c)];
    result.eigenvalues[c] = d[src];
    for (Index r = 0; r < m; ++r) result.eigenvectors(r, c) = z(r, src);
  }
  return result;
}

EigResult sym_eig(const Matrix& a) {
  return a.rows() < kSymEigSwitchDim ? jacobi_eig(a) : tridiag_eig(a);
}

}  // namespace psdp::linalg
