#include "linalg/cholesky.hpp"

#include <cmath>

namespace psdp::linalg {

std::optional<Matrix> cholesky(const Matrix& a, Real tol) {
  PSDP_CHECK(a.square(), "cholesky: matrix must be square");
  PSDP_CHECK(is_symmetric(a, 1e-8), "cholesky: matrix must be symmetric");
  const Index n = a.rows();
  // Scale for the semidefinite pivot threshold: a pivot within
  // [-tol*scale, tol*scale] is treated as an exact zero (rank deficiency).
  Real scale = 0;
  for (Index i = 0; i < n; ++i) scale = std::max(scale, std::abs(a(i, i)));
  scale = std::max(scale, Real{1});

  Matrix l(n, n);
  for (Index j = 0; j < n; ++j) {
    Real d = a(j, j);
    for (Index k = 0; k < j; ++k) d -= sq(l(j, k));
    if (d < -tol * scale) return std::nullopt;  // indefinite
    if (d <= tol * scale) {
      // Semidefinite direction: zero column. Entries below must also be
      // (numerically) zero for A to be PSD; check and fail otherwise.
      for (Index i = j + 1; i < n; ++i) {
        Real s = a(i, j);
        for (Index k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
        if (std::abs(s) > std::sqrt(tol) * scale) return std::nullopt;
      }
      continue;  // l(i, j) stays 0 for all i
    }
    const Real ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (Index i = j + 1; i < n; ++i) {
      Real s = a(i, j);
      for (Index k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

bool is_psd(const Matrix& a, Real tol) { return cholesky(a, tol).has_value(); }

Vector solve_lower(const Matrix& l, const Vector& b) {
  PSDP_CHECK(l.square() && l.rows() == b.size(), "solve_lower: dimension mismatch");
  const Index n = l.rows();
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    Real s = b[i];
    for (Index k = 0; k < i; ++k) s -= l(i, k) * y[k];
    PSDP_NUMERIC_CHECK(l(i, i) != 0, "solve_lower: singular factor");
    y[i] = s / l(i, i);
  }
  return y;
}

Vector solve_lower_transpose(const Matrix& l, const Vector& y) {
  PSDP_CHECK(l.square() && l.rows() == y.size(),
             "solve_lower_transpose: dimension mismatch");
  const Index n = l.rows();
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    Real s = y[i];
    for (Index k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    PSDP_NUMERIC_CHECK(l(i, i) != 0, "solve_lower_transpose: singular factor");
    x[i] = s / l(i, i);
  }
  return x;
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

}  // namespace psdp::linalg
