// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Jacobi is the right tool here: it is simple, unconditionally convergent
// for symmetric matrices, accurate to machine precision for the
// well-conditioned PSD matrices the solver produces, and its rotations are
// embarrassingly regular. The dense reference solver uses it for exact
// matrix exponentials and for C^{-1/2} in the Appendix-A normalization.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace psdp::linalg {

/// Eigendecomposition A = V diag(lambda) V^T of a symmetric matrix.
/// `eigenvalues` are sorted in decreasing order and `eigenvectors` stores
/// the corresponding eigenvectors as *columns*.
struct EigResult {
  Vector eigenvalues;
  Matrix eigenvectors;
};

/// Options for the Jacobi sweep loop.
struct JacobiOptions {
  Index max_sweeps = 64;
  /// Converged when off(A) <= tol * ||A||_F.
  Real tol = 1e-14;
};

/// Full symmetric eigendecomposition. Throws NumericalError if the sweep
/// limit is exhausted before convergence (does not happen for symmetric
/// input; the limit guards against NaNs).
EigResult jacobi_eig(const Matrix& a, const JacobiOptions& options = {});

/// Largest eigenvalue via jacobi_eig (exact, O(m^3); for the iterative
/// estimate see power.hpp).
Real lambda_max_exact(const Matrix& a);

/// Reconstruct V diag(f(lambda)) V^T; the building block for matrix
/// functions (matfunc.hpp).
Matrix reconstruct(const EigResult& eig,
                   const std::function<Real(Real)>& f);

}  // namespace psdp::linalg
