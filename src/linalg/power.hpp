// Spectral-norm (largest-eigenvalue) estimation by power iteration on an
// abstract symmetric PSD operator.
//
// bigDotExp (Theorem 4.1) needs kappa >= ||Phi||_2 to choose the Taylor
// degree. Inside Algorithm 3.1 the a-priori bound (1+10eps)K from Lemma 3.2
// is used instead; power iteration serves standalone bigDotExp callers and
// the width computation of the baseline solver.
#pragma once

#include <cstdint>
#include <functional>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace psdp::linalg {

/// A symmetric linear operator given by its matvec. Dimension must be the
/// length of the vectors passed in.
using SymmetricOp = std::function<void(const Vector& x, Vector& y)>;

struct PowerOptions {
  Index max_iterations = 200;
  /// Stop when successive Rayleigh quotients agree to this relative tolerance.
  Real tol = 1e-6;
  std::uint64_t seed = 0x9d2c5680u;
};

/// Estimate of lambda_max and the iteration count used.
struct PowerResult {
  Real lambda_max = 0;
  Index iterations = 0;
  bool converged = false;
};

/// Power iteration for a PSD operator of dimension n. For PSD matrices the
/// Rayleigh quotient converges monotonically from below, so the returned
/// value is a (slight) underestimate; callers needing an upper bound should
/// multiply by (1 + tol) -- lambda_max_upper_bound() does this.
PowerResult power_iteration(const SymmetricOp& op, Index n,
                            const PowerOptions& options = {});

/// Convenience overload for a dense symmetric matrix.
PowerResult power_iteration(const Matrix& a, const PowerOptions& options = {});

/// (1 + 2 tol)-inflated power-iteration estimate, usable as the kappa
/// upper bound required by Lemma 4.2.
Real lambda_max_upper_bound(const SymmetricOp& op, Index n,
                            const PowerOptions& options = {});

}  // namespace psdp::linalg
