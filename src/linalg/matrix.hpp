// Dense real matrix (row-major) with the BLAS-2/3 kernels the solvers use.
// Multiplications are parallel and charge the CostMeter with their PRAM
// work/depth, so bench binaries can report model cost alongside wall-clock.
#pragma once

#include <span>
#include <vector>

#include "linalg/vector.hpp"
#include "util/common.hpp"

namespace psdp::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, Real fill = 0);

  /// n x n identity.
  static Matrix identity(Index n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  /// Rank-1 matrix v v^T.
  static Matrix outer(const Vector& v);

  /// 2x2 rotation by angle theta (used by generators and the Figure-1
  /// instance).
  static Matrix rotation2d(Real theta);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }

  Real& operator()(Index i, Index j);
  Real operator()(Index i, Index j) const;

  Real* data() { return data_.data(); }
  const Real* data() const { return data_.data(); }

  /// Row i as a contiguous span.
  std::span<Real> row(Index i);
  std::span<const Real> row(Index i) const;

  /// Capacity-preserving reshape: sets the dimensions without shrinking the
  /// backing storage, so a workspace panel cycling through shapes (e.g. the
  /// narrower last sketch panel) allocates only when it grows past its
  /// high-water mark. Entry values after a reshape are unspecified except
  /// that a kept prefix survives; callers overwrite the panel anyway.
  Matrix& reshape(Index rows, Index cols);

  /// In-place operations.
  Matrix& fill(Real value);
  Matrix& scale(Real s);
  Matrix& add_scaled(const Matrix& other, Real s);  ///< this += s * other
  Matrix& add_scaled_identity(Real s);              ///< this += s * I

  /// Force exact symmetry: A <- (A + A^T)/2.
  Matrix& symmetrize();

  Matrix transposed() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Real> data_;
};

/// y = A x (parallel over rows).
void matvec(const Matrix& a, const Vector& x, Vector& y);
Vector matvec(const Matrix& a, const Vector& x);

/// y = A^T x.
Vector matvec_transpose(const Matrix& a, const Vector& x);

/// C = A B, blocked and parallel over rows of A.
Matrix gemm(const Matrix& a, const Matrix& b);

/// A + B and A - B.
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);

/// Trace.
Real trace(const Matrix& a);

/// Frobenius inner product A . B = sum_ij A_ij B_ij = Tr[A B] for symmetric
/// operands -- the paper's bullet product.
Real frobenius_dot(const Matrix& a, const Matrix& b);

/// Frobenius norm.
Real frobenius_norm(const Matrix& a);

/// x^T A y (quadratic form; A square).
Real quadratic_form(const Matrix& a, const Vector& x, const Vector& y);

/// max_ij |A_ij - B_ij|.
Real max_abs_diff(const Matrix& a, const Matrix& b);

/// True when |A_ij - A_ji| <= tol * max(1, ||A||_F) for all i, j.
bool is_symmetric(const Matrix& a, Real tol = 1e-12);

/// True when every entry is finite.
bool all_finite(const Matrix& a);

}  // namespace psdp::linalg
