// Dense real vector with the handful of BLAS-1 operations the solvers need.
// Thin wrapper over contiguous storage; all operations are checked for
// conforming dimensions and the large ones are parallel.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace psdp::linalg {

class Vector {
 public:
  Vector() = default;
  explicit Vector(Index n, Real fill = 0);
  Vector(std::initializer_list<Real> values);
  explicit Vector(std::vector<Real> values);

  Index size() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  Real& operator[](Index i);
  Real operator[](Index i) const;

  Real* data() { return data_.data(); }
  const Real* data() const { return data_.data(); }
  std::span<Real> span() { return data_; }
  std::span<const Real> span() const { return data_; }

  /// Capacity-preserving resize: never shrinks the backing storage, so a
  /// reused buffer (oracle dots, workspace copies) stops allocating once it
  /// has seen its largest size. New entries (if any) are zero.
  Vector& resize(Index n);

  /// In-place operations (return *this for chaining).
  Vector& fill(Real value);
  Vector& scale(Real s);
  Vector& add_scaled(const Vector& other, Real s);  ///< this += s * other

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<Real> data_;
};

/// Inner product <x, y>.
Real dot(const Vector& x, const Vector& y);

/// Squared Euclidean norm.
Real norm2_squared(const Vector& x);

/// Euclidean norm.
Real norm2(const Vector& x);

/// Sum of entries (the 'value' 1^T x of a dual packing solution).
Real sum(const Vector& x);

/// L1 norm. Equals sum() for non-negative vectors like the solver iterates.
Real norm1(const Vector& x);

/// Largest entry; requires a non-empty vector.
Real max_entry(const Vector& x);

/// True when every entry is finite.
bool all_finite(const Vector& x);

/// True when every entry is >= -tol.
bool is_nonnegative(const Vector& x, Real tol = 0);

}  // namespace psdp::linalg
