#include "linalg/pivoted_cholesky.hpp"

#include <cmath>

#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "util/common.hpp"

namespace psdp::linalg {

PivotedCholeskyResult pivoted_cholesky(const Matrix& a,
                                       const PivotedCholeskyOptions& options) {
  PSDP_CHECK(a.square(), "pivoted_cholesky: matrix must be square");
  PSDP_CHECK(all_finite(a), "pivoted_cholesky: non-finite entries");
  PSDP_CHECK(is_symmetric(a, 1e-10), "pivoted_cholesky: matrix must be symmetric");
  PSDP_CHECK(options.rel_tol >= 0, "pivoted_cholesky: rel_tol must be >= 0");

  const Index m = a.rows();
  const Index max_rank = options.max_rank > 0 ? std::min(options.max_rank, m) : m;

  // Running residual diagonal d = diag(A - L_k L_k^T); its sum equals the
  // trace of the PSD residual, which is the stopping quantity.
  Vector d(m);
  Real trace_a = 0;
  for (Index i = 0; i < m; ++i) {
    d[i] = a(i, i);
    PSDP_NUMERIC_CHECK(d[i] >= -1e-12 * std::max<Real>(1, std::abs(a(i, i))),
                       "pivoted_cholesky: negative diagonal entry (not PSD)");
    trace_a += std::max<Real>(d[i], 0);
  }
  const Real stop = options.rel_tol * trace_a;

  // Columns are built into `cols` and assembled at the end; each step costs
  // O(m k) with the inner subtraction parallel over rows.
  std::vector<Vector> cols;
  std::vector<Index> pivots;
  Real remaining = trace_a;

  // Negative-pivot guard scale: anything more negative than this is a PSD
  // violation rather than roundoff.
  const Real pivot_floor = -1e-10 * std::max<Real>(1, trace_a);

  while (static_cast<Index>(cols.size()) < max_rank && remaining > stop) {
    // Pick the largest remaining diagonal entry.
    Index piv = 0;
    Real best = -std::numeric_limits<Real>::infinity();
    for (Index i = 0; i < m; ++i) {
      if (d[i] > best) {
        best = d[i];
        piv = i;
      }
    }
    PSDP_NUMERIC_CHECK(best >= pivot_floor,
                       "pivoted_cholesky: negative pivot (matrix not PSD)");
    if (best <= 0) break;  // exactly rank-deficient; residual is roundoff

    const Index k = static_cast<Index>(cols.size());
    const Real sqrt_piv = std::sqrt(best);
    Vector col(m);
    par::parallel_for(0, m, [&](Index i) {
      Real v = a(i, piv);
      for (Index s = 0; s < k; ++s) v -= cols[static_cast<std::size_t>(s)][i] *
                                         cols[static_cast<std::size_t>(s)][piv];
      col[i] = v / sqrt_piv;
    }, /*grain=*/std::max<Index>(64, m / 64));
    // Exact zero at the pivot row's future updates.
    col[piv] = sqrt_piv;

    remaining = 0;
    for (Index i = 0; i < m; ++i) {
      d[i] -= col[i] * col[i];
      // For PSD input the residual diagonal stays non-negative up to
      // roundoff; a clearly negative value means the matrix is indefinite.
      PSDP_NUMERIC_CHECK(
          d[i] >= pivot_floor,
          "pivoted_cholesky: residual diagonal went negative (matrix not PSD)");
      if (d[i] < 0) d[i] = 0;  // clamp roundoff
      remaining += d[i];
    }
    d[piv] = 0;

    cols.push_back(std::move(col));
    pivots.push_back(piv);
  }

  // Model cost: O(m r^2) work (each of the r steps subtracts k previous
  // columns across m rows), depth r sequential steps of log-reductions.
  {
    const std::uint64_t r = static_cast<std::uint64_t>(cols.size());
    par::CostMeter::add_work(static_cast<std::uint64_t>(m) * r * (r + 2));
    par::CostMeter::add_depth(r * par::reduction_depth(m));
  }

  PivotedCholeskyResult result;
  result.rank = static_cast<Index>(cols.size());
  result.residual_trace = remaining;
  result.pivots = std::move(pivots);
  if (result.rank == 0) {
    // The zero matrix: keep a single zero column so the factor has a dim.
    result.l = Matrix(m, 1);
    return result;
  }
  result.l = Matrix(m, result.rank);
  for (Index j = 0; j < result.rank; ++j) {
    const Vector& col = cols[static_cast<std::size_t>(j)];
    for (Index i = 0; i < m; ++i) result.l(i, j) = col[i];
  }
  return result;
}

}  // namespace psdp::linalg
