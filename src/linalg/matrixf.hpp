// Row-major float32 panel used by the mixed-precision sketch mode.
//
// Deliberately minimal: the float path only ever streams whole panels
// through the simd kernel tables (taylor_step_f, spmm_rows_f, ...), so
// MatrixF is storage plus the capacity-preserving reshape that keeps the
// zero-allocation steady state -- none of Matrix's BLAS surface. Doubles
// remain the library's Real; see docs/TUNING.md ("panel_precision").
#pragma once

#include <algorithm>
#include <vector>

#include "util/common.hpp"

namespace psdp::linalg {

class MatrixF {
 public:
  MatrixF() = default;
  MatrixF(Index rows, Index cols, float value = 0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), value) {
    PSDP_CHECK(rows >= 0 && cols >= 0,
               "matrixf: dimensions must be non-negative");
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator()(Index i, Index j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  float operator()(Index i, Index j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Capacity-preserving reshape (same contract as Matrix::reshape): sets
  /// the dimensions without shrinking the backing storage, so workspace
  /// panels cycling through shapes allocate only at their high-water mark.
  MatrixF& reshape(Index rows, Index cols) {
    PSDP_CHECK(rows >= 0 && cols >= 0,
               "matrixf reshape: dimensions must be non-negative");
    const auto n = static_cast<std::size_t>(rows * cols);
    if (n > data_.size()) data_.resize(n);
    rows_ = rows;
    cols_ = cols;
    return *this;
  }

  MatrixF& fill(float value) {
    const auto n = static_cast<std::size_t>(rows_ * cols_);
    std::fill(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(n),
              value);
    return *this;
  }

  friend bool operator==(const MatrixF&, const MatrixF&) = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<float> data_;  ///< may exceed rows_*cols_ (kept capacity)
};

}  // namespace psdp::linalg
