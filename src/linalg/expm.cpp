#include "linalg/expm.hpp"

#include <array>
#include <cmath>

#include "linalg/cholesky.hpp"

namespace psdp::linalg {

Matrix expm_eig(const Matrix& a) {
  const EigResult eig = jacobi_eig(a);
  return expm_from_eig(eig);
}

Matrix expm_from_eig(const EigResult& eig, Real scale) {
  return reconstruct(eig, [scale](Real x) { return std::exp(scale * x); });
}

Matrix expm_pade(const Matrix& a) {
  PSDP_CHECK(a.square(), "expm_pade: matrix must be square");
  PSDP_CHECK(all_finite(a), "expm_pade: matrix has non-finite entries");
  const Index n = a.rows();

  // Scale A down until ||A/2^s||_F <= 1/2, approximate, square back up.
  const Real norm = frobenius_norm(a);
  int s = 0;
  Real factor = 1;
  while (norm * factor > 0.5) {
    factor /= 2;
    ++s;
  }
  Matrix as = a;
  as.scale(factor);

  // [6/6] diagonal Pade approximant: exp(X) ~= q(X)^{-1} p(X) with
  // p(X) = sum c_j X^j and q(X) = p(-X), c_j = (2k-j)! k! / ((2k)! (k-j)! j!).
  static constexpr std::array<Real, 7> c = {
      1.0, 1.0 / 2, 5.0 / 44, 1.0 / 66, 1.0 / 792, 1.0 / 15840, 1.0 / 665280};

  Matrix p = Matrix::identity(n);
  p.scale(c[0]);
  Matrix q = p;
  Matrix power = Matrix::identity(n);
  for (std::size_t j = 1; j < c.size(); ++j) {
    power = gemm(power, as);
    p.add_scaled(power, c[j]);
    q.add_scaled(power, (j % 2 == 0) ? c[j] : -c[j]);
  }

  // Solve q X = p column by column. For symmetric PSD-leaning input with
  // ||X|| <= 1/2, q is symmetric positive definite, so Cholesky applies; if
  // the input was non-symmetric we fall back to a symmetrized solve, which
  // is fine for the symmetric matrices this library feeds in (checked).
  Matrix q_sym = q;
  q_sym.symmetrize();
  auto l = cholesky(q_sym, 1e-14);
  PSDP_NUMERIC_CHECK(l.has_value(), "expm_pade: Pade denominator not SPD");
  Matrix x(n, n);
  Vector col(n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) col[i] = p(i, j);
    const Vector sol = cholesky_solve(*l, col);
    for (Index i = 0; i < n; ++i) x(i, j) = sol[i];
  }

  for (int k = 0; k < s; ++k) x = gemm(x, x);
  return x;
}

}  // namespace psdp::linalg
