#include "linalg/qr.hpp"

#include <cmath>

#include "par/cost_meter.hpp"
#include "par/parallel.hpp"
#include "util/common.hpp"

namespace psdp::linalg {

namespace {

/// Householder vector for the column x = A(k:m, k): v with v[0] = 1 such
/// that (I - beta v v^T) x = ||x|| e_1. Returns beta (0 when the column is
/// already collapsed).
Real make_householder(std::vector<Real>& v) {
  const Index len = static_cast<Index>(v.size());
  Real sigma = 0;
  for (Index i = 1; i < len; ++i) sigma += v[i] * v[i];
  const Real x0 = v[0];
  if (sigma == 0) {
    // Column already e_1-aligned. Flip to enforce a non-negative diagonal.
    const Real beta = x0 < 0 ? 2 : 0;
    v[0] = 1;
    return beta;
  }
  const Real norm = std::sqrt(x0 * x0 + sigma);
  // Pick the sign that avoids cancellation (Golub & Van Loan 5.1.3).
  const Real v0 = x0 <= 0 ? x0 - norm : -sigma / (x0 + norm);
  const Real beta = 2 * v0 * v0 / (sigma + v0 * v0);
  for (Index i = 1; i < len; ++i) v[i] /= v0;
  v[0] = 1;
  return beta;
}

}  // namespace

QrResult qr(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  PSDP_CHECK(m >= n, "qr: requires rows >= cols (thin QR)");
  PSDP_CHECK(all_finite(a), "qr: input has non-finite entries");

  // Work in-place on a copy; the Householder vectors live below the
  // diagonal, R on and above it.
  Matrix work = a;
  std::vector<Real> betas(static_cast<std::size_t>(n), 0);
  std::vector<Real> v;

  for (Index k = 0; k < n; ++k) {
    v.assign(static_cast<std::size_t>(m - k), 0);
    for (Index i = k; i < m; ++i) v[static_cast<std::size_t>(i - k)] = work(i, k);
    const Real beta = make_householder(v);
    betas[static_cast<std::size_t>(k)] = beta;

    if (beta != 0) {
      // Apply H = I - beta v v^T to the trailing columns, in parallel.
      par::parallel_for(k, n, [&](Index j) {
        Real dot = 0;
        for (Index i = k; i < m; ++i) {
          dot += v[static_cast<std::size_t>(i - k)] * work(i, j);
        }
        dot *= beta;
        for (Index i = k; i < m; ++i) {
          work(i, j) -= dot * v[static_cast<std::size_t>(i - k)];
        }
      }, /*grain=*/std::max<Index>(1, 2048 / (m - k + 1)));
    }
    // Store the Householder vector tail below the diagonal of column k.
    for (Index i = k + 1; i < m; ++i) {
      work(i, k) = v[static_cast<std::size_t>(i - k)];
    }
  }

  // Model cost of Householder QR: 2n^2(m - n/3) flops, depth one
  // log-reduction per reflector application.
  par::CostMeter::add_work(static_cast<std::uint64_t>(
      2 * n * n * (m - n / 3 + 1)));
  par::CostMeter::add_depth(static_cast<std::uint64_t>(n) *
                            par::reduction_depth(m));

  QrResult result;
  result.r = Matrix(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) result.r(i, j) = work(i, j);
  }

  // Accumulate the thin Q by applying the reflectors, in reverse, to the
  // first n columns of the identity.
  result.q = Matrix(m, n);
  for (Index j = 0; j < n; ++j) result.q(j, j) = 1;
  for (Index k = n - 1; k >= 0; --k) {
    const Real beta = betas[static_cast<std::size_t>(k)];
    if (beta == 0) continue;
    par::parallel_for(0, n, [&](Index j) {
      Real dot = result.q(k, j);
      for (Index i = k + 1; i < m; ++i) dot += work(i, k) * result.q(i, j);
      dot *= beta;
      result.q(k, j) -= dot;
      for (Index i = k + 1; i < m; ++i) result.q(i, j) -= dot * work(i, k);
    }, /*grain=*/std::max<Index>(1, 2048 / (m - k + 1)));
  }
  return result;
}

Vector least_squares(const Matrix& a, const Vector& b, Real tol) {
  const Index m = a.rows();
  const Index n = a.cols();
  PSDP_CHECK(b.size() == m, "least_squares: dimension mismatch");
  const QrResult f = qr(a);
  const Real scale = frobenius_norm(a);
  Vector qtb = matvec_transpose(f.q, b);
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    Real s = qtb[i];
    for (Index j = i + 1; j < n; ++j) s -= f.r(i, j) * x[j];
    PSDP_NUMERIC_CHECK(std::abs(f.r(i, i)) > tol * std::max<Real>(1, scale),
                       "least_squares: R is numerically singular");
    x[i] = s / f.r(i, i);
  }
  return x;
}

Matrix compress_factor(const Matrix& g, Real drop_tol) {
  const Index m = g.rows();
  const Index k = g.cols();
  PSDP_CHECK(m >= 1 && k >= 1, "compress_factor: empty factor");
  PSDP_CHECK(all_finite(g), "compress_factor: non-finite entries");
  PSDP_CHECK(drop_tol >= 0, "compress_factor: drop_tol must be >= 0");

  // G = L Q_orth <=> G^T = Q_orth^T L^T: QR of the k x m transpose gives
  // G^T = Q R, so L = R^T (m x r, r = min(m, k)).
  Matrix l;
  if (k <= m) {
    // QR of G^T needs rows >= cols, i.e. k >= m; in this branch use the QR
    // of G itself: G = Q R => G G^T = Q (R R^T) Q^T; that is not of the
    // form L L^T directly, so instead keep G (already no wider than m) and
    // only apply the column-drop below.
    l = g;
  } else {
    // k > m: QR of the k x m transpose, G^T = Q R with R m x m, so
    // G G^T = R^T (Q^T Q) R = R^T R and L = R^T is m x m lower triangular.
    const QrResult f = qr(g.transposed());
    l = f.r.transposed();
  }

  // Drop negligible columns (norm below drop_tol * ||G||_F).
  const Real scale = frobenius_norm(g);
  const Index cols = l.cols();
  std::vector<Index> keep;
  keep.reserve(static_cast<std::size_t>(cols));
  for (Index j = 0; j < cols; ++j) {
    Real norm2 = 0;
    for (Index i = 0; i < m; ++i) norm2 += l(i, j) * l(i, j);
    if (std::sqrt(norm2) > drop_tol * scale) keep.push_back(j);
  }
  if (keep.empty()) {
    // The zero matrix: represent with a single zero column so dim survives.
    return Matrix(m, 1);
  }
  if (static_cast<Index>(keep.size()) == cols) return l;
  Matrix out(m, static_cast<Index>(keep.size()));
  for (Index i = 0; i < m; ++i) {
    for (Index jj = 0; jj < out.cols(); ++jj) {
      out(i, jj) = l(i, keep[static_cast<std::size_t>(jj)]);
    }
  }
  return out;
}

}  // namespace psdp::linalg
