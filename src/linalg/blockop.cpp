#include "linalg/blockop.hpp"

#include <chrono>
#include <limits>
#include <memory>

namespace psdp::linalg {

BlockOp block_op_from_symmetric(SymmetricOp op, Index dim) {
  // The scratch vectors are shared across calls (a BlockOp is applied from
  // one driving thread); the operator itself may still parallelize inside.
  auto x_col = std::make_shared<Vector>(dim);
  auto y_col = std::make_shared<Vector>(dim);
  return [op = std::move(op), dim, x_col, y_col](const Matrix& x, Matrix& y) {
    PSDP_CHECK(x.rows() == dim, "block op: panel dimension mismatch");
    if (y.rows() != x.rows() || y.cols() != x.cols()) {
      y = Matrix(x.rows(), x.cols());
    }
    for (Index t = 0; t < x.cols(); ++t) {
      panel_column(x, t, *x_col);
      op(*x_col, *y_col);
      set_panel_column(y, t, *y_col);
    }
  };
}

void panel_column(const Matrix& panel, Index col, Vector& out) {
  PSDP_CHECK(col >= 0 && col < panel.cols(), "panel_column: column out of range");
  if (out.size() != panel.rows()) out = Vector(panel.rows());
  const Index b = panel.cols();
  const Real* data = panel.data() + col;
  for (Index i = 0; i < panel.rows(); ++i) out[i] = data[i * b];
}

double time_block_kernel(const TimingOptions& options,
                         const std::function<void()>& body) {
  PSDP_CHECK(options.reps >= 1,
             "time_block_kernel: need at least one repetition");
  PSDP_CHECK(options.warmup >= 0 && options.min_elapsed_seconds >= 0,
             "time_block_kernel: warmup and elapsed floor must be "
             "non-negative");
  using Clock = std::chrono::steady_clock;
  for (int rep = 0; rep < options.warmup; ++rep) body();
  // Repetition cap: a floor far above the kernel's cost must terminate
  // (the autotuner times thousands of kernel/width combinations).
  constexpr int kMaxReps = 64;
  double best = std::numeric_limits<double>::infinity();
  double total = 0;
  int timed = 0;
  while (timed < options.reps ||
         (total < options.min_elapsed_seconds && timed < kMaxReps)) {
    const Clock::time_point start = Clock::now();
    body();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    best = std::min(best, elapsed);
    total += elapsed;
    ++timed;
  }
  return best;
}

double time_block_kernel(int reps, const std::function<void()>& body) {
  return time_block_kernel(TimingOptions{reps, 0, 0}, body);
}

void set_panel_column(Matrix& panel, Index col, const Vector& in) {
  PSDP_CHECK(col >= 0 && col < panel.cols(),
             "set_panel_column: column out of range");
  PSDP_CHECK(in.size() == panel.rows(), "set_panel_column: length mismatch");
  const Index b = panel.cols();
  Real* data = panel.data() + col;
  for (Index i = 0; i < panel.rows(); ++i) data[i * b] = in[i];
}

}  // namespace psdp::linalg
