#include "linalg/matfunc.hpp"

#include <cmath>

namespace psdp::linalg {

namespace {

/// Eigendecompose and verify (numerical) positive semidefiniteness.
EigResult checked_psd_eig(const Matrix& a, Real tol, const char* who) {
  EigResult eig = jacobi_eig(a);
  const Real lmax = std::max(eig.eigenvalues[0], Real{0});
  const Real floor = -tol * std::max(lmax, Real{1});
  for (Index i = 0; i < eig.eigenvalues.size(); ++i) {
    PSDP_CHECK(eig.eigenvalues[i] >= floor,
               str(who, ": matrix is not PSD (eigenvalue ",
                   eig.eigenvalues[i], ")"));
    if (eig.eigenvalues[i] < 0) eig.eigenvalues[i] = 0;
  }
  return eig;
}

}  // namespace

Matrix sqrt_psd(const Matrix& a, Real tol) {
  const EigResult eig = checked_psd_eig(a, tol, "sqrt_psd");
  return reconstruct(eig, [](Real x) { return std::sqrt(std::max(x, Real{0})); });
}

Matrix inv_sqrt_psd(const Matrix& a, Real tol) {
  const EigResult eig = checked_psd_eig(a, tol, "inv_sqrt_psd");
  const Real cutoff = tol * std::max(eig.eigenvalues[0], Real{1});
  return reconstruct(eig, [cutoff](Real x) {
    return x > cutoff ? 1 / std::sqrt(x) : Real{0};
  });
}

Matrix pinv_psd(const Matrix& a, Real tol) {
  const EigResult eig = checked_psd_eig(a, tol, "pinv_psd");
  const Real cutoff = tol * std::max(eig.eigenvalues[0], Real{1});
  return reconstruct(eig,
                     [cutoff](Real x) { return x > cutoff ? 1 / x : Real{0}; });
}

Index rank_psd(const Matrix& a, Real tol) {
  const EigResult eig = checked_psd_eig(a, tol, "rank_psd");
  const Real cutoff = tol * std::max(eig.eigenvalues[0], Real{1});
  Index rank = 0;
  for (Index i = 0; i < eig.eigenvalues.size(); ++i) {
    if (eig.eigenvalues[i] > cutoff) ++rank;
  }
  return rank;
}

}  // namespace psdp::linalg
