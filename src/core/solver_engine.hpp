// The shared solver chassis behind every Algorithm 3.1 variant.
//
// All solver variants (plain decision, phased, bucketed, the scalar LP
// special case) drive the same three-piece machine:
//
//   1. state   -- the weight vector x, its running l1 norm, the iteration
//                 counter, and the primal-average accumulators (SolverState);
//   2. oracle  -- the per-iteration penalties dots_i ~ W . A_i and Tr W
//                 (penalty_oracle.hpp);
//   3. update  -- grow every coordinate in B = { i : dots_i <= (1+eps) Tr W }
//                 by (1+alpha), accumulate the primal average, and exit on
//                 ||x||_1 > K (dual), a self-verifying primal certificate,
//                 or the R budget.
//
// This header is those pieces, extracted from the per-variant copies that
// used to live in decision.cpp / phased.cpp / bucketed.cpp / poslp.cpp.
// run_decision_loop() is the complete plain (per-iteration) loop; the
// schedule variants reuse SolverState, initial_state(), apply_update() and
// steps_until_exceeds() while keeping their own loop shapes.
//
// Noise-awareness: oracles report a multiplicative noise_bound() on their
// estimates. The phased schedule replays a single noisy batch j times
// (correlated noise) and therefore certifies the primal against
// (1 + noise) * t (see SolverState::primal_certified for why the margin
// is one-sided); the bucketed schedule keeps the same conservative
// threshold because its boosted steps have no worst-case analysis to lean
// on; the plain loop redraws independent noise each round and keeps the
// paper's exact threshold (exact oracles report 0, collapsing all of them
// to min_i >= t).
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "core/decision.hpp"
#include "core/penalty_oracle.hpp"

namespace psdp::core {

/// State shared by every variant: the weight vector, its running l1 norm,
/// and the primal averaging accumulators.
struct SolverState {
  Vector x;            ///< current weights
  Real x_norm1 = 0;    ///< ||x||_1, maintained incrementally
  Vector primal_dots;  ///< running sum of (W . A_i)/Tr W
  Real primal_trace = 0;  ///< running sum of Tr[P] = 1 per iteration
  Real min_primal_sum = 0;  ///< min_i primal_dots[i] after the last update
  Index t = 0;         ///< (virtual) iteration counter

  /// True once the running primal average Y(t) = avg P already satisfies
  /// min_i A_i . Y >= 1 + noise, i.e. it is a valid primal certificate
  /// after discounting the oracle's estimation noise. Note on the margin:
  /// dots and trace each carry (1 +- noise) error, so the fully
  /// adversarial ratio bound would be (1+noise)/(1-noise); but both are
  /// quadratic forms in the *same* sketch (positively correlated
  /// fluctuations) and carry the same downward Taylor bias (cancelling in
  /// the ratio), so 1 + noise is the margin used -- the adversarial bound
  /// makes certification unreachable on near-threshold instances (~100x
  /// iteration blowup measured) for a failure mode the correlation rules
  /// out in practice. Deriving the exact correlated bound is a ROADMAP
  /// open item. noise 0 reduces to the paper's min_i >= t.
  bool primal_certified(Real noise) const {
    return t > 0 && min_primal_sum >= (1 + noise) * static_cast<Real>(t);
  }
};

/// Just the starting weights x_i(0) = 1/(n Tr[A_i]) (with the trace
/// validation), for variants that maintain their own accumulators (mixed).
/// `who` names the calling solver in diagnostics.
Vector initial_weights(const PenaltyOracle& oracle, const char* who);

/// x_i(0) = 1/(n Tr[A_i]); also primes the accumulators.
SolverState initial_state(const PenaltyOracle& oracle, const char* who);

/// The coordinate update shared by the per-iteration variants: given this
/// round's penalties, grow every coordinate in B = { i : dots_i <=
/// (1+eps) Tr W } by (1+alpha); accumulates the primal average and returns
/// |B|.
Index apply_update(SolverState& state, const PenaltyBatch& batch, Real eps,
                   Real alpha);

/// Sentinel for "this stopping cause never fires" in phase-length planning.
inline constexpr Index kNoLimit = std::numeric_limits<Index>::max() / 4;

/// Smallest j >= 1 with base * (1+alpha)^j > target (growth of a selected
/// mass); kNoLimit when base is zero (nothing selected grows).
Index steps_until_exceeds(Real base, Real alpha, Real target);

/// Everything run_decision_loop produces; the public wrappers map it onto
/// their result types (DecisionResult, LpDecisionResult).
struct EngineRun {
  SolverState state;
  AlgorithmConstants constants;
  /// Running sum of W/Tr W when the oracle exposes a dense weight matrix
  /// (empty otherwise -- the sketched path never forms an m x m matrix).
  Matrix y_sum;
  /// Scalar analogue for the soft-max oracle.
  Vector y_sum_vec;
  std::vector<IterationStat> trajectory;
};

/// The plain per-iteration loop of Algorithm 3.1 over any oracle. Honors
/// eps, max_iterations_override, early_primal_exit, exp_stride and
/// track_trajectory from DecisionOptions (the dot_* knobs belong to the
/// oracle's construction, not the loop).
EngineRun run_decision_loop(PenaltyOracle& oracle,
                            const DecisionOptions& options);

/// Assemble a DecisionResult from a finished run: averaged primal
/// accumulators, outcome, worst-case and measured-tight duals (the latter
/// via oracle.lambda_max). With `dense_primal`, the averaged y_sum (or the
/// uniform certificate on zero iterations) is materialized as primal_y.
DecisionResult finish_decision(EngineRun&& run, PenaltyOracle& oracle,
                               bool dense_primal);

/// Lazily-allocated accumulation of the oracle's dense weight matrix into
/// the primal-average sum; no-op for oracles without one (the sketched
/// path never forms an m x m matrix).
void accumulate_weight(const PenaltyBatch& batch, Real scale, Matrix& y_sum);

/// Materialize the primal-average certificate matrix on any result type:
/// with `dense_primal`, the averaged y_sum over t iterations (or the
/// uniform I/m certificate when t = 0, which also pins primal_trace = 1);
/// without it, primal_y stays empty -- the sketched path never forms an
/// m x m matrix and reports its certificate through primal_dots alone
/// (primal_trace is still pinned to 1 on zero iterations).
template <typename Result>
void attach_primal_y(Result& result, Index t, PenaltyOracle& oracle,
                     Matrix&& y_sum, bool dense_primal) {
  if (dense_primal) {
    if (t > 0) {
      result.primal_y = std::move(y_sum);
      result.primal_y.scale(1 / static_cast<Real>(t));
    } else {
      result.primal_y = Matrix::identity(oracle.dim());
      result.primal_y.scale(1 / static_cast<Real>(oracle.dim()));
      result.primal_trace = 1;
    }
  } else {
    if (t == 0) result.primal_trace = 1;
  }
}

/// Shared result epilogue of the schedule variants (phased, bucketed),
/// whose result structs carry the same certificate fields: measured
/// lambda_max rescale of the dual, outcome, averaged primal accumulators,
/// and the primal_y materialization. (The plain loop's finish_decision
/// differs in its dual handling -- worst-case dual_x plus measured-tight
/// dual_x_tight -- and shares attach_primal_y.)
template <typename Result>
void finish_schedule(Result& result, SolverState&& state,
                     const AlgorithmConstants& c, PenaltyOracle& oracle,
                     Matrix&& y_sum, bool dense_primal) {
  result.iterations = state.t;
  // Measured rescaling: exact lambda_max for the dense oracle, a certified
  // Lanczos upper bound for the sketched one -- feasible either way.
  result.psi_lambda_max = oracle.lambda_max(state.x);
  result.spectrum_bound_exceeded = result.psi_lambda_max > c.spectrum_bound;
  result.outcome = state.x_norm1 > c.k_cap ? DecisionOutcome::kDual
                                           : DecisionOutcome::kPrimal;
  result.dual_x = std::move(state.x);
  if (result.psi_lambda_max > 0) {
    result.dual_x.scale(1 / result.psi_lambda_max);
  }
  const Real t_count = std::max<Real>(1, static_cast<Real>(state.t));
  result.primal_dots = std::move(state.primal_dots);
  result.primal_dots.scale(1 / t_count);
  result.primal_trace = state.t > 0 ? 1 : 0;
  attach_primal_y(result, state.t, oracle, std::move(y_sum), dense_primal);
}

}  // namespace psdp::core
