#include "core/solver_engine.hpp"

#include <cmath>

#include "util/log.hpp"

namespace psdp::core {

Vector initial_weights(const PenaltyOracle& oracle, const char* who) {
  const Index n = oracle.size();
  PSDP_CHECK(n >= 1, str(who, ": instance has no constraints"));
  Vector x(n);
  for (Index i = 0; i < n; ++i) {
    const Real tr = oracle.constraint_trace(i);
    PSDP_CHECK(tr > 0 && std::isfinite(tr),
               str(who, ": constraint ", i,
                   " has non-positive or non-finite trace ", tr,
                   "; zero constraints must be dropped by the caller"));
    x[i] = 1 / (static_cast<Real>(n) * tr);
  }
  return x;
}

SolverState initial_state(const PenaltyOracle& oracle, const char* who) {
  SolverState state;
  state.x = initial_weights(oracle, who);
  // Sequential accumulation, matching how the norm is maintained later.
  for (Index i = 0; i < state.x.size(); ++i) state.x_norm1 += state.x[i];
  state.primal_dots = Vector(oracle.size());
  return state;
}

Index apply_update(SolverState& state, const PenaltyBatch& batch, Real eps,
                   Real alpha) {
  const Index n = state.x.size();
  const Real tr_w = batch.trace;
  PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                     "solver engine: Tr[W] is not positive finite");
  const Real threshold = (1 + eps) * tr_w;
  Index updated = 0;
  Real norm_gain = 0;
  Real min_sum = std::numeric_limits<Real>::infinity();
  for (Index i = 0; i < n; ++i) {
    state.primal_dots[i] += batch.dots[i] / tr_w;
    min_sum = std::min(min_sum, state.primal_dots[i]);
    if (batch.dots[i] <= threshold) {
      norm_gain += alpha * state.x[i];
      state.x[i] *= (1 + alpha);
      ++updated;
    }
  }
  state.primal_trace += 1;  // Tr[P(t)] = 1 by construction (3.3)
  state.x_norm1 += norm_gain;
  state.min_primal_sum = min_sum;
  return updated;
}

void accumulate_weight(const PenaltyBatch& batch, Real scale, Matrix& y_sum) {
  if (batch.weight == nullptr) return;
  if (y_sum.rows() == 0) {
    y_sum = Matrix(batch.weight->rows(), batch.weight->cols());
  }
  y_sum.add_scaled(*batch.weight, scale);
}

Index steps_until_exceeds(Real base, Real alpha, Real target) {
  if (base <= 0) return kNoLimit;
  if (base > target) return 1;
  // j > log(target/base) / log(1+alpha); +1 to strictly exceed.
  const Real j = std::log(target / base) / std::log1p(alpha);
  Index candidate = static_cast<Index>(std::floor(j)) + 1;
  if (candidate < 1) candidate = 1;
  // Guard against floating-point edge: ensure the candidate really crosses.
  while (base * std::pow(1 + alpha, static_cast<Real>(candidate)) <= target) {
    ++candidate;
  }
  return candidate;
}

EngineRun run_decision_loop(PenaltyOracle& oracle,
                            const DecisionOptions& options) {
  const Real eps = options.eps;
  PSDP_CHECK(options.exp_stride >= 1, "exp_stride must be at least 1");
  EngineRun run;
  run.constants = algorithm_constants(oracle.size(), eps);
  const AlgorithmConstants& c = run.constants;
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;
  SolverState& state = run.state;
  state = initial_state(oracle, "decisionPSDP");

  // Lazy refresh is an exact-oracle knob (documented as dense-only): on a
  // noisy oracle a stride would replay one correlated batch and break the
  // certificate argument below, so noisy oracles refresh every round.
  const Index exp_stride =
      oracle.noise_bound() > 0 ? 1 : options.exp_stride;

  PenaltyBatch batch;
  // The plain loop certifies the primal against the paper's exact threshold
  // min_i >= t even on a noisy oracle: each round draws an independent
  // sketch, so the averaged certificate concentrates over t rounds. (The
  // phased schedule replays a single noisy batch j times -- correlated
  // noise -- which is why *it* inflates the threshold by the oracle's
  // noise_bound instead.)
  while (state.x_norm1 <= c.k_cap && state.t < r_limit &&
         !(options.early_primal_exit && state.primal_certified(0))) {
    // Round boundary: no locks held, no parallel region open -- the one
    // safe place to lend the thread out (see yield_point.hpp).
    if (options.yield != nullptr) options.yield->check();
    ++state.t;
    if ((state.t - 1) % exp_stride == 0) {
      // Refresh the penalties (every iteration in paper-faithful mode; the
      // round index seeds per-round sketch noise where applicable).
      oracle.compute(state.x, static_cast<std::uint64_t>(state.t), batch);
    }
    const Index updated = apply_update(state, batch, eps, c.alpha);

    accumulate_weight(batch, 1 / batch.trace, run.y_sum);
    if (batch.weight_vec != nullptr) {
      if (run.y_sum_vec.size() == 0) {
        run.y_sum_vec = Vector(batch.weight_vec->size());
      }
      run.y_sum_vec.add_scaled(*batch.weight_vec, 1 / batch.trace);
    }

    if (options.track_trajectory) {
      IterationStat stat;
      stat.t = state.t;
      stat.trace_w = batch.trace;
      // lambda_max of Psi(t-1) = the exponent of this round's W (0 where
      // the oracle cannot observe it).
      stat.lambda_max_psi = batch.lambda_max_psi;
      stat.x_norm1 = state.x_norm1;
      stat.updated = updated;
      run.trajectory.push_back(stat);
    }

    PSDP_LOG(kDebug) << "decision iter " << state.t << " |x|=" << state.x_norm1
                     << " trW=" << batch.trace << " |B|=" << updated;
  }
  return run;
}

DecisionResult finish_decision(EngineRun&& run, PenaltyOracle& oracle,
                               bool dense_primal) {
  SolverState& state = run.state;
  const AlgorithmConstants& c = run.constants;
  const Real psi_lambda_max = oracle.lambda_max(state.x);

  DecisionResult result;
  result.iterations = state.t;
  result.constants = c;
  const Real t_count = std::max<Real>(1, static_cast<Real>(state.t));
  result.primal_dots = std::move(state.primal_dots);
  result.primal_dots.scale(1 / t_count);
  result.primal_trace = state.primal_trace / t_count;
  result.outcome = state.x_norm1 > c.k_cap ? DecisionOutcome::kDual
                                           : DecisionOutcome::kPrimal;
  result.psi_lambda_max = psi_lambda_max;
  // x_hat = x / ((1+10 eps) K); Lemma 3.2 guarantees feasibility, and on the
  // dual exit ||x_hat||_1 >= 1 - 10 eps via (3.4). The tight variant uses
  // the measured norm instead of the worst case.
  result.dual_x_tight = state.x;
  if (psi_lambda_max > 0) {
    result.dual_x_tight.scale(1 / psi_lambda_max);
  } else {
    result.dual_x_tight.scale(1 / c.spectrum_bound);
  }
  result.dual_x = std::move(state.x);
  result.dual_x.scale(1 / c.spectrum_bound);
  result.trajectory = std::move(run.trajectory);
  attach_primal_y(result, result.iterations, oracle, std::move(run.y_sum),
                  dense_primal);
  return result;
}

}  // namespace psdp::core
