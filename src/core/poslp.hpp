// Width-independent positive *linear* programming -- the scalar special
// case ([LN93, You01]) that Algorithm 3.1 generalizes.
//
// Packing LP:  max 1^T x  s.t.  P x <= 1,  x >= 0,  with P >= 0 (l x n).
//
// In the paper's geometric picture (Figure 1), this is the restriction of
// positive SDPs to axis-aligned ellipsoids: variable i corresponds to the
// diagonal constraint matrix A_i = diag(P_{.,i}), the matrix exponential
// collapses to the scalar soft-max weights w_j = exp((P x)_j), and
// Tr[exp(Psi)] = sum_j w_j. Everything else -- the constants K, alpha, R,
// the B(t) selection rule, both exit certificates -- is *identical* to
// Algorithm 3.1, and the test suite verifies that lp_decision and
// decision_dense produce the same iterates on diagonal embeddings. The
// module exists (a) as the natural entry point when the input really is an
// LP (each iteration is O(nnz(P)) instead of matrix-exponential work), and
// (b) as an executable statement of what, exactly, the paper's
// generalization had to add (see bench_lp_embedding).
//
// Numerical note: the scalar path can subtract max_j Psi_j before
// exponentiating (the selection test dots_i <= (1+eps) Tr[W] and the primal
// average W/Tr[W] are both scale-invariant), so it tolerates much smaller
// eps than the dense-exponential path before overflow.
#pragma once

#include "core/decision.hpp"
#include "core/instance.hpp"
#include "core/optimize.hpp"

namespace psdp::core {

/// A positive packing LP instance: max 1^T x s.t. P x <= 1, x >= 0.
class PackingLp {
 public:
  PackingLp() = default;
  /// P is l x n with non-negative finite entries and no zero column (a zero
  /// column means an unbounded optimum and must be handled by the caller).
  explicit PackingLp(Matrix p);

  Index rows() const { return p_.rows(); }  ///< l, number of constraints
  Index size() const { return p_.cols(); }  ///< n, number of variables

  const Matrix& matrix() const { return p_; }

  /// Column sum of column i -- the trace of the diagonal embedding's A_i.
  Real column_sum(Index i) const;

  /// Copy with P scaled by s >= 0 (the binary-search probe).
  PackingLp scaled(Real s) const;

  /// The diagonal-matrix embedding A_i = diag(P_{.,i}) as a dense packing
  /// SDP instance (tests and the bench_lp_embedding comparison).
  PackingInstance to_diagonal_sdp() const;

 private:
  Matrix p_;
  std::vector<Real> column_sums_;
};

/// Result of the LP decision routine; mirrors DecisionResult with the
/// primal certificate being a probability *vector* y over the rows.
struct LpDecisionResult {
  DecisionOutcome outcome = DecisionOutcome::kPrimal;
  Vector dual_x;        ///< x / ((1+10 eps) K), worst-case feasible
  Vector dual_x_tight;  ///< x / max_j (P x)_j, measured-tight feasible
  Real psi_max = 0;     ///< max_j (P x)_j at exit (the scalar lambda_max)
  Vector primal_y;      ///< avg_t w(t)/||w(t)||_1 (Tr Y = 1 analogue)
  Vector primal_dots;   ///< avg penalties per variable, (P^T y)_i
  Real primal_trace = 0;
  Index iterations = 0;
  AlgorithmConstants constants;
  std::vector<IterationStat> trajectory;
};

/// Algorithm 3.1 specialized to the scalar case. Honors eps,
/// track_trajectory, max_iterations_override and early_primal_exit from
/// DecisionOptions (the exponential-refresh and sketch knobs do not apply:
/// the scalar exponential is exact and cheap).
LpDecisionResult lp_decision(const PackingLp& lp,
                             const DecisionOptions& options = {});

/// (1+eps)-approximate LP packing optimum via the same measured-certificate
/// geometric search as approx_packing.
struct LpOptimum {
  Real lower = 0;   ///< value of best_x, certified
  Real upper = 0;   ///< certified upper bound
  Vector best_x;    ///< exactly feasible: P best_x <= 1
  Index decision_calls = 0;
  Index total_iterations = 0;
};

LpOptimum approx_packing_lp(const PackingLp& lp,
                            const OptimizeOptions& options = {});

/// (1+eps)-approximate *covering* LP optimization:
///     min 1^T y   s.t.   P^T y >= 1,  y >= 0,
/// the LP dual of the packing program over the same matrix (rows of P are
/// the covering variables, columns the covering constraints). Mirrors
/// approx_covering: strong LP duality makes the packing bracket a bracket
/// on the covering optimum, and the best primal certificate of a packing
/// probe at scale v -- a probability vector y with (vP)^T y >= mu --
/// rescales to the feasible covering solution v y / mu.
struct LpCoveringOptimum {
  Vector y;            ///< feasible: P^T y >= 1 (up to roundoff)
  Real objective = 0;  ///< 1^T y, within (1+eps) of OPT on convergence
  Real lower_bound = 0;  ///< dual certificate: OPT >= lower_bound
  LpOptimum packing;     ///< the underlying packing search
};

LpCoveringOptimum approx_covering_lp(const PackingLp& lp,
                                     const OptimizeOptions& options = {});

}  // namespace psdp::core
