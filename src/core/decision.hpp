// Algorithm 3.1 (decisionPSDP): the width-independent parallel solver for
// the eps-decision version of packing positive SDPs.
//
//   Define K = (1 + ln n)/eps, alpha = eps/(K (1+10 eps)), R = 32 ln(n)/(eps alpha)
//   x_i(0) = 1/(n Tr[A_i])
//   while ||x||_1 <= K and t < R:
//     W = exp( sum_i x_i A_i )
//     B = { i : W . A_i <= (1+eps) Tr[W] }
//     x_i *= (1 + alpha) for i in B
//   if ||x||_1 > K:  return dual   x_hat = x / ((1+10 eps) K)
//   else:            return primal Y = avg_t W(t)/Tr[W(t)]
//
// Guarantees (Theorem 3.1): terminates within R = O(eps^-3 log^2 n)
// iterations; the dual satisfies ||x_hat||_1 >= 1 - 10 eps and
// sum x_hat_i A_i <= I (Lemma 3.2's spectrum bound lambda_max(Psi) <=
// (1+10 eps) K makes the division feasible); the primal satisfies Tr Y = 1
// and A_i . Y >= 1 (Lemma 3.6).
//
// Two implementations share this interface:
//  * decision_dense       -- exact exp via Jacobi eigendecomposition; the
//                            reference solver and the iteration-count
//                            workhorse (per-iteration cost O(m^3 + n m^2)).
//  * decision_factorized  -- the nearly-linear-work path of Theorem 4.1:
//                            W . A_i evaluated by bigDotExp with the a-priori
//                            kappa = (1+10 eps) K from Lemma 3.2. Never
//                            forms an m x m matrix.
//
// Note on eps: `DecisionOptions::eps` is the *algorithm's* parameter; the
// returned dual is (1 - 10 eps)-large per the theorem. solve_decision()
// wraps this with eps -> eps/10 so its contract matches the eps-decision
// problem statement verbatim.
#pragma once

#include <vector>

#include "core/bigdotexp.hpp"
#include "core/instance.hpp"
#include "core/yield_point.hpp"

namespace psdp::core {

enum class DecisionOutcome {
  kDual,    ///< found x_hat: ||x_hat||_1 >= 1 - 10 eps, sum x_i A_i <= I
  kPrimal,  ///< found Y: Tr Y = 1 and A_i . Y >= 1 for all i
};

/// Derived constants of Algorithm 3.1. ln(n) is computed as ln(max(n, 2))
/// so single-constraint instances stay non-degenerate (the paper assumes
/// n >= 2 throughout).
struct AlgorithmConstants {
  Real k_cap = 0;   ///< K = (1 + ln n)/eps
  Real alpha = 0;   ///< alpha = eps / (K (1 + 10 eps))
  Index r_limit = 0;  ///< R = ceil(32 ln(n) / (eps alpha))
  Real spectrum_bound = 0;  ///< (1 + 10 eps) K, the Lemma 3.2 invariant
};

AlgorithmConstants algorithm_constants(Index n, Real eps);

struct DecisionOptions {
  /// Algorithm accuracy parameter, in (0, 1).
  Real eps = 0.1;
  /// Record per-iteration statistics (adds no extra factorizations).
  bool track_trajectory = false;
  /// Cap on iterations; 0 means the paper's R. Lower values are useful in
  /// experiments that study the trajectory.
  Index max_iterations_override = 0;
  /// Exit early once the running primal average already certifies
  /// min_i A_i . Y >= 1. Lemma 3.6 only guarantees this after the full R
  /// iterations, but the certificate is self-verifying, so checking it each
  /// iteration is sound and in practice cuts the primal side from R =
  /// O(eps^-3 log^2 n) to a small multiple of the dual side's cost. Set to
  /// false for paper-faithful iteration counts.
  bool early_primal_exit = true;
  /// Lazy exponential refresh (dense solver only): recompute W = exp(Psi)
  /// every `exp_stride` iterations, reusing the previous W (and dots) for
  /// the coordinate selection in between. Inspired by the selective-update
  /// direction of [WMMR15] that the paper's Section 1.1 points at. The
  /// individual update steps are unchanged; only the selection may act on
  /// stale information, so the worst-case analysis no longer applies --
  /// every returned certificate is therefore re-verified by construction
  /// (dual: measured lambda_max; primal: self-verifying running average).
  /// See bench_ablation for the measured iteration/time trade-off.
  /// 1 = paper-faithful.
  Index exp_stride = 1;
  /// Factorized path: accuracy for the exp-dot estimates. 0 = auto (eps/2).
  Real dot_eps = 0;
  /// Factorized path: JL/bigDotExp knobs. `seed` is advanced per iteration
  /// so sketch noise is independent across iterations.
  BigDotExpOptions dot_options;
  /// Factorized path: caller-owned scratch shared across solver iterations
  /// (and, if reused, across solves -- results are unaffected; see
  /// SolverWorkspace). nullptr = the oracle owns a private workspace.
  /// Ignored by the dense solver.
  SolverWorkspace* workspace = nullptr;
  /// Cooperative check-in invoked once per round, outside any parallel
  /// region (yield_point.hpp). The serve scheduler uses it for preemption
  /// and dynamic lane widening at round boundaries; it cannot change the
  /// solve's results. nullptr = no check-ins.
  YieldPoint* yield = nullptr;
};

/// One iteration's diagnostics (recorded when track_trajectory is set).
struct IterationStat {
  Index t = 0;
  Real x_norm1 = 0;        ///< ||x||_1 after the update
  Real trace_w = 0;        ///< Tr[W(t)]
  Index updated = 0;       ///< |B(t)|
  Real lambda_max_psi = 0; ///< lambda_max(Psi(t-1)); dense solver only
};

struct DecisionResult {
  DecisionOutcome outcome = DecisionOutcome::kPrimal;
  /// Scaled dual x_hat (kDual), or the raw final x scaled the same way
  /// (kPrimal; still feasible, just small).
  Vector dual_x;
  /// The measured-tight dual: x divided by the *actual* lambda_max of the
  /// final Psi instead of the worst-case (1+10 eps)K. Exactly feasible by
  /// construction (dense path: exact eigensolve; factorized path: power
  /// iteration inflated by 1%), and typically much larger than dual_x --
  /// the optimization search uses it for its lower bounds.
  Vector dual_x_tight;
  /// lambda_max of the final Psi = sum_i x_i A_i (exact for the dense
  /// solver, an inflated power-iteration estimate for the factorized one).
  Real psi_lambda_max = 0;
  /// Dense primal certificate Y (dense solver only; empty otherwise).
  Matrix primal_y;
  /// A_i . Y for the (possibly implicit) primal average Y -- available from
  /// both solvers, since the per-iteration dots are averaged on the fly.
  Vector primal_dots;
  Real primal_trace = 0;  ///< Tr Y
  Index iterations = 0;
  AlgorithmConstants constants;
  std::vector<IterationStat> trajectory;
};

/// Dense reference implementation (exact matrix exponentials).
DecisionResult decision_dense(const PackingInstance& instance,
                              const DecisionOptions& options = {});

/// Nearly-linear-work implementation over factorized input.
DecisionResult decision_factorized(const FactorizedPackingInstance& instance,
                                   const DecisionOptions& options = {});

/// The eps-decision problem exactly as stated in Section 2.2: either a dual
/// x with ||x||_1 >= 1 - eps and sum x_i A_i <= I, or a primal Y with
/// Tr Y = 1 and A_i . Y >= 1. Runs decision_dense with eps/10.
DecisionResult solve_decision(const PackingInstance& instance, Real eps);

}  // namespace psdp::core
