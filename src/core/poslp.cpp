#include "core/poslp.hpp"

#include <cmath>

#include "util/log.hpp"

namespace psdp::core {

PackingLp::PackingLp(Matrix p) : p_(std::move(p)) {
  PSDP_CHECK(p_.rows() >= 1 && p_.cols() >= 1, "PackingLp: empty matrix");
  PSDP_CHECK(linalg::all_finite(p_), "PackingLp: non-finite entries");
  column_sums_.assign(static_cast<std::size_t>(p_.cols()), 0);
  for (Index j = 0; j < p_.rows(); ++j) {
    for (Index i = 0; i < p_.cols(); ++i) {
      PSDP_CHECK(p_(j, i) >= 0,
                 str("PackingLp: negative entry at (", j, ",", i, ")"));
      column_sums_[static_cast<std::size_t>(i)] += p_(j, i);
    }
  }
  for (Index i = 0; i < p_.cols(); ++i) {
    PSDP_CHECK(column_sums_[static_cast<std::size_t>(i)] > 0,
               str("PackingLp: column ", i,
                   " is zero (unbounded variable); remove it first"));
  }
}

Real PackingLp::column_sum(Index i) const {
  PSDP_CHECK(i >= 0 && i < size(), "PackingLp::column_sum: index out of range");
  return column_sums_[static_cast<std::size_t>(i)];
}

PackingLp PackingLp::scaled(Real s) const {
  PSDP_CHECK(s >= 0 && std::isfinite(s), "PackingLp::scaled: bad scale");
  Matrix p = p_;
  p.scale(s);
  return PackingLp(std::move(p));
}

PackingInstance PackingLp::to_diagonal_sdp() const {
  std::vector<Matrix> constraints;
  constraints.reserve(static_cast<std::size_t>(size()));
  for (Index i = 0; i < size(); ++i) {
    Vector diag(rows());
    for (Index j = 0; j < rows(); ++j) diag[j] = p_(j, i);
    constraints.push_back(Matrix::diagonal(diag));
  }
  return PackingInstance(std::move(constraints));
}

LpDecisionResult lp_decision(const PackingLp& lp,
                             const DecisionOptions& options) {
  const Index n = lp.size();
  const Index l = lp.rows();
  const Real eps = options.eps;
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;
  const Matrix& p = lp.matrix();

  LpDecisionResult result;
  result.constants = c;

  // x_i(0) = 1/(n Tr[A_i]) with Tr[A_i] = column sum; Psi = P x maintained
  // incrementally (all updates add non-negative terms).
  Vector x(n);
  Real x_norm1 = 0;
  Vector psi(l);
  for (Index i = 0; i < n; ++i) {
    x[i] = 1 / (static_cast<Real>(n) * lp.column_sum(i));
    x_norm1 += x[i];
    for (Index j = 0; j < l; ++j) psi[j] += x[i] * p(j, i);
  }

  Vector w(l);
  Vector dots(n);
  Vector y_sum(l);           // running sum of w/||w||_1
  Vector primal_sums(n);     // running sum of dots/tr_w
  Real min_primal_sum = 0;
  Real primal_trace = 0;
  Index t = 0;

  const auto primal_certified = [&]() {
    return t > 0 && min_primal_sum >= static_cast<Real>(t);
  };

  while (x_norm1 <= c.k_cap && t < r_limit &&
         !(options.early_primal_exit && primal_certified())) {
    ++t;
    // Scalar soft-max weights, shifted by max_j Psi_j for overflow safety
    // (the selection rule and the primal average are scale-invariant).
    const Real shift = linalg::max_entry(psi);
    Real tr_w = 0;
    for (Index j = 0; j < l; ++j) {
      w[j] = std::exp(psi[j] - shift);
      tr_w += w[j];
    }
    PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                       "lp_decision: weight sum is not positive finite");
    // dots_i = (P^T w)_i = exp-penalty of variable i.
    for (Index i = 0; i < n; ++i) dots[i] = 0;
    for (Index j = 0; j < l; ++j) {
      const Real wj = w[j];
      if (wj == 0) continue;
      for (Index i = 0; i < n; ++i) dots[i] += wj * p(j, i);
    }

    const Real threshold = (1 + eps) * tr_w;
    Index updated = 0;
    Real norm_gain = 0;
    Real min_sum = std::numeric_limits<Real>::infinity();
    for (Index i = 0; i < n; ++i) {
      primal_sums[i] += dots[i] / tr_w;
      min_sum = std::min(min_sum, primal_sums[i]);
      if (dots[i] <= threshold) {
        const Real delta = c.alpha * x[i];
        x[i] += delta;
        norm_gain += delta;
        for (Index j = 0; j < l; ++j) psi[j] += delta * p(j, i);
        ++updated;
      }
    }
    x_norm1 += norm_gain;
    min_primal_sum = min_sum;
    primal_trace += 1;
    y_sum.add_scaled(w, 1 / tr_w);

    if (options.track_trajectory) {
      IterationStat stat;
      stat.t = t;
      stat.x_norm1 = x_norm1;
      stat.trace_w = tr_w;  // note: shifted scale; ratios are meaningful
      stat.updated = updated;
      stat.lambda_max_psi = shift;
      result.trajectory.push_back(stat);
    }
    PSDP_LOG(kDebug) << "lp iter " << t << " |x|=" << x_norm1
                     << " max(Px)=" << shift << " |B|=" << updated;
  }

  result.iterations = t;
  result.psi_max = linalg::max_entry(psi);
  result.outcome = x_norm1 > c.k_cap ? DecisionOutcome::kDual
                                     : DecisionOutcome::kPrimal;
  const Real t_count = std::max<Real>(1, static_cast<Real>(t));
  result.primal_dots = std::move(primal_sums);
  result.primal_dots.scale(1 / t_count);
  result.primal_trace = primal_trace / t_count;
  if (t > 0) {
    result.primal_y = std::move(y_sum);
    result.primal_y.scale(1 / static_cast<Real>(t));
  } else {
    result.primal_y = Vector(l, 1 / static_cast<Real>(l));
    result.primal_trace = 1;
  }
  result.dual_x_tight = x;
  result.dual_x_tight.scale(result.psi_max > 0 ? 1 / result.psi_max
                                               : 1 / c.spectrum_bound);
  result.dual_x = std::move(x);
  result.dual_x.scale(1 / c.spectrum_bound);
  return result;
}

LpOptimum approx_packing_lp(const PackingLp& lp,
                            const OptimizeOptions& options) {
  PSDP_CHECK(options.eps > 0 && options.eps < 1,
             "approx_packing_lp: eps must lie in (0,1)");
  DecisionOptions decision = options.decision;
  decision.eps = options.decision_eps > 0
                     ? options.decision_eps
                     : std::clamp(options.eps / 4, 0.03, 0.25);

  const Index n = lp.size();
  Real min_sum = lp.column_sum(0);
  Index argmin = 0;
  for (Index i = 1; i < n; ++i) {
    if (lp.column_sum(i) < min_sum) {
      min_sum = lp.column_sum(i);
      argmin = i;
    }
  }

  LpOptimum best;
  // Single-variable feasibility: x = e_i / max_j P_ji, and max_j P_ji >=
  // column_sum / l, so OPT >= 1/column_sum. Row-sum bound: summing P x <= 1
  // over rows gives sum_i column_sum_i x_i <= l, so OPT <= l / min column
  // sum.
  best.lower = 1 / min_sum;
  best.upper = static_cast<Real>(lp.rows()) / min_sum;
  best.best_x = Vector(n);
  best.best_x[argmin] = 1 / min_sum;

  Index stalls = 0;
  while (best.upper > best.lower * (1 + options.eps) &&
         best.decision_calls < options.max_probes && stalls < 3) {
    const Real v = std::sqrt(best.lower * best.upper);
    const LpDecisionResult probe = lp_decision(lp.scaled(v), decision);
    ++best.decision_calls;
    best.total_iterations += probe.iterations;

    bool progressed = false;
    if (probe.outcome == DecisionOutcome::kDual) {
      const Real value = v * linalg::sum(probe.dual_x_tight);
      if (value > best.lower * (1 + 1e-12)) {
        best.lower = value;
        best.best_x = probe.dual_x_tight;
        best.best_x.scale(v);
        progressed = true;
      }
    } else {
      Real min_dot = std::numeric_limits<Real>::infinity();
      for (Index i = 0; i < probe.primal_dots.size(); ++i) {
        min_dot = std::min(min_dot, probe.primal_dots[i]);
      }
      PSDP_NUMERIC_CHECK(min_dot > 0,
                         "approx_packing_lp: degenerate primal certificate");
      const Real upper = v / min_dot;
      if (upper < best.upper * (1 - 1e-12)) {
        best.upper = upper;
        progressed = true;
      }
    }
    stalls = progressed ? 0 : stalls + 1;
    PSDP_LOG(kInfo) << "approx_packing_lp probe v=" << v << " -> ["
                    << best.lower << ", " << best.upper << "]";
  }
  return best;
}

LpCoveringOptimum approx_covering_lp(const PackingLp& lp,
                                     const OptimizeOptions& options) {
  LpCoveringOptimum result;
  result.packing = approx_packing_lp(lp, options);
  result.lower_bound = result.packing.lower;

  DecisionOptions decision = options.decision;
  decision.eps = options.decision_eps > 0
                     ? options.decision_eps
                     : std::clamp(options.eps / 4, 0.03, 0.25);

  // Obtain a primal certificate: probe at (just above) the packing upper
  // bound, escalating if the dual side still wins there.
  Real v = result.packing.upper;
  bool found = false;
  for (int attempt = 0; attempt < 6 && !found; ++attempt) {
    const LpDecisionResult probe = lp_decision(lp.scaled(v), decision);
    ++result.packing.decision_calls;
    result.packing.total_iterations += probe.iterations;
    if (probe.outcome == DecisionOutcome::kPrimal) {
      Real mu = std::numeric_limits<Real>::infinity();
      for (Index i = 0; i < probe.primal_dots.size(); ++i) {
        mu = std::min(mu, probe.primal_dots[i]);
      }
      PSDP_NUMERIC_CHECK(mu > 0,
                         "approx_covering_lp: degenerate primal certificate");
      // y' = (v / mu) y covers: P^T y' = (v P)^T y / mu >= 1.
      Vector y = probe.primal_y;
      y.scale(v / mu);
      // Exact re-verification (and roundoff repair) on the original P.
      const Vector coverage = linalg::matvec_transpose(lp.matrix(), y);
      Real cover_min = std::numeric_limits<Real>::infinity();
      for (Index i = 0; i < coverage.size(); ++i) {
        cover_min = std::min(cover_min, coverage[i]);
      }
      PSDP_NUMERIC_CHECK(cover_min > 0, "approx_covering_lp: zero coverage");
      if (cover_min < 1) y.scale(1 / cover_min);
      result.y = std::move(y);
      result.objective = linalg::sum(result.y);
      found = true;
    } else {
      result.lower_bound = std::max(
          result.lower_bound, v * linalg::sum(probe.dual_x_tight));
      v *= (1 + options.eps);
    }
  }
  PSDP_NUMERIC_CHECK(found,
                     "approx_covering_lp: could not obtain a primal "
                     "certificate (escalation exhausted)");
  return result;
}

}  // namespace psdp::core
