#include "core/poslp.hpp"

#include <cmath>

#include "core/penalty_oracle.hpp"
#include "core/solver_engine.hpp"
#include "util/log.hpp"

namespace psdp::core {

PackingLp::PackingLp(Matrix p) : p_(std::move(p)) {
  PSDP_CHECK(p_.rows() >= 1 && p_.cols() >= 1, "PackingLp: empty matrix");
  PSDP_CHECK(linalg::all_finite(p_), "PackingLp: non-finite entries");
  column_sums_.assign(static_cast<std::size_t>(p_.cols()), 0);
  for (Index j = 0; j < p_.rows(); ++j) {
    for (Index i = 0; i < p_.cols(); ++i) {
      PSDP_CHECK(p_(j, i) >= 0,
                 str("PackingLp: negative entry at (", j, ",", i, ")"));
      column_sums_[static_cast<std::size_t>(i)] += p_(j, i);
    }
  }
  for (Index i = 0; i < p_.cols(); ++i) {
    PSDP_CHECK(column_sums_[static_cast<std::size_t>(i)] > 0,
               str("PackingLp: column ", i,
                   " is zero (unbounded variable); remove it first"));
  }
}

Real PackingLp::column_sum(Index i) const {
  PSDP_CHECK(i >= 0 && i < size(), "PackingLp::column_sum: index out of range");
  return column_sums_[static_cast<std::size_t>(i)];
}

PackingLp PackingLp::scaled(Real s) const {
  PSDP_CHECK(s >= 0 && std::isfinite(s), "PackingLp::scaled: bad scale");
  Matrix p = p_;
  p.scale(s);
  return PackingLp(std::move(p));
}

PackingInstance PackingLp::to_diagonal_sdp() const {
  std::vector<Matrix> constraints;
  constraints.reserve(static_cast<std::size_t>(size()));
  for (Index i = 0; i < size(); ++i) {
    Vector diag(rows());
    for (Index j = 0; j < rows(); ++j) diag[j] = p_(j, i);
    constraints.push_back(Matrix::diagonal(diag));
  }
  return PackingInstance(std::move(constraints));
}

LpDecisionResult lp_decision(const PackingLp& lp,
                             const DecisionOptions& options) {
  const Index l = lp.rows();

  // The scalar oracle (soft-max weights, incrementally maintained Psi = Px)
  // driven by the same engine loop as the matrix solvers -- an executable
  // statement of "the LP case IS Algorithm 3.1 on diagonal matrices".
  ScalarSoftmaxOracle oracle(lp.matrix());
  DecisionOptions loop_options = options;
  // The exponential-refresh and sketch knobs do not apply: the scalar
  // exponential is exact and cheap, so every iteration refreshes.
  loop_options.exp_stride = 1;
  EngineRun run = run_decision_loop(oracle, loop_options);

  LpDecisionResult result;
  result.constants = run.constants;
  result.iterations = run.state.t;
  result.psi_max = oracle.lambda_max(run.state.x);
  result.outcome = run.state.x_norm1 > run.constants.k_cap
                       ? DecisionOutcome::kDual
                       : DecisionOutcome::kPrimal;
  const Real t_count = std::max<Real>(1, static_cast<Real>(run.state.t));
  result.primal_dots = std::move(run.state.primal_dots);
  result.primal_dots.scale(1 / t_count);
  result.primal_trace = run.state.primal_trace / t_count;
  if (run.state.t > 0) {
    result.primal_y = std::move(run.y_sum_vec);
    result.primal_y.scale(1 / static_cast<Real>(run.state.t));
  } else {
    result.primal_y = Vector(l, 1 / static_cast<Real>(l));
    result.primal_trace = 1;
  }
  result.dual_x_tight = run.state.x;
  result.dual_x_tight.scale(result.psi_max > 0
                                ? 1 / result.psi_max
                                : 1 / run.constants.spectrum_bound);
  result.dual_x = std::move(run.state.x);
  result.dual_x.scale(1 / run.constants.spectrum_bound);
  result.trajectory = std::move(run.trajectory);
  return result;
}

LpOptimum approx_packing_lp(const PackingLp& lp,
                            const OptimizeOptions& options) {
  PSDP_CHECK(options.eps > 0 && options.eps < 1,
             "approx_packing_lp: eps must lie in (0,1)");
  DecisionOptions decision = options.decision;
  decision.eps = options.decision_eps > 0
                     ? options.decision_eps
                     : std::clamp(options.eps / 4, 0.03, 0.25);

  const Index n = lp.size();
  Real min_sum = lp.column_sum(0);
  Index argmin = 0;
  for (Index i = 1; i < n; ++i) {
    if (lp.column_sum(i) < min_sum) {
      min_sum = lp.column_sum(i);
      argmin = i;
    }
  }

  LpOptimum best;
  // Single-variable feasibility: x = e_i / max_j P_ji, and max_j P_ji >=
  // column_sum / l, so OPT >= 1/column_sum. Row-sum bound: summing P x <= 1
  // over rows gives sum_i column_sum_i x_i <= l, so OPT <= l / min column
  // sum.
  best.lower = 1 / min_sum;
  best.upper = static_cast<Real>(lp.rows()) / min_sum;
  best.best_x = Vector(n);
  best.best_x[argmin] = 1 / min_sum;

  Index stalls = 0;
  while (best.upper > best.lower * (1 + options.eps) &&
         best.decision_calls < options.max_probes && stalls < 3) {
    // sqrt(lower) * sqrt(upper): the product form overflows/underflows when
    // the column sums put the bracket near the edge of double range (see the
    // matching fix in optimize.cpp's search()).
    const Real v = std::sqrt(best.lower) * std::sqrt(best.upper);
    const LpDecisionResult probe = lp_decision(lp.scaled(v), decision);
    ++best.decision_calls;
    best.total_iterations += probe.iterations;

    bool progressed = false;
    if (probe.outcome == DecisionOutcome::kDual) {
      const Real value = v * linalg::sum(probe.dual_x_tight);
      if (value > best.lower * (1 + 1e-12)) {
        best.lower = value;
        best.best_x = probe.dual_x_tight;
        best.best_x.scale(v);
        progressed = true;
      }
    } else {
      Real min_dot = std::numeric_limits<Real>::infinity();
      for (Index i = 0; i < probe.primal_dots.size(); ++i) {
        min_dot = std::min(min_dot, probe.primal_dots[i]);
      }
      PSDP_NUMERIC_CHECK(min_dot > 0,
                         "approx_packing_lp: degenerate primal certificate");
      const Real upper = v / min_dot;
      if (upper < best.upper * (1 - 1e-12)) {
        best.upper = upper;
        progressed = true;
      }
    }
    stalls = progressed ? 0 : stalls + 1;
    PSDP_LOG(kInfo) << "approx_packing_lp probe v=" << v << " -> ["
                    << best.lower << ", " << best.upper << "]";
  }
  return best;
}

LpCoveringOptimum approx_covering_lp(const PackingLp& lp,
                                     const OptimizeOptions& options) {
  LpCoveringOptimum result;
  result.packing = approx_packing_lp(lp, options);
  result.lower_bound = result.packing.lower;

  DecisionOptions decision = options.decision;
  decision.eps = options.decision_eps > 0
                     ? options.decision_eps
                     : std::clamp(options.eps / 4, 0.03, 0.25);

  // Obtain a primal certificate: probe at (just above) the packing upper
  // bound, escalating if the dual side still wins there.
  Real v = result.packing.upper;
  bool found = false;
  for (int attempt = 0; attempt < 6 && !found; ++attempt) {
    const LpDecisionResult probe = lp_decision(lp.scaled(v), decision);
    ++result.packing.decision_calls;
    result.packing.total_iterations += probe.iterations;
    if (probe.outcome == DecisionOutcome::kPrimal) {
      Real mu = std::numeric_limits<Real>::infinity();
      for (Index i = 0; i < probe.primal_dots.size(); ++i) {
        mu = std::min(mu, probe.primal_dots[i]);
      }
      PSDP_NUMERIC_CHECK(mu > 0,
                         "approx_covering_lp: degenerate primal certificate");
      // y' = (v / mu) y covers: P^T y' = (v P)^T y / mu >= 1.
      Vector y = probe.primal_y;
      y.scale(v / mu);
      // Exact re-verification (and roundoff repair) on the original P.
      const Vector coverage = linalg::matvec_transpose(lp.matrix(), y);
      Real cover_min = std::numeric_limits<Real>::infinity();
      for (Index i = 0; i < coverage.size(); ++i) {
        cover_min = std::min(cover_min, coverage[i]);
      }
      PSDP_NUMERIC_CHECK(cover_min > 0, "approx_covering_lp: zero coverage");
      if (cover_min < 1) y.scale(1 / cover_min);
      result.y = std::move(y);
      result.objective = linalg::sum(result.y);
      found = true;
    } else {
      result.lower_bound = std::max(
          result.lower_bound, v * linalg::sum(probe.dual_x_tight));
      v *= (1 + options.eps);
    }
  }
  PSDP_NUMERIC_CHECK(found,
                     "approx_covering_lp: could not obtain a primal "
                     "certificate (escalation exhausted)");
  return result;
}

}  // namespace psdp::core
