#include "core/bucketed.hpp"

#include <cmath>

#include "core/penalty_oracle.hpp"
#include "core/solver_engine.hpp"
#include "util/log.hpp"

namespace psdp::core {

namespace {

/// Quantize the raw slack down to a power of two in [1, cap].
Real bucket_boost(Real raw, Real cap) {
  if (raw <= 1) return 1;
  const Real capped = std::min(raw, cap);
  return std::exp2(std::floor(std::log2(capped)));
}

/// The bucketed loop over any oracle. Both safety caps are *measured*
/// through the oracle -- the width cap via oracle.lambda_max on the step's
/// weight vector (exact for the dense oracle, a certified Lanczos upper
/// bound for the sketched one), the overshoot cap in exact arithmetic --
/// so the certificates stay sound on noisy penalties. Each round draws an
/// independent sketch (like the plain loop), but the primal is still
/// certified against the conservative (1 + noise_bound) * t: the boosted
/// schedule has no worst-case analysis to lean on, so its early exit
/// discounts the full per-round noise instead of relying on averaging.
BucketedResult run_bucketed_loop(PenaltyOracle& oracle,
                                 const BucketedOptions& options,
                                 bool dense_primal) {
  const Index n = oracle.size();
  const Real eps = options.eps;
  PSDP_CHECK(options.boost_cap >= 1,
             "decision_bucketed: boost_cap must be >= 1");
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;
  const Real noise = oracle.noise_bound();

  SolverState state = initial_state(oracle, "decision_bucketed");

  BucketedResult result;
  result.constants = c;

  Matrix y_sum;
  PenaltyBatch batch;
  Vector delta(n);
  Real boost_sum = 0;
  Index boost_count = 0;

  while (state.x_norm1 <= c.k_cap && state.t < r_limit &&
         !(options.early_primal_exit && state.primal_certified(noise))) {
    // Round boundary: no locks held, no parallel region open -- the one
    // safe place to lend the thread out (see yield_point.hpp).
    if (options.yield != nullptr) options.yield->check();
    ++state.t;
    oracle.compute(state.x, static_cast<std::uint64_t>(state.t), batch);
    const Real tr_w = batch.trace;
    PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                       "decision_bucketed: Tr[W] not positive finite");

    // Raw bucketed step.
    const Real threshold = (1 + eps) * tr_w;
    Index updated = 0;
    for (Index i = 0; i < n; ++i) {
      if (batch.dots[i] <= threshold) {
        const Real g =
            bucket_boost(threshold / batch.dots[i], options.boost_cap);
        delta[i] = c.alpha * g * state.x[i];
        boost_sum += g;
        ++boost_count;
        ++updated;
      } else {
        delta[i] = 0;
      }
    }

    if (updated > 0) {
      // Safety cap 2 (cheap, do first): ||delta||_1 <= eps ||x||_1.
      Real scale = 1;
      const Real delta_norm = linalg::sum(delta);
      if (delta_norm > eps * state.x_norm1) {
        scale = eps * state.x_norm1 / delta_norm;
        ++result.overshoot_rescales;
      }
      // Safety cap 1: lambda_max(sum delta_i A_i) <= eps, measured.
      if (scale != 1) delta.scale(scale);
      const Real width = oracle.lambda_max(delta);
      if (width > eps) {
        const Real shrink = eps / width;
        delta.scale(shrink);
        ++result.width_rescales;
      }
      // Commit.
      Real norm_gain = 0;
      for (Index i = 0; i < n; ++i) {
        if (delta[i] > 0) {
          state.x[i] += delta[i];
          norm_gain += delta[i];
        }
      }
      state.x_norm1 += norm_gain;
    }

    Real min_sum = std::numeric_limits<Real>::infinity();
    for (Index i = 0; i < n; ++i) {
      state.primal_dots[i] += batch.dots[i] / tr_w;
      min_sum = std::min(min_sum, state.primal_dots[i]);
    }
    state.min_primal_sum = min_sum;
    accumulate_weight(batch, 1 / tr_w, y_sum);

    if (options.track_trajectory) {
      IterationStat stat;
      stat.t = state.t;
      stat.x_norm1 = state.x_norm1;
      stat.trace_w = tr_w;
      stat.updated = updated;
      stat.lambda_max_psi = batch.lambda_max_psi;
      result.trajectory.push_back(stat);
    }
    PSDP_LOG(kDebug) << "bucketed iter " << state.t << " |x|=" << state.x_norm1
                     << " |B|=" << updated;
  }

  result.mean_boost =
      boost_count > 0 ? boost_sum / static_cast<Real>(boost_count) : 1;
  finish_schedule(result, std::move(state), c, oracle, std::move(y_sum),
                  dense_primal);
  return result;
}

}  // namespace

BucketedResult decision_bucketed(const PackingInstance& instance,
                                 const BucketedOptions& options) {
  DenseEigOracle oracle(instance);
  return run_bucketed_loop(oracle, options, /*dense_primal=*/true);
}

BucketedResult decision_bucketed(const FactorizedPackingInstance& instance,
                                 const FactorizedBucketedOptions& options) {
  SketchedOracleOptions oracle_options;
  oracle_options.eps = options.eps;
  oracle_options.dot_eps = options.dot_eps;
  oracle_options.dot_options = options.dot_options;
  oracle_options.workspace = options.workspace;
  // No Lemma 3.2 invariant for the boosted schedule: rely on the tracked
  // runtime bound kappa = min(Tr[Psi], sum_i x_i lambda_max(A_i)) alone
  // (kappa_cap = 0) -- the lambda side tightens the Taylor degree on
  // spiked spectra, the Tr side clamps it from ever getting looser.
  SketchedTaylorOracle oracle(instance, oracle_options);
  return run_bucketed_loop(oracle, options, /*dense_primal=*/false);
}

}  // namespace psdp::core
