#include "core/bucketed.hpp"

#include <cmath>

#include "linalg/eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/tridiag_eig.hpp"
#include "par/parallel.hpp"
#include "util/log.hpp"

namespace psdp::core {

namespace {

/// Quantize the raw slack down to a power of two in [1, cap].
Real bucket_boost(Real raw, Real cap) {
  if (raw <= 1) return 1;
  const Real capped = std::min(raw, cap);
  return std::exp2(std::floor(std::log2(capped)));
}

}  // namespace

BucketedResult decision_bucketed(const PackingInstance& instance,
                                 const BucketedOptions& options) {
  const Index n = instance.size();
  const Index m = instance.dim();
  const Real eps = options.eps;
  PSDP_CHECK(options.boost_cap >= 1, "decision_bucketed: boost_cap must be >= 1");
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;

  Vector x(n);
  Real x_norm1 = 0;
  for (Index i = 0; i < n; ++i) {
    const Real tr = instance.constraint_trace(i);
    PSDP_CHECK(tr > 0 && std::isfinite(tr),
               str("decision_bucketed: constraint ", i, " has bad trace ", tr));
    x[i] = 1 / (static_cast<Real>(n) * tr);
    x_norm1 += x[i];
  }

  Matrix psi(m, m);
  for (Index i = 0; i < n; ++i) psi.add_scaled(instance[i], x[i]);

  Matrix y_sum(m, m);
  Vector primal_sums(n);
  Real min_primal_sum = 0;
  Index t = 0;

  BucketedResult result;
  result.constants = c;

  const auto primal_certified = [&]() {
    return t > 0 && min_primal_sum >= static_cast<Real>(t);
  };

  Vector dots(n);
  Vector delta(n);
  const Index dots_grain = std::max<Index>(1, 16384 / (m * m + 1));
  Real boost_sum = 0;
  Index boost_count = 0;

  while (x_norm1 <= c.k_cap && t < r_limit &&
         !(options.early_primal_exit && primal_certified())) {
    ++t;
    const linalg::EigResult eig = linalg::sym_eig(psi);
    const Matrix w = linalg::expm_from_eig(eig);
    const Real tr_w = linalg::trace(w);
    PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                       "decision_bucketed: Tr[W] not positive finite");
    par::parallel_for(0, n, [&](Index i) {
      dots[i] = linalg::frobenius_dot(instance[i], w);
    }, dots_grain);

    // Raw bucketed step.
    const Real threshold = (1 + eps) * tr_w;
    Index updated = 0;
    for (Index i = 0; i < n; ++i) {
      if (dots[i] <= threshold) {
        const Real g = bucket_boost(threshold / dots[i], options.boost_cap);
        delta[i] = c.alpha * g * x[i];
        boost_sum += g;
        ++boost_count;
        ++updated;
      } else {
        delta[i] = 0;
      }
    }

    if (updated > 0) {
      // Safety cap 2 (cheap, do first): ||delta||_1 <= eps ||x||_1.
      Real scale = 1;
      const Real delta_norm = linalg::sum(delta);
      if (delta_norm > eps * x_norm1) {
        scale = eps * x_norm1 / delta_norm;
        ++result.overshoot_rescales;
      }
      // Safety cap 1: lambda_max(sum delta_i A_i) <= eps, exactly.
      Matrix step(m, m);
      for (Index i = 0; i < n; ++i) {
        if (delta[i] > 0) step.add_scaled(instance[i], scale * delta[i]);
      }
      const Real width = linalg::lambda_max_exact(step);
      if (width > eps) {
        const Real shrink = eps / width;
        scale *= shrink;
        step.scale(shrink);
        ++result.width_rescales;
      }
      // Commit.
      Real norm_gain = 0;
      for (Index i = 0; i < n; ++i) {
        if (delta[i] > 0) {
          const Real d = scale * delta[i];
          x[i] += d;
          norm_gain += d;
        }
      }
      psi.add_scaled(step, 1);
      x_norm1 += norm_gain;
    }

    Real min_sum = std::numeric_limits<Real>::infinity();
    for (Index i = 0; i < n; ++i) {
      primal_sums[i] += dots[i] / tr_w;
      min_sum = std::min(min_sum, primal_sums[i]);
    }
    min_primal_sum = min_sum;
    y_sum.add_scaled(w, 1 / tr_w);

    if (options.track_trajectory) {
      IterationStat stat;
      stat.t = t;
      stat.x_norm1 = x_norm1;
      stat.trace_w = tr_w;
      stat.updated = updated;
      stat.lambda_max_psi = eig.eigenvalues[0];
      result.trajectory.push_back(stat);
    }
    PSDP_LOG(kDebug) << "bucketed iter " << t << " |x|=" << x_norm1
                     << " |B|=" << updated;
  }

  result.iterations = t;
  result.mean_boost =
      boost_count > 0 ? boost_sum / static_cast<Real>(boost_count) : 1;
  result.psi_lambda_max = linalg::lambda_max_exact(psi);
  result.spectrum_bound_exceeded = result.psi_lambda_max > c.spectrum_bound;
  result.outcome = x_norm1 > c.k_cap ? DecisionOutcome::kDual
                                     : DecisionOutcome::kPrimal;
  result.dual_x = std::move(x);
  if (result.psi_lambda_max > 0) {
    result.dual_x.scale(1 / result.psi_lambda_max);
  }
  const Real t_count = std::max<Real>(1, static_cast<Real>(t));
  result.primal_dots = std::move(primal_sums);
  result.primal_dots.scale(1 / t_count);
  result.primal_trace = t > 0 ? 1 : 0;
  if (t > 0) {
    result.primal_y = std::move(y_sum);
    result.primal_y.scale(1 / static_cast<Real>(t));
  } else {
    result.primal_y = Matrix::identity(m);
    result.primal_y.scale(1 / static_cast<Real>(m));
    result.primal_trace = 1;
  }
  return result;
}

}  // namespace psdp::core
