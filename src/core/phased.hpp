// Phase-scheduled variant of Algorithm 3.1, in the spirit of the
// conference version [PT12].
//
// The arXiv revision the library implements (decision.hpp) removes phases;
// its Section 1.1 notes the phase-based pseudocode "can be analyzed
// similarly". This module reconstructs that schedule and exploits its
// defining algebraic property: while the weight matrix W = exp(Psi) is held
// fixed, the selected set B = { i : W . A_i <= (1+eps) Tr W } is also fixed
// (the dots depend on W only), so j consecutive iterations multiply the
// selected coordinates by (1+alpha)^j *in closed form*. A phase is then:
//
//   1. one matrix exponential (the only O(m^3) work),
//   2. the largest j such that within j iterations ||x||_1 stays below the
//      phase budget (a (1+phase_growth) multiple of its phase-start value),
//      the dual exit ||x||_1 > K is not crossed, the running primal average
//      does not certify, and the global budget R is not exhausted,
//   3. the batched update x_B *= (1+alpha)^j.
//
// Iteration-for-iteration this reproduces exp_stride-style lazy refresh,
// but the stride is *adaptive* (phases get shorter as ||x||_1 accelerates)
// and each phase costs O(1) exponentials regardless of its length.
//
// Guarantees: the per-phase selections act on phase-start penalties, so the
// worst-case Lemma 3.2 proof does not directly apply. Every certificate is
// therefore measured: the dual is rescaled by the *exact* lambda_max of the
// final Psi (feasible by construction), and the primal running average is
// self-verifying exactly as in the phase-free solver. The result reports
// whether the Lemma 3.2 bound was ever exceeded (empirically it is not for
// moderate phase_growth; bench_variants quantifies the trade-off).
#pragma once

#include <vector>

#include "core/decision.hpp"

namespace psdp::core {

struct PhasedOptions {
  /// Algorithm accuracy parameter, in (0, 1).
  Real eps = 0.1;
  /// A phase ends once ||x||_1 exceeds (1 + phase_growth) times its value
  /// at phase start. 0 = auto (= eps, matching the step geometry of the
  /// phase-free algorithm). Smaller values track the phase-free algorithm
  /// more closely at the cost of more exponentials.
  Real phase_growth = 0;
  /// Cap on *virtual* iterations; 0 means the paper's R.
  Index max_iterations_override = 0;
  /// Exit as soon as the running primal average certifies (self-verifying;
  /// same semantics as DecisionOptions::early_primal_exit).
  bool early_primal_exit = true;
  /// Diagnostic: certify the primal against the fully adversarial
  /// two-sided ratio margin (1+noise)/(1-noise) instead of the production
  /// one-sided 1+noise. The adversarial bound treats the dots and trace
  /// errors as independent worst cases; in reality both are quadratic
  /// forms in the *same* sketch and share the Taylor bias, which cancels
  /// in the ratio -- the one-sided margin relies on exactly that
  /// correlation. Flipping this switch on a near-threshold instance is
  /// the measured ~100x iteration blowup documented in
  /// docs/noisy_oracle_margin.md (repro: bench_variants --margin-blowup).
  /// No effect on exact oracles (noise 0 collapses both margins).
  bool two_sided_margin = false;
  /// Cooperative check-in invoked once per phase, outside any parallel
  /// region (yield_point.hpp); cannot change results. nullptr = none.
  YieldPoint* yield = nullptr;
};

/// Diagnostics for one phase.
struct PhaseStat {
  Index phase = 0;          ///< phase number (1-based)
  Index start_iteration = 0;  ///< virtual iteration count before the phase
  Index length = 0;         ///< iterations batched into this phase
  Real x_norm1 = 0;         ///< ||x||_1 after the phase
  Index selected = 0;       ///< |B| during the phase
};

struct PhasedResult {
  DecisionOutcome outcome = DecisionOutcome::kPrimal;
  /// Measured-tight dual: x / lambda_max(final Psi), exactly feasible.
  Vector dual_x;
  /// Exact lambda_max of the final Psi.
  Real psi_lambda_max = 0;
  /// True when lambda_max exceeded the Lemma 3.2 bound (1+10 eps) K at exit
  /// -- possible in principle because selections act on stale penalties.
  bool spectrum_bound_exceeded = false;
  Matrix primal_y;      ///< running average of P (trace 1)
  Vector primal_dots;   ///< A_i . Y for the returned average
  Real primal_trace = 0;
  Index iterations = 0;    ///< virtual iterations (comparable to Alg 3.1's t)
  Index phases = 0;        ///< = number of matrix exponentials computed
  AlgorithmConstants constants;
  std::vector<PhaseStat> phase_stats;
};

/// Solve the eps-decision problem with the phased schedule (dense path).
PhasedResult decision_phased(const PackingInstance& instance,
                             const PhasedOptions& options = {});

struct FactorizedPhasedOptions : PhasedOptions {
  /// Accuracy of the per-phase exp-dot batch (0 = auto, eps/2).
  Real dot_eps = 0;
  /// Sketch/Taylor knobs forwarded to bigDotExp; the seed advances per
  /// phase so sketch noise is independent across phases.
  BigDotExpOptions dot_options;
  /// Caller-owned scratch shared across phases/solves (results unaffected);
  /// nullptr = oracle-private workspace.
  SolverWorkspace* workspace = nullptr;
};

/// Phased schedule over prefactored input: one bigDotExp batch per phase
/// instead of per iteration, which multiplies the Theorem 4.1 path's
/// throughput by the mean phase length. The dual is rescaled by a
/// certified Lanczos upper bound on lambda_max(Psi) (as in
/// decision_factorized); primal_y stays empty (never forms an m x m
/// matrix), with the certificate values in primal_dots. Note the primal
/// dots inherit the sketch's (1 +- dot_eps) noise, so the early primal
/// exit certifies against 1 + dot_eps rather than 1.
PhasedResult decision_phased(const FactorizedPackingInstance& instance,
                             const FactorizedPhasedOptions& options = {});

}  // namespace psdp::core
