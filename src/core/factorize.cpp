#include "core/factorize.hpp"

#include <cmath>

#include "linalg/matfunc.hpp"
#include "linalg/pivoted_cholesky.hpp"
#include "par/parallel.hpp"
#include "util/common.hpp"

namespace psdp::core {

namespace {

using sparse::Csr;
using sparse::FactorizedPsd;

/// Factor one dense PSD matrix into a tall-skinny dense factor; returns the
/// relative residual trace alongside.
Matrix factor_one(const Matrix& a, const FactorizeOptions& options,
                  Real* residual_rel) {
  const Real tr = linalg::trace(a);
  if (options.method == FactorizeOptions::Method::kPivotedCholesky) {
    linalg::PivotedCholeskyOptions pc;
    pc.rel_tol = options.rel_tol;
    const linalg::PivotedCholeskyResult f = linalg::pivoted_cholesky(a, pc);
    *residual_rel = tr > 0 ? f.residual_trace / tr : 0;
    return f.l;
  }
  // Eigendecomposition engine: Q = V sqrt(lambda) on the numerical rank.
  const linalg::EigResult eig = linalg::jacobi_eig(a);
  const Index m = a.rows();
  const Real lmax = eig.eigenvalues.size() > 0 ? eig.eigenvalues[0] : 0;
  PSDP_NUMERIC_CHECK(
      eig.eigenvalues.size() == 0 ||
          eig.eigenvalues[m - 1] >= -1e-10 * std::max<Real>(1, lmax),
      "factorize: constraint has a significantly negative eigenvalue");
  // Keep eigenvalues above the relative-trace budget: dropping all
  // eigenvalues below rel_tol * Tr / m keeps the dropped sum below
  // rel_tol * Tr.
  const Real cutoff = options.rel_tol * tr / std::max<Real>(1, static_cast<Real>(m));
  Index rank = 0;
  Real dropped = 0;
  for (Index j = 0; j < m; ++j) {
    if (eig.eigenvalues[j] > cutoff) {
      ++rank;
    } else {
      dropped += std::max<Real>(eig.eigenvalues[j], 0);
    }
  }
  *residual_rel = tr > 0 ? dropped / tr : 0;
  if (rank == 0) return Matrix(m, 1);
  Matrix q(m, rank);
  for (Index j = 0; j < rank; ++j) {
    const Real s = std::sqrt(eig.eigenvalues[j]);
    for (Index i = 0; i < m; ++i) q(i, j) = s * eig.eigenvectors(i, j);
  }
  return q;
}

/// Dense factor -> sparse CSR factor with the relative drop tolerance.
Csr to_sparse_factor(const Matrix& q, Real drop_tol) {
  const Real threshold =
      drop_tol > 0 ? drop_tol * linalg::frobenius_norm(q) : 0;
  return Csr::from_dense(q, threshold);
}

}  // namespace

FactorizedPackingInstance factorize(const PackingInstance& instance,
                                    const FactorizeOptions& options,
                                    FactorizeReport* report) {
  PSDP_CHECK(options.rel_tol >= 0 && options.drop_tol >= 0,
             "factorize: tolerances must be non-negative");
  const Index n = instance.size();
  PSDP_CHECK(n >= 1, "factorize: empty instance");

  std::vector<Matrix> factors(static_cast<std::size_t>(n));
  std::vector<Real> residuals(static_cast<std::size_t>(n), 0);
  // Constraints factor independently; this is the parallel QR preprocessing
  // step of the paper's cost discussion.
  par::parallel_for(0, n, [&](Index i) {
    factors[static_cast<std::size_t>(i)] = factor_one(
        instance[i], options, &residuals[static_cast<std::size_t>(i)]);
  }, /*grain=*/1);

  FactorizeReport local;
  std::vector<FactorizedPsd> items;
  items.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    Csr q = to_sparse_factor(factors[static_cast<std::size_t>(i)],
                             options.drop_tol);
    local.max_rank = std::max(local.max_rank, q.cols());
    local.max_residual_rel =
        std::max(local.max_residual_rel, residuals[static_cast<std::size_t>(i)]);
    items.emplace_back(std::move(q));
  }
  FactorizedPackingInstance result{sparse::FactorizedSet(std::move(items))};
  local.total_nnz = result.total_nnz();
  if (report != nullptr) *report = local;
  return result;
}

FactorizedNormalization factorize_covering(const CoveringProblem& problem,
                                           const FactorizeOptions& options,
                                           Real rank_tol) {
  problem.validate(/*check_psd=*/true);
  FactorizedNormalization result;
  result.c_inv_sqrt = linalg::inv_sqrt_psd(problem.objective, rank_tol);

  // Support projector, as in core::normalize(): constraints with mass
  // outside range(C) violate the paper's Appendix-A assumption.
  const Matrix support =
      linalg::gemm(linalg::sqrt_psd(problem.objective, rank_tol),
                   result.c_inv_sqrt);

  std::vector<FactorizedPsd> items;
  for (Index i = 0; i < problem.size(); ++i) {
    if (problem.rhs[i] == 0) continue;
    const Matrix& a = problem.constraints[static_cast<std::size_t>(i)];
    const Matrix projected = linalg::gemm(support, linalg::gemm(a, support));
    const Real fro = linalg::frobenius_norm(a);
    PSDP_CHECK(
        linalg::max_abs_diff(projected, a) <= 1e-6 * std::max(fro, Real{1}),
        str("factorize_covering: constraint ", i,
            " is not supported on the objective C (Appendix A assumption)"));

    Real residual_rel = 0;
    Matrix q = factor_one(a, options, &residual_rel);
    result.report.max_residual_rel =
        std::max(result.report.max_residual_rel, residual_rel);
    // B_i factor: C^{-1/2} Q_i / sqrt(b_i) (Appendix A's closing remark).
    Matrix scaled = linalg::gemm(result.c_inv_sqrt, q);
    scaled.scale(1 / std::sqrt(problem.rhs[i]));
    Csr sparse_q = to_sparse_factor(scaled, options.drop_tol);
    result.report.max_rank = std::max(result.report.max_rank, sparse_q.cols());
    items.emplace_back(std::move(sparse_q));
    result.kept.push_back(i);
  }
  PSDP_CHECK(!items.empty(),
             "factorize_covering: all constraints dropped (all b_i are zero)");
  result.packing = FactorizedPackingInstance{sparse::FactorizedSet(std::move(items))};
  result.report.total_nnz = result.packing.total_nnz();
  return result;
}

}  // namespace psdp::core
