// approxPSDP (Theorem 1.1): (1+eps)-approximate *optimization* of positive
// SDPs, by reduction to O(log n) calls of the eps-decision problem
// (Lemma 2.2) after the Appendix-A normalization.
//
// Packing side  max 1^T x s.t. sum x_i A_i <= I:
//   * initial bracket: OPT in [1/min_i Tr A_i, m/min_i Tr A_i]
//     (single-coordinate feasibility vs. the trace bound Tr[sum] <= m);
//   * probe at the geometric midpoint v: run decisionPSDP on {v A_i}
//     (after Lemma 2.2 trace-bounding). A dual answer x_hat yields the
//     exactly-feasible x = v x_hat, raising the lower bound to v ||x_hat||_1.
//     A primal answer Y with mu = min_i (v A_i) . Y > 0 proves
//     OPT <= v / mu (weak duality), lowering the upper bound.
//   * the bracket is maintained from *measured* certificate quality, never
//     from the worst-case theory constants, so correctness does not depend
//     on the (astronomically conservative) constant factors; the constants
//     only control how fast probes make progress.
//
// Covering side  min C . Y s.t. A_i . Y >= b_i (the paper's primal 1.1):
//   normalize (B_i = C^{-1/2} A_i C^{-1/2}/b_i), optimize the dual packing
//   program, and turn the best primal certificate Y_z (Tr = 1,
//   B_i . (v Y_z) >= mu) into the feasible covering solution
//   Z = (v/mu) Y_z, mapped back through C^{-1/2}. Strong duality (assumed,
//   as in the paper) makes the packing bracket a bracket on the covering
//   optimum too.
#pragma once

#include <functional>
#include <optional>

#include "core/decision.hpp"
#include "core/instance.hpp"
#include "util/tunables.hpp"

namespace psdp::core {

/// Which solver runs each probe of the factorized binary search. All three
/// construct the same SketchedTaylorOracle from the same config, so the
/// dot_eps / dot_options / dot_block_size knobs are honored uniformly.
enum class ProbeSolver {
  kDecision,  ///< plain per-iteration Algorithm 3.1 (the default)
  kPhased,    ///< one bigDotExp batch per phase (fewer oracle calls)
  kBucketed,  ///< slack-bucketed steps with measured safety rescalings
};

struct OptimizeOptions {
  /// Target relative accuracy of the returned bracket.
  Real eps = 0.1;
  /// eps handed to each decision call; 0 = auto (eps/4). The bracket stays
  /// correct for any value; smaller is slower per probe but shrinks the
  /// bracket in fewer probes.
  Real decision_eps = 0;
  /// Probe budget (a safety net; the search stops at bracket ratio 1+eps).
  Index max_probes = 60;
  /// Apply the Lemma 2.2 trace-bounding preprocessing per probe.
  bool trace_bound = true;
  /// Panel width for the factorized path's blocked bigDotExp kernels,
  /// applied to every probe regardless of `probe_solver` (the knob routes
  /// through the shared oracle config); 0 keeps
  /// `decision.dot_options.block_size` (whose 0 means auto). See
  /// BigDotExpOptions::block_size. Defaulted from the tunable registry
  /// (`dot_block_size`, default 0).
  Index dot_block_size = util::tunable_dot_block_size();
  /// Solver variant used for factorized probes (the dense path always runs
  /// the plain decision solver).
  ProbeSolver probe_solver = ProbeSolver::kDecision;
  /// Forwarded to every decision call (trajectory tracking, overrides...).
  DecisionOptions decision;
};

/// Result of packing optimization.
struct PackingOptimum {
  Real lower = 0;  ///< value of `best_x`, a certified lower bound on OPT
  Real upper = 0;  ///< certified upper bound on OPT
  Vector best_x;   ///< exactly-feasible dual solution attaining `lower`
  /// Best primal certificate found: Y (trace 1) for the probe scale
  /// `primal_scale`, with min_i (scale A_i) . Y = `primal_min_dot`.
  /// Dense-path only (factorized keeps dots, not Y).
  Matrix primal_y;
  Real primal_scale = 0;
  Real primal_min_dot = 0;
  Index decision_calls = 0;
  Index total_iterations = 0;  ///< decision iterations summed over probes
};

/// (1+eps)-approximate packing optimum, dense path.
PackingOptimum approx_packing(const PackingInstance& instance,
                              const OptimizeOptions& options = {});

/// (1+eps)-approximate packing optimum, factorized nearly-linear-work path.
PackingOptimum approx_packing(const FactorizedPackingInstance& instance,
                              const OptimizeOptions& options = {});

/// Result of covering optimization (the paper's form 1.1).
struct CoveringOptimum {
  Matrix y;          ///< feasible: A_i . Y >= b_i (up to tol), Y PSD
  Real objective = 0;  ///< C . Y, within (1+eps) of OPT on convergence
  Real lower_bound = 0;  ///< dual certificate: OPT >= lower_bound
  PackingOptimum packing;  ///< the underlying packing search
};

/// (1+eps)-approximate covering optimization via normalization + duality.
CoveringOptimum approx_covering(const CoveringProblem& problem,
                                const OptimizeOptions& options = {});

/// As above, over a pre-normalized problem: the Appendix-A normalization
/// costs an O(m^3) eigensolve of C, so callers solving the same covering
/// problem repeatedly -- the serve layer's ArtifactCache in particular --
/// normalize once and reuse it across every (eps, probe) configuration.
/// approx_covering(problem, options) is exactly
/// approx_covering(normalize(problem), options).
CoveringOptimum approx_covering(const NormalizedProblem& normalized,
                                const OptimizeOptions& options = {});

}  // namespace psdp::core
