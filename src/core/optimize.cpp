#include "core/optimize.hpp"

#include <cmath>

#include "core/bucketed.hpp"
#include "core/phased.hpp"
#include "util/log.hpp"

namespace psdp::core {

namespace {

/// What one decision probe at scale v tells the search.
struct ProbeOutcome {
  DecisionOutcome outcome = DecisionOutcome::kPrimal;
  Real dual_value = 0;  ///< ||x_hat||_1 of the scaled-instance dual
  Vector dual_x;        ///< x_hat, indexed over the FULL instance (zeros for
                        ///< trace-bounded coordinates)
  Matrix primal_y;      ///< scaled-instance primal certificate (dense path)
  Real min_dot = 0;     ///< mu = min_i (v A_i) . Y over surviving i
  Real dropped_value_bound = 0;  ///< max total value of dropped coordinates
  Index iterations = 0;
};

using Oracle = std::function<ProbeOutcome(Real scale)>;

/// Dense-path oracle: scale, trace-bound (Lemma 2.2), decide, map back.
Oracle make_dense_oracle(const PackingInstance& instance,
                         const OptimizeOptions& options,
                         DecisionOptions decision_options) {
  return [&instance, options, decision_options](Real v) {
    const PackingInstance scaled = instance.scaled(v);
    const Index n = instance.size();
    const Index m = instance.dim();

    TraceBoundResult bounded;
    if (options.trace_bound) {
      bounded = bound_traces(scaled);
    } else {
      bounded.instance = scaled;
      bounded.kept.resize(static_cast<std::size_t>(n));
      for (Index i = 0; i < n; ++i) bounded.kept[static_cast<std::size_t>(i)] = i;
    }

    const DecisionResult r = decision_dense(bounded.instance, decision_options);

    ProbeOutcome probe;
    probe.outcome = r.outcome;
    probe.iterations = r.iterations;
    probe.dual_x = Vector(n);
    for (Index j = 0; j < bounded.instance.size(); ++j) {
      // The measured-tight dual (exactly feasible, much larger than the
      // worst-case rescaling) is what makes the bracket converge.
      probe.dual_x[bounded.kept[static_cast<std::size_t>(j)]] =
          r.dual_x_tight[j];
    }
    probe.dual_value = linalg::sum(probe.dual_x);
    probe.primal_y = r.primal_y;
    probe.min_dot = std::numeric_limits<Real>::infinity();
    for (Index j = 0; j < r.primal_dots.size(); ++j) {
      probe.min_dot = std::min(probe.min_dot, r.primal_dots[j]);
    }
    // A dropped coordinate i can contribute at most 1/lambda_max(v A_i)
    // <= m/(v Tr A_i) to any feasible objective.
    if (bounded.dropped > 0) {
      std::vector<bool> kept(static_cast<std::size_t>(n), false);
      for (Index j : bounded.kept) kept[static_cast<std::size_t>(j)] = true;
      for (Index i = 0; i < n; ++i) {
        if (!kept[static_cast<std::size_t>(i)]) {
          probe.dropped_value_bound +=
              static_cast<Real>(m) / (v * instance.constraint_trace(i));
        }
      }
    }
    return probe;
  };
}

/// Copy the probe knobs every factorized schedule variant shares (the
/// oracle config plus the loop limits) from DecisionOptions into its
/// options struct, so a knob added to the probe config cannot silently
/// be decision-only again.
template <typename Options>
Options probe_schedule_options(const DecisionOptions& decision) {
  Options options;
  options.eps = decision.eps;
  options.max_iterations_override = decision.max_iterations_override;
  options.early_primal_exit = decision.early_primal_exit;
  options.dot_eps = decision.dot_eps;
  options.dot_options = decision.dot_options;
  options.workspace = decision.workspace;
  options.yield = decision.yield;
  return options;
}

/// Factorized-path oracle (no dense primal certificate; dots only). The
/// probe solver is selectable; every choice builds its SketchedTaylorOracle
/// from the same DecisionOptions-derived config, so dot_eps/dot_options
/// (including the dot_block_size panel width) are honored uniformly.
Oracle make_factorized_oracle(const FactorizedPackingInstance& instance,
                              ProbeSolver solver,
                              DecisionOptions decision_options) {
  return [&instance, solver, decision_options](Real v) {
    const FactorizedPackingInstance scaled = instance.scaled(v);
    ProbeOutcome probe;
    Vector primal_dots;
    if (solver == ProbeSolver::kPhased) {
      PhasedResult r = decision_phased(
          scaled,
          probe_schedule_options<FactorizedPhasedOptions>(decision_options));
      probe.outcome = r.outcome;
      probe.iterations = r.iterations;
      probe.dual_x = std::move(r.dual_x);  // already measured-tight
      primal_dots = std::move(r.primal_dots);
    } else if (solver == ProbeSolver::kBucketed) {
      BucketedResult r = decision_bucketed(
          scaled,
          probe_schedule_options<FactorizedBucketedOptions>(decision_options));
      probe.outcome = r.outcome;
      probe.iterations = r.iterations;
      probe.dual_x = std::move(r.dual_x);  // already measured-tight
      primal_dots = std::move(r.primal_dots);
    } else {
      DecisionResult r = decision_factorized(scaled, decision_options);
      probe.outcome = r.outcome;
      probe.iterations = r.iterations;
      probe.dual_x = std::move(r.dual_x_tight);
      primal_dots = std::move(r.primal_dots);
    }
    probe.dual_value = linalg::sum(probe.dual_x);
    probe.min_dot = std::numeric_limits<Real>::infinity();
    for (Index j = 0; j < primal_dots.size(); ++j) {
      probe.min_dot = std::min(probe.min_dot, primal_dots[j]);
    }
    return probe;
  };
}

/// The Lemma 2.2 geometric binary search, shared by both paths.
PackingOptimum search(const Oracle& oracle, Real min_trace, Index m,
                      const OptimizeOptions& options) {
  PSDP_CHECK(options.eps > 0 && options.eps < 1,
             "approx_packing: eps must lie in (0,1)");
  PackingOptimum best;
  // Single-coordinate feasibility gives the initial lower bound; the trace
  // inequality Tr[sum x_i A_i] <= m gives the upper bound.
  best.lower = 1 / min_trace;
  best.upper = static_cast<Real>(m) / min_trace;

  Index stalls = 0;
  while (best.upper > best.lower * (1 + options.eps) &&
         best.decision_calls < options.max_probes && stalls < 3) {
    // sqrt(lower) * sqrt(upper), not sqrt(lower * upper): the bracket
    // endpoints are 1/min_trace-scaled, so instances with extreme traces
    // (min Tr A_i ~ 1e-300 puts lower ~ 1e300) overflow the product to inf
    // (or underflow it to 0) even though the midpoint itself is
    // representable.
    const Real v = std::sqrt(best.lower) * std::sqrt(best.upper);
    const ProbeOutcome probe = oracle(v);
    ++best.decision_calls;
    best.total_iterations += probe.iterations;

    bool progressed = false;
    if (probe.outcome == DecisionOutcome::kDual) {
      const Real value = v * probe.dual_value;
      if (value > best.lower * (1 + 1e-12)) {
        best.lower = value;
        best.best_x = probe.dual_x;
        best.best_x.scale(v);
        progressed = true;
      }
    } else {
      PSDP_NUMERIC_CHECK(probe.min_dot > 0,
                         "approx_packing: degenerate primal certificate");
      const Real upper = v / probe.min_dot + probe.dropped_value_bound;
      if (upper < best.upper * (1 - 1e-12)) {
        best.upper = upper;
        progressed = true;
      }
      if (probe.primal_y.rows() > 0 &&
          (best.primal_scale == 0 || upper < best.primal_scale / best.primal_min_dot)) {
        best.primal_y = probe.primal_y;
        best.primal_scale = v;
        best.primal_min_dot = probe.min_dot;
      }
    }
    stalls = progressed ? 0 : stalls + 1;
    PSDP_LOG(kInfo) << "approx_packing probe v=" << v << " -> ["
                    << best.lower << ", " << best.upper << "]";
  }

  // Materialize the initial single-coordinate solution if no probe improved
  // on it (callers expect best_x to certify `lower`).
  if (best.best_x.empty()) {
    best.best_x = Vector(0);  // filled by the caller, which knows argmin
  }
  return best;
}

/// Ensure `best` carries a primal certificate (needed by the covering
/// wrapper); escalates the probe scale slightly until one is found.
void ensure_primal_certificate(PackingOptimum& best, const Oracle& oracle,
                               const OptimizeOptions& options) {
  Real v = best.upper;
  for (int attempt = 0; attempt < 6 && best.primal_scale == 0; ++attempt) {
    const ProbeOutcome probe = oracle(v);
    ++best.decision_calls;
    best.total_iterations += probe.iterations;
    if (probe.outcome == DecisionOutcome::kPrimal &&
        probe.primal_y.rows() > 0) {
      PSDP_NUMERIC_CHECK(probe.min_dot > 0,
                         "ensure_primal: degenerate certificate");
      best.primal_y = probe.primal_y;
      best.primal_scale = v;
      best.primal_min_dot = probe.min_dot;
      best.upper =
          std::min(best.upper, v / probe.min_dot + probe.dropped_value_bound);
    } else {
      // Still dual-feasible this high: the optimum is larger than believed.
      best.lower = std::max(best.lower, v * probe.dual_value);
      v *= (1 + options.eps);
    }
  }
  PSDP_NUMERIC_CHECK(best.primal_scale > 0,
                     "approx_covering: could not obtain a primal certificate");
}

template <typename Inst>
Real min_constraint_trace(const Inst& instance) {
  Real min_trace = instance.constraint_trace(0);
  for (Index i = 1; i < instance.size(); ++i) {
    min_trace = std::min(min_trace, instance.constraint_trace(i));
  }
  return min_trace;
}

template <typename Inst>
void fill_initial_best_x(const Inst& instance, PackingOptimum& best) {
  if (!best.best_x.empty()) return;
  Index argmin = 0;
  for (Index i = 1; i < instance.size(); ++i) {
    if (instance.constraint_trace(i) < instance.constraint_trace(argmin)) {
      argmin = i;
    }
  }
  best.best_x = Vector(instance.size());
  best.best_x[argmin] = 1 / instance.constraint_trace(argmin);
}

DecisionOptions probe_decision_options(const OptimizeOptions& options) {
  DecisionOptions d = options.decision;
  // The probe eps trades per-probe iteration count (~eps^-2 log n on the
  // dual side) against certificate strength. Because the bracket is built
  // from *measured* certificate quality, a floor of 0.03 keeps probes fast
  // without invalidating anything; callers can override via decision_eps.
  d.eps = options.decision_eps > 0
              ? options.decision_eps
              : std::clamp(options.eps / 4, 0.03, 0.25);
  if (options.dot_block_size > 0) {
    d.dot_options.block_size = options.dot_block_size;
  }
  return d;
}

}  // namespace

PackingOptimum approx_packing(const PackingInstance& instance,
                              const OptimizeOptions& options) {
  instance.validate(/*check_psd=*/false);
  const Oracle oracle =
      make_dense_oracle(instance, options, probe_decision_options(options));
  PackingOptimum best =
      search(oracle, min_constraint_trace(instance), instance.dim(), options);
  fill_initial_best_x(instance, best);
  return best;
}

PackingOptimum approx_packing(const FactorizedPackingInstance& instance,
                              const OptimizeOptions& options) {
  const Oracle oracle = make_factorized_oracle(
      instance, options.probe_solver, probe_decision_options(options));
  PackingOptimum best =
      search(oracle, min_constraint_trace(instance), instance.dim(), options);
  fill_initial_best_x(instance, best);
  return best;
}

CoveringOptimum approx_covering(const CoveringProblem& problem,
                                const OptimizeOptions& options) {
  return approx_covering(normalize(problem), options);
}

CoveringOptimum approx_covering(const NormalizedProblem& normalized,
                                const OptimizeOptions& options) {
  const Oracle oracle = make_dense_oracle(normalized.packing, options,
                                          probe_decision_options(options));
  PackingOptimum packing = search(
      oracle, min_constraint_trace(normalized.packing),
      normalized.packing.dim(), options);
  fill_initial_best_x(normalized.packing, packing);
  ensure_primal_certificate(packing, oracle, options);

  CoveringOptimum result;
  // Z = (v / mu) Y: B_i . Z >= 1 for all i, Tr Z = (v/mu) Tr Y.
  Matrix z = packing.primal_y;
  z.scale(packing.primal_scale / packing.primal_min_dot);
  // The probe may have trace-bounded away some coordinates; re-verify the
  // full constraint set and rescale up if any is (slightly) uncovered.
  Real full_min = std::numeric_limits<Real>::infinity();
  for (Index i = 0; i < normalized.packing.size(); ++i) {
    full_min = std::min(full_min,
                        linalg::frobenius_dot(normalized.packing[i], z));
  }
  PSDP_NUMERIC_CHECK(full_min > 0, "approx_covering: certificate degenerate");
  if (full_min < 1) z.scale(1 / full_min);
  result.objective = linalg::trace(z);
  result.y = denormalize_primal(normalized, z);
  result.lower_bound = packing.lower;
  result.packing = std::move(packing);
  return result;
}

}  // namespace psdp::core
