// Problem types for positive semidefinite programming.
//
// The library works with three representations:
//
//  * CoveringProblem -- the paper's primal standard form (1.1):
//        min C . Y   s.t.  A_i . Y >= b_i,  Y >= 0
//    with C, A_i symmetric PSD and b_i >= 0.
//
//  * PackingInstance -- the normalized dual form of Figure 2:
//        max 1^T x   s.t.  sum_i x_i A_i <= I,  x >= 0
//    stored as dense symmetric PSD matrices. This is what decisionPSDP
//    consumes after the Appendix-A normalization.
//
//  * FactorizedPackingInstance -- the same packing program with each
//    A_i = Q_i Q_i^T given prefactored (Theorem 4.1 / Corollary 1.2 input
//    format); the nearly-linear-work solver path.
//
// normalize() implements Appendix A: B_i = C^{-1/2} A_i C^{-1/2} / b_i,
// which turns (1.1) into the normalized pair without changing the optimum.
// bound_traces() implements the Lemma 2.2 preprocessing that caps
// Tr[A_i] <= O(n^3) by dropping negligible coordinates.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "sparse/factorized.hpp"
#include "sparse/sharded.hpp"

namespace psdp::core {

using linalg::Matrix;
using linalg::Vector;

/// Normalized packing instance over dense symmetric PSD matrices.
class PackingInstance {
 public:
  PackingInstance() = default;
  explicit PackingInstance(std::vector<Matrix> constraints);

  Index size() const { return static_cast<Index>(constraints_.size()); }
  Index dim() const { return dim_; }

  const Matrix& operator[](Index i) const;
  const std::vector<Matrix>& constraints() const { return constraints_; }

  /// Tr[A_i], cached at construction (the starting point x_i = 1/(n Tr A_i)
  /// and the Lemma 2.2 preprocessing both need it).
  Real constraint_trace(Index i) const;

  /// Returns a copy with every constraint scaled by s (the binary-search
  /// probe "is OPT >= 1/s").
  PackingInstance scaled(Real s) const;

  /// Throws InvalidArgument unless every constraint is symmetric, finite and
  /// (if check_psd) positive semidefinite, and no constraint is zero.
  void validate(bool check_psd = true) const;

 private:
  std::vector<Matrix> constraints_;
  std::vector<Real> traces_;
  Index dim_ = 0;
};

/// Normalized packing instance in factorized form. Always carries a shard
/// partition of its constraints (sparse::ShardedFactorizedSet); the
/// single-shard default is the unsharded legacy path, bit-identical to the
/// pre-sharding library. Solvers reach the sharding through the oracle
/// seam -- SketchedTaylorOracle reads sharded() and engages the per-shard
/// deterministic sweeps when shard_count() > 1.
class FactorizedPackingInstance {
 public:
  FactorizedPackingInstance() = default;
  /// Single-shard wrap (the legacy constructor every existing call site
  /// uses; nothing about the set changes).
  explicit FactorizedPackingInstance(sparse::FactorizedSet constraints);
  /// Partition into `shards` nnz-balanced constraint shards (see
  /// ShardedFactorizedSet; shards > 1 forces transpose indexes under
  /// `plan_options` for the determinism contract).
  FactorizedPackingInstance(sparse::FactorizedSet constraints, Index shards,
                            const sparse::TransposePlanOptions& plan_options = {});
  /// Adopt an already-partitioned set (the chunked loader's path).
  explicit FactorizedPackingInstance(sparse::ShardedFactorizedSet constraints);

  Index size() const { return sharded_.size(); }
  Index dim() const { return sharded_.dim(); }
  Index total_nnz() const { return sharded_.total_nnz(); }

  const sparse::FactorizedSet& set() const { return sharded_.set(); }
  const sparse::ShardedFactorizedSet& sharded() const { return sharded_; }
  Index shard_count() const { return sharded_.shard_count(); }
  const sparse::FactorizedPsd& operator[](Index i) const {
    return sharded_[i];
  }

  Real constraint_trace(Index i) const;

  /// Copy with every A_i scaled by s (factors scaled by sqrt(s)); s >= 0.
  /// Shard boundaries travel with the copy.
  FactorizedPackingInstance scaled(Real s) const;

  /// Densify (small instances / tests).
  PackingInstance to_dense() const;

 private:
  sparse::ShardedFactorizedSet sharded_;
  std::vector<Real> traces_;
};

/// The paper's primal standard form (1.1).
struct CoveringProblem {
  Matrix objective;                 ///< C (symmetric PSD)
  std::vector<Matrix> constraints;  ///< A_i (symmetric PSD)
  Vector rhs;                       ///< b_i >= 0

  Index size() const { return static_cast<Index>(constraints.size()); }
  Index dim() const { return objective.rows(); }

  /// Structural validation (dimensions, symmetry, b >= 0, optional PSD).
  void validate(bool check_psd = true) const;
};

/// Result of the Appendix-A normalization.
struct NormalizedProblem {
  PackingInstance packing;  ///< B_i = C^{-1/2} A_i C^{-1/2} / b_i
  Matrix c_inv_sqrt;        ///< C^{-1/2} (pseudo-inverse on the support of C)
  std::vector<Index> kept;  ///< original constraint index per packing index
};

/// Appendix A: dividing through by C. Constraints with b_i = 0 are dropped
/// (they are satisfied by any Y >= 0); constraints not supported on C make
/// the primal infeasible in an inessential way and are rejected per the
/// paper's w.l.o.g. assumption (their dual variable would be 0).
NormalizedProblem normalize(const CoveringProblem& problem,
                            Real rank_tol = 1e-10);

/// Map a normalized-primal solution Z back to the original problem:
/// Y = C^{-1/2} Z C^{-1/2} (so C . Y = Tr Z and A_i . Y = b_i (B_i . Z)).
Matrix denormalize_primal(const NormalizedProblem& normalized, const Matrix& z);

/// Result of the Lemma 2.2 trace-bounding preprocessing.
struct TraceBoundResult {
  PackingInstance instance;  ///< surviving constraints
  std::vector<Index> kept;   ///< original index per surviving constraint
  Index dropped = 0;
};

/// Lemma 2.2: in a decision instance with threshold 1, coordinates with
/// Tr[A_i] >= n^3 * min_trace can contribute at most an eps fraction to the
/// optimum; dropping them changes the answer by o(eps). `cap_factor`
/// defaults to the paper's n^3.
TraceBoundResult bound_traces(const PackingInstance& instance,
                              Real cap_factor = -1);

}  // namespace psdp::core
