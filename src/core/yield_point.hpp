// Cooperative check-in points at oracle-round boundaries.
//
// Every solver variant's round loop is a sequence of oracle evaluations
// separated by cheap coordinate updates; between rounds the solver holds no
// locks and is inside no parallel region, which makes the round boundary
// the one safe place for a scheduler to borrow the thread. A caller that
// wants that control installs a YieldPoint through the solver options
// (DecisionOptions::yield and the schedule variants' copies); the loop
// calls check() once per round.
//
// check() may do anything that returns control to the solver with the
// process-global par configuration intact: run a different job to
// completion on this thread (cooperative preemption), or flip the
// thread-local par::regions_inlined() flag so subsequent rounds run their
// parallel regions at full pool width (dynamic lane widening). It must NOT
// change par::num_threads() -- loop partitioning (and therefore every
// solver's bit pattern) depends on it.
//
// Determinism: a yield reorders which *job* runs when, never the bits a
// job computes. The parked solve's state lives in its own SolverState /
// SolverWorkspace on this thread's stack; when check() returns, the round
// loop continues exactly where it left off.
#pragma once

namespace psdp::core {

class YieldPoint {
 public:
  virtual ~YieldPoint() = default;

  /// Called once per oracle round, outside any parallel region. May run
  /// other work on the calling thread before returning; must leave
  /// par::num_threads() unchanged.
  virtual void check() = 0;
};

}  // namespace psdp::core
