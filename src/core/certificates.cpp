#include "core/certificates.hpp"

#include "linalg/eig.hpp"
#include "linalg/vector.hpp"

namespace psdp::core {

namespace {

/// Shared body: lambda_max of sum x_i A_i given a dense accumulation.
DualCheck finish_dual(const Matrix& psi, const Vector& x, Real tol) {
  DualCheck check;
  check.value = linalg::sum(x);
  check.lambda_max = linalg::lambda_max_exact(psi);
  check.feasible =
      linalg::is_nonnegative(x) && check.lambda_max <= 1 + tol;
  return check;
}

}  // namespace

DualCheck check_dual(const PackingInstance& instance, const Vector& x,
                     Real tol) {
  PSDP_CHECK(x.size() == instance.size(), "check_dual: x length mismatch");
  Matrix psi(instance.dim(), instance.dim());
  for (Index i = 0; i < instance.size(); ++i) {
    if (x[i] != 0) psi.add_scaled(instance[i], x[i]);
  }
  return finish_dual(psi, x, tol);
}

DualCheck check_dual(const FactorizedPackingInstance& instance,
                     const Vector& x, Real tol) {
  PSDP_CHECK(x.size() == instance.size(), "check_dual: x length mismatch");
  Matrix psi(instance.dim(), instance.dim());
  for (Index i = 0; i < instance.size(); ++i) {
    if (x[i] != 0) psi.add_scaled(instance[i].to_dense(), x[i]);
  }
  return finish_dual(psi, x, tol);
}

PrimalCheck check_primal(const PackingInstance& instance, const Matrix& y,
                         Real tol) {
  PSDP_CHECK(y.rows() == instance.dim() && y.cols() == instance.dim(),
             "check_primal: Y dimension mismatch");
  PrimalCheck check;
  check.trace = linalg::trace(y);
  check.min_dot = std::numeric_limits<Real>::infinity();
  for (Index i = 0; i < instance.size(); ++i) {
    const Real d = linalg::frobenius_dot(instance[i], y);
    if (d < check.min_dot) {
      check.min_dot = d;
      check.argmin = i;
    }
  }
  const bool psd = [&] {
    const auto eig = linalg::jacobi_eig(y);
    return eig.eigenvalues[y.rows() - 1] >= -tol;
  }();
  check.feasible = psd && approx_equal(check.trace, 1, tol) &&
                   check.min_dot >= 1 - tol;
  return check;
}

Real duality_product(const PackingInstance& instance, const Vector& x,
                     const Matrix& y) {
  Real min_dot = std::numeric_limits<Real>::infinity();
  for (Index i = 0; i < instance.size(); ++i) {
    min_dot = std::min(min_dot, linalg::frobenius_dot(instance[i], y));
  }
  return linalg::sum(x) * min_dot;
}

}  // namespace psdp::core
