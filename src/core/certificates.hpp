// Independent verification of the ε-decision problem's certificates.
//
// The solvers return either
//   * a dual (packing) solution x with ||x||_1 >= 1 - eps and
//     sum_i x_i A_i <= I, or
//   * a primal (covering) certificate Y with Tr Y = 1 and A_i . Y >= 1.
//
// These checkers recompute feasibility from scratch (exact eigensolver, no
// sketching), so tests can validate solver outputs without trusting any of
// the solver's internal quantities.
#pragma once

#include "core/instance.hpp"

namespace psdp::core {

/// Verification of a dual packing vector.
struct DualCheck {
  bool feasible = false;  ///< x >= 0 and lambda_max(sum x_i A_i) <= 1 + tol
  Real value = 0;         ///< 1^T x
  Real lambda_max = 0;    ///< lambda_max(sum_i x_i A_i)
};

DualCheck check_dual(const PackingInstance& instance, const Vector& x,
                     Real tol = 1e-8);
DualCheck check_dual(const FactorizedPackingInstance& instance,
                     const Vector& x, Real tol = 1e-8);

/// Verification of a primal covering certificate.
struct PrimalCheck {
  bool feasible = false;  ///< PSD, Tr = 1 (+-tol), min_i A_i . Y >= 1 - tol
  Real trace = 0;
  Real min_dot = 0;  ///< min_i A_i . Y
  Index argmin = -1;
};

PrimalCheck check_primal(const PackingInstance& instance, const Matrix& y,
                         Real tol = 1e-6);

/// Weak-duality audit for the *same* packing instance: every dual-feasible
/// x and primal-feasible Y satisfy 1^T x <= max(1, 1/min_i A_i.Y) -- used by
/// property tests to confirm the two certificates cannot both be "strong".
/// Returns 1^T x * min_i(A_i . Y); values > 1 + tol indicate a bug.
Real duality_product(const PackingInstance& instance, const Vector& x,
                     const Matrix& y);

}  // namespace psdp::core
