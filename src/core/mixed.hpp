// Mixed packing/covering positive SDPs -- the extension the paper's
// Section 5 names as the natural next step, and the class Jain-Yao [JY12]
// concurrently studied: matrix *packing* constraints plus *diagonal*
// covering constraints (diagonal covering matrices are equivalent to
// pointwise scalar constraints, so the covering side is a positive LP):
//
//     find x >= 0 with   sum_i x_i A_i <= I          (matrix packing)
//                        sum_i x_i d_{ij} >= 1  for all j   (covering)
//
// where A_i are PSD and d_i in R^l are non-negative vectors (the diagonals
// of the covering matrices D_i).
//
// Algorithm: the natural marriage of Algorithm 3.1 with Young's mixed
// packing/covering update [You01]. The packing side keeps the matrix
// MMW penalty P = exp(Psi)/Tr[exp(Psi)]; the covering side keeps scalar
// weights q_j proportional to exp(-kappa * c_j) where c_j = sum_i x_i d_ij
// is the running coverage. A coordinate is incremented when its packing
// penalty is at most (1 + eps) times its (normalized) covering benefit:
//
//     B(t) = { i :  P . A_i  <=  (1 + eps) * <q, d_i> / ||q||_1 }
//
// and every i in B(t) grows by the width-independent step x_i *= 1 + alpha.
// The loop stops when every coordinate is covered to C = (1 + ln l)/eps
// (then x/C is the answer after rescaling by the measured packing norm) or
// the iteration budget R is exhausted (reported as infeasible-at-eps).
//
// Status: this module is an *extension beyond the paper* -- there is no
// worst-case analysis here. Every returned solution carries measured
// certificates (exact lambda_max of the packing sum, exact minimum
// coverage), so callers never rely on the heuristic's optimism; tests plant
// feasible solutions and verify recovery.
#pragma once

#include <vector>

#include "core/decision.hpp"

namespace psdp::core {

/// A mixed instance: packing matrices plus covering vectors, index-aligned
/// (coordinate i has packing matrix A_i and covering vector d_i).
struct MixedInstance {
  PackingInstance packing;          ///< the A_i
  std::vector<Vector> covering;     ///< the d_i, each of length l

  Index size() const { return packing.size(); }
  Index covering_dim() const {
    return covering.empty() ? 0 : covering.front().size();
  }

  /// Structural validation: aligned sizes, non-negative covering entries,
  /// every covering coordinate reachable by some d_i.
  void validate() const;
};

/// The same mixed program with the packing side prefactored
/// (A_i = Q_i Q_i^T): the input format that lets the packing penalties run
/// on the sketched bigDotExp oracle instead of the dense O(m^3)
/// eigendecomposition, so mixed instances scale beyond tiny m.
struct MixedFactorizedInstance {
  FactorizedPackingInstance packing;  ///< the A_i, prefactored
  std::vector<Vector> covering;       ///< the d_i, each of length l

  Index size() const { return packing.size(); }
  Index covering_dim() const {
    return covering.empty() ? 0 : covering.front().size();
  }

  void validate() const;
};

struct MixedOptions {
  Real eps = 0.1;
  Index max_iterations_override = 0;  ///< 0 = the R-style budget
  /// Cooperative check-in invoked once per round, outside any parallel
  /// region (yield_point.hpp); cannot change results. nullptr = none.
  YieldPoint* yield = nullptr;
};

struct MixedFactorizedOptions : MixedOptions {
  /// Accuracy of the sketched packing-penalty estimates (0 = auto, eps/2).
  Real dot_eps = 0;
  /// Sketch/Taylor/blocking knobs forwarded to the oracle.
  BigDotExpOptions dot_options;
  /// Caller-owned scratch shared across iterations/solves (results
  /// unaffected); nullptr = oracle-private workspace.
  SolverWorkspace* workspace = nullptr;
};

enum class MixedOutcome {
  kFeasible,    ///< x returned with measured certificates
  kExhausted,   ///< budget exhausted before full coverage (likely infeasible
                ///< at this eps, or eps too coarse)
};

struct MixedResult {
  MixedOutcome outcome = MixedOutcome::kExhausted;
  /// The solution, already rescaled so that the *measured*
  /// lambda_max(sum x_i A_i) <= 1 exactly.
  Vector x;
  Real packing_lambda_max = 0;  ///< measured, after rescaling (<= 1)
  Real min_coverage = 0;        ///< measured min_j sum_i x_i d_ij after rescaling
  Index iterations = 0;
};

/// Solve the mixed feasibility problem. On kFeasible, `x` satisfies the
/// packing side exactly and min_coverage >= 1 - eps (a measured, not
/// worst-case, threshold); a planted-feasible instance with slack is
/// recovered reliably (see tests).
MixedResult solve_mixed(const MixedInstance& instance,
                        const MixedOptions& options = {});

/// Factorized path: packing penalties from the sketched bigDotExp oracle
/// (nearly-linear work, never forms an m x m matrix); the final packing
/// rescale divides by a certified Lanczos upper bound on lambda_max, so
/// the returned x is feasible by construction and min_coverage is still
/// measured exactly.
MixedResult solve_mixed(const MixedFactorizedInstance& instance,
                        const MixedFactorizedOptions& options = {});

}  // namespace psdp::core
