#include "core/phased.hpp"

#include <cmath>

#include "core/penalty_oracle.hpp"
#include "core/solver_engine.hpp"
#include "util/log.hpp"

namespace psdp::core {

namespace {

/// The phase schedule over any oracle. One oracle evaluation per phase;
/// while the penalties are held fixed the selected set B is fixed too, so j
/// consecutive iterations multiply the selected coordinates by (1+alpha)^j
/// in closed form. The primal is certified against (1 + noise_bound) * t:
/// a phase replays one noisy batch j times (correlated noise), so the
/// inflated threshold is what keeps sketch noise from faking a certificate
/// (exact oracles report noise 0 and the threshold reduces to the paper's;
/// see SolverState::primal_certified for the margin's noise model).
/// `dense_primal` materializes the averaged weight matrix as primal_y.
PhasedResult run_phased_loop(PenaltyOracle& oracle,
                             const PhasedOptions& options,
                             bool dense_primal) {
  const Index n = oracle.size();
  const Real eps = options.eps;
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Real phase_growth =
      options.phase_growth > 0 ? options.phase_growth : eps;
  PSDP_CHECK(phase_growth > 0, "decision_phased: phase_growth must be > 0");
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;
  // Matching SolverState::primal_certified (see there for why the
  // production margin is 1 + noise rather than the adversarial two-sided
  // ratio bound (1+noise)/(1-noise); options.two_sided_margin switches the
  // adversarial bound back on as the measured counterfactual behind
  // docs/noisy_oracle_margin.md).
  const Real raw_noise = oracle.noise_bound();
  const Real noise = options.two_sided_margin && raw_noise < 1
                         ? (1 + raw_noise) / (1 - raw_noise) - 1
                         : raw_noise;
  const Real primal_threshold = 1 + noise;

  SolverState state = initial_state(oracle, "decision_phased");

  PhasedResult result;
  result.constants = c;

  Matrix y_sum;
  PenaltyBatch batch;
  std::vector<bool> selected(static_cast<std::size_t>(n), false);

  while (state.x_norm1 <= c.k_cap && state.t < r_limit &&
         !(options.early_primal_exit && state.primal_certified(noise))) {
    // Phase boundary: no locks held, no parallel region open -- the one
    // safe place to lend the thread out (see yield_point.hpp).
    if (options.yield != nullptr) options.yield->check();
    // --- Phase start: the one oracle evaluation. ---
    ++result.phases;
    oracle.compute(state.x, static_cast<std::uint64_t>(result.phases), batch);
    const Real tr_w = batch.trace;
    PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                       "decision_phased: Tr[W] not positive finite");

    const Real threshold = (1 + eps) * tr_w;
    Real selected_mass = 0;  // sum of x_i over B
    Index selected_count = 0;
    bool all_rates_cover = true;  // every dots_i/tr_w >= primal_threshold?
    for (Index i = 0; i < n; ++i) {
      const bool in_b = batch.dots[i] <= threshold;
      selected[static_cast<std::size_t>(i)] = in_b;
      if (in_b) {
        selected_mass += state.x[i];
        ++selected_count;
      }
      if (batch.dots[i] / tr_w < primal_threshold) all_rates_cover = false;
    }

    // --- Phase length: the smallest of the stopping causes. ---
    const Real rest_mass = state.x_norm1 - selected_mass;

    // (a) dual exit: rest + selected * (1+alpha)^j > K.
    const Index j_dual =
        steps_until_exceeds(selected_mass, c.alpha, c.k_cap - rest_mass);
    // (b) phase budget: ||x||_1 exceeds (1+phase_growth) * phase-start value.
    const Index j_phase = steps_until_exceeds(
        selected_mass, c.alpha,
        (1 + phase_growth) * state.x_norm1 - rest_mass);
    // (c) global budget.
    const Index j_r = r_limit - state.t;
    // (d) primal certification: min_i (sums_i + j * rate_i) >=
    //     primal_threshold * (t + j). Each constraint with rate_i >=
    //     primal_threshold is satisfied after j >=
    //     deficit_i/(rate_i - primal_threshold); one below the threshold
    //     never is.
    Index j_primal = kNoLimit;
    if (options.early_primal_exit && all_rates_cover) {
      Real worst = 0;
      for (Index i = 0; i < n; ++i) {
        const Real rate = batch.dots[i] / tr_w;
        const Real deficit =
            primal_threshold * static_cast<Real>(state.t) -
            state.primal_dots[i];
        if (deficit <= 0) continue;
        if (rate <= primal_threshold) {
          // rate at the threshold with a deficit: certification cannot come
          // from this constraint within any finite j of this phase.
          worst = static_cast<Real>(kNoLimit);
          break;
        }
        worst = std::max(worst, deficit / (rate - primal_threshold));
      }
      j_primal = worst >= static_cast<Real>(kNoLimit)
                     ? kNoLimit
                     : static_cast<Index>(std::ceil(worst));
      if (j_primal < 1) j_primal = 1;
    }

    Index j = std::min(std::min(j_dual, j_phase), std::min(j_r, j_primal));
    if (j < 1) j = 1;
    // An empty selection makes x static: the only remaining exits are the
    // primal certificate and R; jump straight to whichever comes first.
    if (selected_count == 0) j = std::min(j_r, j_primal);
    PSDP_ASSERT(j >= 1);

    // --- Batched update: j iterations in closed form. ---
    const Real growth = std::pow(1 + c.alpha, static_cast<Real>(j));
    for (Index i = 0; i < n; ++i) {
      if (!selected[static_cast<std::size_t>(i)]) continue;
      state.x[i] *= growth;
    }
    state.x_norm1 = linalg::sum(state.x);  // exact recompute; avoids drift
    state.min_primal_sum = std::numeric_limits<Real>::infinity();
    for (Index i = 0; i < n; ++i) {
      state.primal_dots[i] += static_cast<Real>(j) * batch.dots[i] / tr_w;
      state.min_primal_sum =
          std::min(state.min_primal_sum, state.primal_dots[i]);
    }
    accumulate_weight(batch, static_cast<Real>(j) / tr_w, y_sum);
    state.t += j;

    PhaseStat stat;
    stat.phase = result.phases;
    stat.start_iteration = state.t - j;
    stat.length = j;
    stat.x_norm1 = state.x_norm1;
    stat.selected = selected_count;
    result.phase_stats.push_back(stat);
    PSDP_LOG(kDebug) << "phase " << result.phases << " len=" << j
                     << " |x|=" << state.x_norm1 << " |B|=" << selected_count;
  }

  finish_schedule(result, std::move(state), c, oracle, std::move(y_sum),
                  dense_primal);
  return result;
}

}  // namespace

PhasedResult decision_phased(const PackingInstance& instance,
                             const PhasedOptions& options) {
  DenseEigOracle oracle(instance);
  return run_phased_loop(oracle, options, /*dense_primal=*/true);
}

PhasedResult decision_phased(const FactorizedPackingInstance& instance,
                             const FactorizedPhasedOptions& options) {
  SketchedOracleOptions oracle_options;
  oracle_options.eps = options.eps;
  oracle_options.dot_eps = options.dot_eps;
  oracle_options.dot_options = options.dot_options;
  oracle_options.workspace = options.workspace;
  oracle_options.kappa_cap =
      algorithm_constants(instance.size(), options.eps).spectrum_bound;
  SketchedTaylorOracle oracle(instance, oracle_options);
  return run_phased_loop(oracle, options, /*dense_primal=*/false);
}

}  // namespace psdp::core
