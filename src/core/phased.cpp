#include "core/phased.hpp"

#include <cmath>
#include <memory>

#include "linalg/eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/tridiag_eig.hpp"
#include "rand/rng.hpp"
#include "util/log.hpp"

namespace psdp::core {

namespace {

constexpr Index kNoLimit = std::numeric_limits<Index>::max() / 4;

/// Smallest j >= 1 with base * (1+alpha)^j > target (growth of the selected
/// mass); kNoLimit when base is zero (nothing selected grows).
Index steps_until_exceeds(Real base, Real alpha, Real target) {
  if (base <= 0) return kNoLimit;
  if (base > target) return 1;
  // j > log(target/base) / log(1+alpha); +1 to strictly exceed.
  const Real j = std::log(target / base) / std::log1p(alpha);
  Index candidate = static_cast<Index>(std::floor(j)) + 1;
  if (candidate < 1) candidate = 1;
  // Guard against floating-point edge: ensure the candidate really crosses.
  while (base * std::pow(1 + alpha, static_cast<Real>(candidate)) <= target) {
    ++candidate;
  }
  return candidate;
}

}  // namespace

PhasedResult decision_phased(const PackingInstance& instance,
                             const PhasedOptions& options) {
  const Index n = instance.size();
  const Index m = instance.dim();
  const Real eps = options.eps;
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Real phase_growth =
      options.phase_growth > 0 ? options.phase_growth : eps;
  PSDP_CHECK(phase_growth > 0, "decision_phased: phase_growth must be > 0");
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;

  // Same starting point as Algorithm 3.1.
  Vector x(n);
  Real x_norm1 = 0;
  for (Index i = 0; i < n; ++i) {
    const Real tr = instance.constraint_trace(i);
    PSDP_CHECK(tr > 0 && std::isfinite(tr),
               str("decision_phased: constraint ", i, " has bad trace ", tr));
    x[i] = 1 / (static_cast<Real>(n) * tr);
    x_norm1 += x[i];
  }

  Matrix psi(m, m);
  for (Index i = 0; i < n; ++i) psi.add_scaled(instance[i], x[i]);

  Matrix y_sum(m, m);
  Vector primal_sums(n);
  Real min_primal_sum = 0;
  Index t = 0;

  PhasedResult result;
  result.constants = c;

  const auto primal_certified = [&]() {
    return t > 0 && min_primal_sum >= static_cast<Real>(t);
  };

  Vector dots(n);
  std::vector<bool> selected(static_cast<std::size_t>(n), false);

  while (x_norm1 <= c.k_cap && t < r_limit &&
         !(options.early_primal_exit && primal_certified())) {
    // --- Phase start: the one matrix exponential. ---
    const linalg::EigResult eig = linalg::sym_eig(psi);
    const Matrix w = linalg::expm_from_eig(eig);
    const Real tr_w = linalg::trace(w);
    PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                       "decision_phased: Tr[W] not positive finite");
    ++result.phases;

    const Real threshold = (1 + eps) * tr_w;
    Real selected_mass = 0;  // sum of x_i over B
    Index selected_count = 0;
    Real min_rate = std::numeric_limits<Real>::infinity();  // min dots_i/tr_w
    bool all_rates_cover = true;  // every dots_i/tr_w >= 1?
    for (Index i = 0; i < n; ++i) {
      dots[i] = linalg::frobenius_dot(instance[i], w);
      const bool in_b = dots[i] <= threshold;
      selected[static_cast<std::size_t>(i)] = in_b;
      if (in_b) {
        selected_mass += x[i];
        ++selected_count;
      }
      const Real rate = dots[i] / tr_w;
      min_rate = std::min(min_rate, rate);
      if (rate < 1) all_rates_cover = false;
    }

    // --- Phase length: the smallest of the stopping causes. ---
    const Real rest_mass = x_norm1 - selected_mass;

    // (a) dual exit: rest + selected * (1+alpha)^j > K.
    const Index j_dual =
        steps_until_exceeds(selected_mass, c.alpha, c.k_cap - rest_mass);
    // (b) phase budget: ||x||_1 exceeds (1+phase_growth) * phase-start value.
    const Index j_phase = steps_until_exceeds(
        selected_mass, c.alpha, (1 + phase_growth) * x_norm1 - rest_mass);
    // (c) global budget.
    const Index j_r = r_limit - t;
    // (d) primal certification: min_i (sums_i + j * rate_i) >= t + j. Each
    //     constraint with rate_i >= 1 is satisfied after
    //     j >= (t - sums_i)/(rate_i - 1); one with rate_i < 1 never is.
    Index j_primal = kNoLimit;
    if (options.early_primal_exit && all_rates_cover) {
      Real worst = 0;
      for (Index i = 0; i < n; ++i) {
        const Real rate = dots[i] / tr_w;
        const Real deficit = static_cast<Real>(t) - primal_sums[i];
        if (deficit <= 0) continue;
        if (rate <= 1) {
          // rate == 1 with a deficit: certification cannot come from this
          // constraint within any finite j of this phase.
          worst = static_cast<Real>(kNoLimit);
          break;
        }
        worst = std::max(worst, deficit / (rate - 1));
      }
      j_primal = worst >= static_cast<Real>(kNoLimit)
                     ? kNoLimit
                     : static_cast<Index>(std::ceil(worst));
      if (j_primal < 1) j_primal = 1;
    }

    Index j = std::min(std::min(j_dual, j_phase), std::min(j_r, j_primal));
    if (j < 1) j = 1;
    // An empty selection makes x static: the only remaining exits are the
    // primal certificate and R; jump straight to whichever comes first.
    if (selected_count == 0) j = std::min(j_r, j_primal);
    PSDP_ASSERT(j >= 1);

    // --- Batched update: j iterations in closed form. ---
    const Real growth = std::pow(1 + c.alpha, static_cast<Real>(j));
    for (Index i = 0; i < n; ++i) {
      if (!selected[static_cast<std::size_t>(i)]) continue;
      const Real before = x[i];
      x[i] *= growth;
      psi.add_scaled(instance[i], x[i] - before);
    }
    x_norm1 = linalg::sum(x);  // exact recompute; avoids drift over phases
    min_primal_sum = std::numeric_limits<Real>::infinity();
    for (Index i = 0; i < n; ++i) {
      primal_sums[i] += static_cast<Real>(j) * dots[i] / tr_w;
      min_primal_sum = std::min(min_primal_sum, primal_sums[i]);
    }
    y_sum.add_scaled(w, static_cast<Real>(j) / tr_w);
    t += j;

    PhaseStat stat;
    stat.phase = result.phases;
    stat.start_iteration = t - j;
    stat.length = j;
    stat.x_norm1 = x_norm1;
    stat.selected = selected_count;
    result.phase_stats.push_back(stat);
    PSDP_LOG(kDebug) << "phase " << result.phases << " len=" << j
                     << " |x|=" << x_norm1 << " |B|=" << selected_count;
  }

  result.iterations = t;
  result.psi_lambda_max = linalg::lambda_max_exact(psi);
  result.spectrum_bound_exceeded = result.psi_lambda_max > c.spectrum_bound;
  result.outcome = x_norm1 > c.k_cap ? DecisionOutcome::kDual
                                     : DecisionOutcome::kPrimal;
  result.dual_x = std::move(x);
  if (result.psi_lambda_max > 0) {
    result.dual_x.scale(1 / result.psi_lambda_max);
  }
  const Real t_count = std::max<Real>(1, static_cast<Real>(t));
  result.primal_dots = std::move(primal_sums);
  result.primal_dots.scale(1 / t_count);
  result.primal_trace = t > 0 ? 1 : 0;
  if (t > 0) {
    result.primal_y = std::move(y_sum);
    result.primal_y.scale(1 / static_cast<Real>(t));
  } else {
    result.primal_y = Matrix::identity(m);
    result.primal_y.scale(1 / static_cast<Real>(m));
    result.primal_trace = 1;
  }
  return result;
}

PhasedResult decision_phased(const FactorizedPackingInstance& instance,
                             const FactorizedPhasedOptions& options) {
  const Index n = instance.size();
  const Index m = instance.dim();
  const Real eps = options.eps;
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Real phase_growth =
      options.phase_growth > 0 ? options.phase_growth : eps;
  PSDP_CHECK(phase_growth > 0, "decision_phased: phase_growth must be > 0");
  const Index r_limit = options.max_iterations_override > 0
                            ? options.max_iterations_override
                            : c.r_limit;
  const Real dot_eps = options.dot_eps > 0 ? options.dot_eps : eps / 2;

  Vector x(n);
  Real x_norm1 = 0;
  Real trace_psi = 0;
  for (Index i = 0; i < n; ++i) {
    const Real tr = instance.constraint_trace(i);
    PSDP_CHECK(tr > 0 && std::isfinite(tr),
               str("decision_phased: constraint ", i, " has bad trace ", tr));
    x[i] = 1 / (static_cast<Real>(n) * tr);
    x_norm1 += x[i];
    trace_psi += x[i] * tr;
  }

  Vector primal_sums(n);
  Real min_primal_sum = 0;
  Index t = 0;

  PhasedResult result;
  result.constants = c;

  // Sketch estimates are (1 +- dot_eps): certify the primal against the
  // inflated threshold so the noise cannot fake a certificate.
  const Real primal_threshold = 1 + dot_eps;
  const auto primal_certified = [&]() {
    return t > 0 && min_primal_sum >= primal_threshold * static_cast<Real>(t);
  };

  const sparse::FactorizedSet& set = instance.set();
  const linalg::SymmetricOp psi_op = [&set, &x](const Vector& v, Vector& y) {
    set.weighted_apply(x, v, y);
  };
  // Panel form of Psi for the blocked bigDotExp path; the workspace panels
  // are allocated once and recycled across phases.
  const auto psi_ws = std::make_shared<sparse::FactorizedSet::BlockWorkspace>();
  const linalg::BlockOp psi_block_op =
      [&set, &x, psi_ws](const linalg::Matrix& v, linalg::Matrix& y) {
        set.weighted_apply_block(x, v, y, *psi_ws);
      };

  BigDotExpOptions dot_options = options.dot_options;
  dot_options.eps = dot_eps;

  std::vector<bool> selected(static_cast<std::size_t>(n), false);

  while (x_norm1 <= c.k_cap && t < r_limit &&
         !(options.early_primal_exit && primal_certified())) {
    // --- Phase start: the one bigDotExp batch. ---
    ++result.phases;
    BigDotExpOptions phase_options = dot_options;
    phase_options.seed = rand::stream_seed(
        dot_options.seed, static_cast<std::uint64_t>(result.phases));
    const Real kappa = std::min(c.spectrum_bound, trace_psi);
    const BigDotExpResult batch =
        big_dot_exp(psi_op, psi_block_op, m, kappa, set, phase_options);
    const Real tr_w = batch.trace_exp;
    PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                       "decision_phased: Tr[W] estimate not positive finite");

    const Real threshold = (1 + eps) * tr_w;
    Real selected_mass = 0;
    Index selected_count = 0;
    bool all_rates_cover = true;
    for (Index i = 0; i < n; ++i) {
      const bool in_b = batch.dots[i] <= threshold;
      selected[static_cast<std::size_t>(i)] = in_b;
      if (in_b) {
        selected_mass += x[i];
        ++selected_count;
      }
      if (batch.dots[i] / tr_w < primal_threshold) all_rates_cover = false;
    }

    const Real rest_mass = x_norm1 - selected_mass;
    const Index j_dual =
        steps_until_exceeds(selected_mass, c.alpha, c.k_cap - rest_mass);
    const Index j_phase = steps_until_exceeds(
        selected_mass, c.alpha, (1 + phase_growth) * x_norm1 - rest_mass);
    const Index j_r = r_limit - t;
    Index j_primal = kNoLimit;
    if (options.early_primal_exit && all_rates_cover) {
      Real worst = 0;
      for (Index i = 0; i < n; ++i) {
        const Real rate = batch.dots[i] / tr_w;
        const Real deficit =
            primal_threshold * static_cast<Real>(t) - primal_sums[i];
        if (deficit <= 0) continue;
        if (rate <= primal_threshold) {
          worst = static_cast<Real>(kNoLimit);
          break;
        }
        worst = std::max(worst, deficit / (rate - primal_threshold));
      }
      j_primal = worst >= static_cast<Real>(kNoLimit)
                     ? kNoLimit
                     : static_cast<Index>(std::ceil(worst));
      if (j_primal < 1) j_primal = 1;
    }

    Index j = std::min(std::min(j_dual, j_phase), std::min(j_r, j_primal));
    if (j < 1) j = 1;
    if (selected_count == 0) j = std::min(j_r, j_primal);
    PSDP_ASSERT(j >= 1);

    const Real growth = std::pow(1 + c.alpha, static_cast<Real>(j));
    for (Index i = 0; i < n; ++i) {
      if (!selected[static_cast<std::size_t>(i)]) continue;
      const Real before = x[i];
      x[i] *= growth;
      trace_psi += (x[i] - before) * instance.constraint_trace(i);
    }
    x_norm1 = linalg::sum(x);
    min_primal_sum = std::numeric_limits<Real>::infinity();
    for (Index i = 0; i < n; ++i) {
      primal_sums[i] += static_cast<Real>(j) * batch.dots[i] / tr_w;
      min_primal_sum = std::min(min_primal_sum, primal_sums[i]);
    }
    t += j;

    PhaseStat stat;
    stat.phase = result.phases;
    stat.start_iteration = t - j;
    stat.length = j;
    stat.x_norm1 = x_norm1;
    stat.selected = selected_count;
    result.phase_stats.push_back(stat);
    PSDP_LOG(kDebug) << "factorized phase " << result.phases << " len=" << j
                     << " |x|=" << x_norm1 << " |B|=" << selected_count;
  }

  result.iterations = t;
  // Certified upper bound on lambda_max(Psi), as in decision_factorized.
  linalg::LanczosOptions lanczos_options;
  lanczos_options.tol = 1e-10;
  const linalg::LanczosResult lanczos =
      linalg::lanczos_lambda_max(psi_op, m, lanczos_options);
  result.psi_lambda_max =
      lanczos.lambda_max > 0 ? (lanczos.lambda_max + lanczos.residual) * 1.001
                             : 0;
  result.spectrum_bound_exceeded = result.psi_lambda_max > c.spectrum_bound;
  result.outcome = x_norm1 > c.k_cap ? DecisionOutcome::kDual
                                     : DecisionOutcome::kPrimal;
  result.dual_x = std::move(x);
  if (result.psi_lambda_max > 0) {
    result.dual_x.scale(1 / result.psi_lambda_max);
  }
  const Real t_count = std::max<Real>(1, static_cast<Real>(t));
  result.primal_dots = std::move(primal_sums);
  result.primal_dots.scale(1 / t_count);
  result.primal_trace = t > 0 ? 1 : 0;
  // primal_y stays empty: this path never forms an m x m matrix.
  if (t == 0) result.primal_trace = 1;
  return result;
}

}  // namespace psdp::core
