// bigDotExp (Theorem 4.1): batch evaluation of exp(Phi) . A_i for all i,
// given Phi PSD with ||Phi||_2 <= kappa and A_i = Q_i Q_i^T prefactored.
//
// Pipeline (exactly the paper's proof):
//   1. exp(Phi) . Q Q^T = ||exp(Phi/2) Q||_F^2           (factorization)
//   2. exp(Phi/2) ~ p_hat = truncated Taylor series      (Lemma 4.2,
//      degree k = max(e^2 kappa/2, ln(2/eps)))            applied as matvecs
//   3. ||v||^2 ~ ||Pi v||^2 with a JL sketch Pi          ([DG03, IM98],
//      r = O(eps^-2 log m) rows)
//
// so each estimate is S = Pi p_hat, dots_i = ||S Q_i||_F^2, and the trace
// Tr[exp(Phi)] = exp(Phi) . I is the same computation with Q = I, i.e.
// ||S||_F^2. Work: O(r k p + r q); depth: O(k log m) -- both metered.
//
// When r >= m the sketch is replaced by the exact identity "sketch"
// (S = p_hat itself, computed column by column), which removes all sketching
// error; small instances therefore get exact answers automatically.
#pragma once

#include <cstdint>
#include <optional>

#include "linalg/power.hpp"
#include "linalg/vector.hpp"
#include "sparse/csr.hpp"
#include "sparse/factorized.hpp"

namespace psdp::core {

using linalg::Vector;

struct BigDotExpOptions {
  /// Target relative accuracy of each dot product (the eps of Theorem 4.1).
  Real eps = 0.1;
  /// JL failure probability (union-bounded over the n+1 estimates).
  Real delta = 1e-3;
  /// Sketch seed; every call with the same seed uses the same Pi.
  std::uint64_t seed = 1;
  /// Override the Taylor degree (0 = Lemma 4.2 formula).
  Index taylor_degree_override = 0;
  /// Override the sketch row count (0 = JL formula capped at m).
  Index sketch_rows_override = 0;
};

struct BigDotExpResult {
  Vector dots;       ///< estimates of exp(Phi) . A_i, length n
  Real trace_exp;    ///< estimate of Tr[exp(Phi)]
  Index taylor_degree = 0;
  Index sketch_rows = 0;
  bool exact_sketch = false;  ///< true when r >= m made the sketch exact
};

/// Phi as an abstract symmetric PSD operator of dimension `dim` (matvec).
/// The solver passes sum_i x_i A_i without forming it; standalone callers
/// can pass a CSR matrix via the overload below.
BigDotExpResult big_dot_exp(const linalg::SymmetricOp& phi, Index dim,
                            Real kappa, const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options = {});

/// Convenience overload: Phi given as a sparse CSR matrix. If kappa <= 0 it
/// is estimated with power iteration (inflated to an upper bound).
BigDotExpResult big_dot_exp(const sparse::Csr& phi, Real kappa,
                            const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options = {});

}  // namespace psdp::core
