// bigDotExp (Theorem 4.1): batch evaluation of exp(Phi) . A_i for all i,
// given Phi PSD with ||Phi||_2 <= kappa and A_i = Q_i Q_i^T prefactored.
//
// Pipeline (exactly the paper's proof):
//   1. exp(Phi) . Q Q^T = ||exp(Phi/2) Q||_F^2           (factorization)
//   2. exp(Phi/2) ~ p_hat = truncated Taylor series      (Lemma 4.2,
//      degree k = max(e^2 kappa/2, ln(2/eps)))            applied as matvecs
//   3. ||v||^2 ~ ||Pi v||^2 with a JL sketch Pi          ([DG03, IM98],
//      r = O(eps^-2 log m) rows)
//
// so each estimate is S = Pi p_hat, dots_i = ||S Q_i||_F^2, and the trace
// Tr[exp(Phi)] = exp(Phi) . I is the same computation with Q = I, i.e.
// ||S||_F^2. Work: O(r k p + r q); depth: O(k log m) -- both metered: Phi
// applications charge themselves (r k of them, 2p each when Phi is CSR or a
// factorized sum), the Taylor kernels charge the O(r k m) panel arithmetic,
// and this module charges the sketch generation (r m), the dots streaming
// (2 r q), and the Frobenius reductions.
//
// When r >= m the sketch is replaced by the exact identity "sketch"
// (S = p_hat itself, computed column by column), which removes all sketching
// error; small instances therefore get exact answers automatically.
//
// Kernel selection: the r sketch rows are independent, so they can be pushed
// through p_hat either one vector at a time (r k sparse matvecs -- the
// single-vector reference path) or as row-major m x b panels via the BlockOp
// layer (r k / b sparse multi-vector SpMM passes -- the blocked path, which
// streams Phi once per panel and turns the inner loops into contiguous
// length-b dense updates). BigDotExpOptions::block_size picks the width;
// the blocked path is the default whenever a native block operator is
// available and is ~2-4x faster at b >= 8 (see bench_kernels). By default
// the blocked path also *fuses* the dots accumulation into the panel sweep
// (BigDotExpOptions::fuse_dots): each panel's contribution to every dots_i
// and to the trace is consumed right after the panel's last Taylor step,
// so S^T is never materialized (saves the m x r buffer and one full pass
// over S).
#pragma once

#include <cstdint>
#include <optional>

#include "linalg/blockop.hpp"
#include "linalg/power.hpp"
#include "linalg/taylor.hpp"
#include "linalg/vector.hpp"
#include "sparse/csr.hpp"
#include "sparse/factorized.hpp"
#include "sparse/sharded.hpp"
#include "util/tunables.hpp"

namespace psdp::core {

using linalg::Vector;

/// Default panel width of the blocked path: wide enough to amortize the
/// sparse traversal, narrow enough that a panel row (b doubles) plus the
/// matrix row stay cache-resident. bench_kernels sweeps this.
inline constexpr Index kDefaultBlockSize = 16;

/// Storage precision of the sketch and Taylor panels. Certificate-bearing
/// quantities (dots, trace, the error budget) always reduce in double:
/// the float32 mode stores the *panels* in float and compensates every dot
/// reduction in double (simd::KernelTable::sum_sq_f), so the extra error
/// is O(eps_f) panel rounding -- absorbed by the same margin argument that
/// licenses the JL sketch noise (docs/noisy_oracle_margin.md). Halves the
/// panel bandwidth and doubles the SIMD lane count.
enum class PanelPrecision {
  kDouble,   ///< reference: everything double (the default)
  kFloat32,  ///< float32 sketch/Taylor panels, compensated double dots
};

/// Stable name of a panel precision ("double", "float32") for banners and
/// the bench JSON headers.
const char* panel_precision_name(PanelPrecision precision);

struct BigDotExpOptions {
  /// Target relative accuracy of each dot product (the eps of Theorem 4.1).
  Real eps = 0.1;
  /// JL failure probability (union-bounded over the n+1 estimates).
  Real delta = 1e-3;
  /// Sketch seed; every call with the same seed uses the same Pi.
  std::uint64_t seed = 1;
  /// Override the Taylor degree (0 = Lemma 4.2 formula).
  Index taylor_degree_override = 0;
  /// Override the sketch row count (0 = JL formula capped at m).
  Index sketch_rows_override = 0;
  /// Panel width of the blocked exp-Taylor kernels. 0 = auto
  /// (kDefaultBlockSize capped at the sketch row count; falls back to the
  /// reference path when only a single-vector operator is available);
  /// 1 = the single-vector reference path, bit-identical to the original
  /// implementation; b > 1 = blocked panels of width b. All settings use
  /// the same sketch for the same seed, so results agree to rounding
  /// (~1e-12 relative) across block sizes. Defaulted from the tunable
  /// registry (`block_size`, default 0).
  Index block_size = util::tunable_block_size();
  /// Blocked path only: accumulate each panel's contribution to the dots
  /// and the trace right after that panel's last Taylor step, while the
  /// panel is cache-hot, instead of materializing S^T (m x r) and
  /// re-reading it per constraint afterwards. Saves one full pass over S
  /// plus the m x r buffer; results agree with the two-pass layout to
  /// rounding (summation order differs). false = the two-pass blocked
  /// layout, kept for benchmarking (see bench_kernels).
  bool fuse_dots = true;
  /// Transpose KernelPlan applied to every factor's Q^T panels inside the
  /// implicit-Psi and dots sweeps (nullptr = each factor's own autotuned
  /// plan, the default and usually the right answer). Callers reload a
  /// plan serialized by bench_kernels -- or force one kernel for an A/B
  /// run -- through here; autotuned plans only pick between the two
  /// bit-identical gathers, so overriding with one never changes results
  /// (see sparse/kernel_plan.hpp). The caller keeps the plan alive for
  /// the duration of the call (solvers: the solve).
  const sparse::KernelPlan* kernel_plan = nullptr;
  /// Requested panel precision. kFloat32 engages only when every gate
  /// holds -- a float block operator was provided, the blocked fused path
  /// is active (block > 1 and fuse_dots), and eps >= float_panel_min_eps
  /// (the certificate-tolerance gate: panel rounding must stay far inside
  /// the error budget eps already absorbs for the sketch) -- and falls
  /// back to double silently otherwise; BigDotExpResult::panel_precision
  /// records what actually ran.
  PanelPrecision panel_precision = PanelPrecision::kDouble;
  /// The certificate-tolerance gate of the float32 mode: requests with a
  /// tighter (smaller) eps than this run in double. Float panels carry
  /// ~1e-7 relative rounding; at eps >= 1e-3 that is <1% of the error
  /// budget and the (1 +- eps) certificates stay sound.
  Real float_panel_min_eps = 1e-3;
};

struct BigDotExpResult {
  Vector dots;       ///< estimates of exp(Phi) . A_i, length n
  Real trace_exp = 0;  ///< estimate of Tr[exp(Phi)]
  Index taylor_degree = 0;
  Index sketch_rows = 0;
  bool exact_sketch = false;  ///< true when r >= m made the sketch exact
  Index block_size = 0;       ///< panel width actually used (1 = reference)
  bool fused = false;         ///< dots fused into the Taylor panel sweep
  /// Panel precision that actually ran (kDouble when any float32 gate
  /// failed -- see BigDotExpOptions::panel_precision).
  PanelPrecision panel_precision = PanelPrecision::kDouble;
};

/// Caller-owned scratch recycled across big_dot_exp calls -- and therefore
/// across solver iterations, which is where it matters: one oracle
/// evaluation per round reuses the Taylor panels (the TaylorBlockWorkspace
/// base), the sketch input/output panels, the fused per-constraint dots
/// accumulators, and the implicit-Psi panel scratch, so the steady-state
/// iteration performs no heap allocations after warmup (enforced by
/// bench_variants --alloc-guard). SketchedTaylorOracle holds one (or
/// borrows the caller's via SketchedOracleOptions::workspace); sharing an
/// instance across sequential solves is safe -- every buffer is fully
/// overwritten per call -- and never changes results.
struct SolverWorkspace : linalg::TaylorBlockWorkspace {
  linalg::Matrix x_panel;  ///< sketch panel (dim x b)
  linalg::Matrix y_panel;  ///< Taylor output panel (dim x b)
  /// Fused path: one k_i x b dots accumulator per constraint.
  std::vector<std::vector<Real>> accumulators;
  /// Float twins of the above, touched only by the mixed-precision sketch
  /// mode (BigDotExpOptions::panel_precision == kFloat32); empty otherwise.
  linalg::MatrixF x_panel_f;
  linalg::MatrixF y_panel_f;
  linalg::TaylorBlockWorkspaceF taylor_f;
  std::vector<std::vector<float>> accumulators_f;
  /// Scratch of FactorizedSet::weighted_apply_block (the implicit Psi).
  /// Its `plan` member is the second way to hand a transpose KernelPlan to
  /// the sweep: set it on a shared workspace to pin the plan for every
  /// solve using that workspace; BigDotExpOptions::kernel_plan, when
  /// non-null, takes precedence per call.
  sparse::FactorizedSet::BlockWorkspace factor;
};

/// Phi as an abstract symmetric PSD operator of dimension `dim` (matvec).
/// Without a native block operator the auto block size resolves to the
/// reference path; pass block_size > 1 to force column-by-column blocking.
BigDotExpResult big_dot_exp(const linalg::SymmetricOp& phi, Index dim,
                            Real kappa, const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options = {});

/// Phi as both a matvec and a native panel operator (the solver passes
/// sum_i x_i A_i in both forms without forming the sum). The matvec serves
/// the reference path (block_size 1); the BlockOp serves the blocked path.
BigDotExpResult big_dot_exp(const linalg::SymmetricOp& phi,
                            const linalg::BlockOp& phi_block, Index dim,
                            Real kappa, const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options = {});

/// Workspace form: all scratch comes from `workspace` and the estimates are
/// written into `result` in place (result.dots is resized capacity-
/// preserving), so repeated calls -- one per solver round -- allocate
/// nothing once the workspace is warm. The convenience overloads delegate
/// here with a private workspace. Results are identical to a fresh
/// workspace: every buffer is fully overwritten per call.
///
/// `phi_block_f`, when non-null and non-empty, is the float32 panel form of
/// Phi serving the mixed-precision sketch mode (see
/// BigDotExpOptions::panel_precision); the double operators still serve
/// every other path, including the fallback when a float32 request fails a
/// gate.
void big_dot_exp(const linalg::SymmetricOp& phi,
                 const linalg::BlockOp& phi_block, Index dim, Real kappa,
                 const sparse::FactorizedSet& as,
                 const BigDotExpOptions& options, SolverWorkspace& workspace,
                 BigDotExpResult& result,
                 const linalg::BlockOpF* phi_block_f = nullptr);

/// Sharded workspace form: the constraint set arrives with its shard
/// partition. With one shard this is byte-for-byte the unsharded call
/// above (same code path, locked by tests). With K > 1 shards the fused
/// per-constraint dots sweep runs shard-by-shard in fixed order 0..K-1 and
/// every cross-constraint reduction -- each panel's trace share included --
/// switches to thread-count-independent fixed-chunk summation
/// (par::deterministic_sum), so the result bits depend on the instance and
/// K but never on the pool width. SketchedTaylorOracle routes here whenever
/// its instance is sharded.
void big_dot_exp(const linalg::SymmetricOp& phi,
                 const linalg::BlockOp& phi_block, Index dim, Real kappa,
                 const sparse::ShardedFactorizedSet& as,
                 const BigDotExpOptions& options, SolverWorkspace& workspace,
                 BigDotExpResult& result,
                 const linalg::BlockOpF* phi_block_f = nullptr);

/// Convenience overload: Phi given as a sparse CSR matrix (native SpMV and
/// SpMM kernels). If kappa <= 0 it is estimated with power iteration
/// (inflated to an upper bound).
BigDotExpResult big_dot_exp(const sparse::Csr& phi, Real kappa,
                            const sparse::FactorizedSet& as,
                            const BigDotExpOptions& options = {});

}  // namespace psdp::core
