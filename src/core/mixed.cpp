#include "core/mixed.hpp"

#include <cmath>

#include "core/penalty_oracle.hpp"
#include "core/solver_engine.hpp"
#include "util/log.hpp"

namespace psdp::core {

namespace {

/// Structural checks shared by the dense and factorized instances.
void validate_covering(Index n, const std::vector<Vector>& covering) {
  PSDP_CHECK(n >= 1, "mixed: no coordinates");
  PSDP_CHECK(static_cast<Index>(covering.size()) == n,
             "mixed: covering vectors must be index-aligned with packing");
  const Index l = covering.empty() ? 0 : covering.front().size();
  PSDP_CHECK(l >= 1, "mixed: covering dimension must be positive");
  Vector reach(l);
  for (Index i = 0; i < n; ++i) {
    const Vector& d = covering[static_cast<std::size_t>(i)];
    PSDP_CHECK(d.size() == l, str("mixed: covering vector ", i,
                                  " has inconsistent length"));
    for (Index j = 0; j < l; ++j) {
      PSDP_CHECK(d[j] >= 0 && std::isfinite(d[j]),
                 str("mixed: covering entry (", i, ",", j, ") invalid"));
      reach[j] += d[j];
    }
  }
  for (Index j = 0; j < l; ++j) {
    PSDP_CHECK(reach[j] > 0,
               str("mixed: covering coordinate ", j,
                   " is unreachable (all d_ij are zero)"));
  }
}

/// The mixed packing/covering loop over any oracle: matrix MMW penalties
/// from the oracle on the packing side, scalar soft-max benefits on the
/// covering side, Young-style multiplicative selection in between. The
/// final rescale divides by oracle.lambda_max (exact for the dense oracle,
/// a certified upper bound for the sketched one), so the packing
/// certificate is feasible by construction either way; min_coverage is
/// always re-measured in exact arithmetic.
MixedResult run_mixed_loop(PenaltyOracle& oracle,
                           const std::vector<Vector>& covering,
                           const MixedOptions& options) {
  PSDP_CHECK(options.eps > 0 && options.eps < 1,
             "mixed: eps must lie in (0,1)");
  const Index n = oracle.size();
  const Index l = covering.front().size();
  const Real eps = options.eps;

  // Width-independent step (the Algorithm 3.1 constants) and the covering
  // target C = (1 + ln l)/eps -- by the time every coordinate is covered to
  // C, multiplicative noise of (1 +- eps) per step has averaged out.
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Real cover_target =
      (1 + std::log(static_cast<Real>(std::max<Index>(l, 2)))) / eps;
  const Index r_limit =
      options.max_iterations_override > 0
          ? options.max_iterations_override
          : 4 * c.r_limit;  // covering may need more rounds than packing alone

  // Start small on the packing side, exactly like Algorithm 3.1. Mixed
  // maintains its own coverage accumulators, so it only needs the starting
  // weights, not the full SolverState.
  Vector x = initial_weights(oracle, "mixed");

  Vector coverage(l);
  for (Index i = 0; i < n; ++i) {
    coverage.add_scaled(covering[static_cast<std::size_t>(i)], x[i]);
  }

  Vector benefit(n);
  Vector q(l);
  PenaltyBatch batch;
  MixedResult result;

  auto min_coverage = [&] {
    Real mc = coverage[0];
    for (Index j = 1; j < l; ++j) mc = std::min(mc, coverage[j]);
    return mc;
  };

  while (min_coverage() < cover_target && result.iterations < r_limit) {
    // Round boundary: no locks held, no parallel region open -- the one
    // safe place to lend the thread out (see yield_point.hpp).
    if (options.yield != nullptr) options.yield->check();
    ++result.iterations;

    // Packing penalties: P . A_i with P = exp(Psi)/Tr, via the oracle.
    oracle.compute(x, static_cast<std::uint64_t>(result.iterations),
                   batch);
    PSDP_NUMERIC_CHECK(batch.trace > 0 && std::isfinite(batch.trace),
                       "mixed: Tr[W] not positive finite");

    // Covering benefits: <q, d_i>/||q||_1 with q_j = exp(-(c_j - c_min));
    // saturated coordinates get exponentially small weight automatically.
    Real c_min = coverage[0];
    for (Index j = 1; j < l; ++j) c_min = std::min(c_min, coverage[j]);
    Real q_norm = 0;
    for (Index j = 0; j < l; ++j) {
      q[j] = std::exp(-(coverage[j] - c_min));
      q_norm += q[j];
    }
    for (Index i = 0; i < n; ++i) {
      benefit[i] =
          dot(q, covering[static_cast<std::size_t>(i)]) / q_norm;
    }

    // Young-style selection: profitable coordinates grow multiplicatively.
    Index updated = 0;
    for (Index i = 0; i < n; ++i) {
      if (batch.dots[i] / batch.trace <= (1 + eps) * benefit[i]) {
        const Real delta = c.alpha * x[i];
        x[i] += delta;
        coverage.add_scaled(covering[static_cast<std::size_t>(i)], delta);
        ++updated;
      }
    }
    PSDP_LOG(kDebug) << "mixed iter " << result.iterations << " min_cov="
                     << min_coverage() << "/" << cover_target << " |B|="
                     << updated;
    if (updated == 0) break;  // no profitable coordinate: stuck
  }

  // Rescale so the *measured* packing norm is exactly 1, then report the
  // coverage that survives. (1 - 1e-12) guards the strict <= I check
  // against the final rounding of the division.
  const Real lambda = oracle.lambda_max(x);
  PSDP_NUMERIC_CHECK(lambda > 0, "mixed: packing sum has zero norm");
  result.x = std::move(x);
  result.x.scale((1 - 1e-12) / lambda);
  result.packing_lambda_max = 1 - 1e-12;
  coverage.scale((1 - 1e-12) / lambda);
  result.min_coverage = min_coverage();
  // The coverage is *measured*, so the acceptance threshold needs no
  // worst-case constant: within eps of full coverage counts as feasible.
  result.outcome = result.min_coverage >= 1 - eps
                       ? MixedOutcome::kFeasible
                       : MixedOutcome::kExhausted;
  return result;
}

}  // namespace

void MixedInstance::validate() const {
  validate_covering(packing.size(), covering);
}

void MixedFactorizedInstance::validate() const {
  validate_covering(packing.size(), covering);
}

MixedResult solve_mixed(const MixedInstance& instance,
                        const MixedOptions& options) {
  instance.validate();
  DenseEigOracle oracle(instance.packing);
  return run_mixed_loop(oracle, instance.covering, options);
}

MixedResult solve_mixed(const MixedFactorizedInstance& instance,
                        const MixedFactorizedOptions& options) {
  instance.validate();
  SketchedOracleOptions oracle_options;
  oracle_options.eps = options.eps;
  oracle_options.dot_eps = options.dot_eps;
  oracle_options.dot_options = options.dot_options;
  oracle_options.workspace = options.workspace;
  // No spectrum invariant here: the tracked runtime bound
  // min(Tr[Psi], sum_i x_i lambda_max(A_i)) alone.
  SketchedTaylorOracle oracle(instance.packing, oracle_options);
  return run_mixed_loop(oracle, instance.covering, options);
}

}  // namespace psdp::core
