#include "core/mixed.hpp"

#include <cmath>

#include "linalg/eig.hpp"
#include "linalg/tridiag_eig.hpp"
#include "linalg/expm.hpp"
#include "par/parallel.hpp"
#include "util/log.hpp"

namespace psdp::core {

void MixedInstance::validate() const {
  PSDP_CHECK(packing.size() >= 1, "mixed: no coordinates");
  PSDP_CHECK(static_cast<Index>(covering.size()) == packing.size(),
             "mixed: covering vectors must be index-aligned with packing");
  const Index l = covering_dim();
  PSDP_CHECK(l >= 1, "mixed: covering dimension must be positive");
  Vector reach(l);
  for (Index i = 0; i < size(); ++i) {
    const Vector& d = covering[static_cast<std::size_t>(i)];
    PSDP_CHECK(d.size() == l, str("mixed: covering vector ", i,
                                  " has inconsistent length"));
    for (Index j = 0; j < l; ++j) {
      PSDP_CHECK(d[j] >= 0 && std::isfinite(d[j]),
                 str("mixed: covering entry (", i, ",", j, ") invalid"));
      reach[j] += d[j];
    }
  }
  for (Index j = 0; j < l; ++j) {
    PSDP_CHECK(reach[j] > 0,
               str("mixed: covering coordinate ", j,
                   " is unreachable (all d_ij are zero)"));
  }
}

MixedResult solve_mixed(const MixedInstance& instance,
                        const MixedOptions& options) {
  instance.validate();
  PSDP_CHECK(options.eps > 0 && options.eps < 1,
             "mixed: eps must lie in (0,1)");
  const Index n = instance.size();
  const Index m = instance.packing.dim();
  const Index l = instance.covering_dim();
  const Real eps = options.eps;

  // Width-independent step (the Algorithm 3.1 constants) and the covering
  // target C = (1 + ln l)/eps -- by the time every coordinate is covered to
  // C, multiplicative noise of (1 +- eps) per step has averaged out.
  const AlgorithmConstants c = algorithm_constants(n, eps);
  const Real cover_target =
      (1 + std::log(static_cast<Real>(std::max<Index>(l, 2)))) / eps;
  const Index r_limit =
      options.max_iterations_override > 0
          ? options.max_iterations_override
          : 4 * c.r_limit;  // covering may need more rounds than packing alone

  // Start small on the packing side, exactly like Algorithm 3.1.
  Vector x(n);
  for (Index i = 0; i < n; ++i) {
    x[i] = 1 / (static_cast<Real>(n) * instance.packing.constraint_trace(i));
  }

  Matrix psi(m, m);
  for (Index i = 0; i < n; ++i) psi.add_scaled(instance.packing[i], x[i]);
  Vector coverage(l);
  for (Index i = 0; i < n; ++i) {
    coverage.add_scaled(instance.covering[static_cast<std::size_t>(i)], x[i]);
  }

  Vector penalty(n);
  Vector benefit(n);
  Vector q(l);
  MixedResult result;

  auto min_coverage = [&] {
    Real mc = coverage[0];
    for (Index j = 1; j < l; ++j) mc = std::min(mc, coverage[j]);
    return mc;
  };

  while (min_coverage() < cover_target && result.iterations < r_limit) {
    ++result.iterations;

    // Packing penalties: P . A_i with P = exp(Psi)/Tr.
    const linalg::EigResult eig = linalg::sym_eig(psi);
    const Matrix w = linalg::expm_from_eig(eig);
    const Real tr_w = linalg::trace(w);
    PSDP_NUMERIC_CHECK(tr_w > 0 && std::isfinite(tr_w),
                       "mixed: Tr[W] not positive finite");
    par::parallel_for(0, n, [&](Index i) {
      penalty[i] = linalg::frobenius_dot(instance.packing[i], w) / tr_w;
    }, std::max<Index>(1, 16384 / (m * m + 1)));

    // Covering benefits: <q, d_i>/||q||_1 with q_j = exp(-(c_j - c_min));
    // saturated coordinates get exponentially small weight automatically.
    Real c_min = coverage[0];
    for (Index j = 1; j < l; ++j) c_min = std::min(c_min, coverage[j]);
    Real q_norm = 0;
    for (Index j = 0; j < l; ++j) {
      q[j] = std::exp(-(coverage[j] - c_min));
      q_norm += q[j];
    }
    for (Index i = 0; i < n; ++i) {
      benefit[i] = dot(q, instance.covering[static_cast<std::size_t>(i)]) / q_norm;
    }

    // Young-style selection: profitable coordinates grow multiplicatively.
    Index updated = 0;
    for (Index i = 0; i < n; ++i) {
      if (penalty[i] <= (1 + eps) * benefit[i]) {
        const Real delta = c.alpha * x[i];
        x[i] += delta;
        psi.add_scaled(instance.packing[i], delta);
        coverage.add_scaled(instance.covering[static_cast<std::size_t>(i)],
                            delta);
        ++updated;
      }
    }
    PSDP_LOG(kDebug) << "mixed iter " << result.iterations << " min_cov="
                     << min_coverage() << "/" << cover_target << " |B|="
                     << updated;
    if (updated == 0) break;  // no profitable coordinate: stuck
  }

  // Rescale so the *measured* packing norm is exactly 1, then report the
  // coverage that survives. (1 - 1e-12) guards the strict <= I check
  // against the final rounding of the division.
  const Real lambda = linalg::lambda_max_exact(psi);
  PSDP_NUMERIC_CHECK(lambda > 0, "mixed: packing sum has zero norm");
  result.x = x;
  result.x.scale((1 - 1e-12) / lambda);
  result.packing_lambda_max = 1 - 1e-12;
  coverage.scale((1 - 1e-12) / lambda);
  result.min_coverage = [&] {
    Real mc = coverage[0];
    for (Index j = 1; j < l; ++j) mc = std::min(mc, coverage[j]);
    return mc;
  }();
  // The coverage is *measured*, so the acceptance threshold needs no
  // worst-case constant: within eps of full coverage counts as feasible.
  result.outcome = result.min_coverage >= 1 - eps
                       ? MixedOutcome::kFeasible
                       : MixedOutcome::kExhausted;
  return result;
}

}  // namespace psdp::core
